// Ablation: GPU resource-aware thread creation (paper Eq. 3 /
// Section 3.3-3.4).
//
// Sweeps the thread cap of the swarm-update launch from "far too few
// threads" (per-particle-scale) through the resource-aware value to
// "unbounded one-thread-per-element", and reports the modeled time of one
// full run at paper scale. Shows the mechanism behind FastPSO's design: too
// few threads starve occupancy; beyond device residency there is nothing
// left to gain (grid-stride folds the excess at no cost, while a real
// unbounded launch would pay block-scheduling overhead).
//
//   ./ablation_launch_policy [--executed-iters 10]

#include "bench_common.h"
#include "core/init.h"
#include "core/launch_policy.h"
#include "core/optimizer.h"
#include "core/swarm_state.h"
#include "core/swarm_update.h"
#include "problems/problem.h"
#include "vgpu/device.h"

using namespace fastpso;
using namespace fastpso::benchkit;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const BenchOptions opt = BenchOptions::parse(args, /*default_executed=*/10);
  const int n = opt.particles;
  const int d = opt.dim;

  const core::LaunchPolicy reference(vgpu::tesla_v100());
  const std::vector<std::pair<std::string, std::int64_t>> caps = {
      {"n threads (particle-level)", n},
      {"16k", 16384},
      {"64k", 65536},
      {"resource-aware (Eq. 3)", reference.thread_cap()},
      {"one per element", static_cast<std::int64_t>(n) * d},
  };

  TextTable table("Ablation: thread cap of the swarm-update launch "
                  "(sphere, n=" + std::to_string(n) + ", d=" +
                  std::to_string(d) + ")");
  table.set_header({"cap", "threads launched", "tw (Eq. 3)",
                    "swarm step modeled (s)"});
  CsvWriter csv({"cap", "threads", "tw", "swarm_s"});

  for (const auto& [label, cap] : caps) {
    vgpu::Device device;
    core::LaunchPolicy policy(device.spec(), 256, cap);
    core::SwarmState state(device, n, d);
    core::initialize_swarm(device, policy, state, opt.seed, -5.12f, 5.12f,
                           5.12f);
    vgpu::DeviceArray<float> l_mat(device, state.elements());
    vgpu::DeviceArray<float> g_mat(device, state.elements());
    core::generate_weights(device, policy, state.elements(), opt.seed, 0,
                           l_mat, g_mat);
    core::PsoParams params;
    const core::UpdateCoefficients coeff =
        core::make_coefficients(params, -5.12, 5.12);

    device.reset_counters();
    device.set_phase("swarm");
    for (int iter = 0; iter < opt.executed_iters; ++iter) {
      core::swarm_update(device, policy, state, l_mat, g_mat, coeff,
                         core::UpdateTechnique::kGlobalMemory);
    }
    const double per_iter =
        device.modeled_seconds() / opt.executed_iters;
    const double full = per_iter * opt.iters;
    const auto decision = policy.for_elements(state.elements());
    table.add_row({label, std::to_string(decision.config.total_threads()),
                   std::to_string(decision.thread_workload),
                   fmt_fixed(full, 3)});
    csv.add_row({label, std::to_string(decision.config.total_threads()),
                 std::to_string(decision.thread_workload),
                 fmt_fixed(full, 4)});
  }

  table.add_note("the particle-level row is the granularity of the prior "
                 "GPU PSO implementations; the Eq. 3 row is FastPSO");
  table.print(std::cout);
  maybe_write_csv(csv, opt.csv);
  return 0;
}
