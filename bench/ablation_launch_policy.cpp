// Ablation: GPU resource-aware thread creation (paper Eq. 3 /
// Section 3.3-3.4).
//
// Sweeps the thread cap of the swarm-update launch from "far too few
// threads" (per-particle-scale) through the resource-aware value to
// "unbounded one-thread-per-element", and reports the modeled time of one
// full run at paper scale. Shows the mechanism behind FastPSO's design: too
// few threads starve occupancy; beyond device residency there is nothing
// left to gain (grid-stride folds the excess at no cost, while a real
// unbounded launch would pay block-scheduling overhead).
//
//   ./ablation_launch_policy [--executed-iters 10] [--graph] [--fuse]
//                            [--tuned]
//
// --tuned appends a "tuned (autotuner)" row: the resource-aware policy
// re-measured with the offline autotuner's table installed (tune::Tuner
// over the engine families at this exact shape, DESIGN.md §13), so the
// ablation shows what the generalized search adds on top of Eq. 3. The
// default rows and CSV schema are unchanged; with --graph/--fuse the extra
// row reports "-" in the graph/fused columns (it measures the eager path).
//
// --graph repeats each cap's iteration loop under vgpu::Graph
// capture/replay (DESIGN.md §8) and appends a graph-mode modeled column.
// The swarm step is a single kernel, so its one-node graph faithfully
// reports a *negative* amortization (one graph launch costs more than one
// kernel launch saves) — graphs pay off for the multi-kernel pipeline, not
// here. --fuse adds a "+fusion" row per cap with the FusionPass engaged
// (DESIGN.md §9) and a fused-modeled column; a one-kernel loop has no run
// to fuse (groups = 0), so the column honestly matches the graph number —
// the fusion win lives in the multi-kernel pipeline (micro_engine --fuse,
// tests/test_fusion.cpp). Eager columns and the default CSV schema are
// unchanged either way.

#include "bench_common.h"
#include "core/init.h"
#include "core/launch_policy.h"
#include "core/optimizer.h"
#include "core/swarm_state.h"
#include "core/swarm_update.h"
#include "problems/problem.h"
#include "tune/kernels.h"
#include "tune/tuner.h"
#include "vgpu/device.h"
#include "vgpu/graph/graph.h"
#include "vgpu/tuned.h"

using namespace fastpso;
using namespace fastpso::benchkit;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const BenchOptions opt = BenchOptions::parse(args, /*default_executed=*/10);
  const bool use_graph = args.get_bool("graph", false);
  const bool use_fuse = args.get_bool("fuse", false);
  const bool use_tuned = args.get_bool("tuned", false);
  if (use_graph) {
    vgpu::graph::set_enabled(true);
  }
  const int n = opt.particles;
  const int d = opt.dim;

  const core::LaunchPolicy reference(vgpu::tesla_v100());
  const std::vector<std::pair<std::string, std::int64_t>> caps = {
      {"n threads (particle-level)", n},
      {"16k", 16384},
      {"64k", 65536},
      {"resource-aware (Eq. 3)", reference.thread_cap()},
      {"one per element", static_cast<std::int64_t>(n) * d},
  };

  TextTable table("Ablation: thread cap of the swarm-update launch "
                  "(sphere, n=" + std::to_string(n) + ", d=" +
                  std::to_string(d) + ")");
  std::vector<std::string> header = {"cap", "threads launched", "tw (Eq. 3)",
                                     "swarm step modeled (s)"};
  std::vector<std::string> csv_header = {"cap", "threads", "tw", "swarm_s"};
  if (use_graph) {
    header.push_back("graph modeled (s)");
    csv_header.push_back("graph_swarm_s");
  }
  if (use_fuse) {
    header.push_back("fused modeled (s)");
    csv_header.push_back("fused_swarm_s");
  }
  table.set_header(header);
  CsvWriter csv(csv_header);

  for (const auto& [label, cap] : caps) {
    // With --fuse each cap runs twice: the plain pass and a "+fusion" pass
    // with the FusionPass engaged (fusion implies capture, so the second
    // pass records even without --graph).
    for (const bool fuse : use_fuse ? std::vector<bool>{false, true}
                                    : std::vector<bool>{false}) {
      vgpu::Device device;
      core::LaunchPolicy policy(device.spec(), 256, cap);
      core::SwarmState state(device, n, d);
      core::initialize_swarm(device, policy, state, opt.seed, -5.12f, 5.12f,
                             5.12f);
      vgpu::DeviceArray<float> l_mat(device, state.elements());
      vgpu::DeviceArray<float> g_mat(device, state.elements());
      core::generate_weights(device, policy, state.elements(), opt.seed, 0,
                             l_mat, g_mat);
      core::PsoParams params;
      const core::UpdateCoefficients coeff =
          core::make_coefficients(params, -5.12, 5.12);

      device.reset_counters();
      device.set_phase("swarm");
      vgpu::graph::IterationRecorder recorder(device, use_graph || fuse,
                                              fuse);
      for (int iter = 0; iter < opt.executed_iters; ++iter) {
        recorder.begin_iteration();
        core::swarm_update(device, policy, state, l_mat, g_mat, coeff,
                           core::UpdateTechnique::kGlobalMemory);
        recorder.end_iteration();
      }
      const double per_iter =
          device.modeled_seconds() / opt.executed_iters;
      const double full = per_iter * opt.iters;
      const auto decision = policy.for_elements(state.elements());
      const std::string row_label = fuse ? label + " +fusion" : label;
      std::vector<std::string> row = {
          row_label, std::to_string(decision.config.total_threads()),
          std::to_string(decision.thread_workload), fmt_fixed(full, 3)};
      std::vector<std::string> csv_row = {
          row_label, std::to_string(decision.config.total_threads()),
          std::to_string(decision.thread_workload), fmt_fixed(full, 4)};
      if (use_graph) {
        const vgpu::graph::GraphStats g = recorder.stats();
        const double graph_per_iter =
            (device.modeled_seconds() - g.modeled_seconds_saved) /
            opt.executed_iters;
        row.push_back(fmt_fixed(graph_per_iter * opt.iters, 3));
        csv_row.push_back(fmt_fixed(graph_per_iter * opt.iters, 4));
      }
      if (use_fuse) {
        if (fuse) {
          const vgpu::graph::GraphStats g = recorder.stats();
          const vgpu::graph::FusionStats f = recorder.fusion_stats();
          const double fused_per_iter =
              (device.modeled_seconds() - g.modeled_seconds_saved -
               f.modeled_seconds_saved) /
              opt.executed_iters;
          row.push_back(fmt_fixed(fused_per_iter * opt.iters, 3));
          csv_row.push_back(fmt_fixed(fused_per_iter * opt.iters, 4));
        } else {
          row.push_back("-");
          csv_row.push_back("-");
        }
      }
      table.add_row(row);
      csv.add_row(csv_row);
    }
  }

  if (use_tuned) {
    // The autotuner searched at this exact shape, its table installed for
    // the measurement only (ScopedTuning restores the ambient state).
    const vgpu::GpuSpec gpu = vgpu::tesla_v100();
    const tune::Tuner tuner(gpu);
    const std::int64_t elements = static_cast<std::int64_t>(n) * d;
    const tune::TuneReport report =
        tuner.tune(tune::engine_families(gpu),
                   {{"launch_policy", elements, d, n},
                    {"swarm_tile", elements, d, n}});
    vgpu::tuned::ScopedTuning scope;
    report.table.install();
    vgpu::tuned::set_enabled(true);

    vgpu::Device device;
    core::LaunchPolicy policy(device.spec());
    core::SwarmState state(device, n, d);
    core::initialize_swarm(device, policy, state, opt.seed, -5.12f, 5.12f,
                           5.12f);
    vgpu::DeviceArray<float> l_mat(device, state.elements());
    vgpu::DeviceArray<float> g_mat(device, state.elements());
    core::generate_weights(device, policy, state.elements(), opt.seed, 0,
                           l_mat, g_mat);
    core::PsoParams params;
    const core::UpdateCoefficients coeff =
        core::make_coefficients(params, -5.12, 5.12);
    device.reset_counters();
    device.set_phase("swarm");
    for (int iter = 0; iter < opt.executed_iters; ++iter) {
      core::swarm_update(device, policy, state, l_mat, g_mat, coeff,
                         core::UpdateTechnique::kGlobalMemory);
    }
    const double full =
        device.modeled_seconds() / opt.executed_iters * opt.iters;
    const auto decision = policy.for_elements(state.elements());
    std::vector<std::string> row = {
        "tuned (autotuner)", std::to_string(decision.config.total_threads()),
        std::to_string(decision.thread_workload), fmt_fixed(full, 3)};
    std::vector<std::string> csv_row = {
        "tuned (autotuner)", std::to_string(decision.config.total_threads()),
        std::to_string(decision.thread_workload), fmt_fixed(full, 4)};
    if (use_graph) {
      row.emplace_back("-");
      csv_row.emplace_back("-");
    }
    if (use_fuse) {
      row.emplace_back("-");
      csv_row.emplace_back("-");
    }
    table.add_row(row);
    csv.add_row(csv_row);
    table.add_note("tuned row: " + std::to_string(report.improved_groups()) +
                   " of " +
                   std::to_string(static_cast<int>(report.outcomes.size())) +
                   " groups improved at this shape; the candidate slate "
                   "always contains the default, so it can never regress");
  }

  table.add_note("the particle-level row is the granularity of the prior "
                 "GPU PSO implementations; the Eq. 3 row is FastPSO");
  if (use_graph) {
    table.add_note("graph column: one-node graph per iteration; a single "
                   "kernel cannot amortize the graph launch, so graph "
                   "modeled >= eager here (cf. micro_engine --graph)");
  }
  if (use_fuse) {
    table.add_note("+fusion rows: a one-kernel iteration has no run to "
                   "fuse (groups=0), so fused modeled = graph modeled — "
                   "fusion pays off in the multi-kernel pipeline "
                   "(micro_engine --fuse, tests/test_fusion.cpp)");
  }
  table.print(std::cout);
  maybe_write_csv(csv, opt.csv);
  return 0;
}
