// Ablation: multi-GPU scaling (paper Section 3.5). Sweeps the device count
// under both strategies and reports modeled elapsed time (devices run
// concurrently; the paper machine's PCIe links carry the exchanges) and
// solution quality.
//
//   ./ablation_multigpu [--particles 4000] [--dim 100] [--iters 100]

#include "bench_common.h"
#include "core/multi_gpu.h"
#include "core/optimizer.h"
#include "problems/problem.h"

using namespace fastpso;
using namespace fastpso::benchkit;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  core::PsoParams pso;
  pso.particles = static_cast<int>(args.get_int("particles", 4000));
  pso.dim = static_cast<int>(args.get_int("dim", 100));
  pso.max_iter = static_cast<int>(args.get_int("iters", 100));
  pso.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::string csv_path = args.get_string("csv", "");

  const auto problem = problems::make_problem("rastrigin");
  const core::Objective objective =
      core::objective_from_problem(*problem, pso.dim);

  TextTable table("Ablation: multi-GPU scaling (rastrigin, n=" +
                  std::to_string(pso.particles) + ", d=" +
                  std::to_string(pso.dim) + ", " +
                  std::to_string(pso.max_iter) + " iters)");
  table.set_header({"strategy", "devices", "modeled (s)",
                    "scaling vs 1 GPU", "final error"});
  CsvWriter csv({"strategy", "devices", "modeled_s", "speedup", "error"});

  for (auto strategy : {core::MultiGpuStrategy::kTileMatrix,
                        core::MultiGpuStrategy::kParticleSplit}) {
    double single = 0;
    for (int devices : {1, 2, 4, 8}) {
      core::MultiGpuParams params;
      params.pso = pso;
      params.devices = devices;
      params.strategy = strategy;
      core::MultiGpuOptimizer optimizer(params);
      const core::Result result = optimizer.optimize(objective);
      if (devices == 1) {
        single = result.modeled_seconds;
      }
      const double speedup = single / result.modeled_seconds;
      table.add_row({to_string(strategy), std::to_string(devices),
                     fmt_fixed(result.modeled_seconds, 4),
                     fmt_speedup(speedup),
                     fmt_fixed(result.error_to(objective.optimum), 3)});
      csv.add_row({to_string(strategy), std::to_string(devices),
                   fmt_fixed(result.modeled_seconds, 5),
                   fmt_fixed(speedup, 3),
                   fmt_fixed(result.error_to(objective.optimum), 4)});
    }
  }
  table.add_note("scaling is sublinear: per-device work shrinks while the "
                 "per-iteration exchange and fixed kernel overheads do not "
                 "— and a swarm this size already under-fills one V100");
  table.print(std::cout);
  maybe_write_csv(csv, csv_path);
  return 0;
}
