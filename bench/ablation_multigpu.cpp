// Ablation: multi-GPU scaling (paper Section 3.5). Sweeps the device count
// under both strategies and both stacks — the legacy MultiGpuOptimizer
// (staged host exchanges, core/multi_gpu.h) and the modern comm stack
// (DeviceGroup + modeled collectives, core/multi_device.h) — and reports
// modeled elapsed time and solution quality. The two stacks are
// bitwise-identical in result (pinned by tests/test_multi_gpu.cpp); only
// the modeled exchange differs, which is exactly what this table isolates.
//
//   ./ablation_multigpu [--particles 4000] [--dim 100] [--iters 100]

#include "bench_common.h"
#include "core/multi_device.h"
#include "core/multi_gpu.h"
#include "core/optimizer.h"
#include "problems/problem.h"

using namespace fastpso;
using namespace fastpso::benchkit;

namespace {

struct StackRun {
  double modeled_seconds = 0;
  double error = 0;
};

StackRun run_legacy(const core::PsoParams& pso, int devices,
                    core::MultiGpuStrategy strategy,
                    const core::Objective& objective) {
  core::MultiGpuParams params;
  params.pso = pso;
  params.devices = devices;
  params.strategy = strategy;
  core::MultiGpuOptimizer optimizer(params);
  const core::Result result = optimizer.optimize(objective);
  return {result.modeled_seconds, result.error_to(objective.optimum)};
}

StackRun run_comm(const core::PsoParams& pso, int devices,
                  core::MultiGpuStrategy strategy,
                  const core::Objective& objective) {
  core::MultiDeviceParams params;
  params.pso = pso;
  params.devices = devices;
  params.strategy = strategy;
  core::MultiDeviceOptimizer optimizer(params);
  const core::Result result = optimizer.optimize(objective);
  return {result.modeled_seconds, result.error_to(objective.optimum)};
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  core::PsoParams pso;
  pso.particles = static_cast<int>(args.get_int("particles", 4000));
  pso.dim = static_cast<int>(args.get_int("dim", 100));
  pso.max_iter = static_cast<int>(args.get_int("iters", 100));
  pso.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::string csv_path = args.get_string("csv", "");

  const auto problem = problems::make_problem("rastrigin");
  const core::Objective objective =
      core::objective_from_problem(*problem, pso.dim);

  TextTable table("Ablation: multi-GPU scaling (rastrigin, n=" +
                  std::to_string(pso.particles) + ", d=" +
                  std::to_string(pso.dim) + ", " +
                  std::to_string(pso.max_iter) + " iters)");
  table.set_header({"strategy", "stack", "devices", "modeled (s)",
                    "scaling vs 1 GPU", "final error"});
  CsvWriter csv({"strategy", "stack", "devices", "modeled_s", "speedup",
                 "error"});

  for (auto strategy : {core::MultiGpuStrategy::kTileMatrix,
                        core::MultiGpuStrategy::kParticleSplit}) {
    for (const char* stack : {"legacy", "comm"}) {
      const bool legacy = std::string(stack) == "legacy";
      double single = 0;
      for (int devices : {1, 2, 4, 8, 16}) {
        const StackRun run = legacy
                                 ? run_legacy(pso, devices, strategy,
                                              objective)
                                 : run_comm(pso, devices, strategy,
                                            objective);
        if (devices == 1) {
          single = run.modeled_seconds;
        }
        const double speedup = single / run.modeled_seconds;
        table.add_row({to_string(strategy), stack, std::to_string(devices),
                       fmt_fixed(run.modeled_seconds, 4),
                       fmt_speedup(speedup), fmt_fixed(run.error, 3)});
        csv.add_row({to_string(strategy), stack, std::to_string(devices),
                     fmt_fixed(run.modeled_seconds, 5),
                     fmt_fixed(speedup, 3), fmt_fixed(run.error, 4)});
      }
    }
  }
  table.add_note("scaling is sublinear: per-device work shrinks while the "
                 "per-iteration exchange and fixed kernel overheads do not "
                 "— and a swarm this size already under-fills one V100. "
                 "The comm stack's ring collectives beat the legacy staged "
                 "host exchange, most visibly at high device counts");
  table.print(std::cout);
  maybe_write_csv(csv, csv_path);
  return 0;
}
