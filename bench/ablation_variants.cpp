// Ablation: algorithmic variants beyond the paper — synchronous vs.
// asynchronous updates, and global vs. ring topology. Reports modeled time
// and final error on two landscapes (unimodal Sphere, multimodal
// Rastrigin) so the trade-offs are visible:
//
//   * async fuses eval+update per particle (fresher gbest) but forfeits
//     element-wise parallelism -> slower on the device;
//   * the ring topology slows information propagation -> typically better
//     late-stage diversity on multimodal problems, at a small extra cost
//     for the neighborhood reduction;
//   * the overlapped pipeline hides weight generation behind evaluation
//     (bit-identical results, lower elapsed time).
//
//   ./ablation_variants [--particles 1000] [--dim 30] [--iters 400]

#include "bench_common.h"
#include "core/optimizer.h"
#include "problems/problem.h"
#include "vgpu/device.h"

using namespace fastpso;
using namespace fastpso::benchkit;

namespace {

struct Variant {
  std::string label;
  core::Topology topology;
  core::Synchronization synchronization;
  bool overlap_init = false;
};

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  core::PsoParams params;
  params.particles = static_cast<int>(args.get_int("particles", 1000));
  params.dim = static_cast<int>(args.get_int("dim", 30));
  params.max_iter = static_cast<int>(args.get_int("iters", 400));
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::string csv_path = args.get_string("csv", "");

  const std::vector<Variant> variants = {
      {"sync/global (paper)", core::Topology::kGlobal,
       core::Synchronization::kSynchronous, false},
      {"sync/ring", core::Topology::kRing,
       core::Synchronization::kSynchronous, false},
      {"async/global", core::Topology::kGlobal,
       core::Synchronization::kAsynchronous, false},
      {"sync/global + overlap", core::Topology::kGlobal,
       core::Synchronization::kSynchronous, true},
  };

  CsvWriter csv({"problem", "variant", "modeled_s", "error"});
  for (const std::string problem_name : {"sphere", "rastrigin"}) {
    const auto problem = problems::make_problem(problem_name);
    const core::Objective objective =
        core::objective_from_problem(*problem, params.dim);

    TextTable table("Ablation: PSO variants (" + problem_name + ", n=" +
                    std::to_string(params.particles) + ", d=" +
                    std::to_string(params.dim) + ", " +
                    std::to_string(params.max_iter) + " iters)");
    table.set_header({"variant", "modeled (s)", "final error"});
    for (const Variant& variant : variants) {
      core::PsoParams p = params;
      p.topology = variant.topology;
      p.synchronization = variant.synchronization;
      p.overlap_init = variant.overlap_init;
      vgpu::Device device;
      core::Optimizer optimizer(device, p);
      const core::Result result = optimizer.optimize(objective);
      const double error = result.error_to(objective.optimum);
      table.add_row({variant.label, fmt_fixed(result.modeled_seconds, 4),
                     fmt_fixed(error, 4)});
      csv.add_row({problem_name, variant.label,
                   fmt_fixed(result.modeled_seconds, 5),
                   fmt_fixed(error, 5)});
    }
    table.print(std::cout);
  }
  maybe_write_csv(csv, csv_path);
  return 0;
}
