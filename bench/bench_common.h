// Shared helpers for the table/figure bench binaries.
#pragma once

#include <iostream>
#include <string>

#include "benchkit/runner.h"
#include "common/cli.h"
#include "common/csv.h"
#include "common/table.h"

namespace fastpso::benchkit {

/// Standard bench configuration parsed from the command line.
struct BenchOptions {
  int particles = 5000;
  int dim = 200;
  int iters = 2000;          ///< reported iteration count (paper scale)
  int executed_iters = 20;   ///< really executed per cell
  std::uint64_t seed = 42;
  std::string csv;           ///< optional CSV output path
  /// Optional Chrome-trace output path (--prof-trace): benches that profile
  /// write the canonical run's event timeline here (chrome://tracing /
  /// Perfetto; see DESIGN.md §7).
  std::string prof_trace;
  /// Golden-regression mode: a tiny fixed configuration whose CSV output is
  /// fully deterministic (each bench pins its own smoke shape and writes
  /// wall-clock fields as 0.000 so the file is machine-independent).
  bool smoke = false;

  static BenchOptions parse(const CliArgs& args, int default_executed) {
    BenchOptions opt;
    opt.particles = static_cast<int>(args.get_int("particles", 5000));
    opt.dim = static_cast<int>(args.get_int("dim", 200));
    opt.iters = static_cast<int>(args.get_int("iters", 2000));
    opt.executed_iters = static_cast<int>(
        args.get_int("executed-iters", default_executed));
    if (args.get_bool("full", false)) {
      opt.executed_iters = opt.iters;
    }
    opt.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    opt.csv = args.get_string("csv", "");
    opt.prof_trace = args.get_string("prof-trace", "");
    opt.smoke = args.get_bool("smoke", false);
    return opt;
  }
};

inline void maybe_write_csv(const CsvWriter& csv, const std::string& path) {
  if (path.empty()) {
    return;
  }
  if (csv.write(path)) {
    std::cout << "csv written: " << path << "\n";
  } else {
    std::cout << "csv write FAILED: " << path << "\n";
  }
}

}  // namespace fastpso::benchkit
