// Figure 4: effect of the number of particles (a,c,e,g: n=2000..5000 at
// d=50) and of dimensions (b,d,f,h: d=50..200 at n=2000) on elapsed time,
// for all seven implementations on the four problems — plus the multi-device
// extension (paper Section 3.5 on the modern stack): weak and strong
// tile-matrix scaling across 1..16 virtual V100s joined by modeled
// collectives (core/multi_device.h).
//
//   ./fig4_scaling [--executed-iters 10] [--csv out.csv]
//                  [--json BENCH_multigpu.json]
//                  [--prof-trace multigpu_trace.json]
//
// --smoke runs only the multi-device sweep at a small fixed shape, writes
// BENCH_multigpu.json and gates the 8-device weak-scaling efficiency (the
// CI contract: adding devices at constant per-device work must stay nearly
// free, because the collectives are latency-bound while the per-iteration
// compute is not).
//
// --prof-trace writes a merged per-device Chrome trace of a profiled
// 2-device run: one process lane per device, with the collective ("comm")
// stream overlapping the next iteration's weight fills on stream 0.

#include <fstream>
#include <sstream>

#include "bench_common.h"
#include "common/trace_export.h"
#include "core/multi_device.h"
#include "core/objective.h"
#include "problems/problem.h"
#include "vgpu/prof/prof.h"

using namespace fastpso;
using namespace fastpso::benchkit;

namespace {

void run_sweep(const std::string& problem, bool vary_particles,
               const BenchOptions& opt, CsvWriter& csv) {
  const std::vector<int> particle_points = {2000, 3000, 4000, 5000};
  const std::vector<int> dim_points = {50, 100, 150, 200};
  const auto& points = vary_particles ? particle_points : dim_points;
  const std::string axis = vary_particles ? "#particles" : "#dimensions";

  TextTable table("Figure 4: varying " + axis + " (" + problem +
                  ") — modeled sec");
  std::vector<std::string> header = {axis};
  for (Impl impl : all_impls()) {
    header.push_back(to_string(impl));
  }
  table.set_header(header);

  for (int point : points) {
    std::vector<std::string> row = {std::to_string(point)};
    for (Impl impl : all_impls()) {
      RunSpec spec;
      spec.impl = impl;
      spec.problem = problem;
      spec.particles = vary_particles ? point : 2000;
      spec.dim = vary_particles ? 50 : point;
      spec.iters = opt.iters;
      spec.executed_iters = opt.executed_iters;
      spec.seed = opt.seed;
      const RunOutcome outcome = run_spec(spec);
      row.push_back(fmt_fixed(outcome.modeled_seconds_full, 2));
      csv.add_row({problem, axis, std::to_string(point), to_string(impl),
                   fmt_fixed(outcome.modeled_seconds_full, 4)});
    }
    table.add_row(row);
  }
  table.add_note("paper shape: fastpso stays ~flat (<1s); the other "
                 "implementations grow with " + axis);
  table.print(std::cout);
}

// --- multi-device scaling (core/multi_device.h) ---------------------------

/// The fixed per-run shape of the multi-device sweep. Weak scaling holds
/// per_device_particles constant while the swarm grows with the device
/// count; strong scaling splits per_device_particles * 16 across whatever
/// devices are available.
struct MdShape {
  int per_device_particles = 2000;
  int dim = 50;
  int iters = 10;
};

double run_multidevice_seconds(int devices, int particles,
                               const MdShape& shape, std::uint64_t seed,
                               const core::Objective& objective) {
  core::MultiDeviceParams params;
  params.pso.particles = particles;
  params.pso.dim = shape.dim;
  params.pso.max_iter = shape.iters;
  params.pso.seed = seed;
  params.devices = devices;
  params.strategy = core::MultiGpuStrategy::kTileMatrix;
  core::MultiDeviceOptimizer optimizer(params);
  return optimizer.optimize(objective).modeled_seconds;
}

struct MdPoint {
  int devices = 1;
  double weak_s = 0;    ///< modeled sec, n = devices * per_device_particles
  double weak_eff = 1;  ///< T(1) / T(N): 1.0 is perfect weak scaling
  double strong_s = 0;  ///< modeled sec, n fixed at per_device_particles*16
  double strong_eff = 1;  ///< T(1) / (N * T(N)): 1.0 is perfect speedup
};

std::vector<MdPoint> run_multidevice_scaling(const BenchOptions& opt,
                                             CsvWriter& csv) {
  const std::vector<int> device_counts = {1, 2, 4, 8, 16};
  MdShape shape;
  if (opt.smoke) {
    // Small but not tiny: the per-iteration compute must stay well above
    // the collective latency floor or the efficiency gate would measure
    // the link model, not the scaling behaviour.
    shape.per_device_particles = 2048;
    shape.dim = 48;
    shape.iters = 20;
  } else {
    shape.per_device_particles = 2000;
    shape.dim = 50;
    shape.iters = opt.executed_iters;
  }
  const int strong_total = shape.per_device_particles * device_counts.back();

  const auto problem = problems::make_problem("rastrigin");
  const core::Objective objective =
      core::objective_from_problem(*problem, shape.dim);

  TextTable table(
      "Figure 4 (multi-device): tile-matrix weak+strong scaling, 1..16 "
      "virtual V100s (rastrigin, d=" + std::to_string(shape.dim) + ", " +
      std::to_string(shape.iters) + " iters)");
  table.set_header({"devices", "weak n", "weak modeled (s)", "weak eff",
                    "strong n", "strong modeled (s)", "strong speedup"});

  std::vector<MdPoint> points;
  double weak_base = 0;
  double strong_base = 0;
  for (int devices : device_counts) {
    MdPoint point;
    point.devices = devices;
    const int weak_total = shape.per_device_particles * devices;
    point.weak_s = run_multidevice_seconds(devices, weak_total, shape,
                                           opt.seed, objective);
    point.strong_s = run_multidevice_seconds(devices, strong_total, shape,
                                             opt.seed, objective);
    if (devices == 1) {
      weak_base = point.weak_s;
      strong_base = point.strong_s;
    }
    point.weak_eff = weak_base / point.weak_s;
    point.strong_eff = strong_base / (devices * point.strong_s);
    table.add_row({std::to_string(devices), std::to_string(weak_total),
                   fmt_fixed(point.weak_s, 4), fmt_fixed(point.weak_eff, 3),
                   std::to_string(strong_total),
                   fmt_fixed(point.strong_s, 4),
                   fmt_speedup(strong_base / point.strong_s)});
    csv.add_row({"rastrigin", "#devices", std::to_string(devices), "md-weak",
                 fmt_fixed(point.weak_s, 6)});
    csv.add_row({"rastrigin", "#devices", std::to_string(devices),
                 "md-strong", fmt_fixed(point.strong_s, 6)});
    points.push_back(point);
  }
  table.add_note("weak efficiency dips only by the collective cost (ring "
                 "latency grows with the device count); strong scaling "
                 "flattens once per-device shards under-fill a V100");
  table.print(std::cout);
  return points;
}

void write_multigpu_json(const std::string& path,
                         const std::vector<MdPoint>& points, bool smoke) {
  std::ostringstream json;
  auto list = [&](auto field) {
    std::ostringstream out;
    for (std::size_t i = 0; i < points.size(); ++i) {
      out << (i ? ", " : "") << field(points[i]);
    }
    return out.str();
  };
  json << "{\n"
       << "  \"bench\": \"fig4_scaling_multidevice\",\n"
       << "  \"smoke\": " << (smoke ? "true" : "false") << ",\n"
       << "  \"devices\": ["
       << list([](const MdPoint& p) { return std::to_string(p.devices); })
       << "],\n"
       << "  \"weak_modeled_s\": ["
       << list([](const MdPoint& p) { return fmt_fixed(p.weak_s, 6); })
       << "],\n"
       << "  \"weak_efficiency\": ["
       << list([](const MdPoint& p) { return fmt_fixed(p.weak_eff, 4); })
       << "],\n"
       << "  \"strong_modeled_s\": ["
       << list([](const MdPoint& p) { return fmt_fixed(p.strong_s, 6); })
       << "],\n"
       << "  \"strong_efficiency\": ["
       << list([](const MdPoint& p) { return fmt_fixed(p.strong_eff, 4); })
       << "]\n"
       << "}\n";
  std::ofstream file(path);
  file << json.str();
  std::cout << (file ? "json written: " : "json write FAILED: ") << path
            << "\n";
}

/// Profiled 2-device run; writes the merged per-device Chrome trace
/// (pid = device, tid = stream — the "comm" lane shows the collectives
/// overlapping the next iteration's weight fills).
void write_multidevice_trace(const std::string& path,
                             const BenchOptions& opt) {
  const bool saved_prof = vgpu::prof::active();
  vgpu::prof::set_enabled(true);
  MdShape shape;
  shape.per_device_particles = 256;
  shape.dim = 32;
  shape.iters = 10;
  const auto problem = problems::make_problem("rastrigin");
  const core::Objective objective =
      core::objective_from_problem(*problem, shape.dim);
  core::MultiDeviceParams params;
  params.pso.particles = 2 * shape.per_device_particles;
  params.pso.dim = shape.dim;
  params.pso.max_iter = shape.iters;
  params.pso.seed = opt.seed;
  params.devices = 2;
  params.strategy = core::MultiGpuStrategy::kTileMatrix;
  core::MultiDeviceOptimizer optimizer(params);
  (void)optimizer.optimize(objective);
  vgpu::prof::set_enabled(saved_prof);

  std::vector<TraceEvent> events;
  const vgpu::comm::DeviceGroup* group = optimizer.group();
  for (int device = 0; device < group->size(); ++device) {
    if (const vgpu::prof::Profile* profile = group->device(device).profile()) {
      const std::vector<TraceEvent> part = profile->trace_events(device);
      events.insert(events.end(), part.begin(), part.end());
    }
  }
  std::cout << (write_chrome_trace(path, events) ? "trace written: "
                                                 : "trace write FAILED: ")
            << path << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const BenchOptions opt = BenchOptions::parse(args, /*default_executed=*/10);
  const std::string json_path =
      args.get_string("json", opt.smoke ? "BENCH_multigpu.json" : "");
  CsvWriter csv({"problem", "axis", "value", "impl", "modeled_s"});

  if (!opt.smoke) {
    for (const std::string problem :
         {"sphere", "griewank", "easom", "threadconf"}) {
      run_sweep(problem, /*vary_particles=*/true, opt, csv);
      run_sweep(problem, /*vary_particles=*/false, opt, csv);
    }
  }

  const std::vector<MdPoint> points = run_multidevice_scaling(opt, csv);
  if (!json_path.empty()) {
    write_multigpu_json(json_path, points, opt.smoke);
  }
  if (!opt.prof_trace.empty()) {
    write_multidevice_trace(opt.prof_trace, opt);
  }
  maybe_write_csv(csv, opt.csv);

  if (opt.smoke) {
    // CI efficiency gate. Weak scaling at constant per-device work only
    // pays the collective cost, which is latency-dominated at this payload
    // (a d-float row per iteration): measured 8-device efficiency is ~0.70
    // at the smoke shape (see BENCH_multigpu.json). The floor sits well
    // below that to absorb future cost-model tuning while still catching a
    // serialized exchange (devices running back-to-back would land near
    // 1/devices ~ 0.125) or a collective suddenly priced per-payload.
    const double floor = 0.55;
    for (const MdPoint& point : points) {
      if (point.devices != 8) {
        continue;
      }
      const bool pass = point.weak_eff >= floor;
      std::cout << "gate weak_efficiency_8dev: " << (pass ? "ok" : "REGRESSION")
                << " (" << fmt_fixed(point.weak_eff, 4) << " vs floor "
                << fmt_fixed(floor, 2)
                << "; rule: weak scaling pays only the latency-bound "
                   "collectives)\n";
      if (!pass) {
        std::cerr << "fig4_scaling: 8-device weak-scaling efficiency "
                  << fmt_fixed(point.weak_eff, 4) << " fell below "
                  << fmt_fixed(floor, 2) << "\n";
        return 1;
      }
    }
  }
  return 0;
}
