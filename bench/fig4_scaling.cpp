// Figure 4: effect of the number of particles (a,c,e,g: n=2000..5000 at
// d=50) and of dimensions (b,d,f,h: d=50..200 at n=2000) on elapsed time,
// for all seven implementations on the four problems.
//
//   ./fig4_scaling [--executed-iters 10] [--csv out.csv]

#include "bench_common.h"

using namespace fastpso;
using namespace fastpso::benchkit;

namespace {

void run_sweep(const std::string& problem, bool vary_particles,
               const BenchOptions& opt, CsvWriter& csv) {
  const std::vector<int> particle_points = {2000, 3000, 4000, 5000};
  const std::vector<int> dim_points = {50, 100, 150, 200};
  const auto& points = vary_particles ? particle_points : dim_points;
  const std::string axis = vary_particles ? "#particles" : "#dimensions";

  TextTable table("Figure 4: varying " + axis + " (" + problem +
                  ") — modeled sec");
  std::vector<std::string> header = {axis};
  for (Impl impl : all_impls()) {
    header.push_back(to_string(impl));
  }
  table.set_header(header);

  for (int point : points) {
    std::vector<std::string> row = {std::to_string(point)};
    for (Impl impl : all_impls()) {
      RunSpec spec;
      spec.impl = impl;
      spec.problem = problem;
      spec.particles = vary_particles ? point : 2000;
      spec.dim = vary_particles ? 50 : point;
      spec.iters = opt.iters;
      spec.executed_iters = opt.executed_iters;
      spec.seed = opt.seed;
      const RunOutcome outcome = run_spec(spec);
      row.push_back(fmt_fixed(outcome.modeled_seconds_full, 2));
      csv.add_row({problem, axis, std::to_string(point), to_string(impl),
                   fmt_fixed(outcome.modeled_seconds_full, 4)});
    }
    table.add_row(row);
  }
  table.add_note("paper shape: fastpso stays ~flat (<1s); the other "
                 "implementations grow with " + axis);
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const BenchOptions opt = BenchOptions::parse(args, /*default_executed=*/10);
  CsvWriter csv({"problem", "axis", "value", "impl", "modeled_s"});

  for (const std::string problem :
       {"sphere", "griewank", "easom", "threadconf"}) {
    run_sweep(problem, /*vary_particles=*/true, opt, csv);
    run_sweep(problem, /*vary_particles=*/false, opt, csv);
  }
  maybe_write_csv(csv, opt.csv);
  return 0;
}
