// Figure 5: elapsed time of each step in FastPSO (paper Section 4.4) —
// init / eval / pbest / gbest / swarm for fastpso-seq, fastpso-omp and
// fastpso, on the four problems at n=5000, d=200.
//
// The per-step numbers come from the vgpu::prof event timeline (every run
// here executes with profiling on): each implementation's profile is
// aggregated by phase and scaled to the reported iteration count. Because
// profile events carry the exact doubles the performance model handed to
// the breakdown, these figures are bit-identical to the pre-profiler
// TimeBreakdown output.
//
//   ./fig5_breakdown [--executed-iters 20] [--prof-trace fig5_trace.json]
//
// --prof-trace writes the fastpso/sphere run's Chrome trace.

#include "bench_common.h"
#include "vgpu/prof/prof.h"

using namespace fastpso;
using namespace fastpso::benchkit;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const BenchOptions opt = BenchOptions::parse(args, /*default_executed=*/20);

  vgpu::prof::set_enabled(true);

  const std::vector<std::string> problems = {"sphere", "griewank", "easom",
                                             "threadconf"};
  const std::vector<Impl> impls = {Impl::kFastPsoSeq, Impl::kFastPsoOmp,
                                   Impl::kFastPso};
  const std::vector<std::string> steps = {"init", "eval", "pbest", "gbest",
                                          "swarm"};

  CsvWriter csv({"problem", "impl", "step", "modeled_s"});
  vgpu::prof::Profile trace;  // fastpso on sphere, for --prof-trace

  for (const auto& problem : problems) {
    TextTable table("Figure 5 breakdown (" + problem + ") — modeled sec");
    std::vector<std::string> header = {"impl"};
    for (const auto& step : steps) {
      header.push_back(step);
    }
    header.push_back("total");
    table.set_header(header);

    for (Impl impl : impls) {
      RunSpec spec;
      spec.impl = impl;
      spec.problem = problem;
      spec.particles = opt.particles;
      spec.dim = opt.dim;
      spec.iters = opt.iters;
      spec.executed_iters = opt.executed_iters;
      spec.seed = opt.seed;
      RunOutcome outcome = run_spec(spec);

      // Phase totals from the event timeline, scaled to RunSpec::iters.
      const auto by_phase = outcome.result.profile.seconds_by_phase();
      std::vector<std::string> row = {to_string(impl)};
      for (const auto& step : steps) {
        const auto it = by_phase.find(step);
        const double s =
            it != by_phase.end() ? it->second * outcome.scale : 0.0;
        row.push_back(fmt_fixed(s, 3));
        csv.add_row({problem, to_string(impl), step, fmt_fixed(s, 4)});
      }
      double total = 0;
      for (const auto& [step, seconds] : by_phase) {
        total += seconds * outcome.scale;
      }
      row.push_back(fmt_fixed(total, 3));
      table.add_row(row);

      if (impl == Impl::kFastPso && problem == "sphere") {
        trace = std::move(outcome.result.profile);
      }
    }
    table.add_note("paper shape: swarm update takes >80% of the CPU "
                   "versions; fastpso's swarm step is <0.1s of a ~0.7s run");
    table.print(std::cout);
  }
  maybe_write_csv(csv, opt.csv);
  if (!opt.prof_trace.empty()) {
    std::cout << (trace.write_chrome_trace(opt.prof_trace)
                      ? "prof trace written: "
                      : "prof trace write FAILED: ")
              << opt.prof_trace << "\n";
  }
  return 0;
}
