// Figure 5: elapsed time of each step in FastPSO (paper Section 4.4) —
// init / eval / pbest / gbest / swarm for fastpso-seq, fastpso-omp and
// fastpso, on the four problems at n=5000, d=200.
//
//   ./fig5_breakdown [--executed-iters 20]

#include "bench_common.h"

using namespace fastpso;
using namespace fastpso::benchkit;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const BenchOptions opt = BenchOptions::parse(args, /*default_executed=*/20);

  const std::vector<std::string> problems = {"sphere", "griewank", "easom",
                                             "threadconf"};
  const std::vector<Impl> impls = {Impl::kFastPsoSeq, Impl::kFastPsoOmp,
                                   Impl::kFastPso};
  const std::vector<std::string> steps = {"init", "eval", "pbest", "gbest",
                                          "swarm"};

  CsvWriter csv({"problem", "impl", "step", "modeled_s"});

  for (const auto& problem : problems) {
    TextTable table("Figure 5 breakdown (" + problem + ") — modeled sec");
    std::vector<std::string> header = {"impl"};
    for (const auto& step : steps) {
      header.push_back(step);
    }
    header.push_back("total");
    table.set_header(header);

    for (Impl impl : impls) {
      RunSpec spec;
      spec.impl = impl;
      spec.problem = problem;
      spec.particles = opt.particles;
      spec.dim = opt.dim;
      spec.iters = opt.iters;
      spec.executed_iters = opt.executed_iters;
      spec.seed = opt.seed;
      const RunOutcome outcome = run_spec(spec);

      std::vector<std::string> row = {to_string(impl)};
      for (const auto& step : steps) {
        const double s = outcome.modeled_breakdown_full.get(step);
        row.push_back(fmt_fixed(s, 3));
        csv.add_row({problem, to_string(impl), step, fmt_fixed(s, 4)});
      }
      row.push_back(fmt_fixed(outcome.modeled_breakdown_full.total(), 3));
      table.add_row(row);
    }
    table.add_note("paper shape: swarm update takes >80% of the CPU "
                   "versions; fastpso's swarm step is <0.1s of a ~0.7s run");
    table.print(std::cout);
  }
  maybe_write_csv(csv, opt.csv);
  return 0;
}
