// Figure 6: comparison of different swarm-update techniques (paper Section
// 4.5): CPU for-loop, OpenMP, and the three GPU kernels (global memory,
// shared memory, tensor core). Reports the swarm-update step's modeled time
// on the four problems.
//
//   ./fig6_update_techniques [--executed-iters 20]

#include "bench_common.h"

using namespace fastpso;
using namespace fastpso::benchkit;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const BenchOptions opt = BenchOptions::parse(args, /*default_executed=*/20);

  struct Technique {
    std::string label;
    Impl impl;
    core::UpdateTechnique kernel;
  };
  const std::vector<Technique> techniques = {
      {"for-loop", Impl::kFastPsoSeq, core::UpdateTechnique::kGlobalMemory},
      {"OpenMP", Impl::kFastPsoOmp, core::UpdateTechnique::kGlobalMemory},
      {"global-mem", Impl::kFastPso, core::UpdateTechnique::kGlobalMemory},
      {"shared-mem", Impl::kFastPso, core::UpdateTechnique::kSharedMemory},
      {"tensorcore", Impl::kFastPso, core::UpdateTechnique::kTensorCore},
  };

  TextTable table("Figure 6: swarm-update techniques — modeled sec of the "
                  "swarm step");
  std::vector<std::string> header = {"problem"};
  for (const auto& technique : techniques) {
    header.push_back(technique.label);
  }
  table.set_header(header);
  CsvWriter csv({"problem", "technique", "swarm_modeled_s"});

  for (const std::string problem :
       {"sphere", "griewank", "easom", "threadconf"}) {
    std::vector<std::string> row = {problem};
    for (const auto& technique : techniques) {
      RunSpec spec;
      spec.impl = technique.impl;
      spec.problem = problem;
      spec.particles = opt.particles;
      spec.dim = opt.dim;
      spec.iters = opt.iters;
      spec.executed_iters = opt.executed_iters;
      spec.seed = opt.seed;
      spec.technique = technique.kernel;
      const RunOutcome outcome = run_spec(spec);
      const double swarm_s = outcome.modeled_breakdown_full.get("swarm");
      row.push_back(fmt_fixed(swarm_s, 3));
      csv.add_row({problem, technique.label, fmt_fixed(swarm_s, 4)});
    }
    table.add_row(row);
  }

  table.add_note("paper shape: for-loop >10s; OpenMP ~5s; the three GPU "
                 "techniques all <0.3s and within a few percent of each "
                 "other (the kernel is memory-bound)");
  table.print(std::cout);
  maybe_write_csv(csv, opt.csv);
  return 0;
}
