// micro_engine: engine-level microbenchmarks for the host execution fast
// path (DESIGN.md §1). Three probes:
//
//   1. launch throughput — a trivial element-wise kernel dispatched through
//      Device::launch_elements with the fast path on (flat index loop) and
//      off (faithful per-virtual-thread grid-stride), in launches/sec.
//   2. eval throughput — Problem::eval_batch (one virtual call per batch,
//      devirtualized inner loop) vs. one virtual eval_f32 call per particle,
//      in particle evaluations/sec.
//   3. end-to-end wall-clock of the fixed table1 --smoke configuration
//      (4 problems x 7 implementations, 64 particles, dim 8, 5 executed
//      iterations), best of a few repetitions.
//   4. (--prof-overhead) launch throughput with the vgpu::prof profiler off
//      vs on — the off number pins the "zero overhead when off" promise
//      (one branch on the hot path), the on number reports the cost of
//      event capture, plus the profile's modeled-vs-wall ratio.
//
// Both launch paths issue the identical account_launch call, so modeled
// seconds and DeviceCounters are unaffected by the toggle — this binary
// measures host execution speed only.
//
//   ./micro_engine [--smoke] [--prof-overhead] [--json BENCH_engine.json]
//                  [--baseline bench/BENCH_engine_baseline.json]
//
// --smoke shrinks the repetition counts for CI and emits BENCH_engine.json.
// --baseline compares against a checked-in conservative baseline and exits
// non-zero when any metric regresses by more than 2x; with --prof-overhead
// it additionally fails if profiler-off launch throughput sits more than 5%
// below the baseline (the profiler must stay free when disabled).

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "problems/problem.h"
#include "vgpu/device.h"
#include "vgpu/prof/prof.h"

using namespace fastpso;
using namespace fastpso::benchkit;

namespace {

struct LaunchResult {
  double fast_per_s = 0;
  double legacy_per_s = 0;
  double checksum = 0;  ///< defeats dead-code elimination
};

/// Trivial-body element-wise kernel, timed with the fast path on and off.
/// The body is one fused multiply-add so the flat loop vectorizes; the
/// legacy path pays the per-virtual-thread dispatch that the fast path
/// removes. Same cfg, same cost, same account_launch on both sides.
LaunchResult bench_launch(std::int64_t n_elems, int reps) {
  vgpu::Device device;
  std::vector<float> in(static_cast<std::size_t>(n_elems));
  std::vector<float> out(static_cast<std::size_t>(n_elems), 0.0f);
  for (std::int64_t i = 0; i < n_elems; ++i) {
    in[static_cast<std::size_t>(i)] = static_cast<float>(i % 97) * 0.125f;
  }
  vgpu::LaunchConfig cfg;
  cfg.block = 256;
  cfg.grid = (n_elems + cfg.block - 1) / cfg.block;
  vgpu::KernelCostSpec cost;
  cost.flops = 2.0 * static_cast<double>(n_elems);
  cost.dram_read_bytes = static_cast<double>(n_elems) * sizeof(float);
  cost.dram_write_bytes = static_cast<double>(n_elems) * sizeof(float);
  const float* src = in.data();
  float* dst = out.data();

  const bool saved = vgpu::fast_path_enabled();
  LaunchResult r;
  for (const bool fast : {true, false}) {
    vgpu::set_fast_path_enabled(fast);
    auto run = [&](int count) {
      for (int rep = 0; rep < count; ++rep) {
        device.launch_elements(cfg, cost, n_elems, [&](std::int64_t i) {
          dst[i] = src[i] * 2.0f + 1.0f;
        });
      }
    };
    run(reps / 10 + 1);  // warmup
    Stopwatch watch;
    run(reps);
    const double per_s = reps / watch.elapsed_s();
    (fast ? r.fast_per_s : r.legacy_per_s) = per_s;
    r.checksum += static_cast<double>(dst[static_cast<std::size_t>(
        n_elems - 1)]);
  }
  vgpu::set_fast_path_enabled(saved);
  return r;
}

struct EvalResult {
  double batch_per_s = 0;    ///< particle evaluations/sec via eval_batch
  double virtual_per_s = 0;  ///< one virtual eval_f32 call per particle
  double checksum = 0;
};

EvalResult bench_eval(const std::string& problem_name, int n, int d,
                      int reps) {
  const std::unique_ptr<problems::Problem> problem =
      problems::make_problem(problem_name);
  std::vector<float> x(static_cast<std::size_t>(n) * d);
  std::vector<float> out(static_cast<std::size_t>(n), 0.0f);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(i % 251) * 0.01f - 1.0f;
  }

  EvalResult r;
  const double evals = static_cast<double>(reps) * n;
  {
    problem->eval_batch(x.data(), n, d, out.data());  // warmup
    Stopwatch watch;
    for (int rep = 0; rep < reps; ++rep) {
      problem->eval_batch(x.data(), n, d, out.data());
    }
    r.batch_per_s = evals / watch.elapsed_s();
    r.checksum += static_cast<double>(out[static_cast<std::size_t>(n - 1)]);
  }
  {
    const problems::Problem* base = problem.get();
    auto run = [&] {
      for (int i = 0; i < n; ++i) {
        out[static_cast<std::size_t>(i)] = static_cast<float>(
            base->eval_f32(x.data() + static_cast<std::size_t>(i) * d, d));
      }
    };
    run();  // warmup
    Stopwatch watch;
    for (int rep = 0; rep < reps; ++rep) {
      run();
    }
    r.virtual_per_s = evals / watch.elapsed_s();
    r.checksum += static_cast<double>(out[static_cast<std::size_t>(n - 1)]);
  }
  return r;
}

struct ProfOverheadResult {
  double off_per_s = 0;       ///< fast-path launches/s, profiler disabled
  double on_per_s = 0;        ///< fast-path launches/s, profiler enabled
  double modeled_vs_wall = 0; ///< from the captured profile (on pass)
  double checksum = 0;
};

/// Same trivial kernel as bench_launch, fast path pinned on, timed with the
/// profiler disabled and enabled. The off pass is the contract: profiling
/// costs one predicted branch when inactive, so off throughput must match
/// plain fast-path launch throughput.
ProfOverheadResult bench_prof_overhead(std::int64_t n_elems, int reps) {
  vgpu::Device device;
  std::vector<float> in(static_cast<std::size_t>(n_elems));
  std::vector<float> out(static_cast<std::size_t>(n_elems), 0.0f);
  for (std::int64_t i = 0; i < n_elems; ++i) {
    in[static_cast<std::size_t>(i)] = static_cast<float>(i % 97) * 0.125f;
  }
  vgpu::LaunchConfig cfg;
  cfg.block = 256;
  cfg.grid = (n_elems + cfg.block - 1) / cfg.block;
  vgpu::KernelCostSpec cost;
  cost.flops = 2.0 * static_cast<double>(n_elems);
  cost.dram_read_bytes = static_cast<double>(n_elems) * sizeof(float);
  cost.dram_write_bytes = static_cast<double>(n_elems) * sizeof(float);
  const float* src = in.data();
  float* dst = out.data();

  const bool saved_fast = vgpu::fast_path_enabled();
  const bool saved_prof = vgpu::prof::active();
  vgpu::set_fast_path_enabled(true);
  ProfOverheadResult r;
  for (const bool prof_on : {false, true}) {
    vgpu::prof::set_enabled(prof_on);
    auto run = [&](int count) {
      for (int rep = 0; rep < count; ++rep) {
        device.launch_elements(cfg, cost, n_elems, [&](std::int64_t i) {
          dst[i] = src[i] * 2.0f + 1.0f;
        });
      }
    };
    run(reps / 10 + 1);            // warmup
    (void)device.take_profile();   // timed pass starts with an empty timeline
    Stopwatch watch;
    run(reps);
    const double per_s = reps / watch.elapsed_s();
    (prof_on ? r.on_per_s : r.off_per_s) = per_s;
    if (prof_on) {
      r.modeled_vs_wall = device.take_profile().modeled_vs_wall();
    }
    r.checksum += static_cast<double>(dst[static_cast<std::size_t>(
        n_elems - 1)]);
  }
  vgpu::prof::set_enabled(saved_prof);
  vgpu::set_fast_path_enabled(saved_fast);
  return r;
}

/// Wall-clock of the exact table1_overall --smoke cell set; best of `reps`.
double bench_table1_smoke(int reps) {
  const std::vector<std::string> problems = {"sphere", "griewank", "easom",
                                             "threadconf"};
  const auto impls = all_impls();
  double best = 0;
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch watch;
    for (const auto& problem : problems) {
      for (Impl impl : impls) {
        RunSpec spec;
        spec.impl = impl;
        spec.problem = problem;
        spec.particles = 64;
        spec.dim = 8;
        spec.iters = 50;
        spec.executed_iters = 5;
        spec.seed = 42;
        run_spec(spec);
      }
    }
    const double elapsed = watch.elapsed_s();
    if (rep == 0 || elapsed < best) {
      best = elapsed;
    }
  }
  return best;
}

/// Minimal extractor for the flat numeric fields this bench emits: finds
/// `"key":` in `text` and parses the number that follows. Good enough for
/// the baseline files we write ourselves; returns `fallback` when absent.
double json_number(const std::string& text, const std::string& key,
                   double fallback) {
  const std::string needle = "\"" + key + "\"";
  std::size_t pos = text.find(needle);
  if (pos == std::string::npos) {
    return fallback;
  }
  pos = text.find(':', pos + needle.size());
  if (pos == std::string::npos) {
    return fallback;
  }
  return std::strtod(text.c_str() + pos + 1, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  const bool prof_overhead = args.get_bool("prof-overhead", false);
  const std::string json_path = args.get_string("json", "BENCH_engine.json");
  const std::string baseline_path = args.get_string("baseline", "");

  const std::int64_t launch_elems = 4096;
  const int launch_reps = smoke ? 4000 : 20000;
  const int eval_n = smoke ? 512 : 2048;
  const int eval_d = 32;
  const int eval_reps = smoke ? 1000 : 4000;
  const int table1_reps = smoke ? 3 : 5;

  const LaunchResult launch = bench_launch(launch_elems, launch_reps);
  const EvalResult eval = bench_eval("sphere", eval_n, eval_d, eval_reps);
  const double table1_wall = bench_table1_smoke(table1_reps);
  ProfOverheadResult prof;
  if (prof_overhead) {
    prof = bench_prof_overhead(launch_elems, launch_reps);
  }

  const double launch_speedup = launch.fast_per_s / launch.legacy_per_s;
  const double eval_speedup = eval.batch_per_s / eval.virtual_per_s;

  TextTable table("micro_engine: host execution fast path");
  table.set_header({"metric", "fast/batch", "legacy/virtual", "speedup"});
  table.add_row({"launches/s (n=" + std::to_string(launch_elems) + ")",
                 fmt_sci(launch.fast_per_s), fmt_sci(launch.legacy_per_s),
                 fmt_speedup(launch_speedup)});
  table.add_row({"evals/s (sphere " + std::to_string(eval_n) + "x" +
                     std::to_string(eval_d) + ")",
                 fmt_sci(eval.batch_per_s), fmt_sci(eval.virtual_per_s),
                 fmt_speedup(eval_speedup)});
  table.add_row({"table1 --smoke wall (s)", fmt_fixed(table1_wall, 4), "-",
                 "-"});
  if (prof_overhead) {
    // "speedup" column = off/on: how much slower launches get with the
    // profiler capturing events (1.0x would be free).
    table.add_row({"launches/s prof off/on",
                   fmt_sci(prof.off_per_s), fmt_sci(prof.on_per_s),
                   fmt_speedup(prof.off_per_s / prof.on_per_s)});
    table.add_row({"modeled-vs-wall (prof on)",
                   fmt_speedup(prof.modeled_vs_wall), "-", "-"});
  }
  table.add_note("identical account_launch on both paths: modeled seconds "
                 "and counters do not depend on the toggle");
  table.print(std::cout);

  if (!json_path.empty()) {
    std::ostringstream json;
    json.setf(std::ios::fixed);
    json.precision(3);
    json << "{\n"
         << "  \"schema\": \"fastpso-bench-engine-v1\",\n"
         << "  \"launch\": {\n"
         << "    \"n_elems\": " << launch_elems << ",\n"
         << "    \"reps\": " << launch_reps << ",\n"
         << "    \"fast_launches_per_s\": " << launch.fast_per_s << ",\n"
         << "    \"legacy_launches_per_s\": " << launch.legacy_per_s << ",\n"
         << "    \"speedup\": " << launch_speedup << "\n"
         << "  },\n"
         << "  \"eval\": {\n"
         << "    \"n\": " << eval_n << ",\n"
         << "    \"dim\": " << eval_d << ",\n"
         << "    \"batch_evals_per_s\": " << eval.batch_per_s << ",\n"
         << "    \"virtual_evals_per_s\": " << eval.virtual_per_s << ",\n"
         << "    \"speedup\": " << eval_speedup << "\n"
         << "  },\n";
    if (prof_overhead) {
      json << "  \"prof\": {\n"
           << "    \"off_launches_per_s\": " << prof.off_per_s << ",\n"
           << "    \"on_launches_per_s\": " << prof.on_per_s << ",\n"
           << "    \"overhead_ratio\": " << prof.off_per_s / prof.on_per_s
           << ",\n"
           << "    \"modeled_vs_wall\": " << prof.modeled_vs_wall << "\n"
           << "  },\n";
    }
    json << "  \"table1_smoke\": {\n";
    json.precision(6);
    json << "    \"wall_s\": " << table1_wall << "\n"
         << "  }\n"
         << "}\n";
    std::ofstream file(json_path);
    file << json.str();
    std::cout << (file ? "json written: " : "json write FAILED: ")
              << json_path << "\n";
  }

  if (!baseline_path.empty()) {
    std::ifstream file(baseline_path);
    if (!file) {
      std::cerr << "baseline read FAILED: " << baseline_path << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    const std::string text = buffer.str();
    const double base_launch =
        json_number(text, "fast_launches_per_s", 0.0);
    const double base_eval = json_number(text, "batch_evals_per_s", 0.0);
    const double base_wall = json_number(text, "wall_s", 0.0);
    bool ok = true;
    auto gate = [&](const char* name, bool pass, double have, double want) {
      std::cout << "gate " << name << ": " << (pass ? "ok" : "REGRESSION")
                << " (" << fmt_sci(have) << " vs limit " << fmt_sci(want)
                << ")\n";
      ok = ok && pass;
    };
    // >2x regression fails: throughputs may not halve, wall may not double.
    gate("launch_throughput", launch.fast_per_s >= base_launch / 2.0,
         launch.fast_per_s, base_launch / 2.0);
    gate("eval_throughput", eval.batch_per_s >= base_eval / 2.0,
         eval.batch_per_s, base_eval / 2.0);
    gate("table1_smoke_wall", table1_wall <= base_wall * 2.0, table1_wall,
         base_wall * 2.0);
    if (prof_overhead) {
      // Tighter bar than the 2x gates: with the profiler off the launch
      // path must stay within 5% of the baseline throughput, otherwise the
      // "disabled profiling is free" promise has been broken.
      gate("prof_off_launch_throughput",
           prof.off_per_s >= base_launch / 1.05, prof.off_per_s,
           base_launch / 1.05);
    }
    if (!ok) {
      std::cerr << "micro_engine: regression vs baseline " << baseline_path
                << "\n";
      return 1;
    }
  }
  return 0;
}
