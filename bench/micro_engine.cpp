// micro_engine: engine-level microbenchmarks for the host execution fast
// path (DESIGN.md §1). Three probes:
//
//   1. launch throughput — a trivial element-wise kernel dispatched through
//      Device::launch_elements with the fast path on (flat index loop) and
//      off (faithful per-virtual-thread grid-stride), in launches/sec.
//   2. eval throughput — Problem::eval_batch (one virtual call per batch,
//      devirtualized inner loop) vs. one virtual eval_f32 call per particle,
//      in particle evaluations/sec.
//   3. end-to-end wall-clock of the fixed table1 --smoke configuration
//      (4 problems x 7 implementations, 64 particles, dim 8, 5 executed
//      iterations), best of a few repetitions.
//   4. (--prof-overhead) launch throughput with the vgpu::prof profiler off
//      vs on — the off number pins the "zero overhead when off" promise
//      (one branch on the hot path), the on number reports the cost of
//      event capture, plus the profile's modeled-vs-wall ratio.
//   5. (--graph) steady-state launch throughput of a PSO-shaped iteration
//      (six small launches across the five pipeline phases) accounted
//      eagerly vs replayed through an instantiated vgpu::Graph
//      (DESIGN.md §8). Small n_elems so per-launch setup dominates — the
//      cost the graph replay amortizes. Also reports the modeled
//      amortization credit as a fraction of eager modeled time.
//   6. (--fuse) launch throughput of a fully fusible chain — eight small
//      element-wise launches, each consuming its predecessor's output —
//      accounted eagerly, through plain graph replay, and through fused
//      replay after the FusionPass collapses the chain to one node
//      (DESIGN.md §9). Like the graph probe this uses accounting-only
//      launches: kernel bodies are identical work on every side and would
//      only dilute the ratio, and the fusion win being measured is the
//      per-launch dispatch the fused node eliminates. Emits
//      BENCH_fusion.json; --fuse-trace PATH additionally writes the fused
//      replay's Chrome trace (one labeled event per group, merged cost
//      specs) for CI artifact upload.
//
// Both launch paths issue the identical account_launch call, so modeled
// seconds and DeviceCounters are unaffected by the toggle — this binary
// measures host execution speed only.
//
//   ./micro_engine [--smoke] [--prof-overhead] [--graph] [--fuse]
//                  [--json BENCH_engine.json]
//                  [--fusion-json BENCH_fusion.json]
//                  [--fuse-trace prof_trace_fused.json]
//                  [--baseline bench/BENCH_engine_baseline.json]
//
// --smoke shrinks the repetition counts for CI and emits BENCH_engine.json.
// --baseline compares against a checked-in conservative baseline and exits
// non-zero when any metric regresses by more than 2x; with --prof-overhead
// it additionally fails if profiler-off launch throughput sits more than 5%
// below the baseline (the profiler must stay free when disabled); with
// --fuse it additionally requires fused replay to beat plain replay by at
// least 1.3x wall throughput (the fusion layer's keep-alive gate).

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "problems/problem.h"
#include "vgpu/device.h"
#include "vgpu/graph/graph.h"
#include "vgpu/prof/prof.h"

using namespace fastpso;
using namespace fastpso::benchkit;

namespace {

struct LaunchResult {
  double fast_per_s = 0;
  double legacy_per_s = 0;
  double checksum = 0;  ///< defeats dead-code elimination
};

/// Trivial-body element-wise kernel, timed with the fast path on and off.
/// The body is one fused multiply-add so the flat loop vectorizes; the
/// legacy path pays the per-virtual-thread dispatch that the fast path
/// removes. Same cfg, same cost, same account_launch on both sides.
LaunchResult bench_launch(std::int64_t n_elems, int reps) {
  vgpu::Device device;
  std::vector<float> in(static_cast<std::size_t>(n_elems));
  std::vector<float> out(static_cast<std::size_t>(n_elems), 0.0f);
  for (std::int64_t i = 0; i < n_elems; ++i) {
    in[static_cast<std::size_t>(i)] = static_cast<float>(i % 97) * 0.125f;
  }
  vgpu::LaunchConfig cfg;
  cfg.block = 256;
  cfg.grid = (n_elems + cfg.block - 1) / cfg.block;
  vgpu::KernelCostSpec cost;
  cost.flops = 2.0 * static_cast<double>(n_elems);
  cost.dram_read_bytes = static_cast<double>(n_elems) * sizeof(float);
  cost.dram_write_bytes = static_cast<double>(n_elems) * sizeof(float);
  const float* src = in.data();
  float* dst = out.data();

  const bool saved = vgpu::fast_path_enabled();
  LaunchResult r;
  for (const bool fast : {true, false}) {
    vgpu::set_fast_path_enabled(fast);
    auto run = [&](int count) {
      for (int rep = 0; rep < count; ++rep) {
        device.launch_elements(cfg, cost, n_elems, [&](std::int64_t i) {
          dst[i] = src[i] * 2.0f + 1.0f;
        });
      }
    };
    run(reps / 10 + 1);  // warmup
    Stopwatch watch;
    run(reps);
    const double per_s = reps / watch.elapsed_s();
    (fast ? r.fast_per_s : r.legacy_per_s) = per_s;
    r.checksum += static_cast<double>(dst[static_cast<std::size_t>(
        n_elems - 1)]);
  }
  vgpu::set_fast_path_enabled(saved);
  return r;
}

struct EvalResult {
  double batch_per_s = 0;    ///< particle evaluations/sec via eval_batch
  double virtual_per_s = 0;  ///< one virtual eval_f32 call per particle
  double checksum = 0;
};

EvalResult bench_eval(const std::string& problem_name, int n, int d,
                      int reps) {
  const std::unique_ptr<problems::Problem> problem =
      problems::make_problem(problem_name);
  std::vector<float> x(static_cast<std::size_t>(n) * d);
  std::vector<float> out(static_cast<std::size_t>(n), 0.0f);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(i % 251) * 0.01f - 1.0f;
  }

  EvalResult r;
  const double evals = static_cast<double>(reps) * n;
  {
    problem->eval_batch(x.data(), n, d, out.data());  // warmup
    Stopwatch watch;
    for (int rep = 0; rep < reps; ++rep) {
      problem->eval_batch(x.data(), n, d, out.data());
    }
    r.batch_per_s = evals / watch.elapsed_s();
    r.checksum += static_cast<double>(out[static_cast<std::size_t>(n - 1)]);
  }
  {
    const problems::Problem* base = problem.get();
    auto run = [&] {
      for (int i = 0; i < n; ++i) {
        out[static_cast<std::size_t>(i)] = static_cast<float>(
            base->eval_f32(x.data() + static_cast<std::size_t>(i) * d, d));
      }
    };
    run();  // warmup
    Stopwatch watch;
    for (int rep = 0; rep < reps; ++rep) {
      run();
    }
    r.virtual_per_s = evals / watch.elapsed_s();
    r.checksum += static_cast<double>(out[static_cast<std::size_t>(n - 1)]);
  }
  return r;
}

struct ProfOverheadResult {
  double off_per_s = 0;       ///< fast-path launches/s, profiler disabled
  double on_per_s = 0;        ///< fast-path launches/s, profiler enabled
  double modeled_vs_wall = 0; ///< from the captured profile (on pass)
  double checksum = 0;
};

/// Same trivial kernel as bench_launch, fast path pinned on, timed with the
/// profiler disabled and enabled. The off pass is the contract: profiling
/// costs one predicted branch when inactive, so off throughput must match
/// plain fast-path launch throughput.
ProfOverheadResult bench_prof_overhead(std::int64_t n_elems, int reps) {
  vgpu::Device device;
  std::vector<float> in(static_cast<std::size_t>(n_elems));
  std::vector<float> out(static_cast<std::size_t>(n_elems), 0.0f);
  for (std::int64_t i = 0; i < n_elems; ++i) {
    in[static_cast<std::size_t>(i)] = static_cast<float>(i % 97) * 0.125f;
  }
  vgpu::LaunchConfig cfg;
  cfg.block = 256;
  cfg.grid = (n_elems + cfg.block - 1) / cfg.block;
  vgpu::KernelCostSpec cost;
  cost.flops = 2.0 * static_cast<double>(n_elems);
  cost.dram_read_bytes = static_cast<double>(n_elems) * sizeof(float);
  cost.dram_write_bytes = static_cast<double>(n_elems) * sizeof(float);
  const float* src = in.data();
  float* dst = out.data();

  const bool saved_fast = vgpu::fast_path_enabled();
  const bool saved_prof = vgpu::prof::active();
  vgpu::set_fast_path_enabled(true);
  ProfOverheadResult r;
  for (const bool prof_on : {false, true}) {
    vgpu::prof::set_enabled(prof_on);
    auto run = [&](int count) {
      for (int rep = 0; rep < count; ++rep) {
        device.launch_elements(cfg, cost, n_elems, [&](std::int64_t i) {
          dst[i] = src[i] * 2.0f + 1.0f;
        });
      }
    };
    run(reps / 10 + 1);            // warmup
    (void)device.take_profile();   // timed pass starts with an empty timeline
    Stopwatch watch;
    run(reps);
    const double per_s = reps / watch.elapsed_s();
    (prof_on ? r.on_per_s : r.off_per_s) = per_s;
    if (prof_on) {
      r.modeled_vs_wall = device.take_profile().modeled_vs_wall();
    }
    r.checksum += static_cast<double>(dst[static_cast<std::size_t>(
        n_elems - 1)]);
  }
  vgpu::prof::set_enabled(saved_prof);
  vgpu::set_fast_path_enabled(saved_fast);
  return r;
}

struct GraphResult {
  double eager_per_s = 0;    ///< launches/s, eager fast-path accounting
  double replay_per_s = 0;   ///< launches/s, graph replay accounting
  double saved_fraction = 0; ///< modeled_seconds_saved / eager modeled time
  double checksum = 0;
};

/// A PSO-shaped iteration — six small launches across the five pipeline
/// phases — accounted eagerly vs replayed through an instantiated graph.
/// Dispatch-only launches (account_launch, as the fast-path batched eval
/// issues them): the probe isolates per-launch setup — occupancy
/// resolution, breakdown lookup, clock bookkeeping — which is exactly the
/// cost graph replay amortizes. Kernel bodies are identical work on both
/// sides and would only dilute the ratio. n_elems is tiny so the modeled
/// kernels are launch-overhead-dominated, the regime CUDA Graphs target.
GraphResult bench_graph(std::int64_t n_elems, int iters) {
  static const char* const kPhases[] = {"init",  "eval",  "pbest",
                                        "gbest", "swarm", "swarm"};
  constexpr int kLaunches = 6;
  vgpu::LaunchConfig cfg;
  cfg.block = 64;
  cfg.grid = (n_elems + cfg.block - 1) / cfg.block;
  vgpu::KernelCostSpec cost;
  cost.flops = 2.0 * static_cast<double>(n_elems);
  cost.dram_read_bytes = static_cast<double>(n_elems) * sizeof(float);
  cost.dram_write_bytes = static_cast<double>(n_elems) * sizeof(float);

  GraphResult r;
  const auto iteration = [&](vgpu::Device& device) {
    for (int k = 0; k < kLaunches; ++k) {
      device.set_phase(kPhases[k]);
      device.account_launch(cfg, cost);
    }
  };

  {  // eager pass
    vgpu::Device device;
    for (int it = 0; it < iters / 10 + 1; ++it) {  // warmup
      iteration(device);
    }
    Stopwatch watch;
    for (int it = 0; it < iters; ++it) {
      iteration(device);
    }
    r.eager_per_s =
        static_cast<double>(iters) * kLaunches / watch.elapsed_s();
    r.checksum += device.counters().modeled_seconds;
  }

  {  // graph pass: capture once, replay steady-state with one graph launch
     // per iteration (the cudaGraphLaunch analogue) — no per-launch call
     // sites, no positional matching, pre-resolved accounting per node.
    vgpu::Device device;
    vgpu::graph::Graph graph;
    device.begin_capture(graph);
    iteration(device);
    device.end_capture();
    vgpu::graph::GraphExec exec = graph.instantiate(device.perf());
    const auto replay_iteration = [&] { device.replay_graph(exec); };
    for (int it = 0; it < iters / 10 + 1; ++it) {  // warmup
      replay_iteration();
    }
    const double modeled_before = device.counters().modeled_seconds;
    const double saved_before = exec.stats().modeled_seconds_saved;
    Stopwatch watch;
    for (int it = 0; it < iters; ++it) {
      replay_iteration();
    }
    r.replay_per_s =
        static_cast<double>(iters) * kLaunches / watch.elapsed_s();
    const double modeled =
        device.counters().modeled_seconds - modeled_before;
    r.saved_fraction =
        modeled > 0
            ? (exec.stats().modeled_seconds_saved - saved_before) / modeled
            : 0.0;
    r.checksum += device.counters().modeled_seconds;
  }
  return r;
}

struct FuseResult {
  double eager_per_s = 0;   ///< launches/s, eager fast-path accounting
  double replay_per_s = 0;  ///< launches/s, plain graph replay
  double fused_per_s = 0;   ///< launches/s, fused graph replay
  int groups = 0;           ///< fused groups formed over the chain
  int fused_members = 0;    ///< member kernels across the groups
  double launch_reduction = 0;   ///< 1 - fused/eager launch count
  double modeled_saved_fraction = 0;  ///< 1 - fused/replay modeled seconds
  std::string trace;  ///< fused replay's Chrome trace (--fuse-trace)
  double checksum = 0;
};

/// A fully fusible chain: kChain element-wise launches where launch k reads
/// buffer k-1 and writes buffer k — same shape, same stream, aligned
/// element slices, so the FusionPass collapses all of them into one fused
/// node. Timed three ways: eager accounting, plain standalone replay
/// (kChain pre-resolved accountings per iteration) and fused standalone
/// replay (one merged accounting per iteration). Accounting-only launches,
/// as in bench_graph: the measured win is per-launch dispatch, which is
/// exactly what fusion removes.
FuseResult bench_fuse(std::int64_t n_elems, int iters, bool want_trace) {
  constexpr int kChain = 8;
  static const char* const kLabels[kChain] = {
      "fuse/k0", "fuse/k1", "fuse/k2", "fuse/k3",
      "fuse/k4", "fuse/k5", "fuse/k6", "fuse/k7"};
  vgpu::LaunchConfig cfg;
  cfg.block = 64;
  cfg.grid = (n_elems + cfg.block - 1) / cfg.block;
  vgpu::KernelCostSpec cost;
  cost.flops = 2.0 * static_cast<double>(n_elems);
  cost.dram_read_bytes = static_cast<double>(n_elems) * sizeof(float);
  cost.dram_write_bytes = static_cast<double>(n_elems) * sizeof(float);
  std::vector<std::vector<float>> bufs(
      kChain, std::vector<float>(static_cast<std::size_t>(n_elems)));
  const double span = static_cast<double>(n_elems) * sizeof(float);

  FuseResult r;
  const auto iteration = [&](vgpu::Device& device) {
    device.set_phase("swarm");
    for (int k = 0; k < kChain; ++k) {
      vgpu::prof::KernelLabel label(kLabels[k]);
      device.account_launch(cfg, cost);
      if (device.capturing()) {
        device.graph_note_elements(n_elems);
        std::vector<vgpu::graph::BufferUse> uses;
        if (k > 0) {
          uses.push_back({bufs[static_cast<std::size_t>(k - 1)].data(), span,
                          sizeof(float), /*write=*/false, "prev"});
        }
        uses.push_back({bufs[static_cast<std::size_t>(k)].data(), span,
                        sizeof(float), /*write=*/true, "out"});
        device.graph_note_uses(std::move(uses));
      }
    }
  };
  const auto capture = [&](vgpu::Device& device, vgpu::graph::Graph& graph) {
    device.begin_capture(graph);
    iteration(device);
    device.end_capture();
  };

  {  // eager pass
    vgpu::Device device;
    for (int it = 0; it < iters / 10 + 1; ++it) {  // warmup
      iteration(device);
    }
    Stopwatch watch;
    for (int it = 0; it < iters; ++it) {
      iteration(device);
    }
    r.eager_per_s = static_cast<double>(iters) * kChain / watch.elapsed_s();
    r.checksum += device.counters().modeled_seconds;
  }

  double replay_modeled = 0;
  {  // plain graph replay pass
    vgpu::Device device;
    vgpu::graph::Graph graph;
    capture(device, graph);
    vgpu::graph::GraphExec exec = graph.instantiate(device.perf());
    for (int it = 0; it < iters / 10 + 1; ++it) {  // warmup
      device.replay_graph(exec);
    }
    const double modeled_before = device.counters().modeled_seconds;
    Stopwatch watch;
    for (int it = 0; it < iters; ++it) {
      device.replay_graph(exec);
    }
    r.replay_per_s = static_cast<double>(iters) * kChain / watch.elapsed_s();
    replay_modeled = device.counters().modeled_seconds - modeled_before;
    r.checksum += device.counters().modeled_seconds;
  }

  {  // fused replay pass
    vgpu::Device device;
    vgpu::graph::Graph graph;
    capture(device, graph);
    vgpu::graph::GraphExec exec = graph.instantiate(device.perf());
    exec.apply_fusion(device.perf());
    r.groups = exec.fusion_stats().groups;
    r.fused_members = exec.fusion_stats().fused_members;
    for (int it = 0; it < iters / 10 + 1; ++it) {  // warmup
      device.replay_fused(exec);
    }
    const double modeled_before = device.counters().modeled_seconds;
    Stopwatch watch;
    for (int it = 0; it < iters; ++it) {
      device.replay_fused(exec);
    }
    r.fused_per_s = static_cast<double>(iters) * kChain / watch.elapsed_s();
    const double fused_modeled =
        device.counters().modeled_seconds - modeled_before;
    r.launch_reduction = exec.fusion_stats().launch_reduction();
    r.modeled_saved_fraction =
        replay_modeled > 0 ? 1.0 - fused_modeled / replay_modeled : 0.0;
    r.checksum += device.counters().modeled_seconds;
  }

  if (want_trace) {
    // Separate single-replay pass with the profiler on so the capture picks
    // up the kernel labels and the fused event carries them.
    const bool saved_prof = vgpu::prof::active();
    vgpu::prof::set_enabled(true);
    vgpu::Device device;
    vgpu::graph::Graph graph;
    capture(device, graph);
    vgpu::graph::GraphExec exec = graph.instantiate(device.perf());
    exec.apply_fusion(device.perf());
    (void)device.take_profile();  // drop the capture pass's events
    device.replay_fused(exec);
    r.trace = device.take_profile().chrome_trace_json();
    vgpu::prof::set_enabled(saved_prof);
  }
  return r;
}

/// Wall-clock of the exact table1_overall --smoke cell set; best of `reps`.
double bench_table1_smoke(int reps) {
  const std::vector<std::string> problems = {"sphere", "griewank", "easom",
                                             "threadconf"};
  const auto impls = all_impls();
  double best = 0;
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch watch;
    for (const auto& problem : problems) {
      for (Impl impl : impls) {
        RunSpec spec;
        spec.impl = impl;
        spec.problem = problem;
        spec.particles = 64;
        spec.dim = 8;
        spec.iters = 50;
        spec.executed_iters = 5;
        spec.seed = 42;
        run_spec(spec);
      }
    }
    const double elapsed = watch.elapsed_s();
    if (rep == 0 || elapsed < best) {
      best = elapsed;
    }
  }
  return best;
}

/// Minimal extractor for the flat numeric fields this bench emits: finds
/// `"key":` in `text` and parses the number that follows. Good enough for
/// the baseline files we write ourselves; returns `fallback` when absent.
double json_number(const std::string& text, const std::string& key,
                   double fallback) {
  const std::string needle = "\"" + key + "\"";
  std::size_t pos = text.find(needle);
  if (pos == std::string::npos) {
    return fallback;
  }
  pos = text.find(':', pos + needle.size());
  if (pos == std::string::npos) {
    return fallback;
  }
  return std::strtod(text.c_str() + pos + 1, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  const bool prof_overhead = args.get_bool("prof-overhead", false);
  const bool graph_bench = args.get_bool("graph", false);
  const bool fuse_bench = args.get_bool("fuse", false);
  const std::string json_path = args.get_string("json", "BENCH_engine.json");
  const std::string fusion_json_path =
      args.get_string("fusion-json", fuse_bench ? "BENCH_fusion.json" : "");
  const std::string fuse_trace_path = args.get_string("fuse-trace", "");
  const std::string baseline_path = args.get_string("baseline", "");

  const std::int64_t launch_elems = 4096;
  const int launch_reps = smoke ? 4000 : 20000;
  const int eval_n = smoke ? 512 : 2048;
  const int eval_d = 32;
  const int eval_reps = smoke ? 1000 : 4000;
  const int table1_reps = smoke ? 3 : 5;

  const LaunchResult launch = bench_launch(launch_elems, launch_reps);
  const EvalResult eval = bench_eval("sphere", eval_n, eval_d, eval_reps);
  const double table1_wall = bench_table1_smoke(table1_reps);
  ProfOverheadResult prof;
  if (prof_overhead) {
    prof = bench_prof_overhead(launch_elems, launch_reps);
  }
  // Tiny per-launch work so launch setup dominates (the amortized cost).
  const std::int64_t graph_elems = 128;
  const int graph_iters = smoke ? 2000 : 10000;
  GraphResult graph;
  if (graph_bench) {
    graph = bench_graph(graph_elems, graph_iters);
  }
  FuseResult fuse;
  if (fuse_bench) {
    fuse = bench_fuse(graph_elems, graph_iters, !fuse_trace_path.empty());
  }

  const double launch_speedup = launch.fast_per_s / launch.legacy_per_s;
  const double eval_speedup = eval.batch_per_s / eval.virtual_per_s;

  TextTable table("micro_engine: host execution fast path");
  table.set_header({"metric", "fast/batch", "legacy/virtual", "speedup"});
  table.add_row({"launches/s (n=" + std::to_string(launch_elems) + ")",
                 fmt_sci(launch.fast_per_s), fmt_sci(launch.legacy_per_s),
                 fmt_speedup(launch_speedup)});
  table.add_row({"evals/s (sphere " + std::to_string(eval_n) + "x" +
                     std::to_string(eval_d) + ")",
                 fmt_sci(eval.batch_per_s), fmt_sci(eval.virtual_per_s),
                 fmt_speedup(eval_speedup)});
  table.add_row({"table1 --smoke wall (s)", fmt_fixed(table1_wall, 4), "-",
                 "-"});
  if (prof_overhead) {
    // "speedup" column = off/on: how much slower launches get with the
    // profiler capturing events (1.0x would be free).
    table.add_row({"launches/s prof off/on",
                   fmt_sci(prof.off_per_s), fmt_sci(prof.on_per_s),
                   fmt_speedup(prof.off_per_s / prof.on_per_s)});
    table.add_row({"modeled-vs-wall (prof on)",
                   fmt_speedup(prof.modeled_vs_wall), "-", "-"});
  }
  if (graph_bench) {
    // "fast/batch" column = graph replay, "legacy/virtual" = eager.
    table.add_row({"launches/s graph/eager (n=" +
                       std::to_string(graph_elems) + ")",
                   fmt_sci(graph.replay_per_s), fmt_sci(graph.eager_per_s),
                   fmt_speedup(graph.replay_per_s / graph.eager_per_s)});
    table.add_row({"modeled saved by graph",
                   fmt_fixed(graph.saved_fraction * 100.0, 1) + "%", "-",
                   "-"});
  }
  if (fuse_bench) {
    // "fast/batch" column = fused replay, "legacy/virtual" = plain replay.
    table.add_row({"launches/s fused/replay (chain of 8)",
                   fmt_sci(fuse.fused_per_s), fmt_sci(fuse.replay_per_s),
                   fmt_speedup(fuse.fused_per_s / fuse.replay_per_s)});
    table.add_row({"launch reduction by fusion",
                   fmt_fixed(fuse.launch_reduction * 100.0, 1) + "%", "-",
                   "-"});
    table.add_row({"modeled saved by fusion",
                   fmt_fixed(fuse.modeled_saved_fraction * 100.0, 1) + "%",
                   "-", "-"});
  }
  table.add_note("identical account_launch on both paths: modeled seconds "
                 "and counters do not depend on the toggle");
  table.print(std::cout);

  if (!json_path.empty()) {
    std::ostringstream json;
    json.setf(std::ios::fixed);
    json.precision(3);
    json << "{\n"
         << "  \"schema\": \"fastpso-bench-engine-v1\",\n"
         << "  \"launch\": {\n"
         << "    \"n_elems\": " << launch_elems << ",\n"
         << "    \"reps\": " << launch_reps << ",\n"
         << "    \"fast_launches_per_s\": " << launch.fast_per_s << ",\n"
         << "    \"legacy_launches_per_s\": " << launch.legacy_per_s << ",\n"
         << "    \"speedup\": " << launch_speedup << "\n"
         << "  },\n"
         << "  \"eval\": {\n"
         << "    \"n\": " << eval_n << ",\n"
         << "    \"dim\": " << eval_d << ",\n"
         << "    \"batch_evals_per_s\": " << eval.batch_per_s << ",\n"
         << "    \"virtual_evals_per_s\": " << eval.virtual_per_s << ",\n"
         << "    \"speedup\": " << eval_speedup << "\n"
         << "  },\n";
    if (prof_overhead) {
      json << "  \"prof\": {\n"
           << "    \"off_launches_per_s\": " << prof.off_per_s << ",\n"
           << "    \"on_launches_per_s\": " << prof.on_per_s << ",\n"
           << "    \"overhead_ratio\": " << prof.off_per_s / prof.on_per_s
           << ",\n"
           << "    \"modeled_vs_wall\": " << prof.modeled_vs_wall << "\n"
           << "  },\n";
    }
    if (graph_bench) {
      json << "  \"graph\": {\n"
           << "    \"n_elems\": " << graph_elems << ",\n"
           << "    \"iters\": " << graph_iters << ",\n"
           << "    \"eager_launches_per_s\": " << graph.eager_per_s << ",\n"
           << "    \"replay_launches_per_s\": " << graph.replay_per_s
           << ",\n"
           << "    \"speedup\": " << graph.replay_per_s / graph.eager_per_s
           << ",\n"
           << "    \"modeled_saved_fraction\": " << graph.saved_fraction
           << "\n"
           << "  },\n";
    }
    json << "  \"table1_smoke\": {\n";
    json.precision(6);
    json << "    \"wall_s\": " << table1_wall << "\n"
         << "  }\n"
         << "}\n";
    std::ofstream file(json_path);
    file << json.str();
    std::cout << (file ? "json written: " : "json write FAILED: ")
              << json_path << "\n";
  }

  if (fuse_bench && !fusion_json_path.empty()) {
    std::ostringstream json;
    json.setf(std::ios::fixed);
    json.precision(3);
    json << "{\n"
         << "  \"schema\": \"fastpso-bench-fusion-v1\",\n"
         << "  \"n_elems\": " << graph_elems << ",\n"
         << "  \"iters\": " << graph_iters << ",\n"
         << "  \"chain\": 8,\n"
         << "  \"eager_launches_per_s\": " << fuse.eager_per_s << ",\n"
         << "  \"replay_launches_per_s\": " << fuse.replay_per_s << ",\n"
         << "  \"fused_launches_per_s\": " << fuse.fused_per_s << ",\n"
         << "  \"fused_vs_replay_speedup\": "
         << fuse.fused_per_s / fuse.replay_per_s << ",\n"
         << "  \"fused_vs_eager_speedup\": "
         << fuse.fused_per_s / fuse.eager_per_s << ",\n"
         << "  \"groups\": " << fuse.groups << ",\n"
         << "  \"fused_members\": " << fuse.fused_members << ",\n"
         << "  \"launch_reduction\": " << fuse.launch_reduction << ",\n"
         << "  \"modeled_saved_fraction\": " << fuse.modeled_saved_fraction
         << "\n"
         << "}\n";
    std::ofstream file(fusion_json_path);
    file << json.str();
    std::cout << (file ? "json written: " : "json write FAILED: ")
              << fusion_json_path << "\n";
  }

  if (fuse_bench && !fuse_trace_path.empty()) {
    std::ofstream file(fuse_trace_path);
    file << fuse.trace;
    std::cout << (file ? "trace written: " : "trace write FAILED: ")
              << fuse_trace_path << "\n";
  }

  if (!baseline_path.empty()) {
    std::ifstream file(baseline_path);
    if (!file) {
      std::cerr << "baseline read FAILED: " << baseline_path << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    const std::string text = buffer.str();
    const double base_launch =
        json_number(text, "fast_launches_per_s", 0.0);
    const double base_eval = json_number(text, "batch_evals_per_s", 0.0);
    const double base_wall = json_number(text, "wall_s", 0.0);
    bool ok = true;
    auto gate = [&](const char* name, bool pass, double have, double want) {
      std::cout << "gate " << name << ": " << (pass ? "ok" : "REGRESSION")
                << " (" << fmt_sci(have) << " vs limit " << fmt_sci(want)
                << ")\n";
      ok = ok && pass;
    };
    // >2x regression fails: throughputs may not halve, wall may not double.
    gate("launch_throughput", launch.fast_per_s >= base_launch / 2.0,
         launch.fast_per_s, base_launch / 2.0);
    gate("eval_throughput", eval.batch_per_s >= base_eval / 2.0,
         eval.batch_per_s, base_eval / 2.0);
    gate("table1_smoke_wall", table1_wall <= base_wall * 2.0, table1_wall,
         base_wall * 2.0);
    if (prof_overhead) {
      // Tighter bar than the 2x gates: with the profiler off the launch
      // path must stay within 5% of the baseline throughput, otherwise the
      // "disabled profiling is free" promise has been broken.
      gate("prof_off_launch_throughput",
           prof.off_per_s >= base_launch / 1.05, prof.off_per_s,
           base_launch / 1.05);
    }
    if (graph_bench) {
      const double base_replay =
          json_number(text, "replay_launches_per_s", 0.0);
      gate("graph_replay_throughput", graph.replay_per_s >= base_replay / 2.0,
           graph.replay_per_s, base_replay / 2.0);
      // Replay must keep a real steady-state edge over eager accounting —
      // the whole point of the graph layer (DESIGN.md §8).
      gate("graph_replay_speedup",
           graph.replay_per_s >= 1.5 * graph.eager_per_s, graph.replay_per_s,
           1.5 * graph.eager_per_s);
    }
    if (fuse_bench) {
      const double base_fused =
          json_number(text, "fused_launches_per_s", 0.0);
      gate("fused_replay_throughput", fuse.fused_per_s >= base_fused / 2.0,
           fuse.fused_per_s, base_fused / 2.0);
      // Fused replay must keep a real wall-throughput edge over plain
      // replay — the launch-dispatch saving fusion exists for (DESIGN.md
      // §9). 1.3x floor on an 8-deep fully fusible chain.
      gate("fused_replay_speedup",
           fuse.fused_per_s >= 1.3 * fuse.replay_per_s, fuse.fused_per_s,
           1.3 * fuse.replay_per_s);
    }
    if (!ok) {
      std::cerr << "micro_engine: regression vs baseline " << baseline_path
                << "\n";
      return 1;
    }
  }
  return 0;
}
