// micro_engine: engine-level microbenchmarks for the host execution fast
// path (DESIGN.md §1). Three probes:
//
//   1. launch throughput — a trivial element-wise kernel dispatched through
//      Device::launch_elements with the fast path on (flat index loop) and
//      off (faithful per-virtual-thread grid-stride), in launches/sec.
//   2. eval throughput — Problem::eval_batch (one virtual call per batch,
//      devirtualized inner loop) vs. one virtual eval_f32 call per particle,
//      in particle evaluations/sec.
//   3. end-to-end wall-clock of the fixed table1 --smoke configuration
//      (4 problems x 7 implementations, 64 particles, dim 8, 5 executed
//      iterations), best of a few repetitions.
//   4. (--prof-overhead) launch throughput with the vgpu::prof profiler off
//      vs on — the off number pins the "zero overhead when off" promise
//      (one branch on the hot path), the on number reports the cost of
//      event capture, plus the profile's modeled-vs-wall ratio.
//   5. (--graph) steady-state launch throughput of a PSO-shaped iteration
//      (six small launches across the five pipeline phases) accounted
//      eagerly vs replayed through an instantiated vgpu::Graph
//      (DESIGN.md §8). Small n_elems so per-launch setup dominates — the
//      cost the graph replay amortizes. Also reports the modeled
//      amortization credit as a fraction of eager modeled time.
//   6. (--fuse) launch throughput of a fully fusible chain — eight small
//      element-wise launches, each consuming its predecessor's output —
//      accounted eagerly, through plain graph replay, and through fused
//      replay after the FusionPass collapses the chain to one node
//      (DESIGN.md §9). Like the graph probe this uses accounting-only
//      launches: kernel bodies are identical work on every side and would
//      only dilute the ratio, and the fusion win being measured is the
//      per-launch dispatch the fused node eliminates. Emits
//      BENCH_fusion.json; --fuse-trace PATH additionally writes the fused
//      replay's Chrome trace (one labeled event per group, merged cost
//      specs) for CI artifact upload.
//   7. (--codegen) fused standalone replay with REAL kernel bodies, two
//      probes (DESIGN.md §11). Chain: eight axpb kernels measured with the
//      group interpreted (per-element std::function loop), chunked
//      (registered spans over kChunk windows) and composed (one inlined
//      pass) — the compiled-vs-interpreted execution ratio the static
//      kernel registry exists for. Pipeline: the launch_elements slice of
//      one sync PSO iteration (weight fills, eval, pbest compare/gather,
//      swarm update) over the four Table 1 problems at n=64 d=4, timed
//      eager vs interpreted fused replay vs compiled fused replay (the
//      gated ratio is compiled/interpreted — the replay-path regression
//      codegen fixes; compiled/eager is the reported parity check). Emits
//      BENCH_codegen.json.
//
// Both launch paths issue the identical account_launch call, so modeled
// seconds and DeviceCounters are unaffected by the toggle — this binary
// measures host execution speed only (the --codegen probes, which execute
// real bodies, assert nothing about modeled numbers either; the bitwise
// and accounting equivalences live in tests/test_codegen.cpp).
//
//   8. (--tuned) the offline autotuner's tuned-vs-default probe: runs the
//      tune::Tuner over the engine families on the standard smoke shapes
//      (DESIGN.md §13) and totals the executed-replay modeled time of every
//      group's default and tuned configurations. The numbers are modeled
//      (machine-independent), so the gate is exact: tuned total <= default
//      total — the candidate slate always contains the default, so the
//      tuner may never make the engine slower. Emits BENCH_tuner.json.
//
//   ./micro_engine [--smoke] [--prof-overhead] [--graph] [--fuse]
//                  [--codegen] [--tuned]
//                  [--json BENCH_engine.json]
//                  [--fusion-json BENCH_fusion.json]
//                  [--codegen-json BENCH_codegen.json]
//                  [--tuner-json BENCH_tuner.json]
//                  [--fuse-trace prof_trace_fused.json]
//                  [--baseline bench/BENCH_engine_baseline.json]
//
// --smoke shrinks the repetition counts for CI and emits BENCH_engine.json.
// --baseline compares against a checked-in conservative baseline and exits
// non-zero when any metric regresses by more than 2x; with --prof-overhead
// it additionally fails if profiler-off launch throughput sits more than 5%
// below the baseline (the profiler must stay free when disabled); with
// --fuse it additionally requires fused replay to beat plain replay by at
// least 1.3x wall throughput (the fusion layer's keep-alive gate).

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "core/best_update.h"
#include "core/eval_schema.h"
#include "core/init.h"
#include "core/launch_policy.h"
#include "core/objective.h"
#include "core/params.h"
#include "core/swarm_state.h"
#include "core/swarm_update.h"
#include "problems/problem.h"
#include "tgbm/threadconf.h"
#include "tune/kernels.h"
#include "tune/shapes.h"
#include "tune/tuner.h"
#include "vgpu/buffer.h"
#include "vgpu/device.h"
#include "vgpu/graph/codegen.h"
#include "vgpu/graph/graph.h"
#include "vgpu/prof/prof.h"

using namespace fastpso;
using namespace fastpso::benchkit;

namespace {

struct LaunchResult {
  double fast_per_s = 0;
  double legacy_per_s = 0;
  double checksum = 0;  ///< defeats dead-code elimination
};

/// Trivial-body element-wise kernel, timed with the fast path on and off.
/// The body is one fused multiply-add so the flat loop vectorizes; the
/// legacy path pays the per-virtual-thread dispatch that the fast path
/// removes. Same cfg, same cost, same account_launch on both sides.
LaunchResult bench_launch(std::int64_t n_elems, int reps) {
  vgpu::Device device;
  std::vector<float> in(static_cast<std::size_t>(n_elems));
  std::vector<float> out(static_cast<std::size_t>(n_elems), 0.0f);
  for (std::int64_t i = 0; i < n_elems; ++i) {
    in[static_cast<std::size_t>(i)] = static_cast<float>(i % 97) * 0.125f;
  }
  vgpu::LaunchConfig cfg;
  cfg.block = 256;
  cfg.grid = (n_elems + cfg.block - 1) / cfg.block;
  vgpu::KernelCostSpec cost;
  cost.flops = 2.0 * static_cast<double>(n_elems);
  cost.dram_read_bytes = static_cast<double>(n_elems) * sizeof(float);
  cost.dram_write_bytes = static_cast<double>(n_elems) * sizeof(float);
  const float* src = in.data();
  float* dst = out.data();

  const bool saved = vgpu::fast_path_enabled();
  LaunchResult r;
  for (const bool fast : {true, false}) {
    vgpu::set_fast_path_enabled(fast);
    auto run = [&](int count) {
      for (int rep = 0; rep < count; ++rep) {
        device.launch_elements(cfg, cost, n_elems, [&](std::int64_t i) {
          dst[i] = src[i] * 2.0f + 1.0f;
        });
      }
    };
    run(reps / 10 + 1);  // warmup
    Stopwatch watch;
    run(reps);
    const double per_s = reps / watch.elapsed_s();
    (fast ? r.fast_per_s : r.legacy_per_s) = per_s;
    r.checksum += static_cast<double>(dst[static_cast<std::size_t>(
        n_elems - 1)]);
  }
  vgpu::set_fast_path_enabled(saved);
  return r;
}

struct EvalResult {
  double batch_per_s = 0;    ///< particle evaluations/sec via eval_batch
  double virtual_per_s = 0;  ///< one virtual eval_f32 call per particle
  double checksum = 0;
};

/// Interleaved best-of-k probe. The old layout timed all batch reps, then
/// all virtual reps, back to back — a frequency ramp or noisy neighbor
/// landing on one half swung the reported speedup from ~0.5x to ~2.2x on
/// the same binary. Alternating short rounds and keeping each side's best
/// round hits both paths with the same machine state, so the ratio
/// measures dispatch cost, not scheduling luck.
EvalResult bench_eval(const std::string& problem_name, int n, int d,
                      int reps) {
  const std::unique_ptr<problems::Problem> problem =
      problems::make_problem(problem_name);
  std::vector<float> x(static_cast<std::size_t>(n) * d);
  std::vector<float> out(static_cast<std::size_t>(n), 0.0f);
  for (std::size_t i = 0; i < x.size(); ++i) {
    x[i] = static_cast<float>(i % 251) * 0.01f - 1.0f;
  }

  const problems::Problem* base = problem.get();
  const auto run_batch = [&](int count) {
    for (int rep = 0; rep < count; ++rep) {
      base->eval_batch(x.data(), n, d, out.data());
    }
  };
  const auto run_virtual = [&](int count) {
    for (int rep = 0; rep < count; ++rep) {
      for (int i = 0; i < n; ++i) {
        out[static_cast<std::size_t>(i)] = static_cast<float>(
            base->eval_f32(x.data() + static_cast<std::size_t>(i) * d, d));
      }
    }
  };

  // Nine short rounds: this box shows ~2x wall noise on 30 ms windows, and
  // min-of-k over ~1 ms rounds is the estimator that stays stable (1.3x -
  // 1.6x across process runs, never below 1.0) where one long pass per
  // side swung 0.5x - 2.2x.
  constexpr int kRounds = 9;
  const int round_reps = reps / kRounds + 1;
  const double round_evals = static_cast<double>(round_reps) * n;
  double best_batch_s = 0;
  double best_virtual_s = 0;
  EvalResult r;
  run_batch(round_reps / 4 + 1);    // warmup
  run_virtual(round_reps / 4 + 1);  // warmup
  for (int round = 0; round < kRounds; ++round) {
    {
      Stopwatch watch;
      run_batch(round_reps);
      const double s = watch.elapsed_s();
      if (round == 0 || s < best_batch_s) {
        best_batch_s = s;
      }
    }
    {
      Stopwatch watch;
      run_virtual(round_reps);
      const double s = watch.elapsed_s();
      if (round == 0 || s < best_virtual_s) {
        best_virtual_s = s;
      }
    }
    r.checksum += static_cast<double>(out[static_cast<std::size_t>(n - 1)]);
  }
  r.batch_per_s = round_evals / best_batch_s;
  r.virtual_per_s = round_evals / best_virtual_s;
  return r;
}

struct ProfOverheadResult {
  double off_per_s = 0;       ///< fast-path launches/s, profiler disabled
  double on_per_s = 0;        ///< fast-path launches/s, profiler enabled
  double modeled_vs_wall = 0; ///< from the captured profile (on pass)
  double checksum = 0;
};

/// Same trivial kernel as bench_launch, fast path pinned on, timed with the
/// profiler disabled and enabled. The off pass is the contract: profiling
/// costs one predicted branch when inactive, so off throughput must match
/// plain fast-path launch throughput.
ProfOverheadResult bench_prof_overhead(std::int64_t n_elems, int reps) {
  vgpu::Device device;
  std::vector<float> in(static_cast<std::size_t>(n_elems));
  std::vector<float> out(static_cast<std::size_t>(n_elems), 0.0f);
  for (std::int64_t i = 0; i < n_elems; ++i) {
    in[static_cast<std::size_t>(i)] = static_cast<float>(i % 97) * 0.125f;
  }
  vgpu::LaunchConfig cfg;
  cfg.block = 256;
  cfg.grid = (n_elems + cfg.block - 1) / cfg.block;
  vgpu::KernelCostSpec cost;
  cost.flops = 2.0 * static_cast<double>(n_elems);
  cost.dram_read_bytes = static_cast<double>(n_elems) * sizeof(float);
  cost.dram_write_bytes = static_cast<double>(n_elems) * sizeof(float);
  const float* src = in.data();
  float* dst = out.data();

  const bool saved_fast = vgpu::fast_path_enabled();
  const bool saved_prof = vgpu::prof::active();
  vgpu::set_fast_path_enabled(true);
  ProfOverheadResult r;
  for (const bool prof_on : {false, true}) {
    vgpu::prof::set_enabled(prof_on);
    auto run = [&](int count) {
      for (int rep = 0; rep < count; ++rep) {
        device.launch_elements(cfg, cost, n_elems, [&](std::int64_t i) {
          dst[i] = src[i] * 2.0f + 1.0f;
        });
      }
    };
    run(reps / 10 + 1);            // warmup
    (void)device.take_profile();   // timed pass starts with an empty timeline
    Stopwatch watch;
    run(reps);
    const double per_s = reps / watch.elapsed_s();
    (prof_on ? r.on_per_s : r.off_per_s) = per_s;
    if (prof_on) {
      r.modeled_vs_wall = device.take_profile().modeled_vs_wall();
    }
    r.checksum += static_cast<double>(dst[static_cast<std::size_t>(
        n_elems - 1)]);
  }
  vgpu::prof::set_enabled(saved_prof);
  vgpu::set_fast_path_enabled(saved_fast);
  return r;
}

struct GraphResult {
  double eager_per_s = 0;    ///< launches/s, eager fast-path accounting
  double replay_per_s = 0;   ///< launches/s, graph replay accounting
  double saved_fraction = 0; ///< modeled_seconds_saved / eager modeled time
  double checksum = 0;
};

/// A PSO-shaped iteration — six small launches across the five pipeline
/// phases — accounted eagerly vs replayed through an instantiated graph.
/// Dispatch-only launches (account_launch, as the fast-path batched eval
/// issues them): the probe isolates per-launch setup — occupancy
/// resolution, breakdown lookup, clock bookkeeping — which is exactly the
/// cost graph replay amortizes. Kernel bodies are identical work on both
/// sides and would only dilute the ratio. n_elems is tiny so the modeled
/// kernels are launch-overhead-dominated, the regime CUDA Graphs target.
GraphResult bench_graph(std::int64_t n_elems, int iters) {
  static const char* const kPhases[] = {"init",  "eval",  "pbest",
                                        "gbest", "swarm", "swarm"};
  constexpr int kLaunches = 6;
  vgpu::LaunchConfig cfg;
  cfg.block = 64;
  cfg.grid = (n_elems + cfg.block - 1) / cfg.block;
  vgpu::KernelCostSpec cost;
  cost.flops = 2.0 * static_cast<double>(n_elems);
  cost.dram_read_bytes = static_cast<double>(n_elems) * sizeof(float);
  cost.dram_write_bytes = static_cast<double>(n_elems) * sizeof(float);

  GraphResult r;
  const auto iteration = [&](vgpu::Device& device) {
    for (int k = 0; k < kLaunches; ++k) {
      device.set_phase(kPhases[k]);
      device.account_launch(cfg, cost);
    }
  };

  {  // eager pass
    vgpu::Device device;
    for (int it = 0; it < iters / 10 + 1; ++it) {  // warmup
      iteration(device);
    }
    Stopwatch watch;
    for (int it = 0; it < iters; ++it) {
      iteration(device);
    }
    r.eager_per_s =
        static_cast<double>(iters) * kLaunches / watch.elapsed_s();
    r.checksum += device.counters().modeled_seconds;
  }

  {  // graph pass: capture once, replay steady-state with one graph launch
     // per iteration (the cudaGraphLaunch analogue) — no per-launch call
     // sites, no positional matching, pre-resolved accounting per node.
    vgpu::Device device;
    vgpu::graph::Graph graph;
    device.begin_capture(graph);
    iteration(device);
    device.end_capture();
    vgpu::graph::GraphExec exec = graph.instantiate(device.perf());
    const auto replay_iteration = [&] { device.replay_graph(exec); };
    for (int it = 0; it < iters / 10 + 1; ++it) {  // warmup
      replay_iteration();
    }
    const double modeled_before = device.counters().modeled_seconds;
    const double saved_before = exec.stats().modeled_seconds_saved;
    Stopwatch watch;
    for (int it = 0; it < iters; ++it) {
      replay_iteration();
    }
    r.replay_per_s =
        static_cast<double>(iters) * kLaunches / watch.elapsed_s();
    const double modeled =
        device.counters().modeled_seconds - modeled_before;
    r.saved_fraction =
        modeled > 0
            ? (exec.stats().modeled_seconds_saved - saved_before) / modeled
            : 0.0;
    r.checksum += device.counters().modeled_seconds;
  }
  return r;
}

struct FuseResult {
  double eager_per_s = 0;   ///< launches/s, eager fast-path accounting
  double replay_per_s = 0;  ///< launches/s, plain graph replay
  double fused_per_s = 0;   ///< launches/s, fused graph replay
  int groups = 0;           ///< fused groups formed over the chain
  int fused_members = 0;    ///< member kernels across the groups
  double launch_reduction = 0;   ///< 1 - fused/eager launch count
  double modeled_saved_fraction = 0;  ///< 1 - fused/replay modeled seconds
  std::string trace;  ///< fused replay's Chrome trace (--fuse-trace)
  double checksum = 0;
};

/// A fully fusible chain: kChain element-wise launches where launch k reads
/// buffer k-1 and writes buffer k — same shape, same stream, aligned
/// element slices, so the FusionPass collapses all of them into one fused
/// node. Timed three ways: eager accounting, plain standalone replay
/// (kChain pre-resolved accountings per iteration) and fused standalone
/// replay (one merged accounting per iteration). Accounting-only launches,
/// as in bench_graph: the measured win is per-launch dispatch, which is
/// exactly what fusion removes.
FuseResult bench_fuse(std::int64_t n_elems, int iters, bool want_trace) {
  constexpr int kChain = 8;
  static const char* const kLabels[kChain] = {
      "fuse/k0", "fuse/k1", "fuse/k2", "fuse/k3",
      "fuse/k4", "fuse/k5", "fuse/k6", "fuse/k7"};
  vgpu::LaunchConfig cfg;
  cfg.block = 64;
  cfg.grid = (n_elems + cfg.block - 1) / cfg.block;
  vgpu::KernelCostSpec cost;
  cost.flops = 2.0 * static_cast<double>(n_elems);
  cost.dram_read_bytes = static_cast<double>(n_elems) * sizeof(float);
  cost.dram_write_bytes = static_cast<double>(n_elems) * sizeof(float);
  std::vector<std::vector<float>> bufs(
      kChain, std::vector<float>(static_cast<std::size_t>(n_elems)));
  const double span = static_cast<double>(n_elems) * sizeof(float);

  FuseResult r;
  const auto iteration = [&](vgpu::Device& device) {
    device.set_phase("swarm");
    for (int k = 0; k < kChain; ++k) {
      vgpu::prof::KernelLabel label(kLabels[k]);
      device.account_launch(cfg, cost);
      if (device.capturing()) {
        device.graph_note_elements(n_elems);
        std::vector<vgpu::graph::BufferUse> uses;
        if (k > 0) {
          uses.push_back({bufs[static_cast<std::size_t>(k - 1)].data(), span,
                          sizeof(float), /*write=*/false, "prev"});
        }
        uses.push_back({bufs[static_cast<std::size_t>(k)].data(), span,
                        sizeof(float), /*write=*/true, "out"});
        device.graph_note_uses(std::move(uses));
      }
    }
  };
  const auto capture = [&](vgpu::Device& device, vgpu::graph::Graph& graph) {
    device.begin_capture(graph);
    iteration(device);
    device.end_capture();
  };

  {  // eager pass
    vgpu::Device device;
    for (int it = 0; it < iters / 10 + 1; ++it) {  // warmup
      iteration(device);
    }
    Stopwatch watch;
    for (int it = 0; it < iters; ++it) {
      iteration(device);
    }
    r.eager_per_s = static_cast<double>(iters) * kChain / watch.elapsed_s();
    r.checksum += device.counters().modeled_seconds;
  }

  double replay_modeled = 0;
  {  // plain graph replay pass
    vgpu::Device device;
    vgpu::graph::Graph graph;
    capture(device, graph);
    vgpu::graph::GraphExec exec = graph.instantiate(device.perf());
    for (int it = 0; it < iters / 10 + 1; ++it) {  // warmup
      device.replay_graph(exec);
    }
    const double modeled_before = device.counters().modeled_seconds;
    Stopwatch watch;
    for (int it = 0; it < iters; ++it) {
      device.replay_graph(exec);
    }
    r.replay_per_s = static_cast<double>(iters) * kChain / watch.elapsed_s();
    replay_modeled = device.counters().modeled_seconds - modeled_before;
    r.checksum += device.counters().modeled_seconds;
  }

  {  // fused replay pass
    vgpu::Device device;
    vgpu::graph::Graph graph;
    capture(device, graph);
    vgpu::graph::GraphExec exec = graph.instantiate(device.perf());
    exec.apply_fusion(device.perf());
    r.groups = exec.fusion_stats().groups;
    r.fused_members = exec.fusion_stats().fused_members;
    for (int it = 0; it < iters / 10 + 1; ++it) {  // warmup
      device.replay_fused(exec);
    }
    const double modeled_before = device.counters().modeled_seconds;
    Stopwatch watch;
    for (int it = 0; it < iters; ++it) {
      device.replay_fused(exec);
    }
    r.fused_per_s = static_cast<double>(iters) * kChain / watch.elapsed_s();
    const double fused_modeled =
        device.counters().modeled_seconds - modeled_before;
    r.launch_reduction = exec.fusion_stats().launch_reduction();
    r.modeled_saved_fraction =
        replay_modeled > 0 ? 1.0 - fused_modeled / replay_modeled : 0.0;
    r.checksum += device.counters().modeled_seconds;
  }

  if (want_trace) {
    // Separate single-replay pass with the profiler on so the capture picks
    // up the kernel labels and the fused event carries them.
    const bool saved_prof = vgpu::prof::active();
    vgpu::prof::set_enabled(true);
    vgpu::Device device;
    vgpu::graph::Graph graph;
    capture(device, graph);
    vgpu::graph::GraphExec exec = graph.instantiate(device.perf());
    exec.apply_fusion(device.perf());
    (void)device.take_profile();  // drop the capture pass's events
    device.replay_fused(exec);
    r.trace = device.take_profile().chrome_trace_json();
    vgpu::prof::set_enabled(saved_prof);
  }
  return r;
}

/// Real-body chain kernel for the codegen probe: out[i] = in[i] * a + b,
/// registered under a tag with a composed 8-deep sequence (below).
struct AxpbKernel {
  struct Args {
    const float* in;
    float* out;
    float a;
    float b;
  };
  [[nodiscard]] static std::uint32_t tag() {
    static const std::uint32_t t =
        vgpu::graph::codegen::intern_tag("bench/axpb");
    return t;
  }
  static void element(const Args& args, std::int64_t i) {
    args.out[i] = args.in[i] * args.a + args.b;
  }
};

/// Identical body under a tag with NO composed sequence registered, so an
/// all-registered chain of these exercises the chunked middle tier.
struct AxpbChunkedKernel {
  struct Args {
    const float* in;
    float* out;
    float a;
    float b;
  };
  [[nodiscard]] static std::uint32_t tag() {
    static const std::uint32_t t =
        vgpu::graph::codegen::intern_tag("bench/axpb_nc");
    return t;
  }
  static void element(const Args& args, std::int64_t i) {
    args.out[i] = args.in[i] * args.a + args.b;
  }
};

struct CodegenResult {
  // Synthetic chain: fused standalone replay of 8 real-body axpb kernels,
  // in element-operations/s (elements x chain members per second).
  double interp_elems_per_s = 0;    ///< interpreted per-element elem_body loop
  double chunked_elems_per_s = 0;   ///< registered spans, kChunk windows
  double composed_elems_per_s = 0;  ///< one inlined single-pass loop
  // Table1-shaped pipeline: one captured iteration slice (weights, eval,
  // pbest, swarm update) over the four Table 1 problems at n=64, d=4.
  double pipeline_eager_s = 0;     ///< eager wall of `iters` slices
  double pipeline_interp_s = 0;    ///< interpreted fused replay wall
  double pipeline_compiled_s = 0;  ///< compiled fused replay wall
  int pipeline_compiled_groups = 0;
  int pipeline_composed_groups = 0;
  double checksum = 0;

  [[nodiscard]] double composed_vs_interp() const {
    return interp_elems_per_s > 0 ? composed_elems_per_s / interp_elems_per_s
                                  : 0.0;
  }
  [[nodiscard]] double chunked_vs_interp() const {
    return interp_elems_per_s > 0 ? chunked_elems_per_s / interp_elems_per_s
                                  : 0.0;
  }
  /// Compiled fused replay vs the interpreted fused replay it replaces —
  /// the pipeline-shaped form of the ISSUE's headline claim ("graph replay
  /// actually fast").
  [[nodiscard]] double pipeline_vs_interp() const {
    return pipeline_compiled_s > 0 ? pipeline_interp_s / pipeline_compiled_s
                                   : 0.0;
  }
  /// Compiled fused replay vs re-running the eager slice. The eager fast
  /// path is already an inlined flat loop per launch, and the pipeline at
  /// this shape is dominated by work identical on both sides (Philox fills,
  /// the objective), so parity here is the expected ceiling — the win over
  /// the graph path is pipeline_vs_interp().
  [[nodiscard]] double pipeline_speedup() const {
    return pipeline_compiled_s > 0 ? pipeline_eager_s / pipeline_compiled_s
                                   : 0.0;
  }
};

/// One captured axpb chain: 8 element-wise launches with real bodies,
/// launch k reading buffer k and writing buffer k+1 — same shape, same
/// stream, aligned scalar footprints, so the FusionPass collapses the
/// chain to one group. K selects the registered tag (composed vs chunked).
template <typename K>
void axpb_iteration(vgpu::Device& device, const vgpu::LaunchConfig& cfg,
                    const vgpu::KernelCostSpec& cost, std::int64_t n_elems,
                    std::vector<std::vector<float>>& bufs) {
  constexpr int kChain = 8;
  const double span = static_cast<double>(n_elems) * sizeof(float);
  device.set_phase("swarm");
  for (int k = 0; k < kChain; ++k) {
    const typename K::Args args{bufs[static_cast<std::size_t>(k)].data(),
                                bufs[static_cast<std::size_t>(k + 1)].data(),
                                1.0009765625f, 0.03125f};
    vgpu::prof::KernelLabel label("codegen/axpb");
    device.launch_elements(cfg, cost, n_elems, [args](std::int64_t i) {
      K::element(args, i);
    });
    if (device.capturing()) {
      device.graph_note_elements(n_elems);
      device.graph_note_uses(
          {{args.in, span, sizeof(float), /*write=*/false, "in"},
           {args.out, span, sizeof(float), /*write=*/true, "out"}});
      device.graph_note_static(vgpu::graph::codegen::make_static<K>(args));
    }
  }
}

/// Fused standalone replay of the real-body axpb chain, timed three ways:
/// interpreted (codegen off — the per-element std::function loop), chunked
/// (registered spans, no composed match) and composed (one inlined pass).
/// Unlike bench_fuse this probe executes real kernel bodies, so the ratio
/// is the ISSUE's headline number: how much faster the same fused group
/// RUNS when its members resolve to static kernels.
void bench_codegen_chain(std::int64_t n_elems, int iters, CodegenResult& r) {
  constexpr int kChain = 8;
  namespace codegen = vgpu::graph::codegen;
  codegen::register_composed_sequence<AxpbKernel, AxpbKernel, AxpbKernel,
                                      AxpbKernel, AxpbKernel, AxpbKernel,
                                      AxpbKernel, AxpbKernel>();
  vgpu::LaunchConfig cfg;
  cfg.block = 256;
  cfg.grid = (n_elems + cfg.block - 1) / cfg.block;
  vgpu::KernelCostSpec cost;
  cost.flops = 2.0 * static_cast<double>(n_elems);
  cost.dram_read_bytes = static_cast<double>(n_elems) * sizeof(float);
  cost.dram_write_bytes = static_cast<double>(n_elems) * sizeof(float);
  const double ops =
      static_cast<double>(iters) * kChain * static_cast<double>(n_elems);

  const bool saved_codegen = codegen::enabled();
  enum class Tier { kInterpreted, kChunked, kComposed };
  for (const Tier tier : {Tier::kInterpreted, Tier::kChunked,
                          Tier::kComposed}) {
    std::vector<std::vector<float>> bufs(
        kChain + 1, std::vector<float>(static_cast<std::size_t>(n_elems)));
    for (std::int64_t i = 0; i < n_elems; ++i) {
      bufs[0][static_cast<std::size_t>(i)] =
          static_cast<float>(i % 97) * 0.125f;
    }
    vgpu::Device device;
    device.set_capture_bodies(true);
    vgpu::graph::Graph graph;
    device.begin_capture(graph);
    if (tier == Tier::kChunked) {
      axpb_iteration<AxpbChunkedKernel>(device, cfg, cost, n_elems, bufs);
    } else {
      axpb_iteration<AxpbKernel>(device, cfg, cost, n_elems, bufs);
    }
    device.end_capture();
    device.set_capture_bodies(false);
    vgpu::graph::GraphExec exec = graph.instantiate(device.perf());
    codegen::set_enabled(tier != Tier::kInterpreted);
    exec.apply_fusion(device.perf());
    codegen::set_enabled(saved_codegen);
    for (int it = 0; it < iters / 10 + 1; ++it) {  // warmup
      device.replay_fused(exec);
    }
    Stopwatch watch;
    for (int it = 0; it < iters; ++it) {
      device.replay_fused(exec);
    }
    const double per_s = ops / watch.elapsed_s();
    switch (tier) {
      case Tier::kInterpreted: r.interp_elems_per_s = per_s; break;
      case Tier::kChunked: r.chunked_elems_per_s = per_s; break;
      case Tier::kComposed: r.composed_elems_per_s = per_s; break;
    }
    r.checksum += static_cast<double>(
        bufs[kChain][static_cast<std::size_t>(n_elems - 1)]);
  }
}

/// Table1-shaped pipeline probe over the four Table 1 problems at n=64,
/// d=4 (the shape where the whole per-particle run — two weight fills,
/// eval, pbest compare, gather — fuses into one five-member group). One
/// iteration slice (the launch_elements portion of the sync loop) is timed
/// three ways: eager re-execution, interpreted fused replay (captured with
/// bodies, codegen off — the per-element std::function loop serve-style
/// replay used to be stuck with), and compiled fused replay under
/// FASTPSO_CODEGEN semantics. The three run as interleaved min-of-k rounds
/// (see bench_eval: this box swings ~2x on long one-pass windows). The
/// gated number is compiled vs interpreted — the replay-path regression
/// the ISSUE fixes; compiled vs eager is reported as the parity check.
void bench_codegen_pipeline(int n, int d, int iters, CodegenResult& r) {
  namespace codegen = vgpu::graph::codegen;
  const std::vector<std::string> problem_names = {"sphere", "griewank",
                                                  "easom", "threadconf"};
  const bool saved_codegen = codegen::enabled();
  for (const auto& problem_name : problem_names) {
    const std::unique_ptr<problems::Problem> problem =
        problem_name == "threadconf" ? tgbm::make_threadconf_problem()
                                     : problems::make_problem(problem_name);
    const core::Objective objective =
        core::objective_from_problem(*problem, d);
    core::PsoParams params;
    params.particles = n;
    params.dim = d;
    params.max_iter = 1;
    const core::UpdateCoefficients coeff =
        core::make_coefficients(params, objective.lower, objective.upper);
    const std::int64_t elements = static_cast<std::int64_t>(n) * d;
    vgpu::KernelCostSpec eval_cost;
    eval_cost.flops = objective.cost.flops(d) * n;
    eval_cost.transcendentals = objective.cost.transcendentals(d) * n;
    eval_cost.dram_read_bytes = static_cast<double>(elements) * sizeof(float);
    eval_cost.dram_write_bytes = static_cast<double>(n) * sizeof(float);

    const std::uint64_t seed = params.seed;
    const auto make_run = [&](vgpu::Device& device,
                              core::LaunchPolicy& policy,
                              core::SwarmState& state,
                              vgpu::DeviceArray<float>& l_mat,
                              vgpu::DeviceArray<float>& g_mat) {
      return [&device, &policy, &state, &l_mat, &g_mat, &objective,
              eval_cost, coeff, elements, n, d, seed] {
        device.set_phase("init");
        core::generate_weights(device, policy, elements, seed, 0, l_mat,
                               g_mat);
        device.set_phase("eval");
        core::evaluate_positions(device, policy, objective,
                                 state.positions.data(), n, d, eval_cost,
                                 state.perror.data());
        device.set_phase("pbest");
        core::update_pbest(device, policy, state);
        device.set_phase("swarm");
        core::swarm_update(device, policy, state, l_mat, g_mat, coeff,
                           core::UpdateTechnique::kGlobalMemory);
      };
    };

    // One self-contained context per timed variant (each replays over its
    // own persistent swarm buffers).
    struct Ctx {
      vgpu::Device device;
      core::LaunchPolicy policy;
      core::SwarmState state;
      vgpu::DeviceArray<float> l_mat;
      vgpu::DeviceArray<float> g_mat;
      std::unique_ptr<vgpu::graph::Graph> graph;
      std::unique_ptr<vgpu::graph::GraphExec> exec;

      Ctx(int n, int d, std::int64_t elements, const core::PsoParams& params,
          const core::Objective& objective,
          const core::UpdateCoefficients& coeff)
          : policy(device.spec()),
            state(device, n, d),
            l_mat(device, static_cast<std::size_t>(elements)),
            g_mat(device, static_cast<std::size_t>(elements)) {
        core::initialize_swarm(device, policy, state, params.seed,
                               static_cast<float>(objective.lower),
                               static_cast<float>(objective.upper),
                               coeff.vmax);
      }
    };
    Ctx eager(n, d, elements, params, objective, coeff);
    Ctx interp(n, d, elements, params, objective, coeff);
    Ctx compiled(n, d, elements, params, objective, coeff);
    const auto eager_slice =
        make_run(eager.device, eager.policy, eager.state, eager.l_mat,
                 eager.g_mat);
    // Capture with bodies; codegen resolution on only for the compiled
    // exec. Registration happens either way (it is unconditional during
    // capture), so the two execs differ only in the dispatch tier.
    for (Ctx* ctx : {&interp, &compiled}) {
      const auto slice = make_run(ctx->device, ctx->policy, ctx->state,
                                  ctx->l_mat, ctx->g_mat);
      codegen::set_enabled(ctx == &compiled);
      ctx->device.set_capture_bodies(true);
      ctx->graph = std::make_unique<vgpu::graph::Graph>();
      ctx->device.begin_capture(*ctx->graph);
      slice();
      ctx->device.end_capture();
      ctx->device.set_capture_bodies(false);
      ctx->exec = std::make_unique<vgpu::graph::GraphExec>(
          ctx->graph->instantiate(ctx->device.perf()));
      ctx->exec->apply_fusion(ctx->device.perf());
      codegen::set_enabled(saved_codegen);
    }
    r.pipeline_compiled_groups +=
        compiled.exec->codegen_stats().compiled_groups;
    r.pipeline_composed_groups +=
        compiled.exec->codegen_stats().composed_groups;

    // Interleaved min-of-k rounds, one estimator per variant (see
    // bench_eval's noise note).
    constexpr int kRounds = 7;
    const int round_iters = iters / kRounds + 1;
    double best_eager = 0;
    double best_interp = 0;
    double best_compiled = 0;
    for (int round = 0; round < kRounds; ++round) {
      Stopwatch we;
      for (int it = 0; it < round_iters; ++it) {
        eager_slice();
      }
      const double te = we.elapsed_s();
      Stopwatch wi;
      for (int it = 0; it < round_iters; ++it) {
        interp.device.replay_fused(*interp.exec);
      }
      const double ti = wi.elapsed_s();
      Stopwatch wc;
      for (int it = 0; it < round_iters; ++it) {
        compiled.device.replay_fused(*compiled.exec);
      }
      const double tc = wc.elapsed_s();
      if (round == 0 || te < best_eager) best_eager = te;
      if (round == 0 || ti < best_interp) best_interp = ti;
      if (round == 0 || tc < best_compiled) best_compiled = tc;
    }
    r.pipeline_eager_s += best_eager;
    r.pipeline_interp_s += best_interp;
    r.pipeline_compiled_s += best_compiled;
    r.checksum += static_cast<double>(eager.state.positions[0]) +
                  static_cast<double>(interp.state.positions[0]) +
                  static_cast<double>(compiled.state.positions[0]);
  }
}

struct TunedResult {
  double default_us = 0;   ///< executed modeled us, defaults, all groups
  double tuned_us = 0;     ///< executed modeled us, tuned table installed
  int groups = 0;
  int improved = 0;        ///< groups with a strict modeled win
  int store_entries = 0;   ///< table entries the search emitted
};

/// Autotuner probe: tune the engine families on the standard smoke shapes
/// and total the executed-replay modeled cost of the default vs the tuned
/// configuration per group. Both sides come from the engine's own
/// accounting on a fresh Device (not the tuner's predicted mirror), and
/// modeled time is deterministic, so tuned <= default is gateable exactly.
TunedResult bench_tuned(int particles, int iterations) {
  tune::TunerOptions options;
  options.particles = particles;
  options.iterations = iterations;
  const tune::Tuner tuner(vgpu::tesla_v100(), options);
  const tune::TuneReport report =
      tuner.tune(tune::engine_families(vgpu::tesla_v100()),
                 tune::smoke_shapes());
  TunedResult r;
  r.groups = static_cast<int>(report.outcomes.size());
  r.improved = report.improved_groups();
  r.store_entries = static_cast<int>(report.table.store().size());
  for (const tune::GroupOutcome& outcome : report.outcomes) {
    r.default_us += outcome.executed_default_us;
    r.tuned_us += outcome.executed_tuned_us;
  }
  return r;
}

/// Wall-clock of the exact table1_overall --smoke cell set; best of `reps`.
double bench_table1_smoke(int reps) {
  const std::vector<std::string> problems = {"sphere", "griewank", "easom",
                                             "threadconf"};
  const auto impls = all_impls();
  double best = 0;
  for (int rep = 0; rep < reps; ++rep) {
    Stopwatch watch;
    for (const auto& problem : problems) {
      for (Impl impl : impls) {
        RunSpec spec;
        spec.impl = impl;
        spec.problem = problem;
        spec.particles = 64;
        spec.dim = 8;
        spec.iters = 50;
        spec.executed_iters = 5;
        spec.seed = 42;
        run_spec(spec);
      }
    }
    const double elapsed = watch.elapsed_s();
    if (rep == 0 || elapsed < best) {
      best = elapsed;
    }
  }
  return best;
}

/// Minimal extractor for the flat numeric fields this bench emits: finds
/// `"key":` in `text` and parses the number that follows. Good enough for
/// the baseline files we write ourselves; returns `fallback` when absent.
double json_number(const std::string& text, const std::string& key,
                   double fallback) {
  const std::string needle = "\"" + key + "\"";
  std::size_t pos = text.find(needle);
  if (pos == std::string::npos) {
    return fallback;
  }
  pos = text.find(':', pos + needle.size());
  if (pos == std::string::npos) {
    return fallback;
  }
  return std::strtod(text.c_str() + pos + 1, nullptr);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);
  const bool prof_overhead = args.get_bool("prof-overhead", false);
  const bool graph_bench = args.get_bool("graph", false);
  const bool fuse_bench = args.get_bool("fuse", false);
  const bool codegen_bench = args.get_bool("codegen", false);
  const bool tuned_bench = args.get_bool("tuned", false);
  const std::string json_path = args.get_string("json", "BENCH_engine.json");
  const std::string tuner_json_path =
      args.get_string("tuner-json", tuned_bench ? "BENCH_tuner.json" : "");
  const std::string fusion_json_path =
      args.get_string("fusion-json", fuse_bench ? "BENCH_fusion.json" : "");
  const std::string codegen_json_path = args.get_string(
      "codegen-json", codegen_bench ? "BENCH_codegen.json" : "");
  const std::string fuse_trace_path = args.get_string("fuse-trace", "");
  const std::string baseline_path = args.get_string("baseline", "");

  const std::int64_t launch_elems = 4096;
  const int launch_reps = smoke ? 4000 : 20000;
  const int eval_n = smoke ? 512 : 2048;
  const int eval_d = 32;
  const int eval_reps = smoke ? 1000 : 4000;
  const int table1_reps = smoke ? 3 : 5;

  const LaunchResult launch = bench_launch(launch_elems, launch_reps);
  const EvalResult eval = bench_eval("sphere", eval_n, eval_d, eval_reps);
  const double table1_wall = bench_table1_smoke(table1_reps);
  ProfOverheadResult prof;
  if (prof_overhead) {
    prof = bench_prof_overhead(launch_elems, launch_reps);
  }
  // Tiny per-launch work so launch setup dominates (the amortized cost).
  const std::int64_t graph_elems = 128;
  const int graph_iters = smoke ? 2000 : 10000;
  GraphResult graph;
  if (graph_bench) {
    graph = bench_graph(graph_elems, graph_iters);
  }
  FuseResult fuse;
  if (fuse_bench) {
    fuse = bench_fuse(graph_elems, graph_iters, !fuse_trace_path.empty());
  }
  // Real-body probes: per-element work dominates, so the measured ratio is
  // execution speed of the fused loop itself, not dispatch accounting.
  const std::int64_t codegen_elems = 4096;
  const int codegen_iters = smoke ? 1000 : 4000;
  const int pipeline_iters = smoke ? 500 : 2000;
  CodegenResult codegen;
  if (codegen_bench) {
    bench_codegen_chain(codegen_elems, codegen_iters, codegen);
    bench_codegen_pipeline(/*n=*/64, /*d=*/4, pipeline_iters, codegen);
  }
  TunedResult tuned;
  if (tuned_bench) {
    tuned = bench_tuned(smoke ? 24 : 48, smoke ? 12 : 24);
  }

  const double launch_speedup = launch.fast_per_s / launch.legacy_per_s;
  const double eval_speedup = eval.batch_per_s / eval.virtual_per_s;

  TextTable table("micro_engine: host execution fast path");
  table.set_header({"metric", "fast/batch", "legacy/virtual", "speedup"});
  table.add_row({"launches/s (n=" + std::to_string(launch_elems) + ")",
                 fmt_sci(launch.fast_per_s), fmt_sci(launch.legacy_per_s),
                 fmt_speedup(launch_speedup)});
  table.add_row({"evals/s (sphere " + std::to_string(eval_n) + "x" +
                     std::to_string(eval_d) + ")",
                 fmt_sci(eval.batch_per_s), fmt_sci(eval.virtual_per_s),
                 fmt_speedup(eval_speedup)});
  table.add_row({"table1 --smoke wall (s)", fmt_fixed(table1_wall, 4), "-",
                 "-"});
  if (prof_overhead) {
    // "speedup" column = off/on: how much slower launches get with the
    // profiler capturing events (1.0x would be free).
    table.add_row({"launches/s prof off/on",
                   fmt_sci(prof.off_per_s), fmt_sci(prof.on_per_s),
                   fmt_speedup(prof.off_per_s / prof.on_per_s)});
    table.add_row({"modeled-vs-wall (prof on)",
                   fmt_speedup(prof.modeled_vs_wall), "-", "-"});
  }
  if (graph_bench) {
    // "fast/batch" column = graph replay, "legacy/virtual" = eager.
    table.add_row({"launches/s graph/eager (n=" +
                       std::to_string(graph_elems) + ")",
                   fmt_sci(graph.replay_per_s), fmt_sci(graph.eager_per_s),
                   fmt_speedup(graph.replay_per_s / graph.eager_per_s)});
    table.add_row({"modeled saved by graph",
                   fmt_fixed(graph.saved_fraction * 100.0, 1) + "%", "-",
                   "-"});
  }
  if (fuse_bench) {
    // "fast/batch" column = fused replay, "legacy/virtual" = plain replay.
    table.add_row({"launches/s fused/replay (chain of 8)",
                   fmt_sci(fuse.fused_per_s), fmt_sci(fuse.replay_per_s),
                   fmt_speedup(fuse.fused_per_s / fuse.replay_per_s)});
    table.add_row({"launch reduction by fusion",
                   fmt_fixed(fuse.launch_reduction * 100.0, 1) + "%", "-",
                   "-"});
    table.add_row({"modeled saved by fusion",
                   fmt_fixed(fuse.modeled_saved_fraction * 100.0, 1) + "%",
                   "-", "-"});
  }
  if (codegen_bench) {
    // "fast/batch" column = compiled tier, "legacy/virtual" = interpreted.
    table.add_row({"elem-ops/s composed/interp (chain of 8)",
                   fmt_sci(codegen.composed_elems_per_s),
                   fmt_sci(codegen.interp_elems_per_s),
                   fmt_speedup(codegen.composed_vs_interp())});
    table.add_row({"elem-ops/s chunked/interp (chain of 8)",
                   fmt_sci(codegen.chunked_elems_per_s),
                   fmt_sci(codegen.interp_elems_per_s),
                   fmt_speedup(codegen.chunked_vs_interp())});
    table.add_row({"pipeline wall compiled/interp (4 problems, 64x4)",
                   fmt_fixed(codegen.pipeline_compiled_s, 4),
                   fmt_fixed(codegen.pipeline_interp_s, 4),
                   fmt_speedup(codegen.pipeline_vs_interp())});
    table.add_row({"pipeline wall compiled/eager (4 problems, 64x4)",
                   fmt_fixed(codegen.pipeline_compiled_s, 4),
                   fmt_fixed(codegen.pipeline_eager_s, 4),
                   fmt_speedup(codegen.pipeline_speedup())});
  }
  if (tuned_bench) {
    // "fast/batch" column = tuned table installed, "legacy/virtual" =
    // defaults. Both are executed modeled us totals over the smoke groups.
    table.add_row({"tuner modeled us tuned/default (smoke groups)",
                   fmt_fixed(tuned.tuned_us, 3),
                   fmt_fixed(tuned.default_us, 3),
                   fmt_speedup(tuned.default_us / tuned.tuned_us)});
    table.add_row({"tuner improved groups",
                   std::to_string(tuned.improved) + "/" +
                       std::to_string(tuned.groups),
                   "-", "-"});
  }
  table.add_note("identical account_launch on both paths: modeled seconds "
                 "and counters do not depend on the toggle");
  table.print(std::cout);

  if (!json_path.empty()) {
    std::ostringstream json;
    json.setf(std::ios::fixed);
    json.precision(3);
    json << "{\n"
         << "  \"schema\": \"fastpso-bench-engine-v1\",\n"
         << "  \"launch\": {\n"
         << "    \"n_elems\": " << launch_elems << ",\n"
         << "    \"reps\": " << launch_reps << ",\n"
         << "    \"fast_launches_per_s\": " << launch.fast_per_s << ",\n"
         << "    \"legacy_launches_per_s\": " << launch.legacy_per_s << ",\n"
         << "    \"speedup\": " << launch_speedup << "\n"
         << "  },\n"
         << "  \"eval\": {\n"
         << "    \"n\": " << eval_n << ",\n"
         << "    \"dim\": " << eval_d << ",\n"
         << "    \"batch_evals_per_s\": " << eval.batch_per_s << ",\n"
         << "    \"virtual_evals_per_s\": " << eval.virtual_per_s << ",\n"
         << "    \"speedup\": " << eval_speedup << "\n"
         << "  },\n";
    if (prof_overhead) {
      json << "  \"prof\": {\n"
           << "    \"off_launches_per_s\": " << prof.off_per_s << ",\n"
           << "    \"on_launches_per_s\": " << prof.on_per_s << ",\n"
           << "    \"overhead_ratio\": " << prof.off_per_s / prof.on_per_s
           << ",\n"
           << "    \"modeled_vs_wall\": " << prof.modeled_vs_wall << "\n"
           << "  },\n";
    }
    if (graph_bench) {
      json << "  \"graph\": {\n"
           << "    \"n_elems\": " << graph_elems << ",\n"
           << "    \"iters\": " << graph_iters << ",\n"
           << "    \"eager_launches_per_s\": " << graph.eager_per_s << ",\n"
           << "    \"replay_launches_per_s\": " << graph.replay_per_s
           << ",\n"
           << "    \"speedup\": " << graph.replay_per_s / graph.eager_per_s
           << ",\n"
           << "    \"modeled_saved_fraction\": " << graph.saved_fraction
           << "\n"
           << "  },\n";
    }
    json << "  \"table1_smoke\": {\n";
    json.precision(6);
    json << "    \"wall_s\": " << table1_wall << "\n"
         << "  }\n"
         << "}\n";
    std::ofstream file(json_path);
    file << json.str();
    std::cout << (file ? "json written: " : "json write FAILED: ")
              << json_path << "\n";
  }

  if (fuse_bench && !fusion_json_path.empty()) {
    std::ostringstream json;
    json.setf(std::ios::fixed);
    json.precision(3);
    json << "{\n"
         << "  \"schema\": \"fastpso-bench-fusion-v1\",\n"
         << "  \"n_elems\": " << graph_elems << ",\n"
         << "  \"iters\": " << graph_iters << ",\n"
         << "  \"chain\": 8,\n"
         << "  \"eager_launches_per_s\": " << fuse.eager_per_s << ",\n"
         << "  \"replay_launches_per_s\": " << fuse.replay_per_s << ",\n"
         << "  \"fused_launches_per_s\": " << fuse.fused_per_s << ",\n"
         << "  \"fused_vs_replay_speedup\": "
         << fuse.fused_per_s / fuse.replay_per_s << ",\n"
         << "  \"fused_vs_eager_speedup\": "
         << fuse.fused_per_s / fuse.eager_per_s << ",\n"
         << "  \"groups\": " << fuse.groups << ",\n"
         << "  \"fused_members\": " << fuse.fused_members << ",\n"
         << "  \"launch_reduction\": " << fuse.launch_reduction << ",\n"
         << "  \"modeled_saved_fraction\": " << fuse.modeled_saved_fraction
         << "\n"
         << "}\n";
    std::ofstream file(fusion_json_path);
    file << json.str();
    std::cout << (file ? "json written: " : "json write FAILED: ")
              << fusion_json_path << "\n";
  }

  if (codegen_bench && !codegen_json_path.empty()) {
    std::ostringstream json;
    json.setf(std::ios::fixed);
    json.precision(3);
    json << "{\n"
         << "  \"schema\": \"fastpso-bench-codegen-v1\",\n"
         << "  \"chain\": {\n"
         << "    \"n_elems\": " << codegen_elems << ",\n"
         << "    \"iters\": " << codegen_iters << ",\n"
         << "    \"kernels\": 8,\n"
         << "    \"interpreted_elem_ops_per_s\": "
         << codegen.interp_elems_per_s << ",\n"
         << "    \"chunked_elem_ops_per_s\": " << codegen.chunked_elems_per_s
         << ",\n"
         << "    \"composed_elem_ops_per_s\": "
         << codegen.composed_elems_per_s << ",\n"
         << "    \"chunked_vs_interpreted\": " << codegen.chunked_vs_interp()
         << ",\n"
         << "    \"composed_vs_interpreted\": "
         << codegen.composed_vs_interp() << "\n"
         << "  },\n"
         << "  \"table1_pipeline\": {\n"
         << "    \"particles\": 64,\n"
         << "    \"dim\": 4,\n"
         << "    \"iters\": " << pipeline_iters << ",\n"
         << "    \"problems\": 4,\n";
    json.precision(6);
    json << "    \"eager_wall_s\": " << codegen.pipeline_eager_s << ",\n"
         << "    \"interpreted_wall_s\": " << codegen.pipeline_interp_s
         << ",\n"
         << "    \"compiled_wall_s\": " << codegen.pipeline_compiled_s
         << ",\n";
    json.precision(3);
    json << "    \"compiled_vs_interpreted\": "
         << codegen.pipeline_vs_interp() << ",\n"
         << "    \"compiled_vs_eager\": " << codegen.pipeline_speedup()
         << ",\n"
         << "    \"compiled_groups\": " << codegen.pipeline_compiled_groups
         << ",\n"
         << "    \"composed_groups\": " << codegen.pipeline_composed_groups
         << "\n"
         << "  }\n"
         << "}\n";
    std::ofstream file(codegen_json_path);
    file << json.str();
    std::cout << (file ? "json written: " : "json write FAILED: ")
              << codegen_json_path << "\n";
  }

  if (tuned_bench && !tuner_json_path.empty()) {
    std::ostringstream json;
    json.setf(std::ios::fixed);
    json.precision(3);
    json << "{\n"
         << "  \"schema\": \"fastpso-bench-tuner-v1\",\n"
         << "  \"groups\": " << tuned.groups << ",\n"
         << "  \"improved_groups\": " << tuned.improved << ",\n"
         << "  \"store_entries\": " << tuned.store_entries << ",\n"
         << "  \"executed_default_us\": " << tuned.default_us << ",\n"
         << "  \"executed_tuned_us\": " << tuned.tuned_us << ",\n"
         << "  \"executed_speedup\": " << tuned.default_us / tuned.tuned_us
         << "\n"
         << "}\n";
    std::ofstream file(tuner_json_path);
    file << json.str();
    std::cout << (file ? "json written: " : "json write FAILED: ")
              << tuner_json_path << "\n";
  }

  if (fuse_bench && !fuse_trace_path.empty()) {
    std::ofstream file(fuse_trace_path);
    file << fuse.trace;
    std::cout << (file ? "trace written: " : "trace write FAILED: ")
              << fuse_trace_path << "\n";
  }

  if (!baseline_path.empty()) {
    std::ifstream file(baseline_path);
    if (!file) {
      std::cerr << "baseline read FAILED: " << baseline_path << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    const std::string text = buffer.str();
    const double base_launch =
        json_number(text, "fast_launches_per_s", 0.0);
    const double base_eval = json_number(text, "batch_evals_per_s", 0.0);
    const double base_wall = json_number(text, "wall_s", 0.0);
    std::vector<std::string> failed;
    // Every failure names its metric, the measured value, the limit it
    // crossed and the rule behind the limit — a red CI line is actionable
    // without rerunning locally.
    auto gate = [&](const char* name, bool pass, double have, double want,
                    const char* rule) {
      std::cout << "gate " << name << ": " << (pass ? "ok" : "REGRESSION")
                << " (" << fmt_sci(have) << " vs limit " << fmt_sci(want)
                << "; rule: " << rule << ")\n";
      if (!pass) {
        failed.emplace_back(name);
      }
    };
    // >2x regression fails: throughputs may not halve, wall may not double.
    gate("launch_throughput", launch.fast_per_s >= base_launch / 2.0,
         launch.fast_per_s, base_launch / 2.0, ">= baseline/2");
    gate("eval_throughput", eval.batch_per_s >= base_eval / 2.0,
         eval.batch_per_s, base_eval / 2.0, ">= baseline/2");
    // The batch dispatch must never lose to per-particle virtual calls;
    // the interleaved best-of-k probe makes this stable enough to gate.
    gate("eval_speedup", eval_speedup >= 1.0, eval_speedup, 1.0,
         "batch >= virtual (>= 1.0x)");
    gate("table1_smoke_wall", table1_wall <= base_wall * 2.0, table1_wall,
         base_wall * 2.0, "<= 2x baseline");
    if (prof_overhead) {
      // Tighter bar than the 2x gates: with the profiler off the launch
      // path must stay within 5% of the baseline throughput, otherwise the
      // "disabled profiling is free" promise has been broken.
      gate("prof_off_launch_throughput",
           prof.off_per_s >= base_launch / 1.05, prof.off_per_s,
           base_launch / 1.05, ">= baseline/1.05 (prof off is free)");
    }
    if (graph_bench) {
      const double base_replay =
          json_number(text, "replay_launches_per_s", 0.0);
      gate("graph_replay_throughput", graph.replay_per_s >= base_replay / 2.0,
           graph.replay_per_s, base_replay / 2.0, ">= baseline/2");
      // Replay must keep a real steady-state edge over eager accounting —
      // the whole point of the graph layer (DESIGN.md §8).
      gate("graph_replay_speedup",
           graph.replay_per_s >= 1.5 * graph.eager_per_s, graph.replay_per_s,
           1.5 * graph.eager_per_s, ">= 1.5x eager");
    }
    if (fuse_bench) {
      const double base_fused =
          json_number(text, "fused_launches_per_s", 0.0);
      gate("fused_replay_throughput", fuse.fused_per_s >= base_fused / 2.0,
           fuse.fused_per_s, base_fused / 2.0, ">= baseline/2");
      // Fused replay must keep a real wall-throughput edge over plain
      // replay — the launch-dispatch saving fusion exists for (DESIGN.md
      // §9). 1.3x floor on an 8-deep fully fusible chain.
      gate("fused_replay_speedup",
           fuse.fused_per_s >= 1.3 * fuse.replay_per_s, fuse.fused_per_s,
           1.3 * fuse.replay_per_s, ">= 1.3x plain replay");
    }
    if (codegen_bench) {
      // The compiled tiers must keep a decisive edge over the interpreted
      // per-element loop — the reason the registry exists (DESIGN.md §11).
      // The committed BENCH_codegen.json shows >= 5x; the CI floor is 3x to
      // absorb shared-runner noise.
      gate("codegen_composed_speedup", codegen.composed_vs_interp() >= 3.0,
           codegen.composed_vs_interp(), 3.0, ">= 3x interpreted");
      gate("codegen_chunked_speedup", codegen.chunked_vs_interp() >= 2.0,
           codegen.chunked_vs_interp(), 2.0, ">= 2x interpreted");
      // Compiled fused replay of the real pipeline must beat the
      // interpreted fused replay it replaces. The eager comparison is
      // reported but not gated: the eager fast path is already an inlined
      // flat loop and the pipeline is dominated by work identical on both
      // sides, so its honest expectation is parity, which the interp gate
      // plus the chain gates above pin from both directions.
      gate("codegen_pipeline_vs_interp", codegen.pipeline_vs_interp() >= 1.08,
           codegen.pipeline_vs_interp(), 1.08,
           ">= 1.08x interpreted fused replay");
      const double base_composed =
          json_number(text, "composed_elem_ops_per_s", 0.0);
      gate("codegen_composed_throughput",
           codegen.composed_elems_per_s >= base_composed / 2.0,
           codegen.composed_elems_per_s, base_composed / 2.0,
           ">= baseline/2");
    }
    if (tuned_bench) {
      // Exact bar, not a 2x band: both totals are deterministic modeled
      // time, and the tuner's candidate slate always contains the default,
      // so an emitted table that slows any smoke group down is a bug.
      gate("tuned_throughput", tuned.tuned_us <= tuned.default_us,
           tuned.tuned_us, tuned.default_us, "tuned <= default (modeled)");
      gate("tuned_improved_groups", tuned.improved >= 3,
           static_cast<double>(tuned.improved), 3.0,
           ">= 3 improved smoke groups");
    }
    if (!failed.empty()) {
      std::cerr << "micro_engine: regression vs baseline " << baseline_path
                << " in:";
      for (const auto& name : failed) {
        std::cerr << " " << name;
      }
      std::cerr << "\n";
      return 1;
    }
  }
  return 0;
}
