// Micro-benchmarks (google-benchmark) for the performance-critical
// primitives: RNG throughput, parallel reductions, the three swarm-update
// kernel variants, and the caching allocator. These measure real wall time
// of the simulator on this machine — useful for regression-tracking the
// repository itself (the paper-facing numbers live in the table benches).

#include <benchmark/benchmark.h>

#include <vector>

#include "core/init.h"
#include "core/launch_policy.h"
#include "core/swarm_state.h"
#include "core/swarm_update.h"
#include "rng/philox.h"
#include "rng/xoshiro.h"
#include "vgpu/buffer.h"
#include "vgpu/device.h"
#include "vgpu/memory_pool.h"
#include "vgpu/reduce.h"

namespace {

using namespace fastpso;

void BM_PhiloxBlock(benchmark::State& state) {
  const rng::PhiloxStream stream(42, 0);
  std::uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stream.uniform4_at(i++));
  }
  state.SetItemsProcessed(state.iterations() * 4);
}
BENCHMARK(BM_PhiloxBlock);

void BM_Xoshiro(benchmark::State& state) {
  rng::Xoshiro256 rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_unit_float());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Xoshiro);

void BM_ReduceArgmin(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  vgpu::Device device;
  vgpu::DeviceArray<float> data(device, n);
  rng::Xoshiro256 rng(7);
  for (std::int64_t i = 0; i < n; ++i) {
    data[i] = rng.next_unit_float();
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(vgpu::reduce_argmin(device, data.data(), n));
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ReduceArgmin)->Arg(5000)->Arg(100000);

void BM_SwarmUpdate(benchmark::State& state) {
  const int n = 2000;
  const int d = static_cast<int>(state.range(0));
  const auto technique =
      static_cast<core::UpdateTechnique>(state.range(1));
  vgpu::Device device;
  core::LaunchPolicy policy(device.spec());
  core::SwarmState swarm(device, n, d);
  core::initialize_swarm(device, policy, swarm, 42, -5.12f, 5.12f, 5.12f);
  vgpu::DeviceArray<float> l_mat(device, swarm.elements());
  vgpu::DeviceArray<float> g_mat(device, swarm.elements());
  core::generate_weights(device, policy, swarm.elements(), 42, 0, l_mat,
                         g_mat);
  core::PsoParams params;
  const core::UpdateCoefficients coeff =
      core::make_coefficients(params, -5.12, 5.12);
  for (auto _ : state) {
    core::swarm_update(device, policy, swarm, l_mat, g_mat, coeff, technique);
  }
  state.SetItemsProcessed(state.iterations() * swarm.elements());
}
BENCHMARK(BM_SwarmUpdate)
    ->Args({50, 0})
    ->Args({50, 1})
    ->Args({50, 2})
    ->Args({200, 0})
    ->Args({200, 1})
    ->Args({200, 2});

void BM_MemoryPoolCached(benchmark::State& state) {
  vgpu::Device device;
  device.pool().set_enabled(true);
  constexpr std::size_t kBytes = 4u << 20;
  for (auto _ : state) {
    void* a = device.pool().alloc(kBytes);
    void* b = device.pool().alloc(kBytes);
    device.pool().free(a);
    device.pool().free(b);
  }
}
BENCHMARK(BM_MemoryPoolCached);

void BM_MemoryPoolRealloc(benchmark::State& state) {
  vgpu::Device device;
  device.pool().set_enabled(false);
  constexpr std::size_t kBytes = 4u << 20;
  for (auto _ : state) {
    void* a = device.pool().alloc(kBytes);
    void* b = device.pool().alloc(kBytes);
    device.pool().free(a);
    device.pool().free(b);
  }
}
BENCHMARK(BM_MemoryPoolRealloc);

}  // namespace

BENCHMARK_MAIN();
