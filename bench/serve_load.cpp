// serve_load: throughput/latency benchmark of the PSO-as-a-service
// scheduler (src/serve/) under a seeded open-loop workload of mixed job
// shapes — the serving analogue of the table benches.
//
// Reports graph-cache hit rate, batched launch reduction, modeled makespan
// vs serial seconds, and p50/p99 modeled job latency. All modeled numbers
// are deterministic for a given (jobs, seed, policy, streams, max-active)
// configuration; --smoke pins them for the golden CSV regression and gates
// the ISSUE acceptance thresholds (hit rate > 90%, batched launch
// reduction > 30% on a mixed 200-job workload).
//
//   ./serve_load [--jobs 1000] [--policy fifo|priority|fair]
//                [--streams 4] [--max-active 32] [--seed 42]
//                [--no-graphs] [--no-batching] [--fuse]
//                [--csv out.csv] [--json BENCH_serve.json]
//                [--trace serve_trace.json]
//                [--smoke]   (fixed 200-job config + acceptance gates)

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/trace_export.h"
#include "serve/scheduler.h"
#include "vgpu/device.h"

using namespace fastpso;
using namespace fastpso::benchkit;
using namespace fastpso::serve;

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D49B129649CA1Dull;
  return z ^ (z >> 31);
}

/// The mixed workload: jobs drawn from a fixed 8-shape table (varied
/// problems, swarm sizes, dims; one ring topology, one shared-memory
/// shape), with seeded budgets, priorities, tenants, and an open-loop
/// arrival ramp. Deterministic for a given (count, seed).
std::vector<JobSpec> build_workload(int count, std::uint64_t seed) {
  struct ShapeRow {
    const char* problem;
    int particles;
    int dim;
    core::UpdateTechnique technique;
    core::Topology topology;
  };
  static constexpr ShapeRow kShapes[] = {
      {"sphere", 64, 16, core::UpdateTechnique::kGlobalMemory,
       core::Topology::kGlobal},
      {"rastrigin", 32, 8, core::UpdateTechnique::kGlobalMemory,
       core::Topology::kGlobal},
      {"rosenbrock", 64, 8, core::UpdateTechnique::kGlobalMemory,
       core::Topology::kGlobal},
      {"ackley", 32, 8, core::UpdateTechnique::kGlobalMemory,
       core::Topology::kRing},
      {"griewank", 64, 16, core::UpdateTechnique::kSharedMemory,
       core::Topology::kGlobal},
      {"zakharov", 16, 4, core::UpdateTechnique::kGlobalMemory,
       core::Topology::kGlobal},
      {"levy", 32, 4, core::UpdateTechnique::kGlobalMemory,
       core::Topology::kGlobal},
      {"schwefel", 16, 8, core::UpdateTechnique::kGlobalMemory,
       core::Topology::kGlobal},
  };
  std::vector<JobSpec> specs;
  specs.reserve(static_cast<std::size_t>(count));
  std::uint64_t state = seed;
  for (int i = 0; i < count; ++i) {
    const ShapeRow& row = kShapes[splitmix64(state) % std::size(kShapes)];
    JobSpec spec;
    spec.problem = row.problem;
    spec.params.particles = row.particles;
    spec.params.dim = row.dim;
    spec.params.technique = row.technique;
    spec.params.topology = row.topology;
    spec.params.max_iter = 5 + static_cast<int>(splitmix64(state) % 20);
    spec.params.seed = splitmix64(state);
    spec.priority = static_cast<int>(splitmix64(state) % 3);
    spec.tenant = static_cast<int>(splitmix64(state) % 4);
    spec.arrival_seconds = static_cast<double>(i) * 2e-6;
    specs.push_back(spec);
  }
  return specs;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  std::sort(sorted.begin(), sorted.end());
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);

  SchedulerOptions options;
  options.policy = policy_from_string(args.get_string("policy", "fifo"));
  // Fallback is the FASTPSO_SERVE_STREAMS-aware default, so the env knob
  // works here too; --streams still wins when given.
  options.streams =
      static_cast<int>(args.get_int("streams", default_stream_count()));
  options.max_active = static_cast<int>(args.get_int("max-active", 32));
  options.use_graphs = !args.get_bool("no-graphs", false);
  options.batching = !args.get_bool("no-batching", false);
  options.fuse = args.get_bool("fuse", false);
  int jobs = static_cast<int>(args.get_int("jobs", 1000));
  std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  if (smoke) {
    // The ISSUE acceptance workload: mixed 200-job load, fixed seed.
    jobs = 200;
    seed = 42;
    options.policy = Policy::kFifo;
    options.streams = 4;
    options.max_active = 32;
    options.use_graphs = true;
    options.batching = true;
    options.fuse = false;
  }

  const auto specs = build_workload(jobs, seed);

  Stopwatch wall;
  vgpu::Device device;
  Scheduler scheduler(device, options);
  for (const JobSpec& spec : specs) {
    scheduler.submit(spec);
  }
  scheduler.run();
  const double wall_s = wall.elapsed_s();

  const ServeStats stats = scheduler.stats();
  std::vector<double> latencies;
  latencies.reserve(scheduler.outcomes().size());
  for (const JobOutcome& out : scheduler.outcomes()) {
    latencies.push_back(out.latency_seconds());
  }
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);

  TextTable table("serve_load: PSO-as-a-service over one vgpu device");
  table.set_header({"metric", "value"});
  table.add_row({"jobs", std::to_string(jobs)});
  table.add_row({"policy", to_string(options.policy)});
  table.add_row({"streams", std::to_string(options.streams)});
  table.add_row({"max active", std::to_string(options.max_active)});
  table.add_row({"iterations", std::to_string(stats.iterations)});
  table.add_row({"graph-cache hit rate",
                 fmt_fixed(stats.hit_rate() * 100.0, 1) + "%"});
  table.add_row({"graphs captured / poisoned",
                 std::to_string(stats.graphs_captured) + " / " +
                     std::to_string(stats.graphs_poisoned)});
  table.add_row({"launches issued", std::to_string(stats.launches_issued)});
  table.add_row({"launches after batching",
                 std::to_string(stats.launches_batched)});
  table.add_row({"batched launch reduction",
                 fmt_fixed(stats.batch_launch_reduction() * 100.0, 1) +
                     "%"});
  table.add_row({"modeled makespan (s)",
                 fmt_fixed(stats.makespan_seconds, 6)});
  table.add_row({"modeled serial (s)", fmt_fixed(stats.serial_seconds, 6)});
  table.add_row({"graph credit saved (s)",
                 fmt_fixed(stats.graph_modeled_seconds_saved, 6)});
  table.add_row({"batch credit saved (s)",
                 fmt_fixed(stats.batch_modeled_seconds_saved, 6)});
  table.add_row({"serial if batched (s)",
                 fmt_fixed(stats.batched_modeled_seconds(), 6)});
  table.add_row({"serial if graphed (s)",
                 fmt_fixed(stats.graph_modeled_seconds(), 6)});
  table.add_row({"p50 modeled latency (s)", fmt_fixed(p50, 6)});
  table.add_row({"p99 modeled latency (s)", fmt_fixed(p99, 6)});
  table.add_row({"wall (s)", fmt_fixed(wall_s, 3)});
  table.add_note("credits are reported-only, in the style of "
                 "Result::graph_modeled_seconds(); jobs stay bitwise equal "
                 "to solo runs (see tests/test_serve.cpp)");
  table.print(std::cout);

  CsvWriter csv({"jobs", "policy", "streams", "max_active", "iterations",
                 "cache_lookups", "cache_hits", "hit_rate",
                 "graphs_captured", "launches_issued", "launches_batched",
                 "batch_reduction", "batch_rounds", "makespan_s",
                 "serial_s", "graph_saved_s", "batch_saved_s",
                 "fusion_saved_s", "p50_latency_s", "p99_latency_s",
                 "wall_s"});
  csv.add_row({std::to_string(jobs), to_string(options.policy),
               std::to_string(options.streams),
               std::to_string(options.max_active),
               std::to_string(stats.iterations),
               std::to_string(stats.cache_lookups),
               std::to_string(stats.cache_hits),
               fmt_fixed(stats.hit_rate(), 4),
               std::to_string(stats.graphs_captured),
               std::to_string(stats.launches_issued),
               std::to_string(stats.launches_batched),
               fmt_fixed(stats.batch_launch_reduction(), 4),
               std::to_string(stats.batch_rounds),
               fmt_fixed(stats.makespan_seconds, 6),
               fmt_fixed(stats.serial_seconds, 6),
               fmt_fixed(stats.graph_modeled_seconds_saved, 6),
               fmt_fixed(stats.batch_modeled_seconds_saved, 6),
               fmt_fixed(stats.fusion_modeled_seconds_saved, 6),
               fmt_fixed(p50, 6), fmt_fixed(p99, 6),
               smoke ? "0.000" : fmt_fixed(wall_s, 3)});
  maybe_write_csv(csv, args.get_string("csv", ""));

  const std::string trace_path = args.get_string("trace", "");
  if (!trace_path.empty()) {
    if (write_chrome_trace(trace_path, scheduler.trace())) {
      std::cout << "trace written: " << trace_path << "\n";
    } else {
      std::cout << "trace write FAILED: " << trace_path << "\n";
    }
  }

  const std::string json_path = args.get_string("json", "");
  if (!json_path.empty()) {
    std::ostringstream json;
    json.setf(std::ios::fixed);
    json.precision(6);
    json << "{\n"
         << "  \"schema\": \"fastpso-bench-serve-v1\",\n"
         << "  \"jobs\": " << jobs << ",\n"
         << "  \"policy\": \"" << to_string(options.policy) << "\",\n"
         << "  \"streams\": " << options.streams << ",\n"
         << "  \"max_active\": " << options.max_active << ",\n"
         << "  \"iterations\": " << stats.iterations << ",\n"
         << "  \"cache_hit_rate\": " << stats.hit_rate() << ",\n"
         << "  \"graphs_captured\": " << stats.graphs_captured << ",\n"
         << "  \"graphs_poisoned\": " << stats.graphs_poisoned << ",\n"
         << "  \"launches_issued\": " << stats.launches_issued << ",\n"
         << "  \"launches_batched\": " << stats.launches_batched << ",\n"
         << "  \"batch_launch_reduction\": "
         << stats.batch_launch_reduction() << ",\n"
         << "  \"batch_rounds\": " << stats.batch_rounds << ",\n"
         << "  \"makespan_seconds\": " << stats.makespan_seconds << ",\n"
         << "  \"serial_seconds\": " << stats.serial_seconds << ",\n"
         << "  \"graph_modeled_seconds_saved\": "
         << stats.graph_modeled_seconds_saved << ",\n"
         << "  \"batch_modeled_seconds_saved\": "
         << stats.batch_modeled_seconds_saved << ",\n"
         << "  \"fusion_modeled_seconds_saved\": "
         << stats.fusion_modeled_seconds_saved << ",\n"
         << "  \"batched_modeled_seconds\": "
         << stats.batched_modeled_seconds() << ",\n"
         << "  \"graph_modeled_seconds\": " << stats.graph_modeled_seconds()
         << ",\n"
         << "  \"p50_latency_seconds\": " << p50 << ",\n"
         << "  \"p99_latency_seconds\": " << p99 << ",\n"
         << "  \"wall_seconds\": " << wall_s << "\n"
         << "}\n";
    std::ofstream file(json_path);
    file << json.str();
    std::cout << (file ? "json written: " : "json write FAILED: ")
              << json_path << "\n";
  }

  if (smoke) {
    // ISSUE acceptance gates for the mixed 200-job workload.
    bool ok = true;
    const auto gate = [&ok](const std::string& name, bool pass) {
      std::cout << "gate " << name << ": " << (pass ? "ok" : "REGRESSION")
                << "\n";
      ok = ok && pass;
    };
    gate("cache_hit_rate > 0.9", stats.hit_rate() > 0.9);
    gate("batch_launch_reduction > 0.3",
         stats.batch_launch_reduction() > 0.3);
    gate("all_jobs_completed",
         stats.jobs_completed == static_cast<std::uint64_t>(jobs));
    gate("no_poisoned_graphs", stats.graphs_poisoned == 0);
    if (!ok) {
      return 1;
    }
  }
  return 0;
}
