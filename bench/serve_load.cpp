// serve_load: throughput/latency benchmark of the PSO-as-a-service
// scheduler (src/serve/) under a seeded open-loop workload of mixed job
// shapes — the serving analogue of the table benches.
//
// Reports graph-cache hit rate, batched launch reduction, modeled makespan
// vs serial seconds, and p50/p99 modeled job latency. All modeled numbers
// are deterministic for a given (jobs, seed, policy, streams, max-active)
// configuration; --smoke pins them for the golden CSV regression and gates
// the ISSUE acceptance thresholds (hit rate > 90%, batched launch
// reduction > 30% on a mixed 200-job workload).
//
//   ./serve_load [--jobs 1000] [--policy fifo|priority|fair]
//                [--streams 4] [--max-active 32] [--seed 42]
//                [--no-graphs] [--no-batching] [--fuse] [--tiny]
//                [--csv out.csv] [--json BENCH_serve.json]
//                [--trace serve_trace.json]
//                [--smoke]   (fixed 200-job config + acceptance gates)
//                [--pack]    (executed-packing comparison: the tiny-job
//                             workload runs unpacked AND packed, reporting
//                             real launch counts and jobs/s on both the
//                             modeled timeline and the host wall clock;
//                             with --smoke, gates packed >= 1.3x unpacked
//                             jobs/s and >= 30% real-launch reduction)

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "common/stopwatch.h"
#include "common/trace_export.h"
#include "serve/scheduler.h"
#include "vgpu/device.h"

using namespace fastpso;
using namespace fastpso::benchkit;
using namespace fastpso::serve;

namespace {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D49B129649CA1Dull;
  return z ^ (z >> 31);
}

struct ShapeRow {
  const char* problem;
  int particles;
  int dim;
  core::UpdateTechnique technique;
  core::Topology topology;
};

/// The tiny-job table: the cross-job packing workload (--tiny, and the
/// --pack smoke gate). Swarms of 8-16 particles in 2-8 dims — shapes where
/// per-iteration fixed costs dwarf the kernel bodies, i.e. exactly the
/// regime the Warp-Level Parallelism packing scheme targets. One ring
/// shape keeps the neighborhood kernels in the packed differential.
constexpr ShapeRow kTinyShapes[] = {
    {"sphere", 8, 2, core::UpdateTechnique::kGlobalMemory,
     core::Topology::kGlobal},
    {"rastrigin", 8, 4, core::UpdateTechnique::kGlobalMemory,
     core::Topology::kGlobal},
    {"rosenbrock", 16, 2, core::UpdateTechnique::kGlobalMemory,
     core::Topology::kGlobal},
    {"zakharov", 16, 4, core::UpdateTechnique::kGlobalMemory,
     core::Topology::kGlobal},
    {"ackley", 16, 2, core::UpdateTechnique::kGlobalMemory,
     core::Topology::kRing},
    {"schwefel", 8, 8, core::UpdateTechnique::kGlobalMemory,
     core::Topology::kGlobal},
};

/// The mixed workload: jobs drawn from a fixed 8-shape table (varied
/// problems, swarm sizes, dims; one ring topology, one shared-memory
/// shape), with seeded budgets, priorities, tenants, and an open-loop
/// arrival ramp. Deterministic for a given (count, seed).
std::vector<JobSpec> build_workload(int count, std::uint64_t seed,
                                    bool tiny) {
  static constexpr ShapeRow kShapes[] = {
      {"sphere", 64, 16, core::UpdateTechnique::kGlobalMemory,
       core::Topology::kGlobal},
      {"rastrigin", 32, 8, core::UpdateTechnique::kGlobalMemory,
       core::Topology::kGlobal},
      {"rosenbrock", 64, 8, core::UpdateTechnique::kGlobalMemory,
       core::Topology::kGlobal},
      {"ackley", 32, 8, core::UpdateTechnique::kGlobalMemory,
       core::Topology::kRing},
      {"griewank", 64, 16, core::UpdateTechnique::kSharedMemory,
       core::Topology::kGlobal},
      {"zakharov", 16, 4, core::UpdateTechnique::kGlobalMemory,
       core::Topology::kGlobal},
      {"levy", 32, 4, core::UpdateTechnique::kGlobalMemory,
       core::Topology::kGlobal},
      {"schwefel", 16, 8, core::UpdateTechnique::kGlobalMemory,
       core::Topology::kGlobal},
  };
  std::vector<JobSpec> specs;
  specs.reserve(static_cast<std::size_t>(count));
  std::uint64_t state = seed;
  for (int i = 0; i < count; ++i) {
    const ShapeRow& row =
        tiny ? kTinyShapes[splitmix64(state) % std::size(kTinyShapes)]
             : kShapes[splitmix64(state) % std::size(kShapes)];
    JobSpec spec;
    spec.problem = row.problem;
    spec.params.particles = row.particles;
    spec.params.dim = row.dim;
    spec.params.technique = row.technique;
    spec.params.topology = row.topology;
    spec.params.max_iter = 5 + static_cast<int>(splitmix64(state) % 20);
    spec.params.seed = splitmix64(state);
    spec.priority = static_cast<int>(splitmix64(state) % 3);
    spec.tenant = static_cast<int>(splitmix64(state) % 4);
    spec.arrival_seconds = static_cast<double>(i) * 2e-6;
    specs.push_back(spec);
  }
  return specs;
}

double percentile(std::vector<double> sorted, double p) {
  if (sorted.empty()) {
    return 0.0;
  }
  std::sort(sorted.begin(), sorted.end());
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(index, sorted.size() - 1)];
}

/// One serve run for the --pack comparison: same workload, pack toggled.
struct PackRun {
  ServeStats stats;
  double wall_s = 0;
  /// Jobs per second on the deterministic modeled timeline (the gated
  /// number — wall-clock jobs/s is reported alongside but machine-bound).
  [[nodiscard]] double jobs_per_modeled_s() const {
    return stats.makespan_seconds > 0
               ? static_cast<double>(stats.jobs_completed) /
                     stats.makespan_seconds
               : 0.0;
  }
  [[nodiscard]] double jobs_per_wall_s() const {
    return wall_s > 0
               ? static_cast<double>(stats.jobs_completed) / wall_s
               : 0.0;
  }
};

PackRun run_workload(const std::vector<JobSpec>& specs,
                     const SchedulerOptions& options) {
  PackRun run;
  Stopwatch wall;
  vgpu::Device device;
  Scheduler scheduler(device, options);
  for (const JobSpec& spec : specs) {
    scheduler.submit(spec);
  }
  scheduler.run();
  run.wall_s = wall.elapsed_s();
  run.stats = scheduler.stats();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const bool smoke = args.get_bool("smoke", false);

  SchedulerOptions options;
  options.policy = policy_from_string(args.get_string("policy", "fifo"));
  // Fallback is the FASTPSO_SERVE_STREAMS-aware default, so the env knob
  // works here too; --streams still wins when given.
  options.streams =
      static_cast<int>(args.get_int("streams", default_stream_count()));
  options.max_active = static_cast<int>(args.get_int("max-active", 32));
  options.use_graphs = !args.get_bool("no-graphs", false);
  options.batching = !args.get_bool("no-batching", false);
  options.fuse = args.get_bool("fuse", false);
  // options.pack already defaulted from FASTPSO_SERVE_PACK; --smoke pins
  // it off below so the golden CSV is env-stable. --pack runs the
  // executed-packing comparison on top of the primary run.
  const bool pack_mode = args.get_bool("pack", false);
  int jobs = static_cast<int>(args.get_int("jobs", 1000));
  std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  bool tiny = args.get_bool("tiny", false);
  if (smoke) {
    // The ISSUE acceptance workload: mixed 200-job load, fixed seed.
    jobs = 200;
    seed = 42;
    options.policy = Policy::kFifo;
    options.streams = 4;
    options.max_active = 32;
    options.use_graphs = true;
    options.batching = true;
    options.fuse = false;
    options.pack = false;  // env-stable golden; --pack compares below
  }

  const auto specs = build_workload(jobs, seed, tiny);

  Stopwatch wall;
  vgpu::Device device;
  Scheduler scheduler(device, options);
  for (const JobSpec& spec : specs) {
    scheduler.submit(spec);
  }
  scheduler.run();
  const double wall_s = wall.elapsed_s();

  const ServeStats stats = scheduler.stats();
  std::vector<double> latencies;
  latencies.reserve(scheduler.outcomes().size());
  for (const JobOutcome& out : scheduler.outcomes()) {
    latencies.push_back(out.latency_seconds());
  }
  const double p50 = percentile(latencies, 0.50);
  const double p99 = percentile(latencies, 0.99);

  TextTable table("serve_load: PSO-as-a-service over one vgpu device");
  table.set_header({"metric", "value"});
  table.add_row({"jobs", std::to_string(jobs)});
  table.add_row({"policy", to_string(options.policy)});
  table.add_row({"streams", std::to_string(options.streams)});
  table.add_row({"max active", std::to_string(options.max_active)});
  table.add_row({"iterations", std::to_string(stats.iterations)});
  table.add_row({"graph-cache hit rate",
                 fmt_fixed(stats.hit_rate() * 100.0, 1) + "%"});
  table.add_row({"graphs captured / poisoned",
                 std::to_string(stats.graphs_captured) + " / " +
                     std::to_string(stats.graphs_poisoned)});
  table.add_row({"launches issued", std::to_string(stats.launches_issued)});
  table.add_row({"launches after batching",
                 std::to_string(stats.launches_batched)});
  table.add_row({"batched launch reduction",
                 fmt_fixed(stats.batch_launch_reduction() * 100.0, 1) +
                     "%"});
  table.add_row({"launches real (executed)",
                 std::to_string(stats.launches_real)});
  table.add_row({"real launch reduction",
                 fmt_fixed(stats.real_launch_reduction() * 100.0, 1) + "%"});
  table.add_row({"modeled makespan (s)",
                 fmt_fixed(stats.makespan_seconds, 6)});
  table.add_row({"modeled serial (s)", fmt_fixed(stats.serial_seconds, 6)});
  table.add_row({"graph credit saved (s)",
                 fmt_fixed(stats.graph_modeled_seconds_saved, 6)});
  table.add_row({"batch credit saved (s)",
                 fmt_fixed(stats.batch_modeled_seconds_saved, 6)});
  table.add_row({"serial if batched (s)",
                 fmt_fixed(stats.batched_modeled_seconds(), 6)});
  table.add_row({"serial if graphed (s)",
                 fmt_fixed(stats.graph_modeled_seconds(), 6)});
  table.add_row({"p50 modeled latency (s)", fmt_fixed(p50, 6)});
  table.add_row({"p99 modeled latency (s)", fmt_fixed(p99, 6)});
  table.add_row({"wall (s)", fmt_fixed(wall_s, 3)});
  table.add_note("credits are reported-only, in the style of "
                 "Result::graph_modeled_seconds(); jobs stay bitwise equal "
                 "to solo runs (see tests/test_serve.cpp)");
  table.print(std::cout);

  // --pack: executed-packing comparison. The tiny-job workload (the regime
  // packing targets) runs twice — unpacked and packed — on fresh devices;
  // jobs/s on the modeled timeline is the deterministic, gated number, and
  // wall-clock jobs/s rides along for the host-overhead view.
  PackRun unpacked, packed;
  int pack_jobs = 0;
  if (pack_mode) {
    pack_jobs = smoke ? 800 : jobs;
    const int pack_active = smoke ? 128 : options.max_active;
    const std::uint64_t pack_seed = smoke ? 42 : seed;
    const auto pack_specs = build_workload(pack_jobs, pack_seed,
                                           /*tiny=*/true);
    SchedulerOptions pack_options = options;
    if (smoke) {
      pack_options.policy = Policy::kFifo;
      pack_options.streams = 4;
    }
    pack_options.max_active = pack_active;
    pack_options.use_graphs = true;
    pack_options.batching = true;
    pack_options.pack = false;
    unpacked = run_workload(pack_specs, pack_options);
    pack_options.pack = true;
    packed = run_workload(pack_specs, pack_options);

    TextTable pt("serve_load --pack: executed cross-job packing vs "
                 "unpacked (tiny-job workload)");
    pt.set_header({"metric", "unpacked", "packed"});
    pt.add_row({"jobs", std::to_string(pack_jobs),
                std::to_string(pack_jobs)});
    pt.add_row({"launches issued",
                std::to_string(unpacked.stats.launches_issued),
                std::to_string(packed.stats.launches_issued)});
    pt.add_row({"launches real (executed)",
                std::to_string(unpacked.stats.launches_real),
                std::to_string(packed.stats.launches_real)});
    pt.add_row({"real launch reduction",
                fmt_fixed(unpacked.stats.real_launch_reduction() * 100.0, 1)
                    + "%",
                fmt_fixed(packed.stats.real_launch_reduction() * 100.0, 1) +
                    "%"});
    pt.add_row({"packed dispatches", "0",
                std::to_string(packed.stats.packed_dispatches)});
    pt.add_row({"warp-per-job dispatches", "0",
                std::to_string(packed.stats.packed_warp_dispatches)});
    pt.add_row({"modeled makespan (s)",
                fmt_fixed(unpacked.stats.makespan_seconds, 6),
                fmt_fixed(packed.stats.makespan_seconds, 6)});
    pt.add_row({"jobs/s (modeled)",
                fmt_fixed(unpacked.jobs_per_modeled_s(), 1),
                fmt_fixed(packed.jobs_per_modeled_s(), 1)});
    pt.add_row({"jobs/s (wall)", fmt_fixed(unpacked.jobs_per_wall_s(), 1),
                fmt_fixed(packed.jobs_per_wall_s(), 1)});
    pt.add_row({"batch credit saved (s)",
                fmt_fixed(unpacked.stats.batch_modeled_seconds_saved, 6) +
                    " (priced)",
                fmt_fixed(packed.stats.batch_modeled_seconds_saved, 6) +
                    " (executed)"});
    pt.add_note("packed speedup (modeled jobs/s): " +
                fmt_fixed(packed.jobs_per_modeled_s() /
                              std::max(unpacked.jobs_per_modeled_s(), 1e-12),
                          3) +
                "x — the executed credit lands on the shared timeline; "
                "per-job results stay bitwise-equal-to-solo");
    pt.print(std::cout);
  }

  CsvWriter csv({"jobs", "policy", "streams", "max_active", "iterations",
                 "cache_lookups", "cache_hits", "hit_rate",
                 "graphs_captured", "launches_issued", "launches_batched",
                 "batch_reduction", "batch_rounds", "launches_real",
                 "real_reduction", "makespan_s",
                 "serial_s", "graph_saved_s", "batch_saved_s",
                 "fusion_saved_s", "p50_latency_s", "p99_latency_s",
                 "wall_s"});
  csv.add_row({std::to_string(jobs), to_string(options.policy),
               std::to_string(options.streams),
               std::to_string(options.max_active),
               std::to_string(stats.iterations),
               std::to_string(stats.cache_lookups),
               std::to_string(stats.cache_hits),
               fmt_fixed(stats.hit_rate(), 4),
               std::to_string(stats.graphs_captured),
               std::to_string(stats.launches_issued),
               std::to_string(stats.launches_batched),
               fmt_fixed(stats.batch_launch_reduction(), 4),
               std::to_string(stats.batch_rounds),
               std::to_string(stats.launches_real),
               fmt_fixed(stats.real_launch_reduction(), 4),
               fmt_fixed(stats.makespan_seconds, 6),
               fmt_fixed(stats.serial_seconds, 6),
               fmt_fixed(stats.graph_modeled_seconds_saved, 6),
               fmt_fixed(stats.batch_modeled_seconds_saved, 6),
               fmt_fixed(stats.fusion_modeled_seconds_saved, 6),
               fmt_fixed(p50, 6), fmt_fixed(p99, 6),
               smoke ? "0.000" : fmt_fixed(wall_s, 3)});
  maybe_write_csv(csv, args.get_string("csv", ""));

  const std::string trace_path = args.get_string("trace", "");
  if (!trace_path.empty()) {
    if (write_chrome_trace(trace_path, scheduler.trace())) {
      std::cout << "trace written: " << trace_path << "\n";
    } else {
      std::cout << "trace write FAILED: " << trace_path << "\n";
    }
  }

  const std::string json_path = args.get_string("json", "");
  if (!json_path.empty()) {
    std::ostringstream json;
    json.setf(std::ios::fixed);
    json.precision(6);
    json << "{\n"
         << "  \"schema\": \"fastpso-bench-serve-v2\",\n"
         << "  \"jobs\": " << jobs << ",\n"
         << "  \"policy\": \"" << to_string(options.policy) << "\",\n"
         << "  \"streams\": " << options.streams << ",\n"
         << "  \"max_active\": " << options.max_active << ",\n"
         << "  \"iterations\": " << stats.iterations << ",\n"
         << "  \"cache_hit_rate\": " << stats.hit_rate() << ",\n"
         << "  \"graphs_captured\": " << stats.graphs_captured << ",\n"
         << "  \"graphs_poisoned\": " << stats.graphs_poisoned << ",\n"
         << "  \"launches_issued\": " << stats.launches_issued << ",\n"
         << "  \"launches_batched\": " << stats.launches_batched << ",\n"
         << "  \"batch_launch_reduction\": "
         << stats.batch_launch_reduction() << ",\n"
         << "  \"batch_rounds\": " << stats.batch_rounds << ",\n"
         << "  \"makespan_seconds\": " << stats.makespan_seconds << ",\n"
         << "  \"serial_seconds\": " << stats.serial_seconds << ",\n"
         << "  \"graph_modeled_seconds_saved\": "
         << stats.graph_modeled_seconds_saved << ",\n"
         << "  \"batch_modeled_seconds_saved\": "
         << stats.batch_modeled_seconds_saved << ",\n"
         << "  \"fusion_modeled_seconds_saved\": "
         << stats.fusion_modeled_seconds_saved << ",\n"
         << "  \"batched_modeled_seconds\": "
         << stats.batched_modeled_seconds() << ",\n"
         << "  \"graph_modeled_seconds\": " << stats.graph_modeled_seconds()
         << ",\n"
         << "  \"p50_latency_seconds\": " << p50 << ",\n"
         << "  \"p99_latency_seconds\": " << p99 << ",\n"
         << "  \"wall_seconds\": " << wall_s;
    if (pack_mode) {
      // Executed-packing comparison block (the --pack tiny-job workload).
      json << ",\n"
           << "  \"packed_jobs\": " << pack_jobs << ",\n"
           << "  \"unpacked_jobs_per_second\": "
           << unpacked.jobs_per_modeled_s() << ",\n"
           << "  \"packed_jobs_per_second\": "
           << packed.jobs_per_modeled_s() << ",\n"
           << "  \"packed_speedup\": "
           << packed.jobs_per_modeled_s() /
                  std::max(unpacked.jobs_per_modeled_s(), 1e-12)
           << ",\n"
           << "  \"packed_launches_issued\": "
           << packed.stats.launches_issued << ",\n"
           << "  \"packed_launches_real\": " << packed.stats.launches_real
           << ",\n"
           << "  \"packed_real_launch_reduction\": "
           << packed.stats.real_launch_reduction() << ",\n"
           << "  \"packed_dispatches\": " << packed.stats.packed_dispatches
           << ",\n"
           << "  \"packed_warp_dispatches\": "
           << packed.stats.packed_warp_dispatches << ",\n"
           << "  \"packed_executed_seconds_saved\": "
           << packed.stats.batch_modeled_seconds_saved << ",\n"
           << "  \"packed_wall_seconds\": " << packed.wall_s << ",\n"
           << "  \"unpacked_wall_seconds\": " << unpacked.wall_s;
    }
    json << "\n}\n";
    std::ofstream file(json_path);
    file << json.str();
    std::cout << (file ? "json written: " : "json write FAILED: ")
              << json_path << "\n";
  }

  if (smoke) {
    // ISSUE acceptance gates for the mixed 200-job workload.
    bool ok = true;
    const auto gate = [&ok](const std::string& name, bool pass) {
      std::cout << "gate " << name << ": " << (pass ? "ok" : "REGRESSION")
                << "\n";
      ok = ok && pass;
    };
    gate("cache_hit_rate > 0.9", stats.hit_rate() > 0.9);
    gate("batch_launch_reduction > 0.3",
         stats.batch_launch_reduction() > 0.3);
    gate("all_jobs_completed",
         stats.jobs_completed == static_cast<std::uint64_t>(jobs));
    gate("no_poisoned_graphs", stats.graphs_poisoned == 0);
    if (pack_mode) {
      // Executed-packing acceptance gates (this PR): packed beats unpacked
      // on modeled jobs/s by >= 1.3x and actually-executed launches drop by
      // >= 30% on the tiny-job workload.
      const double speedup =
          packed.jobs_per_modeled_s() /
          std::max(unpacked.jobs_per_modeled_s(), 1e-12);
      gate("packed_speedup >= 1.3", speedup >= 1.3);
      gate("packed_real_launch_reduction >= 0.3",
           packed.stats.real_launch_reduction() >= 0.3);
      gate("packed_all_jobs_completed",
           packed.stats.jobs_completed ==
               static_cast<std::uint64_t>(pack_jobs));
      gate("packed_dispatches > 0", packed.stats.packed_dispatches > 0);
    }
    if (!ok) {
      return 1;
    }
  }
  return 0;
}
