// Table 1: overall comparison of FastPSO against the other six
// implementations on the four evaluation problems (paper Section 4.2).
//
// Reports modeled elapsed seconds (virtual paper machine, the
// paper-comparable number), the speedup of fastpso over each baseline, and
// the real wall seconds of the executed run for transparency.
//
//   ./table1_overall [--executed-iters 20] [--full] [--csv out.csv]
//                    [--smoke]   (tiny fixed config for golden regression)

#include "bench_common.h"

using namespace fastpso;
using namespace fastpso::benchkit;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  BenchOptions opt = BenchOptions::parse(args, /*default_executed=*/20);
  if (opt.smoke) {
    opt.particles = 64;
    opt.dim = 8;
    opt.iters = 50;
    opt.executed_iters = 5;
  }

  const std::vector<std::string> problems = {"sphere", "griewank", "easom",
                                             "threadconf"};
  const auto impls = all_impls();

  TextTable table("Table 1: overall comparison — modeled elapsed time (sec)");
  std::vector<std::string> header = {"problem"};
  for (Impl impl : impls) {
    header.push_back(to_string(impl));
  }
  for (Impl impl : impls) {
    if (impl != Impl::kFastPso) {
      header.push_back(std::string("spd:") + to_string(impl));
    }
  }
  table.set_header(header);

  CsvWriter csv({"problem", "impl", "modeled_s", "wall_s", "iterations"});

  for (const auto& problem : problems) {
    std::vector<double> modeled(impls.size());
    double fastpso_s = 0;
    for (std::size_t k = 0; k < impls.size(); ++k) {
      RunSpec spec;
      spec.impl = impls[k];
      spec.problem = problem;
      spec.particles = opt.particles;
      spec.dim = opt.dim;
      spec.iters = opt.iters;
      spec.executed_iters = opt.executed_iters;
      spec.seed = opt.seed;
      const RunOutcome outcome = run_spec(spec);
      modeled[k] = outcome.modeled_seconds_full;
      if (impls[k] == Impl::kFastPso) {
        fastpso_s = outcome.modeled_seconds_full;
      }
      csv.add_row({problem, to_string(impls[k]),
                   fmt_fixed(outcome.modeled_seconds_full, 4),
                   opt.smoke ? "0.000" : fmt_fixed(outcome.wall_seconds, 3),
                   std::to_string(outcome.result.iterations)});
    }
    std::vector<std::string> row = {problem};
    for (double m : modeled) {
      row.push_back(fmt_fixed(m, 2));
    }
    for (std::size_t k = 0; k < impls.size(); ++k) {
      if (impls[k] != Impl::kFastPso) {
        row.push_back(fmt_speedup(modeled[k] / fastpso_s));
      }
    }
    table.add_row(row);
  }

  table.add_note("modeled on the paper machine (V100 + 2x E5-2640v4); "
                 "executed " + std::to_string(opt.executed_iters) +
                 " iters/cell, scaled to " + std::to_string(opt.iters));
  table.add_note("paper: fastpso ~0.47-0.87s; gpu-pso 5-7x slower; CPU "
                 "libraries ~100-260x slower");
  table.print(std::cout);
  maybe_write_csv(csv, opt.csv);
  return 0;
}
