// Table 2: errors to the optimal values (paper Section 4.2).
//
// Every implementation genuinely optimizes, so these errors are real
// optimization outcomes, not modeled numbers. The paper's qualitative
// result to reproduce: the velocity-clamped implementations (fastpso family
// and both GPU baselines) converge to small errors, while pyswarms and
// scikit-opt — run at the paper's omega=0.9, c1=c2=2 without velocity
// clamping — diverge and land orders of magnitude away.
//
// Default scale is reduced (n=1000, d=50, 600 iterations, unscaled) so the
// bench finishes quickly; pass --particles/--dim/--iters for paper scale.
//
//   ./table2_errors [--particles 1000] [--dim 50] [--iters 600]
//                   [--smoke]   (tiny fixed config for golden regression)

#include "bench_common.h"

using namespace fastpso;
using namespace fastpso::benchkit;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  BenchOptions opt = BenchOptions::parse(args, /*default_executed=*/0);
  // Table 2 runs to convergence: full (reduced-scale) iterations, no scaling.
  opt.particles = static_cast<int>(args.get_int("particles", 1000));
  opt.dim = static_cast<int>(args.get_int("dim", 50));
  opt.iters = static_cast<int>(args.get_int("iters", 600));
  if (opt.smoke) {
    opt.particles = 100;
    opt.dim = 10;
    opt.iters = 60;
  }
  opt.executed_iters = opt.iters;

  const std::vector<std::string> problems = {"sphere", "griewank", "easom"};
  const auto impls = all_impls();

  TextTable table("Table 2: errors to the optimal values");
  std::vector<std::string> header = {"implementation"};
  for (const auto& problem : problems) {
    header.push_back(problem);
  }
  table.set_header(header);

  CsvWriter csv({"impl", "problem", "error", "gbest"});

  for (Impl impl : impls) {
    std::vector<std::string> row = {to_string(impl)};
    for (const auto& problem : problems) {
      RunSpec spec;
      spec.impl = impl;
      spec.problem = problem;
      spec.particles = opt.particles;
      spec.dim = opt.dim;
      spec.iters = opt.iters;
      spec.executed_iters = opt.iters;
      spec.seed = opt.seed;
      const RunOutcome outcome = run_spec(spec);
      row.push_back(fmt_fixed(outcome.error, 2));
      csv.add_row({to_string(impl), problem, fmt_sci(outcome.error, 4),
                   fmt_sci(outcome.result.gbest_value, 4)});
    }
    table.add_row(row);
  }

  table.add_note("n=" + std::to_string(opt.particles) +
                 " d=" + std::to_string(opt.dim) +
                 " iters=" + std::to_string(opt.iters) +
                 " (paper: n=5000 d=200 iters=2000)");
  table.add_note("paper shape: clamped impls O(10^0..10^1) on Sphere, "
                 "python libraries O(10^3); all 0.00 on Easom");
  table.print(std::cout);
  maybe_write_csv(csv, opt.csv);
  return 0;
}
