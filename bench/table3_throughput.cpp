// Table 3: FLOPs and memory bandwidth of the GPU implementations (paper
// Section 4.2).
//
// dram_read_throughput = fetched read bytes / modeled seconds — the same
// quantity nvprof reports: gpu-pso's uncoalesced layout fetches more bytes
// per useful byte, and its low-occupancy launches achieve a lower rate,
// while fastpso's element-wise kernels stream at the device's effective
// bandwidth. Total FLOPs are similar across implementations because all run
// the same PSO mathematics — the paper's own observation.
//
// All metrics are aggregated from the vgpu::prof event timeline (these runs
// execute with profiling on). The profile records the exact doubles the
// device counters accumulated, so the table is bit-identical to the
// counter-derived output it replaced; a per-kernel "GPU activities" table
// (nvprof style) for fastpso comes along for free.
//
//   ./table3_throughput [--executed-iters 20] [--prof-trace trace.json]
//
// --prof-trace writes the fastpso run's Chrome trace (the CI Sphere
// artifact).

#include "bench_common.h"
#include "vgpu/prof/prof.h"

using namespace fastpso;
using namespace fastpso::benchkit;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const BenchOptions opt = BenchOptions::parse(args, /*default_executed=*/20);

  vgpu::prof::set_enabled(true);

  TextTable table("Table 3: FLOPs and memory bandwidth (Sphere)");
  table.set_header({"metrics", "dram_read_throughput (GB/s)", "GFLOPs"});
  CsvWriter csv({"impl", "read_gbps", "gflops", "read_fetched_gb",
                 "modeled_s"});
  vgpu::prof::Profile fastpso_profile;

  for (Impl impl : gpu_impls()) {
    RunSpec spec;
    spec.impl = impl;
    spec.problem = "sphere";
    spec.particles = opt.particles;
    spec.dim = opt.dim;
    spec.iters = opt.iters;
    spec.executed_iters = opt.executed_iters;
    spec.seed = opt.seed;
    RunOutcome outcome = run_spec(spec);

    // Scale the executed run's profile aggregates to the full iteration
    // count (same scaling the counters used).
    const vgpu::prof::Profile& prof = outcome.result.profile;
    const double scale = static_cast<double>(opt.iters) /
                         outcome.result.iterations;
    const double read_fetched = prof.dram_read_fetched() * scale;
    const double gflops = prof.flops() * scale / 1e9;
    // nvprof-style throughput: bytes moved / time spent inside kernels.
    const double kernel_s = prof.kernel_seconds() * scale;
    const double read_gbps = read_fetched / kernel_s / 1e9;

    table.add_row({to_string(impl), fmt_fixed(read_gbps, 2),
                   fmt_fixed(gflops, 2)});
    csv.add_row({to_string(impl), fmt_fixed(read_gbps, 2),
                 fmt_fixed(gflops, 2), fmt_fixed(read_fetched / 1e9, 2),
                 fmt_fixed(outcome.modeled_seconds_full, 3)});
    if (impl == Impl::kFastPso) {
      fastpso_profile = std::move(outcome.result.profile);
    }
  }

  table.add_note("paper: gpu-pso 61.83 GB/s, hgpu-pso 57.41 GB/s, fastpso "
                 "106.94 GB/s; GFLOPs ~5.8 for all (op counting differs — "
                 "the paper counts FMA-reduced ops; shape: equal across "
                 "impls)");
  table.print(std::cout);

  // nvprof "GPU activities"-style per-kernel table for fastpso.
  TextTable kernels("fastpso per-kernel profile (executed run, top 8)");
  kernels.set_header({"kernel", "launches", "modeled_s", "time%", "GFLOP",
                      "read_GB"});
  const double total_kernel_s = fastpso_profile.kernel_seconds();
  for (const auto& row : fastpso_profile.top_kernels(8)) {
    kernels.add_row(
        {row.label, std::to_string(row.launches),
         fmt_fixed(row.modeled_seconds, 4),
         fmt_fixed(total_kernel_s > 0
                       ? 100.0 * row.modeled_seconds / total_kernel_s
                       : 0.0,
                   1),
         fmt_fixed(row.flops / 1e9, 2),
         fmt_fixed(row.fetched_read_bytes / 1e9, 2)});
  }
  kernels.print(std::cout);

  maybe_write_csv(csv, opt.csv);
  if (!opt.prof_trace.empty()) {
    std::cout << (fastpso_profile.write_chrome_trace(opt.prof_trace)
                      ? "prof trace written: "
                      : "prof trace write FAILED: ")
              << opt.prof_trace << "\n";
  }
  return 0;
}
