// Table 3: FLOPs and memory bandwidth of the GPU implementations (paper
// Section 4.2).
//
// dram_read_throughput = fetched read bytes / modeled seconds — the same
// quantity nvprof reports: gpu-pso's uncoalesced layout fetches more bytes
// per useful byte, and its low-occupancy launches achieve a lower rate,
// while fastpso's element-wise kernels stream at the device's effective
// bandwidth. Total FLOPs are similar across implementations because all run
// the same PSO mathematics — the paper's own observation.
//
//   ./table3_throughput [--executed-iters 20]

#include "bench_common.h"

using namespace fastpso;
using namespace fastpso::benchkit;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const BenchOptions opt = BenchOptions::parse(args, /*default_executed=*/20);

  TextTable table("Table 3: FLOPs and memory bandwidth (Sphere)");
  table.set_header({"metrics", "dram_read_throughput (GB/s)", "GFLOPs"});
  CsvWriter csv({"impl", "read_gbps", "gflops", "read_fetched_gb",
                 "modeled_s"});

  for (Impl impl : gpu_impls()) {
    RunSpec spec;
    spec.impl = impl;
    spec.problem = "sphere";
    spec.particles = opt.particles;
    spec.dim = opt.dim;
    spec.iters = opt.iters;
    spec.executed_iters = opt.executed_iters;
    spec.seed = opt.seed;
    const RunOutcome outcome = run_spec(spec);

    // Scale the executed run's counters to the full iteration count.
    const double scale = static_cast<double>(opt.iters) /
                         outcome.result.iterations;
    const double read_fetched =
        outcome.result.counters.dram_read_fetched * scale;
    const double gflops = outcome.result.counters.flops * scale / 1e9;
    // nvprof-style throughput: bytes moved / time spent inside kernels.
    const double kernel_s = outcome.result.counters.kernel_seconds * scale;
    const double read_gbps = read_fetched / kernel_s / 1e9;

    table.add_row({to_string(impl), fmt_fixed(read_gbps, 2),
                   fmt_fixed(gflops, 2)});
    csv.add_row({to_string(impl), fmt_fixed(read_gbps, 2),
                 fmt_fixed(gflops, 2), fmt_fixed(read_fetched / 1e9, 2),
                 fmt_fixed(outcome.modeled_seconds_full, 3)});
  }

  table.add_note("paper: gpu-pso 61.83 GB/s, hgpu-pso 57.41 GB/s, fastpso "
                 "106.94 GB/s; GFLOPs ~5.8 for all (op counting differs — "
                 "the paper counts FMA-reduced ops; shape: equal across "
                 "impls)");
  table.print(std::cout);
  maybe_write_csv(csv, opt.csv);
  return 0;
}
