// Table 4: efficiency of FastPSO with memory caching vs re-allocation
// (paper Section 4.4).
//
// With caching off, the per-iteration L/G weight matrices hit
// cudaMalloc/cudaFree (modeled overhead) every iteration; with caching on,
// the pool serves them at zero cost after the first iteration. The paper
// measures a 3.7-5% end-to-end difference.
//
//   ./table4_memcache [--executed-iters 50]

#include "bench_common.h"

using namespace fastpso;
using namespace fastpso::benchkit;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const BenchOptions opt = BenchOptions::parse(args, /*default_executed=*/50);

  TextTable table("Table 4: efficiency of FastPSO with memory caching");
  table.set_header({"problem", "w/ caching (s)", "w/ reallocation (s)",
                    "speedup"});
  CsvWriter csv({"problem", "cached_s", "realloc_s", "speedup_pct"});

  for (const std::string problem : {"sphere", "griewank", "easom"}) {
    double seconds[2] = {0, 0};
    for (int cached = 1; cached >= 0; --cached) {
      RunSpec spec;
      spec.problem = problem;
      spec.particles = opt.particles;
      spec.dim = opt.dim;
      spec.iters = opt.iters;
      spec.executed_iters = opt.executed_iters;
      spec.seed = opt.seed;
      spec.memory_caching = cached == 1;
      seconds[cached] = run_spec(spec).modeled_seconds_full;
    }
    const double speedup_pct = (seconds[0] - seconds[1]) / seconds[1] * 100.0;
    table.add_row({problem, fmt_fixed(seconds[1], 3), fmt_fixed(seconds[0], 3),
                   fmt_fixed(speedup_pct, 2) + "%"});
    csv.add_row({problem, fmt_fixed(seconds[1], 4), fmt_fixed(seconds[0], 4),
                 fmt_fixed(speedup_pct, 2)});
  }

  table.add_note("paper: 3.70% (Easom) to 5.08% (Sphere)");
  table.print(std::cout);
  maybe_write_csv(csv, opt.csv);
  return 0;
}
