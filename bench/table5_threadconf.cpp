// Table 5: execution time of MiniGBM (the ThunderGBM substitute) with and
// without FastPSO-tuned kernel configurations, on the four Table-5-shaped
// datasets (paper Section 4.6).
//
// Flow per dataset:
//   1. train MiniGBM (real histogram GBDT) with ThunderGBM-style default
//      kernel configs -> modeled time `tgbm`;
//   2. run FastPSO on the ThreadConf objective (modeled training time as a
//      function of the 50 configuration parameters);
//   3. retrain with the tuned configs -> modeled time `tgbm+pso`;
//   4. report both and the speedup; also checks the tuned run reaches the
//      same training RMSE (the tuning changes launch shapes, not results).
//
//   ./table5_threadconf [--trees 12] [--tune-particles 512]
//                       [--tune-iters 60] [--graph] [--fuse] [--tuned]
//
// --graph additionally runs the FastPSO tuning step under vgpu::Graph
// capture/replay (DESIGN.md §8) and reports the graph-mode modeled tuning
// time next to the eager one as table notes. --fuse further engages the
// FusionPass over the captured tuning pipeline (DESIGN.md §9) and extends
// the notes with the fused modeled time and the per-iteration launch
// reduction. The CSV and the eager numbers are unchanged either way —
// graph amortization and fusion savings are reported, never folded in.
//
// --tuned adds one "<dataset>+tuner" row per dataset: the configuration
// found by the generalized offline autotuner (tune::Tuner over the per-site
// kernel families, DESIGN.md §13) instead of the paper's direct 50-dim
// ThreadConf search — per-site subspace search with validity predicates
// and executed-replay validation, the same machinery that tunes the engine
// kernels. Default rows are byte-identical with or without the flag.

#include "bench_common.h"
#include "tgbm/minigbm.h"
#include "tgbm/threadconf.h"
#include "tune/kernels.h"
#include "tune/tuner.h"
#include "vgpu/device.h"
#include "vgpu/device_spec.h"
#include "vgpu/graph/graph.h"
#include "vgpu/tuned.h"

using namespace fastpso;
using namespace fastpso::benchkit;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  tgbm::GbmParams gbm;
  gbm.trees = static_cast<int>(args.get_int("trees", 12));
  const int tune_particles =
      static_cast<int>(args.get_int("tune-particles", 512));
  const int tune_iters = static_cast<int>(args.get_int("tune-iters", 60));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::string csv_path = args.get_string("csv", "");
  const bool use_graph = args.get_bool("graph", false);
  const bool use_fuse = args.get_bool("fuse", false);
  const bool use_tuned = args.get_bool("tuned", false);
  tune::TunerOptions tuner_options;
  tuner_options.particles =
      static_cast<int>(args.get_int("tuner-particles", 48));
  tuner_options.iterations = static_cast<int>(args.get_int("tuner-iters", 24));
  tuner_options.seed = seed;
  if (use_graph) {
    vgpu::graph::set_enabled(true);
  }
  if (use_fuse) {
    vgpu::graph::set_fusion_enabled(true);  // implies capture (DESIGN.md §9)
  }

  TextTable table("Table 5: MiniGBM training time w/ and w/o FastPSO tuning");
  table.set_header({"data set", "#card", "#dim", "tgbm (s)", "tgbm+pso (s)",
                    "speedup", "rmse", "rmse+pso"});
  CsvWriter csv({"dataset", "rows", "dims", "default_s", "tuned_s", "speedup",
                 "rmse_default", "rmse_tuned"});

  for (const auto& spec : tgbm::table5_specs()) {
    const tgbm::Dataset data = tgbm::generate_dataset(spec, seed);
    const tgbm::MiniGbm trainer(gbm);

    // 1. default configs
    vgpu::Device device_default;
    const tgbm::TrainResult base =
        trainer.train(device_default, data, tgbm::default_configs());

    // 2. FastPSO tunes the modeled training time (the paper's direct 50-dim
    // ThreadConf search, expressed through the tuner layer — same optimize
    // call, byte-identical results).
    tgbm::ThreadConfProblem problem(spec, gbm);
    const tune::ThreadConfSearch search =
        tune::search_threadconf(problem, tune_particles, tune_iters, seed);
    const core::Result& tuned_result = search.result;
    const tgbm::ConfigSet& tuned = search.configs;

    // 3. retrain with tuned configs
    vgpu::Device device_tuned;
    const tgbm::TrainResult best = trainer.train(device_tuned, data, tuned);

    const double speedup = base.modeled_seconds / best.modeled_seconds;
    table.add_row({spec.name, std::to_string(spec.rows),
                   std::to_string(spec.dims),
                   fmt_fixed(base.modeled_seconds, 2),
                   fmt_fixed(best.modeled_seconds, 2), fmt_fixed(speedup, 2),
                   fmt_fixed(base.final_rmse(), 4),
                   fmt_fixed(best.final_rmse(), 4)});
    csv.add_row({spec.name, std::to_string(spec.rows),
                 std::to_string(spec.dims),
                 fmt_fixed(base.modeled_seconds, 3),
                 fmt_fixed(best.modeled_seconds, 3), fmt_fixed(speedup, 3),
                 fmt_fixed(base.final_rmse(), 5),
                 fmt_fixed(best.final_rmse(), 5)});
    if (use_graph || use_fuse) {
      const vgpu::graph::GraphStats& g = tuned_result.graph;
      table.add_note(
          std::string(spec.name) + ": tune modeled " +
          fmt_fixed(tuned_result.modeled_seconds, 3) + "s -> graph " +
          fmt_fixed(tuned_result.graph_modeled_seconds(), 3) + "s (" +
          std::to_string(g.replays) + " replays, " +
          std::to_string(g.replayed_launches) + " replayed launches)");
    }
    if (use_fuse) {
      const vgpu::graph::FusionStats& f = tuned_result.fusion;
      table.add_note(
          std::string(spec.name) + ": fused " +
          fmt_fixed(tuned_result.fused_modeled_seconds(), 3) + "s (" +
          std::to_string(f.groups) + " groups, " +
          std::to_string(f.fused_members) + " members, launches -" +
          fmt_fixed(f.launch_reduction() * 100.0, 1) + "%)");
    }

    if (use_tuned) {
      // 4. the generalized autotuner: per-site subspace search over the 25
      // kernel-site families, then retrain under the emitted table. The
      // decoded ConfigSet is read back under a ScopedTuning bracket, so
      // nothing leaks into the default rows.
      const tune::Tuner tuner(vgpu::tesla_v100(), tuner_options);
      const tune::TuneReport report =
          tuner.tune(tune::tgbm_site_families(spec, gbm, vgpu::tesla_v100()),
                     tune::tgbm_site_shapes(spec, gbm));
      tgbm::ConfigSet site_tuned;
      {
        vgpu::tuned::ScopedTuning guard;
        report.table.install();
        vgpu::tuned::set_enabled(true);
        site_tuned = tgbm::tuned_configs(spec, gbm);
      }
      vgpu::Device device_site;
      const tgbm::TrainResult site =
          trainer.train(device_site, data, site_tuned);
      const double site_speedup =
          base.modeled_seconds / site.modeled_seconds;
      const std::string name = std::string(spec.name) + "+tuner";
      table.add_row({name, std::to_string(spec.rows),
                     std::to_string(spec.dims),
                     fmt_fixed(base.modeled_seconds, 2),
                     fmt_fixed(site.modeled_seconds, 2),
                     fmt_fixed(site_speedup, 2),
                     fmt_fixed(base.final_rmse(), 4),
                     fmt_fixed(site.final_rmse(), 4)});
      csv.add_row({name, std::to_string(spec.rows),
                   std::to_string(spec.dims),
                   fmt_fixed(base.modeled_seconds, 3),
                   fmt_fixed(site.modeled_seconds, 3),
                   fmt_fixed(site_speedup, 3),
                   fmt_fixed(base.final_rmse(), 5),
                   fmt_fixed(site.final_rmse(), 5)});
      table.add_note(name + ": " + std::to_string(report.improved_groups()) +
                     " of " +
                     std::to_string(static_cast<int>(
                         report.outcomes.size())) +
                     " site groups improved in modeled time");
    }
  }

  table.add_note("trees=" + std::to_string(gbm.trees) +
                 " depth=" + std::to_string(gbm.depth) +
                 " (paper: 40 trees; pass --trees 40 for paper scale)");
  table.add_note("paper speedups: covtype 0.96x, susy 1.19x, higgs 1.04x, "
                 "e2006 1.25x");
  table.print(std::cout);
  maybe_write_csv(csv, csv_path);
  return 0;
}
