// tune_search: the offline autotuner driver (DESIGN.md §13).
//
// Runs the tune::Tuner over the engine's launch-geometry families
// ("launch_policy", "reduce", "swarm_tile") on the standard smoke shapes —
// and, with --tgbm, additionally over the 25 MiniGBM kernel-site families
// for a Table 5 dataset — then reports predicted and executed-replay costs
// per shape group and emits the deterministic artifacts:
//
//   * --table PATH   the tuned-config table (JSON) the runtime loads via
//                    FASTPSO_TUNED=1 FASTPSO_TUNED_TABLE=PATH;
//   * --csv PATH     the predicted-vs-executed record, one row per group.
//
// The search itself uses FastPSO (a small swarm per group over the family's
// JoinedSpace, modeled-cost oracle) and the winner is validated with an
// executed-replay probe on a fresh vgpu::Device, so every emitted entry is
// backed by the engine's own accounting, never by the mirror alone.
//
//   ./tune_search [--particles 48] [--iters 24] [--seed 42]
//                 [--tgbm] [--tgbm-dataset covtype] [--no-probe]
//                 [--csv tune_search.csv] [--table tuned_table.json]
//                 [--gate-groups N]
//
// --gate-groups N exits non-zero unless at least N groups improved on the
// default configuration in modeled time — the CI check that the tuner
// still finds real wins on the smoke shapes.

#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "tgbm/dataset.h"
#include "tgbm/kernels.h"
#include "tune/kernels.h"
#include "tune/shapes.h"
#include "tune/tuner.h"
#include "vgpu/device_spec.h"

using namespace fastpso;
using namespace fastpso::benchkit;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  tune::TunerOptions options;
  options.particles = static_cast<int>(args.get_int("particles", 48));
  options.iterations = static_cast<int>(args.get_int("iters", 24));
  options.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  options.executed_probe = !args.get_bool("no-probe", false);
  const bool with_tgbm = args.get_bool("tgbm", false);
  const std::string tgbm_dataset = args.get_string("tgbm-dataset", "covtype");
  const std::string csv_path = args.get_string("csv", "");
  const std::string table_path = args.get_string("table", "");
  const int gate_groups = static_cast<int>(args.get_int("gate-groups", 0));

  const vgpu::GpuSpec gpu = vgpu::tesla_v100();
  const tune::Tuner tuner(gpu, options);

  // Engine families over the standard smoke shapes.
  std::vector<tune::KernelFamily> families = tune::engine_families(gpu);
  std::vector<tune::WorkloadShape> shapes = tune::smoke_shapes();

  if (with_tgbm) {
    // One family (and one shape) per MiniGBM kernel site for the chosen
    // Table 5 dataset; merged into the same search so the report and the
    // emitted table cover both layers.
    tgbm::DatasetSpec spec;
    bool found = false;
    for (const tgbm::DatasetSpec& candidate : tgbm::table5_specs()) {
      if (candidate.name == tgbm_dataset) {
        spec = candidate;
        found = true;
        break;
      }
    }
    if (!found) {
      std::cerr << "tune_search: unknown --tgbm-dataset " << tgbm_dataset
                << "\n";
      return 1;
    }
    const tgbm::GbmParams params;
    for (tune::KernelFamily& family : tune::tgbm_site_families(spec, params,
                                                               gpu)) {
      families.push_back(std::move(family));
    }
    for (tune::WorkloadShape& shape : tune::tgbm_site_shapes(spec, params)) {
      shapes.push_back(std::move(shape));
    }
  }

  const tune::TuneReport report = tuner.tune(families, shapes);

  TextTable table("tune_search: modeled-cost autotuner (" +
                  std::to_string(options.particles) + " particles x " +
                  std::to_string(options.iterations) + " iters per group)");
  table.set_header({"group", "tuned point", "default us", "tuned us",
                    "speedup", "exec default us", "exec tuned us"});
  for (const tune::GroupOutcome& outcome : report.outcomes) {
    const double speedup =
        outcome.tuned_us > 0 ? outcome.default_us / outcome.tuned_us : 1.0;
    table.add_row({outcome.key, outcome.point_string,
                   fmt_fixed(outcome.default_us, 3),
                   fmt_fixed(outcome.tuned_us, 3), fmt_speedup(speedup),
                   fmt_fixed(outcome.executed_default_us, 3),
                   fmt_fixed(outcome.executed_tuned_us, 3)});
  }
  table.add_note("default point is always in the candidate slate: tuned "
                 "modeled cost can never exceed the default's");
  table.add_note(std::to_string(report.improved_groups()) + " of " +
                 std::to_string(static_cast<int>(report.outcomes.size())) +
                 " groups improved; " +
                 std::to_string(static_cast<int>(
                     report.table.store().size())) +
                 " store entries emitted");
  table.print(std::cout);

  if (!csv_path.empty()) {
    std::cout << (report.table.save_csv(csv_path) ? "csv written: "
                                                  : "csv write FAILED: ")
              << csv_path << "\n";
  }
  if (!table_path.empty()) {
    std::cout << (report.table.save_json(table_path) ? "table written: "
                                                     : "table write FAILED: ")
              << table_path << "\n";
  }

  if (gate_groups > 0 && report.improved_groups() < gate_groups) {
    std::cerr << "tune_search: gate FAILED — " << report.improved_groups()
              << " improved groups, need >= " << gate_groups << "\n";
    return 1;
  }
  return 0;
}
