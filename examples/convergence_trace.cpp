// Convergence tracing with the iteration callback: prints gbest over time
// for FastPSO vs the unclamped pyswarms-style dynamics on the same problem,
// showing why the bound constraint (Eq. 5 + adaptive anneal) matters for
// the paper's omega=0.9, c1=c2=2 setting.
//
//   ./convergence_trace [--problem griewank] [--iters 400]

#include <iomanip>
#include <iostream>

#include "baselines/baselines.h"
#include "common/cli.h"
#include "core/optimizer.h"
#include "problems/problem.h"
#include "vgpu/device.h"

using namespace fastpso;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string problem_name = args.get_string("problem", "griewank");
  const int iters = static_cast<int>(args.get_int("iters", 400));
  const auto problem = problems::make_problem(problem_name);

  core::PsoParams params;
  params.particles = static_cast<int>(args.get_int("particles", 1000));
  params.dim = static_cast<int>(args.get_int("dim", 30));
  params.max_iter = iters;
  const core::Objective objective =
      core::objective_from_problem(*problem, params.dim);

  std::cout << "problem: " << problem_name << " d=" << params.dim
            << " n=" << params.particles << "\n\niter      fastpso gbest\n";
  vgpu::Device device;
  core::Optimizer optimizer(device, params);
  const int stride = std::max(1, iters / 10);
  const core::Result fast = optimizer.optimize(
      objective, [&](int iter, double gbest) {
        if (iter % stride == 0 || iter == iters - 1) {
          std::cout << std::setw(5) << iter << "   " << gbest << "\n";
        }
        return true;
      });

  const core::Result pyswarms =
      baselines::run_pyswarms_like(objective, params);

  std::cout << "\nfinal gbest:\n  fastpso (velocity bound, Eq. 5): "
            << fast.gbest_value << "\n  pyswarms-style (no clamping):  "
            << pyswarms.gbest_value << "\n";
  std::cout << "\nAt omega=0.9, c1=c2=2 the unclamped swarm diverges and "
               "degenerates into\nrandom sampling — the mechanism behind "
               "the paper's Table 2 error gap.\n";
  return 0;
}
