// Custom evaluation functions through the kernel schema (paper Section 3.2).
//
// Demonstrates the "customized swarm evaluation function" API on two
// realistic scenarios the paper's introduction motivates:
//
//   1. Curve fitting: fit a damped oscillation y = a*exp(-b*t)*cos(c*t + d)
//      to noisy samples by minimizing squared residuals — a non-convex
//      4-parameter problem gradient methods struggle with.
//   2. Facility location (a location-management flavour, cf. Hashim & Abido
//      2019): place k facilities in the plane to minimize the sum of
//      squared distances from fixed demand points to their nearest
//      facility (a continuous k-means-style objective).
//
//   ./custom_objective [--iters 300] [--particles 2000]

#include <cmath>
#include <iostream>
#include <vector>

#include "common/cli.h"
#include "core/optimizer.h"
#include "rng/xoshiro.h"
#include "vgpu/device.h"

using namespace fastpso;

namespace {

void fit_damped_oscillation(int particles, int iters) {
  // Ground truth: a=2.0, b=0.35, c=3.0, d=0.8; 64 noisy samples.
  const double true_params[4] = {2.0, 0.35, 3.0, 0.8};
  std::vector<double> ts;
  std::vector<double> ys;
  rng::Xoshiro256 noise(7);
  for (int k = 0; k < 64; ++k) {
    const double t = 0.1 * k;
    const double y = true_params[0] * std::exp(-true_params[1] * t) *
                     std::cos(true_params[2] * t + true_params[3]);
    ts.push_back(t);
    ys.push_back(y + 0.01 * (noise.next_unit() - 0.5));
  }

  // The user-defined evaluation function, dispatched through the same
  // schema as the built-ins.
  core::Objective objective = core::make_objective(
      "damped-oscillation-fit", 0.0, 5.0,
      [&](const float* x, int) {
        double sse = 0.0;
        for (std::size_t k = 0; k < ts.size(); ++k) {
          const double pred = x[0] * std::exp(-x[1] * ts[k]) *
                              std::cos(x[2] * ts[k] + x[3]);
          const double r = pred - ys[k];
          sse += r * r;
        }
        return sse;
      },
      problems::EvalCost{.flops_per_dim = 0.0,
                         .transcendentals_per_dim = 0.0,
                         .flops_fixed = 64.0 * 8.0,
                         .vector_passes = 4.0});

  vgpu::Device device;
  core::PsoParams params;
  params.particles = particles;
  params.dim = 4;
  params.max_iter = iters;
  core::Optimizer optimizer(device, params);
  const core::Result result = optimizer.optimize(objective);

  std::cout << "[curve fit] SSE = " << result.gbest_value << "\n"
            << "  fitted (a b c d): ";
  for (float v : result.gbest_position) {
    std::cout << v << " ";
  }
  std::cout << "\n  truth  (a b c d): 2.0 0.35 3.0 0.8\n"
            << "  modeled time: " << result.modeled_seconds << " s\n\n";
}

void facility_location(int particles, int iters) {
  constexpr int kFacilities = 4;
  // 200 demand points in four clusters.
  std::vector<std::pair<double, double>> demand;
  rng::Xoshiro256 rng(11);
  const double centers[4][2] = {{-6, -6}, {-6, 6}, {6, -6}, {6, 6}};
  for (int k = 0; k < 200; ++k) {
    const auto& c = centers[k % 4];
    demand.emplace_back(c[0] + rng.next_uniform(-1.5, 1.5),
                        c[1] + rng.next_uniform(-1.5, 1.5));
  }

  core::Objective objective = core::make_objective(
      "facility-location", -10.0, 10.0,
      [&](const float* x, int) {
        double total = 0.0;
        for (const auto& [px, py] : demand) {
          double best = 1e30;
          for (int f = 0; f < kFacilities; ++f) {
            const double dx = px - x[2 * f];
            const double dy = py - x[2 * f + 1];
            best = std::min(best, dx * dx + dy * dy);
          }
          total += best;
        }
        return total;
      },
      problems::EvalCost{.flops_per_dim = 0.0,
                         .transcendentals_per_dim = 0.0,
                         .flops_fixed = 200.0 * kFacilities * 6.0,
                         .vector_passes = 6.0});

  vgpu::Device device;
  core::PsoParams params;
  params.particles = particles;
  params.dim = 2 * kFacilities;
  params.max_iter = iters;
  core::Optimizer optimizer(device, params);
  const core::Result result = optimizer.optimize(objective);

  std::cout << "[facility location] total squared distance = "
            << result.gbest_value << "\n  facilities:";
  for (int f = 0; f < kFacilities; ++f) {
    std::cout << " (" << result.gbest_position[2 * f] << ", "
              << result.gbest_position[2 * f + 1] << ")";
  }
  std::cout << "\n  (expected near the four cluster centers +-6, +-6)\n"
            << "  modeled time: " << result.modeled_seconds << " s\n";
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const int particles = static_cast<int>(args.get_int("particles", 2000));
  const int iters = static_cast<int>(args.get_int("iters", 300));
  fit_damped_oscillation(particles, iters);
  facility_location(particles, iters);
  return 0;
}
