// The paper's case study (Section 4.6): tuning the thread/block
// configuration of a GPU machine-learning library's 25 kernels with
// FastPSO — here MiniGBM, the ThunderGBM substitute.
//
// Runs the full Table-5 flow for one dataset: train with ThunderGBM-style
// defaults, tune the 50-dimensional ThreadConf objective with FastPSO,
// retrain with the tuned configuration and report the speedup.
//
//   ./kernel_tuning [--dataset higgs] [--trees 12] [--particles 512]
//                   [--iters 60]

#include <iostream>

#include "common/cli.h"
#include "core/optimizer.h"
#include "tgbm/minigbm.h"
#include "tgbm/threadconf.h"
#include "vgpu/device.h"

using namespace fastpso;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string name = args.get_string("dataset", "higgs");

  tgbm::DatasetSpec spec;
  for (const auto& candidate : tgbm::table5_specs()) {
    if (candidate.name == name) {
      spec = candidate;
    }
  }
  if (spec.name.empty()) {
    std::cerr << "unknown dataset '" << name
              << "' (choose covtype|susy|higgs|e2006)\n";
    return 1;
  }

  tgbm::GbmParams gbm;
  gbm.trees = static_cast<int>(args.get_int("trees", 12));

  std::cout << "dataset " << spec.name << ": " << spec.rows << " rows x "
            << spec.dims << " dims (materialized " << spec.actual_rows
            << " x " << spec.actual_dims << ")\n";

  const tgbm::Dataset data = tgbm::generate_dataset(spec, 42);
  const tgbm::MiniGbm trainer(gbm);

  // 1. Baseline: ThunderGBM-style default kernel configurations.
  vgpu::Device device_default;
  const tgbm::TrainResult base =
      trainer.train(device_default, data, tgbm::default_configs());
  std::cout << "default configs: modeled " << base.modeled_seconds
            << " s, final RMSE " << base.final_rmse() << "\n";

  // 2. FastPSO over the 50-dim ThreadConf space (25 kernels x 2 params).
  tgbm::ThreadConfProblem problem(spec, gbm);
  core::PsoParams pso;
  pso.particles = static_cast<int>(args.get_int("particles", 512));
  pso.dim = tgbm::kConfigDims;
  pso.max_iter = static_cast<int>(args.get_int("iters", 60));
  vgpu::Device tuner;
  core::Optimizer optimizer(tuner, pso);
  const core::Result tuned_result =
      optimizer.optimize(core::objective_from_problem(problem, pso.dim));
  const tgbm::ConfigSet tuned = tgbm::configs_from_position(
      std::span<const float>(tuned_result.gbest_position));

  std::cout << "\nPSO-tuned kernel configurations (block x items/thread):\n";
  const auto sites = tgbm::kernel_sites(spec, gbm);
  for (int k = 0; k < tgbm::kNumKernels; ++k) {
    std::cout << "  " << sites[k].name << ": " << tuned[k].block_size << " x "
              << tuned[k].items_per_thread << "\n";
  }

  // 3. Retrain with the tuned configuration.
  vgpu::Device device_tuned;
  const tgbm::TrainResult best = trainer.train(device_tuned, data, tuned);
  std::cout << "\ntuned configs: modeled " << best.modeled_seconds
            << " s, final RMSE " << best.final_rmse() << "\n"
            << "speedup: " << base.modeled_seconds / best.modeled_seconds
            << "x  (paper Table 5: 0.96x-1.25x with 40 trees)\n";
  return 0;
}
