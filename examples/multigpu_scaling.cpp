// Multi-GPU FastPSO (paper Section 3.5): runs both extension strategies —
// particle splitting with asynchronous global-best exchange, and tile-matrix
// sharding — across 1, 2 and 4 virtual devices and reports modeled time and
// solution quality.
//
//   ./multigpu_scaling [--problem rastrigin] [--particles 4000] [--dim 100]
//                      [--iters 200]

#include <iostream>

#include "common/cli.h"
#include "common/table.h"
#include "core/multi_gpu.h"
#include "core/optimizer.h"
#include "problems/problem.h"

using namespace fastpso;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  const std::string problem_name = args.get_string("problem", "rastrigin");
  const auto problem = problems::make_problem(problem_name);

  core::PsoParams pso;
  pso.particles = static_cast<int>(args.get_int("particles", 4000));
  pso.dim = static_cast<int>(args.get_int("dim", 100));
  pso.max_iter = static_cast<int>(args.get_int("iters", 200));
  const core::Objective objective =
      core::objective_from_problem(*problem, pso.dim);

  TextTable table("Multi-GPU scaling (" + problem_name + ", n=" +
                  std::to_string(pso.particles) + ", d=" +
                  std::to_string(pso.dim) + ")");
  table.set_header({"strategy", "devices", "modeled (s)", "gbest",
                    "per-device (s)"});

  for (auto strategy : {core::MultiGpuStrategy::kTileMatrix,
                        core::MultiGpuStrategy::kParticleSplit}) {
    for (int devices : {1, 2, 4}) {
      core::MultiGpuParams params;
      params.pso = pso;
      params.devices = devices;
      params.strategy = strategy;
      core::MultiGpuOptimizer optimizer(params);
      const core::Result result = optimizer.optimize(objective);

      std::string per_device;
      for (double s : optimizer.device_seconds()) {
        per_device += fmt_fixed(s, 3) + " ";
      }
      table.add_row({to_string(strategy), std::to_string(devices),
                     fmt_fixed(result.modeled_seconds, 3),
                     fmt_fixed(result.gbest_value, 4), per_device});
    }
  }
  table.add_note("tile-matrix shards one swarm (identical semantics); "
                 "particle-split runs local sub-swarms with periodic "
                 "global-best exchange");
  table.print(std::cout);
  return 0;
}
