// pso_cli — the kitchen-sink command line for this repository: run any
// implementation on any problem with any engine option and get a
// machine-readable result line plus the human-readable report.
//
//   ./pso_cli --impl fastpso --problem rastrigin --particles 2000 --dim 50
//             --iters 500 [--technique shared-mem] [--topology ring]
//             [--sync async] [--overlap] [--mixed-precision]
//             [--no-velocity-clamp] [--target 1e-3] [--patience 100]
//             [--shift 0.3] [--rotate] [--seed 42] [--list]
//
// `--impl` accepts: pyswarms scikit-opt gpu-pso hgpu-pso fastpso-seq
// fastpso-omp fastpso. `--list` prints problems and implementations.

#include <iostream>

#include "benchkit/runner.h"
#include "common/cli.h"
#include "core/optimizer.h"
#include "problems/transforms.h"
#include "vgpu/device.h"

using namespace fastpso;

namespace {

int list_everything() {
  std::cout << "implementations:";
  for (auto impl : benchkit::all_impls()) {
    std::cout << " " << benchkit::to_string(impl);
  }
  std::cout << "\nproblems:";
  for (const auto& name : problems::builtin_problem_names()) {
    std::cout << " " << name;
  }
  std::cout << " threadconf\ntechniques: global-mem shared-mem tensorcore\n"
            << "topologies: global ring\nsync modes: sync async\n";
  return 0;
}

core::UpdateTechnique parse_technique(const std::string& name) {
  if (name == "global-mem") return core::UpdateTechnique::kGlobalMemory;
  if (name == "shared-mem") return core::UpdateTechnique::kSharedMemory;
  if (name == "tensorcore") return core::UpdateTechnique::kTensorCore;
  throw CheckError("unknown technique: " + name);
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.get_bool("list", false)) {
    return list_everything();
  }

  try {
    const std::string impl_name = args.get_string("impl", "fastpso");
    const std::string problem_name = args.get_string("problem", "sphere");

    core::PsoParams params;
    params.particles = static_cast<int>(args.get_int("particles", 2000));
    params.dim = static_cast<int>(args.get_int("dim", 50));
    params.max_iter = static_cast<int>(args.get_int("iters", 500));
    params.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    params.technique =
        parse_technique(args.get_string("technique", "global-mem"));
    if (args.get_string("topology", "global") == "ring") {
      params.topology = core::Topology::kRing;
      params.ring_neighbors =
          static_cast<int>(args.get_int("ring-neighbors", 2));
    }
    if (args.get_string("sync", "sync") == "async") {
      params.synchronization = core::Synchronization::kAsynchronous;
    }
    params.overlap_init = args.get_bool("overlap", false);
    params.mixed_precision = args.get_bool("mixed-precision", false);
    params.velocity_clamp = !args.get_bool("no-velocity-clamp", false);
    params.target_value =
        args.get_double("target", params.target_value);
    params.stall_patience =
        static_cast<int>(args.get_int("patience", 0));
    params.memory_caching = !args.get_bool("no-memory-caching", false);

    // Problem, optionally shifted and/or rotated.
    std::unique_ptr<problems::Problem> problem =
        benchkit::make_any_problem(problem_name);
    const double shift_fraction = args.get_double("shift", 0.0);
    if (shift_fraction > 0.0) {
      problem = problems::ShiftedProblem::random(
          std::move(problem), shift_fraction, params.seed, params.dim);
    }
    if (args.get_bool("rotate", false)) {
      problem = std::make_unique<problems::RotatedProblem>(
          std::move(problem), params.dim, params.seed);
    }
    const core::Objective objective =
        core::objective_from_problem(*problem, params.dim);

    core::Result result;
    const benchkit::Impl impl = benchkit::impl_from_string(impl_name);
    if (impl == benchkit::Impl::kFastPso) {
      // Direct path: honors every engine option.
      vgpu::Device device;
      core::Optimizer optimizer(device, params);
      result = optimizer.optimize(objective);
    } else {
      benchkit::RunSpec spec;
      spec.impl = impl;
      spec.problem = problem_name;
      spec.particles = params.particles;
      spec.dim = params.dim;
      spec.iters = params.max_iter;
      spec.executed_iters = params.max_iter;
      spec.seed = params.seed;
      spec.technique = params.technique;
      result = benchkit::run_spec(spec).result;
    }

    std::cout << "impl: " << impl_name << "  problem: " << problem->name()
              << "  n=" << params.particles << " d=" << params.dim
              << " iters=" << result.iterations << "\n"
              << "gbest: " << result.gbest_value << "\n";
    if (objective.has_optimum) {
      std::cout << "error: " << result.error_to(objective.optimum) << "\n";
    }
    std::cout << "modeled: " << result.modeled_seconds
              << " s   wall: " << result.wall_seconds << " s\n";
    for (const auto& [step, seconds] : result.modeled_breakdown.buckets()) {
      std::cout << "  " << step << ": " << seconds << " s\n";
    }
    // One machine-readable line for scripting.
    std::cout << "RESULT impl=" << impl_name << " problem=" << problem->name()
              << " n=" << params.particles << " d=" << params.dim
              << " iters=" << result.iterations
              << " gbest=" << result.gbest_value
              << " modeled_s=" << result.modeled_seconds
              << " wall_s=" << result.wall_seconds << "\n";
    return 0;
  } catch (const CheckError& e) {
    std::cerr << "error: " << e.what() << "\n(use --list for options)\n";
    return 1;
  }
}
