// Quickstart: minimize a built-in benchmark function with FastPSO on the
// virtual GPU and print the optimization result, the per-step time
// breakdown and the device counters.
//
//   ./quickstart [--problem sphere] [--particles 5000] [--dim 200]
//                [--iters 100] [--seed 42] [--technique global-mem]

#include <iostream>

#include "common/cli.h"
#include "core/optimizer.h"
#include "problems/problem.h"
#include "vgpu/device.h"

using namespace fastpso;

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);

  core::PsoParams params;
  params.particles = static_cast<int>(args.get_int("particles", 5000));
  params.dim = static_cast<int>(args.get_int("dim", 200));
  params.max_iter = static_cast<int>(args.get_int("iters", 100));
  params.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
  const std::string technique = args.get_string("technique", "global-mem");
  if (technique == "shared-mem") {
    params.technique = core::UpdateTechnique::kSharedMemory;
  } else if (technique == "tensorcore") {
    params.technique = core::UpdateTechnique::kTensorCore;
  }

  const std::string problem_name = args.get_string("problem", "sphere");
  const auto problem = problems::make_problem(problem_name);
  const core::Objective objective =
      core::objective_from_problem(*problem, params.dim);

  vgpu::Device device;  // virtual Tesla V100
  std::cout << "device: " << device.spec().name << "\n"
            << "problem: " << problem_name << "  n=" << params.particles
            << " d=" << params.dim << " iters=" << params.max_iter << "\n";

  core::Optimizer optimizer(device, params);
  const core::Result result = optimizer.optimize(objective);

  std::cout << "\ngbest value: " << result.gbest_value
            << "  (optimum: " << objective.optimum
            << ", error: " << result.error_to(objective.optimum) << ")\n";
  std::cout << "wall time:    " << result.wall_seconds << " s (this machine)\n";
  std::cout << "modeled time: " << result.modeled_seconds
            << " s (virtual V100)\n\nmodeled breakdown:\n";
  for (const auto& [step, seconds] : result.modeled_breakdown.buckets()) {
    std::cout << "  " << step << ": " << seconds << " s\n";
  }
  const auto& c = result.counters;
  std::cout << "\ncounters: launches=" << c.launches
            << " flops=" << c.flops / 1e9 << " G"
            << " dram_read=" << c.dram_read_fetched / (1 << 30) << " GiB"
            << " dram_write=" << c.dram_write_fetched / (1 << 30) << " GiB\n";
  std::cout << "read throughput (modeled): "
            << c.dram_read_fetched / result.modeled_seconds / 1e9
            << " GB/s\n";
  return 0;
}
