// All comparison implementations from the paper's evaluation (Section 4.1):
//
//   fastpso-seq   — sequential C++ version of FastPSO
//   fastpso-omp   — OpenMP-parallel version of FastPSO
//   pyswarms      — re-implementation of pyswarms.single.GlobalBestPSO
//                   (NumPy-vectorized, periodic bound handling, no velocity
//                   clamp) with a CPython/NumPy cost model
//   scikit-opt    — re-implementation of sko.PSO (NumPy-vectorized,
//                   position clipping, improvement-based early stop)
//   gpu-pso       — Hussain et al. 2016: particle-per-thread CUDA PSO with
//                   coalesced fitness evaluation, on the virtual GPU
//   hgpu-pso      — Wachowiak et al. 2017: heterogeneous PSO (GPU fitness
//                   evaluation + multicore-CPU swarm logic), on the virtual
//                   GPU plus the CPU model
//
// Every implementation really optimizes (Table 2 errors are genuine); the
// modeled timing story is documented per implementation in the .cpp files
// and in DESIGN.md §1.
#pragma once

#include "core/objective.h"
#include "core/params.h"
#include "core/result.h"
#include "vgpu/device.h"

namespace fastpso::baselines {

/// Sequential C++ FastPSO (same algorithm, xoshiro RNG).
core::Result run_fastpso_seq(const core::Objective& objective,
                             const core::PsoParams& params);

/// OpenMP C++ FastPSO (counter-based RNG so results are deterministic
/// under any thread count).
core::Result run_fastpso_omp(const core::Objective& objective,
                             const core::PsoParams& params);

/// pyswarms.single.GlobalBestPSO equivalent.
core::Result run_pyswarms_like(const core::Objective& objective,
                               const core::PsoParams& params);

/// Options for the scikit-opt equivalent.
struct ScikitOptions {
  /// Iterations without gbest improvement before stopping (sko-style
  /// precision-based early stop). <= 0 disables.
  int patience = 250;
};

/// sko.PSO equivalent.
core::Result run_scikit_opt_like(const core::Objective& objective,
                                 const core::PsoParams& params,
                                 const ScikitOptions& options = {});

/// Hussain et al. particle-per-thread GPU PSO on `device`.
core::Result run_gpu_pso(const core::Objective& objective,
                         const core::PsoParams& params, vgpu::Device& device);

/// Wachowiak et al. heterogeneous CPU+GPU PSO on `device`.
core::Result run_hgpu_pso(const core::Objective& objective,
                          const core::PsoParams& params, vgpu::Device& device);

}  // namespace fastpso::baselines
