#include "baselines/cost_model.h"

namespace fastpso::baselines {

void CostLedger::record_op(double bytes_read, double bytes_written,
                           int temporaries, double temp_bytes) {
  ++ops_;
  seconds_ += model_.dispatch_us * 1e-6;
  const double traffic = bytes_read + bytes_written;
  bytes_ += traffic;
  seconds_ += traffic / (model_.eff_bw_gbps * 1e9);
  if (temporaries > 0) {
    seconds_ += temporaries * model_.alloc_us * 1e-6;
    seconds_ +=
        temporaries * temp_bytes / (model_.first_touch_bw_gbps * 1e9);
  }
}

void CostLedger::record_python_loop(std::uint64_t iterations) {
  seconds_ += static_cast<double>(iterations) * model_.python_loop_ns * 1e-9;
}

void CostLedger::record_overhead_us(double us) { seconds_ += us * 1e-6; }

void CostLedger::reset() {
  seconds_ = 0;
  ops_ = 0;
  bytes_ = 0;
}

}  // namespace fastpso::baselines
