// Cost model for the Python-library baselines (pyswarms / scikit-opt).
//
// The paper compares FastPSO against these libraries running under CPython
// with NumPy. What makes them slow is not different mathematics — it is
// (a) per-vectorized-op interpreter/dispatch overhead, (b) a fresh temporary
// array per operator (allocation + first-touch traffic), and (c) the
// occasional explicit Python loop. We reimplement their exact update rules
// in C++ (so their Table 2 *errors* are genuine results of their
// algorithms) and charge modeled time through this ledger, whose constants
// are documented here and calibrated against the paper's Table 1 (DESIGN.md
// §1). Real wall-clock of the C++ re-implementation is also reported.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fastpso::baselines {

/// Constants of the CPython/NumPy machine model.
struct PyCostModel {
  /// Per-ufunc dispatch overhead (argument parsing, type resolution,
  /// broadcasting setup) in microseconds.
  double dispatch_us = 5.0;
  /// Effective streaming bandwidth of NumPy element-wise kernels over
  /// cache-cold temporaries (GB/s).
  double eff_bw_gbps = 8.0;
  /// Allocator overhead per temporary array (microseconds).
  double alloc_us = 2.0;
  /// First-touch (page-fault/zeroing) bandwidth for fresh temporaries
  /// (GB/s).
  double first_touch_bw_gbps = 20.0;
  /// Cost of one iteration of an explicit Python-level loop (nanoseconds).
  double python_loop_ns = 60.0;
};

/// Accumulates modeled seconds for a NumPy-style execution trace.
class CostLedger {
 public:
  CostLedger() = default;
  explicit CostLedger(PyCostModel model) : model_(model) {}

  /// One vectorized operator: `bytes_read`/`bytes_written` of array
  /// traffic, creating `temporaries` fresh arrays of `temp_bytes` each.
  void record_op(double bytes_read, double bytes_written, int temporaries = 1,
                 double temp_bytes = 0);

  /// `iterations` trips of an explicit Python loop.
  void record_python_loop(std::uint64_t iterations);

  /// Fixed interpreter overhead (per optimizer iteration bookkeeping).
  void record_overhead_us(double us);

  [[nodiscard]] double seconds() const { return seconds_; }
  [[nodiscard]] std::uint64_t ops() const { return ops_; }
  [[nodiscard]] double bytes_moved() const { return bytes_; }

  void reset();

 private:
  PyCostModel model_;
  double seconds_ = 0;
  std::uint64_t ops_ = 0;
  double bytes_ = 0;
};

}  // namespace fastpso::baselines
