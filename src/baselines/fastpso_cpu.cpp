// fastpso-seq and fastpso-omp: the CPU ports of FastPSO used in the paper
// to isolate the GPU contribution (Table 1, Figure 5).
//
// Both execute the identical four-step algorithm. Timing: wall-clock is
// measured on this machine; the paper-comparable modeled time comes from
// CpuPerfModel with the paper host's constants (dual Xeon E5-2640v4) — with
// threads=1 for the sequential version and threads=cores for the OpenMP
// version, whose speedup is bandwidth-limited exactly as the paper observes
// (fastpso-omp gains only ~1.3x over fastpso-seq despite 20 cores).

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#ifdef _OPENMP
#include <omp.h>
#endif

#include "baselines/baselines.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "core/swarm_update.h"
#include "rng/philox.h"
#include "rng/xoshiro.h"
#include "vgpu/perf_model.h"
#include "vgpu/prof/prof.h"

namespace fastpso::baselines {
namespace {

/// Modeled FLOP cost of one host RNG draw (xoshiro/Philox, amortized,
/// partially vectorized by the compiler).
constexpr double kCpuRngFlopsPerValue = 2.0;
/// Below this many elements the OpenMP fork/join costs more than the loop;
/// every parallel region here is element-independent (counter-based Philox,
/// fixed static partition), so running it on one thread produces bit-
/// identical results — only wall time changes.
constexpr std::size_t kOmpMinElements = std::size_t{1} << 15;
/// FLOPs of one element-wise velocity+position update.
constexpr double kUpdateFlopsPerElement = 10.0;

struct CpuSwarm {
  std::vector<float> p;
  std::vector<float> v;
  std::vector<float> l;
  std::vector<float> g;
  std::vector<float> pbest_pos;
  std::vector<float> pbest_err;
  std::vector<float> perror;
  std::vector<float> gbest_pos;
  float gbest = std::numeric_limits<float>::infinity();
};

core::Result run_fastpso_cpu(const core::Objective& objective,
                             const core::PsoParams& params, bool use_omp) {
  FASTPSO_CHECK(static_cast<bool>(objective.fn));
  const int n = params.particles;
  const int d = params.dim;
  const std::size_t elements = static_cast<std::size_t>(n) * d;

  const core::UpdateCoefficients coeff =
      core::make_coefficients(params, objective.lower, objective.upper);
  const float lo = static_cast<float>(objective.lower);
  const float hi = static_cast<float>(objective.upper);
  const float v_init = coeff.vmax > 0.0f ? coeff.vmax : (hi - lo);

  const vgpu::CpuPerfModel cpu(vgpu::xeon_e5_2640v4());
  const int model_threads = use_omp ? cpu.spec().cores : 1;

  TimeBreakdown wall;
  TimeBreakdown modeled;
  vgpu::prof::Profile profile;
  // Folds one modeled host region into both the Figure 5 breakdown and (when
  // profiling) the event timeline, with the *same* double so the profile's
  // per-phase sums reproduce the breakdown exactly.
  const auto account = [&](const char* phase, const char* label,
                           double seconds) {
    modeled.add(phase, seconds);
    if (vgpu::prof::active()) {
      profile.add_host(label, phase, seconds);
    }
  };
  Stopwatch total_watch;

  CpuSwarm s;
  s.p.resize(elements);
  s.v.resize(elements);
  s.l.resize(elements);
  s.g.resize(elements);
  s.pbest_pos.resize(elements);
  s.pbest_err.assign(n, std::numeric_limits<float>::infinity());
  s.perror.assign(n, 0.0f);
  s.gbest_pos.assign(d, 0.0f);

  // ---- Step (i): initialization --------------------------------------
  // seq draws sequentially from xoshiro; omp uses the counter-based
  // Philox streams so the result is identical for any thread count.
  rng::Xoshiro256 seq_rng(params.seed);
  const rng::PhiloxStream omp_pos(params.seed ^ 0xA5A5A5A5u, 0);
  const rng::PhiloxStream omp_vel(params.seed ^ 0xA5A5A5A5u, 1);
  {
    ScopedTimer timer(wall, "init");
    if (use_omp) {
      const std::size_t blocks = (elements + 3) / 4;
#pragma omp parallel for schedule(static) if (elements >= kOmpMinElements)
      for (std::size_t b = 0; b < blocks; ++b) {
        const auto rp = omp_pos.uniform4_at(b);
        const auto rv = omp_vel.uniform4_at(b);
        const std::size_t base = b * 4;
        for (int lane = 0; lane < 4 && base + lane < elements; ++lane) {
          s.p[base + lane] = lo + (hi - lo) * rp[lane];
          s.v[base + lane] = -v_init + 2.0f * v_init * rv[lane];
        }
      }
    } else {
      for (std::size_t i = 0; i < elements; ++i) {
        s.p[i] = lo + (hi - lo) * seq_rng.next_unit_float();
      }
      for (std::size_t i = 0; i < elements; ++i) {
        s.v[i] = -v_init + 2.0f * v_init * seq_rng.next_unit_float();
      }
    }
    std::copy(s.p.begin(), s.p.end(), s.pbest_pos.begin());
    account("init", "init/swarm_init",
            cpu.region_seconds(
                model_threads,
                kCpuRngFlopsPerValue * 2.0 * static_cast<double>(elements), 0,
                3.0 * static_cast<double>(elements) * sizeof(float)));
  }

  std::vector<float> gbest_history;
  gbest_history.reserve(static_cast<std::size_t>(params.max_iter));
  for (int iter = 0; iter < params.max_iter; ++iter) {
    // ---- Step (i) cont.: random-weight matrices L and G ----------------
    {
      ScopedTimer timer(wall, "init");
      if (use_omp) {
        const rng::PhiloxStream l_rng(params.seed ^ 0xA5A5A5A5u,
                                      2 + 2 * static_cast<std::uint64_t>(iter));
        const rng::PhiloxStream g_rng(params.seed ^ 0xA5A5A5A5u,
                                      3 + 2 * static_cast<std::uint64_t>(iter));
        const std::size_t blocks = (elements + 3) / 4;
#pragma omp parallel for schedule(static) if (elements >= kOmpMinElements)
        for (std::size_t b = 0; b < blocks; ++b) {
          const auto rl = l_rng.uniform4_at(b);
          const auto rg = g_rng.uniform4_at(b);
          const std::size_t base = b * 4;
          for (int lane = 0; lane < 4 && base + lane < elements; ++lane) {
            s.l[base + lane] = rl[lane];
            s.g[base + lane] = rg[lane];
          }
        }
      } else {
        for (std::size_t i = 0; i < elements; ++i) {
          s.l[i] = seq_rng.next_unit_float();
        }
        for (std::size_t i = 0; i < elements; ++i) {
          s.g[i] = seq_rng.next_unit_float();
        }
      }
      account("init", "init/weights",
              cpu.region_seconds(
                  model_threads,
                  kCpuRngFlopsPerValue * 2.0 * static_cast<double>(elements),
                  0, 2.0 * static_cast<double>(elements) * sizeof(float)));
    }

    // ---- Step (ii): evaluation ------------------------------------------
    {
      ScopedTimer timer(wall, "eval");
      if (objective.batch_fn) {
        // Devirtualized batch loop; under OpenMP each thread evaluates one
        // contiguous chunk (same schedule(static) partition as below, so
        // each out[i] is written by the same math either way).
#ifdef _OPENMP
        if (use_omp) {
          // One thread evaluates begin==0, end==n: the same batch call the
          // serial path makes, so the if() clause cannot change results.
#pragma omp parallel if (elements >= kOmpMinElements)
          {
            const int threads = omp_get_num_threads();
            const int tid = omp_get_thread_num();
            const int chunk = (n + threads - 1) / threads;
            const int begin = std::min(n, tid * chunk);
            const int end = std::min(n, begin + chunk);
            if (end > begin) {
              objective.batch_fn(
                  s.p.data() + static_cast<std::size_t>(begin) * d,
                  end - begin, d, s.perror.data() + begin);
            }
          }
        } else {
          objective.batch_fn(s.p.data(), n, d, s.perror.data());
        }
#else
        objective.batch_fn(s.p.data(), n, d, s.perror.data());
#endif
      } else {
#pragma omp parallel for schedule(static) \
    if (use_omp && elements >= kOmpMinElements)
        for (int i = 0; i < n; ++i) {
          s.perror[i] =
              static_cast<float>(objective.fn(s.p.data() + i * d, d));
        }
      }
      account("eval", "eval/objective",
              cpu.region_seconds(
                  model_threads, objective.cost.flops(d) * n,
                  objective.cost.transcendentals(d) * n,
                  static_cast<double>(elements + n) * sizeof(float)));
    }

    // ---- Step (iii): pbest + gbest ---------------------------------------
    std::size_t improved = 0;
    {
      ScopedTimer timer(wall, "pbest");
#pragma omp parallel for schedule(static) reduction(+ : improved) \
    if (use_omp && elements >= kOmpMinElements)
      for (int i = 0; i < n; ++i) {
        if (s.perror[i] < s.pbest_err[i]) {
          s.pbest_err[i] = s.perror[i];
          std::copy(s.p.begin() + static_cast<std::ptrdiff_t>(i) * d,
                    s.p.begin() + static_cast<std::ptrdiff_t>(i + 1) * d,
                    s.pbest_pos.begin() + static_cast<std::ptrdiff_t>(i) * d);
          ++improved;
        }
      }
      account("pbest", "pbest/update",
              cpu.region_seconds(
                  model_threads, static_cast<double>(n), 0,
                  (2.0 * n + 2.0 * static_cast<double>(improved) * d) *
                      sizeof(float)));
    }
    {
      ScopedTimer timer(wall, "gbest");
      int best_i = -1;
      float best = s.gbest;
      for (int i = 0; i < n; ++i) {
        if (s.pbest_err[i] < best) {
          best = s.pbest_err[i];
          best_i = i;
        }
      }
      if (best_i >= 0) {
        s.gbest = best;
        std::copy(
            s.pbest_pos.begin() + static_cast<std::ptrdiff_t>(best_i) * d,
            s.pbest_pos.begin() + static_cast<std::ptrdiff_t>(best_i + 1) * d,
            s.gbest_pos.begin());
      }
      account("gbest", "gbest/scan",
              cpu.region_seconds(1, static_cast<double>(n), 0,
                                 static_cast<double>(n) * sizeof(float)));
      gbest_history.push_back(s.gbest);
    }

    // ---- Step (iv): swarm update ------------------------------------------
    {
      ScopedTimer timer(wall, "swarm");
      const core::UpdateCoefficients it_coeff =
          core::coefficients_for_iter(coeff, params, iter);
#pragma omp parallel for schedule(static) \
    if (use_omp && elements >= kOmpMinElements)
      for (std::size_t i = 0; i < elements; ++i) {
        const int col = static_cast<int>(i % d);
        float nv = it_coeff.omega * s.v[i] +
                   it_coeff.c1 * s.l[i] * (s.pbest_pos[i] - s.p[i]) +
                   it_coeff.c2 * s.g[i] * (s.gbest_pos[col] - s.p[i]);
        if (it_coeff.vmax > 0.0f) {
          nv = std::clamp(nv, -it_coeff.vmax, it_coeff.vmax);
        }
        s.v[i] = nv;
        float np = s.p[i] + nv;
        if (coeff.clamp_position) {
          np = std::clamp(np, coeff.pos_lower, coeff.pos_upper);
        }
        s.p[i] = np;
      }
      account("swarm", "swarm/update",
              cpu.region_seconds(
                  model_threads,
                  kUpdateFlopsPerElement * static_cast<double>(elements), 0,
                  7.0 * static_cast<double>(elements) * sizeof(float)));
    }
  }

  core::Result result;
  result.gbest_value = s.gbest;
  result.gbest_position = s.gbest_pos;
  result.gbest_history = std::move(gbest_history);
  result.iterations = params.max_iter;
  result.wall_seconds = total_watch.elapsed_s();
  result.wall_breakdown = wall;
  result.modeled_breakdown = modeled;
  result.modeled_seconds = modeled.total();
  result.profile = std::move(profile);
  return result;
}

}  // namespace

core::Result run_fastpso_seq(const core::Objective& objective,
                             const core::PsoParams& params) {
  return run_fastpso_cpu(objective, params, /*use_omp=*/false);
}

core::Result run_fastpso_omp(const core::Objective& objective,
                             const core::PsoParams& params) {
  return run_fastpso_cpu(objective, params, /*use_omp=*/true);
}

}  // namespace fastpso::baselines
