// gpu-pso: re-implementation of Hussain, Hattori & Fujimoto (SYNASC 2016),
// "A CUDA implementation of the standard particle swarm optimization" — the
// state-of-the-art GPU baseline the paper compares against.
//
// Design points reproduced from their system:
//   * particle-level parallelism: ONE THREAD PER PARTICLE, each thread
//     serially walking its particle's d dimensions for the update — the
//     granularity FastPSO's element-wise modeling replaces. At n=5000 the
//     launch keeps only a few warps per SM resident, so the performance
//     model's occupancy terms throttle both bandwidth and compute (the
//     mechanism behind the paper's 5-7x gap);
//   * particle-major [n][d] array layout, natural for per-particle threads:
//     consecutive threads touch addresses d*4 bytes apart, so the update
//     kernel's matrix accesses are UNCOALESCED (declared through
//     stride_amplification — reads fetch a full sector per element; writes
//     merge partially in L2, modeled at half the read amplification);
//   * their headline optimization — coalesced memory for the fitness
//     evaluation — is honored: the evaluation kernel is charged at
//     amplification 1;
//   * per-thread inline cuRAND-style randoms (counter-based Philox here),
//     so no L/G matrices are materialized;
//   * standard-PSO velocity clamping (their implementation follows
//     Clerc's SPSO), hence Table 2 errors comparable to FastPSO's.

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "baselines/baselines.h"
#include "common/stopwatch.h"
#include "core/recorder.h"
#include "core/swarm_update.h"
#include "rng/philox.h"
#include "vgpu/buffer.h"
#include "vgpu/graph/graph.h"
#include "vgpu/prof/prof.h"
#include "vgpu/reduce.h"

namespace fastpso::baselines {
namespace {

constexpr int kBlock = 256;

}  // namespace

core::Result run_gpu_pso(const core::Objective& objective,
                         const core::PsoParams& params,
                         vgpu::Device& device) {
  const int n = params.particles;
  const int d = params.dim;
  const std::int64_t elements = static_cast<std::int64_t>(n) * d;

  device.reset_counters();
  const core::UpdateCoefficients coeff =
      core::make_coefficients(params, objective.lower, objective.upper);
  const float lo = static_cast<float>(objective.lower);
  const float hi = static_cast<float>(objective.upper);
  const float v_init = coeff.vmax > 0.0f ? coeff.vmax : (hi - lo);

  Stopwatch watch;
  TimeBreakdown wall;

  // One thread per particle throughout — the defining launch shape.
  vgpu::LaunchConfig per_particle;
  per_particle.block = kBlock;
  per_particle.grid = (n + kBlock - 1) / kBlock;

  // Uncoalesced amplification of the particle-major layout.
  const double read_amp = vgpu::stride_amplification(d, sizeof(float));
  const double write_amp = std::max(1.0, read_amp / 2.0);  // L2 write merge

  device.set_phase("init");
  vgpu::DeviceArray<float> pos(device, elements);
  vgpu::DeviceArray<float> vel(device, elements);
  vgpu::DeviceArray<float> pbest_pos(device, elements);
  vgpu::DeviceArray<float> pbest_err(device, n);
  vgpu::DeviceArray<float> perror(device, n);
  vgpu::DeviceArray<float> gbest_pos(device, d);
  float gbest = std::numeric_limits<float>::infinity();

  const rng::PhiloxStream init_rng(params.seed + 0x517CC1B7u, 0);
  {
    ScopedTimer timer(wall, "init");
    vgpu::prof::KernelLabel label("gpu_pso/init");
    vgpu::KernelCostSpec cost;
    cost.flops = (13.0 * 2.0 + 4.0) * static_cast<double>(elements);
    cost.dram_write_bytes = 3.0 * static_cast<double>(elements) *
                            sizeof(float);
    cost.write_amplification = write_amp;
    float* p = pos.data();
    float* v = vel.data();
    float* pb = pbest_pos.data();
    float* pe = pbest_err.data();
    device.launch_elements(per_particle, cost, n, [&](std::int64_t i) {
      for (int j = 0; j < d; ++j) {
        const std::uint64_t e = static_cast<std::uint64_t>(i) * d + j;
        const auto r = init_rng.uniform_pair_at(e);
        p[i * d + j] = lo + (hi - lo) * r[0];
        v[i * d + j] = -v_init + 2.0f * v_init * r[1];
        pb[i * d + j] = p[i * d + j];
      }
      pe[i] = std::numeric_limits<float>::infinity();
    });
  }

  // Loop-invariant launch setup, hoisted out of the iteration loop: the
  // kernels' cost declarations (only pbest's traffic is data-dependent) and
  // the gbest-copy shape are identical every iteration.
  vgpu::KernelCostSpec eval_cost;
  eval_cost.flops = objective.cost.flops(d) * n;
  eval_cost.transcendentals = objective.cost.transcendentals(d) * n;
  eval_cost.dram_read_bytes = static_cast<double>(elements) * sizeof(float);
  eval_cost.dram_write_bytes = static_cast<double>(n) * sizeof(float);

  vgpu::KernelCostSpec pbest_cost;
  pbest_cost.flops = static_cast<double>(n);
  pbest_cost.read_amplification = read_amp;
  pbest_cost.write_amplification = write_amp;

  vgpu::LaunchConfig gbest_cfg;
  gbest_cfg.grid = 1;
  gbest_cfg.block = std::min(d, device.spec().max_threads_per_block);
  vgpu::KernelCostSpec gbest_cost;
  gbest_cost.dram_read_bytes = static_cast<double>(d) * sizeof(float);
  gbest_cost.dram_write_bytes = static_cast<double>(d) * sizeof(float);

  vgpu::KernelCostSpec swarm_cost;
  swarm_cost.flops = (10.0 + 2.0 * 13.0) * static_cast<double>(elements);
  swarm_cost.dram_read_bytes =
      (3.0 * static_cast<double>(elements) + d) * sizeof(float);
  swarm_cost.dram_write_bytes =
      2.0 * static_cast<double>(elements) * sizeof(float);
  swarm_cost.read_amplification = read_amp;
  swarm_cost.write_amplification = write_amp;

  // Capture/replay of the steady-state loop (vgpu/graph; FASTPSO_GRAPH=1,
  // with FASTPSO_FUSE=1 additionally fusing the eval→pbest pair).
  auto recorder = core::make_iteration_recorder(device);

  for (int iter = 0; iter < params.max_iter; ++iter) {
    recorder.begin_iteration();
    // ---- fitness evaluation (their coalesced kernel) --------------------
    {
      ScopedTimer timer(wall, "eval");
      device.set_phase("eval");
      vgpu::prof::KernelLabel label("gpu_pso/eval");
      const float* p = pos.data();
      float* pe = perror.data();
      if (vgpu::use_fast_path() && objective.batch_fn) {
        device.account_launch(per_particle, eval_cost);
        objective.batch_fn(p, n, d, pe);
      } else {
        device.launch(per_particle, eval_cost,
                      [&](const vgpu::ThreadCtx& t) {
          const std::int64_t i = t.global_id();
          if (i < n) {
            pe[i] = static_cast<float>(objective.fn(p + i * d, d));
          }
        });
      }
      // Fusion footprint (vgpu/graph/fusion.h): per-particle elements; the
      // perror hand-off to the pbest kernel is this baseline's one fusible
      // producer/consumer pair.
      if (device.capturing()) {
        device.graph_note_elements(n);
        device.graph_note_uses(
            {{p, static_cast<double>(elements) * sizeof(float),
              static_cast<std::int64_t>(d * sizeof(float)), /*write=*/false,
              "pos"},
             {pe, static_cast<double>(n) * sizeof(float), sizeof(float),
              /*write=*/true, "perror"}});
      }
    }

    // ---- pbest update (uncoalesced row copies) ----------------------------
    std::int64_t improved = 0;
    {
      ScopedTimer timer(wall, "pbest");
      device.set_phase("pbest");
      vgpu::prof::KernelLabel label("gpu_pso/pbest");
      // Count improvements first so the traffic declaration is honest.
      for (int i = 0; i < n; ++i) {
        improved += perror[i] < pbest_err[i] ? 1 : 0;
      }
      vgpu::KernelCostSpec cost = pbest_cost;
      cost.dram_read_bytes =
          2.0 * n * sizeof(float) +
          static_cast<double>(improved) * d * sizeof(float);
      cost.dram_write_bytes =
          n * sizeof(float) +
          static_cast<double>(improved) * d * sizeof(float);
      const float* p = pos.data();
      float* pb = pbest_pos.data();
      float* pe = perror.data();
      float* pbe = pbest_err.data();
      device.launch_elements(per_particle, cost, n, [&](std::int64_t i) {
        if (pe[i] < pbe[i]) {
          pbe[i] = pe[i];
          for (int j = 0; j < d; ++j) {
            pb[i * d + j] = p[i * d + j];
          }
        }
      });
      if (device.capturing()) {
        device.graph_note_uses(
            {{pe, static_cast<double>(n) * sizeof(float), sizeof(float),
              /*write=*/false, "perror"},
             {pbe, static_cast<double>(n) * sizeof(float), sizeof(float),
              /*write=*/false, "pbest_err"},
             {pbe, static_cast<double>(n) * sizeof(float), sizeof(float),
              /*write=*/true, "pbest_err"},
             {p, static_cast<double>(elements) * sizeof(float),
              static_cast<std::int64_t>(d * sizeof(float)), /*write=*/false,
              "pos"},
             {pb, static_cast<double>(elements) * sizeof(float),
              static_cast<std::int64_t>(d * sizeof(float)), /*write=*/true,
              "pbest_pos"}});
      }
    }

    // ---- gbest (parallel reduction + row copy) ------------------------------
    {
      ScopedTimer timer(wall, "gbest");
      device.set_phase("gbest");
      const vgpu::ArgMin best =
          vgpu::reduce_argmin(device, pbest_err.data(), n);
      if (best.value < gbest) {
        gbest = best.value;
        vgpu::prof::KernelLabel label("gpu_pso/gbest_copy");
        const float* src = pbest_pos.data() + best.index * d;
        float* dst = gbest_pos.data();
        device.launch_elements(gbest_cfg, gbest_cost, d,
                               [&](std::int64_t j) {
          dst[j] = src[j];
        });
        if (device.capturing()) {
          device.graph_note_uses(
              {{src, static_cast<double>(d) * sizeof(float), sizeof(float),
                /*write=*/false, "gbest_src_row"},
               {dst, static_cast<double>(d) * sizeof(float), sizeof(float),
                /*write=*/true, "gbest_pos"}});
        }
      }
    }

    // ---- swarm update: per-particle serial d-loop, inline randoms ----------
    {
      ScopedTimer timer(wall, "swarm");
      device.set_phase("swarm");
      vgpu::prof::KernelLabel label("gpu_pso/swarm");
      const rng::PhiloxStream iter_rng(
          params.seed + 0x517CC1B7u,
          2 + static_cast<std::uint64_t>(iter));
      const core::UpdateCoefficients it_coeff =
          core::coefficients_for_iter(coeff, params, iter);
      float* p = pos.data();
      float* v = vel.data();
      const float* pb = pbest_pos.data();
      const float* gb = gbest_pos.data();
      device.launch_elements(per_particle, swarm_cost, n,
                             [&](std::int64_t i) {
        for (int j = 0; j < d; ++j) {
          const std::int64_t e = i * d + j;
          const auto r = iter_rng.uniform_pair_at(static_cast<std::uint64_t>(e));
          const float r1 = r[0];
          const float r2 = r[1];
          float nv = it_coeff.omega * v[e] +
                     it_coeff.c1 * r1 * (pb[e] - p[e]) +
                     it_coeff.c2 * r2 * (gb[j] - p[e]);
          if (it_coeff.vmax > 0.0f) {
            nv = std::clamp(nv, -it_coeff.vmax, it_coeff.vmax);
          }
          v[e] = nv;
          p[e] += nv;
        }
      });
      if (device.capturing()) {
        const double mat_bytes =
            static_cast<double>(elements) * sizeof(float);
        const std::int64_t row_elem = static_cast<std::int64_t>(d * sizeof(float));
        device.graph_note_uses(
            {{v, mat_bytes, row_elem, /*write=*/false, "vel"},
             {v, mat_bytes, row_elem, /*write=*/true, "vel"},
             {p, mat_bytes, row_elem, /*write=*/false, "pos"},
             {p, mat_bytes, row_elem, /*write=*/true, "pos"},
             {pb, mat_bytes, row_elem, /*write=*/false, "pbest_pos"},
             {gb, static_cast<double>(d) * sizeof(float), 0,
              /*write=*/false, "gbest_pos"}});
      }
    }
    recorder.end_iteration();
  }

  core::Result result;
  result.gbest_value = gbest;
  result.gbest_position.resize(d);
  gbest_pos.download(result.gbest_position);
  result.iterations = params.max_iter;
  result.wall_seconds = watch.elapsed_s();
  result.wall_breakdown = wall;
  result.modeled_breakdown = device.modeled_breakdown();
  result.modeled_seconds = device.modeled_seconds();
  result.counters = device.counters();
  result.profile = device.take_profile();
  core::export_recorder_stats(recorder, result);
  return result;
}

}  // namespace fastpso::baselines
