// hgpu-pso: re-implementation of Wachowiak, Timson & DuVal (IEEE TPDS 2017),
// "Adaptive particle swarm optimization with heterogeneous multicore
// parallelism and GPU acceleration".
//
// Architecture reproduced: fitness evaluation runs on the GPU (coalesced —
// their kernels are tuned), while the swarm logic — pbest/gbest bookkeeping,
// adaptive control and the velocity/position update — runs on the multicore
// CPU with OpenMP. Positions therefore cross PCIe every iteration:
// H2D before evaluation, D2H of the fitness vector after. The per-iteration
// transfer plus the memory-bound CPU update is what keeps this baseline
// behind the pure-GPU gpu-pso in the paper's Table 1 (6.0 s vs 4.9 s on
// Sphere) even though its evaluation kernel is better optimized.
//
// Modeled time: GPU phases and transfers through the device model; CPU
// phases through CpuPerfModel at the paper host's 20 cores.

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "baselines/baselines.h"
#include "common/stopwatch.h"
#include "core/recorder.h"
#include "core/swarm_update.h"
#include "rng/philox.h"
#include "vgpu/buffer.h"
#include "vgpu/graph/graph.h"
#include "vgpu/perf_model.h"
#include "vgpu/prof/prof.h"

namespace fastpso::baselines {
namespace {

constexpr int kBlock = 256;
constexpr double kCpuRngFlopsPerValue = 2.0;
/// Below this many elements the OpenMP fork/join costs more than the update
/// loop; every element's (r1, r2) comes from the counter-based Philox at its
/// own index, so the thread count cannot change any result.
constexpr std::size_t kOmpMinElements = std::size_t{1} << 15;

}  // namespace

core::Result run_hgpu_pso(const core::Objective& objective,
                          const core::PsoParams& params,
                          vgpu::Device& device) {
  const int n = params.particles;
  const int d = params.dim;
  const std::size_t elements = static_cast<std::size_t>(n) * d;

  device.reset_counters();
  const core::UpdateCoefficients coeff =
      core::make_coefficients(params, objective.lower, objective.upper);
  const float lo = static_cast<float>(objective.lower);
  const float hi = static_cast<float>(objective.upper);
  const float v_init = coeff.vmax > 0.0f ? coeff.vmax : (hi - lo);

  const vgpu::CpuPerfModel cpu(vgpu::xeon_e5_2640v4());
  const int cores = cpu.spec().cores;

  Stopwatch watch;
  TimeBreakdown wall;
  TimeBreakdown modeled_cpu;
  vgpu::prof::Profile cpu_profile;
  // The CPU half's modeled regions, mirrored into a host-event timeline
  // when profiling (the same doubles modeled_cpu accumulates).
  const auto account_cpu = [&](const char* phase, const char* label,
                               double seconds, double flops = 0) {
    modeled_cpu.add(phase, seconds);
    if (vgpu::prof::active()) {
      cpu_profile.add_host(label, phase, seconds, flops);
    }
  };
  double cpu_flops = 0;  // algorithm flops executed host-side

  // Host-side swarm (CPU owns the state).
  std::vector<float> pos(elements);
  std::vector<float> vel(elements);
  std::vector<float> pbest_pos(elements);
  std::vector<float> pbest_err(n, std::numeric_limits<float>::infinity());
  std::vector<float> perror(n, 0.0f);
  std::vector<float> gbest_pos(d, 0.0f);
  float gbest = std::numeric_limits<float>::infinity();

  // Device-side staging for the evaluation kernel.
  device.set_phase("init");
  vgpu::DeviceArray<float> d_pos(device, elements);
  vgpu::DeviceArray<float> d_err(device, n);

  const rng::PhiloxStream init_rng(params.seed + 0x2545F491u, 0);
  {
    ScopedTimer timer(wall, "init");
    for (std::size_t i = 0; i < elements; ++i) {
      const auto r = init_rng.uniform_pair_at(i);
      pos[i] = lo + (hi - lo) * r[0];
      vel[i] = -v_init + 2.0f * v_init * r[1];
    }
    pbest_pos = pos;
    cpu_flops += kCpuRngFlopsPerValue * 2.0 * static_cast<double>(elements);
    account_cpu(
        "init", "hgpu/cpu_init",
        cpu.region_seconds(
            cores, kCpuRngFlopsPerValue * 2.0 * static_cast<double>(elements),
            0, 3.0 * static_cast<double>(elements) * sizeof(float)),
        kCpuRngFlopsPerValue * 2.0 * static_cast<double>(elements));
  }

  vgpu::LaunchConfig per_particle;
  per_particle.block = kBlock;
  per_particle.grid = (n + kBlock - 1) / kBlock;

  // Loop-invariant evaluation cost, hoisted out of the iteration loop.
  vgpu::KernelCostSpec eval_cost;
  eval_cost.flops = objective.cost.flops(d) * n;
  eval_cost.transcendentals = objective.cost.transcendentals(d) * n;
  eval_cost.dram_read_bytes = static_cast<double>(elements) * sizeof(float);
  eval_cost.dram_write_bytes = static_cast<double>(n) * sizeof(float);

  // Capture/replay of the device half of the loop (H2D, eval kernel, D2H);
  // the CPU phases account through modeled_cpu either way. Fusion finds no
  // legal group here — the lone eval kernel sits between two memcpys — so
  // FASTPSO_FUSE=1 degenerates to plain capture (FusionStats.groups == 0).
  auto recorder = core::make_iteration_recorder(device);

  for (int iter = 0; iter < params.max_iter; ++iter) {
    recorder.begin_iteration();
    // ---- GPU evaluation: H2D positions, eval kernel, D2H fitness ---------
    {
      ScopedTimer timer(wall, "eval");
      device.set_phase("eval");
      vgpu::prof::KernelLabel label("hgpu/eval");
      d_pos.upload(pos);
      const float* p = d_pos.data();
      float* pe = d_err.data();
      if (vgpu::use_fast_path() && objective.batch_fn) {
        device.account_launch(per_particle, eval_cost);
        objective.batch_fn(p, n, d, pe);
      } else {
        device.launch(per_particle, eval_cost,
                      [&](const vgpu::ThreadCtx& t) {
          const std::int64_t i = t.global_id();
          if (i < n) {
            pe[i] = static_cast<float>(objective.fn(p + i * d, d));
          }
        });
      }
      // Fusion footprint (vgpu/graph/fusion.h); declared for uniformity —
      // the surrounding memcpys keep this node groupless.
      if (device.capturing()) {
        device.graph_note_elements(n);
        device.graph_note_uses(
            {{p, static_cast<double>(elements) * sizeof(float),
              static_cast<std::int64_t>(d * sizeof(float)), /*write=*/false,
              "d_pos"},
             {pe, static_cast<double>(n) * sizeof(float), sizeof(float),
              /*write=*/true, "d_err"}});
      }
      d_err.download(perror);
    }

    // ---- CPU: pbest --------------------------------------------------------
    std::size_t improved = 0;
    {
      ScopedTimer timer(wall, "pbest");
      for (int i = 0; i < n; ++i) {
        if (perror[i] < pbest_err[i]) {
          pbest_err[i] = perror[i];
          std::copy(pos.begin() + static_cast<std::ptrdiff_t>(i) * d,
                    pos.begin() + static_cast<std::ptrdiff_t>(i + 1) * d,
                    pbest_pos.begin() + static_cast<std::ptrdiff_t>(i) * d);
          ++improved;
        }
      }
      account_cpu(
          "pbest", "hgpu/cpu_pbest",
          cpu.region_seconds(
              cores, static_cast<double>(n), 0,
              (2.0 * n + 2.0 * static_cast<double>(improved) * d) *
                  sizeof(float)));
    }

    // ---- CPU: gbest ---------------------------------------------------------
    {
      ScopedTimer timer(wall, "gbest");
      int best_i = -1;
      float best = gbest;
      for (int i = 0; i < n; ++i) {
        if (pbest_err[i] < best) {
          best = pbest_err[i];
          best_i = i;
        }
      }
      if (best_i >= 0) {
        gbest = best;
        std::copy(
            pbest_pos.begin() + static_cast<std::ptrdiff_t>(best_i) * d,
            pbest_pos.begin() + static_cast<std::ptrdiff_t>(best_i + 1) * d,
            gbest_pos.begin());
      }
      account_cpu("gbest", "hgpu/cpu_gbest",
                  cpu.region_seconds(1, static_cast<double>(n), 0,
                                     static_cast<double>(n) * sizeof(float)));
    }

    // ---- CPU: OpenMP swarm update (inline randoms) ---------------------------
    {
      ScopedTimer timer(wall, "swarm");
      const rng::PhiloxStream iter_rng(
          params.seed + 0x2545F491u, 2 + static_cast<std::uint64_t>(iter));
      const core::UpdateCoefficients it_coeff =
          core::coefficients_for_iter(coeff, params, iter);
#pragma omp parallel for schedule(static) if (elements >= kOmpMinElements)
      for (std::size_t e = 0; e < elements; ++e) {
        const int j = static_cast<int>(e % d);
        const auto rr = iter_rng.uniform_pair_at(e);
        const float r1 = rr[0];
        const float r2 = rr[1];
        float nv = it_coeff.omega * vel[e] +
                   it_coeff.c1 * r1 * (pbest_pos[e] - pos[e]) +
                   it_coeff.c2 * r2 * (gbest_pos[j] - pos[e]);
        if (it_coeff.vmax > 0.0f) {
          nv = std::clamp(nv, -it_coeff.vmax, it_coeff.vmax);
        }
        vel[e] = nv;
        pos[e] += nv;
      }
      cpu_flops += (10.0 + 2.0 * kCpuRngFlopsPerValue) *
                   static_cast<double>(elements);
      account_cpu(
          "swarm", "hgpu/cpu_swarm",
          cpu.region_seconds(
              cores,
              (10.0 + 2.0 * kCpuRngFlopsPerValue) *
                  static_cast<double>(elements),
              0, 5.0 * static_cast<double>(elements) * sizeof(float)),
          (10.0 + 2.0 * kCpuRngFlopsPerValue) * static_cast<double>(elements));
    }
    recorder.end_iteration();
  }

  core::Result result;
  result.gbest_value = gbest;
  result.gbest_position = gbest_pos;
  result.iterations = params.max_iter;
  result.wall_seconds = watch.elapsed_s();
  result.wall_breakdown = wall;
  result.modeled_breakdown = device.modeled_breakdown();
  result.modeled_breakdown.merge(modeled_cpu);
  result.modeled_seconds = result.modeled_breakdown.total();
  result.counters = device.counters();
  result.counters.flops += cpu_flops;
  // Device events first, then the CPU half's host regions. The combined
  // modeled total can differ from merge()'s by ulps (different addition
  // order); hgpu is not part of the exact-parity contract.
  result.profile = device.take_profile();
  for (auto& e : cpu_profile.events) {
    result.profile.events.push_back(std::move(e));
  }
  core::export_recorder_stats(recorder, result);
  return result;
}

}  // namespace fastpso::baselines
