#include "baselines/ndarray.h"

#include <algorithm>
#include <cmath>

namespace fastpso::baselines {
namespace {

NdArray binary_op(CostLedger& ledger, const NdArray& a, const NdArray& b,
                  double (*op)(double, double)) {
  FASTPSO_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  NdArray out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = op(a[i], b[i]);
  }
  ledger.record_op(a.bytes() + b.bytes(), out.bytes(), /*temporaries=*/1,
                   out.bytes());
  return out;
}

}  // namespace

NdArray add(CostLedger& ledger, const NdArray& a, const NdArray& b) {
  return binary_op(ledger, a, b, [](double x, double y) { return x + y; });
}

NdArray sub(CostLedger& ledger, const NdArray& a, const NdArray& b) {
  return binary_op(ledger, a, b, [](double x, double y) { return x - y; });
}

NdArray mul(CostLedger& ledger, const NdArray& a, const NdArray& b) {
  return binary_op(ledger, a, b, [](double x, double y) { return x * y; });
}

NdArray scale(CostLedger& ledger, const NdArray& a, double s) {
  NdArray out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] * s;
  }
  ledger.record_op(a.bytes(), out.bytes(), 1, out.bytes());
  return out;
}

NdArray sub_rowvec(CostLedger& ledger, const NdArray& a,
                   const std::vector<double>& row) {
  FASTPSO_CHECK(row.size() == a.cols());
  NdArray out(a.rows(), a.cols());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    for (std::size_t c = 0; c < a.cols(); ++c) {
      out(r, c) = a(r, c) - row[c];
    }
  }
  ledger.record_op(a.bytes(), out.bytes(), 1, out.bytes());
  return out;
}

void iadd(CostLedger& ledger, NdArray& a, const NdArray& b) {
  FASTPSO_CHECK(a.rows() == b.rows() && a.cols() == b.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] += b[i];
  }
  ledger.record_op(a.bytes() + b.bytes(), a.bytes(), /*temporaries=*/0);
}

NdArray clip(CostLedger& ledger, const NdArray& a, double lo, double hi) {
  NdArray out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = std::clamp(a[i], lo, hi);
  }
  ledger.record_op(a.bytes(), out.bytes(), 1, out.bytes());
  return out;
}

NdArray wrap_periodic(CostLedger& ledger, const NdArray& a, double lo,
                      double hi) {
  const double width = hi - lo;
  FASTPSO_CHECK(width > 0);
  NdArray out(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.size(); ++i) {
    double x = a[i];
    if (x < lo || x > hi) {
      x = lo + std::fmod(std::fmod(x - lo, width) + width, width);
    }
    out[i] = x;
  }
  ledger.record_op(a.bytes(), out.bytes(), 1, out.bytes());
  return out;
}

std::size_t argmin(CostLedger& ledger, const std::vector<double>& v) {
  FASTPSO_CHECK(!v.empty());
  ledger.record_op(static_cast<double>(v.size()) * sizeof(double), 0, 0);
  return static_cast<std::size_t>(
      std::min_element(v.begin(), v.end()) - v.begin());
}

}  // namespace fastpso::baselines
