// A miniature NumPy: 2-D double arrays whose operations (a) really compute
// and (b) charge a CostLedger the way the corresponding NumPy ufunc would
// (dispatch + traffic + temporary allocation). The pyswarms-like and
// scikit-opt-like baselines are written against this, so their execution
// trace *is* the NumPy trace of the original libraries.
//
// Operations are free functions taking the ledger explicitly; every
// value-returning op materializes a fresh temporary, as NumPy expressions
// do (no expression fusion — that is the point).
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "baselines/cost_model.h"
#include "common/check.h"

namespace fastpso::baselines {

/// Row-major (rows x cols) double array.
class NdArray {
 public:
  NdArray() = default;
  NdArray(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }
  [[nodiscard]] double bytes() const {
    return static_cast<double>(size()) * sizeof(double);
  }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }

  [[nodiscard]] double* data() { return data_.data(); }
  [[nodiscard]] const double* data() const { return data_.data(); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// ---- element-wise binary ops (fresh temporary, like NumPy) --------------
NdArray add(CostLedger& ledger, const NdArray& a, const NdArray& b);
NdArray sub(CostLedger& ledger, const NdArray& a, const NdArray& b);
NdArray mul(CostLedger& ledger, const NdArray& a, const NdArray& b);

// ---- scalar ops -----------------------------------------------------------
NdArray scale(CostLedger& ledger, const NdArray& a, double s);

// ---- broadcast: combine (n, d) with a (d,) row vector ----------------------
NdArray sub_rowvec(CostLedger& ledger, const NdArray& a,
                   const std::vector<double>& row);

// ---- in-place ops (NumPy += — no temporary) -------------------------------
void iadd(CostLedger& ledger, NdArray& a, const NdArray& b);

// ---- fills -----------------------------------------------------------------
/// Fills with U(lo, hi) using the supplied generator; models
/// np.random.uniform (one pass + temporary). Template so the per-element
/// generator call inlines — the ledger charge (the modeled cost) is the same
/// as any indirect version would record.
template <typename NextUnit>
void fill_uniform(CostLedger& ledger, NdArray& a, double lo, double hi,
                  NextUnit&& next_unit) {
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = lo + (hi - lo) * next_unit();
  }
  ledger.record_op(0, a.bytes(), 1, a.bytes());
}

// ---- clipping / wrapping ----------------------------------------------------
/// np.clip to [lo, hi] (fresh temporary).
NdArray clip(CostLedger& ledger, const NdArray& a, double lo, double hi);
/// pyswarms "periodic" bound handling: wrap out-of-bounds coordinates back
/// into [lo, hi) modulo the domain width (fresh temporary).
NdArray wrap_periodic(CostLedger& ledger, const NdArray& a, double lo,
                      double hi);

// ---- reductions -------------------------------------------------------------
/// Row-wise reduction to an (n,)-vector using `fold` over each row; models
/// np.sum/np.prod(axis=1): one pass + small temporary. Used by the
/// vectorized objective evaluations. Template for the same reason as
/// fill_uniform.
template <typename Fold>
std::vector<double> reduce_rows(CostLedger& ledger, const NdArray& a,
                                Fold&& fold) {
  std::vector<double> out(a.rows());
  for (std::size_t r = 0; r < a.rows(); ++r) {
    out[r] = fold(a.data() + r * a.cols(), a.cols());
  }
  ledger.record_op(a.bytes(),
                   static_cast<double>(a.rows()) * sizeof(double), 1,
                   static_cast<double>(a.rows()) * sizeof(double));
  return out;
}

/// Index of the minimum of a vector (np.argmin: one pass).
std::size_t argmin(CostLedger& ledger, const std::vector<double>& v);

}  // namespace fastpso::baselines
