// pyswarms.single.GlobalBestPSO re-implementation (Miranda 2018), following
// the library's default behaviour as configured in the paper's experiments:
//
//   * NumPy-vectorized update over the whole (n, d) swarm, one temporary
//     per operator (mini-ndarray + CostLedger model the CPython side);
//   * NO velocity clamping (pyswarms' default VelocityHandler is
//     "unmodified") — with the paper's omega=0.9, c1=c2=2 the velocities
//     diverge, which is exactly why pyswarms' Table 2 errors are O(10^3);
//   * "periodic" position bound handling: out-of-domain coordinates wrap
//     around the domain;
//   * float64 throughout (NumPy default dtype).
//
// Every numeric result is computed for real; modeled time comes from the
// recorded NumPy execution trace (see baselines/cost_model.h).

#include <cmath>
#include <limits>
#include <vector>

#include "baselines/baselines.h"
#include "baselines/ndarray.h"
#include "common/stopwatch.h"
#include "rng/xoshiro.h"
#include "vgpu/prof/prof.h"

namespace fastpso::baselines {
namespace {

/// Charges the ledger for one vectorized objective evaluation over (n, d):
/// `passes` whole-array traversals, as the NumPy expression would make.
void charge_vectorized_eval(CostLedger& ledger, std::size_t n, std::size_t d,
                            double passes) {
  const double matrix_bytes = static_cast<double>(n * d) * sizeof(double);
  for (int pass = 0; pass < static_cast<int>(passes + 0.5); ++pass) {
    ledger.record_op(matrix_bytes, matrix_bytes, 1, matrix_bytes);
  }
}

}  // namespace

core::Result run_pyswarms_like(const core::Objective& objective,
                               const core::PsoParams& params) {
  const std::size_t n = static_cast<std::size_t>(params.particles);
  const std::size_t d = static_cast<std::size_t>(params.dim);
  const double lo = objective.lower;
  const double hi = objective.upper;

  CostLedger ledger;
  rng::Xoshiro256 rng(params.seed + 0x9E3779B9u);
  auto unit = [&rng]() { return rng.next_unit(); };

  Stopwatch watch;
  TimeBreakdown wall;
  TimeBreakdown modeled;
  vgpu::prof::Profile profile;
  const auto account = [&](const char* phase, const char* label,
                           double seconds) {
    modeled.add(phase, seconds);
    if (vgpu::prof::active()) {
      profile.add_host(label, phase, seconds);
    }
  };

  // ---- init (pyswarms generate_swarm / generate_velocity) ---------------
  NdArray pos(n, d);
  NdArray vel(n, d);
  NdArray pbest_pos(n, d);
  std::vector<double> pbest_cost(n, std::numeric_limits<double>::infinity());
  std::vector<double> current_cost(n, 0.0);
  double gbest_cost = std::numeric_limits<double>::infinity();
  std::vector<double> gbest_pos(d, 0.0);
  {
    ScopedTimer timer(wall, "init");
    fill_uniform(ledger, pos, lo, hi, unit);
    fill_uniform(ledger, vel, -(hi - lo), hi - lo, unit);
    pbest_pos = pos;
    ledger.record_op(pos.bytes(), pos.bytes(), 1, pos.bytes());  // copy
    account("init", "pyswarms/generate_swarm", ledger.seconds());
    ledger.reset();
  }

  for (int iter = 0; iter < params.max_iter; ++iter) {
    // ---- compute_objective_function (vectorized) -----------------------
    {
      ScopedTimer timer(wall, "eval");
      // Real values (the Objective carries a float32 functor for the GPU
      // path; evaluate via a narrow-copy row), NumPy-modeled cost.
      std::vector<float> row32(d);
      for (std::size_t i = 0; i < n; ++i) {
        const double* row = pos.data() + i * d;
        for (std::size_t j = 0; j < d; ++j) {
          row32[j] = static_cast<float>(row[j]);
        }
        current_cost[i] = objective.fn(row32.data(), static_cast<int>(d));
      }
      charge_vectorized_eval(ledger, n, d, objective.cost.vector_passes);
      account("eval", "pyswarms/objective", ledger.seconds());
      ledger.reset();
    }

    // ---- pbest update (compute_pbest: np.where over costs + positions) --
    {
      ScopedTimer timer(wall, "pbest");
      for (std::size_t i = 0; i < n; ++i) {
        if (current_cost[i] < pbest_cost[i]) {
          pbest_cost[i] = current_cost[i];
          for (std::size_t j = 0; j < d; ++j) {
            pbest_pos(i, j) = pos(i, j);
          }
        }
      }
      // np.where on the (n,) mask + the (n, d) positions: 3 passes.
      ledger.record_op(2.0 * n * sizeof(double), n * sizeof(double), 1,
                       n * sizeof(double));
      ledger.record_op(2.0 * pos.bytes(), pos.bytes(), 1, pos.bytes());
      account("pbest", "pyswarms/compute_pbest", ledger.seconds());
      ledger.reset();
    }

    // ---- gbest update (compute_gbest: np.min / np.argmin) ----------------
    {
      ScopedTimer timer(wall, "gbest");
      const std::size_t best = argmin(ledger, pbest_cost);
      if (pbest_cost[best] < gbest_cost) {
        gbest_cost = pbest_cost[best];
        for (std::size_t j = 0; j < d; ++j) {
          gbest_pos[j] = pbest_pos(best, j);
        }
      }
      account("gbest", "pyswarms/compute_gbest", ledger.seconds());
      ledger.reset();
    }

    // ---- compute_velocity + compute_position (vectorized, no clamp) ------
    {
      ScopedTimer timer(wall, "swarm");
      NdArray r1(n, d);
      NdArray r2(n, d);
      fill_uniform(ledger, r1, 0.0, 1.0, unit);
      fill_uniform(ledger, r2, 0.0, 1.0, unit);
      // cognitive = c1 * r1 * (pbest_pos - pos)
      NdArray cognitive =
          scale(ledger, mul(ledger, r1, sub(ledger, pbest_pos, pos)),
                params.c1);
      // social = c2 * r2 * (gbest_pos - pos)
      NdArray social = scale(
          ledger, mul(ledger, r2, sub_rowvec(ledger, pos, gbest_pos)),
          -params.c2);  // (pos - gbest) * -c2 == c2 * (gbest - pos)
      // velocity = w * velocity + cognitive + social
      vel = add(ledger, add(ledger, scale(ledger, vel, params.omega),
                            cognitive),
                social);
      // position = wrap_periodic(position + velocity)
      pos = wrap_periodic(ledger, add(ledger, pos, vel), lo, hi);
      account("swarm", "pyswarms/compute_velocity", ledger.seconds());
      ledger.reset();
    }
  }

  core::Result result;
  result.gbest_value = gbest_cost;
  result.gbest_position.assign(gbest_pos.begin(), gbest_pos.end());
  result.iterations = params.max_iter;
  result.wall_seconds = watch.elapsed_s();
  result.wall_breakdown = wall;
  result.modeled_breakdown = modeled;
  result.modeled_seconds = modeled.total();
  result.profile = std::move(profile);
  return result;
}

}  // namespace fastpso::baselines
