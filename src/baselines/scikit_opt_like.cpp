// sko.PSO (scikit-opt, Pedregosa et al.-adjacent library used in the paper)
// re-implementation, following the library's behaviour:
//
//   * NumPy-vectorized update, one temporary per operator;
//   * positions clipped (np.clip) into the domain every iteration —
//     with diverging velocities, particles pile up on the bounds, which is
//     why sko's Table 2 errors are even larger than pyswarms';
//   * NO velocity clamping by default;
//   * precision-style early stop: the run ends after `patience` iterations
//     without gbest improvement. This reproduces the paper's Table 1
//     anomaly where scikit-opt finishes Easom in ~13 s while pyswarms takes
//     ~127 s: the generalized Easom landscape underflows to an exactly flat
//     0 almost everywhere, so gbest never improves and sko stops early;
//   * an explicit Python-level loop over particles for the per-iteration
//     bookkeeping (sko's update_pbest does a Python-side pass).

#include <cmath>
#include <limits>
#include <vector>

#include "baselines/baselines.h"
#include "baselines/ndarray.h"
#include "common/stopwatch.h"
#include "rng/xoshiro.h"
#include "vgpu/prof/prof.h"

namespace fastpso::baselines {

core::Result run_scikit_opt_like(const core::Objective& objective,
                                 const core::PsoParams& params,
                                 const ScikitOptions& options) {
  const std::size_t n = static_cast<std::size_t>(params.particles);
  const std::size_t d = static_cast<std::size_t>(params.dim);
  const double lo = objective.lower;
  const double hi = objective.upper;

  CostLedger ledger;
  rng::Xoshiro256 rng(params.seed + 0xC0FFEEu);
  auto unit = [&rng]() { return rng.next_unit(); };

  Stopwatch watch;
  TimeBreakdown wall;
  TimeBreakdown modeled;
  vgpu::prof::Profile profile;
  const auto account = [&](const char* phase, const char* label,
                           double seconds) {
    modeled.add(phase, seconds);
    if (vgpu::prof::active()) {
      profile.add_host(label, phase, seconds);
    }
  };

  NdArray pos(n, d);
  NdArray vel(n, d);
  NdArray pbest_pos(n, d);
  std::vector<double> pbest_cost(n, std::numeric_limits<double>::infinity());
  std::vector<double> current_cost(n, 0.0);
  double gbest_cost = std::numeric_limits<double>::infinity();
  std::vector<double> gbest_pos(d, 0.0);

  {
    ScopedTimer timer(wall, "init");
    fill_uniform(ledger, pos, lo, hi, unit);
    // sko initializes velocities in [-|hi-lo|, |hi-lo|].
    fill_uniform(ledger, vel, -(hi - lo), hi - lo, unit);
    pbest_pos = pos;
    ledger.record_op(pos.bytes(), pos.bytes(), 1, pos.bytes());
    account("init", "sko/init", ledger.seconds());
    ledger.reset();
  }

  int completed = 0;
  int since_improved = 0;
  std::vector<float> row32(d);
  for (int iter = 0; iter < params.max_iter; ++iter) {
    // ---- cal_y: vectorized objective --------------------------------------
    {
      ScopedTimer timer(wall, "eval");
      for (std::size_t i = 0; i < n; ++i) {
        const double* row = pos.data() + i * d;
        for (std::size_t j = 0; j < d; ++j) {
          row32[j] = static_cast<float>(row[j]);
        }
        current_cost[i] = objective.fn(row32.data(), static_cast<int>(d));
      }
      const double matrix_bytes = static_cast<double>(n * d) * sizeof(double);
      for (int pass = 0;
           pass < static_cast<int>(objective.cost.vector_passes + 0.5);
           ++pass) {
        ledger.record_op(matrix_bytes, matrix_bytes, 1, matrix_bytes);
      }
      account("eval", "sko/cal_y", ledger.seconds());
      ledger.reset();
    }

    // ---- update_pbest (Python-side loop in sko) ---------------------------
    {
      ScopedTimer timer(wall, "pbest");
      for (std::size_t i = 0; i < n; ++i) {
        if (current_cost[i] < pbest_cost[i]) {
          pbest_cost[i] = current_cost[i];
          for (std::size_t j = 0; j < d; ++j) {
            pbest_pos(i, j) = pos(i, j);
          }
        }
      }
      ledger.record_python_loop(n);
      ledger.record_op(2.0 * pos.bytes(), pos.bytes(), 1, pos.bytes());
      account("pbest", "sko/update_pbest", ledger.seconds());
      ledger.reset();
    }

    // ---- update_gbest ------------------------------------------------------
    bool improved = false;
    {
      ScopedTimer timer(wall, "gbest");
      const std::size_t best = argmin(ledger, pbest_cost);
      if (pbest_cost[best] + 1e-12 < gbest_cost) {
        gbest_cost = pbest_cost[best];
        for (std::size_t j = 0; j < d; ++j) {
          gbest_pos[j] = pbest_pos(best, j);
        }
        improved = true;
      }
      account("gbest", "sko/update_gbest", ledger.seconds());
      ledger.reset();
    }

    // ---- update_V / update_X ------------------------------------------------
    {
      ScopedTimer timer(wall, "swarm");
      NdArray r1(n, d);
      NdArray r2(n, d);
      fill_uniform(ledger, r1, 0.0, 1.0, unit);
      fill_uniform(ledger, r2, 0.0, 1.0, unit);
      NdArray cognitive =
          scale(ledger, mul(ledger, r1, sub(ledger, pbest_pos, pos)),
                params.c1);
      NdArray social = scale(
          ledger, mul(ledger, r2, sub_rowvec(ledger, pos, gbest_pos)),
          -params.c2);
      vel = add(ledger,
                add(ledger, scale(ledger, vel, params.omega), cognitive),
                social);
      // X = np.clip(X + V, lb, ub)
      pos = clip(ledger, add(ledger, pos, vel), lo, hi);
      account("swarm", "sko/update_V", ledger.seconds());
      ledger.reset();
    }

    completed = iter + 1;
    since_improved = improved ? 0 : since_improved + 1;
    if (options.patience > 0 && since_improved >= options.patience) {
      break;  // sko precision-based early stop
    }
  }

  core::Result result;
  result.gbest_value = gbest_cost;
  result.gbest_position.assign(gbest_pos.begin(), gbest_pos.end());
  result.iterations = completed;
  result.wall_seconds = watch.elapsed_s();
  result.wall_breakdown = wall;
  result.modeled_breakdown = modeled;
  result.modeled_seconds = modeled.total();
  result.profile = std::move(profile);
  return result;
}

}  // namespace fastpso::baselines
