#include "benchkit/runner.h"

#include <cmath>

#include "baselines/baselines.h"
#include "common/check.h"
#include "core/objective.h"
#include "core/optimizer.h"
#include "tgbm/threadconf.h"
#include "vgpu/device.h"

namespace fastpso::benchkit {

const char* to_string(Impl impl) {
  switch (impl) {
    case Impl::kPyswarms:
      return "pyswarms";
    case Impl::kScikitOpt:
      return "scikit-opt";
    case Impl::kGpuPso:
      return "gpu-pso";
    case Impl::kHgpuPso:
      return "hgpu-pso";
    case Impl::kFastPsoSeq:
      return "fastpso-seq";
    case Impl::kFastPsoOmp:
      return "fastpso-omp";
    case Impl::kFastPso:
      return "fastpso";
  }
  FASTPSO_UNREACHABLE("unknown impl");
}

Impl impl_from_string(const std::string& name) {
  for (Impl impl : all_impls()) {
    if (name == to_string(impl)) {
      return impl;
    }
  }
  throw CheckError("unknown implementation: '" + name + "'");
}

std::vector<Impl> all_impls() {
  return {Impl::kPyswarms,   Impl::kScikitOpt,  Impl::kGpuPso,
          Impl::kHgpuPso,    Impl::kFastPsoSeq, Impl::kFastPsoOmp,
          Impl::kFastPso};
}

std::vector<Impl> gpu_impls() {
  return {Impl::kGpuPso, Impl::kHgpuPso, Impl::kFastPso};
}

std::unique_ptr<problems::Problem> make_any_problem(const std::string& name) {
  if (name == "threadconf") {
    return tgbm::make_threadconf_problem();
  }
  return problems::make_problem(name);
}

RunOutcome run_spec(const RunSpec& spec) {
  const auto problem = make_any_problem(spec.problem);
  const core::Objective objective =
      core::objective_from_problem(*problem, spec.dim);

  core::PsoParams params;
  params.particles = spec.particles;
  params.dim = spec.dim;
  params.max_iter = spec.effective_executed();
  params.seed = spec.seed;
  params.technique = spec.technique;
  params.memory_caching = spec.memory_caching;

  core::Result result;
  switch (spec.impl) {
    case Impl::kPyswarms:
      result = baselines::run_pyswarms_like(objective, params);
      break;
    case Impl::kScikitOpt:
      result = baselines::run_scikit_opt_like(objective, params);
      break;
    case Impl::kGpuPso: {
      vgpu::Device device;
      result = baselines::run_gpu_pso(objective, params, device);
      break;
    }
    case Impl::kHgpuPso: {
      vgpu::Device device;
      result = baselines::run_hgpu_pso(objective, params, device);
      break;
    }
    case Impl::kFastPsoSeq:
      result = baselines::run_fastpso_seq(objective, params);
      break;
    case Impl::kFastPsoOmp:
      result = baselines::run_fastpso_omp(objective, params);
      break;
    case Impl::kFastPso: {
      vgpu::Device device;
      core::Optimizer optimizer(device, params);
      result = optimizer.optimize(objective);
      break;
    }
  }

  RunOutcome outcome;
  outcome.wall_seconds = result.wall_seconds;
  outcome.has_error = objective.has_optimum;
  outcome.error =
      objective.has_optimum ? result.error_to(objective.optimum) : 0.0;

  // Iteration scaling (see header). Early-stopped runs are not scaled.
  const int executed = spec.effective_executed();
  double scale = 1.0;
  if (result.iterations >= executed && executed < spec.iters) {
    scale = static_cast<double>(spec.iters) / executed;
  }
  outcome.scale = scale;
  outcome.modeled_seconds_full = result.modeled_seconds * scale;
  outcome.modeled_breakdown_full = result.modeled_breakdown;
  if (scale != 1.0) {
    TimeBreakdown scaled;
    for (const auto& [key, value] : result.modeled_breakdown.buckets()) {
      scaled.add(key, value * scale);
    }
    outcome.modeled_breakdown_full = scaled;
  }
  outcome.result = std::move(result);
  return outcome;
}

}  // namespace fastpso::benchkit
