// Unified experiment runner: one entry point that runs any of the paper's
// seven implementations on any problem and returns comparable results.
// Every bench binary (bench/) is a thin driver over this.
//
// Iteration scaling: the paper's configuration is 2000 iterations; executing
// all implementations at that scale for every table cell is wall-clock
// prohibitive in this environment, so a RunSpec may execute
// `executed_iters` < `iters` real iterations and report modeled time scaled
// linearly to `iters` (per-iteration work dominates; the one-time init is
// under 0.1% of a run). Early-stopping implementations (scikit-opt) are not
// scaled past their stopping point. Benches accept --executed-iters to
// change fidelity; --full runs everything unscaled.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/params.h"
#include "core/result.h"
#include "problems/problem.h"

namespace fastpso::benchkit {

/// The seven implementations of Table 1, in the paper's column order.
enum class Impl {
  kPyswarms,
  kScikitOpt,
  kGpuPso,
  kHgpuPso,
  kFastPsoSeq,
  kFastPsoOmp,
  kFastPso,
};

const char* to_string(Impl impl);
Impl impl_from_string(const std::string& name);
std::vector<Impl> all_impls();
/// The GPU-resident subset (for Table 3).
std::vector<Impl> gpu_impls();

/// One experiment cell.
struct RunSpec {
  Impl impl = Impl::kFastPso;
  std::string problem = "sphere";
  int particles = 5000;
  int dim = 200;
  int iters = 2000;           ///< reported (paper) iteration count
  int executed_iters = 0;     ///< really executed; 0 means = iters
  std::uint64_t seed = 42;
  core::UpdateTechnique technique = core::UpdateTechnique::kGlobalMemory;
  bool memory_caching = true;

  [[nodiscard]] int effective_executed() const {
    return executed_iters > 0 ? executed_iters : iters;
  }
};

/// Result of one experiment cell, with iteration-scaled modeled numbers.
struct RunOutcome {
  core::Result result;                 ///< raw result of the executed run
  double modeled_seconds_full = 0;     ///< scaled to RunSpec::iters
  TimeBreakdown modeled_breakdown_full;
  double wall_seconds = 0;
  double error = 0;                    ///< |gbest - optimum|
  bool has_error = false;              ///< optimum known?
  /// Executed-to-reported iteration scale factor (1.0 when unscaled).
  /// Profile aggregates (result.profile) are per-executed-run; multiply by
  /// this to get iters-scaled numbers comparable to modeled_seconds_full.
  double scale = 1.0;
};

/// Runs one cell. Throws CheckError for unknown problems/impls.
RunOutcome run_spec(const RunSpec& spec);

/// Creates any problem this repository knows: the built-ins of
/// problems::make_problem plus "threadconf" (tgbm).
std::unique_ptr<problems::Problem> make_any_problem(const std::string& name);

}  // namespace fastpso::benchkit
