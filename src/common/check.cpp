#include "common/check.h"

#include <sstream>

namespace fastpso::detail {

void check_failed(const char* expr, const char* file, int line,
                  const std::string& msg) {
  std::ostringstream os;
  os << "FASTPSO_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw CheckError(os.str());
}

}  // namespace fastpso::detail
