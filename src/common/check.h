// Lightweight runtime-check macros used across the FastPSO code base.
//
// FASTPSO_CHECK(cond)          — always-on invariant check; throws CheckError.
// FASTPSO_CHECK_MSG(cond, msg) — same, with a caller-supplied message.
// FASTPSO_UNREACHABLE(msg)     — marks logically impossible paths.
//
// These are used instead of assert() so that misuse of the public API is
// reported in Release builds too (the library is meant to be consumed by
// downstream users who will not run Debug builds).
#pragma once

#include <stdexcept>
#include <string>

namespace fastpso {

/// Exception thrown when a FASTPSO_CHECK fails. Carries file/line context.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void check_failed(const char* expr, const char* file, int line,
                               const std::string& msg);
}  // namespace detail

}  // namespace fastpso

#define FASTPSO_CHECK(cond)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::fastpso::detail::check_failed(#cond, __FILE__, __LINE__, "");        \
    }                                                                        \
  } while (false)

#define FASTPSO_CHECK_MSG(cond, msg)                                         \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::fastpso::detail::check_failed(#cond, __FILE__, __LINE__, (msg));     \
    }                                                                        \
  } while (false)

#define FASTPSO_UNREACHABLE(msg)                                             \
  ::fastpso::detail::check_failed("unreachable", __FILE__, __LINE__, (msg))
