#include "common/cli.h"

#include <cstdlib>
#include <stdexcept>

#include "common/check.h"

namespace fastpso {

CliArgs::CliArgs(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    auto eq = arg.find('=');
    if (eq != std::string::npos) {
      flags_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // `--key value` when the next token is not itself a flag; otherwise a
    // boolean `--flag`.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      flags_[arg] = argv[i + 1];
      ++i;
    } else {
      flags_[arg] = "true";
    }
  }
}

bool CliArgs::has(const std::string& key) const {
  return flags_.count(key) > 0;
}

std::string CliArgs::get_string(const std::string& key,
                                const std::string& fallback) const {
  auto it = flags_.find(key);
  return it == flags_.end() ? fallback : it->second;
}

long long CliArgs::get_int(const std::string& key, long long fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) {
    return fallback;
  }
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw CheckError("flag --" + key + " expects an integer, got '" +
                     it->second + "'");
  }
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) {
    return fallback;
  }
  try {
    return std::stod(it->second);
  } catch (const std::exception&) {
    throw CheckError("flag --" + key + " expects a number, got '" +
                     it->second + "'");
  }
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  auto it = flags_.find(key);
  if (it == flags_.end()) {
    return fallback;
  }
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") {
    return true;
  }
  if (v == "false" || v == "0" || v == "no" || v == "off") {
    return false;
  }
  throw CheckError("flag --" + key + " expects a boolean, got '" + v + "'");
}

std::vector<std::string> CliArgs::keys() const {
  std::vector<std::string> out;
  out.reserve(flags_.size());
  for (const auto& [key, value] : flags_) {
    (void)value;
    out.push_back(key);
  }
  return out;
}

}  // namespace fastpso
