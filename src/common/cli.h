// Minimal command-line flag parsing used by the bench harnesses and
// examples. Supports `--key value`, `--key=value` and boolean `--flag`.
#pragma once

#include <map>
#include <string>
#include <vector>

namespace fastpso {

/// Parsed command line. Unknown flags are kept and can be enumerated so a
/// binary can reject typos explicitly.
class CliArgs {
 public:
  CliArgs(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key,
                                       const std::string& fallback) const;
  [[nodiscard]] long long get_int(const std::string& key,
                                  long long fallback) const;
  [[nodiscard]] double get_double(const std::string& key,
                                  double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// Positional (non-flag) arguments in order of appearance.
  [[nodiscard]] const std::vector<std::string>& positional() const {
    return positional_;
  }

  /// All flag keys seen, for validation against an allowlist.
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace fastpso
