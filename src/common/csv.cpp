#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/check.h"

namespace fastpso {

void CsvWriter::add_row(std::vector<std::string> row) {
  FASTPSO_CHECK_MSG(row.size() == header_.size(),
                    "CSV row arity must match header");
  rows_.push_back(std::move(row));
}

std::string CsvWriter::to_string() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c ? "," : "") << csv_escape(header_[c]);
  }
  os << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << csv_escape(row[c]);
    }
    os << '\n';
  }
  return os.str();
}

bool CsvWriter::write(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return false;
  }
  out << to_string();
  return static_cast<bool>(out);
}

std::string csv_escape(const std::string& field) {
  bool needs_quote = field.find_first_of(",\"\n") != std::string::npos;
  if (!needs_quote) {
    return field;
  }
  std::string out = "\"";
  for (char ch : field) {
    if (ch == '"') {
      out += "\"\"";
    } else {
      out += ch;
    }
  }
  out += '"';
  return out;
}

}  // namespace fastpso
