// CSV emission for bench results so plots can be regenerated outside C++.
#pragma once

#include <string>
#include <vector>

namespace fastpso {

/// Accumulates rows and writes an RFC-4180-ish CSV file.
class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row);

  /// Writes the CSV to `path`; creates parent-less files only (the caller
  /// is responsible for directories). Returns false on I/O failure.
  [[nodiscard]] bool write(const std::string& path) const;

  [[nodiscard]] std::string to_string() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Escapes a CSV field (quotes fields containing comma/quote/newline).
std::string csv_escape(const std::string& field);

}  // namespace fastpso
