// Row-major host matrix types used to model swarm state (positions,
// velocities, random-weight matrices) on the host side.
//
// The paper models the whole swarm as matrices P, V, L, G in R^{n x d}
// (Section 3.4); HostMatrix<T> is the owning host representation and
// MatrixView<T> / ConstMatrixView<T> are non-owning views used by kernels
// and tests.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/check.h"

namespace fastpso {

/// Non-owning mutable view over a row-major matrix.
template <typename T>
class MatrixView {
 public:
  MatrixView() = default;
  MatrixView(T* data, std::size_t rows, std::size_t cols)
      : data_(data), rows_(rows), cols_(cols) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return rows_ * cols_; }
  [[nodiscard]] T* data() const { return data_; }

  T& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  /// Flat element access (row-major order).
  T& operator[](std::size_t i) const { return data_[i]; }

  [[nodiscard]] std::span<T> row(std::size_t r) const {
    return {data_ + r * cols_, cols_};
  }
  [[nodiscard]] std::span<T> flat() const { return {data_, size()}; }

 private:
  T* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

/// Non-owning read-only view over a row-major matrix.
template <typename T>
class ConstMatrixView {
 public:
  ConstMatrixView() = default;
  ConstMatrixView(const T* data, std::size_t rows, std::size_t cols)
      : data_(data), rows_(rows), cols_(cols) {}
  // Implicit conversion from the mutable view.
  ConstMatrixView(MatrixView<T> v)  // NOLINT(google-explicit-constructor)
      : data_(v.data()), rows_(v.rows()), cols_(v.cols()) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return rows_ * cols_; }
  [[nodiscard]] const T* data() const { return data_; }

  const T& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }
  const T& operator[](std::size_t i) const { return data_[i]; }

  [[nodiscard]] std::span<const T> row(std::size_t r) const {
    return {data_ + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const T> flat() const { return {data_, size()}; }

 private:
  const T* data_ = nullptr;
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
};

/// Owning row-major matrix backed by std::vector.
template <typename T>
class HostMatrix {
 public:
  HostMatrix() = default;
  HostMatrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), store_(rows * cols, fill) {}

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return store_.size(); }
  [[nodiscard]] bool empty() const { return store_.empty(); }

  T& operator()(std::size_t r, std::size_t c) {
    return store_[r * cols_ + c];
  }
  const T& operator()(std::size_t r, std::size_t c) const {
    return store_[r * cols_ + c];
  }
  T& operator[](std::size_t i) { return store_[i]; }
  const T& operator[](std::size_t i) const { return store_[i]; }

  [[nodiscard]] T* data() { return store_.data(); }
  [[nodiscard]] const T* data() const { return store_.data(); }

  [[nodiscard]] std::span<T> row(std::size_t r) {
    return {store_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const T> row(std::size_t r) const {
    return {store_.data() + r * cols_, cols_};
  }

  [[nodiscard]] MatrixView<T> view() {
    return {store_.data(), rows_, cols_};
  }
  [[nodiscard]] ConstMatrixView<T> view() const {
    return {store_.data(), rows_, cols_};
  }

  void fill(T value) { store_.assign(store_.size(), value); }

  /// Reshape without reallocating when total size is unchanged.
  void reshape(std::size_t rows, std::size_t cols) {
    FASTPSO_CHECK_MSG(rows * cols == store_.size(),
                      "reshape must preserve element count");
    rows_ = rows;
    cols_ = cols;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> store_;
};

}  // namespace fastpso
