#include "common/stopwatch.h"

namespace fastpso {

void TimeBreakdown::add(const std::string& key, double seconds) {
  buckets_[key] += seconds;
}

double TimeBreakdown::get(const std::string& key) const {
  auto it = buckets_.find(key);
  return it == buckets_.end() ? 0.0 : it->second;
}

double TimeBreakdown::total() const {
  double sum = 0.0;
  for (const auto& [key, value] : buckets_) {
    (void)key;
    sum += value;
  }
  return sum;
}

void TimeBreakdown::merge(const TimeBreakdown& other) {
  for (const auto& [key, value] : other.buckets_) {
    buckets_[key] += value;
  }
}

void TimeBreakdown::swap(TimeBreakdown& other) {
  buckets_.swap(other.buckets_);
  epoch_ = next_epoch();
  other.epoch_ = next_epoch();
}

}  // namespace fastpso
