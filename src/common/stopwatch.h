// Wall-clock stopwatch and a named accumulator used for the per-step
// breakdown measurements (Figure 5 of the paper).
#pragma once

#include <chrono>
#include <map>
#include <string>

namespace fastpso {

/// Simple monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() { reset(); }

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates wall-clock time under named keys; used to break an
/// optimizer run down into the paper's five steps
/// (init / eval / pbest / gbest / swarm).
class TimeBreakdown {
 public:
  /// Adds `seconds` to the bucket `key`.
  void add(const std::string& key, double seconds);

  /// Total seconds recorded under `key` (0 if never recorded).
  [[nodiscard]] double get(const std::string& key) const;

  /// Sum across all buckets.
  [[nodiscard]] double total() const;

  [[nodiscard]] const std::map<std::string, double>& buckets() const {
    return buckets_;
  }

  void clear() { buckets_.clear(); }

  /// Merges another breakdown into this one (bucket-wise addition).
  void merge(const TimeBreakdown& other);

 private:
  std::map<std::string, double> buckets_;
};

/// RAII helper: measures a scope and adds it to a breakdown bucket.
class ScopedTimer {
 public:
  ScopedTimer(TimeBreakdown& sink, std::string key)
      : sink_(sink), key_(std::move(key)) {}
  ~ScopedTimer() { sink_.add(key_, watch_.elapsed_s()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimeBreakdown& sink_;
  std::string key_;
  Stopwatch watch_;
};

}  // namespace fastpso
