// Wall-clock stopwatch and a named accumulator used for the per-step
// breakdown measurements (Figure 5 of the paper).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace fastpso {

/// Simple monotonic wall-clock stopwatch.
class Stopwatch {
 public:
  Stopwatch() { reset(); }

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double elapsed_s() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Accumulates wall-clock time under named keys; used to break an
/// optimizer run down into the paper's five steps
/// (init / eval / pbest / gbest / swarm).
class TimeBreakdown {
 public:
  /// Adds `seconds` to the bucket `key`.
  void add(const std::string& key, double seconds);

  /// Total seconds recorded under `key` (0 if never recorded).
  [[nodiscard]] double get(const std::string& key) const;

  /// Sum across all buckets.
  [[nodiscard]] double total() const;

  [[nodiscard]] const std::map<std::string, double>& buckets() const {
    return buckets_;
  }

  /// Stable pointer to `key`'s accumulator (created at 0 if absent) so hot
  /// paths can skip the map lookup. Invalidated by clear(), not by add().
  [[nodiscard]] double* slot(const std::string& key) {
    return &buckets_[key];
  }

  TimeBreakdown() = default;
  // Copies take a fresh epoch: the new object's slot pointers differ from
  // the source's, so any cache keyed on (address, epoch) must re-resolve.
  TimeBreakdown(const TimeBreakdown& other)
      : buckets_(other.buckets_), epoch_(next_epoch()) {}
  TimeBreakdown& operator=(const TimeBreakdown& other) {
    buckets_ = other.buckets_;
    epoch_ = next_epoch();
    return *this;
  }

  /// Identifies the current set of slot pointers: process-unique, replaced
  /// by clear() and assignment. Lets slot caches detect invalidation with
  /// one compare instead of re-resolving every time.
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

  void clear() {
    buckets_.clear();
    epoch_ = next_epoch();
  }

  /// Merges another breakdown into this one (bucket-wise addition).
  void merge(const TimeBreakdown& other);

  /// Exchanges contents with `other`. BOTH objects take fresh epochs: map
  /// nodes survive a std::map swap, so stale slot() pointers would still
  /// dereference — into the wrong breakdown. The epoch bump forces every
  /// (address, epoch) slot cache to re-resolve. This is what lets the serve
  /// scheduler swap per-job accounting in and out of a shared Device.
  void swap(TimeBreakdown& other);

 private:
  static std::uint64_t next_epoch() {
    static std::uint64_t counter = 0;
    return ++counter;
  }

  std::map<std::string, double> buckets_;
  std::uint64_t epoch_ = next_epoch();
};

/// RAII helper: measures a scope and adds it to a breakdown bucket.
class ScopedTimer {
 public:
  ScopedTimer(TimeBreakdown& sink, std::string key)
      : sink_(sink), key_(std::move(key)) {}
  ~ScopedTimer() { sink_.add(key_, watch_.elapsed_s()); }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimeBreakdown& sink_;
  std::string key_;
  Stopwatch watch_;
};

}  // namespace fastpso
