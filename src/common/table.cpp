#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/check.h"

namespace fastpso {

void TextTable::set_header(std::vector<std::string> header) {
  FASTPSO_CHECK_MSG(rows_.empty(), "set_header must precede add_row");
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  FASTPSO_CHECK_MSG(row.size() == header_.size(),
                    "row arity must match header");
  rows_.push_back(std::move(row));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::size_t total = 0;
  for (std::size_t w : widths) {
    total += w + 3;
  }

  os << "\n== " << title_ << " ==\n";
  auto rule = std::string(total, '-');
  os << rule << '\n';
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::left << std::setw(static_cast<int>(widths[c]) + 3)
       << header_[c];
  }
  os << '\n' << rule << '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 3) << row[c];
    }
    os << '\n';
  }
  os << rule << '\n';
  for (const auto& note : notes_) {
    os << "note: " << note << '\n';
  }
}

std::string fmt_fixed(double value, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  return os.str();
}

std::string fmt_sci(double value, int digits) {
  std::ostringstream os;
  os << std::scientific << std::setprecision(digits) << value;
  return os.str();
}

std::string fmt_speedup(double ratio, int digits) {
  return fmt_fixed(ratio, digits) + "x";
}

}  // namespace fastpso
