// Plain-text table rendering for the benchmark harnesses. Each bench binary
// regenerates one of the paper's tables/figures as an aligned text table
// (and optionally CSV, see common/csv.h).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace fastpso {

/// A simple column-aligned text table with a title and optional notes.
class TextTable {
 public:
  explicit TextTable(std::string title) : title_(std::move(title)) {}

  /// Sets the header row. Must be called before adding rows.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; must match the header arity.
  void add_row(std::vector<std::string> row);

  /// Appends a free-form note rendered under the table.
  void add_note(const std::string& note) { notes_.push_back(note); }

  /// Renders the table to `os` with aligned columns.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t row_count() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }
  [[nodiscard]] const std::vector<std::string>& header() const {
    return header_;
  }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<std::string> notes_;
};

/// Formats a double with `digits` significant decimals (fixed notation).
std::string fmt_fixed(double value, int digits = 2);

/// Formats a double in engineering style, e.g. "1.23e+05".
std::string fmt_sci(double value, int digits = 2);

/// Formats as "12.3x" speedup.
std::string fmt_speedup(double ratio, int digits = 2);

}  // namespace fastpso
