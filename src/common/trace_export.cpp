#include "common/trace_export.h"

#include <cstdio>
#include <fstream>

namespace fastpso {

namespace {

/// Microsecond timestamps with 4 decimals (0.1 ns grain): deterministic,
/// and far finer than any modeled duration in the repository.
std::string fmt_us(double us) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.4f", us);
  return buf;
}

}  // namespace

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
    }
    out.push_back(c);
  }
  return out;
}

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  std::string out = "{\"traceEvents\": [\n";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    out += "  {\"name\": \"";
    out += json_escape(e.name);
    out += "\", \"cat\": \"";
    out += json_escape(e.cat);
    out += "\", \"ph\": \"X\", \"ts\": ";
    out += fmt_us(e.ts_us);
    out += ", \"dur\": ";
    out += fmt_us(e.dur_us);
    out += ", \"pid\": ";
    out += std::to_string(e.pid);
    out += ", \"tid\": ";
    out += std::to_string(e.tid);
    if (!e.args.empty()) {
      out += ", \"args\": {";
      for (std::size_t a = 0; a < e.args.size(); ++a) {
        out += '"';
        out += json_escape(e.args[a].first);
        out += "\": ";
        out += e.args[a].second;
        if (a + 1 < e.args.size()) {
          out += ", ";
        }
      }
      out += "}";
    }
    out += "}";
    out += (i + 1 < events.size()) ? ",\n" : "\n";
  }
  out += "], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

bool write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file.good()) {
    return false;
  }
  file << chrome_trace_json(events);
  return file.good();
}

}  // namespace fastpso
