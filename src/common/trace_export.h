// Chrome-trace ("Trace Event Format") JSON emission, consumable by
// chrome://tracing and Perfetto. Generic over the event source: vgpu::prof
// converts its profile into TraceEvents and this module renders them with a
// deterministic field order and number formatting so traces can be used as
// golden regression files.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace fastpso {

/// One complete ("ph":"X") trace event. `args` values are pre-rendered JSON
/// fragments (already quoted/escaped by the caller when they are strings).
struct TraceEvent {
  std::string name;
  std::string cat;
  double ts_us = 0;   ///< start, microseconds
  double dur_us = 0;  ///< duration, microseconds
  int pid = 0;
  int tid = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

/// Escapes a string for embedding inside a JSON string literal.
std::string json_escape(const std::string& s);

/// Renders `{"traceEvents": [...]}` with stable key order; ts/dur printed
/// with fixed sub-nanosecond precision so equal inputs give equal bytes.
std::string chrome_trace_json(const std::vector<TraceEvent>& events);

/// Writes chrome_trace_json(events) to `path`; false on I/O failure.
bool write_chrome_trace(const std::string& path,
                        const std::vector<TraceEvent>& events);

}  // namespace fastpso
