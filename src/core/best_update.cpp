#include "core/best_update.h"

#include "core/kernels_registry.h"
#include "vgpu/prof/prof.h"
#include "vgpu/reduce.h"
#include "vgpu/san/tracked.h"

namespace fastpso::core {

namespace san = vgpu::san;

PbestStats update_pbest(vgpu::Device& device, const LaunchPolicy& policy,
                        SwarmState& state) {
  update_pbest_compare(device, policy, state);
  return update_pbest_finish(device, policy, state);
}

void update_pbest_compare(vgpu::Device& device, const LaunchPolicy& policy,
                          SwarmState& state) {
  const int n = state.n;
  const LaunchDecision decision = policy.for_particles(n);

  // Pass 1: compare and flag. Only scalar traffic.
  {
    vgpu::KernelCostSpec cost;
    cost.flops = static_cast<double>(n);
    cost.dram_read_bytes = 2.0 * n * sizeof(float);
    cost.dram_write_bytes = n * (sizeof(float) + sizeof(std::uint8_t));
    // Fusion footprint (vgpu/graph/fusion.h): element i touches scalar i of
    // each array; pbest_err is an aligned read-modify-write.
    const kernels::PbestCompareKernel::Args cmp_args{
        state.perror.data(), state.pbest_err.data(), state.improved.data()};
    const auto note_footprint = [&] {
      if (device.capturing()) {
        device.graph_note_elements(n);
        device.graph_note_uses(
            {{state.perror.data(), static_cast<double>(n) * sizeof(float),
              sizeof(float), /*write=*/false, "perror"},
             {state.pbest_err.data(), static_cast<double>(n) * sizeof(float),
              sizeof(float), /*write=*/false, "pbest_err"},
             {state.pbest_err.data(), static_cast<double>(n) * sizeof(float),
              sizeof(float), /*write=*/true, "pbest_err"},
             {state.improved.data(), static_cast<double>(n), 1,
              /*write=*/true, "improved"}});
        device.graph_note_static(
            vgpu::graph::codegen::make_static<kernels::PbestCompareKernel>(
                cmp_args));
      }
    };
    if (vgpu::use_fast_path()) {
      vgpu::prof::KernelLabel klabel("best_update/compare_flag");
      device.launch_elements(
          decision.config, cost, n, [cmp_args](std::int64_t i) {
            kernels::PbestCompareKernel::element(cmp_args, i);
          });
      note_footprint();
    } else {
      const auto perror = san::track(state.perror.data(),
                                     static_cast<std::size_t>(n), "perror");
      const auto pbest_err =
          san::track(state.pbest_err.data(), static_cast<std::size_t>(n),
                     "pbest_err");
      const auto improved =
          san::track(state.improved.data(), static_cast<std::size_t>(n),
                     "improved");
      san::expect_writes_exactly_once(pbest_err);
      san::expect_writes_exactly_once(improved);
      san::KernelScope scope("best_update/compare_flag");
      device.launch(decision.config, cost, [&](const vgpu::ThreadCtx& t) {
        for (std::int64_t i = t.global_id(); i < n; i += t.grid_stride()) {
          san::count_flops(1.0);
          const float pe = perror[i];
          const float pb = pbest_err[i];
          const bool better = pe < pb;
          improved[i] = better ? 1 : 0;
          // Unconditional select store: matches the declared write traffic
          // (and the branchless store a real kernel would use to avoid
          // divergence).
          pbest_err[i] = better ? pe : pb;
        }
      });
      note_footprint();
    }
  }
}

PbestStats update_pbest_finish(vgpu::Device& device,
                               const LaunchPolicy& policy,
                               SwarmState& state) {
  const int n = state.n;
  const int d = state.d;
  const LaunchDecision decision = policy.for_particles(n);

  // The improved count feeds the second launch's cost declaration. In real
  // CUDA this is a fused kernel; reading the flag array here is simulator
  // bookkeeping, not a modeled transfer. Under packing the compare pass may
  // still sit deferred on this job's lane — flush before reading the flags.
  device.pack_flush_lane();
  std::int64_t improved_count = 0;
  for (int i = 0; i < n; ++i) {
    improved_count += state.improved[i];
  }

  // Pass 2: gather best positions for improved particles.
  {
    vgpu::KernelCostSpec cost;
    cost.dram_read_bytes =
        static_cast<double>(n) * sizeof(std::uint8_t) +
        static_cast<double>(improved_count) * d * sizeof(float);
    cost.dram_write_bytes =
        static_cast<double>(improved_count) * d * sizeof(float);
    // Footprint: element i reads its flag and may copy its row — the
    // declared spans are the data-independent superset of what the flags
    // select this iteration.
    const kernels::PbestGatherKernel::Args gather_args{
        state.improved.data(), state.positions.data(), state.pbest_pos.data(),
        d};
    const auto note_footprint = [&] {
      if (device.capturing()) {
        const double row_bytes =
            static_cast<double>(state.elements()) * sizeof(float);
        const std::int64_t row_elem = static_cast<std::int64_t>(d * sizeof(float));
        device.graph_note_elements(n);
        device.graph_note_uses(
            {{state.improved.data(), static_cast<double>(n), 1,
              /*write=*/false, "improved"},
             {state.positions.data(), row_bytes, row_elem, /*write=*/false,
              "positions"},
             {state.pbest_pos.data(), row_bytes, row_elem, /*write=*/true,
              "pbest_pos"}});
        device.graph_note_static(
            vgpu::graph::codegen::make_static<kernels::PbestGatherKernel>(
                gather_args));
      }
    };
    if (vgpu::use_fast_path()) {
      vgpu::prof::KernelLabel klabel("best_update/gather");
      device.launch_elements(
          decision.config, cost, n, [gather_args](std::int64_t i) {
            kernels::PbestGatherKernel::element(gather_args, i);
          });
      note_footprint();
    } else {
      const auto improved =
          san::track(state.improved.data(), static_cast<std::size_t>(n),
                     "improved");
      const auto positions =
          san::track(state.positions.data(), state.elements(), "positions");
      const auto pbest_pos =
          san::track(state.pbest_pos.data(), state.elements(), "pbest_pos");
      san::KernelScope scope("best_update/gather");
      device.launch(decision.config, cost, [&](const vgpu::ThreadCtx& t) {
        for (std::int64_t i = t.global_id(); i < n; i += t.grid_stride()) {
          if (improved[i]) {
            for (int j = 0; j < d; ++j) {
              pbest_pos[i * d + j] = positions[i * d + j];
            }
          }
        }
      });
      note_footprint();
    }
  }

  return {.improved = improved_count};
}

float update_gbest(vgpu::Device& device, SwarmState& state) {
  const vgpu::ArgMin best =
      vgpu::reduce_argmin(device, state.pbest_err.data(), state.n);
  if (best.value < state.gbest_err) {
    state.gbest_err = best.value;
    // Copy the winner's best position into the global best vector.
    const int d = state.d;
    vgpu::LaunchConfig cfg;
    cfg.grid = 1;
    cfg.block = std::min(d, device.spec().max_threads_per_block);
    vgpu::KernelCostSpec cost;
    cost.dram_read_bytes = static_cast<double>(d) * sizeof(float);
    cost.dram_write_bytes = static_cast<double>(d) * sizeof(float);
    // Footprint: the read is an interior row of pbest_pos, so its address
    // range overlaps (unaligned) with the gather's row-sliced writes — the
    // fusion pass's hazard check is what keeps this copy out of any group.
    const kernels::GbestCopyKernel::Args copy_args{
        state.pbest_pos.data() + best.index * d, state.gbest_pos.data()};
    const auto note_footprint = [&] {
      if (device.capturing()) {
        const double row_bytes = static_cast<double>(d) * sizeof(float);
        device.graph_note_elements(d);
        device.graph_note_uses(
            {{state.pbest_pos.data() + best.index * d, row_bytes,
              sizeof(float), /*write=*/false, "gbest_src_row"},
             {state.gbest_pos.data(), row_bytes, sizeof(float),
              /*write=*/true, "gbest_pos"}});
        device.graph_note_static(
            vgpu::graph::codegen::make_static<kernels::GbestCopyKernel>(
                copy_args));
      }
    };
    if (vgpu::use_fast_path()) {
      vgpu::prof::KernelLabel klabel("best_update/gbest_copy");
      device.launch_elements(cfg, cost, d, [copy_args](std::int64_t j) {
        kernels::GbestCopyKernel::element(copy_args, j);
      });
      note_footprint();
      return state.gbest_err;
    }
    const auto src =
        san::track(state.pbest_pos.data() + best.index * d,
                   static_cast<std::size_t>(d), "gbest_src_row");
    const auto dst = san::track(state.gbest_pos.data(),
                                static_cast<std::size_t>(d), "gbest_pos");
    san::expect_writes_exactly_once(dst);
    san::KernelScope scope("best_update/gbest_copy");
    device.launch(cfg, cost, [&](const vgpu::ThreadCtx& t) {
      for (std::int64_t j = t.global_id(); j < d; j += t.grid_stride()) {
        dst[j] = src[j];
      }
    });
    note_footprint();
  }
  return state.gbest_err;
}

}  // namespace fastpso::core
