// Step (iii): pbest and gbest update (paper Section 3.3).
//
// pbest: one thread per particle compares the new target value against the
// particle's best and updates value + best position (massively parallel, no
// cross-particle dependencies).
//
// gbest: argmin + index over all pbest values via the GPU parallel reduction
// (vgpu/reduce.h), then the winning particle's best position is copied into
// the swarm-global best vector.
#pragma once

#include "core/launch_policy.h"
#include "core/swarm_state.h"
#include "vgpu/device.h"

namespace fastpso::core {

/// Outcome of one pbest pass.
struct PbestStats {
  std::int64_t improved = 0;  ///< particles whose pbest improved
};

/// Compares state.perror against state.pbest_err, updating pbest_err and
/// pbest_pos for improved particles. Returns how many improved.
PbestStats update_pbest(vgpu::Device& device, const LaunchPolicy& policy,
                        SwarmState& state);

/// The two halves of update_pbest, split at its host read-back: `compare`
/// launches pass 1 (flag + pbest_err select), `finish` reads the flag
/// array on the host to size pass 2's cost declaration and launches the
/// gather. update_pbest == compare; finish — the serve layer's packed
/// lockstep stepping uses the halves directly so the host read sits after
/// a cohort flush barrier. Accounting is identical by construction.
void update_pbest_compare(vgpu::Device& device, const LaunchPolicy& policy,
                          SwarmState& state);
PbestStats update_pbest_finish(vgpu::Device& device,
                               const LaunchPolicy& policy, SwarmState& state);

/// Finds the swarm minimum over pbest_err and refreshes gbest_err /
/// gbest_pos when it improved. Returns the (possibly unchanged) gbest error.
float update_gbest(vgpu::Device& device, SwarmState& state);

}  // namespace fastpso::core
