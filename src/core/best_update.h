// Step (iii): pbest and gbest update (paper Section 3.3).
//
// pbest: one thread per particle compares the new target value against the
// particle's best and updates value + best position (massively parallel, no
// cross-particle dependencies).
//
// gbest: argmin + index over all pbest values via the GPU parallel reduction
// (vgpu/reduce.h), then the winning particle's best position is copied into
// the swarm-global best vector.
#pragma once

#include "core/launch_policy.h"
#include "core/swarm_state.h"
#include "vgpu/device.h"

namespace fastpso::core {

/// Outcome of one pbest pass.
struct PbestStats {
  std::int64_t improved = 0;  ///< particles whose pbest improved
};

/// Compares state.perror against state.pbest_err, updating pbest_err and
/// pbest_pos for improved particles. Returns how many improved.
PbestStats update_pbest(vgpu::Device& device, const LaunchPolicy& policy,
                        SwarmState& state);

/// Finds the swarm minimum over pbest_err and refreshes gbest_err /
/// gbest_pos when it improved. Returns the (possibly unchanged) gbest error.
float update_gbest(vgpu::Device& device, SwarmState& state);

}  // namespace fastpso::core
