#include "core/diagnostics.h"

#include <cmath>
#include <limits>
#include <vector>

#include "common/check.h"
#include "vgpu/reduce.h"

namespace fastpso::core {

SwarmDiagnostics compute_diagnostics(vgpu::Device& device,
                                     const LaunchPolicy& policy,
                                     const SwarmState& state) {
  const int n = state.n;
  const int d = state.d;
  const std::int64_t elements = state.elements();
  SwarmDiagnostics diag;

  // Centroid: column sums of P / n (one pass over the matrix).
  std::vector<double> centroid(d, 0.0);
  {
    const LaunchDecision decision = policy.for_elements(d);
    vgpu::KernelCostSpec cost;
    cost.flops = static_cast<double>(elements);
    cost.dram_read_bytes = static_cast<double>(elements) * sizeof(float);
    cost.dram_write_bytes = static_cast<double>(d) * sizeof(float);
    const float* positions = state.positions.data();
    device.launch(decision.config, cost, [&](const vgpu::ThreadCtx& t) {
      for (std::int64_t j = t.global_id(); j < d; j += t.grid_stride()) {
        double acc = 0;
        for (int i = 0; i < n; ++i) {
          acc += positions[static_cast<std::int64_t>(i) * d + j];
        }
        centroid[j] = acc / n;
      }
    });
  }

  // Mean distance to centroid (per-particle kernel + reduction).
  std::vector<float> distance(n, 0.0f);
  {
    const LaunchDecision decision = policy.for_particles(n);
    vgpu::KernelCostSpec cost;
    cost.flops = 3.0 * static_cast<double>(elements);
    cost.transcendentals = n;  // the sqrt
    cost.dram_read_bytes = static_cast<double>(elements) * sizeof(float);
    cost.dram_write_bytes = static_cast<double>(n) * sizeof(float);
    const float* positions = state.positions.data();
    device.launch(decision.config, cost, [&](const vgpu::ThreadCtx& t) {
      for (std::int64_t i = t.global_id(); i < n; i += t.grid_stride()) {
        double acc = 0;
        for (int j = 0; j < d; ++j) {
          const double delta = positions[i * d + j] - centroid[j];
          acc += delta * delta;
        }
        distance[i] = static_cast<float>(std::sqrt(acc));
      }
    });
  }
  diag.position_diversity =
      vgpu::reduce_sum(device, distance.data(), n) / n;

  // Mean |v| over the velocity matrix.
  std::vector<float> abs_velocity(elements);
  {
    const LaunchDecision decision = policy.for_elements(elements);
    vgpu::KernelCostSpec cost;
    cost.flops = static_cast<double>(elements);
    cost.dram_read_bytes = static_cast<double>(elements) * sizeof(float);
    cost.dram_write_bytes = static_cast<double>(elements) * sizeof(float);
    const float* velocities = state.velocities.data();
    device.launch(decision.config, cost, [&](const vgpu::ThreadCtx& t) {
      for (std::int64_t i = t.global_id(); i < elements;
           i += t.grid_stride()) {
        abs_velocity[i] = std::abs(velocities[i]);
      }
    });
  }
  diag.mean_velocity_magnitude =
      vgpu::reduce_sum(device, abs_velocity.data(), elements) /
      static_cast<double>(elements);

  // pbest spread: max - min over the per-particle bests.
  float lo = std::numeric_limits<float>::infinity();
  float hi = -std::numeric_limits<float>::infinity();
  for (int i = 0; i < n; ++i) {
    lo = std::min(lo, state.pbest_err[i]);
    hi = std::max(hi, state.pbest_err[i]);
  }
  diag.pbest_spread = std::isfinite(hi - lo) ? hi - lo : 0.0;
  return diag;
}

}  // namespace fastpso::core
