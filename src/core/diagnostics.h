// Swarm diagnostics: quantities practitioners use to judge a run's health
// (extension beyond the paper). Computed with accounted device kernels so
// they can be sampled inside optimization loops without breaking the
// timing story.
#pragma once

#include "core/launch_policy.h"
#include "core/swarm_state.h"
#include "vgpu/device.h"

namespace fastpso::core {

/// A snapshot of swarm health.
struct SwarmDiagnostics {
  /// Mean Euclidean distance of particles from the swarm centroid —
  /// the standard diversity measure; -> 0 as the swarm collapses.
  double position_diversity = 0;
  /// Mean |v| over all velocity components; large values mean the swarm is
  /// still exploring, tiny values mean it has settled.
  double mean_velocity_magnitude = 0;
  /// Spread of the per-particle bests (max - min of pbest_err); small
  /// spread means the particles agree about the landscape.
  double pbest_spread = 0;
};

/// Computes diagnostics for the current swarm state on the device.
SwarmDiagnostics compute_diagnostics(vgpu::Device& device,
                                     const LaunchPolicy& policy,
                                     const SwarmState& state);

}  // namespace fastpso::core
