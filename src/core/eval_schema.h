// The paper's CUDA evaluation-kernel schema (Section 3.2):
//
//   template<typename L>
//   __global__ void evaluation_kernel(int dim, L lambda) {
//     for (int i = blockIdx.x * blockDim.x + threadIdx.x;
//          i < dim; i += blockDim.x * gridDim.x) {
//       lambda(i);
//     }
//   }
//
// This header is the virtual-GPU rendition: both user-defined evaluation
// functions and the built-in problems are launched through this one schema,
// which grid-strides the lambda over the particle index space under the
// resource-aware launch policy.
#pragma once

#include <cstdint>

#include "core/launch_policy.h"
#include "vgpu/device.h"

namespace fastpso::core {

/// Runs `lambda(i)` for every i in [0, count) on the device, grid-strided.
/// `cost` declares the launch's total work for the performance model.
template <typename L>
void evaluation_kernel(vgpu::Device& device, const LaunchPolicy& policy,
                       std::int64_t count, const vgpu::KernelCostSpec& cost,
                       L&& lambda) {
  const LaunchDecision decision = policy.for_particles(count);
  device.launch(decision.config, cost, [&](const vgpu::ThreadCtx& t) {
    for (std::int64_t i = t.global_id(); i < count; i += t.grid_stride()) {
      lambda(i);
    }
  });
}

}  // namespace fastpso::core
