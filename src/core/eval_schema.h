// The paper's CUDA evaluation-kernel schema (Section 3.2):
//
//   template<typename L>
//   __global__ void evaluation_kernel(int dim, L lambda) {
//     for (int i = blockIdx.x * blockDim.x + threadIdx.x;
//          i < dim; i += blockDim.x * gridDim.x) {
//       lambda(i);
//     }
//   }
//
// This header is the virtual-GPU rendition: both user-defined evaluation
// functions and the built-in problems are launched through this one schema,
// which grid-strides the lambda over the particle index space under the
// resource-aware launch policy.
#pragma once

#include <cstdint>

#include "core/kernels_registry.h"
#include "core/launch_policy.h"
#include "core/objective.h"
#include "vgpu/device.h"
#include "vgpu/prof/prof.h"

namespace fastpso::core {

/// Runs `lambda(i)` for every i in [0, count) on the device, grid-strided.
/// `cost` declares the launch's total work for the performance model.
template <typename L>
void evaluation_kernel(vgpu::Device& device, const LaunchPolicy& policy,
                       std::int64_t count, const vgpu::KernelCostSpec& cost,
                       L&& lambda) {
  const LaunchDecision decision = policy.for_particles(count);
  device.launch(decision.config, cost, [&](const vgpu::ThreadCtx& t) {
    for (std::int64_t i = t.global_id(); i < count; i += t.grid_stride()) {
      lambda(i);
    }
  });
}

/// Evaluates `n` particle rows of `positions` into `out` through the
/// evaluation-kernel schema: `out[i] = (float)fn(positions + i*d, d)`. On
/// the fast path a batched objective runs one devirtualized inner loop
/// (one dispatch per batch, identical accounting); otherwise — custom
/// lambda objectives, sanitizer runs, fast path disabled — it falls back
/// to the per-particle fn through evaluation_kernel.
inline void evaluate_positions(vgpu::Device& device,
                               const LaunchPolicy& policy,
                               const Objective& objective,
                               const float* positions, std::int64_t n, int d,
                               const vgpu::KernelCostSpec& cost, float* out) {
  // Profiler-only label: a san::KernelScope here would opt the launch into
  // sanitizer cost audits and change the sanitizer's golden traces.
  vgpu::prof::KernelLabel label("eval/objective");
  // Fusion footprint (vgpu/graph/fusion.h): element i reads its position
  // row and writes its error scalar. account_launch knows no element
  // domain, so both dispatch paths note it explicitly.
  const auto note_footprint = [&] {
    if (device.capturing()) [[unlikely]] {
      device.graph_note_elements(n);
      device.graph_note_uses(
          {{positions, static_cast<double>(n) * d * sizeof(float),
            static_cast<std::int64_t>(d * sizeof(float)), /*write=*/false,
            "positions"},
           {out, static_cast<double>(n) * sizeof(float), sizeof(float),
            /*write=*/true, "perror"}});
      if (objective.problem != nullptr) {
        device.graph_note_static(
            kernels::make_eval_static(*objective.problem, positions, d, out));
      }
      // account_launch bypasses launch_elements, so a bodies-enabled capture
      // (Device::set_capture_bodies) records the batch dispatch here. The
      // per-element form runs batch_fn on a single row — eval_batch and
      // eval_f32 both funnel into eval_impl<float>, so the bits match.
      if (device.capturing_bodies() && objective.batch_fn) {
        device.graph_attach_bodies(
            [batch = objective.batch_fn, positions, n, d, out] {
              batch(positions, static_cast<int>(n), d, out);
            },
            [batch = objective.batch_fn, positions, d, out](std::int64_t i) {
              batch(positions + i * d, 1, d, out + i);
            });
      }
    }
  };
  if (vgpu::use_fast_path() && objective.batch_fn) {
    const LaunchDecision decision = policy.for_particles(n);
    device.account_launch(decision.config, cost);
    note_footprint();
    // Batch objectives evaluate particle rows independently (the
    // multi-device particle split already splits a batch mid-stream), so a
    // sub-range dispatch is legal: offer the launch to the cross-job
    // packing engine (vgpu/pack.h; no-op without an attached sink). The
    // span captures a pointer to the objective's batch_fn — the objective
    // outlives the cohort round's flush barrier.
    if (device.pack_offer_range(
            n, cost,
            [batch = &objective.batch_fn, positions, d,
             out](std::int64_t b, std::int64_t e) {
              (*batch)(positions + b * d, static_cast<int>(e - b), d,
                       out + b);
            })) {
      return;
    }
    if (vgpu::prof::active()) [[unlikely]] {
      Stopwatch wall;
      objective.batch_fn(positions, static_cast<int>(n), d, out);
      device.prof_note_wall(wall.elapsed_s());
      return;
    }
    objective.batch_fn(positions, static_cast<int>(n), d, out);
    return;
  }
  evaluation_kernel(device, policy, n, cost, [&](std::int64_t i) {
    out[i] = static_cast<float>(objective.fn(positions + i * d, d));
  });
  note_footprint();
}

}  // namespace fastpso::core
