#include "core/init.h"

#include <algorithm>

#include <limits>

#include "common/check.h"
#include "core/kernels_registry.h"
#include "rng/philox.h"
#include "vgpu/prof/prof.h"
#include "vgpu/san/tracked.h"

namespace fastpso::core {
namespace {

namespace san = vgpu::san;

/// Cost of one "fill with uniform randoms" launch over `elements` floats.
vgpu::KernelCostSpec fill_cost(std::int64_t elements) {
  vgpu::KernelCostSpec cost;
  cost.flops = kPhiloxFlopsPerValue * static_cast<double>(elements);
  cost.dram_write_bytes = static_cast<double>(elements) * sizeof(float);
  return cost;
}

/// Grid-stride fill of `out[0, elements)` with U(lo, hi) from `stream`.
/// Each thread produces whole 4-lane Philox blocks (element i still gets
/// the value uniform_at(i), independent of launch shape).
void fill_uniform(vgpu::Device& device, const LaunchPolicy& policy,
                  float* out, std::int64_t elements, std::uint64_t seed,
                  std::uint64_t stream, float lo, float hi) {
  const rng::PhiloxStream rng(seed, stream);
  const std::int64_t blocks = (elements + 3) / 4;
  const LaunchDecision decision = policy.for_elements(blocks);
  const float span = hi - lo;
  // Fusion footprint (vgpu/graph/fusion.h): one element = one Philox block
  // of four floats, so element b owns out[4b, 4b+4). The static kernel is
  // the body the fast path runs (kernels_registry.h) — compiled replay and
  // eager execution share one element function.
  const kernels::FillUniformKernel::Args fill_args{rng, out, elements, lo,
                                                   span};
  const auto note_footprint = [&] {
    if (device.capturing()) {
      device.graph_note_elements(blocks);
      device.graph_note_uses(
          {{out, static_cast<double>(elements) * sizeof(float),
            4 * sizeof(float), /*write=*/true, "fill_out"}});
      device.graph_note_static(
          vgpu::graph::codegen::make_static<kernels::FillUniformKernel>(
              fill_args));
    }
  };
  if (vgpu::use_fast_path()) {
    // Flat loop over Philox blocks; element i gets uniform_at(i) exactly as
    // on the tracked path, so the produced bits are identical. Same profile
    // label as the tracked path's KernelScope. The body captures its
    // arguments by value, so a graph captured with set_capture_bodies(true)
    // stays executable for as long as the output buffer lives.
    vgpu::prof::KernelLabel klabel("init/fill_uniform");
    device.launch_elements(decision.config, fill_cost(elements), blocks,
                           [fill_args](std::int64_t b) {
                             kernels::FillUniformKernel::element(fill_args, b);
                           });
    note_footprint();
    return;
  }
  const auto tracked_out =
      san::track(out, static_cast<std::size_t>(elements), "fill_out");
  san::expect_writes_exactly_once(tracked_out);
  san::KernelScope scope("init/fill_uniform");
  device.launch(decision.config, fill_cost(elements),
                [&](const vgpu::ThreadCtx& t) {
                  for (std::int64_t b = t.global_id(); b < blocks;
                       b += t.grid_stride()) {
                    const auto lanes =
                        rng.uniform4_at(static_cast<std::uint64_t>(b));
                    const std::int64_t base = b * 4;
                    const int count =
                        static_cast<int>(std::min<std::int64_t>(
                            4, elements - base));
                    san::count_flops(kPhiloxFlopsPerValue * count);
                    for (int lane = 0; lane < count; ++lane) {
                      tracked_out[base + lane] = lo + span * lanes[lane];
                    }
                  }
                });
  note_footprint();
}

/// Sharded fill: element b of the launch is the b-th global Philox block
/// overlapping [offset, offset+count); in-range lanes land in
/// out[g - offset]. Bitwise-equal to the matching slice of fill_uniform
/// over the whole array (same seed/stream/global counter), for any shard
/// boundaries — including ones that split a 4-lane block.
void fill_uniform_slice_impl(vgpu::Device& device, const LaunchPolicy& policy,
                             float* out, std::int64_t offset,
                             std::int64_t count, std::uint64_t seed,
                             std::uint64_t stream, float lo, float hi) {
  FASTPSO_CHECK(offset >= 0 && count >= 0);
  if (count == 0) {
    return;
  }
  const rng::PhiloxStream rng(seed, stream);
  const std::int64_t first_block = offset / 4;
  const std::int64_t blocks = (offset + count - 1) / 4 - first_block + 1;
  const LaunchDecision decision = policy.for_elements(blocks);
  const float span = hi - lo;
  const kernels::FillUniformSliceKernel::Args fill_args{rng, out, offset,
                                                        count, lo, span};
  const auto note_footprint = [&] {
    if (device.capturing()) {
      device.graph_note_elements(blocks);
      // Boundary blocks straddle the shard edge, so elements do not own
      // aligned 16-byte rows of `out`; declare the conservative whole-span
      // write (elem_bytes = 0) instead of a per-element footprint.
      device.graph_note_uses(
          {{out, static_cast<double>(count) * sizeof(float),
            /*elem_bytes=*/0, /*write=*/true, "fill_out"}});
      device.graph_note_static(
          vgpu::graph::codegen::make_static<kernels::FillUniformSliceKernel>(
              fill_args));
    }
  };
  if (vgpu::use_fast_path()) {
    vgpu::prof::KernelLabel klabel("init/fill_uniform_slice");
    device.launch_elements(
        decision.config, fill_cost(count), blocks,
        [fill_args](std::int64_t b) {
          kernels::FillUniformSliceKernel::element(fill_args, b);
        });
    note_footprint();
    return;
  }
  const auto tracked_out =
      san::track(out, static_cast<std::size_t>(count), "fill_out");
  san::expect_writes_exactly_once(tracked_out);
  san::KernelScope scope("init/fill_uniform_slice");
  device.launch(decision.config, fill_cost(count),
                [&](const vgpu::ThreadCtx& t) {
                  for (std::int64_t b = t.global_id(); b < blocks;
                       b += t.grid_stride()) {
                    const std::int64_t gb = first_block + b;
                    const auto lanes =
                        rng.uniform4_at(static_cast<std::uint64_t>(gb));
                    const std::int64_t base = gb * 4;
                    for (int lane = 0; lane < 4; ++lane) {
                      const std::int64_t g = base + lane;
                      if (g >= offset && g < offset + count) {
                        san::count_flops(kPhiloxFlopsPerValue);
                        tracked_out[g - offset] = lo + span * lanes[lane];
                      }
                    }
                  }
                });
  note_footprint();
}

/// pbest starts at +inf so the first evaluation always improves it; the
/// pbest positions start at the initial positions.
void reset_pbest(vgpu::Device& device, const LaunchPolicy& policy,
                 SwarmState& state) {
  const std::int64_t elements = state.elements();
  const LaunchDecision per_particle = policy.for_particles(state.n);
  vgpu::KernelCostSpec cost;
  cost.dram_read_bytes = static_cast<double>(elements) * sizeof(float);
  cost.dram_write_bytes =
      static_cast<double>(elements + 2 * state.n) * sizeof(float);
  const int n = state.n;
  const int d = state.d;
  if (vgpu::use_fast_path()) {
    const kernels::PbestResetKernel::Args reset_args{
        state.pbest_err.data(), state.perror.data(), state.positions.data(),
        state.pbest_pos.data(), d};
    vgpu::prof::KernelLabel klabel("init/pbest_reset");
    device.launch_elements(per_particle.config, cost, n,
                           [reset_args](std::int64_t i) {
                             kernels::PbestResetKernel::element(reset_args, i);
                           });
    if (device.capturing()) {
      // No declared footprint (this launch never fuses — it runs once,
      // outside the iteration loop), but the registered span still
      // accelerates node-level standalone replay.
      device.graph_note_static(
          vgpu::graph::codegen::make_static<kernels::PbestResetKernel>(
              reset_args));
    }
    state.gbest_err = std::numeric_limits<float>::infinity();
    return;
  }
  const auto pbest_err =
      san::track(state.pbest_err.data(), static_cast<std::size_t>(n),
                 "pbest_err");
  const auto perror = san::track(state.perror.data(),
                                 static_cast<std::size_t>(n), "perror");
  const auto positions =
      san::track(state.positions.data(), elements, "positions");
  const auto pbest_pos =
      san::track(state.pbest_pos.data(), elements, "pbest_pos");
  san::expect_writes_exactly_once(pbest_err);
  san::expect_writes_exactly_once(perror);
  san::expect_writes_exactly_once(pbest_pos);
  san::KernelScope scope("init/pbest_reset");
  device.launch(per_particle.config, cost, [&](const vgpu::ThreadCtx& t) {
    for (std::int64_t i = t.global_id(); i < n; i += t.grid_stride()) {
      pbest_err[i] = std::numeric_limits<float>::infinity();
      perror[i] = 0.0f;
      for (int j = 0; j < d; ++j) {
        pbest_pos[i * d + j] = positions[i * d + j];
      }
    }
  });
  state.gbest_err = std::numeric_limits<float>::infinity();
}

}  // namespace

void initialize_swarm(vgpu::Device& device, const LaunchPolicy& policy,
                      SwarmState& state, std::uint64_t seed, float lower,
                      float upper, float vmax) {
  const std::int64_t elements = state.elements();
  fill_uniform(device, policy, state.positions.data(), elements, seed,
               /*stream=*/0, lower, upper);
  fill_uniform(device, policy, state.velocities.data(), elements, seed,
               /*stream=*/1, -vmax, vmax);
  reset_pbest(device, policy, state);
}

void generate_weights(vgpu::Device& device, const LaunchPolicy& policy,
                      std::int64_t elements, std::uint64_t seed, int iter,
                      vgpu::DeviceArray<float>& l_mat,
                      vgpu::DeviceArray<float>& g_mat) {
  const std::uint64_t l_stream = 2 + 2 * static_cast<std::uint64_t>(iter);
  const std::uint64_t g_stream = l_stream + 1;
  fill_uniform(device, policy, l_mat.data(), elements, seed, l_stream, 0.0f,
               1.0f);
  fill_uniform(device, policy, g_mat.data(), elements, seed, g_stream, 0.0f,
               1.0f);
}

void fill_uniform_slice(vgpu::Device& device, const LaunchPolicy& policy,
                        float* out, std::int64_t offset, std::int64_t count,
                        std::uint64_t seed, std::uint64_t stream, float lo,
                        float hi) {
  fill_uniform_slice_impl(device, policy, out, offset, count, seed, stream,
                          lo, hi);
}

void initialize_swarm_slice(vgpu::Device& device, const LaunchPolicy& policy,
                            SwarmState& state, std::uint64_t seed,
                            std::int64_t offset, float lower, float upper,
                            float vmax) {
  const std::int64_t count = state.elements();
  fill_uniform_slice_impl(device, policy, state.positions.data(), offset,
                          count, seed, /*stream=*/0, lower, upper);
  fill_uniform_slice_impl(device, policy, state.velocities.data(), offset,
                          count, seed, /*stream=*/1, -vmax, vmax);
  reset_pbest(device, policy, state);
}

void generate_weights_slice(vgpu::Device& device, const LaunchPolicy& policy,
                            std::int64_t offset, std::int64_t count,
                            std::uint64_t seed, int iter,
                            vgpu::DeviceArray<float>& l_mat,
                            vgpu::DeviceArray<float>& g_mat) {
  const std::uint64_t l_stream = 2 + 2 * static_cast<std::uint64_t>(iter);
  const std::uint64_t g_stream = l_stream + 1;
  fill_uniform_slice_impl(device, policy, l_mat.data(), offset, count, seed,
                          l_stream, 0.0f, 1.0f);
  fill_uniform_slice_impl(device, policy, g_mat.data(), offset, count, seed,
                          g_stream, 0.0f, 1.0f);
}

}  // namespace fastpso::core
