// Step (i): swarm initialization and per-iteration random-weight generation
// (paper Section 3.1).
//
// All randomness is produced by the counter-based Philox generator, so every
// element of every matrix is computed independently by its own thread — the
// "parallel techniques to initialize swarm particles with fast random number
// generation" the paper builds on Thrust. Streams are laid out as:
//
//   stream 0            — initial positions
//   stream 1            — initial velocities
//   stream 2 + 2*iter   — L (cognitive weights) of iteration `iter`
//   stream 3 + 2*iter   — G (social weights) of iteration `iter`
//
// which makes runs bit-reproducible for a given seed regardless of launch
// shape.
#pragma once

#include <cstdint>

#include "core/launch_policy.h"
#include "core/swarm_state.h"
#include "vgpu/buffer.h"
#include "vgpu/device.h"

namespace fastpso::core {

/// Approximate FLOP cost of producing one Philox-derived uniform float
/// (10 rounds / 4 lanes, integer ops counted as flops for the model).
inline constexpr double kPhiloxFlopsPerValue = 13.0;

/// Initializes positions uniformly in [lower, upper] and velocities in
/// [-vmax, vmax]; resets pbest/gbest bookkeeping.
void initialize_swarm(vgpu::Device& device, const LaunchPolicy& policy,
                      SwarmState& state, std::uint64_t seed, float lower,
                      float upper, float vmax);

/// Fills the random-weight matrices L and G for iteration `iter`
/// (components ~ U(0,1), Eq. 1).
void generate_weights(vgpu::Device& device, const LaunchPolicy& policy,
                      std::int64_t elements, std::uint64_t seed, int iter,
                      vgpu::DeviceArray<float>& l_mat,
                      vgpu::DeviceArray<float>& g_mat);

// --- sharded (multi-device) variants ---------------------------------------
// A shard owning particles [begin, begin+count) draws GLOBAL elements
// [begin*d, (begin+count)*d) of the whole-swarm fills: the same seed, the
// same stream, the element's global index as the Philox counter. Sharded
// randoms are therefore bitwise-equal to the corresponding slice of a
// single-device run for any shard layout — the invariance both multi-GPU
// paths (core/multi_gpu.h, core/multi_device.h) and their differential
// tests rest on.

/// Writes global elements [offset, offset+count) of the logical array
/// drawn from `stream` into out[0, count). Shards may start mid-Philox
/// block; only in-range lanes are written.
void fill_uniform_slice(vgpu::Device& device, const LaunchPolicy& policy,
                        float* out, std::int64_t offset, std::int64_t count,
                        std::uint64_t seed, std::uint64_t stream, float lo,
                        float hi);

/// initialize_swarm for a shard whose storage holds global elements
/// [offset, offset+state.elements()): positions/velocities are slices of
/// the whole-swarm fills; pbest/gbest bookkeeping resets as usual.
void initialize_swarm_slice(vgpu::Device& device, const LaunchPolicy& policy,
                            SwarmState& state, std::uint64_t seed,
                            std::int64_t offset, float lower, float upper,
                            float vmax);

/// generate_weights for a shard: L/G receive global elements
/// [offset, offset+count) of iteration `iter`'s whole-swarm weight fills.
void generate_weights_slice(vgpu::Device& device, const LaunchPolicy& policy,
                            std::int64_t offset, std::int64_t count,
                            std::uint64_t seed, int iter,
                            vgpu::DeviceArray<float>& l_mat,
                            vgpu::DeviceArray<float>& g_mat);

}  // namespace fastpso::core
