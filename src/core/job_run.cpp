#include "core/job_run.h"

#include "common/check.h"
#include "core/best_update.h"
#include "core/eval_schema.h"
#include "core/init.h"
#include "core/neighborhood.h"
#include "vgpu/prof/prof.h"

namespace fastpso::core {

SwarmState JobRun::make_state(vgpu::Device& device, int n, int d) {
  device.set_phase("init");
  return SwarmState(device, n, d);
}

JobRun::JobRun(vgpu::Device& device, const PsoParams& params,
               const Objective& objective, Mode mode)
    : device_(device),
      params_(params),
      objective_(objective),
      mode_(mode),
      policy_(device.spec()),
      coeff_(make_coefficients(params, objective.lower, objective.upper)),
      // ---- Step (i): allocation + initialization ------------------------
      state_(make_state(device, params.particles, params.dim)),
      stop_(params) {
  FASTPSO_CHECK_MSG(params_.particles > 0, "need at least one particle");
  FASTPSO_CHECK_MSG(params_.dim > 0, "dimension must be positive");
  FASTPSO_CHECK_MSG(params_.max_iter > 0, "need at least one iteration");
  FASTPSO_CHECK_MSG(params_.synchronization == Synchronization::kSynchronous,
                    "JobRun drives the synchronous pipeline only");
  if (params_.topology == Topology::kRing) {
    FASTPSO_CHECK_MSG(params_.technique == UpdateTechnique::kGlobalMemory,
                      "ring topology requires the global-memory technique");
    FASTPSO_CHECK_MSG(params_.ring_neighbors >= 1 &&
                          2 * params_.ring_neighbors + 1 <= params_.particles,
                      "invalid ring neighborhood");
  }
  FASTPSO_CHECK_MSG(static_cast<bool>(objective_.fn),
                    "objective has no evaluation function");
  FASTPSO_CHECK_MSG(objective_.upper > objective_.lower,
                    "objective domain is empty");

  const int n = params_.particles;
  const int d = params_.dim;
  // Velocity init range: the clamp bound when clamping, else the domain.
  const float v_init = coeff_.vmax > 0.0f
                           ? coeff_.vmax
                           : static_cast<float>(objective_.upper -
                                                objective_.lower);
  {
    ScopedTimer timer(wall_, "init");
    initialize_swarm(device_, policy_, state_, params_.seed,
                     static_cast<float>(objective_.lower),
                     static_cast<float>(objective_.upper), v_init);
  }

  // Evaluation cost declaration, reused every iteration.
  eval_cost_.flops = objective_.cost.flops(d) * n;
  eval_cost_.transcendentals = objective_.cost.transcendentals(d) * n;
  eval_cost_.dram_read_bytes =
      static_cast<double>(state_.elements()) * sizeof(float);
  eval_cost_.dram_write_bytes = static_cast<double>(n) * sizeof(float);

  positions_ = state_.positions.data();
  perror_ = state_.perror.data();

  if (params_.topology == Topology::kRing) {
    nbest_idx_ = vgpu::DeviceArray<std::int32_t>(device_, n);
  }

  // Overlapped pipeline: double-buffered weight matrices + a second
  // stream so Step (i) of iteration t+1 hides behind Steps (ii)-(iii) of
  // iteration t. Same Philox streams, so results are bit-identical.
  if (params_.overlap_init) {
    gen_stream_ = device_.create_stream();
    device_.set_phase("init");
    ScopedTimer timer(wall_, "init");
    for (int b = 0; b < 2; ++b) {
      l_buf_[b] = vgpu::DeviceArray<float>(device_, state_.elements());
      g_buf_[b] = vgpu::DeviceArray<float>(device_, state_.elements());
    }
    generate_weights(device_, policy_, state_.elements(), params_.seed, 0,
                     l_buf_[0], g_buf_[0]);
  }
}

void JobRun::step() {
  step_front();
  step_middle();
  step_back();
}

void JobRun::step_front() {
  FASTPSO_CHECK_MSG(!done_ && !finished_, "step() on a completed run");
  const int iter = completed_;
  const int n = params_.particles;
  const int d = params_.dim;
  if (params_.overlap_init) {
    // ---- Step (i), overlapped: next iteration's weights on stream 1 ----
    if (iter + 1 < params_.max_iter) {
      ScopedTimer timer(wall_, "init");
      device_.set_phase("init");
      device_.set_stream(gen_stream_);
      generate_weights(device_, policy_, state_.elements(), params_.seed,
                       iter + 1, l_buf_[(iter + 1) % 2],
                       g_buf_[(iter + 1) % 2]);
      device_.set_stream(0);
    }
  } else {
    // ---- Step (i) continued: per-iteration weight matrices -------------
    device_.set_phase("init");
    ScopedTimer timer(wall_, "init");
    iter_l_ = vgpu::DeviceArray<float>(device_, state_.elements());
    iter_g_ = vgpu::DeviceArray<float>(device_, state_.elements());
    generate_weights(device_, policy_, state_.elements(), params_.seed,
                     iter, iter_l_, iter_g_);
  }

  // ---- Step (ii): evaluation through the kernel schema -----------------
  {
    vgpu::prof::Scope phase(device_, "eval");
    ScopedTimer timer(wall_, "eval");
    evaluate_positions(device_, policy_, objective_, positions_, n, d,
                       eval_cost_, perror_);
  }

  // ---- Step (iii), pass 1: pbest compare -------------------------------
  {
    vgpu::prof::Scope phase(device_, "pbest");
    ScopedTimer timer(wall_, "pbest");
    update_pbest_compare(device_, policy_, state_);
  }
}

void JobRun::step_middle() {
  // ---- Step (iii), host read-back + pass 2: pbest gather ---------------
  // Same "pbest" phase as the compare pass; prof::Scope only sets the
  // phase string, so two scopes account identically to the old single one.
  vgpu::prof::Scope phase(device_, "pbest");
  ScopedTimer timer(wall_, "pbest");
  update_pbest_finish(device_, policy_, state_);
}

void JobRun::step_back() {
  const int iter = completed_;
  {
    vgpu::prof::Scope phase(device_, "gbest");
    ScopedTimer timer(wall_, "gbest");
    update_gbest(device_, state_);
  }

  // ---- Step (iv): swarm update -----------------------------------------
  if (params_.overlap_init) {
    device_.sync_streams();  // the weights must have landed
  }
  vgpu::DeviceArray<float>& l_cur =
      params_.overlap_init ? l_buf_[iter % 2] : iter_l_;
  vgpu::DeviceArray<float>& g_cur =
      params_.overlap_init ? g_buf_[iter % 2] : iter_g_;
  // Plain set_phase, not a prof::Scope: "swarm" must persist past the
  // block so the end-of-iteration weight-matrix frees stay attributed to
  // it, exactly as before.
  device_.set_phase("swarm");
  {
    ScopedTimer timer(wall_, "swarm");
    const UpdateCoefficients it_coeff =
        coefficients_for_iter(coeff_, params_, iter);
    if (params_.topology == Topology::kRing) {
      update_ring_nbest(device_, policy_, state_, params_.ring_neighbors,
                        nbest_idx_);
      swarm_update_ring(device_, policy_, state_, l_cur, g_cur, it_coeff,
                        nbest_idx_.data());
    } else {
      swarm_update(device_, policy_, state_, l_cur, g_cur, it_coeff,
                   params_.technique);
    }
  }

  completed_ = iter + 1;
  history_.push_back(state_.gbest_err);
  if (completed_ >= params_.max_iter || stop_.should_stop(state_.gbest_err)) {
    done_ = true;
  }
  // Free the per-iteration weights g then l — the order the old step()
  // locals' reverse destruction produced (phase is still "swarm").
  iter_g_.reset();
  iter_l_.reset();
}

Result JobRun::finish() {
  FASTPSO_CHECK_MSG(!finished_, "finish() called twice");
  finished_ = true;
  Result result;
  // Fetch the final answer from the device.
  device_.set_phase("gbest");
  result.gbest_position.resize(params_.dim);
  state_.gbest_pos.download(result.gbest_position);
  result.gbest_value = state_.gbest_err;
  result.iterations = completed_;
  result.gbest_history = std::move(history_);
  result.wall_seconds = total_watch_.elapsed_s();
  result.wall_breakdown = wall_;
  result.modeled_breakdown = device_.modeled_breakdown();
  result.modeled_seconds = mode_ == Mode::kServe
                               ? device_.counters().modeled_seconds
                               : device_.modeled_seconds();
  result.counters = device_.counters();
  if (mode_ == Mode::kSolo) {
    result.profile = device_.take_profile();
  }
  return result;
}

std::vector<std::pair<const void*, std::size_t>> JobRun::buffer_spans()
    const {
  std::vector<std::pair<const void*, std::size_t>> spans;
  const auto note = [&spans](const void* base, std::size_t bytes) {
    if (base != nullptr && bytes > 0) {
      spans.emplace_back(base, bytes);
    }
  };
  note(state_.positions.data(), state_.positions.bytes());
  note(state_.velocities.data(), state_.velocities.bytes());
  note(state_.pbest_pos.data(), state_.pbest_pos.bytes());
  note(state_.pbest_err.data(), state_.pbest_err.bytes());
  note(state_.perror.data(), state_.perror.bytes());
  note(state_.improved.data(), state_.improved.bytes());
  note(state_.gbest_pos.data(), state_.gbest_pos.bytes());
  note(nbest_idx_.data(), nbest_idx_.bytes());
  note(iter_l_.data(), iter_l_.bytes());
  note(iter_g_.data(), iter_g_.bytes());
  for (int b = 0; b < 2; ++b) {
    note(l_buf_[b].data(), l_buf_[b].bytes());
    note(g_buf_[b].data(), g_buf_[b].bytes());
  }
  return spans;
}

}  // namespace fastpso::core
