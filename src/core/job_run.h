// The synchronous PSO run body in step-able form — the job-shaped entry
// point under Optimizer::optimize and the serve scheduler (src/serve/).
//
// Optimizer::optimize_sync used to own the whole loop; extracting it here
// lets a scheduler interleave iterations of many jobs on one shared device
// while every job still executes the *identical* sequence of device
// operations a solo run would. Solo-vs-scheduled bitwise equivalence is by
// construction: both paths drive this one loop body, and all randomness is
// counter-based (rng/philox), so results depend only on (seed, shape).
//
// The caller owns the iteration bracketing: Optimizer wraps step() in an
// IterationRecorder (FASTPSO_GRAPH / FASTPSO_FUSE), the serve scheduler
// wraps it in its shape-keyed graph cache's capture/replay sessions.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "core/launch_policy.h"
#include "core/objective.h"
#include "core/params.h"
#include "core/result.h"
#include "core/stop_tracker.h"
#include "core/swarm_state.h"
#include "core/swarm_update.h"
#include "vgpu/buffer.h"
#include "vgpu/device.h"

namespace fastpso::core {

class JobRun {
 public:
  /// How finish() sources the run's top-line timing.
  enum class Mode {
    /// Whole-device run (Optimizer): modeled_seconds is the device clock
    /// (overlap across streams deducted) and the profile is taken.
    kSolo,
    /// Scheduled run (serve): the device clock is the shared multiplexed
    /// timeline, so modeled_seconds comes from this job's own accounting
    /// (== the solo device clock bitwise: the sync single-stream run
    /// accumulates both by the same += sequence). The profiler timeline
    /// stays on the device — it interleaves all jobs.
    kServe,
  };

  /// Allocates and initializes the swarm (Step i). The device, params and
  /// objective must outlive the run. Performs no reset_counters — the
  /// caller decides whose accounting the run accumulates into.
  JobRun(vgpu::Device& device, const PsoParams& params,
         const Objective& objective, Mode mode = Mode::kSolo);

  JobRun(const JobRun&) = delete;
  JobRun& operator=(const JobRun&) = delete;

  /// Runs exactly one iteration (Steps i–iv). Must not be called once
  /// done() — the run stops at max_iter or the early-stop condition.
  void step();

  /// One iteration in three sub-steps; step() == front; middle; back. The
  /// cuts sit exactly at the iteration's two host read-backs (the pbest
  /// improved-count loop and the gbest argmin fold), so the serve layer's
  /// packed lockstep stepping can run every cohort job's front, flush the
  /// packed launches, then every middle, flush, then every back — each
  /// job still issues the identical device-op sequence a solo step()
  /// would, keeping results bitwise equal. Call strictly in order.
  void step_front();
  void step_middle();
  void step_back();

  [[nodiscard]] bool done() const { return done_; }
  /// Iterations completed so far.
  [[nodiscard]] int iterations() const { return completed_; }
  [[nodiscard]] double gbest() const { return state_.gbest_err; }

  /// Downloads the answer and assembles the Result. Call at most once,
  /// after the last step().
  Result finish();

  /// Spans of every device buffer this run owns (base, bytes). The serve
  /// suite asserts that concurrently active jobs' spans are pairwise
  /// disjoint (no cross-job buffer sharing).
  [[nodiscard]] std::vector<std::pair<const void*, std::size_t>>
  buffer_spans() const;

 private:
  /// Sets the device phase to "init" before the swarm allocations so their
  /// modeled alloc costs land in the right bucket, exactly as the inline
  /// loop did.
  static SwarmState make_state(vgpu::Device& device, int n, int d);

  vgpu::Device& device_;
  const PsoParams params_;
  const Objective& objective_;
  Mode mode_;
  LaunchPolicy policy_;
  UpdateCoefficients coeff_;
  SwarmState state_;
  vgpu::KernelCostSpec eval_cost_;
  const float* positions_ = nullptr;
  float* perror_ = nullptr;
  // Ring topology working set (allocated only when used).
  vgpu::DeviceArray<std::int32_t> nbest_idx_;
  // Overlapped pipeline (params.overlap_init): double-buffered weight
  // matrices + a second stream.
  vgpu::DeviceArray<float> l_buf_[2];
  vgpu::DeviceArray<float> g_buf_[2];
  // Non-overlapped per-iteration weight matrices. Members (not step()
  // locals) so they live across the front/middle/back sub-steps; freed at
  // the end of step_back in the g-then-l order the old locals' reverse
  // destruction gave, keeping the pool-cache sequence bitwise identical.
  vgpu::DeviceArray<float> iter_l_;
  vgpu::DeviceArray<float> iter_g_;
  vgpu::Device::StreamId gen_stream_ = 0;
  StopTracker stop_;
  TimeBreakdown wall_;
  Stopwatch total_watch_;
  std::vector<float> history_;
  int completed_ = 0;
  bool done_ = false;
  bool finished_ = false;
};

}  // namespace fastpso::core
