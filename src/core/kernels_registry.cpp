#include "core/kernels_registry.h"

#include "problems/functions.h"

namespace fastpso::core::kernels {

namespace codegen = vgpu::graph::codegen;

namespace {

std::uint32_t intern(const char* name) { return codegen::intern_tag(name); }

}  // namespace

std::uint32_t FillUniformKernel::tag() {
  static const std::uint32_t t = intern("init/fill_uniform");
  return t;
}
std::uint32_t FillUniformSliceKernel::tag() {
  static const std::uint32_t t = intern("init/fill_uniform_slice");
  return t;
}
std::uint32_t PbestResetKernel::tag() {
  static const std::uint32_t t = intern("init/pbest_reset");
  return t;
}
std::uint32_t PbestCompareKernel::tag() {
  static const std::uint32_t t = intern("best_update/compare_flag");
  return t;
}
std::uint32_t PbestGatherKernel::tag() {
  static const std::uint32_t t = intern("best_update/gather");
  return t;
}
std::uint32_t GbestCopyKernel::tag() {
  static const std::uint32_t t = intern("best_update/gbest_copy");
  return t;
}
std::uint32_t SwarmUpdateGlobalKernel::tag() {
  static const std::uint32_t t = intern("swarm_update/global");
  return t;
}
std::uint32_t SwarmUpdateRingKernel::tag() {
  static const std::uint32_t t = intern("swarm_update/ring");
  return t;
}
std::uint32_t RingNbestKernel::tag() {
  static const std::uint32_t t = intern("neighborhood/ring_nbest");
  return t;
}
std::uint32_t EvalBatchKernel::tag() {
  static const std::uint32_t t = intern("eval/batch");
  return t;
}

template <>
struct EvalTagName<problems::Sphere> {
  static constexpr const char* value = "eval/sphere";
};
template <>
struct EvalTagName<problems::Griewank> {
  static constexpr const char* value = "eval/griewank";
};
template <>
struct EvalTagName<problems::Easom> {
  static constexpr const char* value = "eval/easom";
};

codegen::StaticKernel make_eval_static(const problems::Problem& problem,
                                       const float* X, int d, float* out) {
  const EvalArgs args{&problem, X, d, out};
  if (dynamic_cast<const problems::Sphere*>(&problem) != nullptr) {
    return codegen::make_static<EvalProblemKernel<problems::Sphere>>(args);
  }
  if (dynamic_cast<const problems::Griewank*>(&problem) != nullptr) {
    return codegen::make_static<EvalProblemKernel<problems::Griewank>>(args);
  }
  if (dynamic_cast<const problems::Easom*>(&problem) != nullptr) {
    return codegen::make_static<EvalProblemKernel<problems::Easom>>(args);
  }
  return codegen::make_static<EvalBatchKernel>(args);
}

namespace {

/// Composed loops for the member tag sequences the core pipeline actually
/// produces (fusion.cpp's greedy pass over one sync iteration):
///   {fill, fill}                        weight generation, d != 4
///   {eval, compare, gather}             per-particle run, d != 4
///   {fill, fill, eval, compare, gather} the whole per-particle run at
///                                       d = 4, where the Philox block
///                                       count equals the particle count
/// Concrete-typed eval members only: the generic EvalBatchKernel keeps the
/// chunked tier (its span is already one devirtualized batch call).
bool register_compositions() {
  using codegen::register_composed_sequence;
  register_composed_sequence<FillUniformKernel, FillUniformKernel>();
  const auto per_problem = []<typename P>() {
    register_composed_sequence<EvalProblemKernel<P>, PbestCompareKernel,
                               PbestGatherKernel>();
    register_composed_sequence<FillUniformKernel, FillUniformKernel,
                               EvalProblemKernel<P>, PbestCompareKernel,
                               PbestGatherKernel>();
  };
  per_problem.template operator()<problems::Sphere>();
  per_problem.template operator()<problems::Griewank>();
  per_problem.template operator()<problems::Easom>();
  return true;
}

[[maybe_unused]] const bool g_composed_registered = register_compositions();

}  // namespace

}  // namespace fastpso::core::kernels
