// Static forms of the core element kernels, for the compiled fused-loop
// path (vgpu/graph/codegen.h, DESIGN.md §11).
//
// Each kernel struct is the single source of truth for its per-element
// code: the call site (init.cpp, swarm_update.cpp, best_update.cpp,
// eval_schema.h) launches a lambda that calls `Kernel::element(args, i)`
// AND registers the same struct against the captured graph node
// (Device::graph_note_static). Compiled replay therefore runs the exact
// code the eager launch ran — bitwise identity holds by construction, not
// by testing alone (the differential suites in tests/test_codegen.cpp
// still pin it).
//
// Contract per struct (consumed by codegen::make_static):
//   struct Args        by-value argument pack; raw pointers inside follow
//                      the captured-body lifetime promise
//                      (Device::set_capture_bodies)
//   static tag()       interned code tag — identifies CODE, never data
//   static element()   the per-element kernel
//   static span()      optional batched form when cheaper than the
//                      per-element loop (the eval dispatch uses one
//                      virtual eval_batch call per chunk)
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>

#include "core/swarm_update.h"
#include "problems/problem.h"
#include "rng/philox.h"
#include "vgpu/graph/codegen.h"
#include "vgpu/san/sanitizer.h"

namespace fastpso::core::kernels {

/// Canonical per-element velocity/position update, shared by every swarm
/// update variant (global/ring scalar paths, shared-memory tiles, tensor
/// epilogue) so results are bit-identical across all of them. Templated on
/// the velocity/position reference so it accepts both plain float lvalues
/// and sanitizer-tracked element proxies.
template <typename VRef, typename PRef>
inline void update_element(VRef&& v, PRef&& p, float l, float g, float pb,
                           float gb, const UpdateCoefficients& k) {
  vgpu::san::count_flops(10.0);
  const float pv = p;
  float nv = k.omega * static_cast<float>(v) + k.c1 * l * (pb - pv) +
             k.c2 * g * (gb - pv);
  if (k.vmax > 0.0f) {
    nv = std::clamp(nv, -k.vmax, k.vmax);  // Eq. 5 bound constraint
  }
  v = nv;
  float np = pv + nv;
  if (k.clamp_position) {
    np = std::clamp(np, k.pos_lower, k.pos_upper);
  }
  p = np;
}

/// init/fill_uniform: element b produces one whole 4-lane Philox block
/// (tail-clamped), exactly as the call-site fast path.
struct FillUniformKernel {
  struct Args {
    rng::PhiloxStream rng;
    float* out;
    std::int64_t elements;  ///< total floats; the domain is Philox blocks
    float lo;
    float span;
  };
  [[nodiscard]] static std::uint32_t tag();
  static void element(const Args& a, std::int64_t b) {
    const auto lanes = a.rng.uniform4_at(static_cast<std::uint64_t>(b));
    const std::int64_t base = b * 4;
    const int count =
        static_cast<int>(std::min<std::int64_t>(4, a.elements - base));
    for (int lane = 0; lane < count; ++lane) {
      a.out[base + lane] = a.lo + a.span * lanes[lane];
    }
  }
};

/// init/fill_uniform_slice: the sharded form of init/fill_uniform.
/// out[0, count) holds GLOBAL elements [offset, offset+count) of the
/// logical whole-swarm array; element b is the b-th global Philox block
/// overlapping the slice (blocks may straddle shard boundaries — only
/// in-range lanes are written). The produced bits equal the corresponding
/// slice of a whole-array fill with the same seed/stream for ANY shard
/// layout, which is what makes sharded runs (core/multi_gpu.h,
/// core/multi_device.h) bitwise-identical to single-device runs.
struct FillUniformSliceKernel {
  struct Args {
    rng::PhiloxStream rng;
    float* out;           ///< slice storage: out[0] is global element offset
    std::int64_t offset;  ///< first global element of the slice
    std::int64_t count;   ///< slice length in elements
    float lo;
    float span;
  };
  [[nodiscard]] static std::uint32_t tag();
  static void element(const Args& a, std::int64_t b) {
    const std::int64_t gb = a.offset / 4 + b;
    const auto lanes = a.rng.uniform4_at(static_cast<std::uint64_t>(gb));
    const std::int64_t base = gb * 4;
    for (int lane = 0; lane < 4; ++lane) {
      const std::int64_t g = base + lane;
      if (g >= a.offset && g < a.offset + a.count) {
        a.out[g - a.offset] = a.lo + a.span * lanes[lane];
      }
    }
  }
};

/// init/pbest_reset: per-particle reset of the best-so-far state.
struct PbestResetKernel {
  struct Args {
    float* pbest_err;
    float* perror;
    const float* positions;
    float* pbest_pos;
    int d;
  };
  [[nodiscard]] static std::uint32_t tag();
  static void element(const Args& a, std::int64_t i) {
    a.pbest_err[i] = std::numeric_limits<float>::infinity();
    a.perror[i] = 0.0f;
    for (int j = 0; j < a.d; ++j) {
      a.pbest_pos[i * a.d + j] = a.positions[i * a.d + j];
    }
  }
};

/// best_update/compare_flag: branchless pbest compare + improved flag.
struct PbestCompareKernel {
  struct Args {
    const float* perror;
    float* pbest_err;
    std::uint8_t* improved;
  };
  [[nodiscard]] static std::uint32_t tag();
  static void element(const Args& a, std::int64_t i) {
    const float pe = a.perror[i];
    const float pb = a.pbest_err[i];
    const bool better = pe < pb;
    a.improved[i] = better ? 1 : 0;
    a.pbest_err[i] = better ? pe : pb;
  }
};

/// best_update/gather: flagged particles copy their position row into
/// pbest_pos.
struct PbestGatherKernel {
  struct Args {
    const std::uint8_t* improved;
    const float* positions;
    float* pbest_pos;
    int d;
  };
  [[nodiscard]] static std::uint32_t tag();
  static void element(const Args& a, std::int64_t i) {
    if (a.improved[i]) {
      for (int j = 0; j < a.d; ++j) {
        a.pbest_pos[i * a.d + j] = a.positions[i * a.d + j];
      }
    }
  }
};

/// best_update/gbest_copy: copies the winning pbest row into gbest_pos.
struct GbestCopyKernel {
  struct Args {
    const float* src;
    float* dst;
  };
  [[nodiscard]] static std::uint32_t tag();
  static void element(const Args& a, std::int64_t j) { a.dst[j] = a.src[j]; }
};

/// swarm_update/global: per-element update against the gbest attractor.
struct SwarmUpdateGlobalKernel {
  struct Args {
    float* velocities;
    float* positions;
    const float* l;
    const float* g;
    const float* pbest_pos;
    const float* gbest_pos;
    int d;
    UpdateCoefficients coeff;
  };
  [[nodiscard]] static std::uint32_t tag();
  static void element(const Args& a, std::int64_t i) {
    const int col = static_cast<int>(i % a.d);
    update_element(a.velocities[i], a.positions[i], a.l[i], a.g[i],
                   a.pbest_pos[i], a.gbest_pos[col], a.coeff);
  }
  /// Row-segment form: same elements in the same ascending order and the
  /// same arithmetic per element, but the i%d / i/d bookkeeping is hoisted
  /// to one carried column counter — the per-element integer divide is what
  /// dominates the flat loop (profiled ~30 ns/element; this span is the
  /// compiled tier's actual win on the Table 1 pipeline).
  static void span(const void* args, std::int64_t begin, std::int64_t end) {
    const Args a = *static_cast<const Args*>(args);
    std::int64_t i = begin;
    int col = static_cast<int>(i % a.d);
    while (i < end) {
      const std::int64_t stop = std::min<std::int64_t>(end, i + (a.d - col));
      for (; i < stop; ++i, ++col) {
        update_element(a.velocities[i], a.positions[i], a.l[i], a.g[i],
                       a.pbest_pos[i], a.gbest_pos[col], a.coeff);
      }
      col = 0;
    }
  }
};

/// swarm_update/ring: the attractor is a gather out of pbest_pos steered by
/// the ring-neighborhood index array.
struct SwarmUpdateRingKernel {
  struct Args {
    float* velocities;
    float* positions;
    const float* l;
    const float* g;
    const float* pbest_pos;
    const std::int32_t* nbest_idx;
    int d;
    UpdateCoefficients coeff;
  };
  [[nodiscard]] static std::uint32_t tag();
  static void element(const Args& a, std::int64_t i) {
    const std::int64_t row = i / a.d;
    const int col = static_cast<int>(i % a.d);
    const float attractor =
        a.pbest_pos[static_cast<std::int64_t>(a.nbest_idx[row]) * a.d + col];
    update_element(a.velocities[i], a.positions[i], a.l[i], a.g[i],
                   a.pbest_pos[i], attractor, a.coeff);
  }
  /// Row-segment form (see SwarmUpdateGlobalKernel::span): additionally
  /// hoists the neighborhood gather's row base to one load per row.
  static void span(const void* args, std::int64_t begin, std::int64_t end) {
    const Args a = *static_cast<const Args*>(args);
    std::int64_t i = begin;
    std::int64_t row = i / a.d;
    int col = static_cast<int>(i % a.d);
    while (i < end) {
      const std::int64_t stop = std::min<std::int64_t>(end, i + (a.d - col));
      const float* attractor_row =
          a.pbest_pos + static_cast<std::int64_t>(a.nbest_idx[row]) * a.d;
      for (; i < stop; ++i, ++col) {
        update_element(a.velocities[i], a.positions[i], a.l[i], a.g[i],
                       a.pbest_pos[i], attractor_row[col], a.coeff);
      }
      col = 0;
      ++row;
    }
  }
};

/// neighborhood/ring_nbest: per-particle argmin over the ring window of
/// pbest errors. Deterministic tie-breaking (self first, then nearer
/// neighbors, left before right) — only strictly better neighbors replace
/// the incumbent.
struct RingNbestKernel {
  struct Args {
    const float* pbest_err;
    std::int32_t* out;
    int n;
    int neighbors;
  };
  [[nodiscard]] static std::uint32_t tag();
  static void element(const Args& a, std::int64_t i) {
    std::int32_t best = static_cast<std::int32_t>(i);
    float best_err = a.pbest_err[i];
    for (int off = 1; off <= a.neighbors; ++off) {
      for (int sign : {-1, 1}) {
        const std::int64_t j = (i + sign * off + a.n) % a.n;
        if (a.pbest_err[j] < best_err) {
          best = static_cast<std::int32_t>(j);
          best_err = a.pbest_err[j];
        }
      }
    }
    a.out[i] = best;
  }
};

/// Shared argument pack of every eval-dispatch kernel: generic and
/// concrete-typed forms run over identical arguments, so the registration
/// choice (make_eval_static) never changes data flow.
struct EvalArgs {
  const problems::Problem* problem;
  const float* X;
  int d;
  float* out;
};

/// eval/batch: the generic Table 1 dispatch for any Problem. The span runs
/// one virtual eval_batch per chunk — the same devirtualized loop the eager
/// batch path runs, so identity is trivial; the per-element form pays a
/// virtual call but computes identical bits (eval_f32 and eval_batch both
/// funnel into eval_impl<float>, problems/problem.h).
struct EvalBatchKernel {
  using Args = EvalArgs;
  [[nodiscard]] static std::uint32_t tag();
  static void element(const Args& a, std::int64_t i) {
    a.out[i] =
        static_cast<float>(a.problem->eval_f32(a.X + i * a.d, a.d));
  }
  static void span(const void* args, std::int64_t begin, std::int64_t end) {
    const auto& a = *static_cast<const Args*>(args);
    a.problem->eval_batch(a.X + begin * a.d, static_cast<int>(end - begin),
                          a.d, a.out + begin);
  }
};

/// Tag names for the concrete-typed eval kernels (one per built-in problem
/// the composed tier covers).
template <typename P>
struct EvalTagName;

/// eval/<problem>: concrete-typed dispatch — eval_impl<float> statically
/// bound, so a composed loop over {..., eval, compare, gather} inlines the
/// objective into one flat pass with no virtual call per element.
template <typename P>
struct EvalProblemKernel {
  using Args = EvalArgs;
  [[nodiscard]] static std::uint32_t tag() {
    static const std::uint32_t t =
        vgpu::graph::codegen::intern_tag(EvalTagName<P>::value);
    return t;
  }
  static void element(const Args& a, std::int64_t i) {
    const auto* p = static_cast<const P*>(a.problem);
    a.out[i] = static_cast<float>(
        p->template eval_impl<float>(a.X + i * a.d, a.d));
  }
};

/// Builds the registered static kernel for one batched evaluation launch:
/// a concrete-typed kernel for the built-in problems the composed tier
/// knows (sphere/griewank/easom), the generic chunked EvalBatchKernel for
/// everything else (e.g. tgbm's threadconf).
[[nodiscard]] vgpu::graph::codegen::StaticKernel make_eval_static(
    const problems::Problem& problem, const float* X, int d, float* out);

}  // namespace fastpso::core::kernels
