#include "core/launch_policy.h"

#include <algorithm>

#include "common/check.h"

namespace fastpso::core {
namespace {

/// Max resident threads per SM on Volta-class devices.
constexpr std::int64_t kResidentThreadsPerSm = 2048;

}  // namespace

LaunchPolicy::LaunchPolicy(const vgpu::GpuSpec& spec, int block,
                           std::int64_t thread_cap_override)
    : block_(block) {
  FASTPSO_CHECK(block > 0 && block <= spec.max_threads_per_block);
  thread_cap_ = thread_cap_override > 0
                    ? thread_cap_override
                    : static_cast<std::int64_t>(spec.sm_count) *
                          kResidentThreadsPerSm;
  // Keep the cap block-aligned so grids are exact.
  thread_cap_ = std::max<std::int64_t>(block_, thread_cap_ / block_ * block_);
}

LaunchDecision LaunchPolicy::for_elements(std::int64_t elements) const {
  FASTPSO_CHECK(elements > 0);
  LaunchDecision decision;
  decision.elements = elements;
  const std::int64_t wanted = std::min(elements, thread_cap_);
  decision.config.block = block_;
  decision.config.grid = (wanted + block_ - 1) / block_;
  const std::int64_t threads = decision.config.total_threads();
  decision.thread_workload = (elements + threads - 1) / threads;
  return decision;
}

}  // namespace fastpso::core
