#include "core/launch_policy.h"

#include <algorithm>
#include <string>

#include "common/check.h"
#include "vgpu/tuned.h"

namespace fastpso::core {
namespace {

/// Max resident threads per SM on Volta-class devices.
constexpr std::int64_t kResidentThreadsPerSm = 2048;

/// Tuned block sizes must stay warp-aligned and within the device limit.
int sanitize_block(int block, int max_threads_per_block) {
  block = std::clamp(block, 32, max_threads_per_block);
  return block / 32 * 32;
}

}  // namespace

LaunchPolicy::LaunchPolicy(const vgpu::GpuSpec& spec, int block,
                           std::int64_t thread_cap_override)
    : block_(block), max_threads_per_block_(spec.max_threads_per_block) {
  FASTPSO_CHECK(block > 0 && block <= spec.max_threads_per_block);
  thread_cap_raw_ = thread_cap_override > 0
                        ? thread_cap_override
                        : static_cast<std::int64_t>(spec.sm_count) *
                              kResidentThreadsPerSm;
  // Keep the cap block-aligned so grids are exact.
  thread_cap_ =
      std::max<std::int64_t>(block_, thread_cap_raw_ / block_ * block_);
}

LaunchDecision LaunchPolicy::for_elements(std::int64_t elements) const {
  FASTPSO_CHECK(elements > 0);
  if (vgpu::tuned::enabled()) [[unlikely]] {
    return for_elements_tuned(elements);
  }
  LaunchDecision decision;
  decision.elements = elements;
  const std::int64_t wanted = std::min(elements, thread_cap_);
  decision.config.block = block_;
  decision.config.grid = (wanted + block_ - 1) / block_;
  const std::int64_t threads = decision.config.total_threads();
  decision.thread_workload = (elements + threads - 1) / threads;
  return decision;
}

LaunchDecision LaunchPolicy::for_elements_tuned(std::int64_t elements) const {
  const std::string prefix = vgpu::tuned::shape_key("launch_policy", elements);
  const int block = sanitize_block(
      vgpu::tuned::lookup(prefix + "/block", block_), max_threads_per_block_);
  const std::int64_t ipt =
      std::max(1, vgpu::tuned::lookup(prefix + "/ipt", 1));

  // Same Eq. 3 cap, re-aligned to the tuned block. An items-per-thread
  // floor above 1 shrinks the launch below the cap: each thread carries at
  // least `ipt` elements of grid-stride workload.
  const std::int64_t cap =
      std::max<std::int64_t>(block, thread_cap_raw_ / block * block);
  std::int64_t wanted = std::min(elements, cap);
  wanted = std::max<std::int64_t>(1, std::min(wanted, (elements + ipt - 1) / ipt));

  LaunchDecision decision;
  decision.elements = elements;
  decision.config.block = block;
  decision.config.grid = (wanted + block - 1) / block;
  const std::int64_t threads = decision.config.total_threads();
  decision.thread_workload = (elements + threads - 1) / threads;
  return decision;
}

}  // namespace fastpso::core
