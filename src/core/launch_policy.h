// GPU resource-aware thread creation (paper Section 3.3/3.4, Equation 3).
//
// When n*d is large, launching one thread per element would "lead to extra
// cost on thread creation or running out of GPU memory" (Section 3.4);
// FastPSO instead caps the launch at what the device can keep resident and
// assigns each thread a workload of tw = ceil(elements / cap) elements via a
// grid-stride loop. This header computes that cap from the device spec.
#pragma once

#include <cstdint>

#include "vgpu/device.h"

namespace fastpso::core {

/// Resolved launch decision for an element-wise step.
struct LaunchDecision {
  vgpu::LaunchConfig config;
  std::int64_t elements = 0;
  /// Thread workload tw (Eq. 3): elements each thread processes.
  std::int64_t thread_workload = 1;
};

/// Computes launch shapes under the resource-aware cap.
class LaunchPolicy {
 public:
  /// `block` is the CUDA block size used for element-wise kernels.
  /// `thread_cap_override` (> 0) replaces the resource-derived cap — used
  /// by the launch-policy ablation bench; 0 keeps Eq. 3's derivation.
  explicit LaunchPolicy(const vgpu::GpuSpec& spec, int block = 256,
                        std::int64_t thread_cap_override = 0);

  /// Maximum threads the device keeps resident (the "mem" resource bound of
  /// Eq. 3, instantiated as SM count x max resident threads per SM).
  [[nodiscard]] std::int64_t thread_cap() const { return thread_cap_; }

  /// Launch shape for an element-wise kernel over `elements` items:
  /// one thread per element up to the cap, grid-stride beyond it.
  [[nodiscard]] LaunchDecision for_elements(std::int64_t elements) const;

  /// Launch shape for a per-particle kernel (pbest update, evaluation):
  /// one thread per particle up to the cap.
  [[nodiscard]] LaunchDecision for_particles(std::int64_t particles) const {
    return for_elements(particles);
  }

  [[nodiscard]] int block() const { return block_; }

 private:
  /// Tuned-geometry variant of for_elements: per-shape block size and
  /// items-per-thread floor from the vgpu::tuned store (DESIGN.md §13).
  /// Falls back to the default derivation axis by axis when a key is
  /// absent, so an empty table reproduces for_elements exactly.
  [[nodiscard]] LaunchDecision for_elements_tuned(std::int64_t elements) const;

  int block_;
  int max_threads_per_block_;
  std::int64_t thread_cap_;
  /// Pre-alignment cap (override or Eq. 3 product); the tuned path
  /// re-aligns it to the tuned block size.
  std::int64_t thread_cap_raw_;
};

}  // namespace fastpso::core
