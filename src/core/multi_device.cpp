#include "core/multi_device.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "common/check.h"
#include "common/stopwatch.h"
#include "core/best_update.h"
#include "core/eval_schema.h"
#include "core/init.h"
#include "core/launch_policy.h"
#include "core/recorder.h"
#include "core/swarm_state.h"
#include "core/swarm_update.h"
#include "vgpu/memory_pool.h"

namespace fastpso::core {
namespace {

namespace comm = vgpu::comm;

/// Per-device working set. The weight buffers are hoisted out of the
/// iteration loop: DeviceArray allocation is a device-wide synchronizing
/// operation (it aligns every stream clock), and a per-iteration alloc
/// would serialize the comm stream against compute and erase the
/// compute/collective overlap this optimizer exists to model.
struct Shard {
  Shard(vgpu::Device& dev, const vgpu::GpuSpec& spec, int count, int dim)
      : device(&dev),
        policy(spec),
        state(dev, count, dim),
        l_mat(dev, state.elements()),
        g_mat(dev, state.elements()),
        recorder(make_iteration_recorder(dev)) {}

  vgpu::Device* device;
  LaunchPolicy policy;
  SwarmState state;
  vgpu::DeviceArray<float> l_mat;
  vgpu::DeviceArray<float> g_mat;
  vgpu::graph::IterationRecorder recorder;
  int begin = 0;  ///< first owned particle row (global index)
};

/// Rows assigned to shard k of `devices` over n particles (same contiguous
/// ascending layout as the legacy optimizer — the tie-break equivalence
/// with the single-device argmin depends on it).
std::pair<int, int> shard_rows(int n, int devices, int k) {
  const int base = n / devices;
  const int extra = n % devices;
  const int begin = k * base + std::min(k, extra);
  const int count = base + (k < extra ? 1 : 0);
  return {begin, count};
}

vgpu::KernelCostSpec eval_cost_for(const Objective& objective, int count,
                                   int d) {
  vgpu::KernelCostSpec cost;
  cost.flops = objective.cost.flops(d) * count;
  cost.transcendentals = objective.cost.transcendentals(d) * count;
  cost.dram_read_bytes =
      static_cast<double>(count) * d * sizeof(float);
  cost.dram_write_bytes = static_cast<double>(count) * sizeof(float);
  return cost;
}

void merge_stats(vgpu::graph::GraphStats& a, const vgpu::graph::GraphStats& b) {
  a.enabled |= b.enabled;
  a.instantiated |= b.instantiated;
  a.diverged |= b.diverged;
  a.nodes += b.nodes;
  a.replays += b.replays;
  a.replayed_launches += b.replayed_launches;
  a.skipped_nodes += b.skipped_nodes;
  a.eager_launches += b.eager_launches;
  a.modeled_seconds_saved += b.modeled_seconds_saved;
}

void merge_stats(vgpu::graph::FusionStats& a,
                 const vgpu::graph::FusionStats& b) {
  a.enabled |= b.enabled;
  a.applied |= b.applied;
  a.groups += b.groups;
  a.fused_members += b.fused_members;
  a.replays += b.replays;
  a.launches_eager += b.launches_eager;
  a.launches_fused += b.launches_fused;
  a.modeled_seconds_saved += b.modeled_seconds_saved;
  a.elided_read_bytes += b.elided_read_bytes;
  a.elided_write_bytes += b.elided_write_bytes;
}

void merge_stats(vgpu::graph::codegen::CodegenStats& a,
                 const vgpu::graph::codegen::CodegenStats& b) {
  a.enabled |= b.enabled;
  a.applied |= b.applied;
  a.registered_groups += b.registered_groups;
  a.composed_groups += b.composed_groups;
  a.compiled_groups += b.compiled_groups;
  a.interpreted_groups += b.interpreted_groups;
  a.compiled_nodes += b.compiled_nodes;
  a.compiled_dispatches += b.compiled_dispatches;
  a.composed_dispatches += b.composed_dispatches;
}

}  // namespace

MultiDeviceOptimizer::MultiDeviceOptimizer(MultiDeviceParams params,
                                           vgpu::GpuSpec spec)
    : params_(std::move(params)), spec_(std::move(spec)) {
  FASTPSO_CHECK_MSG(params_.devices >= 1, "need at least one device");
  FASTPSO_CHECK_MSG(params_.pso.particles >= params_.devices,
                    "fewer particles than devices");
  FASTPSO_CHECK_MSG(params_.sync_interval >= 1, "sync interval must be >= 1");
}

Result MultiDeviceOptimizer::optimize(const Objective& objective) {
  group_ = std::make_unique<comm::DeviceGroup>(params_.devices, spec_);
  comm_ = std::make_unique<comm::Communicator>(*group_);
  Result result;
  switch (params_.strategy) {
    case MultiGpuStrategy::kTileMatrix:
      result = optimize_tile_matrix(objective);
      break;
    case MultiGpuStrategy::kParticleSplit:
      result = optimize_particle_split(objective);
      break;
  }
  // Bookkeeping shared by both strategies.
  device_seconds_.clear();
  comm_seconds_.clear();
  double max_device = 0.0;
  for (int k = 0; k < params_.devices; ++k) {
    const vgpu::Device& dev = group_->device(k);
    device_seconds_.push_back(dev.modeled_seconds());
    max_device = std::max(max_device, dev.modeled_seconds());
    comm_seconds_.push_back(comm_->comm_seconds(k));
    // Cross-check the two comm accountings (communicator vs device).
    FASTPSO_CHECK(std::abs(dev.counters().comm_seconds -
                           comm_->comm_seconds(k)) <= 1e-12);
    result.modeled_breakdown.merge(dev.modeled_breakdown());
    const auto& c = dev.counters();
    result.counters.flops += c.flops;
    result.counters.dram_read_fetched += c.dram_read_fetched;
    result.counters.dram_write_fetched += c.dram_write_fetched;
    result.counters.launches += c.launches;
    result.counters.collectives += c.collectives;
    result.counters.comm_bytes += c.comm_bytes;
    result.counters.comm_seconds += c.comm_seconds;
  }
  collectives_ = comm_->records();
  result.modeled_seconds = max_device;
  // The tentpole invariant: collective time lives inside the per-device
  // comm streams, so the run's modeled time IS the slowest device — no
  // separate exchange term (the legacy optimizer's max + exchange split).
  FASTPSO_CHECK(!device_seconds_.empty() &&
                result.modeled_seconds ==
                    *std::max_element(device_seconds_.begin(),
                                      device_seconds_.end()));
  return result;
}

Result MultiDeviceOptimizer::optimize_tile_matrix(const Objective& objective) {
  const PsoParams& pso = params_.pso;
  const int n = pso.particles;
  const int d = pso.dim;
  const int devices = params_.devices;

  const UpdateCoefficients coeff =
      make_coefficients(pso, objective.lower, objective.upper);
  const float v_init =
      coeff.vmax > 0.0f
          ? coeff.vmax
          : static_cast<float>(objective.upper - objective.lower);

  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(devices);
  for (int k = 0; k < devices; ++k) {
    vgpu::Device& dev = group_->device(k);
    const auto [begin, count] = shard_rows(n, devices, k);
    dev.pool().set_enabled(pso.memory_caching);
    dev.set_phase("init");
    auto shard = std::make_unique<Shard>(dev, spec_, count, d);
    shard->begin = begin;
    initialize_swarm_slice(dev, shard->policy, shard->state, pso.seed,
                           static_cast<std::int64_t>(begin) * d,
                           static_cast<float>(objective.lower),
                           static_cast<float>(objective.upper), v_init);
    shards.push_back(std::move(shard));
  }

  Stopwatch watch;
  float gbest = std::numeric_limits<float>::infinity();
  std::vector<float> history;
  history.reserve(static_cast<std::size_t>(pso.max_iter));
  std::vector<float> values(static_cast<std::size_t>(devices));
  std::vector<float*> gbest_bufs(static_cast<std::size_t>(devices));

  for (int iter = 0; iter < pso.max_iter; ++iter) {
    for (auto& shard : shards) {
      shard->recorder.begin_iteration();
      vgpu::Device& dev = *shard->device;
      SwarmState& state = shard->state;
      dev.set_phase("eval");
      evaluate_positions(dev, shard->policy, objective,
                         state.positions.data(), state.n, d,
                         eval_cost_for(objective, state.n, d),
                         state.perror.data());
      dev.set_phase("pbest");
      update_pbest(dev, shard->policy, state);
      dev.set_phase("gbest");
      update_gbest(dev, state);
    }

    // Complete the gbest reduction across shards: an (err, rank) allreduce
    // picks the winner (ties -> lowest rank == lowest particle index, the
    // single-device argmin tie-break), then the winning row is ring-
    // broadcast into every shard's gbest buffer. Both run on the per-device
    // comm streams.
    for (int k = 0; k < devices; ++k) {
      values[static_cast<std::size_t>(k)] = shards[k]->state.gbest_err;
      gbest_bufs[static_cast<std::size_t>(k)] =
          shards[k]->state.gbest_pos.data();
    }
    const int winner = comm_->allreduce_minloc(values);
    gbest = values[static_cast<std::size_t>(winner)];
    comm_->broadcast(winner, gbest_bufs, d);
    for (auto& shard : shards) {
      shard->state.gbest_err = gbest;
    }

    // Weight fills are gbest-independent, so they issue on stream 0 while
    // the collective occupies the comm stream — the overlap the per-device
    // traces show. The join below orders the swarm update after both.
    for (auto& shard : shards) {
      shard->device->set_phase("init");
      generate_weights_slice(*shard->device, shard->policy,
                             static_cast<std::int64_t>(shard->begin) * d,
                             shard->state.elements(), pso.seed, iter,
                             shard->l_mat, shard->g_mat);
      shard->device->sync_streams();
      shard->device->set_phase("swarm");
      swarm_update(*shard->device, shard->policy, shard->state, shard->l_mat,
                   shard->g_mat, coefficients_for_iter(coeff, pso, iter),
                   pso.technique);
      shard->recorder.end_iteration();
    }
    history.push_back(gbest);
  }

  Result result;
  result.gbest_value = gbest;
  result.gbest_position.resize(static_cast<std::size_t>(d));
  shards[0]->state.gbest_pos.download(result.gbest_position);
  result.iterations = pso.max_iter;
  result.gbest_history = std::move(history);
  result.wall_seconds = watch.elapsed_s();
  for (auto& shard : shards) {
    Result shard_stats;
    export_recorder_stats(shard->recorder, shard_stats);
    merge_stats(result.graph, shard_stats.graph);
    merge_stats(result.fusion, shard_stats.fusion);
    merge_stats(result.codegen, shard_stats.codegen);
  }
  return result;
}

Result MultiDeviceOptimizer::optimize_particle_split(
    const Objective& objective) {
  // Sub-swarm semantics preserved from the legacy optimizer bit for bit:
  // per-shard seeds, local global bests, and the guarded adopt at each
  // exchange (a rank whose local best ties the group best keeps its own
  // position — a plain broadcast would overwrite it, so the exchange's
  // data plane runs here and only its cost goes through the communicator).
  const PsoParams& pso = params_.pso;
  const int n = pso.particles;
  const int d = pso.dim;
  const int devices = params_.devices;

  const UpdateCoefficients coeff =
      make_coefficients(pso, objective.lower, objective.upper);
  const float v_init =
      coeff.vmax > 0.0f
          ? coeff.vmax
          : static_cast<float>(objective.upper - objective.lower);

  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(devices);
  for (int k = 0; k < devices; ++k) {
    vgpu::Device& dev = group_->device(k);
    const auto [begin, count] = shard_rows(n, devices, k);
    dev.pool().set_enabled(pso.memory_caching);
    dev.set_phase("init");
    auto shard = std::make_unique<Shard>(dev, spec_, count, d);
    shard->begin = begin;
    initialize_swarm(dev, shard->policy, shard->state,
                     pso.seed + static_cast<std::uint64_t>(begin) * 2654435761u,
                     static_cast<float>(objective.lower),
                     static_cast<float>(objective.upper), v_init);
    shards.push_back(std::move(shard));
  }

  Stopwatch watch;
  float group_best = std::numeric_limits<float>::infinity();
  std::vector<float> group_best_pos(static_cast<std::size_t>(d), 0.0f);
  std::vector<float> history;
  history.reserve(static_cast<std::size_t>(pso.max_iter));

  for (int iter = 0; iter < pso.max_iter; ++iter) {
    for (int k = 0; k < devices; ++k) {
      auto& shard = *shards[k];
      shard.recorder.begin_iteration();
      vgpu::Device& dev = *shard.device;
      SwarmState& state = shard.state;
      dev.set_phase("init");
      generate_weights(dev, shard.policy, state.elements(),
                       pso.seed + 15485863u * static_cast<std::uint64_t>(k),
                       iter, shard.l_mat, shard.g_mat);
      dev.set_phase("eval");
      evaluate_positions(dev, shard.policy, objective, state.positions.data(),
                         state.n, d, eval_cost_for(objective, state.n, d),
                         state.perror.data());
      dev.set_phase("pbest");
      update_pbest(dev, shard.policy, state);
      dev.set_phase("gbest");
      update_gbest(dev, state);
      dev.set_phase("swarm");
      swarm_update(dev, shard.policy, state, shard.l_mat, shard.g_mat,
                   coefficients_for_iter(coeff, pso, iter), pso.technique);
      shard.recorder.end_iteration();
    }

    // Group-best exchange at the configured cadence.
    if ((iter + 1) % params_.sync_interval == 0 || iter + 1 == pso.max_iter) {
      int best_shard = -1;
      for (int k = 0; k < devices; ++k) {
        if (shards[k]->state.gbest_err < group_best) {
          group_best = shards[k]->state.gbest_err;
          best_shard = k;
        }
      }
      if (best_shard >= 0) {
        std::memcpy(group_best_pos.data(),
                    shards[best_shard]->state.gbest_pos.data(),
                    static_cast<std::size_t>(d) * sizeof(float));
      }
      for (auto& shard : shards) {
        if (group_best < shard->state.gbest_err) {
          shard->state.gbest_err = group_best;
          std::memcpy(shard->state.gbest_pos.data(), group_best_pos.data(),
                      static_cast<std::size_t>(d) * sizeof(float));
        }
      }
      comm_->account_collective("allreduce_minloc",
                                comm::allreduce_cost(devices, 8.0));
      comm_->account_collective("broadcast",
                                comm::broadcast_cost(devices, d * 4.0));
    }
    // Observational trajectory: the best value any shard holds after this
    // iteration (pure reporting; matches the legacy optimizer exactly).
    float best_seen = group_best;
    for (auto& shard : shards) {
      best_seen = std::min(best_seen, shard->state.gbest_err);
    }
    history.push_back(best_seen);
  }

  Result result;
  result.gbest_value = group_best;
  result.gbest_position = group_best_pos;
  result.iterations = pso.max_iter;
  result.gbest_history = std::move(history);
  result.wall_seconds = watch.elapsed_s();
  for (auto& shard : shards) {
    Result shard_stats;
    export_recorder_stats(shard->recorder, shard_stats);
    merge_stats(result.graph, shard_stats.graph);
    merge_stats(result.fusion, shard_stats.fusion);
    merge_stats(result.codegen, shard_stats.codegen);
  }
  return result;
}

}  // namespace fastpso::core
