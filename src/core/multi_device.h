// Multi-device FastPSO on the modern stack (paper Section 3.5 rebuilt over
// vgpu/comm, DESIGN.md §12).
//
// The legacy MultiGpuOptimizer (core/multi_gpu.h) exchanges the global best
// through modeled host transfers and runs every shard serially on a single
// timeline per device. This optimizer keeps the paper's two strategies but
// re-expresses them on the full modern stack:
//
//   - the shards live in a comm::DeviceGroup and exchange through an
//     NCCL-style modeled collective layer (ring allreduce of the (err, rank)
//     pair + ring broadcast of the winning gbest row) instead of staged
//     host copies;
//   - collectives run on a dedicated per-device comm stream, so the
//     gbest-independent work of the next step (the L/G weight fills)
//     overlaps the exchange on stream 0 — visible as parallel lanes in the
//     per-device Chrome traces;
//   - each shard's iteration is a captured graph under FASTPSO_GRAPH
//     (replayed with fusion / codegen exactly like the single-device
//     pipeline); collectives are never captured and re-account eagerly.
//
// Semantics are pinned by tests/test_multi_gpu.cpp:
//   kTileMatrix    bitwise-identical to the legacy optimizer AND to
//                  single-device FastPSO (gbest value, position, history)
//                  for any device count — all randoms come from the global
//                  element index space (core/init.h slice fills) and the
//                  rank-ordered collective reduction reproduces the global
//                  argmin tie-break (lowest particle index wins).
//   kParticleSplit bitwise-identical to the legacy optimizer at equal
//                  sync_interval (per-shard seeds and the guarded adopt are
//                  preserved exactly; only the modeled exchange cost
//                  changes).
//
// Modeled time: collectives advance the per-device comm streams, so
// Result::modeled_seconds == max over devices of device_seconds() — there
// is no separate exchange term (asserted after every run).
#pragma once

#include <memory>
#include <vector>

#include "core/multi_gpu.h"
#include "core/objective.h"
#include "core/params.h"
#include "core/result.h"
#include "vgpu/comm/comm.h"

namespace fastpso::core {

struct MultiDeviceParams {
  PsoParams pso;
  int devices = 2;
  MultiGpuStrategy strategy = MultiGpuStrategy::kTileMatrix;
  /// Iterations between global-best exchanges under kParticleSplit.
  int sync_interval = 10;
};

/// FastPSO across a DeviceGroup of identical virtual devices joined by a
/// comm::Communicator.
class MultiDeviceOptimizer {
 public:
  explicit MultiDeviceOptimizer(MultiDeviceParams params,
                                vgpu::GpuSpec spec = vgpu::tesla_v100());

  Result optimize(const Objective& objective);

  /// Modeled seconds per device for the last run. Result::modeled_seconds
  /// is the max of these (collective time is inside each device's comm
  /// stream, not a separate term).
  [[nodiscard]] const std::vector<double>& device_seconds() const {
    return device_seconds_;
  }
  /// Modeled collective seconds accounted on each device in the last run.
  [[nodiscard]] const std::vector<double>& comm_seconds() const {
    return comm_seconds_;
  }
  /// Every collective of the last run, in issue order.
  [[nodiscard]] const std::vector<vgpu::comm::CollectiveRecord>& collectives()
      const {
    return collectives_;
  }
  /// The device group of the last run (per-device counters and — under
  /// FASTPSO_PROF — per-device profiles for trace export). Null before the
  /// first optimize() call.
  [[nodiscard]] const vgpu::comm::DeviceGroup* group() const {
    return group_.get();
  }

 private:
  MultiDeviceParams params_;
  vgpu::GpuSpec spec_;
  std::unique_ptr<vgpu::comm::DeviceGroup> group_;
  std::unique_ptr<vgpu::comm::Communicator> comm_;
  std::vector<double> device_seconds_;
  std::vector<double> comm_seconds_;
  std::vector<vgpu::comm::CollectiveRecord> collectives_;

  Result optimize_tile_matrix(const Objective& objective);
  Result optimize_particle_split(const Objective& objective);
};

}  // namespace fastpso::core
