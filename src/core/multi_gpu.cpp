#include "core/multi_gpu.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/stopwatch.h"
#include "core/best_update.h"
#include "core/eval_schema.h"
#include "core/init.h"
#include "core/launch_policy.h"
#include "core/swarm_state.h"
#include "core/swarm_update.h"
#include "vgpu/memory_pool.h"
#include "vgpu/reduce.h"

namespace fastpso::core {
namespace {

/// Per-device working set shared by both strategies.
struct Shard {
  explicit Shard(const vgpu::GpuSpec& spec) : device(spec) {}

  vgpu::Device device;
  std::unique_ptr<LaunchPolicy> policy;
  std::unique_ptr<SwarmState> state;
  int begin = 0;  ///< first owned particle row (global index)
};

/// Rows assigned to shard k of `devices` over n particles.
std::pair<int, int> shard_rows(int n, int devices, int k) {
  const int base = n / devices;
  const int extra = n % devices;
  const int begin = k * base + std::min(k, extra);
  const int count = base + (k < extra ? 1 : 0);
  return {begin, count};
}

}  // namespace

const char* to_string(MultiGpuStrategy strategy) {
  switch (strategy) {
    case MultiGpuStrategy::kParticleSplit:
      return "particle-split";
    case MultiGpuStrategy::kTileMatrix:
      return "tile-matrix";
  }
  FASTPSO_UNREACHABLE("unknown multi-GPU strategy");
}

MultiGpuOptimizer::MultiGpuOptimizer(MultiGpuParams params, vgpu::GpuSpec spec)
    : params_(std::move(params)), spec_(std::move(spec)) {
  FASTPSO_CHECK_MSG(params_.devices >= 1, "need at least one device");
  FASTPSO_CHECK_MSG(params_.pso.particles >= params_.devices,
                    "fewer particles than devices");
  FASTPSO_CHECK_MSG(params_.sync_interval >= 1, "sync interval must be >= 1");
}

Result MultiGpuOptimizer::optimize(const Objective& objective) {
  switch (params_.strategy) {
    case MultiGpuStrategy::kParticleSplit:
      return optimize_particle_split(objective);
    case MultiGpuStrategy::kTileMatrix:
      return optimize_tile_matrix(objective);
  }
  FASTPSO_UNREACHABLE("unknown multi-GPU strategy");
}

Result MultiGpuOptimizer::optimize_tile_matrix(const Objective& objective) {
  // Row-sharded single-swarm semantics: every shard sees the same gbest
  // every iteration, so results match the single-device optimizer. Particle
  // indices are sharded contiguously; each shard draws its randoms from the
  // global element index space so the trajectory is shard-count invariant.
  const PsoParams& pso = params_.pso;
  const int n = pso.particles;
  const int d = pso.dim;
  const int devices = params_.devices;

  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(devices);
  for (int k = 0; k < devices; ++k) {
    auto shard = std::make_unique<Shard>(spec_);
    shard->policy = std::make_unique<LaunchPolicy>(spec_);
    const auto [begin, count] = shard_rows(n, devices, k);
    shard->begin = begin;
    shard->device.pool().set_enabled(pso.memory_caching);
    shard->device.set_phase("init");
    shard->state = std::make_unique<SwarmState>(shard->device, count, d);
    shards.push_back(std::move(shard));
  }

  const UpdateCoefficients coeff =
      make_coefficients(pso, objective.lower, objective.upper);
  const float v_init =
      coeff.vmax > 0.0f
          ? coeff.vmax
          : static_cast<float>(objective.upper - objective.lower);

  Stopwatch watch;
  double exchange_seconds = 0.0;
  vgpu::GpuPerfModel host_link(spec_);

  // Slice init: every shard draws global elements [begin*d, (begin+count)*d)
  // of the whole-swarm position/velocity fills under the run seed, so
  // initial state is bitwise-equal to a single-device run for any shard
  // layout (core/init.h).
  for (int k = 0; k < devices; ++k) {
    auto& shard = *shards[k];
    initialize_swarm_slice(
        shard.device, *shard.policy, *shard.state, pso.seed,
        static_cast<std::int64_t>(shard.begin) * d,
        static_cast<float>(objective.lower),
        static_cast<float>(objective.upper), v_init);
  }

  float gbest = std::numeric_limits<float>::infinity();
  std::vector<float> gbest_pos(d, 0.0f);
  std::vector<float> history;
  history.reserve(static_cast<std::size_t>(pso.max_iter));

  for (int iter = 0; iter < pso.max_iter; ++iter) {
    for (int k = 0; k < devices; ++k) {
      auto& shard = *shards[k];
      SwarmState& state = *shard.state;
      const int count = state.n;

      shard.device.set_phase("eval");
      vgpu::KernelCostSpec eval_cost;
      eval_cost.flops = objective.cost.flops(d) * count;
      eval_cost.transcendentals = objective.cost.transcendentals(d) * count;
      eval_cost.dram_read_bytes =
          static_cast<double>(state.elements()) * sizeof(float);
      eval_cost.dram_write_bytes = static_cast<double>(count) * sizeof(float);
      evaluate_positions(shard.device, *shard.policy, objective,
                         state.positions.data(), count, d, eval_cost,
                         state.perror.data());

      shard.device.set_phase("pbest");
      update_pbest(shard.device, *shard.policy, state);
      shard.device.set_phase("gbest");
      update_gbest(shard.device, state);

      // Tile-matrix: complete the gbest reduction across shards each
      // iteration, before the swarm update reads it.
    }

    // Cross-device gbest combine (host exchange).
    int best_shard = -1;
    for (int k = 0; k < devices; ++k) {
      if (shards[k]->state->gbest_err < gbest) {
        gbest = shards[k]->state->gbest_err;
        best_shard = k;
      }
    }
    if (best_shard >= 0) {
      shards[best_shard]->state->gbest_pos.download(gbest_pos);
    }
    // Broadcast the winning position to every shard.
    for (int k = 0; k < devices; ++k) {
      auto& state = *shards[k]->state;
      state.gbest_err = gbest;
      shards[k]->device.set_phase("gbest");
      state.gbest_pos.upload(gbest_pos);
    }
    exchange_seconds +=
        host_link.transfer_seconds(static_cast<double>(d) * sizeof(float)) *
        (1 + devices);
    // Same per-iteration trajectory a single-device run records — the
    // reduction is complete here, so this is the swarm-wide best.
    history.push_back(gbest);

    for (int k = 0; k < devices; ++k) {
      auto& shard = *shards[k];
      shard.device.set_phase("init");
      vgpu::DeviceArray<float> l_mat(shard.device, shard.state->elements());
      vgpu::DeviceArray<float> g_mat(shard.device, shard.state->elements());
      // Slices of the single-swarm L/G matrices of this iteration — the
      // weights a particle sees do not depend on which device owns it.
      generate_weights_slice(shard.device, *shard.policy,
                             static_cast<std::int64_t>(shard.begin) * d,
                             shard.state->elements(), pso.seed, iter, l_mat,
                             g_mat);
      shard.device.set_phase("swarm");
      swarm_update(shard.device, *shard.policy, *shard.state, l_mat, g_mat,
                   coefficients_for_iter(coeff, pso, iter), pso.technique);
    }
  }

  Result result;
  result.gbest_value = gbest;
  result.gbest_position = gbest_pos;
  result.iterations = pso.max_iter;
  result.gbest_history = std::move(history);
  result.wall_seconds = watch.elapsed_s();
  device_seconds_.clear();
  double max_device = 0.0;
  for (auto& shard : shards) {
    device_seconds_.push_back(shard->device.modeled_seconds());
    max_device = std::max(max_device, shard->device.modeled_seconds());
    result.modeled_breakdown.merge(shard->device.modeled_breakdown());
    // Aggregate counters across devices.
    const auto& c = shard->device.counters();
    result.counters.flops += c.flops;
    result.counters.dram_read_fetched += c.dram_read_fetched;
    result.counters.dram_write_fetched += c.dram_write_fetched;
    result.counters.launches += c.launches;
  }
  exchange_seconds_ = exchange_seconds;
  result.modeled_seconds = max_device + exchange_seconds;
  return result;
}

Result MultiGpuOptimizer::optimize_particle_split(const Objective& objective) {
  // Sub-swarm semantics: each device runs an independent PSO on its slice
  // of particles with a *local* global best; the group best is exchanged
  // every sync_interval iterations.
  const PsoParams& pso = params_.pso;
  const int n = pso.particles;
  const int d = pso.dim;
  const int devices = params_.devices;

  std::vector<std::unique_ptr<Shard>> shards;
  shards.reserve(devices);
  const UpdateCoefficients coeff =
      make_coefficients(pso, objective.lower, objective.upper);
  const float v_init =
      coeff.vmax > 0.0f
          ? coeff.vmax
          : static_cast<float>(objective.upper - objective.lower);

  for (int k = 0; k < devices; ++k) {
    auto shard = std::make_unique<Shard>(spec_);
    shard->policy = std::make_unique<LaunchPolicy>(spec_);
    const auto [begin, count] = shard_rows(n, devices, k);
    shard->device.pool().set_enabled(pso.memory_caching);
    shard->device.set_phase("init");
    shard->state = std::make_unique<SwarmState>(shard->device, count, d);
    initialize_swarm(shard->device, *shard->policy, *shard->state,
                     pso.seed + static_cast<std::uint64_t>(begin) * 2654435761u,
                     static_cast<float>(objective.lower),
                     static_cast<float>(objective.upper), v_init);
    shards.push_back(std::move(shard));
  }

  Stopwatch watch;
  double exchange_seconds = 0.0;
  vgpu::GpuPerfModel host_link(spec_);
  float group_best = std::numeric_limits<float>::infinity();
  std::vector<float> group_best_pos(d, 0.0f);
  std::vector<float> history;
  history.reserve(static_cast<std::size_t>(pso.max_iter));

  for (int iter = 0; iter < pso.max_iter; ++iter) {
    for (int k = 0; k < devices; ++k) {
      auto& shard = *shards[k];
      SwarmState& state = *shard.state;
      const int count = state.n;

      shard.device.set_phase("init");
      vgpu::DeviceArray<float> l_mat(shard.device, state.elements());
      vgpu::DeviceArray<float> g_mat(shard.device, state.elements());
      generate_weights(shard.device, *shard.policy, state.elements(),
                       pso.seed + 15485863u * static_cast<std::uint64_t>(k),
                       iter, l_mat, g_mat);

      shard.device.set_phase("eval");
      vgpu::KernelCostSpec eval_cost;
      eval_cost.flops = objective.cost.flops(d) * count;
      eval_cost.transcendentals = objective.cost.transcendentals(d) * count;
      eval_cost.dram_read_bytes =
          static_cast<double>(state.elements()) * sizeof(float);
      eval_cost.dram_write_bytes = static_cast<double>(count) * sizeof(float);
      evaluate_positions(shard.device, *shard.policy, objective,
                         state.positions.data(), count, d, eval_cost,
                         state.perror.data());

      shard.device.set_phase("pbest");
      update_pbest(shard.device, *shard.policy, state);
      shard.device.set_phase("gbest");
      update_gbest(shard.device, state);

      shard.device.set_phase("swarm");
      swarm_update(shard.device, *shard.policy, state, l_mat, g_mat,
                   coefficients_for_iter(coeff, pso, iter), pso.technique);
    }

    // Asynchronous group-best exchange, modeled at a fixed interval.
    if ((iter + 1) % params_.sync_interval == 0 ||
        iter + 1 == pso.max_iter) {
      int best_shard = -1;
      for (int k = 0; k < devices; ++k) {
        if (shards[k]->state->gbest_err < group_best) {
          group_best = shards[k]->state->gbest_err;
          best_shard = k;
        }
      }
      if (best_shard >= 0) {
        shards[best_shard]->state->gbest_pos.download(group_best_pos);
      }
      for (int k = 0; k < devices; ++k) {
        auto& state = *shards[k]->state;
        if (group_best < state.gbest_err) {
          state.gbest_err = group_best;
          shards[k]->device.set_phase("gbest");
          state.gbest_pos.upload(group_best_pos);
        }
      }
      exchange_seconds +=
          host_link.transfer_seconds(static_cast<double>(d) * sizeof(float)) *
          (1 + devices);
    }
    // Observational trajectory: the best value any shard holds after this
    // iteration (gbest_err is host-resident state; no device traffic).
    float best_seen = group_best;
    for (auto& shard : shards) {
      best_seen = std::min(best_seen, shard->state->gbest_err);
    }
    history.push_back(best_seen);
  }

  Result result;
  result.gbest_value = group_best;
  result.gbest_position = group_best_pos;
  result.iterations = pso.max_iter;
  result.gbest_history = std::move(history);
  result.wall_seconds = watch.elapsed_s();
  device_seconds_.clear();
  double max_device = 0.0;
  for (auto& shard : shards) {
    device_seconds_.push_back(shard->device.modeled_seconds());
    max_device = std::max(max_device, shard->device.modeled_seconds());
    result.modeled_breakdown.merge(shard->device.modeled_breakdown());
    const auto& c = shard->device.counters();
    result.counters.flops += c.flops;
    result.counters.dram_read_fetched += c.dram_read_fetched;
    result.counters.dram_write_fetched += c.dram_write_fetched;
    result.counters.launches += c.launches;
  }
  exchange_seconds_ = exchange_seconds;
  result.modeled_seconds = max_device + exchange_seconds;
  return result;
}

}  // namespace fastpso::core
