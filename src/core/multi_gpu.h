// Multi-GPU FastPSO (paper Section 3.5, "Supporting multiple GPUs").
//
// Two strategies, as described in the paper:
//
//  kParticleSplit — the swarm is split into per-device sub-swarms; each
//    device optimizes its sub-swarm with its own local-global best, and the
//    whole-group best is exchanged through the host every `sync_interval`
//    iterations (the paper's asynchronous update, rendered deterministic).
//    Optimization semantics differ slightly from single-device PSO (between
//    exchanges, sub-swarms follow their local best).
//
//  kTileMatrix — the state matrices are sharded by rows across devices and
//    every step runs on all shards; the gbest reduction is completed across
//    devices each iteration. Every shard draws its randoms from the global
//    element index space (core/init.h slice fills), so results are
//    bitwise-identical to single-device FastPSO for any device count
//    (pinned in tests/test_multi_gpu.cpp).
//
// Modeled time: devices run concurrently, so the modeled cost of the run is
// the maximum across devices plus the host-side exchange transfers.
#pragma once

#include <memory>
#include <vector>

#include "core/objective.h"
#include "core/params.h"
#include "core/result.h"
#include "vgpu/device.h"

namespace fastpso::core {

enum class MultiGpuStrategy {
  kParticleSplit,
  kTileMatrix,
};

const char* to_string(MultiGpuStrategy strategy);

struct MultiGpuParams {
  PsoParams pso;
  int devices = 2;
  MultiGpuStrategy strategy = MultiGpuStrategy::kTileMatrix;
  /// Iterations between global-best exchanges under kParticleSplit.
  int sync_interval = 10;
};

/// Runs FastPSO across several virtual devices of identical spec.
class MultiGpuOptimizer {
 public:
  explicit MultiGpuOptimizer(MultiGpuParams params,
                             vgpu::GpuSpec spec = vgpu::tesla_v100());

  Result optimize(const Objective& objective);

  /// Modeled seconds spent by each device in the last run (max of these,
  /// plus exchange cost, is Result::modeled_seconds).
  [[nodiscard]] const std::vector<double>& device_seconds() const {
    return device_seconds_;
  }

  /// Modeled host-side exchange cost of the last run. Invariant (pinned in
  /// tests/test_multi_gpu.cpp): Result::modeled_seconds ==
  /// max(device_seconds()) + exchange_seconds().
  [[nodiscard]] double exchange_seconds() const { return exchange_seconds_; }

 private:
  MultiGpuParams params_;
  vgpu::GpuSpec spec_;
  std::vector<double> device_seconds_;
  double exchange_seconds_ = 0.0;

  Result optimize_particle_split(const Objective& objective);
  Result optimize_tile_matrix(const Objective& objective);
};

}  // namespace fastpso::core
