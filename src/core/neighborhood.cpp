#include "core/neighborhood.h"

#include "common/check.h"
#include "core/kernels_registry.h"
#include "vgpu/graph/codegen.h"

namespace fastpso::core {

void update_ring_nbest(vgpu::Device& device, const LaunchPolicy& policy,
                       const SwarmState& state, int neighbors,
                       vgpu::DeviceArray<std::int32_t>& nbest_idx) {
  const int n = state.n;
  FASTPSO_CHECK_MSG(neighbors >= 1, "ring needs at least one neighbor");
  FASTPSO_CHECK_MSG(2 * neighbors + 1 <= n,
                    "ring window exceeds the swarm");
  FASTPSO_CHECK(nbest_idx.size() >= static_cast<std::size_t>(n));

  const LaunchDecision decision = policy.for_particles(n);
  vgpu::KernelCostSpec cost;
  cost.flops = static_cast<double>(n) * (2 * neighbors + 1);
  // Each particle reads its window of pbest errors (served mostly from
  // cache; count the window once) and writes one index.
  cost.dram_read_bytes =
      static_cast<double>(n) * (2 * neighbors + 1) * sizeof(float);
  cost.dram_write_bytes = static_cast<double>(n) * sizeof(std::int32_t);

  // Element-wise launch with a by-value argument pack: the captured body
  // stays valid for standalone replay (a reference-capturing ThreadCtx
  // kernel records no replayable body, so replay froze nbest_idx at its
  // capture values), and the registered static form lets compiled replay
  // run the node through its span. No declared footprint — the window read
  // is not element-aligned, so the node must stay opaque to the fusion
  // pass.
  const kernels::RingNbestKernel::Args args{state.pbest_err.data(),
                                            nbest_idx.data(), n, neighbors};
  device.launch_elements(decision.config, cost, n,
                         [args](std::int64_t i) {
                           kernels::RingNbestKernel::element(args, i);
                         });
  if (device.capturing()) {
    device.graph_note_static(
        vgpu::graph::codegen::make_static<kernels::RingNbestKernel>(args));
  }
}

}  // namespace fastpso::core
