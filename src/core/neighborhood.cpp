#include "core/neighborhood.h"

#include "common/check.h"

namespace fastpso::core {

void update_ring_nbest(vgpu::Device& device, const LaunchPolicy& policy,
                       const SwarmState& state, int neighbors,
                       vgpu::DeviceArray<std::int32_t>& nbest_idx) {
  const int n = state.n;
  FASTPSO_CHECK_MSG(neighbors >= 1, "ring needs at least one neighbor");
  FASTPSO_CHECK_MSG(2 * neighbors + 1 <= n,
                    "ring window exceeds the swarm");
  FASTPSO_CHECK(nbest_idx.size() >= static_cast<std::size_t>(n));

  const LaunchDecision decision = policy.for_particles(n);
  vgpu::KernelCostSpec cost;
  cost.flops = static_cast<double>(n) * (2 * neighbors + 1);
  // Each particle reads its window of pbest errors (served mostly from
  // cache; count the window once) and writes one index.
  cost.dram_read_bytes =
      static_cast<double>(n) * (2 * neighbors + 1) * sizeof(float);
  cost.dram_write_bytes = static_cast<double>(n) * sizeof(std::int32_t);

  const float* pbest_err = state.pbest_err.data();
  std::int32_t* out = nbest_idx.data();
  device.launch(decision.config, cost, [&](const vgpu::ThreadCtx& t) {
    for (std::int64_t i = t.global_id(); i < n; i += t.grid_stride()) {
      std::int32_t best = static_cast<std::int32_t>(i);
      float best_err = pbest_err[i];
      for (int off = 1; off <= neighbors; ++off) {
        for (int sign : {-1, 1}) {
          const std::int64_t j = (i + sign * off + n) % n;
          if (pbest_err[j] < best_err) {
            best = static_cast<std::int32_t>(j);
            best_err = pbest_err[j];
          }
        }
      }
      out[i] = best;
    }
  });
}

}  // namespace fastpso::core
