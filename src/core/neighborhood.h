// Neighborhood-best computation for the lbest ring topology (extension
// beyond the paper's gbest PSO).
//
// Under Topology::kRing each particle follows the best pbest within its
// ring window {i-k, ..., i+k} (indices mod n) instead of the swarm-global
// best. The kernel computes, per particle, the *index* of that neighbor;
// the ring swarm-update kernel then gathers the attractor row through the
// index, so no per-particle position copies are needed.
#pragma once

#include "core/launch_policy.h"
#include "core/swarm_state.h"
#include "vgpu/buffer.h"
#include "vgpu/device.h"

namespace fastpso::core {

/// Fills nbest_idx[i] with argmin of pbest_err over the ring window of
/// half-width `neighbors` around particle i. Deterministic: only strictly
/// better neighbors replace the incumbent, so ties resolve to the smallest
/// ring offset (self first, then nearer neighbors, left before right).
void update_ring_nbest(vgpu::Device& device, const LaunchPolicy& policy,
                       const SwarmState& state, int neighbors,
                       vgpu::DeviceArray<std::int32_t>& nbest_idx);

}  // namespace fastpso::core
