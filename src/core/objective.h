// Objective ("swarm evaluation function") abstraction for the optimizer.
//
// The paper's Step (ii) supports customized evaluation functions through a
// CUDA kernel schema (the `evaluation_kernel` template in Section 3.2).
// Built-in problems and user-defined lambdas go through the same schema —
// see core/eval_schema.h for the kernel itself.
#pragma once

#include <functional>
#include <string>
#include <utility>

#include "problems/problem.h"

namespace fastpso::core {

/// A minimization objective consumable by the optimizer: a per-particle
/// function plus domain and cost metadata.
struct Objective {
  std::string name;

  /// Evaluates one particle: `fn(x, dim)` with x pointing at `dim` floats.
  std::function<double(const float* x, int dim)> fn;

  /// Optional batched form: `batch_fn(X, n, dim, out)` evaluates `n`
  /// particles stored row-major in X, writing `out[i] =
  /// (float)fn(X + i*dim, dim)` with a devirtualized inner loop (one
  /// dispatch per batch). Null for custom lambda objectives; callers fall
  /// back to the per-particle fn.
  std::function<void(const float* X, int n, int dim, float* out)> batch_fn;

  /// Search domain (positions initialized uniformly in [lower, upper]).
  double lower = -1.0;
  double upper = 1.0;

  /// Operation counts for the performance model.
  problems::EvalCost cost;

  /// Known optimum (used only for error reporting; NaN when unknown).
  double optimum = 0.0;
  bool has_optimum = false;

  /// Set by objective_from_problem so graph capture can register a static
  /// eval kernel for the compiled fused-loop path (core/kernels_registry.h).
  /// Null for custom lambda objectives — their launches stay interpreted.
  const problems::Problem* problem = nullptr;
};

/// Wraps a built-in Problem as an Objective. The problem must outlive the
/// objective (the lambda captures a reference).
Objective objective_from_problem(const problems::Problem& problem, int dim);

/// Builds a custom objective from a user lambda — the "customized swarm
/// evaluation function" schema entry point.
template <typename Fn>
Objective make_objective(std::string name, double lower, double upper,
                         Fn&& fn,
                         problems::EvalCost cost = problems::EvalCost{}) {
  Objective objective;
  objective.name = std::move(name);
  objective.lower = lower;
  objective.upper = upper;
  objective.fn = std::forward<Fn>(fn);
  objective.cost = cost;
  return objective;
}

}  // namespace fastpso::core
