#include "core/optimizer.h"

#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"
#include "core/best_update.h"
#include "core/eval_schema.h"
#include "core/init.h"
#include "core/swarm_state.h"
#include <algorithm>
#include <limits>

#include "core/job_run.h"
#include "core/neighborhood.h"
#include "core/recorder.h"
#include "core/stop_tracker.h"
#include "rng/philox.h"
#include "core/swarm_update.h"
#include "vgpu/graph/graph.h"
#include "vgpu/memory_pool.h"
#include "vgpu/prof/prof.h"
#include "vgpu/san/tracked.h"

namespace fastpso::core {

Objective objective_from_problem(const problems::Problem& problem, int dim) {
  Objective objective;
  objective.name = problem.name();
  objective.lower = problem.lower_bound();
  objective.upper = problem.upper_bound();
  objective.cost = problem.cost();
  objective.optimum = problem.optimum_value(dim);
  objective.has_optimum = problem.has_known_optimum();
  objective.fn = [&problem](const float* x, int d) {
    return problem.eval_f32(x, d);
  };
  objective.batch_fn = [&problem](const float* X, int n, int d, float* out) {
    problem.eval_batch(X, n, d, out);
  };
  objective.problem = &problem;
  return objective;
}


Optimizer::Optimizer(vgpu::Device& device, PsoParams params)
    : device_(device), params_(params), policy_(device.spec()) {
  FASTPSO_CHECK_MSG(params_.particles > 0, "need at least one particle");
  FASTPSO_CHECK_MSG(params_.dim > 0, "dimension must be positive");
  FASTPSO_CHECK_MSG(params_.max_iter > 0, "need at least one iteration");
  if (params_.topology == Topology::kRing) {
    FASTPSO_CHECK_MSG(params_.technique == UpdateTechnique::kGlobalMemory,
                      "ring topology requires the global-memory technique");
    FASTPSO_CHECK_MSG(params_.ring_neighbors >= 1 &&
                          2 * params_.ring_neighbors + 1 <= params_.particles,
                      "invalid ring neighborhood");
  }
}

Result Optimizer::optimize(const Objective& objective) {
  return optimize(objective, IterationCallback{});
}

Result Optimizer::optimize(const Objective& objective,
                           const IterationCallback& callback) {
  FASTPSO_CHECK_MSG(static_cast<bool>(objective.fn),
                    "objective has no evaluation function");
  FASTPSO_CHECK_MSG(objective.upper > objective.lower,
                    "objective domain is empty");
  if (params_.synchronization == Synchronization::kAsynchronous) {
    return optimize_async(objective, callback);
  }
  return optimize_sync(objective, callback);
}

Result Optimizer::optimize_sync(const Objective& objective,
                                const IterationCallback& callback) {
  device_.reset_counters();
  device_.pool().set_enabled(params_.memory_caching);

  // The run body lives in core::JobRun so the serve scheduler (src/serve/)
  // can drive the identical loop one iteration at a time on a shared
  // device — solo-vs-scheduled bitwise equivalence by construction.
  JobRun run(device_, params_, objective, JobRun::Mode::kSolo);

  // Capture-once/replay-many of the per-iteration launch sequence
  // (vgpu/graph): iteration 1 records while running eagerly, iterations
  // 2..T replay with pre-resolved accounting. Inert unless FASTPSO_GRAPH=1
  // or FASTPSO_FUSE=1 (the latter also runs the fusion pass over the
  // captured iteration — vgpu/graph/fusion.h).
  auto recorder = make_iteration_recorder(device_);
  while (!run.done()) {
    recorder.begin_iteration();
    run.step();
    recorder.end_iteration();
    if (callback && !callback(run.iterations() - 1, run.gbest())) {
      break;
    }
  }

  Result result = run.finish();
  export_recorder_stats(recorder, result);
  return result;
}

Result Optimizer::optimize_async(const Objective& objective,
                                 const IterationCallback& callback) {
  // Asynchronous PSO (cf. Koh et al. 2006 / Venter & Sobieszczanski 2006,
  // surveyed in the paper's Section 5.1): evaluation, pbest/gbest update
  // and the particle's own move are fused into one per-particle pass, so
  // later particles in an iteration already see this iteration's improved
  // global best. The fusion forces particle-level parallelism — one thread
  // per particle, serialized gbest updates (atomics on real hardware) — so
  // it deliberately gives up FastPSO's element-wise granularity; the
  // ablation bench quantifies that trade.
  device_.reset_counters();
  device_.pool().set_enabled(params_.memory_caching);
  FASTPSO_CHECK_MSG(params_.topology == Topology::kGlobal,
                    "async mode supports the global topology only");

  const int n = params_.particles;
  const int d = params_.dim;
  const UpdateCoefficients coeff =
      make_coefficients(params_, objective.lower, objective.upper);
  const float v_init = coeff.vmax > 0.0f
                           ? coeff.vmax
                           : static_cast<float>(objective.upper -
                                                objective.lower);

  Result result;
  TimeBreakdown wall;
  Stopwatch total_watch;

  device_.set_phase("init");
  SwarmState state(device_, n, d);
  {
    ScopedTimer timer(wall, "init");
    initialize_swarm(device_, policy_, state, params_.seed,
                     static_cast<float>(objective.lower),
                     static_cast<float>(objective.upper), v_init);
  }

  // Per-particle launch shape: the fusion's inherent granularity.
  vgpu::LaunchConfig per_particle;
  per_particle.block = 256;
  per_particle.grid = (n + per_particle.block - 1) / per_particle.block;

  namespace san = vgpu::san;
  float* raw_positions = state.positions.data();
  const std::int64_t elements = state.elements();
  // Tracked views for the fused kernels. gbest_pos is written under the
  // serialized-update semantics a real GPU implements with atomics/locks,
  // so it is classed kAtomic (race checks suppressed by declaration); the
  // fused kernels' traffic is improved-count-dependent, so their launches
  // are trace-only rather than cost-audited.
  const auto velocities =
      san::track(state.velocities.data(), elements, "velocities");
  const auto positions = san::track(raw_positions, elements, "positions");
  const auto pbest_pos =
      san::track(state.pbest_pos.data(), elements, "pbest_pos");
  const auto pbest_err =
      san::track(state.pbest_err.data(), static_cast<std::size_t>(n),
                 "pbest_err");
  const auto gbest_pos =
      san::track(state.gbest_pos.data(), static_cast<std::size_t>(d),
                 "gbest_pos", san::BufferClass::kAtomic);

  // Seed gbest from the initial positions (one evaluation pass).
  {
    ScopedTimer timer(wall, "eval");
    vgpu::prof::Scope phase(device_, "eval");
    vgpu::KernelCostSpec cost;
    cost.flops = objective.cost.flops(d) * n;
    cost.transcendentals = objective.cost.transcendentals(d) * n;
    cost.dram_read_bytes = static_cast<double>(elements) * sizeof(float);
    cost.dram_write_bytes = static_cast<double>(n) * sizeof(float);
    san::KernelScope scope("optimizer/async_seed",
                           san::AuditMode::kTraceOnly);
    device_.launch(per_particle, cost, [&](const vgpu::ThreadCtx& t) {
      const std::int64_t i = t.global_id();
      if (i < n) {
        const float err =
            static_cast<float>(objective.fn(raw_positions + i * d, d));
        pbest_err[i] = err;
        if (err < state.gbest_err) {
          state.gbest_err = err;
          for (int j = 0; j < d; ++j) {
            gbest_pos[j] = positions[i * d + j];
          }
        }
      }
    });
  }

  // Per-iteration capture/replay, as in the sync loop. The async fused
  // iteration is a single launch, so the graph is tiny — the replay still
  // skips the per-launch setup, but the amortization model may report a
  // (faithful) negative saving: one cudaGraphLaunch costs more than one
  // kernel launch's overhead. Kernel fusion is explicitly off: the async
  // update is already one fused per-particle kernel, so there is no run of
  // element-wise stages for the pass to merge.
  vgpu::graph::IterationRecorder recorder(
      device_, vgpu::graph::enabled() || vgpu::graph::fusion_enabled(),
      /*fuse=*/false);

  StopTracker stop(params_);
  int completed = 0;
  for (int iter = 0; iter < params_.max_iter; ++iter) {
    recorder.begin_iteration();
    device_.set_phase("swarm");
    ScopedTimer timer(wall, "swarm");
    const UpdateCoefficients it_coeff =
        coefficients_for_iter(coeff, params_, iter);
    const rng::PhiloxStream iter_rng(
        params_.seed ^ 0x5851F42Du, 2 + static_cast<std::uint64_t>(iter));

    vgpu::KernelCostSpec cost;
    cost.flops = (10.0 + 2.0 * kPhiloxFlopsPerValue) *
                     static_cast<double>(elements) +
                 objective.cost.flops(d) * n;
    cost.transcendentals = objective.cost.transcendentals(d) * n;
    cost.dram_read_bytes =
        4.0 * static_cast<double>(elements) * sizeof(float);
    cost.dram_write_bytes =
        2.5 * static_cast<double>(elements) * sizeof(float);
    san::KernelScope scope("optimizer/async_fused",
                           san::AuditMode::kTraceOnly);
    device_.launch(per_particle, cost, [&](const vgpu::ThreadCtx& t) {
      const std::int64_t i = t.global_id();
      if (i >= n) {
        return;
      }
      // Move with the freshest gbest (already updated by lower-indexed
      // particles of this same iteration).
      for (int j = 0; j < d; ++j) {
        const std::int64_t e = i * d + j;
        const auto r =
            iter_rng.uniform_pair_at(static_cast<std::uint64_t>(e));
        const float pe = positions[e];
        float nv = it_coeff.omega * velocities[e] +
                   it_coeff.c1 * r[0] * (pbest_pos[e] - pe) +
                   it_coeff.c2 * r[1] * (gbest_pos[j] - pe);
        if (it_coeff.vmax > 0.0f) {
          nv = std::clamp(nv, -it_coeff.vmax, it_coeff.vmax);
        }
        velocities[e] = nv;
        positions[e] = pe + nv;
      }
      const float err =
          static_cast<float>(objective.fn(raw_positions + i * d, d));
      if (err < pbest_err[i]) {
        pbest_err[i] = err;
        for (int j = 0; j < d; ++j) {
          pbest_pos[i * d + j] = positions[i * d + j];
        }
        if (err < state.gbest_err) {
          state.gbest_err = err;  // serialized (atomic on real hardware)
          for (int j = 0; j < d; ++j) {
            gbest_pos[j] = positions[i * d + j];
          }
        }
      }
    });
    recorder.end_iteration();

    completed = iter + 1;
    result.gbest_history.push_back(state.gbest_err);
    if (callback && !callback(iter, state.gbest_err)) {
      break;
    }
    if (stop.should_stop(state.gbest_err)) {
      break;
    }
  }

  device_.set_phase("gbest");
  result.gbest_position.resize(d);
  state.gbest_pos.download(result.gbest_position);
  result.gbest_value = state.gbest_err;
  result.iterations = completed;
  result.wall_seconds = total_watch.elapsed_s();
  result.wall_breakdown = wall;
  result.modeled_breakdown = device_.modeled_breakdown();
  result.modeled_seconds = device_.modeled_seconds();
  result.counters = device_.counters();
  result.profile = device_.take_profile();
  export_recorder_stats(recorder, result);
  return result;
}

}  // namespace fastpso::core
