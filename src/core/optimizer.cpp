#include "core/optimizer.h"

#include <utility>

#include "common/check.h"
#include "common/stopwatch.h"
#include "core/best_update.h"
#include "core/eval_schema.h"
#include "core/init.h"
#include "core/swarm_state.h"
#include <algorithm>
#include <limits>

#include "core/neighborhood.h"
#include "core/recorder.h"
#include "rng/philox.h"
#include "core/swarm_update.h"
#include "vgpu/graph/graph.h"
#include "vgpu/memory_pool.h"
#include "vgpu/prof/prof.h"
#include "vgpu/san/tracked.h"

namespace fastpso::core {

Objective objective_from_problem(const problems::Problem& problem, int dim) {
  Objective objective;
  objective.name = problem.name();
  objective.lower = problem.lower_bound();
  objective.upper = problem.upper_bound();
  objective.cost = problem.cost();
  objective.optimum = problem.optimum_value(dim);
  objective.has_optimum = problem.has_known_optimum();
  objective.fn = [&problem](const float* x, int d) {
    return problem.eval_f32(x, d);
  };
  objective.batch_fn = [&problem](const float* X, int n, int d, float* out) {
    problem.eval_batch(X, n, d, out);
  };
  return objective;
}


namespace {

/// Shared early-stop bookkeeping for both synchronization modes.
class StopTracker {
 public:
  explicit StopTracker(const PsoParams& params)
      : target_(params.target_value),
        tolerance_(params.stall_tolerance),
        patience_(params.stall_patience) {}

  /// Returns true when the run should stop after seeing `gbest`.
  bool should_stop(double gbest) {
    if (gbest <= target_) {
      return true;
    }
    if (patience_ <= 0) {
      return false;
    }
    if (gbest < best_seen_ - tolerance_) {
      best_seen_ = gbest;
      stalled_ = 0;
      return false;
    }
    return ++stalled_ >= patience_;
  }

 private:
  double target_;
  double tolerance_;
  int patience_;
  double best_seen_ = std::numeric_limits<double>::infinity();
  int stalled_ = 0;
};

}  // namespace

Optimizer::Optimizer(vgpu::Device& device, PsoParams params)
    : device_(device), params_(params), policy_(device.spec()) {
  FASTPSO_CHECK_MSG(params_.particles > 0, "need at least one particle");
  FASTPSO_CHECK_MSG(params_.dim > 0, "dimension must be positive");
  FASTPSO_CHECK_MSG(params_.max_iter > 0, "need at least one iteration");
  if (params_.topology == Topology::kRing) {
    FASTPSO_CHECK_MSG(params_.technique == UpdateTechnique::kGlobalMemory,
                      "ring topology requires the global-memory technique");
    FASTPSO_CHECK_MSG(params_.ring_neighbors >= 1 &&
                          2 * params_.ring_neighbors + 1 <= params_.particles,
                      "invalid ring neighborhood");
  }
}

Result Optimizer::optimize(const Objective& objective) {
  return optimize(objective, IterationCallback{});
}

Result Optimizer::optimize(const Objective& objective,
                           const IterationCallback& callback) {
  FASTPSO_CHECK_MSG(static_cast<bool>(objective.fn),
                    "objective has no evaluation function");
  FASTPSO_CHECK_MSG(objective.upper > objective.lower,
                    "objective domain is empty");
  if (params_.synchronization == Synchronization::kAsynchronous) {
    return optimize_async(objective, callback);
  }
  return optimize_sync(objective, callback);
}

Result Optimizer::optimize_sync(const Objective& objective,
                                const IterationCallback& callback) {

  device_.reset_counters();
  device_.pool().set_enabled(params_.memory_caching);

  const int n = params_.particles;
  const int d = params_.dim;
  const UpdateCoefficients coeff =
      make_coefficients(params_, objective.lower, objective.upper);
  // Velocity init range: the clamp bound when clamping, else the domain.
  const float v_init = coeff.vmax > 0.0f
                           ? coeff.vmax
                           : static_cast<float>(objective.upper -
                                                objective.lower);

  Result result;
  TimeBreakdown wall;
  Stopwatch total_watch;

  // ---- Step (i): allocation + initialization --------------------------
  device_.set_phase("init");
  SwarmState state(device_, n, d);
  {
    ScopedTimer timer(wall, "init");
    initialize_swarm(device_, policy_, state, params_.seed,
                     static_cast<float>(objective.lower),
                     static_cast<float>(objective.upper), v_init);
  }

  // Evaluation cost declaration, reused every iteration.
  vgpu::KernelCostSpec eval_cost;
  eval_cost.flops = objective.cost.flops(d) * n;
  eval_cost.transcendentals = objective.cost.transcendentals(d) * n;
  eval_cost.dram_read_bytes =
      static_cast<double>(state.elements()) * sizeof(float);
  eval_cost.dram_write_bytes = static_cast<double>(n) * sizeof(float);

  const float* positions = state.positions.data();
  float* perror = state.perror.data();

  // Ring topology working set (allocated only when used).
  vgpu::DeviceArray<std::int32_t> nbest_idx;
  if (params_.topology == Topology::kRing) {
    nbest_idx = vgpu::DeviceArray<std::int32_t>(device_, n);
  }

  // Overlapped pipeline: double-buffered weight matrices + a second
  // stream so Step (i) of iteration t+1 hides behind Steps (ii)-(iii) of
  // iteration t. Same Philox streams, so results are bit-identical.
  vgpu::DeviceArray<float> l_buf[2];
  vgpu::DeviceArray<float> g_buf[2];
  vgpu::Device::StreamId gen_stream = 0;
  if (params_.overlap_init) {
    gen_stream = device_.create_stream();
    device_.set_phase("init");
    ScopedTimer timer(wall, "init");
    for (int b = 0; b < 2; ++b) {
      l_buf[b] = vgpu::DeviceArray<float>(device_, state.elements());
      g_buf[b] = vgpu::DeviceArray<float>(device_, state.elements());
    }
    generate_weights(device_, policy_, state.elements(), params_.seed, 0,
                     l_buf[0], g_buf[0]);
  }

  // Capture-once/replay-many of the per-iteration launch sequence
  // (vgpu/graph): iteration 1 records while running eagerly, iterations
  // 2..T replay with pre-resolved accounting. Inert unless FASTPSO_GRAPH=1
  // or FASTPSO_FUSE=1 (the latter also runs the fusion pass over the
  // captured iteration — vgpu/graph/fusion.h).
  auto recorder = make_iteration_recorder(device_);

  StopTracker stop(params_);
  int completed = 0;
  for (int iter = 0; iter < params_.max_iter; ++iter) {
    recorder.begin_iteration();
    vgpu::DeviceArray<float> l_mat;
    vgpu::DeviceArray<float> g_mat;
    if (params_.overlap_init) {
      // ---- Step (i), overlapped: next iteration's weights on stream 1 --
      if (iter + 1 < params_.max_iter) {
        ScopedTimer timer(wall, "init");
        device_.set_phase("init");
        device_.set_stream(gen_stream);
        generate_weights(device_, policy_, state.elements(), params_.seed,
                         iter + 1, l_buf[(iter + 1) % 2],
                         g_buf[(iter + 1) % 2]);
        device_.set_stream(0);
      }
    } else {
      // ---- Step (i) continued: per-iteration weight matrices ----------
      device_.set_phase("init");
      ScopedTimer timer(wall, "init");
      l_mat = vgpu::DeviceArray<float>(device_, state.elements());
      g_mat = vgpu::DeviceArray<float>(device_, state.elements());
      generate_weights(device_, policy_, state.elements(), params_.seed,
                       iter, l_mat, g_mat);
    }
    vgpu::DeviceArray<float>& l_cur =
        params_.overlap_init ? l_buf[iter % 2] : l_mat;
    vgpu::DeviceArray<float>& g_cur =
        params_.overlap_init ? g_buf[iter % 2] : g_mat;

    // ---- Step (ii): evaluation through the kernel schema ---------------
    {
      vgpu::prof::Scope phase(device_, "eval");
      ScopedTimer timer(wall, "eval");
      evaluate_positions(device_, policy_, objective, positions, n, d,
                         eval_cost, perror);
    }

    // ---- Step (iii): pbest + gbest -------------------------------------
    {
      vgpu::prof::Scope phase(device_, "pbest");
      ScopedTimer timer(wall, "pbest");
      update_pbest(device_, policy_, state);
    }
    {
      vgpu::prof::Scope phase(device_, "gbest");
      ScopedTimer timer(wall, "gbest");
      update_gbest(device_, state);
    }

    // ---- Step (iv): swarm update ---------------------------------------
    if (params_.overlap_init) {
      device_.sync_streams();  // the weights must have landed
    }
    // Plain set_phase, not a prof::Scope: "swarm" must persist past the
    // block so the end-of-iteration weight-matrix frees stay attributed to
    // it, exactly as before.
    device_.set_phase("swarm");
    {
      ScopedTimer timer(wall, "swarm");
      const UpdateCoefficients it_coeff =
          coefficients_for_iter(coeff, params_, iter);
      if (params_.topology == Topology::kRing) {
        update_ring_nbest(device_, policy_, state, params_.ring_neighbors,
                          nbest_idx);
        swarm_update_ring(device_, policy_, state, l_cur, g_cur, it_coeff,
                          nbest_idx.data());
      } else {
        swarm_update(device_, policy_, state, l_cur, g_cur, it_coeff,
                     params_.technique);
      }
    }
    recorder.end_iteration();

    completed = iter + 1;
    result.gbest_history.push_back(state.gbest_err);
    if (callback && !callback(iter, state.gbest_err)) {
      break;
    }
    if (stop.should_stop(state.gbest_err)) {
      break;
    }
  }

  // Fetch the final answer from the device.
  device_.set_phase("gbest");
  result.gbest_position.resize(d);
  state.gbest_pos.download(result.gbest_position);
  result.gbest_value = state.gbest_err;
  result.iterations = completed;
  result.wall_seconds = total_watch.elapsed_s();
  result.wall_breakdown = wall;
  result.modeled_breakdown = device_.modeled_breakdown();
  result.modeled_seconds = device_.modeled_seconds();
  result.counters = device_.counters();
  result.profile = device_.take_profile();
  export_recorder_stats(recorder, result);
  return result;
}

Result Optimizer::optimize_async(const Objective& objective,
                                 const IterationCallback& callback) {
  // Asynchronous PSO (cf. Koh et al. 2006 / Venter & Sobieszczanski 2006,
  // surveyed in the paper's Section 5.1): evaluation, pbest/gbest update
  // and the particle's own move are fused into one per-particle pass, so
  // later particles in an iteration already see this iteration's improved
  // global best. The fusion forces particle-level parallelism — one thread
  // per particle, serialized gbest updates (atomics on real hardware) — so
  // it deliberately gives up FastPSO's element-wise granularity; the
  // ablation bench quantifies that trade.
  device_.reset_counters();
  device_.pool().set_enabled(params_.memory_caching);
  FASTPSO_CHECK_MSG(params_.topology == Topology::kGlobal,
                    "async mode supports the global topology only");

  const int n = params_.particles;
  const int d = params_.dim;
  const UpdateCoefficients coeff =
      make_coefficients(params_, objective.lower, objective.upper);
  const float v_init = coeff.vmax > 0.0f
                           ? coeff.vmax
                           : static_cast<float>(objective.upper -
                                                objective.lower);

  Result result;
  TimeBreakdown wall;
  Stopwatch total_watch;

  device_.set_phase("init");
  SwarmState state(device_, n, d);
  {
    ScopedTimer timer(wall, "init");
    initialize_swarm(device_, policy_, state, params_.seed,
                     static_cast<float>(objective.lower),
                     static_cast<float>(objective.upper), v_init);
  }

  // Per-particle launch shape: the fusion's inherent granularity.
  vgpu::LaunchConfig per_particle;
  per_particle.block = 256;
  per_particle.grid = (n + per_particle.block - 1) / per_particle.block;

  namespace san = vgpu::san;
  float* raw_positions = state.positions.data();
  const std::int64_t elements = state.elements();
  // Tracked views for the fused kernels. gbest_pos is written under the
  // serialized-update semantics a real GPU implements with atomics/locks,
  // so it is classed kAtomic (race checks suppressed by declaration); the
  // fused kernels' traffic is improved-count-dependent, so their launches
  // are trace-only rather than cost-audited.
  const auto velocities =
      san::track(state.velocities.data(), elements, "velocities");
  const auto positions = san::track(raw_positions, elements, "positions");
  const auto pbest_pos =
      san::track(state.pbest_pos.data(), elements, "pbest_pos");
  const auto pbest_err =
      san::track(state.pbest_err.data(), static_cast<std::size_t>(n),
                 "pbest_err");
  const auto gbest_pos =
      san::track(state.gbest_pos.data(), static_cast<std::size_t>(d),
                 "gbest_pos", san::BufferClass::kAtomic);

  // Seed gbest from the initial positions (one evaluation pass).
  {
    ScopedTimer timer(wall, "eval");
    vgpu::prof::Scope phase(device_, "eval");
    vgpu::KernelCostSpec cost;
    cost.flops = objective.cost.flops(d) * n;
    cost.transcendentals = objective.cost.transcendentals(d) * n;
    cost.dram_read_bytes = static_cast<double>(elements) * sizeof(float);
    cost.dram_write_bytes = static_cast<double>(n) * sizeof(float);
    san::KernelScope scope("optimizer/async_seed",
                           san::AuditMode::kTraceOnly);
    device_.launch(per_particle, cost, [&](const vgpu::ThreadCtx& t) {
      const std::int64_t i = t.global_id();
      if (i < n) {
        const float err =
            static_cast<float>(objective.fn(raw_positions + i * d, d));
        pbest_err[i] = err;
        if (err < state.gbest_err) {
          state.gbest_err = err;
          for (int j = 0; j < d; ++j) {
            gbest_pos[j] = positions[i * d + j];
          }
        }
      }
    });
  }

  // Per-iteration capture/replay, as in the sync loop. The async fused
  // iteration is a single launch, so the graph is tiny — the replay still
  // skips the per-launch setup, but the amortization model may report a
  // (faithful) negative saving: one cudaGraphLaunch costs more than one
  // kernel launch's overhead. Kernel fusion is explicitly off: the async
  // update is already one fused per-particle kernel, so there is no run of
  // element-wise stages for the pass to merge.
  vgpu::graph::IterationRecorder recorder(
      device_, vgpu::graph::enabled() || vgpu::graph::fusion_enabled(),
      /*fuse=*/false);

  StopTracker stop(params_);
  int completed = 0;
  for (int iter = 0; iter < params_.max_iter; ++iter) {
    recorder.begin_iteration();
    device_.set_phase("swarm");
    ScopedTimer timer(wall, "swarm");
    const UpdateCoefficients it_coeff =
        coefficients_for_iter(coeff, params_, iter);
    const rng::PhiloxStream iter_rng(
        params_.seed ^ 0x5851F42Du, 2 + static_cast<std::uint64_t>(iter));

    vgpu::KernelCostSpec cost;
    cost.flops = (10.0 + 2.0 * kPhiloxFlopsPerValue) *
                     static_cast<double>(elements) +
                 objective.cost.flops(d) * n;
    cost.transcendentals = objective.cost.transcendentals(d) * n;
    cost.dram_read_bytes =
        4.0 * static_cast<double>(elements) * sizeof(float);
    cost.dram_write_bytes =
        2.5 * static_cast<double>(elements) * sizeof(float);
    san::KernelScope scope("optimizer/async_fused",
                           san::AuditMode::kTraceOnly);
    device_.launch(per_particle, cost, [&](const vgpu::ThreadCtx& t) {
      const std::int64_t i = t.global_id();
      if (i >= n) {
        return;
      }
      // Move with the freshest gbest (already updated by lower-indexed
      // particles of this same iteration).
      for (int j = 0; j < d; ++j) {
        const std::int64_t e = i * d + j;
        const auto r =
            iter_rng.uniform_pair_at(static_cast<std::uint64_t>(e));
        const float pe = positions[e];
        float nv = it_coeff.omega * velocities[e] +
                   it_coeff.c1 * r[0] * (pbest_pos[e] - pe) +
                   it_coeff.c2 * r[1] * (gbest_pos[j] - pe);
        if (it_coeff.vmax > 0.0f) {
          nv = std::clamp(nv, -it_coeff.vmax, it_coeff.vmax);
        }
        velocities[e] = nv;
        positions[e] = pe + nv;
      }
      const float err =
          static_cast<float>(objective.fn(raw_positions + i * d, d));
      if (err < pbest_err[i]) {
        pbest_err[i] = err;
        for (int j = 0; j < d; ++j) {
          pbest_pos[i * d + j] = positions[i * d + j];
        }
        if (err < state.gbest_err) {
          state.gbest_err = err;  // serialized (atomic on real hardware)
          for (int j = 0; j < d; ++j) {
            gbest_pos[j] = positions[i * d + j];
          }
        }
      }
    });
    recorder.end_iteration();

    completed = iter + 1;
    result.gbest_history.push_back(state.gbest_err);
    if (callback && !callback(iter, state.gbest_err)) {
      break;
    }
    if (stop.should_stop(state.gbest_err)) {
      break;
    }
  }

  device_.set_phase("gbest");
  result.gbest_position.resize(d);
  state.gbest_pos.download(result.gbest_position);
  result.gbest_value = state.gbest_err;
  result.iterations = completed;
  result.wall_seconds = total_watch.elapsed_s();
  result.wall_breakdown = wall;
  result.modeled_breakdown = device_.modeled_breakdown();
  result.modeled_seconds = device_.modeled_seconds();
  result.counters = device_.counters();
  result.profile = device_.take_profile();
  export_recorder_stats(recorder, result);
  return result;
}

}  // namespace fastpso::core
