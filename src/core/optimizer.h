// The FastPSO optimizer: orchestrates the four steps of Section 3 on the
// virtual GPU.
//
//   Step (i)   swarm initialization + per-iteration weight matrices ("init")
//   Step (ii)  swarm evaluation through the kernel schema        ("eval")
//   Step (iii) pbest update + gbest parallel reduction ("pbest"/"gbest")
//   Step (iv)  element-wise swarm update                        ("swarm")
//
// Quickstart:
//
//   vgpu::Device device;                       // virtual Tesla V100
//   core::PsoParams params;
//   params.particles = 5000; params.dim = 200;
//   core::Optimizer optimizer(device, params);
//   auto problem = problems::make_problem("sphere");
//   auto result =
//       optimizer.optimize(core::objective_from_problem(*problem, params.dim));
//   // result.gbest_value, result.modeled_seconds, result.modeled_breakdown
#pragma once

#include <functional>

#include "core/launch_policy.h"
#include "core/objective.h"
#include "core/params.h"
#include "core/result.h"
#include "vgpu/device.h"

namespace fastpso::core {

/// Optional per-iteration observer: (iteration, gbest) -> keep_going.
/// Returning false stops the run early (extension beyond the paper; used by
/// the convergence-trace example).
using IterationCallback = std::function<bool(int iter, double gbest)>;

class Optimizer {
 public:
  /// The device must outlive the optimizer.
  Optimizer(vgpu::Device& device, PsoParams params);

  /// Runs PSO on `objective` and returns the result. Reuses the device's
  /// memory pool across calls (memory caching per params.memory_caching).
  Result optimize(const Objective& objective);

  /// As optimize(), invoking `callback` after each iteration.
  Result optimize(const Objective& objective,
                  const IterationCallback& callback);

  [[nodiscard]] const PsoParams& params() const { return params_; }
  [[nodiscard]] const LaunchPolicy& policy() const { return policy_; }

 private:
  Result optimize_sync(const Objective& objective,
                       const IterationCallback& callback);
  Result optimize_async(const Objective& objective,
                        const IterationCallback& callback);

  vgpu::Device& device_;
  PsoParams params_;
  LaunchPolicy policy_;
};

}  // namespace fastpso::core
