#include "core/params.h"

#include "common/check.h"

namespace fastpso::core {

const char* to_string(UpdateTechnique technique) {
  switch (technique) {
    case UpdateTechnique::kGlobalMemory:
      return "global-mem";
    case UpdateTechnique::kSharedMemory:
      return "shared-mem";
    case UpdateTechnique::kTensorCore:
      return "tensorcore";
  }
  FASTPSO_UNREACHABLE("unknown update technique");
}

const char* to_string(Topology topology) {
  switch (topology) {
    case Topology::kGlobal:
      return "global";
    case Topology::kRing:
      return "ring";
  }
  FASTPSO_UNREACHABLE("unknown topology");
}

const char* to_string(Synchronization synchronization) {
  switch (synchronization) {
    case Synchronization::kSynchronous:
      return "sync";
    case Synchronization::kAsynchronous:
      return "async";
  }
  FASTPSO_UNREACHABLE("unknown synchronization");
}

}  // namespace fastpso::core
