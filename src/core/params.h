// Public configuration types for the FastPSO optimizer.
#pragma once

#include <cstdint>
#include <limits>

namespace fastpso::core {

/// Which swarm-update kernel implementation to use (paper Section 3.5 and
/// Figure 6). All variants compute the same update; they differ in how the
/// element-wise matrix operations are staged on the device.
enum class UpdateTechnique {
  kGlobalMemory,  ///< plain grid-stride element-wise kernel
  kSharedMemory,  ///< TILE_SIZE x TILE_SIZE tiles staged in shared memory
  kTensorCore,    ///< warp-level 16x16 fragment (wmma-style) update
};

const char* to_string(UpdateTechnique technique);

/// Information-sharing topology (extension beyond the paper's gbest PSO;
/// the lbest ring is the classic alternative in the PSO literature the
/// paper surveys).
enum class Topology {
  kGlobal,  ///< every particle follows the swarm-global best (the paper)
  kRing,    ///< each particle follows the best of its ring neighborhood
};

const char* to_string(Topology topology);

/// Iteration synchronization (extension; cf. the asynchronous parallel PSO
/// line of work in the paper's Section 5.1).
enum class Synchronization {
  kSynchronous,   ///< the paper's four-step pipeline per iteration
  kAsynchronous,  ///< fused per-particle update with immediately-fresh gbest
};

const char* to_string(Synchronization synchronization);

/// PSO hyper-parameters and engine options. Defaults reproduce the paper's
/// experimental setup (Section 4.1): n=5000, d=200, 2000 iterations,
/// omega=0.9, c1=c2=2.
struct PsoParams {
  int particles = 5000;  ///< n
  int dim = 200;         ///< d
  int max_iter = 2000;

  float omega = 0.9f;  ///< inertia
  float c1 = 2.0f;     ///< cognitive (local) coefficient
  float c2 = 2.0f;     ///< social (global) coefficient

  std::uint64_t seed = 42;

  UpdateTechnique technique = UpdateTechnique::kGlobalMemory;

  /// Neighborhood topology. kRing requires the global-memory technique
  /// (the tiled variants assume a row-uniform attractor).
  Topology topology = Topology::kGlobal;
  /// Neighbors on each side under kRing (window of 2k+1 particles).
  int ring_neighbors = 2;

  /// Synchronous (paper) or asynchronous (fused, particle-level) updates.
  Synchronization synchronization = Synchronization::kSynchronous;

  /// Bound-constraint handling for velocities (paper Eq. 5, after
  /// Kaucic 2013). vmax = vmax_fraction * (upper - lower); velocities are
  /// clamped to [-vmax, vmax] each update.
  bool velocity_clamp = true;
  float vmax_fraction = 0.5f;

  /// Adaptive velocity bound (the convergence mechanism of Kaucic 2013,
  /// which the paper adopts for Eq. 5): the clamp anneals linearly from
  /// vmax to vmax * vmax_final_fraction over the run, turning the late
  /// phase into a fine local search around gbest. Without this, the
  /// paper's omega=0.9, c1=c2=2 setting is a bounded random walk.
  bool adaptive_velocity_bound = true;
  float vmax_final_fraction = 0.002f;

  /// Optionally clamp positions back into the search domain.
  bool position_clamp = false;

  /// Mixed precision under the tensor-core technique (paper Section 3.5:
  /// "tensor cores enable mixed-precision computing"): the multiplicand
  /// fragments (random weights and attractor deltas) are rounded through
  /// FP16 before the warp-level multiply, with FP32 accumulation — Volta
  /// tensor-core semantics. Ignored by the other techniques.
  bool mixed_precision = false;

  /// Overlapped pipeline (extension; streams): generate the NEXT
  /// iteration's random-weight matrices on a second stream while the
  /// current iteration's evaluation and best-updates run, hiding Step (i)
  /// behind Steps (ii)-(iii). Results are bit-identical to the
  /// non-overlapped pipeline (same counter-based streams); only modeled
  /// time changes. Uses persistent double-buffered weight matrices, so the
  /// memory_caching comparison (Table 4) should run with this off.
  bool overlap_init = false;

  /// Early stopping (extension; the paper always runs max_iter).
  /// Stops when gbest <= target_value (default: never), or when gbest has
  /// not improved by more than stall_tolerance for stall_patience
  /// consecutive iterations (patience <= 0 disables).
  double target_value = -std::numeric_limits<double>::infinity();
  double stall_tolerance = 0.0;
  int stall_patience = 0;

  /// GPU memory caching (paper Section 4.4 / Table 4). When false, the
  /// per-iteration random-weight matrices are re-allocated from the device
  /// every iteration (models cudaMalloc/cudaFree churn).
  bool memory_caching = true;
};

}  // namespace fastpso::core
