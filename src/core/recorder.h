// Shared per-iteration capture/replay scaffolding. core::Optimizer and both
// GPU baselines (gpu_pso, hgpu_pso) construct the recorder and export its
// bookkeeping identically; keeping that glue here means a pipeline cannot
// wire the graph stats and forget the fusion stats (or vice versa).
#pragma once

#include "core/result.h"
#include "vgpu/device.h"
#include "vgpu/graph/graph.h"

namespace fastpso::core {

/// The standard per-iteration recorder: records when graph mode or fusion
/// mode is enabled (FASTPSO_GRAPH / FASTPSO_FUSE) and applies the fusion
/// pass after instantiation when fusion mode is — see vgpu/graph/graph.h.
/// Pipelines whose iteration is already a single fused kernel (the async
/// optimizer) construct IterationRecorder directly with fuse = false.
[[nodiscard]] inline vgpu::graph::IterationRecorder make_iteration_recorder(
    vgpu::Device& device) {
  return vgpu::graph::IterationRecorder(device);
}

/// Copies the recorder's capture/replay and fusion bookkeeping into
/// `result` — the single pairing of Result fields with recorder accessors.
inline void export_recorder_stats(
    const vgpu::graph::IterationRecorder& recorder, Result& result) {
  result.graph = recorder.stats();
  result.fusion = recorder.fusion_stats();
  result.codegen = recorder.codegen_stats();
}

}  // namespace fastpso::core
