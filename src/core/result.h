// Optimization result and timing report shared by all PSO implementations
// in this repository (FastPSO, the CPU versions and the GPU baselines), so
// the benchmark harnesses can compare them uniformly.
#pragma once

#include <cmath>
#include <vector>

#include "common/stopwatch.h"
#include "vgpu/device.h"
#include "vgpu/graph/graph.h"
#include "vgpu/prof/prof.h"

namespace fastpso::core {

/// Outcome of one optimizer run.
struct Result {
  double gbest_value = 0.0;
  std::vector<float> gbest_position;
  int iterations = 0;

  /// gbest after each completed iteration (one entry per iteration run);
  /// the differential tests compare these trajectories across
  /// implementations.
  std::vector<float> gbest_history;

  /// Real seconds on this machine (transparency metric).
  double wall_seconds = 0.0;
  /// Seconds under the paper-machine performance model (the
  /// paper-comparable metric; DESIGN.md §5).
  double modeled_seconds = 0.0;

  /// Per-step breakdowns keyed "init"/"eval"/"pbest"/"gbest"/"swarm".
  TimeBreakdown wall_breakdown;
  TimeBreakdown modeled_breakdown;

  /// Device activity counters (zeroed for CPU-only implementations).
  vgpu::DeviceCounters counters;

  /// Event timeline collected while FASTPSO_PROF was enabled (empty
  /// otherwise). CPU implementations record modeled host regions into it
  /// via Profile::add_host so the Figure 5 pipeline has one source.
  vgpu::prof::Profile profile;

  /// Capture/replay bookkeeping when FASTPSO_GRAPH was enabled (all-default
  /// otherwise). modeled_seconds_saved is the amortization credit the graph
  /// model reports; it is never folded into modeled_seconds.
  vgpu::graph::GraphStats graph;

  /// Kernel-fusion bookkeeping when FASTPSO_FUSE was enabled (all-default
  /// otherwise). Like GraphStats, reported only — never folded into
  /// modeled_seconds or the eager counters.
  vgpu::graph::FusionStats fusion;

  /// Compiled fused-loop bookkeeping when FASTPSO_CODEGEN was enabled
  /// (all-default otherwise) — how many fused groups resolved to
  /// registered static kernels, and of those how many ran composed
  /// single-pass loops (vgpu/graph/codegen.h, DESIGN.md §11).
  vgpu::graph::codegen::CodegenStats codegen;

  /// Graph-mode modeled seconds: eager modeled time minus the amortized
  /// launch overhead a CUDA-Graph replay would save.
  [[nodiscard]] double graph_modeled_seconds() const {
    return modeled_seconds - graph.modeled_seconds_saved;
  }

  /// Fused-graph modeled seconds: graph_modeled_seconds further reduced by
  /// the kernel-fusion saving (fewer launches + elided intermediate
  /// traffic). The fusion credit is computed net of the graph credit, so
  /// the two compose without double counting.
  [[nodiscard]] double fused_modeled_seconds() const {
    return modeled_seconds - graph.modeled_seconds_saved -
           fusion.modeled_seconds_saved;
  }

  /// |gbest - optimum| against a known optimum value.
  [[nodiscard]] double error_to(double optimum) const {
    return std::abs(gbest_value - optimum);
  }
};

}  // namespace fastpso::core
