// Early-stop bookkeeping shared by the synchronous run body (core/job_run)
// and the asynchronous optimizer loop: stop when gbest reaches the target
// value, or when it has stalled past the configured patience.
#pragma once

#include <limits>

#include "core/params.h"

namespace fastpso::core {

/// Tracks the early-stop condition of PsoParams (target_value /
/// stall_tolerance / stall_patience) across iterations.
class StopTracker {
 public:
  explicit StopTracker(const PsoParams& params)
      : target_(params.target_value),
        tolerance_(params.stall_tolerance),
        patience_(params.stall_patience) {}

  /// Returns true when the run should stop after seeing `gbest`.
  bool should_stop(double gbest) {
    if (gbest <= target_) {
      return true;
    }
    if (patience_ <= 0) {
      return false;
    }
    if (gbest < best_seen_ - tolerance_) {
      best_seen_ = gbest;
      stalled_ = 0;
      return false;
    }
    return ++stalled_ >= patience_;
  }

 private:
  double target_;
  double tolerance_;
  int patience_;
  double best_seen_ = std::numeric_limits<double>::infinity();
  int stalled_ = 0;
};

}  // namespace fastpso::core
