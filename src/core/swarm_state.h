// Device-resident swarm state: the matrices P and V of Section 3.4 plus the
// per-particle best bookkeeping of Section 3.3.
//
// Layout note: matrices are indexed row-major as [particle][dim] host-side.
// The performance model treats them as the dim-major ("structure of arrays")
// layout the real FastPSO uses, under which both the element-wise update and
// the per-particle evaluation/pbest kernels are fully coalesced — hence
// amplification 1.0 in the core kernels' cost specs. The in-simulator
// storage order only affects host cache behaviour, not results.
#pragma once

#include <cstdint>
#include <limits>

#include "vgpu/buffer.h"
#include "vgpu/device.h"

namespace fastpso::core {

/// All per-swarm device allocations. Matrices are n x d, flat row-major.
struct SwarmState {
  SwarmState(vgpu::Device& device, int particles, int dim)
      : n(particles),
        d(dim),
        positions(device, static_cast<std::size_t>(particles) * dim),
        velocities(device, static_cast<std::size_t>(particles) * dim),
        pbest_pos(device, static_cast<std::size_t>(particles) * dim),
        pbest_err(device, particles),
        perror(device, particles),
        improved(device, particles),
        gbest_pos(device, dim) {}

  int n;
  int d;

  vgpu::DeviceArray<float> positions;   ///< P, n x d
  vgpu::DeviceArray<float> velocities;  ///< V, n x d
  vgpu::DeviceArray<float> pbest_pos;   ///< best position seen per particle
  vgpu::DeviceArray<float> pbest_err;   ///< best error per particle
  vgpu::DeviceArray<float> perror;      ///< current-iteration error
  vgpu::DeviceArray<std::uint8_t> improved;  ///< pbest-improved flags
  vgpu::DeviceArray<float> gbest_pos;   ///< best position seen by the swarm
  float gbest_err = std::numeric_limits<float>::infinity();

  [[nodiscard]] std::int64_t elements() const {
    return static_cast<std::int64_t>(n) * d;
  }
};

}  // namespace fastpso::core
