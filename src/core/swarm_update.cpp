#include "core/swarm_update.h"

#include <algorithm>
#include <cmath>

#include "core/kernels_registry.h"
#include "vgpu/block.h"
#include "vgpu/tuned.h"
#include "vgpu/prof/prof.h"
#include "vgpu/san/tracked.h"
#include "vgpu/wmma.h"

namespace fastpso::core {
namespace {

namespace san = vgpu::san;

// The canonical per-element update lives in core/kernels_registry.h so the
// compiled fused-loop path composes the exact code every variant here runs.
using kernels::update_element;

/// DRAM traffic + flops of one full swarm update over `elements` items.
/// Reads: V, P, L, G, pbest_pos (5 matrices) + the gbest row (d floats,
/// broadcast through cache). Writes: V', P'.
vgpu::KernelCostSpec update_cost(std::int64_t elements, int d, int barriers,
                                 bool tensor) {
  vgpu::KernelCostSpec cost;
  cost.flops = 10.0 * static_cast<double>(elements);
  cost.dram_read_bytes =
      (5.0 * static_cast<double>(elements) + d) * sizeof(float);
  cost.dram_write_bytes = 2.0 * static_cast<double>(elements) * sizeof(float);
  cost.barriers = barriers;
  cost.uses_tensor_cores = tensor;
  return cost;
}

void update_global(vgpu::Device& device, const LaunchPolicy& policy,
                   SwarmState& state, const float* l_mat, const float* g_mat,
                   const UpdateCoefficients& coeff) {
  const std::int64_t elements = state.elements();
  const int d = state.d;
  const LaunchDecision decision = policy.for_elements(elements);
  const kernels::SwarmUpdateGlobalKernel::Args update_args{
      state.velocities.data(), state.positions.data(), l_mat,    g_mat,
      state.pbest_pos.data(),  state.gbest_pos.data(), state.d, coeff};
  // Fusion footprint (vgpu/graph/fusion.h): one float per element across
  // the five matrices, plus the gbest row as a broadcast read
  // (elem_bytes = 0: every element may read the whole row).
  const auto note_footprint = [&] {
    if (device.capturing()) {
      const double mat_bytes = static_cast<double>(elements) * sizeof(float);
      device.graph_note_elements(elements);
      device.graph_note_uses(
          {{state.velocities.data(), mat_bytes, sizeof(float),
            /*write=*/false, "velocities"},
           {state.velocities.data(), mat_bytes, sizeof(float),
            /*write=*/true, "velocities"},
           {state.positions.data(), mat_bytes, sizeof(float),
            /*write=*/false, "positions"},
           {state.positions.data(), mat_bytes, sizeof(float), /*write=*/true,
            "positions"},
           {l_mat, mat_bytes, sizeof(float), /*write=*/false, "l_mat"},
           {g_mat, mat_bytes, sizeof(float), /*write=*/false, "g_mat"},
           {state.pbest_pos.data(), mat_bytes, sizeof(float),
            /*write=*/false, "pbest_pos"},
           {state.gbest_pos.data(), static_cast<double>(d) * sizeof(float),
            0, /*write=*/false, "gbest_pos"}});
      device.graph_note_static(
          vgpu::graph::codegen::make_static<kernels::SwarmUpdateGlobalKernel>(
              update_args));
    }
  };
  if (vgpu::use_fast_path()) {
    vgpu::prof::KernelLabel klabel("swarm_update/global");
    device.launch_elements(
        decision.config, update_cost(elements, d, 0, false), elements,
        [update_args](std::int64_t i) {
          kernels::SwarmUpdateGlobalKernel::element(update_args, i);
        });
    note_footprint();
    return;
  }
  const auto velocities =
      san::track(state.velocities.data(), elements, "velocities");
  const auto positions =
      san::track(state.positions.data(), elements, "positions");
  const auto l = san::track(l_mat, elements, "l_mat");
  const auto g = san::track(g_mat, elements, "g_mat");
  const auto pbest_pos =
      san::track(state.pbest_pos.data(), elements, "pbest_pos");
  const auto gbest_pos = san::track(state.gbest_pos.data(),
                                    static_cast<std::size_t>(d), "gbest_pos");
  san::expect_writes_exactly_once(velocities);
  san::expect_writes_exactly_once(positions);

  san::KernelScope scope("swarm_update/global");
  device.launch(decision.config, update_cost(elements, d, 0, false),
                [&](const vgpu::ThreadCtx& t) {
                  for (std::int64_t i = t.global_id(); i < elements;
                       i += t.grid_stride()) {
                    const int col = static_cast<int>(i % d);
                    update_element(velocities[i], positions[i], l[i], g[i],
                                   pbest_pos[i], gbest_pos[col], coeff);
                  }
                });
  note_footprint();
}

void update_shared(vgpu::Device& device, const LaunchPolicy& policy,
                   SwarmState& state, const float* l_mat, const float* g_mat,
                   const UpdateCoefficients& coeff) {
  const int n = state.n;
  const int d = state.d;
  const std::int64_t elements = state.elements();
  // Tile edge is tunable geometry (DESIGN.md §13): the tile only
  // partitions the matrix — each element's arithmetic is identical at any
  // edge, so retuning it never changes results. tile^2 threads per block
  // must stay within the device limit.
  const int max_tile = static_cast<int>(
      std::sqrt(static_cast<double>(device.spec().max_threads_per_block)));
  const int tile = std::clamp(
      vgpu::tuned::lookup(vgpu::tuned::shape_key("swarm_tile", elements) +
                              "/tile",
                          kTileSize),
      2, max_tile);
  const std::int64_t tile_rows = (n + tile - 1) / tile;
  const std::int64_t tile_cols = (d + tile - 1) / tile;
  const std::int64_t tiles = tile_rows * tile_cols;

  // One block per tile (grid-stride over tiles), tile^2 threads each.
  vgpu::LaunchConfig cfg;
  cfg.block = tile * tile;
  cfg.grid = std::min<std::int64_t>(
      tiles, policy.thread_cap() / cfg.block + (policy.thread_cap() % cfg.block != 0));
  cfg.grid = std::max<std::int64_t>(cfg.grid, 1);
  // Two __syncthreads per tile trip; the busiest block runs
  // ceil(tiles / grid) trips.
  const std::int64_t trips = (tiles + cfg.grid - 1) / cfg.grid;

  const auto velocities =
      san::track(state.velocities.data(), elements, "velocities");
  const auto positions =
      san::track(state.positions.data(), elements, "positions");
  const auto l = san::track(l_mat, elements, "l_mat");
  const auto g = san::track(g_mat, elements, "g_mat");
  const auto pbest_pos =
      san::track(state.pbest_pos.data(), elements, "pbest_pos");
  const auto gbest_pos = san::track(state.gbest_pos.data(),
                                    static_cast<std::size_t>(d), "gbest_pos");
  san::expect_writes_exactly_once(velocities);
  san::expect_writes_exactly_once(positions);

  san::KernelScope scope("swarm_update/shared");
  device.launch_blocks(
      cfg, update_cost(elements, d, static_cast<int>(2 * trips), false),
      [&](vgpu::BlockCtx& blk) {
        const int tile_elems = tile * tile;
        auto sh_v = san::track_shared(blk.shared_array<float>(tile_elems),
                                      "sh_v");
        auto sh_p = san::track_shared(blk.shared_array<float>(tile_elems),
                                      "sh_p");
        auto sh_l = san::track_shared(blk.shared_array<float>(tile_elems),
                                      "sh_l");
        auto sh_g = san::track_shared(blk.shared_array<float>(tile_elems),
                                      "sh_g");
        auto sh_pb = san::track_shared(blk.shared_array<float>(tile_elems),
                                       "sh_pb");
        auto sh_gb = san::track_shared(blk.shared_array<float>(tile),
                                       "sh_gb");

        for (std::int64_t t_idx = blk.block_idx(); t_idx < tiles;
             t_idx += blk.grid_dim()) {
          const std::int64_t row0 = (t_idx / tile_cols) * tile;
          const std::int64_t col0 = (t_idx % tile_cols) * tile;
          const int rows = static_cast<int>(
              std::min<std::int64_t>(tile, n - row0));
          const int cols = static_cast<int>(
              std::min<std::int64_t>(tile, d - col0));

          // Phase 1: stage the tile into shared memory.
          blk.for_each_thread([&](const vgpu::ThreadCtx& t) {
            const int r = t.thread_idx / tile;
            const int c = t.thread_idx % tile;
            if (r < rows && c < cols) {
              const std::int64_t src = (row0 + r) * d + (col0 + c);
              const int dst = r * tile + c;
              sh_v[dst] = velocities[src];
              sh_p[dst] = positions[src];
              sh_l[dst] = l[src];
              sh_g[dst] = g[src];
              sh_pb[dst] = pbest_pos[src];
            }
            if (r == 0 && c < cols) {
              sh_gb[c] = gbest_pos[col0 + c];
            }
          });
          blk.sync();

          // Phase 2: element-wise update inside shared memory.
          blk.for_each_thread([&](const vgpu::ThreadCtx& t) {
            const int r = t.thread_idx / tile;
            const int c = t.thread_idx % tile;
            if (r < rows && c < cols) {
              const int idx = r * tile + c;
              update_element(sh_v[idx], sh_p[idx], sh_l[idx], sh_g[idx],
                             sh_pb[idx], sh_gb[c], coeff);
            }
          });
          blk.sync();

          // Phase 3: write the tile back to global memory.
          blk.for_each_thread([&](const vgpu::ThreadCtx& t) {
            const int r = t.thread_idx / tile;
            const int c = t.thread_idx % tile;
            if (r < rows && c < cols) {
              const std::int64_t dst = (row0 + r) * d + (col0 + c);
              const int src = r * tile + c;
              velocities[dst] = sh_v[src];
              positions[dst] = sh_p[src];
            }
          });
        }
      });
}

void update_tensor(vgpu::Device& device, const LaunchPolicy& policy,
                   SwarmState& state, const float* l_mat, const float* g_mat,
                   const UpdateCoefficients& coeff) {
  namespace wm = vgpu::wmma;
  const int n = state.n;
  const int d = state.d;
  const std::int64_t elements = state.elements();
  const std::int64_t tile_rows = (n + wm::kFragDim - 1) / wm::kFragDim;
  const std::int64_t tile_cols = (d + wm::kFragDim - 1) / wm::kFragDim;
  const std::int64_t tiles = tile_rows * tile_cols;

  // One warp per tile: the fragment ops below are warp-level primitives.
  vgpu::LaunchConfig cfg;
  cfg.block = device.spec().warp_size;
  cfg.grid = std::min<std::int64_t>(tiles,
                                    policy.thread_cap() / cfg.block);
  cfg.grid = std::max<std::int64_t>(cfg.grid, 1);

  const auto velocities =
      san::track(state.velocities.data(), elements, "velocities");
  const auto positions =
      san::track(state.positions.data(), elements, "positions");
  const auto l = san::track(l_mat, elements, "l_mat");
  const auto g = san::track(g_mat, elements, "g_mat");
  const auto pbest_pos =
      san::track(state.pbest_pos.data(), elements, "pbest_pos");
  const auto gbest_pos = san::track(state.gbest_pos.data(),
                                    static_cast<std::size_t>(d), "gbest_pos");
  san::expect_writes_exactly_once(velocities);
  san::expect_writes_exactly_once(positions);

  san::KernelScope scope("swarm_update/tensor");
  // No __syncthreads: the *_sync fragment ops are warp-level, not block
  // barriers.
  device.launch_blocks(
      cfg, update_cost(elements, d, 0, true), [&](vgpu::BlockCtx& blk) {
        for (std::int64_t tile = blk.block_idx(); tile < tiles;
             tile += blk.grid_dim()) {
          const std::int64_t row0 = (tile / tile_cols) * wm::kFragDim;
          const std::int64_t col0 = (tile % tile_cols) * wm::kFragDim;
          const int rows = static_cast<int>(
              std::min<std::int64_t>(wm::kFragDim, n - row0));
          const int cols = static_cast<int>(
              std::min<std::int64_t>(wm::kFragDim, d - col0));
          const std::int64_t base = row0 * d + col0;

          wm::Fragment<float> fv;
          wm::Fragment<float> fp;
          wm::Fragment<float> fl;
          wm::Fragment<float> fg;
          wm::Fragment<float> fpb;
          wm::Fragment<float> feg;
          san::load_matrix_sync(fv, velocities, base, d, rows, cols);
          san::load_matrix_sync(fp, positions, base, d, rows, cols);
          san::load_matrix_sync(fl, l, base, d, rows, cols);
          san::load_matrix_sync(fg, g, base, d, rows, cols);
          san::load_matrix_sync(fpb, pbest_pos, base, d, rows, cols);
          // Eg tile: every row is the gbest slice — a broadcast load (ld=0).
          san::load_matrix_sync(feg, gbest_pos, col0, 0, wm::kFragDim, cols);

          // t1 = c1*(pbest - P); acc = L .* t1
          wm::Fragment<float> t1;
          wm::scale_add_sync(t1, coeff.c1, fpb, -coeff.c1, fp);
          wm::Fragment<float> acc;
          wm::fill_fragment(acc, 0.0f);
          // t2 = c2*(Eg - P); acc += G .* t2
          wm::Fragment<float> t2;
          wm::scale_add_sync(t2, coeff.c2, feg, -coeff.c2, fp);
          if (coeff.mixed_precision) {
            // Volta semantics: FP16 multiplicands, FP32 accumulate.
            wm::mma_elementwise_f16_sync(acc, fl, t1, acc);
            wm::mma_elementwise_f16_sync(acc, fg, t2, acc);
          } else {
            wm::mma_elementwise_sync(acc, fl, t1, acc);
            wm::mma_elementwise_sync(acc, fg, t2, acc);
          }
          // V' = omega*V + acc
          wm::Fragment<float> fvn;
          wm::scale_add_sync(fvn, coeff.omega, fv, 1.0f, acc);

          // Epilogue: velocity clamp (Eq. 5) + position integrate + clamp.
          san::count_flops(10.0 * rows * cols);
          for (int r = 0; r < rows; ++r) {
            for (int c = 0; c < cols; ++c) {
              float nv = fvn.at(r, c);
              if (coeff.vmax > 0.0f) {
                nv = std::clamp(nv, -coeff.vmax, coeff.vmax);
              }
              fvn.at(r, c) = nv;
              float np = fp.at(r, c) + nv;
              if (coeff.clamp_position) {
                np = std::clamp(np, coeff.pos_lower, coeff.pos_upper);
              }
              fp.at(r, c) = np;
            }
          }

          san::store_matrix_sync(velocities, base, fvn, d, rows, cols);
          san::store_matrix_sync(positions, base, fp, d, rows, cols);
        }
      });
}

}  // namespace

UpdateCoefficients make_coefficients(const PsoParams& params, double lower,
                                     double upper) {
  UpdateCoefficients coeff{};
  coeff.omega = params.omega;
  coeff.c1 = params.c1;
  coeff.c2 = params.c2;
  coeff.vmax = params.velocity_clamp
                   ? params.vmax_fraction *
                         static_cast<float>(upper - lower)
                   : 0.0f;
  coeff.pos_lower = static_cast<float>(lower);
  coeff.pos_upper = static_cast<float>(upper);
  coeff.clamp_position = params.position_clamp;
  coeff.mixed_precision = params.mixed_precision;
  return coeff;
}

void swarm_update_ring(vgpu::Device& device, const LaunchPolicy& policy,
                       SwarmState& state,
                       const vgpu::DeviceArray<float>& l_mat,
                       const vgpu::DeviceArray<float>& g_mat,
                       const UpdateCoefficients& coeff,
                       const std::int32_t* nbest_idx) {
  const std::int64_t elements = state.elements();
  const int d = state.d;
  const std::int64_t n = state.n;
  const LaunchDecision decision = policy.for_elements(elements);
  const kernels::SwarmUpdateRingKernel::Args ring_args{
      state.velocities.data(), state.positions.data(), l_mat.data(),
      g_mat.data(),            state.pbest_pos.data(), nbest_idx,
      state.d,                 coeff};
  // Footprint: as update_global, except the attractor is a data-dependent
  // gather out of pbest_pos (declared as a second, whole-span read) steered
  // by the neighborhood index array (row-broadcast: elem_bytes = 0).
  const auto note_footprint = [&] {
    if (device.capturing()) {
      const double mat_bytes = static_cast<double>(elements) * sizeof(float);
      device.graph_note_elements(elements);
      device.graph_note_uses(
          {{state.velocities.data(), mat_bytes, sizeof(float),
            /*write=*/false, "velocities"},
           {state.velocities.data(), mat_bytes, sizeof(float),
            /*write=*/true, "velocities"},
           {state.positions.data(), mat_bytes, sizeof(float),
            /*write=*/false, "positions"},
           {state.positions.data(), mat_bytes, sizeof(float), /*write=*/true,
            "positions"},
           {l_mat.data(), mat_bytes, sizeof(float), /*write=*/false,
            "l_mat"},
           {g_mat.data(), mat_bytes, sizeof(float), /*write=*/false,
            "g_mat"},
           {state.pbest_pos.data(), mat_bytes, sizeof(float),
            /*write=*/false, "pbest_pos"},
           {state.pbest_pos.data(), mat_bytes, 0, /*write=*/false,
            "pbest_pos_gather"},
           {nbest_idx, static_cast<double>(n) * sizeof(std::int32_t), 0,
            /*write=*/false, "nbest_idx"}});
      device.graph_note_static(
          vgpu::graph::codegen::make_static<kernels::SwarmUpdateRingKernel>(
              ring_args));
    }
  };
  if (vgpu::use_fast_path()) {
    vgpu::KernelCostSpec cost = update_cost(elements, d, 0, false);
    cost.dram_read_bytes += static_cast<double>(n) * sizeof(std::int32_t) -
                            static_cast<double>(d) * sizeof(float);
    vgpu::prof::KernelLabel klabel("swarm_update/ring");
    device.launch_elements(
        decision.config, cost, elements, [ring_args](std::int64_t i) {
          kernels::SwarmUpdateRingKernel::element(ring_args, i);
        });
    note_footprint();
    return;
  }

  const auto velocities =
      san::track(state.velocities.data(), elements, "velocities");
  const auto positions =
      san::track(state.positions.data(), elements, "positions");
  const auto l = san::track(l_mat, "l_mat");
  const auto g = san::track(g_mat, "g_mat");
  const auto pbest_pos =
      san::track(state.pbest_pos.data(), elements, "pbest_pos");
  const auto nbest = san::track(nbest_idx, static_cast<std::size_t>(n),
                                "nbest_idx");
  san::expect_writes_exactly_once(velocities);
  san::expect_writes_exactly_once(positions);

  // The attractor is a gather out of pbest_pos, which this kernel already
  // streams in full — under the perfect-cache (unique-address) convention
  // the gather adds no pbest traffic, only the neighborhood index array.
  // The gbest broadcast row of the global variant is not read here.
  vgpu::KernelCostSpec cost = update_cost(elements, d, 0, false);
  cost.dram_read_bytes +=
      static_cast<double>(n) * sizeof(std::int32_t) -
      static_cast<double>(d) * sizeof(float);

  san::KernelScope scope("swarm_update/ring");
  device.launch(decision.config, cost, [&](const vgpu::ThreadCtx& t) {
    for (std::int64_t i = t.global_id(); i < elements;
         i += t.grid_stride()) {
      const std::int64_t row = i / d;
      const int col = static_cast<int>(i % d);
      const float attractor =
          pbest_pos[static_cast<std::int64_t>(nbest[row]) * d + col];
      update_element(velocities[i], positions[i], l[i], g[i], pbest_pos[i],
                     attractor, coeff);
    }
  });
  note_footprint();
}

UpdateCoefficients coefficients_for_iter(const UpdateCoefficients& base,
                                         const PsoParams& params, int iter) {
  UpdateCoefficients coeff = base;
  if (coeff.vmax > 0.0f && params.adaptive_velocity_bound &&
      params.max_iter > 1) {
    const float progress =
        static_cast<float>(iter) / static_cast<float>(params.max_iter);
    const float anneal =
        std::max(params.vmax_final_fraction, 1.0f - progress);
    coeff.vmax *= anneal;
  }
  return coeff;
}

void swarm_update(vgpu::Device& device, const LaunchPolicy& policy,
                  SwarmState& state, const vgpu::DeviceArray<float>& l_mat,
                  const vgpu::DeviceArray<float>& g_mat,
                  const UpdateCoefficients& coeff,
                  UpdateTechnique technique) {
  switch (technique) {
    case UpdateTechnique::kGlobalMemory:
      update_global(device, policy, state, l_mat.data(), g_mat.data(), coeff);
      return;
    case UpdateTechnique::kSharedMemory:
      update_shared(device, policy, state, l_mat.data(), g_mat.data(), coeff);
      return;
    case UpdateTechnique::kTensorCore:
      update_tensor(device, policy, state, l_mat.data(), g_mat.data(), coeff);
      return;
  }
  FASTPSO_UNREACHABLE("unknown update technique");
}

}  // namespace fastpso::core
