// Step (iv): the element-wise swarm update (paper Section 3.4/3.5) —
// the bottleneck step FastPSO accelerates.
//
// The whole-swarm update is the matrix expression (Eq. 4)
//
//   V' = w*V + c1 * L .* (El - P) + c2 * G .* (Eg - P)
//   P' = P + V'
//
// computed element-wise with one thread per element (up to the
// resource-aware cap, grid-stride beyond). Three implementations are
// provided, matching the techniques compared in Figure 6:
//
//   kGlobalMemory — plain grid-stride kernel reading/writing global memory
//   kSharedMemory — matrices staged through TILE_SIZE x TILE_SIZE shared-
//                   memory tiles with barrier phases
//   kTensorCore   — 16x16 wmma-style fragments combined with warp-level
//                   element-wise multiply-add
//
// All three produce the same update (verified to float tolerance in the
// test suite) and declare identical DRAM traffic; the performance model
// shows them within a few percent of each other because the kernel is
// memory-bound — the paper's own Figure 6 observation.
#pragma once

#include "core/launch_policy.h"
#include "core/params.h"
#include "core/swarm_state.h"
#include "vgpu/buffer.h"
#include "vgpu/device.h"

namespace fastpso::core {

/// Shared-memory tile edge used by the kSharedMemory variant.
inline constexpr int kTileSize = 16;

/// Scalar update inputs common to all variants.
struct UpdateCoefficients {
  float omega;
  float c1;
  float c2;
  float vmax;        ///< velocity bound (Eq. 5); <= 0 disables clamping
  float pos_lower;   ///< position clamp bounds (used when clamp_position)
  float pos_upper;
  bool clamp_position;
  /// FP16 multiplicands on the tensor-core path (PsoParams::mixed_precision).
  bool mixed_precision = false;
};

/// Builds coefficients from params and the objective's domain.
UpdateCoefficients make_coefficients(const PsoParams& params, double lower,
                                     double upper);

/// Applies the adaptive velocity-bound anneal for iteration `iter` of
/// `max_iter` (identity when the feature is off or clamping is disabled).
UpdateCoefficients coefficients_for_iter(const UpdateCoefficients& base,
                                         const PsoParams& params, int iter);

/// Applies one velocity+position update to the whole swarm using the
/// technique selected in `params`.
void swarm_update(vgpu::Device& device, const LaunchPolicy& policy,
                  SwarmState& state, const vgpu::DeviceArray<float>& l_mat,
                  const vgpu::DeviceArray<float>& g_mat,
                  const UpdateCoefficients& coeff, UpdateTechnique technique);

/// Ring-topology variant: the social attractor of particle i is
/// pbest_pos[nbest_idx[i]] instead of the global best. Element-wise
/// (global-memory) kernel only — the tiled variants assume a row-uniform
/// attractor.
void swarm_update_ring(vgpu::Device& device, const LaunchPolicy& policy,
                       SwarmState& state,
                       const vgpu::DeviceArray<float>& l_mat,
                       const vgpu::DeviceArray<float>& g_mat,
                       const UpdateCoefficients& coeff,
                       const std::int32_t* nbest_idx);

}  // namespace fastpso::core
