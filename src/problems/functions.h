// The built-in benchmark functions (paper Section 3.2 mentions Sphere,
// Griewank and Easom as built-ins; Section 4.1 uses the first three below
// plus ThreadConf). Domains follow the paper; formulas follow Molga &
// Smutnicki, "Test functions for optimization needs" (2005).
#pragma once

#include <cmath>
#include <numbers>

#include "problems/problem.h"

namespace fastpso::problems {

/// f(x) = sum x_i^2, domain (-5.12, 5.12), f* = 0 at x = 0.
class Sphere final : public ProblemBase<Sphere> {
 public:
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] double lower_bound() const override { return -5.12; }
  [[nodiscard]] double upper_bound() const override { return 5.12; }
  [[nodiscard]] double optimum_value(int) const override { return 0.0; }
  [[nodiscard]] EvalCost cost() const override {
    return {.flops_per_dim = 2.0, .transcendentals_per_dim = 0.0,
            .flops_fixed = 0.0,
            .vector_passes = 2.0};
  }

  template <typename T>
  [[nodiscard]] double eval_impl(const T* x, int dim) const {
    double acc = 0.0;
    for (int i = 0; i < dim; ++i) {
      const double xi = static_cast<double>(x[i]);
      acc += xi * xi;
    }
    return acc;
  }

 private:
  std::string name_ = "sphere";
};

/// f(x) = sum x_i^2/4000 - prod cos(x_i/sqrt(i+1)) + 1, domain (-600, 600),
/// f* = 0 at x = 0.
class Griewank final : public ProblemBase<Griewank> {
 public:
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] double lower_bound() const override { return -600.0; }
  [[nodiscard]] double upper_bound() const override { return 600.0; }
  [[nodiscard]] double optimum_value(int) const override { return 0.0; }
  [[nodiscard]] EvalCost cost() const override {
    return {.flops_per_dim = 4.0, .transcendentals_per_dim = 2.0,
            .flops_fixed = 2.0,
            .vector_passes = 6.0};
  }

  template <typename T>
  [[nodiscard]] double eval_impl(const T* x, int dim) const {
    double sum = 0.0;
    double prod = 1.0;
    for (int i = 0; i < dim; ++i) {
      const double xi = static_cast<double>(x[i]);
      sum += xi * xi;
      prod *= std::cos(xi / std::sqrt(static_cast<double>(i + 1)));
    }
    return sum / 4000.0 - prod + 1.0;
  }

 private:
  std::string name_ = "griewank";
};

/// Generalized Easom (paper Section 4.1):
/// f(x) = -(-1)^d (prod cos^2 x_i) exp[-sum (x_i - pi)^2],
/// domain (-2pi, 2pi). For even d the true minimum is -1 at x = pi, but
/// its basin has negligible measure beyond a few dimensions and the
/// landscape is numerically 0 almost everywhere; the paper's Table 2
/// reports error 0.00 for every implementation, i.e. it references the
/// reachable plateau. We follow that convention for d > 2 and use the
/// classic f* = -1 for d <= 2, where the basin is findable.
class Easom final : public ProblemBase<Easom> {
 public:
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] double lower_bound() const override {
    return -2.0 * std::numbers::pi;
  }
  [[nodiscard]] double upper_bound() const override {
    return 2.0 * std::numbers::pi;
  }
  [[nodiscard]] double optimum_value(int dim) const override {
    if (dim <= 2) {
      return dim % 2 == 0 ? -1.0 : 0.0;
    }
    return 0.0;  // paper convention (see class comment)
  }
  [[nodiscard]] EvalCost cost() const override {
    return {.flops_per_dim = 4.0, .transcendentals_per_dim = 1.0,
            .flops_fixed = 10.0,
            .vector_passes = 8.0};  // fixed: the final exp
  }

  template <typename T>
  [[nodiscard]] double eval_impl(const T* x, int dim) const {
    double prod = 1.0;
    double sq = 0.0;
    for (int i = 0; i < dim; ++i) {
      const double xi = static_cast<double>(x[i]);
      const double c = std::cos(xi);
      prod *= c * c;
      const double delta = xi - std::numbers::pi;
      sq += delta * delta;
    }
    const double sign = dim % 2 == 0 ? -1.0 : 1.0;
    return sign * prod * std::exp(-sq);
  }

 private:
  std::string name_ = "easom";
};

/// f(x) = 10 d + sum [x_i^2 - 10 cos(2 pi x_i)], domain (-5.12, 5.12),
/// f* = 0 at x = 0.
class Rastrigin final : public ProblemBase<Rastrigin> {
 public:
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] double lower_bound() const override { return -5.12; }
  [[nodiscard]] double upper_bound() const override { return 5.12; }
  [[nodiscard]] double optimum_value(int) const override { return 0.0; }
  [[nodiscard]] EvalCost cost() const override {
    return {.flops_per_dim = 5.0, .transcendentals_per_dim = 1.0,
            .flops_fixed = 1.0,
            .vector_passes = 5.0};
  }

  template <typename T>
  [[nodiscard]] double eval_impl(const T* x, int dim) const {
    double acc = 10.0 * dim;
    for (int i = 0; i < dim; ++i) {
      const double xi = static_cast<double>(x[i]);
      acc += xi * xi - 10.0 * std::cos(2.0 * std::numbers::pi * xi);
    }
    return acc;
  }

 private:
  std::string name_ = "rastrigin";
};

/// f(x) = sum [100 (x_{i+1} - x_i^2)^2 + (1 - x_i)^2], domain (-2.048,
/// 2.048), f* = 0 at x = 1.
class Rosenbrock final : public ProblemBase<Rosenbrock> {
 public:
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] double lower_bound() const override { return -2.048; }
  [[nodiscard]] double upper_bound() const override { return 2.048; }
  [[nodiscard]] double optimum_value(int) const override { return 0.0; }
  [[nodiscard]] EvalCost cost() const override {
    return {.flops_per_dim = 8.0, .transcendentals_per_dim = 0.0,
            .flops_fixed = 0.0,
            .vector_passes = 6.0};
  }

  template <typename T>
  [[nodiscard]] double eval_impl(const T* x, int dim) const {
    double acc = 0.0;
    for (int i = 0; i + 1 < dim; ++i) {
      const double xi = static_cast<double>(x[i]);
      const double xn = static_cast<double>(x[i + 1]);
      const double a = xn - xi * xi;
      const double b = 1.0 - xi;
      acc += 100.0 * a * a + b * b;
    }
    return acc;
  }

 private:
  std::string name_ = "rosenbrock";
};

/// f(x) = -20 exp(-0.2 sqrt(mean x_i^2)) - exp(mean cos(2 pi x_i)) + 20 + e,
/// domain (-32.768, 32.768), f* = 0 at x = 0.
class Ackley final : public ProblemBase<Ackley> {
 public:
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] double lower_bound() const override { return -32.768; }
  [[nodiscard]] double upper_bound() const override { return 32.768; }
  [[nodiscard]] double optimum_value(int) const override { return 0.0; }
  [[nodiscard]] EvalCost cost() const override {
    return {.flops_per_dim = 4.0, .transcendentals_per_dim = 1.0,
            .flops_fixed = 20.0,
            .vector_passes = 7.0};
  }

  template <typename T>
  [[nodiscard]] double eval_impl(const T* x, int dim) const {
    double sum_sq = 0.0;
    double sum_cos = 0.0;
    for (int i = 0; i < dim; ++i) {
      const double xi = static_cast<double>(x[i]);
      sum_sq += xi * xi;
      sum_cos += std::cos(2.0 * std::numbers::pi * xi);
    }
    const double inv_d = 1.0 / dim;
    return -20.0 * std::exp(-0.2 * std::sqrt(sum_sq * inv_d)) -
           std::exp(sum_cos * inv_d) + 20.0 + std::numbers::e;
  }

 private:
  std::string name_ = "ackley";
};

/// Schwefel 2.26: f(x) = 418.9829 d - sum x_i sin(sqrt(|x_i|)),
/// domain (-500, 500), f* ~= 0 at x_i = 420.9687.
class Schwefel final : public ProblemBase<Schwefel> {
 public:
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] double lower_bound() const override { return -500.0; }
  [[nodiscard]] double upper_bound() const override { return 500.0; }
  [[nodiscard]] double optimum_value(int) const override { return 0.0; }
  [[nodiscard]] EvalCost cost() const override {
    return {.flops_per_dim = 4.0, .transcendentals_per_dim = 2.0,
            .flops_fixed = 2.0,
            .vector_passes = 5.0};
  }

  template <typename T>
  [[nodiscard]] double eval_impl(const T* x, int dim) const {
    double acc = 418.9828872724338 * dim;
    for (int i = 0; i < dim; ++i) {
      const double xi = static_cast<double>(x[i]);
      acc -= xi * std::sin(std::sqrt(std::abs(xi)));
    }
    return acc;
  }

 private:
  std::string name_ = "schwefel";
};

/// f(x) = sum x_i^2 + (sum 0.5 i x_i)^2 + (sum 0.5 i x_i)^4,
/// domain (-5, 10), f* = 0 at x = 0.
class Zakharov final : public ProblemBase<Zakharov> {
 public:
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] double lower_bound() const override { return -5.0; }
  [[nodiscard]] double upper_bound() const override { return 10.0; }
  [[nodiscard]] double optimum_value(int) const override { return 0.0; }
  [[nodiscard]] EvalCost cost() const override {
    return {.flops_per_dim = 5.0, .transcendentals_per_dim = 0.0,
            .flops_fixed = 4.0,
            .vector_passes = 5.0};
  }

  template <typename T>
  [[nodiscard]] double eval_impl(const T* x, int dim) const {
    double sum_sq = 0.0;
    double sum_lin = 0.0;
    for (int i = 0; i < dim; ++i) {
      const double xi = static_cast<double>(x[i]);
      sum_sq += xi * xi;
      sum_lin += 0.5 * (i + 1) * xi;
    }
    const double s2 = sum_lin * sum_lin;
    return sum_sq + s2 + s2 * s2;
  }

 private:
  std::string name_ = "zakharov";
};

/// Levy function, domain (-10, 10), f* = 0 at x = 1.
class Levy final : public ProblemBase<Levy> {
 public:
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] double lower_bound() const override { return -10.0; }
  [[nodiscard]] double upper_bound() const override { return 10.0; }
  [[nodiscard]] double optimum_value(int) const override { return 0.0; }
  [[nodiscard]] EvalCost cost() const override {
    return {.flops_per_dim = 9.0, .transcendentals_per_dim = 1.0,
            .flops_fixed = 8.0,
            .vector_passes = 8.0};
  }

  template <typename T>
  [[nodiscard]] double eval_impl(const T* x, int dim) const {
    auto w = [&](int i) {
      return 1.0 + (static_cast<double>(x[i]) - 1.0) / 4.0;
    };
    const double s0 = std::sin(std::numbers::pi * w(0));
    double acc = s0 * s0;
    for (int i = 0; i + 1 < dim; ++i) {
      const double wi = w(i);
      const double s = std::sin(std::numbers::pi * wi + 1.0);
      acc += (wi - 1.0) * (wi - 1.0) * (1.0 + 10.0 * s * s);
    }
    const double wd = w(dim - 1);
    const double sd = std::sin(2.0 * std::numbers::pi * wd);
    acc += (wd - 1.0) * (wd - 1.0) * (1.0 + sd * sd);
    return acc;
  }

 private:
  std::string name_ = "levy";
};

/// Styblinski–Tang: f(x) = 0.5 sum (x_i^4 - 16 x_i^2 + 5 x_i),
/// domain (-5, 5), f* = -39.16599 d at x_i = -2.903534.
class StyblinskiTang final : public ProblemBase<StyblinskiTang> {
 public:
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] double lower_bound() const override { return -5.0; }
  [[nodiscard]] double upper_bound() const override { return 5.0; }
  [[nodiscard]] double optimum_value(int dim) const override {
    return -39.16616570377142 * dim;
  }
  [[nodiscard]] EvalCost cost() const override {
    return {.flops_per_dim = 7.0, .transcendentals_per_dim = 0.0,
            .flops_fixed = 1.0,
            .vector_passes = 5.0};
  }

  template <typename T>
  [[nodiscard]] double eval_impl(const T* x, int dim) const {
    double acc = 0.0;
    for (int i = 0; i < dim; ++i) {
      const double xi = static_cast<double>(x[i]);
      const double sq = xi * xi;
      acc += sq * sq - 16.0 * sq + 5.0 * xi;
    }
    return 0.5 * acc;
  }

 private:
  std::string name_ = "styblinski_tang";
};

}  // namespace fastpso::problems
