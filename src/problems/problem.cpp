#include "problems/problem.h"

#include "common/check.h"
#include "problems/functions.h"

namespace fastpso::problems {

std::unique_ptr<Problem> make_problem(const std::string& name) {
  if (name == "sphere") return std::make_unique<Sphere>();
  if (name == "griewank") return std::make_unique<Griewank>();
  if (name == "easom") return std::make_unique<Easom>();
  if (name == "rastrigin") return std::make_unique<Rastrigin>();
  if (name == "rosenbrock") return std::make_unique<Rosenbrock>();
  if (name == "ackley") return std::make_unique<Ackley>();
  if (name == "schwefel") return std::make_unique<Schwefel>();
  if (name == "zakharov") return std::make_unique<Zakharov>();
  if (name == "levy") return std::make_unique<Levy>();
  if (name == "styblinski_tang") return std::make_unique<StyblinskiTang>();
  throw CheckError("unknown problem: '" + name + "'");
}

std::vector<std::string> builtin_problem_names() {
  return {"sphere",   "griewank",  "easom",    "rastrigin", "rosenbrock",
          "ackley",   "schwefel",  "zakharov", "levy",      "styblinski_tang"};
}

std::vector<std::string> paper_problem_names() {
  return {"sphere", "griewank", "easom", "threadconf"};
}

}  // namespace fastpso::problems
