// Optimization problem interface and the paper's built-in test functions.
//
// A Problem supplies: the search domain, the known global optimum (for the
// Table 2 error metric), scalar evaluation in both float32 (GPU-side
// precision) and float64 (the Python-library baselines), and an EvalCost
// declaration so the performance model can account the evaluation kernels of
// Step (ii).
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace fastpso::problems {

/// Per-evaluation operation counts for the performance model.
struct EvalCost {
  double flops_per_dim = 2.0;          ///< ordinary flops per dimension
  double transcendentals_per_dim = 0;  ///< sin/cos/exp/log/sqrt per dimension
  double flops_fixed = 1.0;            ///< per-evaluation fixed work
  /// Whole-array passes a vectorized (NumPy-style) implementation of this
  /// objective makes over the (n, d) position matrix; drives the
  /// Python-library baselines' cost model.
  double vector_passes = 3.0;

  [[nodiscard]] double flops(int dim) const {
    return flops_fixed + flops_per_dim * dim;
  }
  [[nodiscard]] double transcendentals(int dim) const {
    return transcendentals_per_dim * dim;
  }
};

/// Abstract optimization problem (minimization).
class Problem {
 public:
  virtual ~Problem() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;

  /// Search domain: positions are initialized in [lower, upper]^d.
  [[nodiscard]] virtual double lower_bound() const = 0;
  [[nodiscard]] virtual double upper_bound() const = 0;

  /// Known global minimum value for dimension `dim`; only meaningful when
  /// has_known_optimum() is true.
  [[nodiscard]] virtual double optimum_value(int dim) const = 0;
  [[nodiscard]] virtual bool has_known_optimum() const { return true; }

  /// Objective value at `x` (float32 state, accumulate in double).
  [[nodiscard]] virtual double eval_f32(const float* x, int dim) const = 0;
  /// Objective value at `x` (float64 state).
  [[nodiscard]] virtual double eval_f64(const double* x, int dim) const = 0;

  /// Evaluates `n` particles stored row-major in `X` (n x d) into `out`.
  /// Semantically `out[i] = (float)eval_f32(X + i*d, d)` — the batched form
  /// exists so implementations can devirtualize the inner loop (one virtual
  /// dispatch per batch instead of one per particle).
  virtual void eval_batch(const float* X, int n, int d, float* out) const {
    for (int i = 0; i < n; ++i) {
      out[i] = static_cast<float>(eval_f32(X + static_cast<std::size_t>(i) * d,
                                           d));
    }
  }

  /// Operation counts for one evaluation.
  [[nodiscard]] virtual EvalCost cost() const = 0;

  // Span conveniences.
  [[nodiscard]] double evaluate(std::span<const float> x) const {
    return eval_f32(x.data(), static_cast<int>(x.size()));
  }
  [[nodiscard]] double evaluate(std::span<const double> x) const {
    return eval_f64(x.data(), static_cast<int>(x.size()));
  }
};

/// CRTP helper so each concrete problem writes its formula once as
/// `template <typename T> double eval_impl(const T* x, int dim) const`.
template <typename Derived>
class ProblemBase : public Problem {
 public:
  [[nodiscard]] double eval_f32(const float* x, int dim) const final {
    return static_cast<const Derived*>(this)->template eval_impl<float>(x,
                                                                        dim);
  }
  [[nodiscard]] double eval_f64(const double* x, int dim) const final {
    return static_cast<const Derived*>(this)->template eval_impl<double>(x,
                                                                         dim);
  }
  /// Devirtualized batch loop: the concrete eval_impl<float> is known at
  /// compile time here, so the whole batch costs one virtual call.
  void eval_batch(const float* X, int n, int d, float* out) const final {
    const auto* self = static_cast<const Derived*>(this);
    for (int i = 0; i < n; ++i) {
      out[i] = static_cast<float>(self->template eval_impl<float>(
          X + static_cast<std::size_t>(i) * d, d));
    }
  }
};

/// Factory: creates a built-in problem by name ("sphere", "griewank",
/// "easom", "rastrigin", "rosenbrock", "ackley", "schwefel", "zakharov",
/// "levy", "styblinski_tang"). Throws CheckError on unknown names.
std::unique_ptr<Problem> make_problem(const std::string& name);

/// Names accepted by make_problem, in presentation order.
std::vector<std::string> builtin_problem_names();

/// The paper's four evaluation problems (Section 4.1); "threadconf" is
/// created by the tgbm module, the other three by make_problem.
std::vector<std::string> paper_problem_names();

}  // namespace fastpso::problems
