#include "problems/transforms.h"

#include <cmath>

#include "common/check.h"
#include "rng/xoshiro.h"

namespace fastpso::problems {

// ---- ShiftedProblem -------------------------------------------------------

ShiftedProblem::ShiftedProblem(std::unique_ptr<Problem> inner,
                               std::vector<double> shift)
    : inner_(std::move(inner)), shift_(std::move(shift)) {
  FASTPSO_CHECK_MSG(inner_ != nullptr, "shifted problem needs an inner one");
  FASTPSO_CHECK_MSG(!shift_.empty(), "empty shift vector");
  name_ = "shifted_" + inner_->name();
}

std::unique_ptr<ShiftedProblem> ShiftedProblem::random(
    std::unique_ptr<Problem> inner, double fraction, std::uint64_t seed,
    int dim_hint) {
  FASTPSO_CHECK(fraction >= 0.0 && fraction <= 1.0);
  const double half =
      0.5 * (inner->upper_bound() - inner->lower_bound()) * fraction;
  rng::Xoshiro256 rng(seed);
  std::vector<double> shift(dim_hint);
  for (double& s : shift) {
    s = rng.next_uniform(-half, half);
  }
  return std::make_unique<ShiftedProblem>(std::move(inner),
                                          std::move(shift));
}

double ShiftedProblem::lower_bound() const { return inner_->lower_bound(); }
double ShiftedProblem::upper_bound() const { return inner_->upper_bound(); }
double ShiftedProblem::optimum_value(int dim) const {
  return inner_->optimum_value(dim);
}
bool ShiftedProblem::has_known_optimum() const {
  return inner_->has_known_optimum();
}

double ShiftedProblem::eval_f32(const float* x, int dim) const {
  std::vector<float> shifted(dim);
  for (int i = 0; i < dim; ++i) {
    shifted[i] = x[i] - static_cast<float>(shift_at(i));
  }
  return inner_->eval_f32(shifted.data(), dim);
}

double ShiftedProblem::eval_f64(const double* x, int dim) const {
  std::vector<double> shifted(dim);
  for (int i = 0; i < dim; ++i) {
    shifted[i] = x[i] - shift_at(i);
  }
  return inner_->eval_f64(shifted.data(), dim);
}

EvalCost ShiftedProblem::cost() const {
  EvalCost cost = inner_->cost();
  cost.flops_per_dim += 1.0;  // the subtraction
  return cost;
}

// ---- RotatedProblem ------------------------------------------------------------

namespace {

/// Orthonormal matrix via Gram–Schmidt on a Gaussian-ish random matrix.
HostMatrix<double> random_rotation(int dim, std::uint64_t seed) {
  rng::Xoshiro256 rng(seed);
  HostMatrix<double> m(dim, dim);
  for (std::size_t i = 0; i < m.size(); ++i) {
    // Sum of uniforms approximates a Gaussian well enough for QR.
    m[i] = rng.next_unit() + rng.next_unit() + rng.next_unit() +
           rng.next_unit() - 2.0;
  }
  // Modified Gram–Schmidt, rows as vectors.
  for (int r = 0; r < dim; ++r) {
    for (int prev = 0; prev < r; ++prev) {
      double dot = 0;
      for (int c = 0; c < dim; ++c) {
        dot += m(r, c) * m(prev, c);
      }
      for (int c = 0; c < dim; ++c) {
        m(r, c) -= dot * m(prev, c);
      }
    }
    double norm = 0;
    for (int c = 0; c < dim; ++c) {
      norm += m(r, c) * m(r, c);
    }
    norm = std::sqrt(norm);
    FASTPSO_CHECK_MSG(norm > 1e-9, "degenerate rotation draw");
    for (int c = 0; c < dim; ++c) {
      m(r, c) /= norm;
    }
  }
  return m;
}

}  // namespace

RotatedProblem::RotatedProblem(std::unique_ptr<Problem> inner, int dim,
                               std::uint64_t seed)
    : inner_(std::move(inner)),
      dim_(dim),
      rotation_(random_rotation(dim, seed)) {
  FASTPSO_CHECK_MSG(inner_ != nullptr, "rotated problem needs an inner one");
  FASTPSO_CHECK_MSG(dim >= 1, "rotation needs a positive dimension");
  name_ = "rotated_" + inner_->name();
}

double RotatedProblem::lower_bound() const { return inner_->lower_bound(); }
double RotatedProblem::upper_bound() const { return inner_->upper_bound(); }
double RotatedProblem::optimum_value(int dim) const {
  return inner_->optimum_value(dim);
}
bool RotatedProblem::has_known_optimum() const {
  // The rotated optimum value is that of the inner problem only when the
  // inner optimum is at the origin (rotation fixes the origin). We report
  // it for the common origin-centered functions; callers placing non-origin
  // optima should treat it as unknown.
  return inner_->has_known_optimum();
}

template <typename T>
double RotatedProblem::eval_rotated(const T* x, int dim) const {
  FASTPSO_CHECK_MSG(dim == dim_,
                    "rotated problem evaluated at a different dimension");
  std::vector<double> y(dim, 0.0);
  for (int r = 0; r < dim; ++r) {
    double acc = 0;
    for (int c = 0; c < dim; ++c) {
      acc += rotation_(r, c) * static_cast<double>(x[c]);
    }
    y[r] = acc;
  }
  return inner_->eval_f64(y.data(), dim);
}

double RotatedProblem::eval_f32(const float* x, int dim) const {
  return eval_rotated(x, dim);
}

double RotatedProblem::eval_f64(const double* x, int dim) const {
  return eval_rotated(x, dim);
}

EvalCost RotatedProblem::cost() const {
  EvalCost cost = inner_->cost();
  // The rotation is a dim x dim matvec: dim extra flops per dimension.
  cost.flops_per_dim += static_cast<double>(dim_);
  cost.vector_passes += 1.0;
  return cost;
}

}  // namespace fastpso::problems
