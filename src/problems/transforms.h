// Problem transforms: shifted and rotated variants of the built-in
// functions, in the style of the CEC benchmark suites. PSO exploits
// separability and origin-centered optima; shifting moves the optimum off
// the origin and rotation couples the dimensions, making the benchmark
// honest. (Extension beyond the paper, which evaluates the plain
// functions.)
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/matrix.h"
#include "problems/problem.h"

namespace fastpso::problems {

/// g(x) = f(x - shift): moves the inner problem's optimum to `shift`
/// (which must lie inside the inner domain). The search domain is kept, so
/// the optimum value is unchanged.
class ShiftedProblem final : public Problem {
 public:
  /// Takes ownership of `inner`. `shift` is replicated/truncated to the
  /// evaluated dimension; components must keep x-shift inside the domain.
  ShiftedProblem(std::unique_ptr<Problem> inner, std::vector<double> shift);

  /// Convenience: a deterministic pseudo-random shift of magnitude
  /// `fraction` of the half-domain, seeded by `seed`.
  static std::unique_ptr<ShiftedProblem> random(
      std::unique_ptr<Problem> inner, double fraction, std::uint64_t seed,
      int dim_hint = 64);

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] double lower_bound() const override;
  [[nodiscard]] double upper_bound() const override;
  [[nodiscard]] double optimum_value(int dim) const override;
  [[nodiscard]] bool has_known_optimum() const override;
  [[nodiscard]] double eval_f32(const float* x, int dim) const override;
  [[nodiscard]] double eval_f64(const double* x, int dim) const override;
  [[nodiscard]] EvalCost cost() const override;

  [[nodiscard]] double shift_at(int i) const {
    return shift_[i % shift_.size()];
  }

 private:
  std::unique_ptr<Problem> inner_;
  std::vector<double> shift_;
  std::string name_;
};

/// g(x) = f(R x) with R orthonormal: couples the coordinates so
/// axis-aligned moves no longer decompose. R is a deterministic random
/// rotation (QR of a Gaussian matrix) of size `dim x dim`, fixed at
/// construction; evaluation requires that exact dimension.
class RotatedProblem final : public Problem {
 public:
  /// Takes ownership of `inner`; builds a `dim x dim` rotation from `seed`.
  RotatedProblem(std::unique_ptr<Problem> inner, int dim,
                 std::uint64_t seed);

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] double lower_bound() const override;
  [[nodiscard]] double upper_bound() const override;
  [[nodiscard]] double optimum_value(int dim) const override;
  [[nodiscard]] bool has_known_optimum() const override;
  [[nodiscard]] double eval_f32(const float* x, int dim) const override;
  [[nodiscard]] double eval_f64(const double* x, int dim) const override;
  [[nodiscard]] EvalCost cost() const override;

  [[nodiscard]] int dim() const { return dim_; }
  /// The rotation matrix (row-major dim x dim), for tests.
  [[nodiscard]] const HostMatrix<double>& rotation() const {
    return rotation_;
  }

 private:
  std::unique_ptr<Problem> inner_;
  int dim_;
  HostMatrix<double> rotation_;
  std::string name_;

  template <typename T>
  double eval_rotated(const T* x, int dim) const;
};

}  // namespace fastpso::problems
