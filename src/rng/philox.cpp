#include "rng/philox.h"

#include <cmath>
#include <numbers>

namespace fastpso::rng {

PhiloxStream::PhiloxStream(std::uint64_t seed, std::uint64_t stream)
    : seed_(seed), stream_(stream) {
  key_ = {static_cast<std::uint32_t>(seed),
          static_cast<std::uint32_t>(seed >> 32)};
}

float PhiloxStream::normal_at(std::uint64_t index) const {
  // Box–Muller; u1 is kept away from 0 so the log is finite.
  const float u1 = uniform_at(2 * index) + 1.0e-12f;
  const float u2 = uniform_at(2 * index + 1);
  const float radius = std::sqrt(-2.0f * std::log(u1));
  const float theta = 2.0f * std::numbers::pi_v<float> * u2;
  return radius * std::cos(theta);
}

}  // namespace fastpso::rng
