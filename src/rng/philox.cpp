#include "rng/philox.h"

#include <cmath>
#include <numbers>

namespace fastpso::rng {
namespace {

constexpr std::uint32_t kPhiloxM0 = 0xD2511F53u;
constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57u;
constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1

/// 32x32 -> 64 multiply split into (hi, lo).
inline void mulhilo(std::uint32_t a, std::uint32_t b, std::uint32_t& hi,
                    std::uint32_t& lo) {
  const std::uint64_t product =
      static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b);
  hi = static_cast<std::uint32_t>(product >> 32);
  lo = static_cast<std::uint32_t>(product);
}

inline PhiloxBlock philox_round(const PhiloxBlock& ctr, const PhiloxKey& key) {
  std::uint32_t hi0;
  std::uint32_t lo0;
  std::uint32_t hi1;
  std::uint32_t lo1;
  mulhilo(kPhiloxM0, ctr[0], hi0, lo0);
  mulhilo(kPhiloxM1, ctr[2], hi1, lo1);
  return {hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
}

}  // namespace

PhiloxBlock philox4x32(PhiloxBlock counter, PhiloxKey key) {
  for (int round = 0; round < 10; ++round) {
    counter = philox_round(counter, key);
    key[0] += kWeyl0;
    key[1] += kWeyl1;
  }
  return counter;
}

PhiloxStream::PhiloxStream(std::uint64_t seed, std::uint64_t stream)
    : seed_(seed), stream_(stream) {
  key_ = {static_cast<std::uint32_t>(seed),
          static_cast<std::uint32_t>(seed >> 32)};
}

PhiloxBlock PhiloxStream::block_at(std::uint64_t block_index) const {
  const PhiloxBlock counter = {
      static_cast<std::uint32_t>(block_index),
      static_cast<std::uint32_t>(block_index >> 32),
      static_cast<std::uint32_t>(stream_),
      static_cast<std::uint32_t>(stream_ >> 32),
  };
  return philox4x32(counter, key_);
}

std::uint32_t PhiloxStream::uint_at(std::uint64_t index) const {
  const PhiloxBlock block = block_at(index / 4);
  return block[index % 4];
}

float PhiloxStream::uniform_at(std::uint64_t index) const {
  return uint32_to_unit_float(uint_at(index));
}

double PhiloxStream::uniform_double_at(std::uint64_t index) const {
  return uint32x2_to_unit_double(uint_at(2 * index), uint_at(2 * index + 1));
}

float PhiloxStream::uniform_at(std::uint64_t index, float lo, float hi) const {
  return lo + (hi - lo) * uniform_at(index);
}

std::array<float, 4> PhiloxStream::uniform4_at(
    std::uint64_t block_index) const {
  const PhiloxBlock block = block_at(block_index);
  return {uint32_to_unit_float(block[0]), uint32_to_unit_float(block[1]),
          uint32_to_unit_float(block[2]), uint32_to_unit_float(block[3])};
}

std::array<float, 2> PhiloxStream::uniform_pair_at(
    std::uint64_t pair_index) const {
  const PhiloxBlock block = block_at(pair_index / 2);
  const int lane = static_cast<int>(pair_index % 2) * 2;
  return {uint32_to_unit_float(block[lane]),
          uint32_to_unit_float(block[lane + 1])};
}

float PhiloxStream::normal_at(std::uint64_t index) const {
  // Box–Muller; u1 is kept away from 0 so the log is finite.
  const float u1 = uniform_at(2 * index) + 1.0e-12f;
  const float u2 = uniform_at(2 * index + 1);
  const float radius = std::sqrt(-2.0f * std::log(u1));
  const float theta = 2.0f * std::numbers::pi_v<float> * u2;
  return radius * std::cos(theta);
}

}  // namespace fastpso::rng
