// Philox4x32-10 counter-based random number generator (Salmon et al.,
// "Parallel Random Numbers: As Easy as 1, 2, 3", SC'11), implemented from
// scratch.
//
// This is the substrate for the paper's Step (i) — "parallel techniques to
// initialize swarm particles with fast random number generation" — and for
// regenerating the per-iteration random-weight matrices L and G. A
// counter-based generator gives every (iteration, element) pair its own
// independent, reproducible stream with no shared mutable state, which is
// exactly what a massively parallel initializer needs: thread t can compute
// random value #i directly from (key, counter=i) without any sequencing.
#pragma once

#include <array>
#include <cstdint>

namespace fastpso::rng {

/// One Philox4x32 counter block: four 32-bit lanes.
using PhiloxBlock = std::array<std::uint32_t, 4>;
/// Philox4x32 key: two 32-bit lanes.
using PhiloxKey = std::array<std::uint32_t, 2>;

namespace detail {

inline constexpr std::uint32_t kPhiloxM0 = 0xD2511F53u;
inline constexpr std::uint32_t kPhiloxM1 = 0xCD9E8D57u;
inline constexpr std::uint32_t kWeyl0 = 0x9E3779B9u;  // golden ratio
inline constexpr std::uint32_t kWeyl1 = 0xBB67AE85u;  // sqrt(3) - 1

/// 32x32 -> 64 multiply split into (hi, lo).
inline void mulhilo(std::uint32_t a, std::uint32_t b, std::uint32_t& hi,
                    std::uint32_t& lo) {
  const std::uint64_t product =
      static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b);
  hi = static_cast<std::uint32_t>(product >> 32);
  lo = static_cast<std::uint32_t>(product);
}

inline PhiloxBlock philox_round(const PhiloxBlock& ctr, const PhiloxKey& key) {
  std::uint32_t hi0;
  std::uint32_t lo0;
  std::uint32_t hi1;
  std::uint32_t lo1;
  mulhilo(kPhiloxM0, ctr[0], hi0, lo0);
  mulhilo(kPhiloxM1, ctr[2], hi1, lo1);
  return {hi1 ^ ctr[1] ^ key[0], lo1, hi0 ^ ctr[3] ^ key[1], lo0};
}

}  // namespace detail

/// Computes one Philox4x32-10 block: 10 rounds of the Philox S-P network.
/// Pure function: identical (counter, key) always produces identical output.
/// Inline (pure integer math) so per-element draws in the update kernels
/// fuse into the surrounding loop.
inline PhiloxBlock philox4x32(PhiloxBlock counter, PhiloxKey key) {
  for (int round = 0; round < 10; ++round) {
    counter = detail::philox_round(counter, key);
    key[0] += detail::kWeyl0;
    key[1] += detail::kWeyl1;
  }
  return counter;
}

/// Convenience stream view over Philox: produces the i-th random uint32 /
/// float of a keyed sequence with O(1) random access.
///
/// Layout: the 64-bit index is split into (block = index / 4, lane =
/// index % 4); `block` is placed in counter lanes 0..1 and the stream id in
/// lanes 2..3, so distinct streams never collide.
class PhiloxStream {
 public:
  /// `seed` selects the key; `stream` separates independent sequences
  /// (e.g. one per matrix per iteration).
  explicit PhiloxStream(std::uint64_t seed, std::uint64_t stream = 0);

  /// The i-th uint32 of this stream.
  [[nodiscard]] std::uint32_t uint_at(std::uint64_t index) const;

  /// The i-th float, uniform in [0, 1). Uses the top 24 bits so every
  /// representable value is exact in float.
  [[nodiscard]] float uniform_at(std::uint64_t index) const;

  /// The i-th double, uniform in [0, 1) (53 bits from two uint32 draws —
  /// consumes indices 2*i and 2*i+1 of the underlying uint stream).
  [[nodiscard]] double uniform_double_at(std::uint64_t index) const;

  /// Uniform in [lo, hi).
  [[nodiscard]] float uniform_at(std::uint64_t index, float lo,
                                 float hi) const;

  /// Standard normal via Box–Muller; consumes uint indices 2*i, 2*i+1.
  [[nodiscard]] float normal_at(std::uint64_t index) const;

  /// All four uniforms of one Philox block: element `block_index*4 + lane`
  /// equals uniform_at(block_index*4 + lane). One Philox evaluation instead
  /// of four — the fast path for bulk fills.
  [[nodiscard]] std::array<float, 4> uniform4_at(
      std::uint64_t block_index) const;

  /// The pair (uniform_at(2*pair_index), uniform_at(2*pair_index+1)) from a
  /// single Philox evaluation — the fast path for per-element (r1, r2)
  /// draws in the update kernels.
  [[nodiscard]] std::array<float, 2> uniform_pair_at(
      std::uint64_t pair_index) const;

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] std::uint64_t stream() const { return stream_; }

 private:
  [[nodiscard]] PhiloxBlock block_at(std::uint64_t block_index) const;

  std::uint64_t seed_;
  std::uint64_t stream_;
  PhiloxKey key_;
};

/// Converts a uint32 to a float uniform in [0,1) using the top 24 bits.
[[nodiscard]] inline float uint32_to_unit_float(std::uint32_t x) {
  return static_cast<float>(x >> 8) * (1.0f / 16777216.0f);
}

/// Converts two uint32s to a double uniform in [0,1) using 53 bits.
[[nodiscard]] inline double uint32x2_to_unit_double(std::uint32_t hi,
                                                    std::uint32_t lo) {
  const std::uint64_t bits =
      (static_cast<std::uint64_t>(hi) << 21) ^ (lo >> 11);
  return static_cast<double>(bits & ((1ULL << 53) - 1)) *
         (1.0 / 9007199254740992.0);
}

// ---- inline definitions (hot paths: one call per element in the update
// and initialization kernels) ------------------------------------------------

inline PhiloxBlock PhiloxStream::block_at(std::uint64_t block_index) const {
  const PhiloxBlock counter = {
      static_cast<std::uint32_t>(block_index),
      static_cast<std::uint32_t>(block_index >> 32),
      static_cast<std::uint32_t>(stream_),
      static_cast<std::uint32_t>(stream_ >> 32),
  };
  return philox4x32(counter, key_);
}

inline std::uint32_t PhiloxStream::uint_at(std::uint64_t index) const {
  const PhiloxBlock block = block_at(index / 4);
  return block[index % 4];
}

inline float PhiloxStream::uniform_at(std::uint64_t index) const {
  return uint32_to_unit_float(uint_at(index));
}

inline double PhiloxStream::uniform_double_at(std::uint64_t index) const {
  return uint32x2_to_unit_double(uint_at(2 * index), uint_at(2 * index + 1));
}

inline float PhiloxStream::uniform_at(std::uint64_t index, float lo,
                                      float hi) const {
  return lo + (hi - lo) * uniform_at(index);
}

inline std::array<float, 4> PhiloxStream::uniform4_at(
    std::uint64_t block_index) const {
  const PhiloxBlock block = block_at(block_index);
  return {uint32_to_unit_float(block[0]), uint32_to_unit_float(block[1]),
          uint32_to_unit_float(block[2]), uint32_to_unit_float(block[3])};
}

inline std::array<float, 2> PhiloxStream::uniform_pair_at(
    std::uint64_t pair_index) const {
  const PhiloxBlock block = block_at(pair_index / 2);
  const int lane = static_cast<int>(pair_index % 2) * 2;
  return {uint32_to_unit_float(block[lane]),
          uint32_to_unit_float(block[lane + 1])};
}

}  // namespace fastpso::rng
