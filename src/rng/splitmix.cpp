#include "rng/splitmix.h"

namespace fastpso::rng {
namespace {

inline std::uint64_t mix64(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

}  // namespace

std::uint64_t SplitMix64::next() {
  state_ += 0x9E3779B97F4A7C15ULL;
  return mix64(state_);
}

double SplitMix64::next_unit() {
  return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
}

std::uint64_t SplitMix64::mix(std::uint64_t seed, std::uint64_t n) {
  return mix64(seed + (n + 1) * 0x9E3779B97F4A7C15ULL);
}

}  // namespace fastpso::rng
