// SplitMix64 (Steele, Lea, Flood 2014) — used for seeding and for cheap
// sequential host-side randomness in the CPU baselines.
#pragma once

#include <cstdint>

namespace fastpso::rng {

/// SplitMix64: a tiny, fast, well-mixed 64-bit generator. Primarily used to
/// expand one user seed into many independent sub-seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  /// Next 64-bit value.
  std::uint64_t next();

  /// Next double uniform in [0, 1).
  double next_unit();

  /// Stateless mix: the n-th output of a SplitMix64 seeded with `seed`.
  static std::uint64_t mix(std::uint64_t seed, std::uint64_t n);

 private:
  std::uint64_t state_;
};

}  // namespace fastpso::rng
