#include "rng/xoshiro.h"

#include "rng/splitmix.h"

namespace fastpso::rng {

Xoshiro256::Xoshiro256(std::uint64_t seed) {
  SplitMix64 seeder(seed);
  for (auto& word : state_) {
    word = seeder.next();
  }
}

void Xoshiro256::jump() {
  static constexpr std::uint64_t kJump[] = {
      0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL, 0xA9582618E03FC9AAULL,
      0x39ABDC4529B1661CULL};
  std::uint64_t s0 = 0;
  std::uint64_t s1 = 0;
  std::uint64_t s2 = 0;
  std::uint64_t s3 = 0;
  for (std::uint64_t jump_word : kJump) {
    for (int bit = 0; bit < 64; ++bit) {
      if (jump_word & (1ULL << bit)) {
        s0 ^= state_[0];
        s1 ^= state_[1];
        s2 ^= state_[2];
        s3 ^= state_[3];
      }
      next();
    }
  }
  state_ = {s0, s1, s2, s3};
}

}  // namespace fastpso::rng
