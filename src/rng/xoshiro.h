// xoshiro256** (Blackman & Vigna 2018) — the fast sequential generator used
// by the CPU baselines (fastpso-seq / fastpso-omp use per-thread instances).
#pragma once

#include <array>
#include <cstdint>

namespace fastpso::rng {

/// xoshiro256**: 256 bits of state, excellent statistical quality, ~1ns per
/// draw. State is seeded through SplitMix64 so any 64-bit seed is fine.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed);

  /// Inline (pure integer math): the CPU baselines draw once per element, so
  /// the generator fuses into the surrounding fill loop.
  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double next_unit() {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform float in [0, 1).
  float next_unit_float() {
    return static_cast<float>(next() >> 40) * (1.0f / 16777216.0f);
  }

  /// Uniform double in [lo, hi).
  double next_uniform(double lo, double hi) {
    return lo + (hi - lo) * next_unit();
  }

  /// Jump function: advances the stream by 2^128 draws; use to derive
  /// non-overlapping per-thread streams from one seed.
  void jump();

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_;
};

}  // namespace fastpso::rng
