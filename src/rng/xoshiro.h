// xoshiro256** (Blackman & Vigna 2018) — the fast sequential generator used
// by the CPU baselines (fastpso-seq / fastpso-omp use per-thread instances).
#pragma once

#include <array>
#include <cstdint>

namespace fastpso::rng {

/// xoshiro256**: 256 bits of state, excellent statistical quality, ~1ns per
/// draw. State is seeded through SplitMix64 so any 64-bit seed is fine.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed);

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double next_unit();

  /// Uniform float in [0, 1).
  float next_unit_float();

  /// Uniform double in [lo, hi).
  double next_uniform(double lo, double hi);

  /// Jump function: advances the stream by 2^128 draws; use to derive
  /// non-overlapping per-thread streams from one seed.
  void jump();

 private:
  std::array<std::uint64_t, 4> state_;
};

}  // namespace fastpso::rng
