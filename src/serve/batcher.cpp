#include "serve/batcher.h"

namespace fastpso::serve {

double Batcher::packed_saving(const JobShape& shape,
                              const vgpu::graph::GraphExec& exec, int k) {
  if (k < 2) {
    return 0.0;
  }
  const auto key = std::make_pair(shape, k);
  const auto it = memo_.find(key);
  if (it != memo_.end()) {
    return it->second;
  }

  double saved = 0;
  for (const auto& en : exec.nodes()) {
    if (en.node.kind != vgpu::graph::NodeKind::kKernel) {
      continue;
    }
    const double solo =
        perf_.kernel_seconds_resolved(en.shape, en.node.cost);

    // k jobs' blocks in one launch: total work and traffic scale by k,
    // per-thread access patterns and per-block barrier phases do not.
    vgpu::KernelCostSpec packed = en.node.cost;
    packed.flops *= k;
    packed.transcendentals *= k;
    packed.dram_read_bytes *= k;
    packed.dram_write_bytes *= k;
    const double merged =
        perf_.kernel_seconds(en.shape.threads * k, packed);

    const double node_saved = static_cast<double>(k) * solo - merged;
    if (node_saved > 0) {
      saved += node_saved;
    }
  }
  memo_.emplace(key, saved);
  return saved;
}

}  // namespace fastpso::serve
