// Cross-job batch packing PRICE model for the serve layer.
//
// This is the *priced* leg of the batching tri-state (see serve/stats.h):
// with executed packing off (options.pack = false), the Batcher models what
// packing a same-shape cohort's launches would save. With options.pack on,
// the scheduler bypasses this model entirely and the CohortQueue
// (serve/packed.h) actually executes the merged dispatches — the saving
// then lands on the shared timeline instead of being a counterfactual.
//
// The model: when k same-shape jobs replay their (identical) iteration in
// the same scheduling round, each element kernel of those k iterations can
// ride ONE launch — every job contributes its own blocks (block-per-job
// packing, the same replication trick the paper's warp-level kernels use
// within a launch), the per-job buffers are disjoint and the per-job
// Philox streams are counter-based, so the packed kernel computes exactly
// what the k separate kernels compute. What changes is the modeled cost:
// one launch overhead instead of k, and k× the resident threads — which
// lifts occupancy precisely where Section 3.4's element-wise argument says
// small solo launches leave the device idle.
//
// In priced mode the saving is *reported* through ServeStats and never
// folded into any clock or counter — jobs stay bitwise identical to their
// solo runs either way. The per-node pricing uses the
// cached graph's capture-time cost specs (the one data-dependent cost, the
// pbest second pass, varies per iteration; the model prices the captured
// representative), and both sides of the comparison come from the same
// GpuPerfModel entry points the eager path uses:
//
//   solo_k   = k * kernel_seconds_resolved(node.shape, node.cost)
//   packed_k = kernel_seconds(k * node.shape.threads, k-scaled cost)
//
// with per-thread structure (amplifications, barrier phases, tensor-core
// flag) unchanged: packing adds blocks, not per-block work.
#pragma once

#include <map>
#include <utility>

#include "serve/job.h"
#include "vgpu/graph/graph.h"
#include "vgpu/perf_model.h"

namespace fastpso::serve {

class Batcher {
 public:
  explicit Batcher(const vgpu::GpuPerfModel& perf) : perf_(perf) {}

  Batcher(const Batcher&) = delete;
  Batcher& operator=(const Batcher&) = delete;

  /// Modeled seconds saved by packing one iteration of `k` same-shape jobs
  /// (all replaying `exec`'s node list) into per-node merged launches,
  /// versus issuing the k iterations back-to-back. Non-negative: nodes the
  /// packing model cannot improve contribute zero. Memoized per (shape, k)
  /// — the cohort mix repeats every round.
  double packed_saving(const JobShape& shape,
                       const vgpu::graph::GraphExec& exec, int k);

 private:
  const vgpu::GpuPerfModel& perf_;
  std::map<std::pair<JobShape, int>, double> memo_;
};

}  // namespace fastpso::serve
