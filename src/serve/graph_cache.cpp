#include "serve/graph_cache.h"

#include "common/check.h"
#include "vgpu/device.h"

namespace fastpso::serve {

GraphCache::GraphCache(vgpu::Device& device, bool fuse)
    : device_(device), fuse_(fuse) {}

GraphCache::IterationMode GraphCache::begin_iteration(const JobShape& shape,
                                                      int stream) {
  Entry& entry = entries_[shape];
  if (entry.poisoned) {
    return IterationMode::kEager;
  }
  if (entry.exec != nullptr) {
    entry.exec->set_replay_stream(stream);
    device_.begin_replay(*entry.exec);
    return IterationMode::kReplay;
  }
  entry.graph.clear();
  device_.begin_capture(entry.graph);
  return IterationMode::kCapture;
}

bool GraphCache::end_iteration(const JobShape& shape, IterationMode mode) {
  if (mode == IterationMode::kEager) {
    return true;
  }
  auto it = entries_.find(shape);
  FASTPSO_CHECK_MSG(it != entries_.end(), "end_iteration for unknown shape");
  Entry& entry = it->second;
  if (mode == IterationMode::kCapture) {
    device_.end_capture();
    if (entry.graph.empty()) {
      // An iteration that launched nothing cannot anchor replay matching.
      entry.poisoned = true;
      return false;
    }
    entry.exec = std::make_unique<vgpu::graph::GraphExec>(
        entry.graph.instantiate(device_.perf()));
    if (fuse_) {
      entry.exec->apply_fusion(device_.perf());
    }
    if (vgpu::graph::codegen::enabled()) {
      // Idempotent when apply_fusion already ran it; covers the no-fuse
      // configuration so the recognition stats stay comparable.
      entry.exec->apply_codegen();
    }
    return true;
  }
  // kReplay: a diverged replay already fell back to eager accounting for
  // the unmatched launches (numbers unharmed); poisoning just stops paying
  // the per-iteration replay setup for a shape that no longer matches.
  const bool clean = device_.end_replay();
  if (!clean) {
    entry.poisoned = true;
  }
  return clean;
}

const vgpu::graph::GraphExec* GraphCache::exec(const JobShape& shape) const {
  const auto it = entries_.find(shape);
  if (it == entries_.end() || it->second.poisoned) {
    return nullptr;
  }
  return it->second.exec.get();
}

vgpu::graph::GraphExec* GraphCache::exec_mutable(const JobShape& shape) {
  const auto it = entries_.find(shape);
  if (it == entries_.end() || it->second.poisoned) {
    return nullptr;
  }
  return it->second.exec.get();
}

void GraphCache::poison(const JobShape& shape) {
  const auto it = entries_.find(shape);
  FASTPSO_CHECK_MSG(it != entries_.end(), "poison for unknown shape");
  it->second.poisoned = true;
}

std::uint64_t GraphCache::graphs_captured() const {
  std::uint64_t count = 0;
  for (const auto& [shape, entry] : entries_) {
    (void)shape;
    count += entry.exec != nullptr ? 1 : 0;
  }
  return count;
}

std::uint64_t GraphCache::graphs_poisoned() const {
  std::uint64_t count = 0;
  for (const auto& [shape, entry] : entries_) {
    (void)shape;
    count += entry.poisoned ? 1 : 0;
  }
  return count;
}

double GraphCache::graph_seconds_saved() const {
  double saved = 0;
  for (const auto& [shape, entry] : entries_) {
    (void)shape;
    if (entry.exec != nullptr) {
      saved += entry.exec->stats().modeled_seconds_saved;
    }
  }
  return saved;
}

double GraphCache::fusion_seconds_saved() const {
  double saved = 0;
  for (const auto& [shape, entry] : entries_) {
    (void)shape;
    if (entry.exec != nullptr) {
      saved += entry.exec->fusion_stats().modeled_seconds_saved;
    }
  }
  return saved;
}

std::uint64_t GraphCache::codegen_registered_groups() const {
  std::uint64_t count = 0;
  for (const auto& [shape, entry] : entries_) {
    (void)shape;
    if (entry.exec != nullptr) {
      count += static_cast<std::uint64_t>(
          entry.exec->codegen_stats().registered_groups);
    }
  }
  return count;
}

std::uint64_t GraphCache::codegen_composed_groups() const {
  std::uint64_t count = 0;
  for (const auto& [shape, entry] : entries_) {
    (void)shape;
    if (entry.exec != nullptr) {
      count += static_cast<std::uint64_t>(
          entry.exec->codegen_stats().composed_groups);
    }
  }
  return count;
}

}  // namespace fastpso::serve
