// Shape-keyed cache of instantiated execution graphs for the serve layer.
//
// The first job of a JobShape captures its iteration's launch sequence
// (Device::begin_capture over one JobRun::step) and the cache instantiates
// it once (Graph::instantiate, plus the fusion pass when requested). Every
// later same-shape job replays that one GraphExec regardless of which
// stream it was assigned: GraphExec::set_replay_stream retargets the
// positional matching, which is legal because a scheduled job issues all
// its launches on its single assigned stream. Replay accounting is
// byte-identical to eager accounting (vgpu/graph contract), so reusing a
// graph across jobs never changes any job's numbers — it only earns the
// reported amortization credit.
//
// A shape whose replay diverges is poisoned: all its jobs run eagerly from
// then on. Divergence cannot corrupt results (the diverging launch falls
// through to eager accounting mid-replay), it only forfeits the credit.
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "serve/job.h"
#include "vgpu/graph/graph.h"

namespace fastpso::vgpu {
class Device;
}

namespace fastpso::serve {

class GraphCache {
 public:
  /// What one bracketed job iteration did. The scheduler passes the value
  /// returned by begin_iteration back into end_iteration.
  enum class IterationMode : std::uint8_t { kEager, kCapture, kReplay };

  /// `fuse` additionally runs the fusion pass over each instantiated graph
  /// (GraphExec::apply_fusion), so replays also accumulate the reported
  /// fused-pricing credit.
  GraphCache(vgpu::Device& device, bool fuse);

  GraphCache(const GraphCache&) = delete;
  GraphCache& operator=(const GraphCache&) = delete;

  /// Opens the capture or replay bracket for one iteration of a job of
  /// `shape` running on `stream`. kReplay when the shape has a cached exec,
  /// kCapture for the first iteration of a new shape, kEager for poisoned
  /// shapes. Call JobRun::step() next, then end_iteration.
  IterationMode begin_iteration(const JobShape& shape, int stream);

  /// Closes the bracket opened by begin_iteration. kCapture: instantiates
  /// (and optionally fuses) the recorded graph. kReplay: finishes the
  /// replay; a diverged replay poisons the shape. Returns false when the
  /// iteration poisoned its shape.
  bool end_iteration(const JobShape& shape, IterationMode mode);

  /// Instantiated exec for `shape`, or nullptr (unknown / not yet captured
  /// / poisoned). The batcher prices packing cohorts from its node list.
  [[nodiscard]] const vgpu::graph::GraphExec* exec(const JobShape& shape)
      const;

  /// Mutable exec for the packed-cohort path (serve/packed.h), which opens
  /// a per-job ReplaySession on the shared exec instead of the exec-level
  /// begin_iteration bracket. Same nullptr contract as exec().
  [[nodiscard]] vgpu::graph::GraphExec* exec_mutable(const JobShape& shape);

  /// Poisons `shape` (forces eager from now on). The packed path drives
  /// replays through per-job sessions, so it reports divergence here
  /// rather than through end_iteration.
  void poison(const JobShape& shape);

  /// True when the next begin_iteration for `shape` would replay.
  [[nodiscard]] bool ready(const JobShape& shape) const {
    return exec(shape) != nullptr;
  }

  // -- aggregate bookkeeping over all entries (feeds ServeStats) ----------
  [[nodiscard]] std::uint64_t graphs_captured() const;
  [[nodiscard]] std::uint64_t graphs_poisoned() const;
  [[nodiscard]] double graph_seconds_saved() const;
  [[nodiscard]] double fusion_seconds_saved() const;
  /// Fused groups whose members all registered static kernels, and the
  /// subset with a composed single-pass loop (codegen recognition; serve
  /// captures carry no bodies, so these groups are recognized, not run).
  [[nodiscard]] std::uint64_t codegen_registered_groups() const;
  [[nodiscard]] std::uint64_t codegen_composed_groups() const;

 private:
  struct Entry {
    vgpu::graph::Graph graph;
    std::unique_ptr<vgpu::graph::GraphExec> exec;
    bool poisoned = false;
  };

  vgpu::Device& device_;
  bool fuse_;
  std::map<JobShape, Entry> entries_;
};

}  // namespace fastpso::serve
