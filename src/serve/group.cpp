#include "serve/group.h"

#include <algorithm>

#include "common/check.h"

namespace fastpso::serve {

GroupScheduler::GroupScheduler(vgpu::comm::DeviceGroup& group,
                               SchedulerOptions options) {
  parts_.reserve(static_cast<std::size_t>(group.size()));
  for (int i = 0; i < group.size(); ++i) {
    Part part;
    part.scheduler = std::make_unique<Scheduler>(group.device(i), options);
    parts_.push_back(std::move(part));
  }
}

std::size_t GroupScheduler::checked(int device) const {
  FASTPSO_CHECK_MSG(device >= 0 && device < size(),
                    "device index out of range");
  return static_cast<std::size_t>(device);
}

int GroupScheduler::submit(JobSpec spec) {
  // Estimated work of the job, from the spec alone: element updates per
  // iteration times the iteration budget. Deterministic placement needs a
  // submission-time estimate, not modeled clocks (which only advance once
  // run() drains the queues).
  const double estimate = static_cast<double>(spec.params.particles) *
                          spec.params.dim * spec.params.max_iter;
  int device = 0;
  for (int i = 1; i < size(); ++i) {
    if (parts_[static_cast<std::size_t>(i)].estimated_load <
        parts_[static_cast<std::size_t>(device)].estimated_load) {
      device = i;  // strict <: ties keep the lowest device index
    }
  }
  Part& part = parts_[static_cast<std::size_t>(device)];
  part.estimated_load += estimate;
  Placement placement;
  placement.device = device;
  placement.local_id = part.scheduler->submit(std::move(spec));
  placements_.push_back(placement);
  return static_cast<int>(placements_.size()) - 1;
}

void GroupScheduler::run() {
  for (Part& part : parts_) {
    part.scheduler->run();
  }
}

int GroupScheduler::device_of(int job_id) const {
  FASTPSO_CHECK_MSG(
      job_id >= 0 && job_id < static_cast<int>(placements_.size()),
      "unknown job id");
  return placements_[static_cast<std::size_t>(job_id)].device;
}

const JobOutcome& GroupScheduler::outcome_of(int job_id) const {
  FASTPSO_CHECK_MSG(
      job_id >= 0 && job_id < static_cast<int>(placements_.size()),
      "unknown job id");
  const Placement& placement = placements_[static_cast<std::size_t>(job_id)];
  const auto& outcomes =
      parts_[static_cast<std::size_t>(placement.device)].scheduler->outcomes();
  for (const JobOutcome& outcome : outcomes) {
    if (outcome.id == placement.local_id) {
      return outcome;
    }
  }
  FASTPSO_CHECK_MSG(false, "job has not completed");
  FASTPSO_UNREACHABLE("job has not completed");
}

ServeStats GroupScheduler::stats() const {
  ServeStats total;
  for (const Part& part : parts_) {
    const ServeStats s = part.scheduler->stats();
    total.jobs_submitted += s.jobs_submitted;
    total.jobs_completed += s.jobs_completed;
    total.iterations += s.iterations;
    total.cache_lookups += s.cache_lookups;
    total.cache_hits += s.cache_hits;
    total.graphs_captured += s.graphs_captured;
    total.graphs_poisoned += s.graphs_poisoned;
    total.replayed_iterations += s.replayed_iterations;
    total.eager_iterations += s.eager_iterations;
    total.launches_issued += s.launches_issued;
    total.launches_batched += s.launches_batched;
    total.batch_rounds += s.batch_rounds;
    total.batch_modeled_seconds_saved += s.batch_modeled_seconds_saved;
    total.graph_modeled_seconds_saved += s.graph_modeled_seconds_saved;
    total.fusion_modeled_seconds_saved += s.fusion_modeled_seconds_saved;
    total.codegen_registered_groups += s.codegen_registered_groups;
    total.codegen_composed_groups += s.codegen_composed_groups;
    // Devices drain concurrently: the group makespan is the slowest
    // device's; serial work and idle gaps add.
    total.makespan_seconds = std::max(total.makespan_seconds,
                                      s.makespan_seconds);
    total.serial_seconds += s.serial_seconds;
    total.scheduler_seconds += s.scheduler_seconds;
  }
  return total;
}

std::vector<TraceEvent> GroupScheduler::trace() const {
  std::vector<TraceEvent> merged;
  for (int device = 0; device < size(); ++device) {
    for (TraceEvent event :
         parts_[static_cast<std::size_t>(device)].scheduler->trace()) {
      event.pid = device;
      merged.push_back(std::move(event));
    }
  }
  return merged;
}

}  // namespace fastpso::serve
