#include "serve/group.h"

#include <algorithm>

#include "common/check.h"

namespace fastpso::serve {

GroupScheduler::GroupScheduler(vgpu::comm::DeviceGroup& group,
                               SchedulerOptions options) {
  // Mirror the per-device scheduler's effective pack gate: placement only
  // discounts for cohorts the schedulers will actually execute packed.
  pack_ = options.pack && options.batching && options.use_graphs;
  max_cohort_ = PackOptions{}.max_cohort;
  parts_.reserve(static_cast<std::size_t>(group.size()));
  for (int i = 0; i < group.size(); ++i) {
    Part part;
    part.scheduler = std::make_unique<Scheduler>(group.device(i), options);
    parts_.push_back(std::move(part));
  }
}

std::size_t GroupScheduler::checked(int device) const {
  FASTPSO_CHECK_MSG(device >= 0 && device < size(),
                    "device index out of range");
  return static_cast<std::size_t>(device);
}

int GroupScheduler::submit(JobSpec spec) {
  // Estimated work of the job, from the spec alone: element updates per
  // iteration times the iteration budget. Deterministic placement needs a
  // submission-time estimate, not modeled clocks (which only advance once
  // run() drains the queues).
  const double estimate = static_cast<double>(spec.params.particles) *
                          spec.params.dim * spec.params.max_iter;
  // Packed-aware marginal cost: a job joining k same-shape jobs already on
  // a device rides their merged cohort dispatches, so it adds ~1/(k+1) of
  // its solo load (capped at the default cohort width). This both models
  // the cheaper load and steers same-shape jobs together — bigger cohorts
  // pack better. With packing off the marginal cost is the full estimate
  // on every device and the choice reduces to plain least-load.
  const JobShape shape = JobShape::of(spec);
  const auto marginal = [&](const Part& part) {
    if (!pack_) {
      return estimate;
    }
    const auto it = part.shape_counts.find(shape);
    const int cohort = 1 + (it != part.shape_counts.end() ? it->second : 0);
    return estimate / static_cast<double>(std::min(cohort, max_cohort_));
  };
  int device = 0;
  for (int i = 1; i < size(); ++i) {
    const Part& candidate = parts_[static_cast<std::size_t>(i)];
    const Part& best = parts_[static_cast<std::size_t>(device)];
    if (candidate.estimated_load + marginal(candidate) <
        best.estimated_load + marginal(best)) {
      device = i;  // strict <: ties keep the lowest device index
    }
  }
  Part& part = parts_[static_cast<std::size_t>(device)];
  part.estimated_load += marginal(part);
  ++part.shape_counts[shape];
  Placement placement;
  placement.device = device;
  placement.local_id = part.scheduler->submit(std::move(spec));
  placements_.push_back(placement);
  return static_cast<int>(placements_.size()) - 1;
}

void GroupScheduler::run() {
  for (Part& part : parts_) {
    part.scheduler->run();
  }
}

int GroupScheduler::device_of(int job_id) const {
  FASTPSO_CHECK_MSG(
      job_id >= 0 && job_id < static_cast<int>(placements_.size()),
      "unknown job id");
  return placements_[static_cast<std::size_t>(job_id)].device;
}

const JobOutcome& GroupScheduler::outcome_of(int job_id) const {
  FASTPSO_CHECK_MSG(
      job_id >= 0 && job_id < static_cast<int>(placements_.size()),
      "unknown job id");
  const Placement& placement = placements_[static_cast<std::size_t>(job_id)];
  const auto& outcomes =
      parts_[static_cast<std::size_t>(placement.device)].scheduler->outcomes();
  for (const JobOutcome& outcome : outcomes) {
    if (outcome.id == placement.local_id) {
      return outcome;
    }
  }
  FASTPSO_CHECK_MSG(false, "job has not completed");
  FASTPSO_UNREACHABLE("job has not completed");
}

ServeStats GroupScheduler::stats() const {
  ServeStats total;
  for (const Part& part : parts_) {
    const ServeStats s = part.scheduler->stats();
    total.jobs_submitted += s.jobs_submitted;
    total.jobs_completed += s.jobs_completed;
    total.iterations += s.iterations;
    total.cache_lookups += s.cache_lookups;
    total.cache_hits += s.cache_hits;
    total.graphs_captured += s.graphs_captured;
    total.graphs_poisoned += s.graphs_poisoned;
    total.replayed_iterations += s.replayed_iterations;
    total.eager_iterations += s.eager_iterations;
    total.launches_issued += s.launches_issued;
    total.launches_batched += s.launches_batched;
    total.batch_rounds += s.batch_rounds;
    total.launches_real += s.launches_real;
    total.packed_cohort_rounds += s.packed_cohort_rounds;
    total.packed_iterations += s.packed_iterations;
    total.packed_deferred_launches += s.packed_deferred_launches;
    total.packed_dispatches += s.packed_dispatches;
    total.packed_warp_dispatches += s.packed_warp_dispatches;
    total.batch_modeled_seconds_saved += s.batch_modeled_seconds_saved;
    total.graph_modeled_seconds_saved += s.graph_modeled_seconds_saved;
    total.fusion_modeled_seconds_saved += s.fusion_modeled_seconds_saved;
    total.codegen_registered_groups += s.codegen_registered_groups;
    total.codegen_composed_groups += s.codegen_composed_groups;
    // Devices drain concurrently: the group makespan is the slowest
    // device's; serial work and idle gaps add.
    total.makespan_seconds = std::max(total.makespan_seconds,
                                      s.makespan_seconds);
    total.serial_seconds += s.serial_seconds;
    total.scheduler_seconds += s.scheduler_seconds;
  }
  return total;
}

std::vector<TraceEvent> GroupScheduler::trace() const {
  std::vector<TraceEvent> merged;
  for (int device = 0; device < size(); ++device) {
    for (TraceEvent event :
         parts_[static_cast<std::size_t>(device)].scheduler->trace()) {
      event.pid = device;
      merged.push_back(std::move(event));
    }
  }
  return merged;
}

}  // namespace fastpso::serve
