// PSO-as-a-service across a device group (DESIGN.md §12).
//
// GroupScheduler fronts one serve::Scheduler per device of a
// comm::DeviceGroup and places each submitted job on the device where it
// adds the least estimated load — a deterministic function of the
// submission sequence alone (estimated work = particles * dim * max_iter;
// ties go to the lowest device index), never of modeled clocks or pointer
// order, so a submission sequence always produces the same placement, the
// same schedules and the same bitwise results. When executed packing is on
// (options.pack, serve/packed.h), the marginal cost of a job is discounted
// by the same-shape cohort it would join (~1/k of solo load, capped at the
// default cohort width): packed cohorts genuinely cost less device time,
// and the discount steers same-shape jobs together so cohorts grow.
//
// Jobs never span devices (a job is one swarm on one device; the
// multi-device decomposition of a single swarm is core::MultiDeviceOptimizer),
// so the per-device schedulers stay fully independent: every job inherits
// the single-device serve contract — Result bitwise-identical to the same
// spec run solo on a fresh device — unchanged, whatever the group size.
#pragma once

#include <cstddef>
#include <map>
#include <vector>

#include "common/trace_export.h"
#include "serve/packed.h"
#include "serve/scheduler.h"
#include "vgpu/comm/comm.h"

namespace fastpso::serve {

/// Deterministic least-loaded placement of serve jobs over a DeviceGroup.
class GroupScheduler {
 public:
  /// The group must outlive the scheduler. Options apply to every
  /// per-device scheduler identically.
  explicit GroupScheduler(vgpu::comm::DeviceGroup& group,
                          SchedulerOptions options = {});

  GroupScheduler(const GroupScheduler&) = delete;
  GroupScheduler& operator=(const GroupScheduler&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(parts_.size()); }
  [[nodiscard]] Scheduler& scheduler(int device) {
    return *parts_[checked(device)].scheduler;
  }
  [[nodiscard]] const Scheduler& scheduler(int device) const {
    return *parts_[checked(device)].scheduler;
  }

  /// Places the job and enqueues it; returns a group-wide id (dense, in
  /// submission order).
  int submit(JobSpec spec);

  /// Drains every per-device scheduler.
  void run();

  /// The device a submitted job was placed on.
  [[nodiscard]] int device_of(int job_id) const;
  /// The completion record of a submitted job (run() must have drained it).
  [[nodiscard]] const JobOutcome& outcome_of(int job_id) const;

  /// Group totals: sums of the per-device raw counters (derived ratios are
  /// recomputed by the ServeStats helpers; makespan is the max).
  [[nodiscard]] ServeStats stats() const;

  /// Merged Chrome-trace view: each device's schedule on its own process
  /// row (pid = device index, tid = stream), deterministic.
  [[nodiscard]] std::vector<TraceEvent> trace() const;

 private:
  struct Part {
    std::unique_ptr<Scheduler> scheduler;
    double estimated_load = 0;  ///< sum of placed jobs' marginal work
    /// Jobs placed here per shape — sizes the packed-cohort discount.
    std::map<JobShape, int> shape_counts;
  };
  struct Placement {
    int device = 0;
    int local_id = 0;
  };

  [[nodiscard]] std::size_t checked(int device) const;

  std::vector<Part> parts_;
  std::vector<Placement> placements_;  ///< indexed by group-wide job id
  bool pack_ = false;   ///< effective pack gate (pack && batching && graphs)
  int max_cohort_ = 1;  ///< discount cap, from the default PackOptions
};

}  // namespace fastpso::serve
