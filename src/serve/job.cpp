#include "serve/job.h"

namespace fastpso::serve {

namespace {

const char* technique_tag(core::UpdateTechnique technique) {
  switch (technique) {
    case core::UpdateTechnique::kGlobalMemory:
      return "gmem";
    case core::UpdateTechnique::kSharedMemory:
      return "smem";
    case core::UpdateTechnique::kTensorCore:
      return "tensor";
  }
  return "?";
}

}  // namespace

JobShape JobShape::of(const JobSpec& spec) {
  JobShape shape;
  shape.problem = spec.problem;
  shape.particles = spec.params.particles;
  shape.dim = spec.params.dim;
  shape.technique = spec.params.technique;
  shape.topology = spec.params.topology;
  shape.ring_neighbors = spec.params.topology == core::Topology::kRing
                             ? spec.params.ring_neighbors
                             : 0;
  return shape;
}

std::string JobShape::to_string() const {
  std::string s = problem;
  s += "/n" + std::to_string(particles);
  s += "/d" + std::to_string(dim);
  s += "/";
  s += technique_tag(technique);
  if (topology == core::Topology::kRing) {
    s += "/ring" + std::to_string(ring_neighbors);
  }
  return s;
}

}  // namespace fastpso::serve
