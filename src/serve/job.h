// Job descriptions for the PSO serving layer (src/serve/, DESIGN.md §10).
//
// A JobSpec is one optimization request — a Table-1 problem plus the full
// PsoParams shape/budget/seed — submitted to the serve::Scheduler, which
// multiplexes thousands of such jobs onto one vgpu::Device. The JobShape is
// the structural subset of a spec that determines its per-iteration launch
// sequence; it keys the scheduler's graph cache and its cross-job batching
// cohorts. A JobOutcome is the completion record: the Result (bitwise
// identical to the same spec run solo on a fresh device) plus the job's
// modeled timeline on the shared device.
#pragma once

#include <cstdint>
#include <string>

#include "core/params.h"
#include "core/result.h"

namespace fastpso::serve {

/// One optimization request. `problem` names a built-in test function
/// (problems::make_problem); `params` carries shape, budget and seed.
/// Scheduling constraints: the synchronous pipeline only, and no
/// overlap_init (a scheduled job owns exactly one stream — the scheduler
/// provides the cross-job overlap that overlap_init provides within a job).
struct JobSpec {
  std::string problem = "sphere";
  core::PsoParams params;
  /// Admission rank under Policy::kPriority (higher admits first).
  int priority = 0;
  /// Fair-share key under Policy::kFair (e.g. a user id).
  int tenant = 0;
  /// Modeled arrival time (open-loop submission): the job becomes
  /// admissible once the device clock reaches this. 0 = available at start.
  double arrival_seconds = 0.0;
};

/// The graph-cache key: everything that determines a job's per-iteration
/// launch sequence (kernel shapes, order, phases). Seed and iteration
/// budget are deliberately excluded — they change values and trip counts,
/// not structure — so all same-shape jobs replay one instantiated graph.
struct JobShape {
  std::string problem;
  int particles = 0;
  int dim = 0;
  core::UpdateTechnique technique = core::UpdateTechnique::kGlobalMemory;
  core::Topology topology = core::Topology::kGlobal;
  int ring_neighbors = 0;  ///< 0 unless topology == kRing

  [[nodiscard]] static JobShape of(const JobSpec& spec);
  [[nodiscard]] std::string to_string() const;

  auto operator<=>(const JobShape&) const = default;
};

/// Completion record for one scheduled job.
struct JobOutcome {
  int id = -1;
  JobShape shape;
  int stream = 0;
  int priority = 0;
  int tenant = 0;

  /// Bitwise-identical to the same spec run solo on a fresh device
  /// (gbest value/position/history, iterations, counters, breakdown and
  /// modeled_seconds) — the serve differential suite's contract. The
  /// profiler timeline and graph/fusion stats are not populated: the
  /// profile interleaves all jobs and stays on the device, and graph
  /// bookkeeping lives in the scheduler's shape cache.
  core::Result result;

  /// Modeled timeline points on the shared device clock.
  double submit_seconds = 0;  ///< the spec's arrival time
  double admit_seconds = 0;   ///< device clock when the job was admitted
  double finish_seconds = 0;  ///< device clock when the result was read back

  /// Capture/replay bookkeeping against the scheduler's shape cache.
  std::uint64_t replayed_iterations = 0;
  std::uint64_t eager_iterations = 0;
  bool captured = false;  ///< this job recorded its shape's graph

  [[nodiscard]] double latency_seconds() const {
    return finish_seconds - submit_seconds;
  }
  [[nodiscard]] double queue_seconds() const {
    return admit_seconds - submit_seconds;
  }
};

}  // namespace fastpso::serve
