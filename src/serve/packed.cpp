#include "serve/packed.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

#include "common/check.h"
#include "vgpu/device.h"
#include "vgpu/tuned.h"

namespace fastpso::serve {

bool pack_enabled_from_env() {
  const char* env = std::getenv("FASTPSO_SERVE_PACK");
  return env != nullptr && env[0] == '1' && env[1] == '\0';
}

PackOptions PackOptions::resolve(std::int64_t elements) {
  PackOptions options;
  // One pair of lookups per cohort round (the scheduler memoizes per
  // shape), so the shape_key string cost stays off the per-launch path.
  const std::string key = vgpu::tuned::shape_key("serve_pack", elements);
  const int pct = vgpu::tuned::lookup(
      key + "/warp_threshold_pct",
      static_cast<int>(options.warp_threshold * 100.0));
  options.warp_threshold = std::clamp(pct, 0, 100) / 100.0;
  options.max_cohort = std::clamp(
      vgpu::tuned::lookup(key + "/max_cohort", options.max_cohort), 1, 64);
  return options;
}

void CohortQueue::begin_round(vgpu::Device& device,
                              const vgpu::graph::GraphExec& exec, int lanes,
                              const PackOptions& options) {
  FASTPSO_CHECK_MSG(exec_ == nullptr, "cohort round already open");
  FASTPSO_CHECK_MSG(lanes >= 1, "cohort needs at least one lane");
  device_ = &device;
  exec_ = &exec;
  options_ = options;
  // Shrink-free reset: lane capacity survives across rounds so the steady
  // state defers without allocating.
  if (lanes_.size() < static_cast<std::size_t>(lanes)) {
    lanes_.resize(static_cast<std::size_t>(lanes));
  }
  for (std::size_t lane = 0; lane < static_cast<std::size_t>(lanes); ++lane) {
    lanes_[lane].clear();
  }
  lane_streams_.assign(static_cast<std::size_t>(lanes), 0);
  current_ = -1;
}

bool CohortQueue::offer(int node_index, std::int64_t n_elems,
                        const vgpu::KernelCostSpec& cost, double seconds,
                        const vgpu::PackSpan& span) {
  if (current_ < 0 || exec_ == nullptr) {
    return false;  // no lane installed: run inline, exactly as unpacked
  }
  std::vector<Entry>& lane = lanes_[static_cast<std::size_t>(current_)];
  Entry& entry = lane.emplace_back();
  entry.node_index = node_index;
  entry.stream = lane_streams_[static_cast<std::size_t>(current_)];
  entry.n_elems = n_elems;
  entry.cost = cost;
  entry.seconds = seconds;
  entry.span = span;
  ++round_.deferred;
  return true;
}

void CohortQueue::flush_lane() {
  if (current_ < 0) {
    // Scheduler-context device work (admission allocs, finalize downloads)
    // never touches a mid-round job's pending spans: the scheduler drains
    // every lane with a flush_barrier before leaving the cohort.
    return;
  }
  std::vector<Entry>& lane = lanes_[static_cast<std::size_t>(current_)];
  for (const Entry& entry : lane) {
    // The retracted stream time settles back at the original solo price:
    // this span runs unpacked after all.
    device_->pack_restore_stream_seconds(entry.stream, entry.seconds);
    entry.span(0, entry.n_elems);
    ++round_.inline_spans;
  }
  lane.clear();
}

void CohortQueue::flush_barrier(vgpu::Device& device) {
  FASTPSO_CHECK_MSG(exec_ != nullptr, "flush_barrier outside a round");
  // Merge lanes by node index: each lane's entries are in replay-cursor
  // (program) order, so repeatedly dispatching the smallest pending node
  // index across lanes preserves per-job ordering while packing every job
  // that reached the same node.
  merge_pos_.assign(lanes_.size(), 0);
  for (;;) {
    int next_node = std::numeric_limits<int>::max();
    for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
      if (merge_pos_[lane] < lanes_[lane].size()) {
        next_node = std::min(next_node,
                             lanes_[lane][merge_pos_[lane]].node_index);
      }
    }
    if (next_node == std::numeric_limits<int>::max()) {
      break;  // every lane drained
    }
    merge_members_.clear();
    for (std::size_t lane = 0; lane < lanes_.size(); ++lane) {
      if (merge_pos_[lane] < lanes_[lane].size() &&
          lanes_[lane][merge_pos_[lane]].node_index == next_node) {
        merge_members_.push_back(&lanes_[lane][merge_pos_[lane]]);
        ++merge_pos_[lane];
      }
    }
    // Chunk oversized cohorts: each chunk is one packed dispatch.
    const std::size_t chunk =
        static_cast<std::size_t>(std::max(options_.max_cohort, 1));
    for (std::size_t begin = 0; begin < merge_members_.size();
         begin += chunk) {
      const std::size_t end =
          std::min(begin + chunk, merge_members_.size());
      dispatch_group(device, next_node, merge_members_.data() + begin,
                     static_cast<int>(end - begin));
    }
  }
  for (std::vector<Entry>& lane : lanes_) {
    lane.clear();
  }
}

void CohortQueue::dispatch_group(vgpu::Device& device, int node_index,
                                 const Entry* const* members, int k) {
  const auto& en =
      exec_->nodes()[static_cast<std::size_t>(node_index)];
  const std::int64_t grid = en.node.grid;
  const int block = en.node.block;
  const char* label =
      en.node.label.empty() ? en.node.phase.c_str() : en.node.label.c_str();

  // Warp-per-job sub-packing decision: per-job thread utilization below
  // the threshold (and a warp-aligned block) means block-per-job packing
  // would keep mostly-idle blocks resident; pack several jobs into one
  // block instead, each owning ceil(n/32) warps.
  const std::int64_t n = members[0]->n_elems;
  const double per_job_threads = static_cast<double>(grid) * block;
  const bool warp_mode =
      k >= 2 && block % 32 == 0 && per_job_threads > 0 &&
      static_cast<double>(n) <
          options_.warp_threshold * per_job_threads &&
      (n + 31) / 32 <= block / 32;

  vgpu::LaunchConfig cfg;
  std::int64_t jobs_per_block = 1;
  if (warp_mode) {
    const std::int64_t warps_per_job = std::max<std::int64_t>((n + 31) / 32, 1);
    jobs_per_block = std::max<std::int64_t>((block / 32) / warps_per_job, 1);
    cfg.grid = (k + jobs_per_block - 1) / jobs_per_block;
    cfg.block = block;
  } else {
    // Block-per-job: every member contributes its own per-job grid. k == 1
    // degenerates to the exact solo geometry.
    cfg.grid = grid * k;
    cfg.block = block;
  }

  // Executed packing credit: the members' live-accounted seconds versus
  // one launch of the summed work at the packed geometry — the same
  // GpuPerfModel entry points the priced model (serve/batcher.h) compares.
  double merged_seconds = 0;
  double saved = 0;
  {
    vgpu::KernelCostSpec summed;
    double member_seconds = 0;
    for (int m = 0; m < k; ++m) {
      const Entry* entry = members[m];
      summed.flops += entry->cost.flops;
      summed.transcendentals += entry->cost.transcendentals;
      summed.dram_read_bytes += entry->cost.dram_read_bytes;
      summed.dram_write_bytes += entry->cost.dram_write_bytes;
      member_seconds += entry->seconds;
    }
    merged_seconds = perf_.kernel_seconds(cfg.grid * cfg.block, summed);
    if (k >= 2) {
      saved = std::max(member_seconds - merged_seconds, 0.0);
    }
  }

  // Per-block job-index indirection table: packed block -> member job.
  // Block mode lays each member's per-job blocks out contiguously; warp
  // mode stores the block's first member (its block-mates follow densely).
  block_job_.clear();
  block_job_.reserve(static_cast<std::size_t>(cfg.grid));
  if (warp_mode) {
    for (std::int64_t b = 0; b < cfg.grid; ++b) {
      block_job_.push_back(static_cast<int>(b * jobs_per_block));
    }
  } else {
    for (int m = 0; m < k; ++m) {
      for (std::int64_t b = 0; b < grid; ++b) {
        block_job_.push_back(m);
      }
    }
  }

  device.packed_dispatch(label, cfg, k, merged_seconds, [&] {
    if (warp_mode) {
      for (std::int64_t b = 0; b < cfg.grid; ++b) {
        for (std::int64_t slot = 0; slot < jobs_per_block; ++slot) {
          const std::int64_t m =
              block_job_[static_cast<std::size_t>(b)] + slot;
          if (m >= k) {
            break;
          }
          const Entry* entry = members[m];
          entry->span(0, entry->n_elems);
        }
      }
      return;
    }
    // Block mode: each packed block runs its member's contiguous element
    // chunk (the per-job grid split a solo launch would stride over).
    const std::int64_t per_block = (n + grid - 1) / grid;
    for (std::int64_t pb = 0; pb < cfg.grid; ++pb) {
      const int m = block_job_[static_cast<std::size_t>(pb)];
      const Entry* entry = members[m];
      const std::int64_t local = pb % grid;
      const std::int64_t begin = local * per_block;
      const std::int64_t end = std::min(begin + per_block, entry->n_elems);
      if (begin < end) {
        entry->span(begin, end);
      }
    }
  });

  // Settle the members' retracted stream time: every member stream waits
  // for the packed launch, which runs once at the merged price. This is
  // where the executed saving lands on the shared timeline.
  commit_streams_.clear();
  for (int m = 0; m < k; ++m) {
    const int stream = members[m]->stream;
    if (std::find(commit_streams_.begin(), commit_streams_.end(), stream) ==
        commit_streams_.end()) {
      commit_streams_.push_back(stream);
    }
  }
  device.pack_commit_dispatch(commit_streams_.data(),
                              static_cast<int>(commit_streams_.size()),
                              merged_seconds);

  ++round_.dispatches;
  if (warp_mode) {
    ++round_.warp_dispatches;
  }
  round_.executed_saved_seconds += saved;
}

PackRoundStats CohortQueue::take_round() {
  FASTPSO_CHECK_MSG(exec_ != nullptr, "take_round outside a round");
  for (const std::vector<Entry>& lane : lanes_) {
    FASTPSO_CHECK_MSG(lane.empty(), "cohort lane not drained");
  }
  exec_ = nullptr;
  current_ = -1;
  const PackRoundStats stats = round_;
  round_ = {};
  return stats;
}

}  // namespace fastpso::serve
