// Executed cross-job batch packing for the serve layer (DESIGN.md §10).
//
// PR 6's Batcher *priced* what packing a same-shape cohort's launches would
// save; this engine executes it. Each scheduling round, the scheduler steps
// a replaying cohort in lockstep (JobRun::step_front/middle/back) with a
// CohortQueue attached as the device's PackSink: every matched element
// launch is deferred onto its job's lane (accounting already done through
// the job's own replay session — deferral moves execution only), and at
// each substep barrier the queue rewrites the cohort's lanes into per-node
// packed dispatches:
//
//   * block-per-job packing: the k jobs' blocks ride one launch with
//     grid = k x per-job blocks; a per-block job-index indirection table
//     routes each packed block to its job's element chunk (the same
//     replication trick the paper's warp-level kernels use in a launch).
//   * warp-per-job sub-packing: shapes whose per-job thread utilization
//     sits below a warp-utilization threshold (tiny swarms that leave most
//     of a block idle) are packed at warp granularity instead — several
//     jobs share one block, each owning ceil(n/32) warps — so the packed
//     launch keeps fewer, fuller blocks resident.
//
// Per-job RNG streams, pools and accounting are untouched: cohort jobs own
// disjoint buffers and element bodies are order-independent across
// elements, so packed execution is bitwise-equal-to-solo by construction.
// The credit (sum of member-accounted seconds minus the packed launch's
// modeled price) is *executed*, not counterfactual: a deferred launch's
// stream-clock advance is retracted at offer time and the merged dispatch
// commits its packed price to the member streams jointly (vgpu
// packed-timeline hooks), so makespan and job latency genuinely drop —
// while every job's own counters, modeled seconds and breakdown stay
// byte-identical to solo. batch_modeled_seconds_saved reports the realized
// saving, still never folded into any job's numbers.
#pragma once

#include <cstdint>
#include <vector>

#include "vgpu/graph/graph.h"
#include "vgpu/pack.h"
#include "vgpu/perf_model.h"

namespace fastpso::vgpu {
class Device;
}

namespace fastpso::serve {

/// Packing knobs. Tunable through the offline autotuner's "serve_pack"
/// family (tune/kernels.cpp): resolve() consults the vgpu::tuned store per
/// element-count bucket, so FASTPSO_TUNED tables retarget both knobs.
struct PackOptions {
  /// Per-job thread utilization (elements / (grid x block)) below which a
  /// node is packed warp-per-job instead of block-per-job.
  double warp_threshold = 0.5;
  /// Jobs per packed dispatch; larger cohorts split into chunks this size.
  int max_cohort = 16;

  /// Tuned-store resolution for a shape with `elements` work items per
  /// element launch (keys "serve_pack/b<bucket>/{warp_threshold_pct,
  /// max_cohort}"). Falls back to the defaults above.
  [[nodiscard]] static PackOptions resolve(std::int64_t elements);
};

/// FASTPSO_SERVE_PACK=1 — the scheduler's default for executing (rather
/// than only pricing) cross-job packing. Read once per scheduler.
[[nodiscard]] bool pack_enabled_from_env();

/// What one packed cohort round did (CohortQueue::take_round).
struct PackRoundStats {
  std::uint64_t deferred = 0;       ///< launches deferred onto lanes
  std::uint64_t dispatches = 0;     ///< packed cohort dispatches issued
  std::uint64_t warp_dispatches = 0;  ///< subset packed warp-per-job
  std::uint64_t inline_spans = 0;   ///< deferred spans run by lane flushes
  double executed_saved_seconds = 0;  ///< executed packing credit
};

/// The serve layer's PackSink: one lane per cohort job. The scheduler
/// brackets each job's substep with set_lane(job), so Device offers land on
/// the right lane; flush_barrier() packs and executes everything deferred
/// across the cohort, grouped by replay node index.
class CohortQueue : public vgpu::PackSink {
 public:
  explicit CohortQueue(const vgpu::GpuPerfModel& perf) : perf_(perf) {}

  CohortQueue(const CohortQueue&) = delete;
  CohortQueue& operator=(const CohortQueue&) = delete;

  /// Opens a cohort round over `exec` (the shape's cached graph — node
  /// indices key the packing) with `lanes` member jobs on `device` (the
  /// clocks merged dispatches and inline flushes settle against).
  void begin_round(vgpu::Device& device, const vgpu::graph::GraphExec& exec,
                   int lanes, const PackOptions& options);

  /// Routes subsequent offers to `lane` (-1: none — offers are declined
  /// and flush_lane is a no-op, which is the safe scheduler-context state).
  /// `stream` is the lane job's stream: deferred launches' retracted time
  /// settles back onto it (vgpu packed-timeline hooks).
  void set_lane(int lane, int stream = 0) {
    current_ = lane;
    if (lane >= 0) {
      lane_streams_[static_cast<std::size_t>(lane)] = stream;
    }
  }

  // -- vgpu::PackSink -------------------------------------------------------
  bool offer(int node_index, std::int64_t n_elems,
             const vgpu::KernelCostSpec& cost, double seconds,
             const vgpu::PackSpan& span) override;
  /// Executes the current lane's pending spans in offer order (the device
  /// calls this before any non-deferrable op so per-job ordering holds).
  void flush_lane() override;

  /// Substep barrier: packs every lane's pending spans into per-node cohort
  /// dispatches on `device` and executes them. Lanes are merged by node
  /// index (each lane's entries are in replay order, so per-job program
  /// order is preserved); groups larger than max_cohort split into chunks.
  void flush_barrier(vgpu::Device& device);

  /// Closes the round: checks every lane drained, returns the round's
  /// stats and resets them.
  PackRoundStats take_round();

 private:
  struct Entry {
    int node_index = -1;
    int stream = 0;  ///< the owed stream time's destination
    std::int64_t n_elems = 0;
    vgpu::KernelCostSpec cost;
    double seconds = 0;
    vgpu::PackSpan span;
  };

  void dispatch_group(vgpu::Device& device, int node_index,
                      const Entry* const* members, int k);

  const vgpu::GpuPerfModel& perf_;
  PackOptions options_;
  vgpu::Device* device_ = nullptr;  ///< round-scoped, set by begin_round
  const vgpu::graph::GraphExec* exec_ = nullptr;
  std::vector<std::vector<Entry>> lanes_;  ///< capacity kept across rounds
  std::vector<int> lane_streams_;
  int current_ = -1;
  PackRoundStats round_;
  // Scratch reused across barriers/dispatches (hot path: no allocations
  // once warm).
  std::vector<std::size_t> merge_pos_;
  std::vector<const Entry*> merge_members_;
  std::vector<int> commit_streams_;
  std::vector<int> block_job_;
};

}  // namespace fastpso::serve
