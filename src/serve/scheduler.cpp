#include "serve/scheduler.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <limits>

#include "common/check.h"

namespace fastpso::serve {

const char* to_string(Policy policy) {
  switch (policy) {
    case Policy::kFifo:
      return "fifo";
    case Policy::kPriority:
      return "priority";
    case Policy::kFair:
      return "fair";
  }
  return "?";
}

Policy policy_from_string(const std::string& name) {
  if (name == "fifo") {
    return Policy::kFifo;
  }
  if (name == "priority") {
    return Policy::kPriority;
  }
  if (name == "fair") {
    return Policy::kFair;
  }
  FASTPSO_CHECK_MSG(false, "unknown admission policy: " + name);
}

int default_stream_count() {
  const char* env = std::getenv("FASTPSO_SERVE_STREAMS");
  if (env != nullptr && env[0] != '\0') {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1 && parsed <= 64) {
      return static_cast<int>(parsed);
    }
  }
  return 4;
}

Scheduler::Scheduler(vgpu::Device& device, SchedulerOptions options)
    : device_(device),
      options_(options),
      cache_(device, options.fuse),
      batcher_(device.perf()),
      queue_(device.perf()) {
  FASTPSO_CHECK_MSG(options_.streams >= 1, "need at least one stream");
  FASTPSO_CHECK_MSG(options_.max_active >= 1, "need max_active >= 1");
  while (device_.stream_count() < options_.streams) {
    device_.create_stream();
  }
  streams_.reserve(static_cast<std::size_t>(options_.streams));
  for (int s = 0; s < options_.streams; ++s) {
    streams_.push_back(s);
  }
}

Scheduler::~Scheduler() {
  // Abandoned active jobs still hold device buffers that were allocated
  // through their private pools; destroy them with the matching pool
  // installed so every free finds its allocator.
  for (auto& job : active_) {
    if (job->run != nullptr) {
      device_.set_pool_override(job->pool.get());
      job->run.reset();
      device_.set_pool_override(nullptr);
    }
    job->pool.reset();
  }
}

int Scheduler::submit(JobSpec spec) {
  const core::PsoParams& p = spec.params;
  FASTPSO_CHECK_MSG(p.particles > 0 && p.dim > 0 && p.max_iter > 0,
                    "job needs positive particles, dim and max_iter");
  FASTPSO_CHECK_MSG(
      p.synchronization == core::Synchronization::kSynchronous,
      "serve schedules the synchronous pipeline only");
  FASTPSO_CHECK_MSG(!p.overlap_init,
                    "overlap_init is not schedulable: a served job owns "
                    "exactly one stream (the scheduler provides the "
                    "cross-job overlap instead)");
  if (p.topology == core::Topology::kRing) {
    FASTPSO_CHECK_MSG(p.technique == core::UpdateTechnique::kGlobalMemory,
                      "ring topology requires the global-memory technique");
    FASTPSO_CHECK_MSG(p.ring_neighbors >= 1 &&
                          2 * p.ring_neighbors + 1 <= p.particles,
                      "invalid ring neighborhood");
  }
  FASTPSO_CHECK_MSG(
      std::isfinite(spec.arrival_seconds) && spec.arrival_seconds >= 0.0,
      "job arrival time must be finite and non-negative");

  auto job = std::make_unique<Job>();
  job->id = next_id_++;
  job->shape = JobShape::of(spec);
  job->problem = problems::make_problem(spec.problem);  // throws on unknown
  job->objective = core::objective_from_problem(*job->problem, p.dim);
  job->spec = std::move(spec);
  const int id = job->id;
  pending_.push_back(std::move(job));
  ++tally_.jobs_submitted;
  return id;
}

void Scheduler::install(Job& job) {
  FASTPSO_CHECK_MSG(!installed_, "nested job install");
  installed_ = true;
  device_.swap_accounting(job.counters, job.breakdown);
  device_.set_pool_override(job.pool.get());
  device_.set_stream(job.stream);
}

void Scheduler::uninstall(Job& job) {
  FASTPSO_CHECK_MSG(installed_, "uninstall without install");
  installed_ = false;
  device_.set_stream(0);
  device_.set_pool_override(nullptr);
  device_.swap_accounting(job.counters, job.breakdown);
}

int Scheduler::pick_pending() const {
  const double clock = now();
  int best = -1;
  for (std::size_t i = 0; i < pending_.size(); ++i) {
    const Job& job = *pending_[i];
    if (job.spec.arrival_seconds > clock) {
      continue;  // not yet arrived on the modeled timeline
    }
    if (best < 0) {
      best = static_cast<int>(i);
      continue;
    }
    const Job& cur = *pending_[static_cast<std::size_t>(best)];
    switch (options_.policy) {
      case Policy::kFifo:
        break;  // earliest submission (lowest index) wins
      case Policy::kPriority:
        if (job.spec.priority > cur.spec.priority) {
          best = static_cast<int>(i);
        }
        break;
      case Policy::kFair: {
        const auto served = [this](const Job& j) -> std::uint64_t {
          const auto it = tenant_served_.find(j.spec.tenant);
          return it == tenant_served_.end() ? 0 : it->second;
        };
        if (served(job) < served(cur)) {
          best = static_cast<int>(i);
        }
        break;
      }
    }
  }
  return best;
}

void Scheduler::admit(std::size_t pending_index) {
  std::unique_ptr<Job> job = std::move(pending_[pending_index]);
  pending_.erase(pending_.begin() +
                 static_cast<std::ptrdiff_t>(pending_index));

  job->stream = streams_[next_stream_++ % streams_.size()];
  job->admit_seconds = now();
  ++tenant_served_[job->spec.tenant];

  // Private allocator: matches a fresh solo device's empty pool, and keeps
  // this job's cache warm-up invisible to every other job's accounting.
  job->pool = std::make_unique<vgpu::MemoryPool>(
      device_, job->spec.params.memory_caching);

  install(*job);
  job->run = std::make_unique<core::JobRun>(
      device_, job->spec.params, job->objective, core::JobRun::Mode::kServe);
  uninstall(*job);

  active_.push_back(std::move(job));
}

void Scheduler::admit_arrived() {
  while (static_cast<int>(active_.size()) < options_.max_active) {
    const int index = pick_pending();
    if (index < 0) {
      break;
    }
    admit(static_cast<std::size_t>(index));
  }
}

void Scheduler::advance_to_next_arrival() {
  double next = std::numeric_limits<double>::infinity();
  for (const auto& job : pending_) {
    next = std::min(next, job->spec.arrival_seconds);
  }
  const double gap = next - now();
  if (gap > 0 && std::isfinite(gap)) {
    // Open-loop idle: nothing to run until the next arrival. The gap is
    // modeled host time under the scheduler's own accounting — it advances
    // the shared clock but never touches any job's counters.
    device_.set_phase("serve");
    device_.add_modeled_host_seconds(gap);
    tally_.scheduler_seconds += gap;
  }
}

void Scheduler::round() {
  // Same-shape jobs step consecutively (shape-sorted cohorts, members in
  // admission order): this is the grouping the batch-packing model prices,
  // and it makes round order independent of pointer values or wall time.
  std::map<JobShape, std::vector<Job*>> cohorts;
  for (const auto& job : active_) {
    cohorts[job->shape].push_back(job.get());
  }

  for (auto& [shape, members] : cohorts) {
    // Executed packing path: a cohort of >= 2 replay-ready jobs steps in
    // lockstep and its element launches run as merged dispatches. The
    // sanitizer needs every launch inline and tracked, so it forces the
    // solo path (packing is an optimization, never a semantics change).
    if (options_.pack && options_.batching && options_.use_graphs &&
        members.size() >= 2 && !vgpu::san::active()) {
      if (vgpu::graph::GraphExec* exec = cache_.exec_mutable(shape)) {
        round_packed(shape, members, *exec);
        continue;
      }
    }

    std::uint64_t issued = 0;
    std::uint64_t packed = 0;
    std::uint64_t max_replay_launches = 0;
    int replayers = 0;

    for (Job* job : members) {
      if (job->first_iteration) {
        job->first_iteration = false;
        ++tally_.cache_lookups;
        if (options_.use_graphs && cache_.ready(shape)) {
          ++tally_.cache_hits;
        }
      }

      const std::uint64_t launches_before = job->counters.launches;
      install(*job);
      auto mode = GraphCache::IterationMode::kEager;
      if (options_.use_graphs) {
        mode = cache_.begin_iteration(shape, job->stream);
      }
      job->run->step();
      bool clean = true;
      if (options_.use_graphs) {
        clean = cache_.end_iteration(shape, mode);
      }
      uninstall(*job);
      const std::uint64_t delta = job->counters.launches - launches_before;

      ++tally_.iterations;
      issued += delta;
      if (mode == GraphCache::IterationMode::kReplay) {
        ++job->replayed;
        ++tally_.replayed_iterations;
        ++replayers;
        max_replay_launches = std::max(max_replay_launches, delta);
      } else {
        ++job->eager;
        ++tally_.eager_iterations;
        packed += delta;
        if (mode == GraphCache::IterationMode::kCapture && clean) {
          job->captured = true;
        }
      }
    }

    // Packing model: the replaying members of a cohort issue one shared
    // launch sequence (their clean replays prove the sequences match node
    // for node), so the packed count takes the largest member's launches
    // once — the union rule; members differing only by the conditional
    // gbest copy are covered by the longest sequence. Non-replaying
    // members (capture / eager) are never packed.
    if (replayers > 0) {
      packed += max_replay_launches;
    }
    tally_.launches_issued += issued;
    tally_.launches_real += issued;  // every launch executed itself
    tally_.launches_batched += options_.batching ? packed : issued;
    if (options_.batching && replayers >= 2) {
      if (const auto* exec = cache_.exec(shape)) {
        ++tally_.batch_rounds;
        tally_.batch_modeled_seconds_saved +=
            batcher_.packed_saving(shape, *exec, replayers);
      }
    }
  }

  // Finalize completed jobs in admission order (deterministic teardown).
  for (auto it = active_.begin(); it != active_.end();) {
    if ((*it)->run->done()) {
      finalize(std::move(*it));
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
}

std::uint64_t Scheduler::round_packed(const JobShape& shape,
                                      const std::vector<Job*>& members,
                                      vgpu::graph::GraphExec& exec) {
  auto options_it = pack_options_.find(shape);
  if (options_it == pack_options_.end()) {
    const std::int64_t elements =
        static_cast<std::int64_t>(shape.particles) * shape.dim;
    options_it =
        pack_options_.emplace(shape, PackOptions::resolve(elements)).first;
  }

  CohortRecord record;
  record.shape = shape;
  record.begin_seconds = now();

  queue_.begin_round(device_, exec, static_cast<int>(members.size()),
                     options_it->second);
  vgpu::PackSink* const previous_sink = device_.set_pack_sink(&queue_);

  // Lockstep substep stepping: every member runs the same sub-step of its
  // iteration, launches matched by its own replay session defer onto its
  // lane, and the barrier between substeps executes them packed. The cuts
  // (JobRun::step_front/middle/back) sit exactly at the iteration's host
  // read-backs, so no member ever reads data a deferred span still owes.
  std::vector<std::uint64_t> launches_before(members.size());
  bool poisoned = false;
  for (int sub = 0; sub < 3; ++sub) {
    for (std::size_t m = 0; m < members.size(); ++m) {
      Job* job = members[m];
      if (sub == 0 && job->first_iteration) {
        // A packed cohort only forms once the shape's exec is cached, so a
        // member's first iteration is by definition a cache hit.
        job->first_iteration = false;
        ++tally_.cache_lookups;
        ++tally_.cache_hits;
      }
      if (sub == 0) {
        // Read before install: install() swaps job->counters onto the
        // device, leaving the scheduler's own accumulators behind.
        launches_before[m] = job->counters.launches;
      }
      install(*job);
      if (sub == 0) {
        // sticky_slots is legal: the job's breakdown nodes are stable for
        // its lifetime (swap_accounting swaps map internals, it never
        // clear()s), and it removes the hottest per-replay fixed cost.
        job->session.sticky_slots = true;
        exec.set_replay_stream(job->session, job->stream);
        device_.begin_replay(exec, job->session);
      } else {
        device_.attach_replay(exec, job->session);
      }
      queue_.set_lane(static_cast<int>(m), job->stream);
      switch (sub) {
        case 0:
          job->run->step_front();
          break;
        case 1:
          job->run->step_middle();
          break;
        default:
          job->run->step_back();
          break;
      }
      queue_.set_lane(-1);
      if (sub == 2) {
        if (!device_.end_replay()) {
          poisoned = true;
        }
      } else {
        device_.detach_replay();
      }
      uninstall(*job);
    }
    queue_.flush_barrier(device_);
  }

  device_.set_pack_sink(previous_sink);
  const PackRoundStats packed = queue_.take_round();

  std::uint64_t issued = 0;
  for (std::size_t m = 0; m < members.size(); ++m) {
    Job* job = members[m];
    issued += job->counters.launches - launches_before[m];
    ++job->replayed;
    ++tally_.iterations;
    ++tally_.replayed_iterations;
    ++tally_.packed_iterations;
    record.job_ids.push_back(job->id);
    record.streams.push_back(job->stream);
  }
  if (poisoned) {
    // Same consequence as a diverged end_iteration: the shape runs eagerly
    // (and unpacked) from the next round on; this round's numbers are
    // unharmed — diverging launches fell through to eager accounting.
    cache_.poison(shape);
  }

  // Executed batch accounting: launches_batched/launches_real track the
  // dispatches that genuinely ran, and the credit is the executed saving
  // the merged dispatches realized (primary in pack mode — the priced
  // Batcher counterfactual never runs for packed cohorts).
  const std::uint64_t real =
      issued - packed.deferred + packed.dispatches + packed.inline_spans;
  tally_.launches_issued += issued;
  tally_.launches_batched += real;
  tally_.launches_real += real;
  ++tally_.batch_rounds;
  tally_.batch_modeled_seconds_saved += packed.executed_saved_seconds;
  ++tally_.packed_cohort_rounds;
  tally_.packed_deferred_launches += packed.deferred;
  tally_.packed_dispatches += packed.dispatches;
  tally_.packed_warp_dispatches += packed.warp_dispatches;

  record.end_seconds = now();
  record.dispatches = packed.dispatches;
  cohorts_.push_back(std::move(record));
  return issued;
}

void Scheduler::finalize(std::unique_ptr<Job> job) {
  JobOutcome out;
  out.id = job->id;
  out.shape = job->shape;
  out.stream = job->stream;
  out.priority = job->spec.priority;
  out.tenant = job->spec.tenant;
  out.submit_seconds = job->spec.arrival_seconds;
  out.admit_seconds = job->admit_seconds;
  out.replayed_iterations = job->replayed;
  out.eager_iterations = job->eager;
  out.captured = job->captured;

  install(*job);
  // finish() snapshots the job's counters at exactly the point a solo run
  // does (before the swarm buffers are destroyed)...
  out.result = job->run->finish();
  // ...then the run's buffers are freed with the job's pool still
  // installed, so every free finds the allocator that served it.
  job->run.reset();
  uninstall(*job);
  out.finish_seconds = device_.stream_clock(job->stream);
  // Pool teardown (returning cached blocks to the device) is scheduler
  // work, after the job's accounting is sealed — a solo run's Result
  // excludes its teardown frees the same way.
  job->pool.reset();

  tally_.serial_seconds += out.result.modeled_seconds;
  ++tally_.jobs_completed;
  outcomes_.push_back(std::move(out));
}

bool Scheduler::pump() {
  if (pending_.empty() && active_.empty()) {
    return false;
  }
  admit_arrived();
  if (active_.empty()) {
    advance_to_next_arrival();
    admit_arrived();
  }
  FASTPSO_CHECK_MSG(!active_.empty(), "scheduler stalled with pending jobs");
  round();
  return !(pending_.empty() && active_.empty());
}

void Scheduler::run() {
  while (pump()) {
  }
}

ServeStats Scheduler::stats() const {
  ServeStats stats = tally_;
  stats.graphs_captured = cache_.graphs_captured();
  stats.graphs_poisoned = cache_.graphs_poisoned();
  stats.graph_modeled_seconds_saved = cache_.graph_seconds_saved();
  stats.fusion_modeled_seconds_saved = cache_.fusion_seconds_saved();
  stats.codegen_registered_groups = cache_.codegen_registered_groups();
  stats.codegen_composed_groups = cache_.codegen_composed_groups();
  stats.makespan_seconds = device_.modeled_seconds();
  return stats;
}

std::vector<TraceEvent> Scheduler::trace() const {
  std::vector<TraceEvent> events;
  events.reserve(outcomes_.size());
  for (const JobOutcome& out : outcomes_) {
    TraceEvent ev;
    ev.name = "job" + std::to_string(out.id) + " " + out.shape.problem;
    ev.cat = "job";
    ev.ts_us = out.admit_seconds * 1e6;
    ev.dur_us = (out.finish_seconds - out.admit_seconds) * 1e6;
    ev.pid = 1;
    ev.tid = out.stream;  // one lane per stream
    ev.args = {
        {"shape", "\"" + json_escape(out.shape.to_string()) + "\""},
        {"iterations", std::to_string(out.result.iterations)},
        {"priority", std::to_string(out.priority)},
        {"tenant", std::to_string(out.tenant)},
        {"replayed", std::to_string(out.replayed_iterations)},
        {"eager", std::to_string(out.eager_iterations)},
    };
    events.push_back(std::move(ev));
  }
  // Packed cohort rounds: one event per member lane with a shared name and
  // identical timestamps, so the cohort reads as one bar spanning its k
  // job lanes in the viewer. Deterministic, golden-comparable.
  for (const CohortRecord& cohort : cohorts_) {
    std::string jobs = "[";
    for (std::size_t i = 0; i < cohort.job_ids.size(); ++i) {
      jobs += (i == 0 ? "" : ",") + std::to_string(cohort.job_ids[i]);
    }
    jobs += "]";
    for (std::size_t i = 0; i < cohort.job_ids.size(); ++i) {
      TraceEvent ev;
      ev.name = "cohort " + cohort.shape.problem + " k=" +
                std::to_string(cohort.job_ids.size());
      ev.cat = "pack";
      ev.ts_us = cohort.begin_seconds * 1e6;
      ev.dur_us = (cohort.end_seconds - cohort.begin_seconds) * 1e6;
      ev.pid = 1;
      ev.tid = cohort.streams[i];
      ev.args = {
          {"shape", "\"" + json_escape(cohort.shape.to_string()) + "\""},
          {"jobs", jobs},
          {"dispatches", std::to_string(cohort.dispatches)},
      };
      events.push_back(std::move(ev));
    }
  }
  return events;
}

std::vector<std::vector<std::pair<const void*, std::size_t>>>
Scheduler::active_buffer_spans() const {
  std::vector<std::vector<std::pair<const void*, std::size_t>>> spans;
  spans.reserve(active_.size());
  for (const auto& job : active_) {
    if (job->run != nullptr) {
      spans.push_back(job->run->buffer_spans());
    }
  }
  return spans;
}

}  // namespace fastpso::serve
