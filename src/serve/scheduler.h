// PSO-as-a-service: a concurrent job scheduler over one vgpu::Device.
//
// The scheduler accepts heterogeneous optimization jobs (mixed problems,
// dims, swarm sizes, iteration budgets) and multiplexes them onto a single
// shared device at iteration granularity: each scheduling round steps every
// active job once (core::JobRun::step), jobs are spread round-robin over a
// bounded stream pool so their kernel time overlaps on the modeled
// timeline, and admission follows a FIFO / priority / fair policy over the
// open-loop arrival queue.
//
// The contract that makes this safe to serve from is BITWISE EQUIVALENCE:
// every job's Result is byte-identical to the same spec run solo on a
// fresh device. Three mechanisms carry it —
//
//   * swap-in/swap-out accounting (Device::swap_accounting): every entry
//     into a job's device work is bracketed so the job's counters and
//     per-phase breakdown evolve through exactly the solo sequence of +=
//     operations from zero. A delta of doubles could not guarantee that
//     (FP addition is non-associative); a swap can.
//   * a private MemoryPool per job (Device::set_pool_override): pool cache
//     hits skip the device allocator, so a shared warm cache would make a
//     scheduled job's alloc accounting diverge from its solo run.
//   * per-job counter-based RNG (rng/philox): results depend only on
//     (seed, shape), never on what else the device ran.
//
// Scheduling therefore changes only *where on the shared timeline* a job's
// work lands (its stream clock), never what the work computes or accounts.
// On top of that, the scheduler reuses one instantiated graph per JobShape
// (serve::GraphCache) and packs same-shape cohorts' launches cross-job —
// either for real (options.pack / FASTPSO_SERVE_PACK=1: lockstep substep
// stepping with merged cohort dispatches, serve/packed.h) or as a priced
// counterfactual (serve::Batcher, the default). Both credits flow through
// ServeStats in the style of Result::graph_modeled_seconds() and are never
// folded into any job's numbers — packed execution preserves bitwise
// equivalence because deferral moves execution, not accounting.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/trace_export.h"
#include "core/job_run.h"
#include "core/objective.h"
#include "problems/problem.h"
#include "serve/batcher.h"
#include "serve/graph_cache.h"
#include "serve/job.h"
#include "serve/packed.h"
#include "serve/stats.h"
#include "vgpu/device.h"
#include "vgpu/memory_pool.h"

namespace fastpso::serve {

/// Admission order over arrived jobs.
enum class Policy : std::uint8_t {
  kFifo,      ///< submission order
  kPriority,  ///< highest JobSpec::priority first; ties by submission
  kFair,      ///< least-served tenant first; ties by submission
};

[[nodiscard]] const char* to_string(Policy policy);
/// Parses "fifo" / "priority" / "fair"; throws CheckError otherwise.
[[nodiscard]] Policy policy_from_string(const std::string& name);

/// Stream-pool width: FASTPSO_SERVE_STREAMS when set (clamped to [1, 64]),
/// else 4.
[[nodiscard]] int default_stream_count();

struct SchedulerOptions {
  Policy policy = Policy::kFifo;
  /// Streams jobs are spread over (round-robin; jobs may share a stream).
  int streams = default_stream_count();
  /// Concurrency cap: jobs admitted (holding device memory) at once.
  int max_active = 16;
  /// Shape-keyed graph capture/replay across jobs (serve::GraphCache).
  bool use_graphs = true;
  /// Run the fusion pass over each cached graph (reported credit).
  bool fuse = false;
  /// Price cross-job batch packing of same-shape cohorts (reported
  /// credit). With pack on, the priced model yields to the executed one.
  bool batching = true;
  /// EXECUTE cross-job packing (serve/packed.h): replaying same-shape
  /// cohorts step in lockstep and their element launches run as merged
  /// block/warp-per-job dispatches. Defaults to FASTPSO_SERVE_PACK=1.
  /// Requires use_graphs; disabled automatically under the sanitizer
  /// (san::active() runs need every launch inline and tracked).
  bool pack = pack_enabled_from_env();
};

class Scheduler {
 public:
  /// The device must outlive the scheduler and should be fresh (the
  /// scheduler does not reset it). Single-threaded, like the device.
  explicit Scheduler(vgpu::Device& device, SchedulerOptions options = {});
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Validates and enqueues a job; returns its id (dense, in submission
  /// order). Throws CheckError for specs the serve pipeline cannot run
  /// (asynchronous mode, overlap_init, invalid shapes, unknown problems).
  int submit(JobSpec spec);

  /// Runs one scheduling round: admits arrived jobs up to max_active
  /// (advancing the modeled clock to the next arrival when the device is
  /// idle), steps every active job once in shape-cohort order, and
  /// finalizes completed jobs. Returns true while work remains.
  bool pump();

  /// Drives pump() until every submitted job has completed.
  void run();

  /// Aggregate statistics; fully deterministic for a given submission
  /// sequence (no wall-clock or pointer-order dependence).
  [[nodiscard]] ServeStats stats() const;

  /// Completion records in finish order.
  [[nodiscard]] const std::vector<JobOutcome>& outcomes() const {
    return outcomes_;
  }

  /// Chrome-trace view of the schedule: one complete event per job on its
  /// stream's lane (tid = stream), timestamps in modeled microseconds.
  /// Deterministic — byte-compared as a golden by the serve tests.
  [[nodiscard]] std::vector<TraceEvent> trace() const;

  [[nodiscard]] const SchedulerOptions& options() const { return options_; }
  [[nodiscard]] int active_jobs() const {
    return static_cast<int>(active_.size());
  }
  [[nodiscard]] int pending_jobs() const {
    return static_cast<int>(pending_.size());
  }

  /// Device-buffer spans of every active job, one vector per job. The serve
  /// suite asserts pairwise disjointness across jobs (no cross-job buffer
  /// sharing — the isolation the per-job pools and swap accounting assume).
  [[nodiscard]] std::vector<
      std::vector<std::pair<const void*, std::size_t>>>
  active_buffer_spans() const;

 private:
  struct Job {
    int id = -1;
    JobSpec spec;
    JobShape shape;
    std::unique_ptr<problems::Problem> problem;
    core::Objective objective;
    std::unique_ptr<vgpu::MemoryPool> pool;
    std::unique_ptr<core::JobRun> run;
    /// Swap-bracket accumulators: this job's counters/breakdown while the
    /// job is not installed on the device.
    vgpu::DeviceCounters counters;
    TimeBreakdown breakdown;
    vgpu::Device::StreamId stream = 0;
    double admit_seconds = 0;
    std::uint64_t replayed = 0;
    std::uint64_t eager = 0;
    bool captured = false;
    bool first_iteration = true;
    /// Per-job replay cursor over the shape's shared exec, for the packed
    /// path's interleaved substep replays. sticky_slots is legal here: the
    /// job's breakdown is never clear()ed while the job lives.
    vgpu::graph::GraphExec::ReplaySession session;
  };

  /// One packed cohort round, for the trace view (one event spanning the
  /// member jobs' lanes).
  struct CohortRecord {
    JobShape shape;
    double begin_seconds = 0;
    double end_seconds = 0;
    std::uint64_t dispatches = 0;
    std::vector<int> job_ids;
    std::vector<int> streams;  ///< parallel to job_ids
  };

  [[nodiscard]] double now() const { return device_.modeled_seconds(); }

  /// Swaps the job's accounting onto the device and routes allocations and
  /// launches to its pool and stream. Brackets MUST be paired and never
  /// nested; uninstall restores the scheduler's own accounting.
  void install(Job& job);
  void uninstall(Job& job);

  void admit_arrived();
  /// Index into pending_ of the next job to admit under the policy, or -1.
  [[nodiscard]] int pick_pending() const;
  void admit(std::size_t pending_index);
  void round();
  /// Steps one replaying cohort in packed lockstep (front/middle/back with
  /// flush barriers); returns the launches its members accounted.
  std::uint64_t round_packed(const JobShape& shape,
                             const std::vector<Job*>& members,
                             vgpu::graph::GraphExec& exec);
  void finalize(std::unique_ptr<Job> job);
  void advance_to_next_arrival();

  vgpu::Device& device_;
  SchedulerOptions options_;
  GraphCache cache_;
  Batcher batcher_;
  CohortQueue queue_;
  std::map<JobShape, PackOptions> pack_options_;  ///< resolved per shape
  std::vector<CohortRecord> cohorts_;  ///< packed rounds, for trace()
  std::vector<vgpu::Device::StreamId> streams_;
  std::size_t next_stream_ = 0;
  std::vector<std::unique_ptr<Job>> pending_;  ///< submission order
  std::vector<std::unique_ptr<Job>> active_;   ///< admission order
  std::vector<JobOutcome> outcomes_;
  std::map<int, std::uint64_t> tenant_served_;  ///< kFair bookkeeping
  ServeStats tally_;  ///< accumulators; stats() adds derived fields
  int next_id_ = 0;
  bool installed_ = false;
};

}  // namespace fastpso::serve
