// Aggregate bookkeeping of one serve::Scheduler run.
//
// Every number here is either a real counter of issued device work or a
// credit in the style of Result::graph_modeled_seconds() /
// fused_modeled_seconds(): graph amortization, fused pricing and cross-job
// batch packing are accounted against the shape cache and NEVER folded
// into the eager clocks or any job's counters — solo-vs-scheduled results
// stay bitwise identical, and the savings are auditable side channels.
//
// Cross-job batching is a tri-state (see SchedulerOptions / README):
//   * packed (FASTPSO_SERVE_PACK=1 or options.pack): cohorts EXECUTE as
//     merged dispatches (serve/packed.h); launches_real genuinely drops
//     and batch_modeled_seconds_saved is the executed credit of those
//     dispatches (still a side channel — per-job numbers are untouched).
//   * priced (options.batching, the default): the Batcher models what
//     packing would save; launches_batched/batch_modeled_seconds_saved are
//     counterfactual and launches_real == launches_issued.
//   * off (options.batching = false): no packing numbers at all.
#pragma once

#include <cstdint>

namespace fastpso::serve {

struct ServeStats {
  // -- population ---------------------------------------------------------
  std::uint64_t jobs_submitted = 0;
  std::uint64_t jobs_completed = 0;
  std::uint64_t iterations = 0;  ///< scheduled job iterations executed

  // -- shape-keyed graph cache -------------------------------------------
  std::uint64_t cache_lookups = 0;  ///< one per job, at its first iteration
  std::uint64_t cache_hits = 0;     ///< shape already instantiated
  std::uint64_t graphs_captured = 0;   ///< distinct shapes instantiated
  std::uint64_t graphs_poisoned = 0;   ///< shapes forced eager (divergence)
  std::uint64_t replayed_iterations = 0;
  std::uint64_t eager_iterations = 0;  ///< capture + fallback iterations

  // -- cross-job batching (packed / priced tri-state, see header) ---------
  std::uint64_t launches_issued = 0;   ///< kernel launches accounted
  std::uint64_t launches_batched = 0;  ///< after block/warp-per-job packing
  std::uint64_t batch_rounds = 0;      ///< cohorts of >= 2 jobs packed
  double batch_modeled_seconds_saved = 0;
  /// Kernel dispatches that actually executed: in packed mode, issued
  /// launches minus deferred ones plus the cohort dispatches (and inline
  /// flush fallbacks) that replaced them; otherwise == launches_issued.
  std::uint64_t launches_real = 0;

  // -- executed packing engine (FASTPSO_SERVE_PACK=1, serve/packed.h) -----
  std::uint64_t packed_cohort_rounds = 0;  ///< cohorts stepped in lockstep
  std::uint64_t packed_iterations = 0;     ///< job iterations stepped packed
  std::uint64_t packed_deferred_launches = 0;  ///< launches deferred to lanes
  std::uint64_t packed_dispatches = 0;         ///< merged cohort dispatches
  std::uint64_t packed_warp_dispatches = 0;    ///< subset packed warp-per-job

  // -- graph amortization / fusion credit, summed over the cache ----------
  double graph_modeled_seconds_saved = 0;
  double fusion_modeled_seconds_saved = 0;

  // -- codegen recognition, summed over the cache -------------------------
  // Serve captures record no kernel bodies, so the compiled fused-loop
  // path (FASTPSO_CODEGEN) only *recognizes* groups here — fused groups
  // whose members all registered static kernels, and the subset matching a
  // composed single-pass loop (vgpu/graph/codegen.h).
  std::uint64_t codegen_registered_groups = 0;
  std::uint64_t codegen_composed_groups = 0;

  // -- timeline -----------------------------------------------------------
  double makespan_seconds = 0;   ///< device clock when the queue drained
  double serial_seconds = 0;     ///< sum of per-job modeled work
  double scheduler_seconds = 0;  ///< modeled idle gaps the scheduler added

  /// Fraction of jobs whose shape was already instantiated when they ran
  /// their first iteration.
  [[nodiscard]] double hit_rate() const {
    return cache_lookups > 0
               ? static_cast<double>(cache_hits) /
                     static_cast<double>(cache_lookups)
               : 0.0;
  }

  /// Fraction of issued launches the packing model removes (priced mode:
  /// the union-rule counterfactual; packed mode: launches_batched tracks
  /// the real dispatch count, so this equals real_launch_reduction()).
  [[nodiscard]] double batch_launch_reduction() const {
    return launches_issued > 0
               ? 1.0 - static_cast<double>(launches_batched) /
                           static_cast<double>(launches_issued)
               : 0.0;
  }

  /// Fraction of accounted launches that never executed as their own
  /// dispatch — the *measured* reduction the packed engine delivers
  /// (exactly 0 outside packed mode).
  [[nodiscard]] double real_launch_reduction() const {
    return launches_issued > 0
               ? 1.0 - static_cast<double>(launches_real) /
                           static_cast<double>(launches_issued)
               : 0.0;
  }

  // Each *_modeled_seconds() helper is an INDEPENDENT counterfactual
  // against the serial work total (the serve analogue of
  // Result::graph_modeled_seconds() — reported, never applied). The
  // credits answer different what-ifs and are not additive: do not sum
  // them against makespan_seconds or each other.

  /// Serial modeled work if same-shape cohort launches were block-packed.
  [[nodiscard]] double batched_modeled_seconds() const {
    return serial_seconds - batch_modeled_seconds_saved;
  }

  /// Serial modeled work under the graph cache's launch-setup elision.
  [[nodiscard]] double graph_modeled_seconds() const {
    return serial_seconds - graph_modeled_seconds_saved;
  }
};

}  // namespace fastpso::serve
