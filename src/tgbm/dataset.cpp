#include "tgbm/dataset.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "rng/xoshiro.h"

namespace fastpso::tgbm {
namespace {

/// Number of random step functions composing the synthetic target.
constexpr int kStepTerms = 24;
/// Materialized size caps for this environment.
constexpr std::int64_t kMaxActualRows = 20000;
constexpr int kMaxActualDims = 128;
constexpr int kMaxActualSparseDims = 4096;

DatasetSpec make_spec(std::string name, std::int64_t rows, int dims,
                      double density = 1.0) {
  DatasetSpec spec;
  spec.name = std::move(name);
  spec.rows = rows;
  spec.dims = dims;
  spec.actual_rows = std::min(rows, kMaxActualRows);
  // CSR storage only pays for nonzeros, so sparse sets keep far more of
  // their true dimensionality in memory.
  spec.actual_dims =
      std::min(dims, density < 1.0 ? kMaxActualSparseDims : kMaxActualDims);
  spec.density = density;
  return spec;
}

}  // namespace

DatasetSpec covtype_spec() { return make_spec("covtype", 580000, 54); }
DatasetSpec susy_spec() { return make_spec("susy", 5000000, 18); }
DatasetSpec higgs_spec() { return make_spec("higgs", 11000000, 28); }
DatasetSpec e2006_spec() {
  // LIBSVM's E2006-tfidf is ~0.8% dense.
  return make_spec("e2006", 16000, 150361, /*density=*/0.008);
}

std::vector<DatasetSpec> table5_specs() {
  return {covtype_spec(), susy_spec(), higgs_spec(), e2006_spec()};
}

Dataset generate_dataset(const DatasetSpec& spec, std::uint64_t seed) {
  FASTPSO_CHECK(spec.actual_rows > 0 && spec.actual_dims > 0);
  FASTPSO_CHECK(spec.density > 0.0 && spec.density <= 1.0);
  Dataset dataset;
  dataset.spec = spec;
  dataset.targets.resize(spec.actual_rows);

  rng::Xoshiro256 gen(seed + 0x7461626Cu);

  if (spec.is_sparse()) {
    // CSR: each row gets ~density * dims nonzeros at sorted random columns
    // with values in (0, 1] (zero stays the implicit value).
    const int nnz_per_row = std::max<int>(
        1, static_cast<int>(spec.density * spec.actual_dims));
    dataset.sparse.row_ptr.reserve(spec.actual_rows + 1);
    dataset.sparse.row_ptr.push_back(0);
    std::vector<std::int32_t> cols;
    for (std::int64_t r = 0; r < spec.actual_rows; ++r) {
      cols.clear();
      while (static_cast<int>(cols.size()) < nnz_per_row) {
        const auto c = static_cast<std::int32_t>(gen.next() %
                                                 spec.actual_dims);
        cols.push_back(c);
      }
      std::sort(cols.begin(), cols.end());
      cols.erase(std::unique(cols.begin(), cols.end()), cols.end());
      for (std::int32_t c : cols) {
        dataset.sparse.col.push_back(c);
        dataset.sparse.val.push_back(
            static_cast<float>(1.0 - gen.next_unit()));  // (0, 1]
      }
      dataset.sparse.row_ptr.push_back(
          static_cast<std::int64_t>(dataset.sparse.col.size()));
    }
  } else {
    dataset.features = HostMatrix<float>(
        static_cast<std::size_t>(spec.actual_rows), spec.actual_dims);
    for (std::int64_t r = 0; r < spec.actual_rows; ++r) {
      for (int c = 0; c < spec.actual_dims; ++c) {
        dataset.features(r, c) = static_cast<float>(gen.next_unit());
      }
    }
  }

  // Random step terms: target += weight * [x[f] > threshold].
  struct Step {
    int feature;
    float threshold;
    float weight;
  };
  std::vector<Step> steps(kStepTerms);
  for (auto& step : steps) {
    step.feature = static_cast<int>(gen.next() % spec.actual_dims);
    step.threshold = static_cast<float>(gen.next_unit());
    step.weight = static_cast<float>(gen.next_uniform(-2.0, 2.0));
  }

  for (std::int64_t r = 0; r < spec.actual_rows; ++r) {
    double y = 0.0;
    for (const auto& step : steps) {
      if (dataset.feature(r, step.feature) > step.threshold) {
        y += step.weight;
      }
    }
    // Mild Gaussian noise via sum of uniforms.
    double noise = 0.0;
    for (int k = 0; k < 4; ++k) {
      noise += gen.next_unit() - 0.5;
    }
    dataset.targets[r] = static_cast<float>(y + 0.2 * noise);
  }
  return dataset;
}

}  // namespace fastpso::tgbm
