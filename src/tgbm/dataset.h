// Synthetic datasets shaped like the UCI sets of the paper's Table 5.
//
// The paper trains ThunderGBM on covtype / SUSY / HIGGS / E2006 downloaded
// from the UCI repository. Those files are not available offline, so each
// dataset is substituted by a synthetic regression set with the same
// (#rows, #dims) shape and a tree-friendly target (a sum of random
// axis-aligned step functions plus noise). Generation happens at a reduced
// in-memory scale (`actual_rows` x `actual_dims`); the *declared* shape
// (`rows` x `dims`) drives all kernel cost declarations, so modeled
// training times correspond to the full-scale datasets. DESIGN.md §1
// documents this substitution.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/matrix.h"
#include "tgbm/sparse.h"

namespace fastpso::tgbm {

/// Declared (paper-scale) and materialized (in-memory) dataset shape.
struct DatasetSpec {
  std::string name;
  std::int64_t rows = 0;      ///< declared rows (cost model scale)
  int dims = 0;               ///< declared feature count
  std::int64_t actual_rows = 0;  ///< materialized rows
  int actual_dims = 0;           ///< materialized feature count
  /// Fraction of populated feature values; < 1 materializes CSR instead of
  /// a dense matrix (the e2006 shape).
  double density = 1.0;

  [[nodiscard]] bool is_sparse() const { return density < 1.0; }

  [[nodiscard]] double row_scale() const {
    return static_cast<double>(rows) / static_cast<double>(actual_rows);
  }
  [[nodiscard]] double dim_scale() const {
    return static_cast<double>(dims) / static_cast<double>(actual_dims);
  }
};

/// The four Table 5 datasets (declared shapes from the paper; materialized
/// shapes scaled to fit this environment).
DatasetSpec covtype_spec();
DatasetSpec susy_spec();
DatasetSpec higgs_spec();
DatasetSpec e2006_spec();
std::vector<DatasetSpec> table5_specs();

/// A materialized regression dataset: dense features OR CSR, per
/// spec.is_sparse().
struct Dataset {
  DatasetSpec spec;
  HostMatrix<float> features;  ///< actual_rows x actual_dims (dense case)
  CsrFeatures sparse;          ///< CSR nonzeros (sparse case)
  std::vector<float> targets;  ///< actual_rows

  /// Feature value independent of the storage format.
  [[nodiscard]] float feature(std::int64_t row, int col) const {
    return spec.is_sparse() ? sparse.at(row, col) : features(row, col);
  }
};

/// Generates the synthetic dataset for `spec`: features ~ U(0,1), target =
/// sum of `kStepTerms` random step functions + Gaussian noise. Deterministic
/// in `seed`.
Dataset generate_dataset(const DatasetSpec& spec, std::uint64_t seed);

}  // namespace fastpso::tgbm
