#include "tgbm/kernels.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "vgpu/perf_model.h"
#include "vgpu/tuned.h"

namespace fastpso::tgbm {
namespace {

/// Fixed setup cost every launched thread pays (index math, bounds checks).
constexpr double kThreadOverheadFlops = 24.0;
/// Per-thread descriptor traffic (node/feature metadata each thread loads
/// before its grid-stride loop). This is what makes items_per_thread a real
/// tradeoff: more items per thread amortize the descriptor, fewer threads
/// eventually lose occupancy.
constexpr double kThreadOverheadBytes = 8.0;
double clamp01(double x) { return std::clamp(x, 0.0, 0.999999); }

/// Index of `block_size` in kBlockChoices, or -1 if it is not a decodable
/// block size (hand-built configs).
int block_choice_index(int block_size) {
  for (std::size_t b = 0; b < kBlockChoices.size(); ++b) {
    if (kBlockChoices[b] == block_size) {
      return static_cast<int>(b);
    }
  }
  return -1;
}

KernelConfig decode_pair(double a, double b) {
  KernelConfig config;
  config.block_size =
      kBlockChoices[static_cast<std::size_t>(clamp01(a) * kBlockChoices.size())];
  config.items_per_thread =
      1 + static_cast<int>(clamp01(b) * kMaxItemsPerThread);
  return config;
}

template <typename T>
ConfigSet decode_position(std::span<const T> position) {
  FASTPSO_CHECK(!position.empty());
  ConfigSet configs;
  const std::size_t size = position.size();
  // The index pair (2k % size, (2k+1) % size) is periodic in k: period
  // size/2 for even sizes, size for odd ones. Decode one period and repeat
  // it — identical configs, and short positions (the d-sweeps) decode only
  // their few distinct pairs instead of all 25. ia tracks (2k) % size
  // incrementally; wrapping by subtraction avoids an integer divide per
  // component on this per-particle hot path.
  const std::size_t period = std::min<std::size_t>(
      size % 2 == 0 ? size / 2 : size, kNumKernels);
  std::size_t ia = 0;
  for (std::size_t k = 0; k < period; ++k) {
    std::size_t ib = ia + 1;
    if (ib >= size) {
      ib -= size;
    }
    configs[k] = decode_pair(static_cast<double>(position[ia]),
                             static_cast<double>(position[ib]));
    ia = ib + 1;
    if (ia >= size) {
      ia -= size;
    }
  }
  std::size_t src = 0;
  for (std::size_t k = period; k < kNumKernels; ++k) {
    configs[k] = configs[src];
    if (++src == period) {
      src = 0;
    }
  }
  return configs;
}

}  // namespace

std::array<KernelSite, kNumKernels> kernel_sites(const DatasetSpec& spec,
                                                 const GbmParams& params) {
  const double rows = static_cast<double>(spec.rows);
  const double dims = static_cast<double>(spec.dims);
  const double bins = params.bins;
  const double trees = params.trees;
  const double levels = params.depth;
  const double nodes_per_level = 8.0;  // average populated nodes
  // Per-row feature work: dense datasets touch every feature; the sparse
  // e2006-style shape is modeled through its nonzero density.
  const double nnz_per_row = std::min(dims, 4000.0);

  std::array<KernelSite, kNumKernels> sites;
  int k = 0;
  auto add = [&](std::string name, double launches, double items, double fpi,
                 double rbpi, double wbpi, double shpi = 0) {
    FASTPSO_CHECK(k < kNumKernels);
    sites[k++] = KernelSite{std::move(name), launches, items, fpi,
                            rbpi,            wbpi,     shpi};
  };

  // --- one-time data preparation ---------------------------------------
  add("find_cut_points", 1, dims * bins, 16, 64, 8);
  add("quantize_features", 1, rows * nnz_per_row / 64.0, 6 * 64, 4 * 64,
      1 * 64);
  add("build_csr_index", 1, rows, 8, 16, 8);
  add("colsample_mask", trees, dims, 4, 4, 1);
  add("row_sample_mask", trees, rows / 32.0, 5 * 32, 4, 4);

  // --- per boosting round ------------------------------------------------
  add("init_node_index", trees, rows, 2, 0, 4);
  add("update_gradients", trees, rows, 6, 12, 8);
  add("gradient_reduce", trees, rows, 2, 4, 0.1);

  // --- per tree level ------------------------------------------------------
  const double per_level = trees * levels;
  add("hist_build_root", trees, rows * nnz_per_row / 16.0, 3 * 16, 2 * 16, 1,
      /*shared=*/12.0);
  const double per_inner_level = trees * std::max(1.0, levels - 1.0);
  add("hist_build_node", per_inner_level, rows * nnz_per_row / 32.0, 3 * 32,
      2 * 32, 1, /*shared=*/12.0);
  add("hist_subtract", per_inner_level, nodes_per_level * dims * bins, 3, 16,
      8);
  add("best_split_gain", per_level, nodes_per_level * dims * bins, 12, 16, 2);
  add("best_split_reduce", per_level, nodes_per_level * dims, 4, 8, 0.5);
  add("split_broadcast", per_level, nodes_per_level, 8, 32, 32);
  add("partition_flags", per_level, rows, 5, 12, 1);
  add("partition_scan", per_level, rows / 8.0, 4 * 8, 4, 4);
  add("partition_scatter", per_level, rows, 3, 12, 8);
  add("node_index_update", per_level, rows, 3, 8, 4);
  add("node_stats_update", per_level, nodes_per_level * 2.0, 10, 32, 32);

  // --- per tree finalization -----------------------------------------------
  add("leaf_values", trees, 64, 8, 16, 8);
  add("update_predictions", trees, rows, 4, 12, 4);
  add("loss_eval", trees, rows / 4.0, 4 * 4, 4 * 4, 1);
  add("copy_tree_to_host", trees, 127, 2, 16, 16);
  add("tree_sync", trees, 1, 100, 0, 0);
  add("final_score", 1, rows, 6, 12, 4);
  FASTPSO_CHECK(k == kNumKernels);
  return sites;
}

LaunchPlan plan_launch(const KernelSite& site, const KernelConfig& config,
                       const vgpu::GpuSpec& spec) {
  LaunchPlan plan;
  const int block = std::min(config.block_size, spec.max_threads_per_block);
  const int ipt = std::max(1, config.items_per_thread);

  const double threads_wanted =
      std::max(1.0, std::ceil(site.work_items / ipt));
  std::int64_t grid = static_cast<std::int64_t>(
      std::ceil(threads_wanted / block));
  grid = std::clamp<std::int64_t>(grid, 1, 1 << 20);
  plan.config.block = block;
  plan.config.grid = grid;

  const double launched = static_cast<double>(plan.config.total_threads());
  // Tail quantization: idle threads still pay their setup overhead.
  const double overhead_flops = launched * kThreadOverheadFlops;
  // Blocks under two warps leave scheduler slots empty.
  const double block_eff =
      std::min(1.0, static_cast<double>(block) / (2.0 * spec.warp_size));

  plan.cost.flops =
      (site.work_items * site.flops_per_item + overhead_flops) / block_eff;
  plan.cost.dram_read_bytes = site.work_items * site.read_bytes_per_item +
                              launched * kThreadOverheadBytes;
  plan.cost.dram_write_bytes = site.work_items * site.write_bytes_per_item;

  if (site.shared_bytes_per_item > 0) {
    const double shared_per_block =
        site.shared_bytes_per_item * ipt * block;
    if (shared_per_block > static_cast<double>(spec.shared_mem_per_block)) {
      // Histogram no longer fits: privatized bins spill to global memory.
      plan.shared_spill = true;
      plan.cost.dram_read_bytes *= 2.0;
      plan.cost.dram_write_bytes *= 2.0;
    }
  }
  return plan;
}

ConfigSet default_configs() {
  ConfigSet configs;
  configs.fill(KernelConfig{.block_size = 256, .items_per_thread = 1});
  return configs;
}

ConfigSet tuned_configs(const DatasetSpec& spec, const GbmParams& params) {
  ConfigSet configs = default_configs();
  if (!vgpu::tuned::enabled()) {
    return configs;
  }
  const auto sites = kernel_sites(spec, params);
  for (int k = 0; k < kNumKernels; ++k) {
    const std::string prefix = vgpu::tuned::shape_key(
        "tgbm/" + sites[k].name,
        static_cast<std::int64_t>(sites[k].work_items));
    const int block = vgpu::tuned::lookup(prefix + "/block",
                                          configs[k].block_size);
    // Snap to the decodable choice set so TrainTimeModel's table fast path
    // still covers tuned configs.
    if (block_choice_index(block) >= 0) {
      configs[k].block_size = block;
    }
    configs[k].items_per_thread =
        std::clamp(vgpu::tuned::lookup(prefix + "/items",
                                       configs[k].items_per_thread),
                   1, kMaxItemsPerThread);
  }
  return configs;
}

ConfigSet configs_from_position(std::span<const float> position) {
  return decode_position(position);
}

ConfigSet configs_from_position(std::span<const double> position) {
  return decode_position(position);
}

TrainTimeModel::TrainTimeModel(const DatasetSpec& spec,
                               const GbmParams& params, vgpu::GpuSpec gpu)
    : model_(std::move(gpu)), sites_(kernel_sites(spec, params)) {
  for (int k = 0; k < kNumKernels; ++k) {
    for (std::size_t b = 0; b < kBlockChoices.size(); ++b) {
      for (int i = 0; i < kMaxItemsPerThread; ++i) {
        table_[k][b][i] = site_term(
            k, KernelConfig{.block_size = kBlockChoices[b],
                            .items_per_thread = i + 1});
      }
    }
  }
}

double TrainTimeModel::site_term(int k, const KernelConfig& config) const {
  const LaunchPlan plan = plan_launch(sites_[k], config, model_.spec());
  return sites_[k].launches *
         model_.kernel_seconds(
             static_cast<double>(plan.config.total_threads()), plan.cost);
}

double TrainTimeModel::seconds(const ConfigSet& configs) const {
  double total = 0.0;
  for (int k = 0; k < kNumKernels; ++k) {
    const KernelConfig& config = configs[k];
    const int b = block_choice_index(config.block_size);
    if (b >= 0 && config.items_per_thread >= 1 &&
        config.items_per_thread <= kMaxItemsPerThread) [[likely]] {
      total += table_[k][b][config.items_per_thread - 1];
    } else {
      total += site_term(k, config);
    }
  }
  return total;
}

double modeled_train_seconds(const DatasetSpec& spec, const GbmParams& params,
                             const ConfigSet& configs,
                             const vgpu::GpuSpec& gpu) {
  return TrainTimeModel(spec, params, gpu).seconds(configs);
}

}  // namespace fastpso::tgbm
