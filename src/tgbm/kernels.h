// The 25 tunable GPU kernels of MiniGBM (the ThunderGBM substitute) and
// their launch-configuration cost model.
//
// The paper's case study (Section 4.6, Table 5) uses FastPSO to choose the
// thread/block configuration of ThunderGBM's 25 GPU kernel functions; each
// kernel contributes two tunables (block size, items per thread), giving
// the 50-dimensional ThreadConf search space. MiniGBM mirrors this: a
// histogram-GBDT trainer whose kernels all launch through the plan computed
// here. The plan is the single source of truth for both
//   * the analytic objective `modeled_train_seconds` that PSO optimizes, and
//   * the real trainer's launches (tgbm/minigbm.h),
// so tuned configurations transfer between the two by construction.
//
// Configuration effects modeled (all mechanistic, none problem-specific):
//   * occupancy: too few threads (large items_per_thread) under-fill the
//     device (GpuPerfModel's occupancy terms);
//   * per-thread overhead: every launched thread pays fixed setup FLOPs, so
//     over-threading large kernels wastes compute;
//   * block efficiency: blocks under 2 warps schedule poorly;
//   * tail quantization: grid rounding launches idle threads;
//   * shared-memory fit: histogram-class kernels need shared bytes
//     proportional to block_size * items_per_thread; exceeding the per-block
//     budget spills to global memory (2x traffic).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "tgbm/dataset.h"
#include "vgpu/device.h"
#include "vgpu/perf_model.h"

namespace fastpso::tgbm {

/// Number of tunable GPU kernels (matches ThunderGBM's 25 in the paper).
inline constexpr int kNumKernels = 25;
/// Two tunables per kernel -> the paper's 50-dimensional ThreadConf space.
inline constexpr int kConfigDims = kNumKernels * 2;

/// GBDT training hyper-parameters (paper: 40 trees, depth 6).
struct GbmParams {
  int trees = 40;
  int depth = 6;
  float learning_rate = 0.1f;
  int bins = 64;
  std::uint64_t seed = 1;
};

/// Allowed block sizes (powers of two up to the device limit) and the
/// items-per-thread range the position decode can produce. These bound the
/// whole configuration space per kernel (6 x 16 points), which is what makes
/// TrainTimeModel's precomputed score table possible.
inline constexpr std::array<int, 6> kBlockChoices = {32, 64, 128, 256, 512,
                                                     1024};
inline constexpr int kMaxItemsPerThread = 16;

/// One kernel's launch configuration.
struct KernelConfig {
  int block_size = 256;
  int items_per_thread = 1;
};

using ConfigSet = std::array<KernelConfig, kNumKernels>;

/// Static description of one kernel site: how often it launches during a
/// full training run and what one work item costs.
struct KernelSite {
  std::string name;
  double launches = 1;         ///< per training run
  double work_items = 1;       ///< per launch
  double flops_per_item = 1;
  double read_bytes_per_item = 4;
  double write_bytes_per_item = 4;
  /// Shared bytes needed per (thread x item); > 0 marks histogram-class
  /// kernels subject to the shared-memory fit constraint.
  double shared_bytes_per_item = 0;
};

/// The 25 sites with launch counts / work shapes derived from the dataset's
/// DECLARED (full) scale and the training parameters.
std::array<KernelSite, kNumKernels> kernel_sites(const DatasetSpec& spec,
                                                 const GbmParams& params);

/// Resolved launch plan for one site under one configuration.
struct LaunchPlan {
  vgpu::LaunchConfig config;
  vgpu::KernelCostSpec cost;  ///< per single launch
  bool shared_spill = false;  ///< histogram did not fit in shared memory
};

/// Computes the launch plan (shape + modeled cost incl. penalties).
LaunchPlan plan_launch(const KernelSite& site, const KernelConfig& config,
                       const vgpu::GpuSpec& spec);

/// ThunderGBM-style defaults: 256-thread blocks, one item per thread.
ConfigSet default_configs();

/// Startup configs: default_configs() with per-site overrides from the
/// vgpu::tuned store (keys "tgbm/<site>/b<bucket>/block" and "/items",
/// bucket from the site's per-launch work items). With tuning off or no
/// matching entries this is exactly default_configs(), so callers can use
/// it unconditionally.
ConfigSet tuned_configs(const DatasetSpec& spec, const GbmParams& params);

/// Decodes a PSO position (values nominally in [0,1], clamped) into a
/// ConfigSet. Positions shorter/longer than kConfigDims wrap cyclically, so
/// the ThreadConf objective is well-defined for any dimension.
ConfigSet configs_from_position(std::span<const float> position);
ConfigSet configs_from_position(std::span<const double> position);

/// Modeled wall time of one full training run under `configs` — the
/// analytic function FastPSO optimizes in the case study.
double modeled_train_seconds(const DatasetSpec& spec, const GbmParams& params,
                             const ConfigSet& configs,
                             const vgpu::GpuSpec& gpu);

/// Precomputed evaluation state for modeled_train_seconds. The 25 sites and
/// the GPU model depend only on (dataset, params, gpu), not on the configs
/// being scored, yet deriving them per call costs ~50 heap allocations
/// (site names, the spec copy inside GpuPerfModel). Better: because each
/// kernel's configuration space is just kBlockChoices x kMaxItemsPerThread
/// points, construction evaluates every site's time contribution for every
/// reachable configuration up front; seconds() then sums 25 table lookups.
/// Hot callers — the ThreadConf objective scores one position per particle
/// per iteration — build one of these once and call seconds() per position.
/// Each table entry is produced by the identical arithmetic, in the identical
/// order, as modeled_train_seconds, so results are bit-for-bit the same.
class TrainTimeModel {
 public:
  TrainTimeModel(const DatasetSpec& spec, const GbmParams& params,
                 vgpu::GpuSpec gpu);

  /// Modeled training seconds under `configs` (== modeled_train_seconds).
  [[nodiscard]] double seconds(const ConfigSet& configs) const;

 private:
  /// One site's contribution: launches * kernel_seconds(plan(site, config)).
  [[nodiscard]] double site_term(int k, const KernelConfig& config) const;

  vgpu::GpuPerfModel model_;
  std::array<KernelSite, kNumKernels> sites_;
  /// table_[k][b][i] = site_term(k, {kBlockChoices[b], i + 1}). Configs
  /// outside the decode space (hand-built KernelConfigs) fall back to
  /// site_term directly.
  std::array<std::array<std::array<double, kMaxItemsPerThread>,
                        kBlockChoices.size()>,
             kNumKernels>
      table_{};
};

}  // namespace fastpso::tgbm
