#include "tgbm/minigbm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/stopwatch.h"
#include "vgpu/prof/prof.h"

namespace fastpso::tgbm {
namespace {

// Site indices into kernel_sites() — keep in sync with kernels.cpp.
enum Site : int {
  kFindCutPoints = 0,
  kQuantize = 1,
  kBuildCsr = 2,
  kColsample = 3,
  kRowSample = 4,
  kInitNodeIndex = 5,
  kUpdateGradients = 6,
  kGradientReduce = 7,
  kHistRoot = 8,
  kHistNode = 9,
  kHistSubtract = 10,
  kBestSplitGain = 11,
  kBestSplitReduce = 12,
  kSplitBroadcast = 13,
  kPartitionFlags = 14,
  kPartitionScan = 15,
  kPartitionScatter = 16,
  kNodeIndexUpdate = 17,
  kNodeStatsUpdate = 18,
  kLeafValues = 19,
  kUpdatePredictions = 20,
  kLossEval = 21,
  kCopyTree = 22,
  kTreeSync = 23,
  kFinalScore = 24,
};

/// One (gradient sum, count) histogram cell.
struct HistCell {
  double grad = 0;
  double count = 0;
};

}  // namespace

MiniGbm::MiniGbm(GbmParams params) : params_(params) {
  FASTPSO_CHECK(params_.trees > 0);
  FASTPSO_CHECK(params_.depth >= 1 && params_.depth <= 10);
  FASTPSO_CHECK(params_.bins >= 2 && params_.bins <= 256);
}

TrainResult MiniGbm::train(vgpu::Device& device, const Dataset& data,
                           const ConfigSet& configs) const {
  const auto sites = kernel_sites(data.spec, params_);
  const std::int64_t rows = data.spec.actual_rows;
  const int dims = data.spec.actual_dims;
  const int bins = params_.bins;
  const int depth = params_.depth;
  const int leaf_count = 1 << depth;

  Stopwatch watch;
  device.reset_counters();
  device.set_phase("tgbm");

  TrainResult result;
  result.trees = params_.trees;

  // Accounts one modeled launch of `site` under its tuned configuration;
  // the real computation below runs as plain host loops over the
  // materialized (reduced-scale) data. Costs are declared at paper scale.
  auto account = [&](int site) {
    const LaunchPlan plan =
        plan_launch(sites[site], configs[site], device.spec());
    vgpu::prof::KernelLabel klabel(sites[site].name.c_str());
    device.account_launch(plan.config, plan.cost);
    if (plan.shared_spill) {
      ++result.spilled_launches;
    }
  };

  const bool sparse = data.spec.is_sparse();

  // ---- one-time preparation: quantize features to bins -----------------
  // Dense: every value gets a bin. Sparse: only nonzeros are binned (into
  // bins 1..bins-1, since CSR values are positive); the implicit zeros
  // live in bin 0.
  account(kFindCutPoints);
  account(kQuantize);
  account(kBuildCsr);
  std::vector<std::uint8_t> binned;
  std::vector<std::uint8_t> binned_nnz;
  auto bin_of_value = [&](float x) {
    if (sparse) {
      const int b = 1 + static_cast<int>(x * (bins - 1));
      return static_cast<std::uint8_t>(std::clamp(b, 1, bins - 1));
    }
    return static_cast<std::uint8_t>(
        std::clamp(static_cast<int>(x * bins), 0, bins - 1));
  };
  if (sparse) {
    binned_nnz.resize(data.sparse.nnz());
    for (std::int64_t k = 0; k < data.sparse.nnz(); ++k) {
      binned_nnz[k] = bin_of_value(data.sparse.val[k]);
    }
  } else {
    binned.resize(static_cast<std::size_t>(rows) * dims);
    for (std::int64_t r = 0; r < rows; ++r) {
      for (int f = 0; f < dims; ++f) {
        binned[r * dims + f] = bin_of_value(data.features(r, f));
      }
    }
  }
  // Bin of (row, feature) independent of storage.
  auto bin_at = [&](std::int64_t r, int f) -> int {
    if (!sparse) {
      return binned[r * dims + f];
    }
    const auto begin = data.sparse.col.begin() + data.sparse.row_ptr[r];
    const auto end = data.sparse.col.begin() + data.sparse.row_ptr[r + 1];
    const auto it = std::lower_bound(begin, end, f);
    if (it != end && *it == f) {
      return binned_nnz[it - data.sparse.col.begin()];
    }
    return 0;
  };

  std::vector<float> predictions(rows, 0.0f);
  std::vector<float> gradients(rows, 0.0f);
  std::vector<int> node_index(rows, 0);

  // Per-node histograms and split decisions for the current level.
  std::vector<HistCell> hist;
  struct Split {
    int feature = -1;
    int bin = -1;
    double gain = 0;
  };

  for (int tree = 0; tree < params_.trees; ++tree) {
    account(kColsample);
    account(kRowSample);

    // Gradients of squared loss: g = prediction - target.
    account(kUpdateGradients);
    account(kGradientReduce);
    for (std::int64_t r = 0; r < rows; ++r) {
      gradients[r] = predictions[r] - data.targets[r];
    }

    account(kInitNodeIndex);
    std::fill(node_index.begin(), node_index.end(), 0);

    for (int level = 0; level < depth; ++level) {
      const int nodes = 1 << level;
      hist.assign(static_cast<std::size_t>(nodes) * dims * bins, HistCell{});

      // Histogram build (root kernel at level 0, node kernel below).
      // Sparse rows only touch their nonzeros; the zero bin is implied.
      account(level == 0 ? kHistRoot : kHistNode);
      if (level > 0) {
        account(kHistSubtract);
      }
      std::vector<HistCell> node_total(nodes);
      for (std::int64_t r = 0; r < rows; ++r) {
        const int node = node_index[r];
        const std::size_t base =
            (static_cast<std::size_t>(node) * dims) * bins;
        node_total[node].grad += gradients[r];
        node_total[node].count += 1.0;
        if (sparse) {
          for (std::int64_t k = data.sparse.row_ptr[r];
               k < data.sparse.row_ptr[r + 1]; ++k) {
            HistCell& cell =
                hist[base +
                     static_cast<std::size_t>(data.sparse.col[k]) * bins +
                     binned_nnz[k]];
            cell.grad += gradients[r];
            cell.count += 1.0;
          }
        } else {
          for (int f = 0; f < dims; ++f) {
            HistCell& cell = hist[base + static_cast<std::size_t>(f) * bins +
                                  binned[r * dims + f]];
            cell.grad += gradients[r];
            cell.count += 1.0;
          }
        }
      }

      // Best split per node by variance gain.
      account(kBestSplitGain);
      account(kBestSplitReduce);
      account(kSplitBroadcast);
      std::vector<Split> splits(nodes);
      for (int node = 0; node < nodes; ++node) {
        const std::size_t base = (static_cast<std::size_t>(node) * dims) * bins;
        const double total_grad = node_total[node].grad;
        const double total_count = node_total[node].count;
        if (total_count < 2) {
          continue;  // too few rows to split
        }
        const double parent_score = total_grad * total_grad / total_count;
        Split best;
        for (int f = 0; f < dims; ++f) {
          const std::size_t fbase = base + static_cast<std::size_t>(f) * bins;
          double left_grad = 0;
          double left_count = 0;
          if (sparse) {
            // Implicit zero bin: node totals minus the explicit bins.
            double explicit_grad = 0;
            double explicit_count = 0;
            for (int b = 1; b < bins; ++b) {
              explicit_grad += hist[fbase + b].grad;
              explicit_count += hist[fbase + b].count;
            }
            left_grad = total_grad - explicit_grad;
            left_count = total_count - explicit_count;
          }
          for (int b = 0; b + 1 < bins; ++b) {
            if (!sparse || b > 0) {
              left_grad += hist[fbase + b].grad;
              left_count += hist[fbase + b].count;
            }
            const double right_count = total_count - left_count;
            if (left_count < 1 || right_count < 1) {
              continue;
            }
            const double right_grad = total_grad - left_grad;
            const double gain = left_grad * left_grad / left_count +
                                right_grad * right_grad / right_count -
                                parent_score;
            if (gain > best.gain) {
              best = Split{f, b, gain};
            }
          }
        }
        splits[node] = best;
      }

      // Partition rows by their node's split decision.
      account(kPartitionFlags);
      account(kPartitionScan);
      account(kPartitionScatter);
      account(kNodeIndexUpdate);
      account(kNodeStatsUpdate);
      for (std::int64_t r = 0; r < rows; ++r) {
        const int node = node_index[r];
        const Split& split = splits[node];
        int child = 0;
        if (split.feature >= 0) {
          child = bin_at(r, split.feature) > split.bin ? 1 : 0;
        }
        node_index[r] = 2 * node + child;
      }
    }

    // Leaf values: -lr * mean gradient per leaf.
    account(kLeafValues);
    std::vector<double> leaf_grad(leaf_count, 0.0);
    std::vector<double> leaf_cnt(leaf_count, 0.0);
    for (std::int64_t r = 0; r < rows; ++r) {
      leaf_grad[node_index[r]] += gradients[r];
      leaf_cnt[node_index[r]] += 1.0;
    }
    std::vector<float> leaf_value(leaf_count, 0.0f);
    for (int leaf = 0; leaf < leaf_count; ++leaf) {
      if (leaf_cnt[leaf] > 0) {
        leaf_value[leaf] = static_cast<float>(
            -params_.learning_rate * leaf_grad[leaf] / leaf_cnt[leaf]);
      }
    }

    account(kUpdatePredictions);
    for (std::int64_t r = 0; r < rows; ++r) {
      predictions[r] += leaf_value[node_index[r]];
    }

    account(kLossEval);
    account(kCopyTree);
    account(kTreeSync);
    double sq = 0.0;
    for (std::int64_t r = 0; r < rows; ++r) {
      const double e = predictions[r] - data.targets[r];
      sq += e * e;
    }
    result.rmse_per_round.push_back(std::sqrt(sq / static_cast<double>(rows)));
  }

  account(kFinalScore);
  result.modeled_seconds = device.modeled_seconds();
  result.wall_seconds = watch.elapsed_s();
  return result;
}

}  // namespace fastpso::tgbm
