// MiniGBM: a real histogram-based gradient-boosted-decision-tree trainer on
// the virtual GPU — the ThunderGBM substitute for the paper's Table 5 case
// study (40 trees, depth 6, squared loss).
//
// Training genuinely runs: features are quantized to bins, per-level
// gradient histograms are accumulated, variance-gain splits are selected,
// rows are partitioned, and predictions/RMSE improve round over round (the
// test suite asserts this). Every kernel launches through the LaunchPlan of
// tgbm/kernels.h under the caller-supplied ConfigSet, with costs declared
// at the dataset's full (paper) scale — so the modeled training time
// responds to the kernel configuration exactly like the analytic objective
// PSO optimizes.
#pragma once

#include <cstdint>
#include <vector>

#include "tgbm/dataset.h"
#include "tgbm/kernels.h"
#include "vgpu/device.h"

namespace fastpso::tgbm {

/// Outcome of one training run.
struct TrainResult {
  std::vector<double> rmse_per_round;  ///< training RMSE after each tree
  double modeled_seconds = 0;          ///< paper-machine modeled time
  double wall_seconds = 0;             ///< real seconds in this environment
  int trees = 0;
  std::uint64_t spilled_launches = 0;  ///< histogram shared-memory spills

  [[nodiscard]] double final_rmse() const {
    return rmse_per_round.empty() ? 0.0 : rmse_per_round.back();
  }
};

/// Histogram-GBDT trainer. Dense datasets bin every feature value; sparse
/// (CSR) datasets bin only the nonzeros — zeros stay in the implicit bin 0,
/// whose per-node statistics are recovered as node totals minus the
/// explicit bins (the standard sparse-histogram trick).
class MiniGbm {
 public:
  explicit MiniGbm(GbmParams params);

  /// Trains on `data` with kernel configurations `configs`; all launches go
  /// through `device`. Deterministic in GbmParams::seed.
  TrainResult train(vgpu::Device& device, const Dataset& data,
                    const ConfigSet& configs) const;

  [[nodiscard]] const GbmParams& params() const { return params_; }

 private:
  GbmParams params_;
};

}  // namespace fastpso::tgbm
