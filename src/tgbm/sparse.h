// Sparse feature storage for the e2006-style high-dimensional dataset of
// Table 5 (16k rows x 150,361 features, ~1% dense). Dense materialization
// at that shape is wasteful and unrepresentative; real GBDT systems
// (including ThunderGBM) train such data from a CSR representation with
// implicit-zero handling, which MiniGbm reproduces.
#pragma once

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace fastpso::tgbm {

/// Compressed sparse rows over float feature values.
struct CsrFeatures {
  std::vector<std::int64_t> row_ptr;  ///< rows + 1 offsets into col/val
  std::vector<std::int32_t> col;      ///< feature index per nonzero
  std::vector<float> val;             ///< value per nonzero (in (0, 1])

  [[nodiscard]] std::int64_t rows() const {
    return static_cast<std::int64_t>(row_ptr.size()) - 1;
  }
  [[nodiscard]] std::int64_t nnz() const {
    return static_cast<std::int64_t>(col.size());
  }
  [[nodiscard]] double nnz_per_row() const {
    return rows() > 0 ? static_cast<double>(nnz()) / rows() : 0.0;
  }

  /// Value of feature `feature` in row `row` (0 when absent). Columns are
  /// sorted within a row; binary search.
  [[nodiscard]] float at(std::int64_t row, std::int32_t feature) const {
    FASTPSO_CHECK(row >= 0 && row < rows());
    const auto begin = col.begin() + row_ptr[row];
    const auto end = col.begin() + row_ptr[row + 1];
    const auto it = std::lower_bound(begin, end, feature);
    if (it != end && *it == feature) {
      return val[it - col.begin()];
    }
    return 0.0f;
  }
};

}  // namespace fastpso::tgbm
