#include "tgbm/threadconf.h"

namespace fastpso::tgbm {

ThreadConfProblem::ThreadConfProblem(DatasetSpec spec, GbmParams params,
                                     vgpu::GpuSpec gpu)
    : spec_(std::move(spec)), params_(params), gpu_(std::move(gpu)) {}

std::unique_ptr<problems::Problem> make_threadconf_problem() {
  return std::make_unique<ThreadConfProblem>();
}

}  // namespace fastpso::tgbm
