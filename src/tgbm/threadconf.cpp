#include "tgbm/threadconf.h"

#include <mutex>
#include <utility>
#include <vector>

namespace fastpso::tgbm {
namespace {

/// Equality over every field that feeds the TrainTimeModel's table:
/// kernel_sites reads (rows, dims) and the GbmParams; plan_launch and
/// kernel_seconds read the GpuSpec constants.
bool same_model_key(const DatasetSpec& sa, const GbmParams& pa,
                    const vgpu::GpuSpec& ga, const DatasetSpec& sb,
                    const GbmParams& pb, const vgpu::GpuSpec& gb) {
  return sa.rows == sb.rows && sa.dims == sb.dims &&
         pa.trees == pb.trees && pa.depth == pb.depth &&
         pa.learning_rate == pb.learning_rate && pa.bins == pb.bins &&
         ga.sm_count == gb.sm_count && ga.cores_per_sm == gb.cores_per_sm &&
         ga.clock_ghz == gb.clock_ghz &&
         ga.shared_mem_per_block == gb.shared_mem_per_block &&
         ga.max_threads_per_block == gb.max_threads_per_block &&
         ga.warp_size == gb.warp_size && ga.tensor_tflops == gb.tensor_tflops &&
         ga.eff_dram_bw_gbps == gb.eff_dram_bw_gbps &&
         ga.bw_saturation_threads == gb.bw_saturation_threads &&
         ga.bw_occupancy_exponent == gb.bw_occupancy_exponent &&
         ga.alu_efficiency == gb.alu_efficiency &&
         ga.sfu_cost_flops == gb.sfu_cost_flops &&
         ga.launch_overhead_us == gb.launch_overhead_us &&
         ga.barrier_overhead_us == gb.barrier_overhead_us;
}

/// Benchmarks construct one ThreadConfProblem per run, all with the same
/// default key; rebuilding the 2400-entry score table each time would cost
/// more than the smoke-scale evaluations it serves. The cache hands out one
/// immutable model per distinct key for the life of the process (keys are
/// machine descriptions — a handful at most).
std::shared_ptr<const TrainTimeModel> shared_train_time_model(
    const DatasetSpec& spec, const GbmParams& params,
    const vgpu::GpuSpec& gpu) {
  struct Entry {
    DatasetSpec spec;
    GbmParams params;
    vgpu::GpuSpec gpu;
    std::shared_ptr<const TrainTimeModel> model;
  };
  static std::mutex mutex;
  static std::vector<Entry> cache;
  std::scoped_lock lock(mutex);
  for (const Entry& entry : cache) {
    if (same_model_key(entry.spec, entry.params, entry.gpu, spec, params,
                       gpu)) {
      return entry.model;
    }
  }
  cache.push_back(Entry{spec, params, gpu,
                        std::make_shared<const TrainTimeModel>(spec, params,
                                                               gpu)});
  return cache.back().model;
}

}  // namespace

ThreadConfProblem::ThreadConfProblem(DatasetSpec spec, GbmParams params,
                                     vgpu::GpuSpec gpu)
    : spec_(std::move(spec)),
      params_(params),
      gpu_(std::move(gpu)),
      train_model_(shared_train_time_model(spec_, params_, gpu_)) {}

std::unique_ptr<problems::Problem> make_threadconf_problem() {
  return std::make_unique<ThreadConfProblem>();
}

}  // namespace fastpso::tgbm
