// The ThreadConf optimization problem (paper Section 4.1 & 4.6): find the
// thread/block configuration of MiniGBM's 25 GPU kernels that minimizes
// modeled training time.
//
// Positions live in [0,1]^d; consecutive pairs decode to one kernel's
// (block size, items per thread) via tgbm::configs_from_position. The
// canonical case-study dimensionality is 50 (25 kernels x 2); other
// dimensions wrap cyclically so the problem composes with the paper's
// d-sweeps (Figure 4 g/h).
#pragma once

#include <memory>

#include "problems/problem.h"
#include "tgbm/dataset.h"
#include "tgbm/kernels.h"
#include "vgpu/device_spec.h"

namespace fastpso::tgbm {

/// Modeled-training-time objective over kernel configurations.
class ThreadConfProblem final
    : public problems::ProblemBase<ThreadConfProblem> {
 public:
  /// Defaults to the HIGGS-shaped dataset and the paper's GBDT settings.
  explicit ThreadConfProblem(DatasetSpec spec = higgs_spec(),
                             GbmParams params = GbmParams{},
                             vgpu::GpuSpec gpu = vgpu::tesla_v100());

  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] double lower_bound() const override { return 0.0; }
  [[nodiscard]] double upper_bound() const override { return 1.0; }
  /// The true optimum is unknown (combinatorial landscape).
  [[nodiscard]] bool has_known_optimum() const override { return false; }
  [[nodiscard]] double optimum_value(int) const override { return 0.0; }
  [[nodiscard]] problems::EvalCost cost() const override {
    // ~25 launch-plan evaluations of a few dozen flops each per call; the
    // per-dim share keeps the model roughly right across dimensions.
    return {.flops_per_dim = 40.0, .transcendentals_per_dim = 0.0,
            .flops_fixed = 500.0, .vector_passes = 3.0};
  }

  template <typename T>
  [[nodiscard]] double eval_impl(const T* x, int dim) const {
    const ConfigSet configs =
        configs_from_position(std::span<const T>(x, static_cast<size_t>(dim)));
    // Milliseconds so error magnitudes are comfortable in float32. The
    // shared TrainTimeModel computes exactly modeled_train_seconds(spec_,
    // params_, configs, gpu_), with the sites and the per-config score table
    // derived once per (dataset, params, gpu) instead of per evaluation.
    return train_model_->seconds(configs) * 1e3;
  }

  [[nodiscard]] const DatasetSpec& dataset_spec() const { return spec_; }
  [[nodiscard]] const GbmParams& gbm_params() const { return params_; }

 private:
  DatasetSpec spec_;
  GbmParams params_;
  vgpu::GpuSpec gpu_;
  /// Derived from the three members above; shared across problem instances
  /// with the same key (benchmarks construct one problem per run) and
  /// immutable after construction, so concurrent OpenMP evaluations are safe.
  std::shared_ptr<const TrainTimeModel> train_model_;
  std::string name_ = "threadconf";
};

/// Factory matching problems::make_problem's signature style.
std::unique_ptr<problems::Problem> make_threadconf_problem();

}  // namespace fastpso::tgbm
