#include "tune/kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "core/init.h"
#include "core/launch_policy.h"
#include "core/params.h"
#include "core/swarm_state.h"
#include "core/swarm_update.h"
#include "serve/scheduler.h"
#include "vgpu/device.h"
#include "vgpu/perf_model.h"
#include "vgpu/reduce.h"
#include "vgpu/tuned.h"

namespace fastpso::tune {
namespace {

/// Eq. 3 resident-thread product (mirrors core/launch_policy.cpp).
constexpr std::int64_t kResidentThreadsPerSm = 2048;

int log2_ceil(int x) {
  int levels = 0;
  while ((1 << levels) < x) {
    ++levels;
  }
  return levels;
}

/// Element-wise swarm-update cost (mirrors core/swarm_update.cpp
/// update_cost): 10 flops/element, five matrices read + the gbest row,
/// two matrices written.
vgpu::KernelCostSpec swarm_cost(std::int64_t elements, int d, int barriers) {
  vgpu::KernelCostSpec cost;
  cost.flops = 10.0 * static_cast<double>(elements);
  cost.dram_read_bytes =
      (5.0 * static_cast<double>(elements) + d) * sizeof(float);
  cost.dram_write_bytes = 2.0 * static_cast<double>(elements) * sizeof(float);
  cost.barriers = barriers;
  return cost;
}

/// One argmin-reduction pass cost (mirrors vgpu/reduce.cpp reduce_cost).
vgpu::KernelCostSpec reduce_pass_cost(std::int64_t n, std::size_t elem_bytes,
                                      std::int64_t blocks,
                                      std::size_t out_bytes, int barriers,
                                      int block) {
  vgpu::KernelCostSpec cost;
  cost.flops = static_cast<double>(n) +
               (barriers > 0
                    ? static_cast<double>(blocks) * (block - 1)
                    : 0.0);
  cost.dram_read_bytes = static_cast<double>(n) * elem_bytes;
  cost.dram_write_bytes = static_cast<double>(blocks) * out_bytes;
  cost.barriers = barriers;
  return cost;
}

// --- executed-replay probes -------------------------------------------------

/// Brackets a probe with a ScopedTuning snapshot, installing `entries`
/// (empty = default geometry).
class ProbeGuard {
 public:
  explicit ProbeGuard(const StoreEntries& entries) {
    vgpu::tuned::install(entries);
    vgpu::tuned::set_enabled(!entries.empty());
  }

 private:
  vgpu::tuned::ScopedTuning guard_;
};

double probe_swarm(const vgpu::GpuSpec& gpu, const StoreEntries& entries,
                   const WorkloadShape& shape,
                   core::UpdateTechnique technique) {
  ProbeGuard guard(entries);
  vgpu::Device device(gpu);
  core::LaunchPolicy policy(device.spec());
  core::SwarmState state(device, shape.swarm, shape.dim);
  core::initialize_swarm(device, policy, state, 1, -1.0f, 1.0f, 0.5f);
  vgpu::DeviceArray<float> l_mat(device, state.elements());
  vgpu::DeviceArray<float> g_mat(device, state.elements());
  core::generate_weights(device, policy, state.elements(), 1, 0, l_mat,
                         g_mat);
  const core::PsoParams params;
  const core::UpdateCoefficients coeff =
      core::make_coefficients(params, -1.0, 1.0);
  const double before = device.modeled_seconds();
  core::swarm_update(device, policy, state, l_mat, g_mat, coeff, technique);
  return (device.modeled_seconds() - before) * 1e6;
}

double probe_reduce(const vgpu::GpuSpec& gpu, const StoreEntries& entries,
                    const WorkloadShape& shape) {
  ProbeGuard guard(entries);
  vgpu::Device device(gpu);
  vgpu::DeviceArray<float> data(device, shape.elements);
  for (std::int64_t i = 0; i < shape.elements; ++i) {
    data[i] = static_cast<float>((i * 2654435761ull) % 1000ull);
  }
  const double before = device.modeled_seconds();
  vgpu::reduce_argmin(device, data.data(), shape.elements);
  return (device.modeled_seconds() - before) * 1e6;
}

/// Jobs in the serve_pack mirror's (and probe's) waiting pool: a small
/// same-shape cohort in the tiny-job regime executed packing targets.
constexpr int kServePackPoolJobs = 12;

double probe_serve_pack(const vgpu::GpuSpec& gpu, const StoreEntries& entries,
                        const WorkloadShape& shape) {
  ProbeGuard guard(entries);
  // A packed serve run over the pool: PackOptions::resolve consults the
  // installed store, so the candidate's warp threshold and cohort width
  // drive the real cohort dispatches; the modeled makespan is the engine's
  // own account of the packed schedule.
  vgpu::Device device(gpu);
  serve::SchedulerOptions options;
  options.streams = 4;
  options.max_active = kServePackPoolJobs;
  options.use_graphs = true;
  options.batching = true;
  options.pack = true;
  serve::Scheduler scheduler(device, options);
  for (int j = 0; j < kServePackPoolJobs; ++j) {
    serve::JobSpec spec;
    spec.problem = "sphere";
    spec.params.particles = shape.swarm;
    spec.params.dim = shape.dim;
    spec.params.max_iter = 6;
    spec.params.seed = 1234u + static_cast<std::uint64_t>(j);
    scheduler.submit(spec);
  }
  scheduler.run();
  return scheduler.stats().makespan_seconds * 1e6;
}

double probe_tgbm(const tgbm::DatasetSpec& spec,
                  const tgbm::GbmParams& params, const vgpu::GpuSpec& gpu,
                  const StoreEntries& entries) {
  ProbeGuard guard(entries);
  // tuned_configs resolves through the installed store; the modeled train
  // time executes the exact plan_launch path the real trainer uses.
  const tgbm::ConfigSet configs = tgbm::tuned_configs(spec, params);
  return tgbm::modeled_train_seconds(spec, params, configs, gpu) * 1e6;
}

}  // namespace

std::string KernelFamily::point_string(const Point& point) const {
  std::string out;
  const auto& axes = space.axes();
  for (std::size_t i = 0; i < axes.size() && i < point.size(); ++i) {
    // ';' separator keeps the rendering a single CSV field.
    if (!out.empty()) {
      out += ";";
    }
    out += axes[i].name + "=" + std::to_string(point[i]);
  }
  return out;
}

std::vector<KernelFamily> engine_families(const vgpu::GpuSpec& gpu) {
  auto model = std::make_shared<vgpu::GpuPerfModel>(gpu);
  std::vector<KernelFamily> families;

  // --- launch_policy: element-kernel block size + items-per-thread floor --
  {
    KernelFamily family;
    family.name = "launch_policy";
    family.space.add_axis("block", {64, 128, 256, 512, 1024})
        .add_axis("ipt", {1, 2, 4, 8})
        .add_predicate("block/device_limit",
                       [limit = gpu.max_threads_per_block](const Point& p) {
                         return p[0] <= limit;
                       })
        .add_predicate("block/warp_aligned",
                       [warp = gpu.warp_size](const Point& p) {
                         return p[0] % warp == 0;
                       })
        .add_predicate("ipt/range", [](const Point& p) {
          return p[1] >= 1 && p[1] <= 16;
        });
    family.default_point = {256, 1};
    family.predicted_us = [model, gpu](const Point& p,
                                       const WorkloadShape& shape) {
      // Mirrors LaunchPolicy::for_elements_tuned.
      const std::int64_t block = p[0];
      const std::int64_t ipt = p[1];
      const std::int64_t cap_raw =
          static_cast<std::int64_t>(gpu.sm_count) * kResidentThreadsPerSm;
      const std::int64_t cap =
          std::max<std::int64_t>(block, cap_raw / block * block);
      std::int64_t wanted = std::min(shape.elements, cap);
      wanted = std::max<std::int64_t>(
          1, std::min(wanted, (shape.elements + ipt - 1) / ipt));
      const std::int64_t grid = (wanted + block - 1) / block;
      const double threads = static_cast<double>(grid * block);
      return model->kernel_seconds(threads,
                                   swarm_cost(shape.elements, shape.dim, 0)) *
             1e6;
    };
    family.entries = [](const Point& p, const WorkloadShape& shape) {
      const std::string prefix =
          vgpu::tuned::shape_key("launch_policy", shape.elements);
      return StoreEntries{{prefix + "/block", p[0]}, {prefix + "/ipt", p[1]}};
    };
    family.executed_us = [gpu](const StoreEntries& entries,
                               const WorkloadShape& shape) {
      return probe_swarm(gpu, entries, shape,
                         core::UpdateTechnique::kGlobalMemory);
    };
    families.push_back(std::move(family));
  }

  // --- reduce: shared-memory tree width + partial-grid cap ----------------
  {
    KernelFamily family;
    family.name = "reduce";
    family.space.add_axis("block", {32, 64, 128, 256, 512, 1024})
        .add_axis("max_blocks", {64, 128, 256, 512, 1024})
        .add_predicate("block/pow2",
                       [](const Point& p) {
                         return (p[0] & (p[0] - 1)) == 0;
                       })
        .add_predicate("block/device_limit",
                       [limit = gpu.max_threads_per_block](const Point& p) {
                         return p[0] <= limit;
                       })
        .add_predicate(
            "shared_fit",
            [shared = gpu.shared_mem_per_block](const Point& p) {
              // Argmin tree: float value + int64 index per tree slot.
              const std::size_t bytes =
                  static_cast<std::size_t>(p[0]) *
                  (sizeof(float) + sizeof(std::int64_t));
              return bytes <= shared;
            })
        .add_predicate("max_blocks/positive",
                       [](const Point& p) { return p[1] >= 1; });
    family.default_point = {256, 1024};
    family.predicted_us = [model](const Point& p,
                                  const WorkloadShape& shape) {
      // Mirrors vgpu/reduce.cpp reduce_argmin's two passes.
      const int block = p[0];
      const std::int64_t max_blocks = p[1];
      const std::int64_t n = shape.elements;
      const std::int64_t blocks =
          std::min<std::int64_t>((n + block - 1) / block, max_blocks);
      const double pass1 = model->kernel_seconds(
          static_cast<double>(blocks * block),
          reduce_pass_cost(n, sizeof(float), blocks,
                           sizeof(float) + sizeof(std::int64_t),
                           log2_ceil(block), block));
      const double pass2 = model->kernel_seconds(
          1.0, reduce_pass_cost(blocks, sizeof(float) + sizeof(std::int64_t),
                                blocks, 0, 0, block));
      return (pass1 + pass2) * 1e6;
    };
    family.entries = [](const Point& p, const WorkloadShape& shape) {
      const std::string prefix =
          vgpu::tuned::shape_key("reduce", shape.elements);
      return StoreEntries{{prefix + "/block", p[0]},
                          {prefix + "/max_blocks", p[1]}};
    };
    family.executed_us = [gpu](const StoreEntries& entries,
                               const WorkloadShape& shape) {
      return probe_reduce(gpu, entries, shape);
    };
    families.push_back(std::move(family));
  }

  // --- swarm_tile: shared-memory tile edge --------------------------------
  {
    KernelFamily family;
    family.name = "swarm_tile";
    family.space.add_axis("tile", {4, 8, 16, 32})
        .add_predicate("block/device_limit",
                       [limit = gpu.max_threads_per_block](const Point& p) {
                         return p[0] * p[0] <= limit;
                       })
        .add_predicate("block/warp_aligned",
                       [warp = gpu.warp_size](const Point& p) {
                         return (p[0] * p[0]) % warp == 0;
                       })
        .add_predicate(
            "shared_fit",
            [shared = gpu.shared_mem_per_block](const Point& p) {
              // Five tile^2 staging arrays + the gbest slice.
              const std::size_t bytes =
                  (5u * static_cast<std::size_t>(p[0]) * p[0] +
                   static_cast<std::size_t>(p[0])) *
                  sizeof(float);
              return bytes <= shared;
            });
    family.default_point = {core::kTileSize};
    family.predicted_us = [model, gpu](const Point& p,
                                       const WorkloadShape& shape) {
      // Mirrors core/swarm_update.cpp update_shared's geometry.
      const int tile = p[0];
      const std::int64_t tile_rows = (shape.swarm + tile - 1) / tile;
      const std::int64_t tile_cols = (shape.dim + tile - 1) / tile;
      const std::int64_t tiles = tile_rows * tile_cols;
      const std::int64_t block = tile * tile;
      // The default policy's resident cap, aligned to its 256 block.
      const std::int64_t cap_raw =
          static_cast<std::int64_t>(gpu.sm_count) * kResidentThreadsPerSm;
      const std::int64_t cap = std::max<std::int64_t>(256, cap_raw / 256 * 256);
      std::int64_t grid = std::min<std::int64_t>(
          tiles, cap / block + (cap % block != 0));
      grid = std::max<std::int64_t>(grid, 1);
      const std::int64_t trips = (tiles + grid - 1) / grid;
      return model->kernel_seconds(
                 static_cast<double>(grid * block),
                 swarm_cost(shape.elements, shape.dim,
                            static_cast<int>(2 * trips))) *
             1e6;
    };
    family.entries = [](const Point& p, const WorkloadShape& shape) {
      const std::string prefix =
          vgpu::tuned::shape_key("swarm_tile", shape.elements);
      return StoreEntries{{prefix + "/tile", p[0]}};
    };
    family.executed_us = [gpu](const StoreEntries& entries,
                               const WorkloadShape& shape) {
      return probe_swarm(gpu, entries, shape,
                         core::UpdateTechnique::kSharedMemory);
    };
    families.push_back(std::move(family));
  }

  // --- serve_pack: cross-job packing warp threshold + cohort width --------
  {
    KernelFamily family;
    family.name = "serve_pack";
    family.space.add_axis("warp_threshold_pct", {0, 25, 50, 75, 100})
        .add_axis("max_cohort", {2, 4, 8, 16, 32, 64})
        .add_predicate("threshold/range",
                       [](const Point& p) {
                         return p[0] >= 0 && p[0] <= 100;
                       })
        .add_predicate("max_cohort/range", [](const Point& p) {
          return p[1] >= 1 && p[1] <= 64;
        });
    // The PackOptions defaults (serve/packed.h).
    family.default_point = {50, 16};
    family.predicted_us = [model](const Point& p,
                                  const WorkloadShape& shape) {
      // Mirrors serve/packed.cpp dispatch_group over a waiting pool of
      // same-shape tiny jobs: the pool splits into cohorts of max_cohort,
      // each cohort's element launches merge into one dispatch — warp-
      // per-job below the threshold, block-per-job otherwise — priced by
      // the same GpuPerfModel entry point the engine accounts with.
      const double threshold = p[0] / 100.0;
      const int max_cohort = p[1];
      const std::int64_t n = shape.elements;
      const int block = 256;  // the element-launch default geometry
      const std::int64_t grid = (n + block - 1) / block;
      double total = 0;
      for (int begin = 0; begin < kServePackPoolJobs; begin += max_cohort) {
        const int k = std::min(max_cohort, kServePackPoolJobs - begin);
        const double per_job_threads = static_cast<double>(grid) * block;
        const bool warp_mode =
            k >= 2 && static_cast<double>(n) < threshold * per_job_threads &&
            (n + 31) / 32 <= block / 32;
        std::int64_t cfg_grid;
        if (warp_mode) {
          const std::int64_t warps_per_job =
              std::max<std::int64_t>((n + 31) / 32, 1);
          const std::int64_t jobs_per_block =
              std::max<std::int64_t>((block / 32) / warps_per_job, 1);
          cfg_grid = (k + jobs_per_block - 1) / jobs_per_block;
        } else {
          cfg_grid = grid * k;
        }
        const vgpu::KernelCostSpec one = swarm_cost(n, shape.dim, 0);
        vgpu::KernelCostSpec summed;
        summed.flops = one.flops * k;
        summed.transcendentals = one.transcendentals * k;
        summed.dram_read_bytes = one.dram_read_bytes * k;
        summed.dram_write_bytes = one.dram_write_bytes * k;
        total += model->kernel_seconds(
            static_cast<double>(cfg_grid) * block, summed);
      }
      return total * 1e6;
    };
    family.entries = [](const Point& p, const WorkloadShape& shape) {
      const std::string prefix =
          vgpu::tuned::shape_key("serve_pack", shape.elements);
      return StoreEntries{{prefix + "/warp_threshold_pct", p[0]},
                          {prefix + "/max_cohort", p[1]}};
    };
    family.executed_us = [gpu](const StoreEntries& entries,
                               const WorkloadShape& shape) {
      return probe_serve_pack(gpu, entries, shape);
    };
    families.push_back(std::move(family));
  }

  return families;
}

std::vector<KernelFamily> tgbm_site_families(const tgbm::DatasetSpec& spec,
                                             const tgbm::GbmParams& params,
                                             const vgpu::GpuSpec& gpu) {
  auto model = std::make_shared<vgpu::GpuPerfModel>(gpu);
  const auto sites = std::make_shared<
      const std::array<tgbm::KernelSite, tgbm::kNumKernels>>(
      tgbm::kernel_sites(spec, params));

  std::vector<int> items(tgbm::kMaxItemsPerThread);
  for (int i = 0; i < tgbm::kMaxItemsPerThread; ++i) {
    items[i] = i + 1;
  }

  std::vector<KernelFamily> families;
  for (int k = 0; k < tgbm::kNumKernels; ++k) {
    const tgbm::KernelSite& site = (*sites)[k];
    KernelFamily family;
    family.name = "tgbm/" + site.name;
    family.space
        .add_axis("block", {tgbm::kBlockChoices.begin(),
                            tgbm::kBlockChoices.end()})
        .add_axis("items", items)
        .add_predicate("block/device_limit",
                       [limit = gpu.max_threads_per_block](const Point& p) {
                         return p[0] <= limit;
                       });
    if (site.shared_bytes_per_item > 0) {
      family.space.add_predicate(
          "shared_fit",
          [per_item = site.shared_bytes_per_item,
           shared = gpu.shared_mem_per_block](const Point& p) {
            // The tuner never emits a spilling histogram configuration
            // (tgbm/kernels.cpp plan_launch's 2x-traffic penalty).
            return per_item * p[1] * p[0] <=
                   static_cast<double>(shared);
          });
    }
    family.default_point = {256, 1};
    family.predicted_us = [model, sites, k](const Point& p,
                                            const WorkloadShape&) {
      const tgbm::KernelConfig config{.block_size = p[0],
                                      .items_per_thread = p[1]};
      const tgbm::LaunchPlan plan =
          tgbm::plan_launch((*sites)[k], config, model->spec());
      return (*sites)[k].launches *
             model->kernel_seconds(
                 static_cast<double>(plan.config.total_threads()),
                 plan.cost) *
             1e6;
    };
    family.entries = [name = family.name](const Point& p,
                                          const WorkloadShape& shape) {
      const std::string prefix =
          vgpu::tuned::shape_key(name, shape.elements);
      return StoreEntries{{prefix + "/block", p[0]},
                          {prefix + "/items", p[1]}};
    };
    family.executed_us = [spec, params, gpu](const StoreEntries& entries,
                                             const WorkloadShape&) {
      return probe_tgbm(spec, params, gpu, entries);
    };
    families.push_back(std::move(family));
  }
  return families;
}

std::vector<WorkloadShape> tgbm_site_shapes(const tgbm::DatasetSpec& spec,
                                            const tgbm::GbmParams& params) {
  const auto sites = tgbm::kernel_sites(spec, params);
  std::vector<WorkloadShape> shapes;
  shapes.reserve(sites.size());
  const int swarm = static_cast<int>(
      std::min<std::int64_t>(spec.rows, std::numeric_limits<int>::max()));
  for (const tgbm::KernelSite& site : sites) {
    shapes.push_back({"tgbm/" + site.name,
                      static_cast<std::int64_t>(site.work_items), spec.dims,
                      swarm});
  }
  return shapes;
}

const KernelFamily* find_family(const std::vector<KernelFamily>& families,
                                std::string_view name) {
  for (const KernelFamily& family : families) {
    if (family.name == name) {
      return &family;
    }
  }
  return nullptr;
}

}  // namespace fastpso::tune
