// The tunable kernel families of the engine (DESIGN.md §13).
//
// A KernelFamily bundles everything the tuner needs to search one kernel's
// configuration space for one workload shape:
//   * its JoinedSpace (axes + validity predicates) and default point;
//   * predicted_us — the modeled-cost oracle: the family mirrors the exact
//     launch geometry its runtime consumer derives from a tuned point and
//     prices it with vgpu::GpuPerfModel, so predicted ordering matches what
//     the engine will report;
//   * entries — the vgpu::tuned store keys a point pins for a shape's
//     bucket (the producer half of the key schema the consumers look up);
//   * executed_us — the executed-replay probe: runs the real kernel on a
//     vgpu::Device with the entries installed (ScopedTuning-bracketed) and
//     returns the modeled time actually accrued, validating predictions
//     against the engine rather than the mirror.
//
// Families: "launch_policy" (element-wise block size + items-per-thread,
// consumer core::LaunchPolicy), "reduce" (tree width + partial-grid cap,
// consumer vgpu::reduce), "swarm_tile" (shared-memory tile edge, consumer
// core::swarm_update), "serve_pack" (cross-job packing warp-utilization
// threshold + cohort width, consumer serve::PackOptions::resolve), and one
// "tgbm/<site>" family per MiniGBM kernel site (consumer
// tgbm::tuned_configs / plan_launch).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "tgbm/dataset.h"
#include "tgbm/kernels.h"
#include "tune/shapes.h"
#include "tune/space.h"
#include "vgpu/device_spec.h"

namespace fastpso::tune {

/// Store entries one configuration point pins for one shape's bucket.
using StoreEntries = std::map<std::string, int>;

struct KernelFamily {
  std::string name;  ///< family label == WorkloadShape::kernel
  JoinedSpace space;
  Point default_point;
  /// Modeled cost (microseconds) of one launch of this family's kernel
  /// over `shape` under `point`. Pure function of (point, shape).
  std::function<double(const Point&, const WorkloadShape&)> predicted_us;
  /// vgpu::tuned store entries `point` pins for `shape`'s bucket.
  std::function<StoreEntries(const Point&, const WorkloadShape&)> entries;
  /// Executed-replay probe: modeled microseconds the real kernel accrues
  /// on a fresh Device with `entries` installed (empty = default
  /// geometry). Null when the family has no cheap executed form.
  std::function<double(const StoreEntries&, const WorkloadShape&)>
      executed_us;

  /// "axis=value;axis=value" rendering of a point (table provenance).
  [[nodiscard]] std::string point_string(const Point& point) const;
};

/// The engine's three launch-geometry families on `gpu`.
std::vector<KernelFamily> engine_families(const vgpu::GpuSpec& gpu);

/// One family per MiniGBM kernel site for (spec, params) on `gpu`, named
/// "tgbm/<site>"; includes the shared-memory fit predicate for
/// histogram-class sites so no spilling configuration is ever emitted.
std::vector<KernelFamily> tgbm_site_families(const tgbm::DatasetSpec& spec,
                                             const tgbm::GbmParams& params,
                                             const vgpu::GpuSpec& gpu);

/// Workload shapes matching tgbm_site_families (one per site, elements =
/// the site's per-launch work items).
std::vector<WorkloadShape> tgbm_site_shapes(const tgbm::DatasetSpec& spec,
                                            const tgbm::GbmParams& params);

/// Family with the given name, or nullptr.
const KernelFamily* find_family(const std::vector<KernelFamily>& families,
                                std::string_view name);

}  // namespace fastpso::tune
