#include "tune/shapes.h"

#include <algorithm>
#include <map>
#include <utility>

#include "vgpu/tuned.h"

namespace fastpso::tune {

std::string ShapeGroup::key() const {
  return kernel + "/b" + std::to_string(bucket);
}

std::vector<ShapeGroup> group_shapes(std::vector<WorkloadShape> shapes) {
  std::map<std::pair<std::string, int>, ShapeGroup> groups;
  for (WorkloadShape& shape : shapes) {
    const int bucket = vgpu::tuned::elements_bucket(shape.elements);
    auto [it, inserted] =
        groups.try_emplace({shape.kernel, bucket}, ShapeGroup{});
    ShapeGroup& group = it->second;
    if (inserted) {
      group.kernel = shape.kernel;
      group.bucket = bucket;
    }
    group.shapes.push_back(std::move(shape));
  }

  std::vector<ShapeGroup> out;
  out.reserve(groups.size());
  for (auto& [key, group] : groups) {
    auto order = [](const WorkloadShape& a, const WorkloadShape& b) {
      return std::tie(a.elements, a.dim, a.swarm) <
             std::tie(b.elements, b.dim, b.swarm);
    };
    std::sort(group.shapes.begin(), group.shapes.end(), order);
    group.shapes.erase(std::unique(group.shapes.begin(), group.shapes.end()),
                       group.shapes.end());
    // Largest member represents the group (the bucket's lookup serves it
    // too, and the big shape dominates the bucket's runtime); the sort puts
    // the smaller dim first among equal element counts.
    for (const WorkloadShape& shape : group.shapes) {
      if (shape.elements > group.representative.elements ||
          group.representative.kernel.empty()) {
        group.representative = shape;
      }
    }
    out.push_back(std::move(group));
  }
  return out;
}

std::vector<WorkloadShape> smoke_shapes() {
  // The Table 1 smoke geometries used across the bench suite, plus the
  // paper-scale run.
  struct Geometry {
    int swarm;
    int dim;
  };
  constexpr Geometry kGeometries[] = {
      {256, 16}, {512, 32}, {1024, 50}, {2048, 64}, {5000, 200}};

  std::vector<WorkloadShape> shapes;
  for (const Geometry& g : kGeometries) {
    const std::int64_t elements =
        static_cast<std::int64_t>(g.swarm) * g.dim;
    // Element-wise update launches over n*d; reductions over n.
    shapes.push_back({"launch_policy", elements, g.dim, g.swarm});
    shapes.push_back({"swarm_tile", elements, g.dim, g.swarm});
    shapes.push_back({"reduce", g.swarm, g.dim, g.swarm});
  }
  // The serve layer's cross-job packing knobs tune on the tiny-job
  // geometries (bench/serve_load --tiny table): the regime where warp-
  // per-job sub-packing and cohort width actually matter.
  constexpr Geometry kTinyGeometries[] = {
      {8, 2}, {8, 4}, {16, 2}, {16, 4}, {8, 8}, {16, 8}};
  for (const Geometry& g : kTinyGeometries) {
    const std::int64_t elements =
        static_cast<std::int64_t>(g.swarm) * g.dim;
    shapes.push_back({"serve_pack", elements, g.dim, g.swarm});
  }
  return shapes;
}

}  // namespace fastpso::tune
