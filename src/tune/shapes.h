// Workload shapes and shape grouping (DESIGN.md §13).
//
// A WorkloadShape is one concrete launch the engine performs: a kernel
// family label plus the problem geometry (swarm size n, problem dim d, and
// the derived element count the kernel iterates over). Tuning every exact
// shape would overfit and bloat the tables, so shapes cluster into
// ShapeGroups keyed on (kernel, power-of-two element bucket) — the same
// bucketing vgpu::tuned uses at lookup time, so one searched group covers
// every shape that will consult its entry. Grouping is deterministic:
// sorted by key, representative = the group's largest shape (ties to the
// smaller dim), independent of input order.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fastpso::tune {

/// One concrete workload: kernel family label x problem geometry.
struct WorkloadShape {
  std::string kernel;        ///< family label ("reduce", "launch_policy", ...)
  std::int64_t elements = 1; ///< items the kernel iterates over
  int dim = 1;               ///< problem dimensionality d
  int swarm = 1;             ///< swarm size n

  [[nodiscard]] bool operator==(const WorkloadShape&) const = default;
};

/// A cluster of shapes sharing one tuned-table entry.
struct ShapeGroup {
  std::string kernel;
  int bucket = 0;  ///< vgpu::tuned::elements_bucket of every member
  WorkloadShape representative;
  std::vector<WorkloadShape> shapes;

  /// Canonical group key, equal to the tuned-store key prefix this group's
  /// winning configuration is emitted under: "<kernel>/b<bucket>".
  [[nodiscard]] std::string key() const;
};

/// Clusters shapes into groups. Deterministic: output sorted by key, group
/// members sorted by (elements, dim, swarm), duplicates removed.
std::vector<ShapeGroup> group_shapes(std::vector<WorkloadShape> shapes);

/// The engine's smoke shapes: the four Table 1 problem geometries (plus the
/// paper-scale 5000 x 200 run) expanded over the engine kernel families —
/// the standard input of the tuner smoke search (bench/tune_search, CI).
std::vector<WorkloadShape> smoke_shapes();

}  // namespace fastpso::tune
