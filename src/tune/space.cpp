#include "tune/space.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace fastpso::tune {
namespace {

double clamp01(double x) { return std::clamp(x, 0.0, 0.999999); }

/// Index of `value` in `axis.values` (-1 if absent).
int value_index(const Axis& axis, int value) {
  for (std::size_t i = 0; i < axis.values.size(); ++i) {
    if (axis.values[i] == value) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

}  // namespace

JoinedSpace& JoinedSpace::add_axis(std::string name, std::vector<int> values) {
  FASTPSO_CHECK(!values.empty());
  axes_.push_back(Axis{std::move(name), std::move(values)});
  return *this;
}

JoinedSpace& JoinedSpace::add_predicate(
    std::string name, std::function<bool(const Point&)> ok) {
  predicates_.push_back(Predicate{std::move(name), std::move(ok)});
  return *this;
}

int JoinedSpace::axis_index(std::string_view name) const {
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    if (axes_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

std::int64_t JoinedSpace::cardinality() const {
  std::int64_t total = 1;
  for (const Axis& axis : axes_) {
    total *= static_cast<std::int64_t>(axis.values.size());
  }
  return total;
}

bool JoinedSpace::valid(const Point& point) const {
  return first_violation(point).empty();
}

std::string JoinedSpace::first_violation(const Point& point) const {
  if (point.size() != axes_.size()) {
    return "arity";
  }
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    if (value_index(axes_[i], point[i]) < 0) {
      return "domain/" + axes_[i].name;
    }
  }
  for (const Predicate& predicate : predicates_) {
    if (!predicate.ok(point)) {
      return predicate.name;
    }
  }
  return "";
}

Point JoinedSpace::decode(std::span<const float> position) const {
  FASTPSO_CHECK(!position.empty());
  Point point(axes_.size());
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    const double x =
        clamp01(static_cast<double>(position[i % position.size()]));
    const auto& values = axes_[i].values;
    point[i] = values[static_cast<std::size_t>(x * values.size())];
  }
  return point;
}

std::vector<Point> JoinedSpace::enumerate_valid() const {
  std::vector<Point> out;
  Point point(axes_.size());
  // Odometer over axis value indices, most-significant axis first, so the
  // output order is lexicographic and deterministic.
  std::vector<std::size_t> idx(axes_.size(), 0);
  while (true) {
    for (std::size_t i = 0; i < axes_.size(); ++i) {
      point[i] = axes_[i].values[idx[i]];
    }
    if (valid(point)) {
      out.push_back(point);
    }
    std::size_t carry = axes_.size();
    while (carry > 0) {
      --carry;
      if (++idx[carry] < axes_[carry].values.size()) {
        break;
      }
      idx[carry] = 0;
      if (carry == 0) {
        return out;
      }
    }
  }
}

std::vector<Point> JoinedSpace::neighbors(const Point& point) const {
  std::vector<Point> out;
  if (point.size() != axes_.size()) {
    return out;
  }
  for (std::size_t i = 0; i < axes_.size(); ++i) {
    const int idx = value_index(axes_[i], point[i]);
    if (idx < 0) {
      continue;
    }
    for (const int step : {-1, 1}) {
      const int other = idx + step;
      if (other < 0 ||
          other >= static_cast<int>(axes_[i].values.size())) {
        continue;
      }
      Point neighbor = point;
      neighbor[i] = axes_[i].values[static_cast<std::size_t>(other)];
      if (valid(neighbor)) {
        out.push_back(std::move(neighbor));
      }
    }
  }
  return out;
}

}  // namespace fastpso::tune
