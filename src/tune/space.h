// Joined configuration subspaces with validity predicates (DESIGN.md §13).
//
// A kernel family's tunables — block size, items per thread, reduce tree
// width, tile edge, partial-grid cap — are each a small discrete Axis. A
// JoinedSpace is their cross product joined by named validity predicates
// (occupancy, shared-memory arena fit, divisibility), the AMOS-style
// construction of SNIPPETS.md snippets 1-3: the search only ever scores
// points that every predicate admits, so no invalid configuration can be
// emitted into a tuned table (a property test_tune.cpp pins).
//
// Points decode from PSO positions exactly like the Table 5 ThreadConf
// study decodes kernel configs (clamp01(x) * choices indexing), which is
// what lets FastPSO itself search these spaces.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

namespace fastpso::tune {

/// One discrete tunable: a named, ordered list of admissible values.
struct Axis {
  std::string name;
  std::vector<int> values;
};

/// A configuration point: one chosen value per axis, in axis order.
using Point = std::vector<int>;

/// A named validity predicate over a full point (axis-order values).
struct Predicate {
  std::string name;
  std::function<bool(const Point&)> ok;
};

/// Cross product of axes filtered by predicates.
class JoinedSpace {
 public:
  JoinedSpace& add_axis(std::string name, std::vector<int> values);
  JoinedSpace& add_predicate(std::string name,
                             std::function<bool(const Point&)> ok);

  [[nodiscard]] const std::vector<Axis>& axes() const { return axes_; }
  [[nodiscard]] int axis_count() const {
    return static_cast<int>(axes_.size());
  }
  /// Index of the named axis (-1 if absent).
  [[nodiscard]] int axis_index(std::string_view name) const;

  /// Unfiltered cross-product size.
  [[nodiscard]] std::int64_t cardinality() const;

  /// True when every predicate admits `point` (which must have one value
  /// per axis, each drawn from that axis's value list).
  [[nodiscard]] bool valid(const Point& point) const;
  /// Name of the first predicate rejecting `point`, or "" when valid.
  [[nodiscard]] std::string first_violation(const Point& point) const;

  /// Decodes a PSO position (one [0,1] component per axis; shorter
  /// positions wrap cyclically) into a point via clamp01(x)*size indexing —
  /// the ThreadConf decode generalized to arbitrary axes.
  [[nodiscard]] Point decode(std::span<const float> position) const;

  /// All valid points in lexicographic axis order (for exhaustive probes
  /// and the validity property tests; spaces here are tiny).
  [[nodiscard]] std::vector<Point> enumerate_valid() const;

  /// Neighbors of `point` along each axis (index +/- 1), valid ones only.
  [[nodiscard]] std::vector<Point> neighbors(const Point& point) const;

 private:
  std::vector<Axis> axes_;
  std::vector<Predicate> predicates_;
};

}  // namespace fastpso::tune
