#include "tune/table.h"

#include <charconv>
#include <fstream>
#include <system_error>
#include <utility>

#include "common/trace_export.h"
#include "vgpu/tuned.h"

namespace fastpso::tune {
namespace {

/// Shortest representation that round-trips the exact double, so
/// save -> load -> save is byte-identical.
std::string format_double(double value) {
  char buf[64];
  const auto result = std::to_chars(buf, buf + sizeof(buf), value);
  return std::string(buf, result.ptr);
}

// --- rigid scanner for the format to_json() emits --------------------------

struct Cursor {
  const std::string& text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\n' || text[pos] == '\t' ||
            text[pos] == '\r' || text[pos] == ',')) {
      ++pos;
    }
  }
  bool eat(char c) {
    skip_ws();
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }
  bool peek(char c) {
    skip_ws();
    return pos < text.size() && text[pos] == c;
  }
};

bool parse_string(Cursor& c, std::string* out) {
  if (!c.eat('"')) {
    return false;
  }
  out->clear();
  while (c.pos < c.text.size() && c.text[c.pos] != '"') {
    char ch = c.text[c.pos++];
    if (ch == '\\' && c.pos < c.text.size()) {
      const char esc = c.text[c.pos++];
      switch (esc) {
        case 'n': ch = '\n'; break;
        case 't': ch = '\t'; break;
        case 'r': ch = '\r'; break;
        default: ch = esc; break;
      }
    }
    out->push_back(ch);
  }
  return c.eat('"');
}

bool parse_number(Cursor& c, double* out) {
  c.skip_ws();
  const char* begin = c.text.data() + c.pos;
  const char* end = c.text.data() + c.text.size();
  const auto result = std::from_chars(begin, end, *out);
  if (result.ec != std::errc{}) {
    return false;
  }
  c.pos += static_cast<std::size_t>(result.ptr - begin);
  return true;
}

}  // namespace

void TunedTable::install() const { vgpu::tuned::install(store_); }

std::string TunedTable::to_json() const {
  std::string out;
  out += "{\n  \"fastpso_tuned_table\": 1,\n  \"groups\": [";
  bool first = true;
  for (const GroupResult& group : groups_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    {\"key\": \"" + json_escape(group.key) + "\", \"point\": \"" +
           json_escape(group.point) + "\", \"default_us\": " +
           format_double(group.default_us) + ", \"tuned_us\": " +
           format_double(group.tuned_us) + ", \"executed_default_us\": " +
           format_double(group.executed_default_us) +
           ", \"executed_tuned_us\": " +
           format_double(group.executed_tuned_us) + "}";
  }
  out += first ? "],\n" : "\n  ],\n";
  out += "  \"store\": {";
  first = true;
  for (const auto& [key, value] : store_) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"" + json_escape(key) + "\": " + std::to_string(value);
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string TunedTable::to_csv() const {
  std::string out =
      "group,point,default_us,tuned_us,predicted_speedup,"
      "executed_default_us,executed_tuned_us,executed_speedup\n";
  for (const GroupResult& group : groups_) {
    const double predicted_speedup =
        group.tuned_us > 0 ? group.default_us / group.tuned_us : 1.0;
    const double executed_speedup =
        group.executed_tuned_us > 0
            ? group.executed_default_us / group.executed_tuned_us
            : 1.0;
    out += group.key + "," + group.point + "," +
           format_double(group.default_us) + "," +
           format_double(group.tuned_us) + "," +
           format_double(predicted_speedup) + "," +
           format_double(group.executed_default_us) + "," +
           format_double(group.executed_tuned_us) + "," +
           format_double(executed_speedup) + "\n";
  }
  return out;
}

bool TunedTable::save_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out.good()) {
    return false;
  }
  out << to_json();
  return out.good();
}

bool TunedTable::save_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out.good()) {
    return false;
  }
  out << to_csv();
  return out.good();
}

std::optional<TunedTable> TunedTable::load(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    return std::nullopt;
  }
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return parse(text);
}

std::optional<TunedTable> TunedTable::parse(const std::string& json) {
  TunedTable table;
  Cursor c{json};
  const std::size_t groups_pos = json.find("\"groups\"");
  if (groups_pos == std::string::npos) {
    return std::nullopt;
  }
  c.pos = groups_pos + 8;
  if (!c.eat(':') || !c.eat('[')) {
    return std::nullopt;
  }
  while (c.peek('{')) {
    c.eat('{');
    GroupResult group;
    while (!c.peek('}')) {
      std::string field;
      if (!parse_string(c, &field) || !c.eat(':')) {
        return std::nullopt;
      }
      if (field == "key" || field == "point") {
        std::string value;
        if (!parse_string(c, &value)) {
          return std::nullopt;
        }
        (field == "key" ? group.key : group.point) = std::move(value);
      } else {
        double value = 0;
        if (!parse_number(c, &value)) {
          return std::nullopt;
        }
        if (field == "default_us") {
          group.default_us = value;
        } else if (field == "tuned_us") {
          group.tuned_us = value;
        } else if (field == "executed_default_us") {
          group.executed_default_us = value;
        } else if (field == "executed_tuned_us") {
          group.executed_tuned_us = value;
        }
      }
    }
    c.eat('}');
    table.groups_.push_back(std::move(group));
  }
  if (!c.eat(']')) {
    return std::nullopt;
  }

  const std::size_t store_pos = json.find("\"store\"", c.pos);
  if (store_pos == std::string::npos) {
    return std::nullopt;
  }
  c.pos = store_pos + 7;
  if (!c.eat(':') || !c.eat('{')) {
    return std::nullopt;
  }
  while (c.peek('"')) {
    std::string key;
    double value = 0;
    if (!parse_string(c, &key) || !c.eat(':') || !parse_number(c, &value)) {
      return std::nullopt;
    }
    table.store_[key] = static_cast<int>(value);
  }
  if (!c.eat('}')) {
    return std::nullopt;
  }
  return table;
}

}  // namespace fastpso::tune
