// Tuned-config tables: the deterministic artifact the tuner emits and the
// runtime loads (DESIGN.md §13).
//
// A TunedTable carries two things:
//   * the flat key -> int store the runtime consumes (vgpu::tuned keys:
//     "launch_policy/b9/block", "reduce/b12/max_blocks", ...), and
//   * per-group provenance: which point won each shape group and its
//     predicted / executed-replay costs against the defaults — the
//     predicted-vs-executed record bench/tune_search reports.
//
// Serialization is deterministic: keys in sorted order, groups in emission
// order, doubles via shortest-round-trip formatting. load() parses exactly
// the format save() writes, so save -> load -> save is byte-identical
// (pinned by test_tune.cpp); the "store" section is also what
// vgpu::tuned::load_file scans at startup under FASTPSO_TUNED=1.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace fastpso::tune {

/// Outcome of tuning one shape group.
struct GroupResult {
  std::string key;          ///< ShapeGroup::key(), also the store prefix
  std::string point;        ///< winning point, "axis=value;..." form
  double default_us = 0;    ///< predicted cost of the default config
  double tuned_us = 0;      ///< predicted cost of the winning config
  double executed_default_us = 0;  ///< executed-replay probe (0: not probed)
  double executed_tuned_us = 0;
};

class TunedTable {
 public:
  void set(const std::string& key, int value) { store_[key] = value; }
  void add_group(GroupResult result) {
    groups_.push_back(std::move(result));
  }

  [[nodiscard]] const std::map<std::string, int>& store() const {
    return store_;
  }
  [[nodiscard]] const std::vector<GroupResult>& groups() const {
    return groups_;
  }

  /// Installs the store into the vgpu::tuned runtime (does not flip the
  /// master toggle).
  void install() const;

  /// Deterministic JSON / CSV renderings.
  [[nodiscard]] std::string to_json() const;
  [[nodiscard]] std::string to_csv() const;

  bool save_json(const std::string& path) const;
  bool save_csv(const std::string& path) const;

  /// Parses a table previously produced by to_json()/save_json().
  static std::optional<TunedTable> load(const std::string& path);
  static std::optional<TunedTable> parse(const std::string& json);

 private:
  std::map<std::string, int> store_;
  std::vector<GroupResult> groups_;
};

}  // namespace fastpso::tune
