#include "tune/tuner.h"

#include <algorithm>
#include <span>
#include <utility>

#include "core/objective.h"
#include "core/optimizer.h"
#include "core/params.h"
#include "vgpu/device.h"
#include "vgpu/tuned.h"

namespace fastpso::tune {
namespace {

/// Penalty returned for predicate-violating points: far above any modeled
/// kernel time, so the swarm is repelled but the objective stays finite.
constexpr double kInvalidPenaltyUs = 1e9;

}  // namespace

int TuneReport::improved_groups() const {
  int count = 0;
  for (const GroupOutcome& outcome : outcomes) {
    count += outcome.improved() ? 1 : 0;
  }
  return count;
}

Tuner::Tuner(vgpu::GpuSpec gpu, TunerOptions options)
    : gpu_(std::move(gpu)), options_(options) {}

GroupOutcome Tuner::tune_group(const KernelFamily& family,
                               const ShapeGroup& group) const {
  // The search itself must run on default geometry: a previously loaded
  // table would otherwise perturb the searching optimizer's own launches
  // (and the executed probes install their own candidate entries).
  vgpu::tuned::ScopedTuning guard;
  vgpu::tuned::set_enabled(false);

  const WorkloadShape& shape = group.representative;
  const JoinedSpace& space = family.space;

  // (a) FastPSO over [0,1]^axes with the modeled-cost oracle.
  const core::Objective objective = core::make_objective(
      "tune/" + group.key(), 0.0, 1.0,
      [&family, &space, &shape](const float* x, int dim) {
        const Point point =
            space.decode(std::span<const float>(x, static_cast<size_t>(dim)));
        if (!space.valid(point)) {
          return kInvalidPenaltyUs;
        }
        return family.predicted_us(point, shape);
      });

  core::PsoParams params;
  params.particles = options_.particles;
  params.dim = space.axis_count();
  params.max_iter = options_.iterations;
  params.seed = options_.seed;
  vgpu::Device search_device(gpu_);
  core::Optimizer optimizer(search_device, params);
  const core::Result result = optimizer.optimize(objective);

  // (b) candidate slate: default, gbest, gbest's valid axis neighbors.
  std::vector<Point> candidates;
  candidates.push_back(family.default_point);
  const Point gbest = space.decode(std::span<const float>(
      result.gbest_position.data(), result.gbest_position.size()));
  if (space.valid(gbest)) {
    candidates.push_back(gbest);
    for (Point& neighbor : space.neighbors(gbest)) {
      candidates.push_back(std::move(neighbor));
    }
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  GroupOutcome outcome;
  outcome.key = group.key();
  outcome.default_point = family.default_point;
  outcome.default_us = family.predicted_us(family.default_point, shape);
  outcome.tuned_point = family.default_point;
  outcome.tuned_us = outcome.default_us;
  for (const Point& candidate : candidates) {
    const double cost = family.predicted_us(candidate, shape);
    // Strict <: ties keep the earlier (lexicographically smaller, default-
    // inclusive) point, so the winner is deterministic.
    if (cost < outcome.tuned_us) {
      outcome.tuned_us = cost;
      outcome.tuned_point = candidate;
    }
  }

  // (c) executed-replay validation: if the engine's own accounting says the
  // winner is not at least as fast as the default, demote it.
  if (options_.executed_probe && family.executed_us) {
    outcome.executed_default_us = family.executed_us(StoreEntries{}, shape);
    outcome.executed_tuned_us = family.executed_us(
        family.entries(outcome.tuned_point, shape), shape);
    if (outcome.executed_tuned_us > outcome.executed_default_us) {
      outcome.tuned_point = family.default_point;
      outcome.tuned_us = outcome.default_us;
      outcome.executed_tuned_us = outcome.executed_default_us;
    }
  }

  outcome.point_string = family.point_string(outcome.tuned_point);
  return outcome;
}

TuneReport Tuner::tune(const std::vector<KernelFamily>& families,
                       const std::vector<WorkloadShape>& shapes) const {
  TuneReport report;
  for (const ShapeGroup& group : group_shapes(shapes)) {
    const KernelFamily* family = find_family(families, group.kernel);
    if (family == nullptr) {
      continue;
    }
    GroupOutcome outcome = tune_group(*family, group);

    GroupResult result;
    result.key = outcome.key;
    result.point = outcome.point_string;
    result.default_us = outcome.default_us;
    result.tuned_us = outcome.tuned_us;
    result.executed_default_us = outcome.executed_default_us;
    result.executed_tuned_us = outcome.executed_tuned_us;
    report.table.add_group(std::move(result));

    if (outcome.tuned_point != outcome.default_point) {
      for (const auto& [key, value] :
           family->entries(outcome.tuned_point, group.representative)) {
        report.table.set(key, value);
      }
    }
    report.outcomes.push_back(std::move(outcome));
  }
  return report;
}

ThreadConfSearch search_threadconf(const tgbm::ThreadConfProblem& problem,
                                   int particles, int iterations,
                                   std::uint64_t seed) {
  core::PsoParams pso;
  pso.particles = particles;
  pso.dim = tgbm::kConfigDims;  // 25 kernels x 2 = the paper's 50 dims
  pso.max_iter = iterations;
  pso.seed = seed;
  vgpu::Device tuner_device;
  core::Optimizer optimizer(tuner_device, pso);
  ThreadConfSearch search{
      optimizer.optimize(core::objective_from_problem(problem, pso.dim)),
      {}};
  search.configs = tgbm::configs_from_position(
      std::span<const float>(search.result.gbest_position));
  return search;
}

}  // namespace fastpso::tune
