// The offline autotuner: searches each shape group's JoinedSpace with
// FastPSO itself (DESIGN.md §13).
//
// Per group the tuner (a) runs a small PSO over [0,1]^axes whose objective
// decodes positions into configuration points and scores valid ones with
// the family's GpuPerfModel-based predicted cost (invalid points get a
// large penalty, so the swarm is repelled from predicate violations but
// nothing invalid can ever win); (b) forms a candidate slate — the default
// point, the PSO gbest, and the gbest's valid axis neighbors — and picks
// the predicted-cost argmin, so the tuned choice can never be predicted
// worse than the default; (c) optionally validates with the family's
// executed-replay probe, demoting to the default if the real engine
// disagrees with the prediction. Winning non-default points are emitted
// into a TunedTable; every search runs under a ScopedTuning snapshot with
// tuning disabled, so a loaded table never perturbs the tuner itself.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/result.h"
#include "tgbm/kernels.h"
#include "tgbm/threadconf.h"
#include "tune/kernels.h"
#include "tune/shapes.h"
#include "tune/table.h"
#include "vgpu/device_spec.h"

namespace fastpso::tune {

struct TunerOptions {
  int particles = 48;        ///< PSO swarm size per group search
  int iterations = 24;       ///< PSO iterations per group search
  std::uint64_t seed = 42;
  bool executed_probe = true;  ///< run executed-replay validation
};

/// Outcome of tuning one shape group.
struct GroupOutcome {
  std::string key;          ///< ShapeGroup::key()
  Point default_point;
  Point tuned_point;        ///< == default_point when nothing beat it
  std::string point_string; ///< tuned point, "axis=value;..." form
  double default_us = 0;    ///< predicted
  double tuned_us = 0;      ///< predicted
  double executed_default_us = 0;  ///< 0 when not probed
  double executed_tuned_us = 0;

  /// Strict predicted improvement over the default configuration.
  [[nodiscard]] bool improved() const { return tuned_us < default_us; }
};

struct TuneReport {
  TunedTable table;
  std::vector<GroupOutcome> outcomes;

  [[nodiscard]] int improved_groups() const;
};

class Tuner {
 public:
  explicit Tuner(vgpu::GpuSpec gpu, TunerOptions options = {});

  /// Tunes every group of `shapes` whose kernel label names a family in
  /// `families`; groups without a family are skipped.
  [[nodiscard]] TuneReport tune(const std::vector<KernelFamily>& families,
                                const std::vector<WorkloadShape>& shapes)
      const;

  /// Tunes one group against its family.
  [[nodiscard]] GroupOutcome tune_group(const KernelFamily& family,
                                        const ShapeGroup& group) const;

 private:
  vgpu::GpuSpec gpu_;
  TunerOptions options_;
};

/// The Table 5 ThreadConf search expressed through the tuner layer: one
/// FastPSO run over the 50-dimensional ThreadConf objective, returning the
/// optimizer result and the decoded kernel configurations. This performs
/// the exact optimize() call the original bench loop hardcoded (same
/// params, same seed, same objective), so results are byte-identical to
/// the pre-tuner flow.
struct ThreadConfSearch {
  core::Result result;
  tgbm::ConfigSet configs;
};
ThreadConfSearch search_threadconf(const tgbm::ThreadConfProblem& problem,
                                   int particles, int iterations,
                                   std::uint64_t seed);

}  // namespace fastpso::tune
