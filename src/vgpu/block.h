// Cooperative block execution with shared memory and barrier phases.
//
// The virtual GPU executes a block's threads as *phases*: the kernel body
// calls `block.for_each_thread(...)` to run a piece of straight-line code on
// every thread of the block, then `block.sync()` to mark a __syncthreads
// boundary, then the next phase. Running each phase to completion before the
// next starts gives exactly the cross-thread visibility guarantees of a real
// barrier, provided threads do not race within a phase (same requirement as
// real CUDA).
//
// Shared memory is a bump arena checked against the device's
// shared_mem_per_block, so a kernel that over-allocates shared memory fails
// loudly (as a real launch would). The arena's storage lives on the Device
// and is acquired lazily on the first shared_array call: constructing a
// BlockCtx does zero heap allocation and no zero-fill, and kernels that
// request no shared memory never touch the arena at all. The storage is
// reused across blocks and launches without clearing — CUDA shared memory
// carries no cross-block initialization guarantee either, and the
// sanitizer's race checker enforces the write-before-read contract this
// relies on.
#pragma once

#include <cstddef>
#include <span>

#include "common/check.h"
#include "vgpu/device.h"

namespace fastpso::vgpu {

/// Per-block execution context handed to launch_blocks bodies.
class BlockCtx {
 public:
  BlockCtx(Device& device, std::int64_t block_idx, const LaunchConfig& cfg,
           std::size_t shared_limit)
      : device_(&device), block_idx_(block_idx), cfg_(cfg),
        shared_limit_(shared_limit) {}

  [[nodiscard]] std::int64_t block_idx() const { return block_idx_; }
  [[nodiscard]] int block_dim() const { return cfg_.block; }
  [[nodiscard]] std::int64_t grid_dim() const { return cfg_.grid; }

  /// Allocates `count` Ts of shared memory for this block. Mirrors
  /// `__shared__ T buf[count]`. Throws when the block's shared budget is
  /// exceeded.
  template <typename T>
  std::span<T> shared_array(std::size_t count) {
    const std::size_t align = alignof(T);
    std::size_t offset = (arena_used_ + align - 1) / align * align;
    const std::size_t bytes = count * sizeof(T);
    FASTPSO_CHECK_MSG(offset + bytes <= shared_limit_,
                      "shared memory budget exceeded");
    if (arena_ == nullptr) {
      arena_ = device_->shared_scratch(shared_limit_);
    }
    arena_used_ = offset + bytes;
    return {reinterpret_cast<T*>(arena_ + offset), count};
  }

  /// Runs `fn(ThreadCtx)` for every thread of this block (one phase).
  template <typename Fn>
  void for_each_thread(Fn&& fn) {
    ThreadCtx ctx;
    ctx.block_idx = block_idx_;
    ctx.block_dim = cfg_.block;
    ctx.grid_dim = cfg_.grid;
    if (san::active()) [[unlikely]] {
      for (int t = 0; t < cfg_.block; ++t) {
        ctx.thread_idx = t;
        san::hook_thread_begin(block_idx_, t);
        fn(static_cast<const ThreadCtx&>(ctx));
      }
      // Code after this phase runs at block scope again (thread 0).
      san::hook_thread_begin(block_idx_, 0);
      return;
    }
    for (int t = 0; t < cfg_.block; ++t) {
      ctx.thread_idx = t;
      fn(static_cast<const ThreadCtx&>(ctx));
    }
  }

  /// Marks a __syncthreads boundary between phases.
  void sync() {
    ++sync_count_;
    san::hook_barrier();
  }

  [[nodiscard]] int sync_count() const { return sync_count_; }
  [[nodiscard]] std::size_t shared_bytes_used() const { return arena_used_; }

 private:
  Device* device_;
  std::int64_t block_idx_;
  LaunchConfig cfg_;
  std::size_t shared_limit_;
  std::byte* arena_ = nullptr;
  std::size_t arena_used_ = 0;
  int sync_count_ = 0;
};

template <typename Body>
void Device::launch_blocks(const LaunchConfig& cfg, const KernelCostSpec& cost,
                           Body&& body) {
  pack_flush_lane();  // block kernels run inline; keep per-job ordering
  account_launch(cfg, cost);
  auto run = [&] {
    if (san::active()) [[unlikely]] {
      san::hook_launch_begin(cfg, cost);
      for (std::int64_t b = 0; b < cfg.grid; ++b) {
        san::hook_block_begin(b);
        BlockCtx block(*this, b, cfg, spec_.shared_mem_per_block);
        body(block);
      }
      san::hook_launch_end();
      return;
    }
    for (std::int64_t b = 0; b < cfg.grid; ++b) {
      BlockCtx block(*this, b, cfg, spec_.shared_mem_per_block);
      body(block);
    }
  };
  if (prof::active()) [[unlikely]] {
    Stopwatch wall;
    run();
    prof_note_wall(wall.elapsed_s());
    return;
  }
  run();
}

}  // namespace fastpso::vgpu
