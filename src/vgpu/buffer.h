// RAII typed device memory, allocated through the device's caching pool.
#pragma once

#include <cstddef>
#include <span>

#include "common/check.h"
#include "vgpu/device.h"
#include "vgpu/memory_pool.h"

namespace fastpso::vgpu {

/// A typed array in device memory. Allocation goes through Device::pool(),
/// so repeated allocate/free cycles of the same size are cache hits when
/// memory caching is enabled (Table 4).
template <typename T>
class DeviceArray {
 public:
  DeviceArray() = default;

  DeviceArray(Device& device, std::size_t count) : device_(&device) {
    resize(count);
  }

  ~DeviceArray() { reset(); }

  DeviceArray(const DeviceArray&) = delete;
  DeviceArray& operator=(const DeviceArray&) = delete;

  DeviceArray(DeviceArray&& other) noexcept { *this = std::move(other); }
  DeviceArray& operator=(DeviceArray&& other) noexcept {
    if (this != &other) {
      reset();
      device_ = other.device_;
      data_ = other.data_;
      count_ = other.count_;
      other.data_ = nullptr;
      other.count_ = 0;
    }
    return *this;
  }

  void resize(std::size_t count) {
    FASTPSO_CHECK_MSG(device_ != nullptr, "DeviceArray without a device");
    reset();
    if (count > 0) {
      data_ = static_cast<T*>(device_->pool().alloc(count * sizeof(T)));
      count_ = count;
    }
  }

  void reset() {
    if (data_ != nullptr) {
      device_->pool().free(data_);
      data_ = nullptr;
      count_ = 0;
    }
  }

  [[nodiscard]] T* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return count_; }
  [[nodiscard]] std::size_t bytes() const { return count_ * sizeof(T); }
  [[nodiscard]] bool empty() const { return count_ == 0; }

  [[nodiscard]] std::span<T> span() const { return {data_, count_}; }

  T& operator[](std::size_t i) const { return data_[i]; }

  /// Copies host data into the array (models cudaMemcpyHostToDevice).
  void upload(std::span<const T> host) {
    FASTPSO_CHECK(host.size() <= count_);
    device_->memcpy_h2d(data_, host.data(), host.size() * sizeof(T));
  }

  /// Copies array contents to host (models cudaMemcpyDeviceToHost).
  void download(std::span<T> host) const {
    FASTPSO_CHECK(host.size() <= count_);
    device_->memcpy_d2h(host.data(), data_, host.size() * sizeof(T));
  }

 private:
  Device* device_ = nullptr;
  T* data_ = nullptr;
  std::size_t count_ = 0;
};

}  // namespace fastpso::vgpu
