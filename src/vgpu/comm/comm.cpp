#include "vgpu/comm/comm.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/check.h"

namespace fastpso::vgpu::comm {

const char* to_string(ReduceOp op) {
  switch (op) {
    case ReduceOp::kMin:
      return "min";
    case ReduceOp::kMax:
      return "max";
    case ReduceOp::kSum:
      return "sum";
  }
  return "unknown";
}

double CollectiveCostSpec::seconds(const GpuSpec& spec) const {
  FASTPSO_CHECK(spec.link_bw_gbps > 0 && spec.link_latency_us >= 0);
  const double bw = spec.link_bw_gbps * 1e9;  // GB/s, decimal
  return wire_bytes / bw + latency_hops * spec.link_latency_us * 1e-6;
}

CollectiveCostSpec allreduce_cost(int devices, double payload_bytes) {
  FASTPSO_CHECK(devices >= 1 && payload_bytes >= 0);
  CollectiveCostSpec cost;
  cost.devices = devices;
  cost.payload_bytes = payload_bytes;
  if (devices > 1) {
    const double n = devices;
    cost.wire_bytes = 2.0 * (n - 1.0) / n * payload_bytes;
    cost.latency_hops = 2 * (devices - 1);
  }
  return cost;
}

CollectiveCostSpec broadcast_cost(int devices, double payload_bytes) {
  FASTPSO_CHECK(devices >= 1 && payload_bytes >= 0);
  CollectiveCostSpec cost;
  cost.devices = devices;
  cost.payload_bytes = payload_bytes;
  if (devices > 1) {
    cost.wire_bytes = payload_bytes;
    cost.latency_hops = devices - 1;
  }
  return cost;
}

CollectiveCostSpec allgather_cost(int devices, double payload_bytes) {
  FASTPSO_CHECK(devices >= 1 && payload_bytes >= 0);
  CollectiveCostSpec cost;
  cost.devices = devices;
  cost.payload_bytes = payload_bytes;
  if (devices > 1) {
    cost.wire_bytes = (devices - 1.0) * payload_bytes;
    cost.latency_hops = devices - 1;
  }
  return cost;
}

DeviceGroup::DeviceGroup(int devices, GpuSpec spec) : spec_(std::move(spec)) {
  FASTPSO_CHECK_MSG(devices >= 1, "DeviceGroup needs at least one device");
  devices_.reserve(static_cast<std::size_t>(devices));
  for (int i = 0; i < devices; ++i) {
    devices_.push_back(std::make_unique<Device>(spec_));
  }
}

std::size_t DeviceGroup::checked(int i) const {
  FASTPSO_CHECK_MSG(i >= 0 && i < size(), "device index out of range");
  return static_cast<std::size_t>(i);
}

Communicator::Communicator(DeviceGroup& group) : group_(group) {
  comm_stream_.reserve(static_cast<std::size_t>(group_.size()));
  comm_seconds_.assign(static_cast<std::size_t>(group_.size()), 0.0);
  for (int i = 0; i < group_.size(); ++i) {
    comm_stream_.push_back(group_.device(i).create_stream());
  }
}

Device::StreamId Communicator::comm_stream(int i) const {
  FASTPSO_CHECK_MSG(i >= 0 && i < group_.size(), "device index out of range");
  return comm_stream_[static_cast<std::size_t>(i)];
}

void Communicator::account(const char* label, const CollectiveCostSpec& cost) {
  const int n = group_.size();
  FASTPSO_CHECK(cost.devices == n);
  if (n == 1) {
    return;  // intra-device "collective": free, invisible
  }
  // Group-wide ready time: a rank can neither send nor receive before every
  // participant's issued work (any stream, including in-flight collectives
  // on the comm streams) has finished.
  double start = 0;
  for (int i = 0; i < n; ++i) {
    start = std::max(start, group_.device(i).modeled_seconds());
  }
  const double seconds = cost.seconds(group_.spec());
  for (int i = 0; i < n; ++i) {
    Device& dev = group_.device(i);
    const Device::StreamId prev_stream = dev.stream();
    const std::string prev_phase = dev.phase();
    dev.stream_wait(comm_stream_[static_cast<std::size_t>(i)], start);
    dev.set_stream(comm_stream_[static_cast<std::size_t>(i)]);
    dev.set_phase("comm");
    dev.account_comm(label, cost.wire_bytes, seconds);
    dev.set_phase(prev_phase);
    dev.set_stream(prev_stream);
    comm_seconds_[static_cast<std::size_t>(i)] += seconds;
  }
  CollectiveRecord record;
  record.label = label;
  record.cost = cost;
  record.start_seconds = start;
  record.seconds = seconds;
  records_.push_back(std::move(record));
}

void Communicator::allreduce(ReduceOp op, const std::vector<float*>& buffers,
                             int width) {
  const int n = group_.size();
  FASTPSO_CHECK_MSG(static_cast<int>(buffers.size()) == n,
                    "allreduce needs one buffer per rank");
  FASTPSO_CHECK(width >= 0);
  // Data plane: canonical rank-order reduction, written back to every rank.
  for (int e = 0; e < width; ++e) {
    float acc = buffers[0][e];
    for (int r = 1; r < n; ++r) {
      const float v = buffers[static_cast<std::size_t>(r)][e];
      switch (op) {
        case ReduceOp::kMin:
          acc = v < acc ? v : acc;
          break;
        case ReduceOp::kMax:
          acc = v > acc ? v : acc;
          break;
        case ReduceOp::kSum:
          acc += v;
          break;
      }
    }
    for (int r = 0; r < n; ++r) {
      buffers[static_cast<std::size_t>(r)][e] = acc;
    }
  }
  switch (op) {
    case ReduceOp::kMin:
      account("allreduce_min", allreduce_cost(n, width * 4.0));
      break;
    case ReduceOp::kMax:
      account("allreduce_max", allreduce_cost(n, width * 4.0));
      break;
    case ReduceOp::kSum:
      account("allreduce_sum", allreduce_cost(n, width * 4.0));
      break;
  }
}

int Communicator::allreduce_minloc(const std::vector<float>& values) {
  const int n = group_.size();
  FASTPSO_CHECK_MSG(static_cast<int>(values.size()) == n,
                    "allreduce_minloc needs one value per rank");
  // Data plane: strict < in rank order, so ties go to the lowest rank —
  // the same tie-break reduce_argmin uses within a device.
  int winner = 0;
  for (int r = 1; r < n; ++r) {
    if (values[static_cast<std::size_t>(r)] <
        values[static_cast<std::size_t>(winner)]) {
      winner = r;
    }
  }
  account("allreduce_minloc", allreduce_cost(n, 8.0));  // (value, rank) pair
  return winner;
}

void Communicator::broadcast(int root, const std::vector<float*>& buffers,
                             int width) {
  const int n = group_.size();
  FASTPSO_CHECK_MSG(static_cast<int>(buffers.size()) == n,
                    "broadcast needs one buffer per rank");
  FASTPSO_CHECK(root >= 0 && root < n && width >= 0);
  for (int r = 0; r < n; ++r) {
    if (r != root && width > 0) {
      std::memcpy(buffers[static_cast<std::size_t>(r)],
                  buffers[static_cast<std::size_t>(root)],
                  static_cast<std::size_t>(width) * sizeof(float));
    }
  }
  account("broadcast", broadcast_cost(n, width * 4.0));
}

void Communicator::allgather(const std::vector<const float*>& send,
                             const std::vector<float*>& recv, int width) {
  const int n = group_.size();
  FASTPSO_CHECK_MSG(static_cast<int>(send.size()) == n &&
                        static_cast<int>(recv.size()) == n,
                    "allgather needs one send and one recv buffer per rank");
  FASTPSO_CHECK(width >= 0);
  for (int r = 0; r < n; ++r) {
    for (int src = 0; src < n; ++src) {
      if (width > 0) {
        std::memcpy(recv[static_cast<std::size_t>(r)] +
                        static_cast<std::ptrdiff_t>(src) * width,
                    send[static_cast<std::size_t>(src)],
                    static_cast<std::size_t>(width) * sizeof(float));
      }
    }
  }
  account("allgather", allgather_cost(n, width * 4.0));
}

double Communicator::comm_seconds(int i) const {
  FASTPSO_CHECK_MSG(i >= 0 && i < group_.size(), "device index out of range");
  return comm_seconds_[static_cast<std::size_t>(i)];
}

double Communicator::total_seconds() const {
  double s = 0;
  for (const CollectiveRecord& r : records_) {
    s += r.seconds;
  }
  return s;
}

}  // namespace fastpso::vgpu::comm
