// vgpu::comm — an NCCL-style modeled collective layer over a group of
// virtual devices (DESIGN.md §12).
//
// The paper's Section 3.5 exchanges the global best through the host; real
// multi-GPU stacks move it device-to-device over the interconnect with
// collectives (ring allreduce / broadcast / allgather) overlapped with
// compute on streams. This layer reproduces that shape on the virtual GPU,
// with the same split the rest of the repository uses everywhere:
//
//   data plane   executes for real, deterministically. Every reduction runs
//                in canonical rank order 0..N-1 (the order a well-formed
//                ring allreduce reproduces exactly: reduce-scatter
//                accumulates each chunk around the ring starting from a
//                fixed rank), so results are bitwise-reproducible and
//                independent of any modeled timing.
//   time plane   modeled from the ring algorithm's cost over the link
//                constants in GpuSpec (link_bw_gbps / link_latency_us):
//                per-rank wire bytes at link bandwidth plus one link
//                latency per ring step. Each participating device accounts
//                its share on its dedicated comm stream
//                (Device::account_comm), so collectives overlap compute
//                issued on other streams and show up as "comm" lanes in
//                per-device profiles.
//
// Collectives are never captured into execution graphs — they are
// cross-device operations a per-device node list cannot represent — so a
// captured iteration replays its kernels while the Communicator re-accounts
// the exchange eagerly, exactly as issued.
//
// One-device groups degenerate cleanly: every collective is a free no-op
// (no cost, no counters, no events) apart from its data-plane writes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vgpu/device.h"
#include "vgpu/device_spec.h"

namespace fastpso::vgpu::comm {

/// Reduction operators over float payloads. Reductions run in canonical
/// rank order, so kSum is deterministic despite FP non-associativity.
enum class ReduceOp : std::uint8_t { kMin, kMax, kSum };

[[nodiscard]] const char* to_string(ReduceOp op);

/// Modeled cost of one collective, KernelCostSpec-style: the declared
/// quantities a test can audit, separated from the seconds they imply.
struct CollectiveCostSpec {
  int devices = 1;
  double payload_bytes = 0;  ///< logical payload per rank (B)
  double wire_bytes = 0;     ///< bytes each rank's link carries
  int latency_hops = 0;      ///< ring steps, each paying link_latency_us

  /// wire_bytes / link_bw + latency_hops * link_latency.
  [[nodiscard]] double seconds(const GpuSpec& spec) const;
};

/// Ring allreduce: reduce-scatter + allgather. Each rank's link carries
/// 2*(N-1)/N * B over 2*(N-1) steps.
[[nodiscard]] CollectiveCostSpec allreduce_cost(int devices,
                                                double payload_bytes);
/// Pipelined ring broadcast: B over the ring in N-1 steps.
[[nodiscard]] CollectiveCostSpec broadcast_cost(int devices,
                                                double payload_bytes);
/// Ring allgather of B per rank: each link carries (N-1)*B in N-1 steps.
[[nodiscard]] CollectiveCostSpec allgather_cost(int devices,
                                                double payload_bytes);

/// N virtual devices of one spec — per-device memory, pool, counters,
/// profile — plus the spec the group was built from.
class DeviceGroup {
 public:
  explicit DeviceGroup(int devices, GpuSpec spec = tesla_v100());

  DeviceGroup(const DeviceGroup&) = delete;
  DeviceGroup& operator=(const DeviceGroup&) = delete;

  [[nodiscard]] int size() const { return static_cast<int>(devices_.size()); }
  [[nodiscard]] Device& device(int i) { return *devices_[checked(i)]; }
  [[nodiscard]] const Device& device(int i) const {
    return *devices_[checked(i)];
  }
  [[nodiscard]] const GpuSpec& spec() const { return spec_; }

 private:
  [[nodiscard]] std::size_t checked(int i) const;

  GpuSpec spec_;
  std::vector<std::unique_ptr<Device>> devices_;
};

/// One issued collective — the auditable record the tests and the scaling
/// benches consume. `start_seconds` is the group-wide ready time the
/// operation was modeled from (max over participants' stream clocks).
struct CollectiveRecord {
  std::string label;
  CollectiveCostSpec cost;
  double start_seconds = 0;
  double seconds = 0;  ///< == cost.seconds(spec); 0 for 1-device groups
};

/// The collective engine over a DeviceGroup. Creates one dedicated comm
/// stream per device at construction; every collective starts at the
/// group-wide ready time (max over all participants' stream clocks) and
/// advances each device's comm stream by the modeled cost, attributed to
/// phase "comm".
class Communicator {
 public:
  explicit Communicator(DeviceGroup& group);

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;

  [[nodiscard]] DeviceGroup& group() { return group_; }
  /// The dedicated comm stream of device `i`.
  [[nodiscard]] Device::StreamId comm_stream(int i) const;

  /// Element-wise allreduce over per-rank buffers of `width` floats:
  /// result[e] = op(buffers[0][e], ..., buffers[N-1][e]) in rank order,
  /// written back to every rank. Buffers must be the group's size.
  void allreduce(ReduceOp op, const std::vector<float*>& buffers, int width);

  /// Argmin across one value per rank: returns the winning rank (ties go
  /// to the lowest rank), modeled as an 8-byte (value, rank) allreduce.
  [[nodiscard]] int allreduce_minloc(const std::vector<float>& values);

  /// Copies root's `width` floats into every other rank's buffer.
  void broadcast(int root, const std::vector<float*>& buffers, int width);

  /// Gathers each rank's `width` floats into every rank's recv buffer
  /// (devices * width floats, rank order).
  void allgather(const std::vector<const float*>& send,
                 const std::vector<float*>& recv, int width);

  /// Accounts a collective whose data plane the caller executed itself —
  /// particle-split's guarded gbest adopt only overwrites improving ranks,
  /// which a plain broadcast cannot express. Same timing, counters and
  /// record as the matching data+time call.
  void account_collective(const char* label, const CollectiveCostSpec& cost) {
    account(label, cost);
  }

  /// Every collective issued through this communicator, in issue order.
  [[nodiscard]] const std::vector<CollectiveRecord>& records() const {
    return records_;
  }
  /// Modeled comm seconds accounted on device `i` by this communicator
  /// (== the device counter delta; every rank pays the same per op).
  [[nodiscard]] double comm_seconds(int i) const;
  /// Sum of per-collective modeled seconds (the serial-exchange view; the
  /// per-device comm streams pay this once each, concurrently).
  [[nodiscard]] double total_seconds() const;

 private:
  /// Models one collective: group-wide start, per-device comm-stream
  /// accounting under phase "comm", record. No-op (and no record cost) for
  /// 1-device groups.
  void account(const char* label, const CollectiveCostSpec& cost);

  DeviceGroup& group_;
  std::vector<Device::StreamId> comm_stream_;
  std::vector<double> comm_seconds_;
  std::vector<CollectiveRecord> records_;
};

}  // namespace fastpso::vgpu::comm
