#include "vgpu/device.h"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "vgpu/memory_pool.h"

namespace fastpso::vgpu {

namespace {
// Process-wide toggle; the vgpu is single-threaded by contract, so a plain
// bool is enough. Defaults to on (FASTPSO_FAST_PATH=0 in the environment
// starts it off, for A/B timing) — tests flip it to pin the legacy engine.
bool initial_fast_path() {
  const char* env = std::getenv("FASTPSO_FAST_PATH");
  return env == nullptr || std::string_view(env) != "0";
}
bool g_fast_path_enabled = initial_fast_path();
}  // namespace

bool fast_path_enabled() { return g_fast_path_enabled; }

void set_fast_path_enabled(bool enabled) { g_fast_path_enabled = enabled; }

std::byte* Device::shared_scratch(std::size_t bytes) {
  if (shared_scratch_.size() < bytes) {
    shared_scratch_.resize(bytes);
  }
  return shared_scratch_.data();
}

LaunchConfig LaunchConfig::for_elements(const GpuSpec& spec,
                                        std::int64_t elements, int block,
                                        std::int64_t max_blocks) {
  FASTPSO_CHECK(elements > 0);
  FASTPSO_CHECK(block > 0 && block <= spec.max_threads_per_block);
  LaunchConfig cfg;
  cfg.block = block;
  cfg.grid = std::min<std::int64_t>((elements + block - 1) / block,
                                    max_blocks);
  return cfg;
}

Device::Device(GpuSpec spec)
    : spec_(std::move(spec)), perf_(spec_) {
  pool_ = std::make_unique<MemoryPool>(*this, /*enabled=*/true);
}

Device::~Device() {
  // Release pool cache before checking for leaks from raw users.
  pool_->release_cache();
  for (auto& [ptr, bytes] : allocations_) {
    (void)bytes;
    std::free(ptr);
  }
}

void* Device::raw_alloc(std::size_t bytes) {
  FASTPSO_CHECK_MSG(bytes > 0, "zero-byte device allocation");
  FASTPSO_CHECK_MSG(bytes_in_use_ + bytes <= spec_.global_mem_bytes,
                    "device out of memory (" + spec_.name + ")");
  void* p = std::malloc(bytes);
  FASTPSO_CHECK_MSG(p != nullptr, "host allocation failed");
  allocations_[p] = bytes;
  bytes_in_use_ += bytes;
  ++counters_.allocs;
  add_modeled(perf_.alloc_seconds());
  return p;
}

void Device::raw_free(void* p) {
  auto it = allocations_.find(p);
  FASTPSO_CHECK_MSG(it != allocations_.end(),
                    "device free of unknown or already-freed pointer");
  bytes_in_use_ -= it->second;
  std::free(p);
  allocations_.erase(it);
  ++counters_.frees;
  add_modeled(perf_.free_seconds());
}

void Device::memcpy_h2d(void* dst, const void* src, std::size_t bytes) {
  std::memcpy(dst, src, bytes);
  ++counters_.transfers;
  counters_.h2d_bytes += static_cast<double>(bytes);
  add_modeled(perf_.transfer_seconds(static_cast<double>(bytes)));
}

void Device::memcpy_d2h(void* dst, const void* src, std::size_t bytes) {
  std::memcpy(dst, src, bytes);
  ++counters_.transfers;
  counters_.d2h_bytes += static_cast<double>(bytes);
  add_modeled(perf_.transfer_seconds(static_cast<double>(bytes)));
}

void Device::memcpy_d2d(void* dst, const void* src, std::size_t bytes) {
  std::memcpy(dst, src, bytes);
  ++counters_.transfers;
  counters_.dram_read_useful += static_cast<double>(bytes);
  counters_.dram_write_useful += static_cast<double>(bytes);
  counters_.dram_read_fetched += static_cast<double>(bytes);
  counters_.dram_write_fetched += static_cast<double>(bytes);
  // Read + write of `bytes` at effective DRAM bandwidth.
  add_modeled(2.0 * static_cast<double>(bytes) /
              (spec_.eff_dram_bw_gbps * 1e9));
}

void Device::reset_counters() {
  counters_ = DeviceCounters{};
  modeled_breakdown_.clear();
  stream_clock_.assign(stream_clock_.size(), 0.0);
}

Device::StreamId Device::create_stream() {
  stream_clock_.push_back(
      *std::max_element(stream_clock_.begin(), stream_clock_.end()));
  return static_cast<StreamId>(stream_clock_.size() - 1);
}

void Device::set_stream(StreamId stream) {
  FASTPSO_CHECK_MSG(stream >= 0 &&
                        stream < static_cast<StreamId>(stream_clock_.size()),
                    "unknown stream");
  current_stream_ = stream;
}

void Device::sync_streams() {
  const double now =
      *std::max_element(stream_clock_.begin(), stream_clock_.end());
  stream_clock_.assign(stream_clock_.size(), now);
}

double Device::modeled_seconds() const {
  return *std::max_element(stream_clock_.begin(), stream_clock_.end());
}

void Device::add_modeled_host_seconds(double seconds) {
  FASTPSO_CHECK(seconds >= 0);
  add_modeled(seconds);
}

void Device::account_launch(const LaunchConfig& cfg,
                            const KernelCostSpec& cost) {
  FASTPSO_CHECK(cfg.grid > 0);
  FASTPSO_CHECK_MSG(cfg.block > 0 && cfg.block <= spec_.max_threads_per_block,
                    "block size exceeds device limit");
  ++counters_.launches;
  counters_.barriers += static_cast<std::uint64_t>(cost.barriers);
  counters_.flops += cost.flops;
  counters_.transcendentals += cost.transcendentals;
  counters_.dram_read_useful += cost.dram_read_bytes;
  counters_.dram_write_useful += cost.dram_write_bytes;
  counters_.dram_read_fetched += cost.fetched_read_bytes();
  counters_.dram_write_fetched += cost.fetched_write_bytes();
  const double seconds =
      perf_.kernel_seconds(static_cast<double>(cfg.total_threads()), cost);
  counters_.kernel_seconds += seconds;
  add_modeled(seconds, /*device_wide=*/false);
}

void Device::add_modeled(double seconds, bool device_wide) {
  counters_.modeled_seconds += seconds;
  modeled_breakdown_.add(phase_, seconds);
  if (device_wide) {
    // Synchronizing operation: align all streams, then advance together.
    const double now =
        *std::max_element(stream_clock_.begin(), stream_clock_.end()) +
        seconds;
    stream_clock_.assign(stream_clock_.size(), now);
  } else {
    stream_clock_[current_stream_] += seconds;
  }
}

}  // namespace fastpso::vgpu
