#include "vgpu/device.h"

#include <algorithm>
#include <cstdlib>
#include <string_view>
#include <utility>

#include "vgpu/graph/graph.h"
#include "vgpu/memory_pool.h"
#include "vgpu/prof/prof.h"

namespace fastpso::vgpu {

namespace {
// Process-wide toggle; the vgpu is single-threaded by contract, so a plain
// bool is enough. Defaults to on (FASTPSO_FAST_PATH=0 in the environment
// starts it off, for A/B timing) — tests flip it to pin the legacy engine.
bool initial_fast_path() {
  const char* env = std::getenv("FASTPSO_FAST_PATH");
  return env == nullptr || std::string_view(env) != "0";
}
bool g_fast_path_enabled = initial_fast_path();
}  // namespace

bool fast_path_enabled() { return g_fast_path_enabled; }

void set_fast_path_enabled(bool enabled) { g_fast_path_enabled = enabled; }

std::byte* Device::shared_scratch(std::size_t bytes) {
  if (shared_scratch_.size() < bytes) {
    shared_scratch_.resize(bytes);
  }
  return shared_scratch_.data();
}

LaunchConfig LaunchConfig::for_elements(const GpuSpec& spec,
                                        std::int64_t elements, int block,
                                        std::int64_t max_blocks) {
  FASTPSO_CHECK(elements > 0);
  FASTPSO_CHECK(block > 0 && block <= spec.max_threads_per_block);
  LaunchConfig cfg;
  cfg.block = block;
  cfg.grid = std::min<std::int64_t>((elements + block - 1) / block,
                                    max_blocks);
  return cfg;
}

Device::Device(GpuSpec spec)
    : spec_(std::move(spec)), perf_(spec_) {
  pool_ = std::make_unique<MemoryPool>(*this, /*enabled=*/true);
}

Device::~Device() {
  // Release pool cache before checking for leaks from raw users.
  pool_->release_cache();
  for (auto& [ptr, bytes] : allocations_) {
    (void)bytes;
    std::free(ptr);
  }
}

void* Device::raw_alloc(std::size_t bytes) {
  FASTPSO_CHECK_MSG(bytes > 0, "zero-byte device allocation");
  FASTPSO_CHECK_MSG(bytes_in_use_ + bytes <= spec_.global_mem_bytes,
                    "device out of memory (" + spec_.name + ")");
  void* p = std::malloc(bytes);
  FASTPSO_CHECK_MSG(p != nullptr, "host allocation failed");
  allocations_[p] = bytes;
  bytes_in_use_ += bytes;
  ++counters_.allocs;
  const double seconds = perf_.alloc_seconds();
  if (prof::active()) [[unlikely]] {
    prof_record_op(prof::EventKind::kAlloc, static_cast<double>(bytes),
                   seconds, 0.0);
  }
  add_modeled(seconds);
  return p;
}

void Device::raw_free(void* p) {
  pack_flush_lane();  // a deferred span may still read this storage
  auto it = allocations_.find(p);
  FASTPSO_CHECK_MSG(it != allocations_.end(),
                    "device free of unknown or already-freed pointer");
  const double bytes = static_cast<double>(it->second);
  bytes_in_use_ -= it->second;
  std::free(p);
  allocations_.erase(it);
  ++counters_.frees;
  const double seconds = perf_.free_seconds();
  if (prof::active()) [[unlikely]] {
    prof_record_op(prof::EventKind::kFree, bytes, seconds, 0.0);
  }
  add_modeled(seconds);
}

void Device::memcpy_h2d(void* dst, const void* src, std::size_t bytes) {
  pack_flush_lane();
  if (graph_mode_ == GraphMode::kCapturing) [[unlikely]] {
    capture_graph_->record_memcpy(graph::NodeKind::kMemcpyH2D, dst, src,
                                  static_cast<double>(bytes),
                                  current_stream_, phase_);
  }
  const double seconds = perf_.transfer_seconds(static_cast<double>(bytes));
  if (prof::active()) [[unlikely]] {
    Stopwatch wall;
    std::memcpy(dst, src, bytes);
    prof_record_op(prof::EventKind::kMemcpyH2D, static_cast<double>(bytes),
                   seconds, wall.elapsed_s());
  } else {
    std::memcpy(dst, src, bytes);
  }
  ++counters_.transfers;
  counters_.h2d_bytes += static_cast<double>(bytes);
  add_modeled(seconds);
}

void Device::memcpy_d2h(void* dst, const void* src, std::size_t bytes) {
  pack_flush_lane();
  if (graph_mode_ == GraphMode::kCapturing) [[unlikely]] {
    capture_graph_->record_memcpy(graph::NodeKind::kMemcpyD2H, dst, src,
                                  static_cast<double>(bytes),
                                  current_stream_, phase_);
  }
  const double seconds = perf_.transfer_seconds(static_cast<double>(bytes));
  if (prof::active()) [[unlikely]] {
    Stopwatch wall;
    std::memcpy(dst, src, bytes);
    prof_record_op(prof::EventKind::kMemcpyD2H, static_cast<double>(bytes),
                   seconds, wall.elapsed_s());
  } else {
    std::memcpy(dst, src, bytes);
  }
  ++counters_.transfers;
  counters_.d2h_bytes += static_cast<double>(bytes);
  add_modeled(seconds);
}

void Device::memcpy_d2d(void* dst, const void* src, std::size_t bytes) {
  pack_flush_lane();
  if (graph_mode_ == GraphMode::kCapturing) [[unlikely]] {
    capture_graph_->record_memcpy(graph::NodeKind::kMemcpyD2D, dst, src,
                                  static_cast<double>(bytes),
                                  current_stream_, phase_);
  }
  // Read + write of `bytes` at effective DRAM bandwidth.
  const double seconds =
      2.0 * static_cast<double>(bytes) / (spec_.eff_dram_bw_gbps * 1e9);
  if (prof::active()) [[unlikely]] {
    Stopwatch wall;
    std::memcpy(dst, src, bytes);
    prof_record_op(prof::EventKind::kMemcpyD2D, static_cast<double>(bytes),
                   seconds, wall.elapsed_s());
  } else {
    std::memcpy(dst, src, bytes);
  }
  ++counters_.transfers;
  counters_.dram_read_useful += static_cast<double>(bytes);
  counters_.dram_write_useful += static_cast<double>(bytes);
  counters_.dram_read_fetched += static_cast<double>(bytes);
  counters_.dram_write_fetched += static_cast<double>(bytes);
  add_modeled(seconds);
}

void Device::swap_accounting(DeviceCounters& counters,
                             TimeBreakdown& breakdown) {
  FASTPSO_CHECK_MSG(graph_mode_ == GraphMode::kOff,
                    "swap_accounting during an open capture/replay");
  std::swap(counters_, counters);
  modeled_breakdown_.swap(breakdown);
}

void Device::reset_counters() {
  counters_ = DeviceCounters{};
  modeled_breakdown_.clear();
  stream_clock_.assign(stream_clock_.size(), 0.0);
  if (profile_) {
    profile_->clear();
  }
}

Device::StreamId Device::create_stream() {
  stream_clock_.push_back(
      *std::max_element(stream_clock_.begin(), stream_clock_.end()));
  return static_cast<StreamId>(stream_clock_.size() - 1);
}

void Device::set_stream(StreamId stream) {
  FASTPSO_CHECK_MSG(stream >= 0 &&
                        stream < static_cast<StreamId>(stream_clock_.size()),
                    "unknown stream");
  current_stream_ = stream;
}

void Device::sync_streams() {
  const double now =
      *std::max_element(stream_clock_.begin(), stream_clock_.end());
  stream_clock_.assign(stream_clock_.size(), now);
}

void Device::stream_wait(StreamId stream, double seconds) {
  FASTPSO_CHECK_MSG(stream >= 0 &&
                        stream < static_cast<StreamId>(stream_clock_.size()),
                    "unknown stream");
  auto& clock = stream_clock_[static_cast<std::size_t>(stream)];
  clock = std::max(clock, seconds);
}

double Device::modeled_seconds() const {
  return *std::max_element(stream_clock_.begin(), stream_clock_.end());
}

void Device::add_modeled_host_seconds(double seconds) {
  FASTPSO_CHECK(seconds >= 0);
  if (prof::active()) [[unlikely]] {
    prof_record_op(prof::EventKind::kHost, 0.0, seconds, 0.0);
  }
  add_modeled(seconds);
}

void Device::account_comm(const char* label, double bytes, double seconds) {
  pack_flush_lane();
  FASTPSO_CHECK(bytes >= 0 && seconds >= 0);
  ++counters_.collectives;
  counters_.comm_bytes += bytes;
  counters_.comm_seconds += seconds;
  if (prof::active()) [[unlikely]] {
    if (!profile_) {
      profile_ = std::make_unique<prof::Profile>();
    }
    prof::Event e;
    e.kind = prof::EventKind::kComm;
    e.label = label;
    e.phase = phase_;
    e.stream = current_stream_;
    e.bytes = bytes;
    // Stream-local, like a kernel: the comm stream's own clock, so the
    // trace shows the collective overlapping compute on other streams.
    e.t_begin = stream_clock_[current_stream_];
    e.modeled_seconds = seconds;
    profile_->events.push_back(std::move(e));
  }
  add_modeled(seconds, /*device_wide=*/false);
}

void Device::account_launch(const LaunchConfig& cfg,
                            const KernelCostSpec& cost) {
  last_replay_node_ = -1;  // set again by a replay match (graph_account)
  if (graph_mode_ != GraphMode::kOff) [[unlikely]] {
    if (graph_account(cfg, cost)) {
      return;
    }
  }
  FASTPSO_CHECK(cfg.grid > 0);
  FASTPSO_CHECK_MSG(cfg.block > 0 && cfg.block <= spec_.max_threads_per_block,
                    "block size exceeds device limit");
  ++counters_.launches;
  counters_.barriers += static_cast<std::uint64_t>(cost.barriers);
  counters_.flops += cost.flops;
  counters_.transcendentals += cost.transcendentals;
  counters_.dram_read_useful += cost.dram_read_bytes;
  counters_.dram_write_useful += cost.dram_write_bytes;
  counters_.dram_read_fetched += cost.fetched_read_bytes();
  counters_.dram_write_fetched += cost.fetched_write_bytes();
  const double seconds =
      perf_.kernel_seconds(static_cast<double>(cfg.total_threads()), cost);
  counters_.kernel_seconds += seconds;
  if (prof::active()) [[unlikely]] {
    prof_record_kernel(cfg, cost, seconds);
  }
  add_modeled(seconds, /*device_wide=*/false);
}

bool Device::graph_account(const LaunchConfig& cfg,
                           const KernelCostSpec& cost) {
  if (graph_mode_ == GraphMode::kCapturing) {
    capture_graph_->record_kernel(cfg.grid, cfg.block, current_stream_,
                                  phase_, prof::detail::current_label(),
                                  cost);
    return false;  // the eager path still performs all accounting
  }
  const int index = replay_exec_->match_kernel(
      *replay_session_, cfg.grid, cfg.block, current_stream_, phase_);
  if (index < 0) {
    // Sequence diverged (or ran past the node list): eager fallback.
    replay_exec_->note_eager_launch();
    return false;
  }
  const graph::GraphExec::ExecNode* node =
      &replay_exec_->nodes()[static_cast<std::size_t>(index)];
  // Replay fast path. The matched node's grid/block equal this launch's, so
  // the launch-shape checks already passed at capture; cost values come
  // from the call site, and the node contributes only shape-derived
  // precomputes — every accounted value is byte-identical to eager mode.
  ++counters_.launches;
  counters_.barriers += static_cast<std::uint64_t>(cost.barriers);
  counters_.flops += cost.flops;
  counters_.transcendentals += cost.transcendentals;
  counters_.dram_read_useful += cost.dram_read_bytes;
  counters_.dram_write_useful += cost.dram_write_bytes;
  counters_.dram_read_fetched += cost.fetched_read_bytes();
  counters_.dram_write_fetched += cost.fetched_write_bytes();
  double t_compute = 0;
  double t_memory = 0;
  const double seconds =
      perf_.kernel_seconds_resolved(node->shape, cost, &t_compute, &t_memory);
  counters_.kernel_seconds += seconds;
  if (prof::active()) [[unlikely]] {
    prof_record_kernel_replay(cfg.grid, cfg.block, current_stream_, phase_,
                              prof::detail::current_label(), cost, seconds,
                              node->shape.compute_occupancy,
                              node->shape.memory_occupancy,
                              t_memory > t_compute);
  }
  counters_.modeled_seconds += seconds;
  *replay_session_->slots[static_cast<std::size_t>(index)] += seconds;
  stream_clock_[current_stream_] += seconds;
  if (node->fuse_group >= 0) {
    // Fusion is pure reporting under paired replay: the group accumulates
    // the live cost/seconds and is priced as one fused launch at
    // end_replay — nothing above changes.
    replay_exec_->note_member(*replay_session_, node->fuse_group, cost,
                              seconds);
  }
  // Deferral key for launch_elements (vgpu/pack.h).
  last_replay_node_ = index;
  last_replay_seconds_ = seconds;
  return true;
}

void Device::graph_capture_body(std::function<void()> body) {
  capture_graph_->attach_body(std::move(body));
}

void Device::graph_capture_elem_body(std::function<void(std::int64_t)> body) {
  capture_graph_->attach_elem_body(std::move(body));
}

void Device::graph_note_elements(std::int64_t elems) {
  if (graph_mode_ == GraphMode::kCapturing) {
    capture_graph_->note_elements(elems);
  }
}

void Device::graph_note_uses(std::vector<graph::BufferUse> uses) {
  if (graph_mode_ == GraphMode::kCapturing) {
    capture_graph_->note_uses(std::move(uses));
  }
}

void Device::graph_note_static(graph::codegen::StaticKernel kernel) {
  if (graph_mode_ == GraphMode::kCapturing) {
    capture_graph_->note_static(std::move(kernel));
  }
}

void Device::graph_attach_bodies(std::function<void()> body,
                                 std::function<void(std::int64_t)> elem_body) {
  if (graph_mode_ == GraphMode::kCapturing) {
    capture_graph_->attach_body(std::move(body));
    capture_graph_->attach_elem_body(std::move(elem_body));
  }
}

void Device::begin_capture(graph::Graph& g) {
  FASTPSO_CHECK_MSG(graph_mode_ == GraphMode::kOff,
                    "begin_capture during an open capture/replay");
  capture_graph_ = &g;
  graph_mode_ = GraphMode::kCapturing;
}

void Device::end_capture() {
  FASTPSO_CHECK_MSG(graph_mode_ == GraphMode::kCapturing,
                    "end_capture without begin_capture");
  capture_graph_ = nullptr;
  graph_mode_ = GraphMode::kOff;
}

void Device::begin_replay(graph::GraphExec& exec) {
  begin_replay(exec, exec.own_session());
}

void Device::begin_replay(graph::GraphExec& exec,
                          graph::GraphExec::ReplaySession& session) {
  FASTPSO_CHECK_MSG(graph_mode_ == GraphMode::kOff,
                    "begin_replay during an open capture/replay");
  exec.begin_replay(session, modeled_breakdown_, stream_count());
  replay_exec_ = &exec;
  replay_session_ = &session;
  graph_mode_ = GraphMode::kReplaying;
}

bool Device::end_replay() {
  FASTPSO_CHECK_MSG(graph_mode_ == GraphMode::kReplaying,
                    "end_replay without begin_replay");
  const bool clean = replay_exec_->end_replay(*replay_session_);
  replay_exec_ = nullptr;
  replay_session_ = nullptr;
  graph_mode_ = GraphMode::kOff;
  return clean;
}

void Device::detach_replay() {
  FASTPSO_CHECK_MSG(graph_mode_ == GraphMode::kReplaying,
                    "detach_replay without an open replay");
  replay_exec_ = nullptr;
  replay_session_ = nullptr;
  last_replay_node_ = -1;
  graph_mode_ = GraphMode::kOff;
}

void Device::attach_replay(graph::GraphExec& exec,
                           graph::GraphExec::ReplaySession& session) {
  FASTPSO_CHECK_MSG(graph_mode_ == GraphMode::kOff,
                    "attach_replay during an open capture/replay");
  FASTPSO_CHECK_MSG(session.open, "attach_replay on a closed session");
  replay_exec_ = &exec;
  replay_session_ = &session;
  graph_mode_ = GraphMode::kReplaying;
}

void Device::replay_node(const graph::GraphExec::ExecNode& en) {
  const graph::Node& node = en.node;
  switch (node.kind) {
    case graph::NodeKind::kKernel: {
      ++counters_.launches;
      counters_.barriers += static_cast<std::uint64_t>(node.cost.barriers);
      counters_.flops += node.cost.flops;
      counters_.transcendentals += node.cost.transcendentals;
      counters_.dram_read_useful += node.cost.dram_read_bytes;
      counters_.dram_write_useful += node.cost.dram_write_bytes;
      counters_.dram_read_fetched += node.cost.fetched_read_bytes();
      counters_.dram_write_fetched += node.cost.fetched_write_bytes();
      double t_compute = 0;
      double t_memory = 0;
      const double seconds = perf_.kernel_seconds_resolved(
          en.shape, node.cost, &t_compute, &t_memory);
      counters_.kernel_seconds += seconds;
      if (prof::active()) [[unlikely]] {
        prof_record_kernel_replay(
            node.grid, node.block, node.stream, node.phase,
            node.label.empty() ? nullptr : node.label.c_str(), node.cost,
            seconds, en.shape.compute_occupancy,
            en.shape.memory_occupancy, t_memory > t_compute);
      }
      counters_.modeled_seconds += seconds;
      *en.slot += seconds;
      stream_clock_[node.stream] += seconds;
      if (en.compiled) {
        // Registered span over the full element domain: the same element()
        // code the captured body loops over, statically bound
        // (vgpu/graph/codegen.h) — bitwise-identical output, no
        // std::function indirection.
        const graph::codegen::StaticKernel& k = node.static_kernel;
        if (prof::active()) [[unlikely]] {
          Stopwatch wall;
          k.span(k.args.get(), 0, node.elems);
          prof_note_wall(wall.elapsed_s());
        } else {
          k.span(k.args.get(), 0, node.elems);
        }
      } else if (node.body) {
        if (prof::active()) [[unlikely]] {
          Stopwatch wall;
          node.body();
          prof_note_wall(wall.elapsed_s());
        } else {
          node.body();
        }
      }
      break;
    }
    case graph::NodeKind::kMemcpyH2D:
    case graph::NodeKind::kMemcpyD2H:
    case graph::NodeKind::kMemcpyD2D: {
      // Memcpys replay through the eager entry points (they are
      // device-synchronizing, so there is no setup to amortize); restore
      // the captured phase first so attribution matches.
      if (phase_ != node.phase) {
        set_phase(node.phase);
      }
      const auto bytes = static_cast<std::size_t>(node.bytes);
      if (node.kind == graph::NodeKind::kMemcpyH2D) {
        memcpy_h2d(node.dst, node.src, bytes);
      } else if (node.kind == graph::NodeKind::kMemcpyD2H) {
        memcpy_d2h(node.dst, node.src, bytes);
      } else {
        memcpy_d2d(node.dst, node.src, bytes);
      }
      break;
    }
  }
}

void Device::replay_graph(graph::GraphExec& exec) {
  FASTPSO_CHECK_MSG(graph_mode_ == GraphMode::kOff,
                    "replay_graph during an open capture/replay");
  exec.begin_standalone(modeled_breakdown_, stream_count());
  for (const graph::GraphExec::ExecNode& en : exec.nodes()) {
    replay_node(en);
  }
  exec.end_standalone();
}

void Device::replay_fused(graph::GraphExec& exec) {
  if (exec.fused_groups().empty()) {
    // Nothing fused (pass not applied, or no legal group): the fused
    // schedule IS the plain schedule.
    replay_graph(exec);
    return;
  }
  FASTPSO_CHECK_MSG(graph_mode_ == GraphMode::kOff,
                    "replay_fused during an open capture/replay");
  exec.begin_standalone(modeled_breakdown_, stream_count());
  const std::vector<graph::GraphExec::ExecNode>& nodes = exec.nodes();
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    const graph::GraphExec::ExecNode& en = nodes[i];
    if (en.fuse_group < 0) {
      replay_node(en);
      continue;
    }
    const graph::GraphExec::FusedGroup& g =
        exec.fused_groups()[static_cast<std::size_t>(en.fuse_group)];
    if (static_cast<int>(i) != g.members.front()) {
      continue;  // non-leading members are absorbed into the group dispatch
    }
    // One launch, priced at the merged (elided) cost spec: counters and
    // clocks genuinely reflect the fused schedule here, unlike paired
    // replay where fusion is reporting-only.
    ++counters_.launches;
    counters_.flops += g.merged_cost.flops;
    counters_.transcendentals += g.merged_cost.transcendentals;
    counters_.dram_read_useful += g.merged_cost.dram_read_bytes;
    counters_.dram_write_useful += g.merged_cost.dram_write_bytes;
    counters_.dram_read_fetched += g.merged_cost.fetched_read_bytes();
    counters_.dram_write_fetched += g.merged_cost.fetched_write_bytes();
    double t_compute = 0;
    double t_memory = 0;
    const double seconds = perf_.kernel_seconds_resolved(
        g.shape, g.merged_cost, &t_compute, &t_memory);
    counters_.kernel_seconds += seconds;
    if (prof::active()) [[unlikely]] {
      prof_record_kernel_replay(g.grid, g.block, g.stream, g.phase,
                                g.label.c_str(), g.merged_cost, seconds,
                                g.shape.compute_occupancy,
                                g.shape.memory_occupancy,
                                t_memory > t_compute);
    }
    counters_.modeled_seconds += seconds;
    *en.slot += seconds;
    stream_clock_[g.stream] += seconds;
    // Execute the member kernels back-to-back per element — the order that
    // makes aligned same-element dependences (and therefore the numerics)
    // identical to eager execution. Three tiers (vgpu/graph/codegen.h),
    // all member-order-preserving and therefore bitwise-equivalent:
    //   composed   one fully-inlined loop running every member per element
    //   chunked    registered member spans in order over ~kChunk windows
    //   interpreted the per-element elem_body fallback
    if (!g.member_spans.empty()) {
      exec.note_compiled_dispatch(g.composed != nullptr);
      Stopwatch wall;
      if (g.composed != nullptr) {
        g.composed(g.member_args.data(), 0, g.elems);
      } else {
        for (std::int64_t c = 0; c < g.elems;
             c += graph::codegen::kChunk) {
          const std::int64_t end =
              std::min(g.elems, c + graph::codegen::kChunk);
          for (std::size_t m = 0; m < g.member_spans.size(); ++m) {
            g.member_spans[m](g.member_args[m], c, end);
          }
        }
      }
      if (prof::active()) [[unlikely]] {
        prof_note_wall(wall.elapsed_s());
      }
    } else {
      bool have_bodies = false;
      for (int m : g.members) {
        if (nodes[static_cast<std::size_t>(m)].node.elem_body) {
          have_bodies = true;
          break;
        }
      }
      if (have_bodies) {
        Stopwatch wall;
        for (std::int64_t e = 0; e < g.elems; ++e) {
          for (int m : g.members) {
            const graph::Node& member =
                nodes[static_cast<std::size_t>(m)].node;
            if (member.elem_body) {
              member.elem_body(e);
            }
          }
        }
        if (prof::active()) [[unlikely]] {
          prof_note_wall(wall.elapsed_s());
        }
      }
    }
  }
  exec.end_standalone_fused();
}

prof::Profile Device::take_profile() {
  if (!profile_) {
    return prof::Profile{};
  }
  prof::Profile out = std::move(*profile_);
  profile_.reset();
  return out;
}

void Device::prof_record_kernel(const LaunchConfig& cfg,
                                const KernelCostSpec& cost, double seconds) {
  if (!profile_) {
    profile_ = std::make_unique<prof::Profile>();
  }
  prof::Event e;
  e.kind = prof::EventKind::kKernel;
  const char* label = prof::detail::current_label();
  e.label = label != nullptr ? label : "<unlabeled>";
  e.phase = phase_;
  e.stream = current_stream_;
  e.grid = cfg.grid;
  e.block = cfg.block;
  e.cost = cost;
  e.t_begin = stream_clock_[current_stream_];
  e.modeled_seconds = seconds;
  const KernelTimeDetail detail =
      perf_.kernel_detail(static_cast<double>(cfg.total_threads()), cost);
  e.compute_occupancy = detail.compute_occupancy;
  e.memory_occupancy = detail.memory_occupancy;
  e.limiter =
      detail.memory_bound() ? prof::Limiter::kMemory : prof::Limiter::kCompute;
  profile_->events.push_back(std::move(e));
}

void Device::prof_record_kernel_replay(std::int64_t grid, int block,
                                       int stream, const std::string& phase,
                                       const char* label,
                                       const KernelCostSpec& cost,
                                       double seconds,
                                       double compute_occupancy,
                                       double memory_occupancy,
                                       bool memory_bound) {
  if (!profile_) {
    profile_ = std::make_unique<prof::Profile>();
  }
  prof::Event e;
  e.kind = prof::EventKind::kKernel;
  e.label = label != nullptr ? label : "<unlabeled>";
  e.phase = phase;
  e.stream = stream;
  e.grid = grid;
  e.block = block;
  e.cost = cost;
  e.t_begin = stream_clock_[stream];
  e.modeled_seconds = seconds;
  e.compute_occupancy = compute_occupancy;
  e.memory_occupancy = memory_occupancy;
  e.limiter =
      memory_bound ? prof::Limiter::kMemory : prof::Limiter::kCompute;
  profile_->events.push_back(std::move(e));
}

void Device::prof_record_packed(const char* label, const LaunchConfig& cfg,
                                int jobs, double modeled_seconds) {
  if (!profile_) {
    profile_ = std::make_unique<prof::Profile>();
  }
  prof::Event e;
  e.kind = prof::EventKind::kKernel;
  e.label = "pack[k=" + std::to_string(jobs) + "]:" +
            (label != nullptr ? label : "<unlabeled>");
  e.phase = phase_;
  e.stream = current_stream_;
  e.grid = cfg.grid;
  e.block = cfg.block;
  // Decoration only: the member launches already advanced their jobs'
  // clocks, so the cohort event carries the packed pricing without moving
  // any clock or counter.
  e.t_begin = stream_clock_[current_stream_];
  e.modeled_seconds = modeled_seconds;
  profile_->events.push_back(std::move(e));
}

void Device::prof_record_op(prof::EventKind kind, double bytes, double seconds,
                            double wall_seconds) {
  if (!profile_) {
    profile_ = std::make_unique<prof::Profile>();
  }
  prof::Event e;
  e.kind = kind;
  e.label = prof::to_string(kind);
  e.phase = phase_;
  e.stream = current_stream_;
  e.bytes = bytes;
  // Device-wide ops start where the furthest stream stands (they sync all
  // clocks to max + seconds in add_modeled).
  e.t_begin = *std::max_element(stream_clock_.begin(), stream_clock_.end());
  e.modeled_seconds = seconds;
  e.wall_seconds = wall_seconds;
  profile_->events.push_back(std::move(e));
}

void Device::prof_note_wall(double seconds) {
  // The just-accounted kernel is the last event; kernel bodies perform no
  // device operations, so nothing can have been appended since.
  if (profile_ && !profile_->events.empty()) {
    profile_->events.back().wall_seconds += seconds;
  }
}

void Device::add_modeled(double seconds, bool device_wide) {
  counters_.modeled_seconds += seconds;
  modeled_breakdown_.add(phase_, seconds);
  if (device_wide) {
    // Synchronizing operation: align all streams, then advance together.
    const double now =
        *std::max_element(stream_clock_.begin(), stream_clock_.end()) +
        seconds;
    stream_clock_.assign(stream_clock_.size(), now);
  } else {
    stream_clock_[current_stream_] += seconds;
  }
}

}  // namespace fastpso::vgpu
