// The virtual GPU device: memory management, kernel launch, counters and
// modeled time. See DESIGN.md §1 for why this exists (no physical GPU in the
// reproduction environment) and vgpu/perf_model.h for the timing model.
//
// Kernels are ordinary C++ callables written against a CUDA-shaped thread
// context, and they really execute — all numeric results in the repository
// come from genuine computation. Only *time* is modeled.
//
// Usage sketch (grid-stride element-wise kernel, the paper's Section 3.4):
//
//   vgpu::Device dev;
//   auto cfg = vgpu::LaunchConfig::for_elements(dev.spec(), n * d);
//   vgpu::KernelCostSpec cost;
//   cost.flops = 9.0 * n * d;
//   cost.dram_read_bytes = ...;
//   dev.launch(cfg, cost, [=](const vgpu::ThreadCtx& t) {
//     for (std::int64_t i = t.global_id(); i < n * d; i += t.grid_stride()) {
//       v[i] = omega * v[i] + ...;
//     }
//   });
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/stopwatch.h"
#include "vgpu/device_spec.h"
#include "vgpu/graph/graph.h"
#include "vgpu/pack.h"
#include "vgpu/perf_model.h"
#include "vgpu/prof/hooks.h"
#include "vgpu/san/hooks.h"

namespace fastpso::vgpu {

namespace prof {
struct Profile;  // vgpu/prof/prof.h
}

/// Host-side fast-path toggle (default on). When enabled and no sanitizer
/// Session is recording, Device::launch_elements dispatches one flat index
/// loop instead of materialising every virtual thread, and launch_blocks
/// reuses a per-device shared-memory arena. Accounting (counters, cost
/// specs, modeled seconds) is identical on both paths; only host wall-clock
/// changes. Tests flip this off to drive the faithful per-thread engine.
[[nodiscard]] bool fast_path_enabled();
void set_fast_path_enabled(bool enabled);

/// True when the flat fast path may be taken right now: the toggle is on
/// and no sanitizer Session is recording (a Session always gets the
/// faithful per-thread execution so traces are unchanged).
[[nodiscard]] inline bool use_fast_path() {
  return fast_path_enabled() && !san::active();
}

/// CUDA-like launch configuration: `grid` blocks of `block` threads.
struct LaunchConfig {
  std::int64_t grid = 1;
  int block = 256;

  [[nodiscard]] std::int64_t total_threads() const {
    return grid * static_cast<std::int64_t>(block);
  }

  /// One thread per element, capped at `max_blocks` (grid-stride beyond).
  static LaunchConfig for_elements(const GpuSpec& spec, std::int64_t elements,
                                   int block = 256,
                                   std::int64_t max_blocks = 65535);
};

/// Per-thread view inside a kernel: CUDA's (blockIdx, threadIdx, blockDim,
/// gridDim) plus the usual helpers.
struct ThreadCtx {
  std::int64_t block_idx = 0;
  int thread_idx = 0;
  int block_dim = 1;
  std::int64_t grid_dim = 1;

  [[nodiscard]] std::int64_t global_id() const {
    return block_idx * block_dim + thread_idx;
  }
  [[nodiscard]] std::int64_t grid_stride() const {
    return grid_dim * block_dim;
  }
};

/// Aggregate activity counters. `useful` bytes are what the kernel needed;
/// `fetched` bytes include coalescing amplification — the distinction is
/// what lets Table 3's measured-throughput numbers be reproduced.
struct DeviceCounters {
  std::uint64_t allocs = 0;
  std::uint64_t frees = 0;
  std::uint64_t launches = 0;
  std::uint64_t transfers = 0;
  std::uint64_t barriers = 0;
  double flops = 0;
  double transcendentals = 0;
  double dram_read_useful = 0;
  double dram_write_useful = 0;
  double dram_read_fetched = 0;
  double dram_write_fetched = 0;
  double h2d_bytes = 0;
  double d2h_bytes = 0;
  /// Modeled collective participation (vgpu/comm): count of collectives
  /// this device took part in, the bytes its link carried and the modeled
  /// seconds its comm stream was busy. Separate from the DRAM/PCIe traffic
  /// above — collective payloads move over the inter-device link.
  std::uint64_t collectives = 0;
  double comm_bytes = 0;
  double comm_seconds = 0;
  double modeled_seconds = 0;
  /// Modeled seconds spent inside kernels only (excludes transfers and
  /// allocation overheads) — the denominator of nvprof-style throughput.
  double kernel_seconds = 0;
};

class MemoryPool;  // vgpu/memory_pool.h

/// A virtual GPU. Owns its "device memory" (host allocations bounded by the
/// spec's capacity), a caching MemoryPool, activity counters and the
/// performance model. Not thread-safe: one Device per optimizer instance.
class Device {
 public:
  explicit Device(GpuSpec spec = tesla_v100());
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const GpuSpec& spec() const { return spec_; }
  [[nodiscard]] const GpuPerfModel& perf() const { return perf_; }

  // --- memory -----------------------------------------------------------
  /// Models cudaMalloc: allocates `bytes` of device memory. Throws
  /// CheckError when the device capacity would be exceeded.
  void* raw_alloc(std::size_t bytes);
  /// Models cudaFree. `p` must come from raw_alloc and not be freed twice.
  void raw_free(void* p);

  [[nodiscard]] std::size_t bytes_in_use() const { return bytes_in_use_; }
  [[nodiscard]] std::size_t bytes_available() const {
    return spec_.global_mem_bytes - bytes_in_use_;
  }
  [[nodiscard]] std::size_t live_allocations() const {
    return allocations_.size();
  }

  /// The device's caching allocator (paper Section 4.4 / Table 4), or the
  /// installed override (set_pool_override) while one is active.
  [[nodiscard]] MemoryPool& pool() {
    return pool_override_ != nullptr ? *pool_override_ : *pool_;
  }

  /// Routes pool() to a caller-owned allocator (nullptr restores the
  /// device's own). Returns the previous override. The serve scheduler
  /// installs a private pool around each job's device work so one job's
  /// cache warm-up can never change another job's alloc accounting — pool
  /// cache hits skip raw_alloc, so a shared warm cache would make a
  /// scheduled job's counters diverge from its solo run.
  MemoryPool* set_pool_override(MemoryPool* pool) {
    MemoryPool* prev = pool_override_;
    pool_override_ = pool;
    return prev;
  }

  // --- transfers ---------------------------------------------------------
  void memcpy_h2d(void* dst, const void* src, std::size_t bytes);
  void memcpy_d2h(void* dst, const void* src, std::size_t bytes);
  /// Device-to-device copy: moves at DRAM bandwidth (read + write), not
  /// over PCIe. Device-synchronizing like the other copies.
  void memcpy_d2d(void* dst, const void* src, std::size_t bytes);

  // --- streams --------------------------------------------------------------
  // Concurrent execution timelines, CUDA-stream style. Each kernel launch
  // advances the clock of the *current* stream only; allocations,
  // transfers and host work are device-synchronizing (they align all
  // clocks, as cudaMalloc / default-stream transfers do). modeled_seconds()
  // reports the furthest stream clock, so kernels issued on different
  // streams overlap. With a single stream (the default) this reduces
  // exactly to serial accumulation.
  using StreamId = int;

  /// Creates an additional stream; stream 0 always exists.
  StreamId create_stream();
  /// Routes subsequent launches to `stream`.
  void set_stream(StreamId stream);
  [[nodiscard]] StreamId stream() const { return current_stream_; }
  [[nodiscard]] int stream_count() const {
    return static_cast<int>(stream_clock_.size());
  }
  /// Device-wide barrier: every stream clock jumps to the maximum.
  void sync_streams();
  /// Event-wait, cudaStreamWaitEvent style: raises `stream`'s clock to at
  /// least `seconds` (no-op when the stream is already past it). Pure
  /// dependency modeling — no cost is accounted. The collective layer uses
  /// this to start every participant's comm step at the group-wide ready
  /// time.
  void stream_wait(StreamId stream, double seconds);
  /// Current clock of one stream (modeled seconds). The serve scheduler
  /// reads per-stream finish times from this for job latency and lane
  /// traces; modeled_seconds() is the max over all streams.
  [[nodiscard]] double stream_clock(StreamId stream) const {
    FASTPSO_CHECK_MSG(stream >= 0 &&
                          stream < static_cast<StreamId>(stream_clock_.size()),
                      "unknown stream");
    return stream_clock_[static_cast<std::size_t>(stream)];
  }

  // --- phases / accounting ------------------------------------------------
  /// Tags subsequent modeled time with `phase` (e.g. "swarm" / "eval"),
  /// feeding the Figure 5 breakdown.
  void set_phase(std::string phase) { phase_ = std::move(phase); }
  [[nodiscard]] const std::string& phase() const { return phase_; }

  [[nodiscard]] const DeviceCounters& counters() const { return counters_; }
  void reset_counters();

  /// Exchanges the device's activity counters and per-phase breakdown with
  /// the caller's accumulators. The serve scheduler brackets every entry
  /// into a job's device work with a swap-in/swap-out pair, so each job's
  /// accounting evolves through exactly the solo sequence of += operations
  /// from zero — bitwise-identical to a solo run, which an after-minus-
  /// before delta of doubles could never guarantee. Stream clocks are NOT
  /// swapped: the multiplexed timeline is shared by design. Must not be
  /// called while a capture or replay is open (replay caches breakdown slot
  /// pointers for the duration of the session).
  void swap_accounting(DeviceCounters& counters, TimeBreakdown& breakdown);

  /// Modeled elapsed device time: the furthest stream clock. Equals the
  /// per-phase breakdown total when a single stream is used; smaller when
  /// work overlapped across streams.
  [[nodiscard]] double modeled_seconds() const;
  /// Modeled seconds per phase tag (work-seconds; overlap not deducted).
  [[nodiscard]] const TimeBreakdown& modeled_breakdown() const {
    return modeled_breakdown_;
  }

  /// Adds host-side modeled time (e.g. the CPU half of the heterogeneous
  /// baseline) into the current phase so totals stay comparable.
  void add_modeled_host_seconds(double seconds);

  /// Accounts this device's share of one modeled collective (vgpu/comm):
  /// advances the CURRENT stream by `seconds` (so comm on a dedicated
  /// stream overlaps compute on stream 0), bumps the comm counters and —
  /// under profiling — records a kComm event labeled `label`. Never
  /// captured into graphs: collectives are cross-device operations the
  /// per-device node list cannot represent, so the Communicator re-accounts
  /// them eagerly every iteration, replayed or not.
  void account_comm(const char* label, double bytes, double seconds);

  // --- profiling (vgpu/prof/prof.h) --------------------------------------
  /// Hands over the event timeline collected while prof::active() was true
  /// and starts a fresh one. Empty when profiling was never enabled.
  [[nodiscard]] prof::Profile take_profile();

  /// The live timeline, or nullptr when nothing has been recorded.
  [[nodiscard]] const prof::Profile* profile() const { return profile_.get(); }

  /// Adds host wall seconds of a just-executed kernel body to its event.
  /// Used by the launch templates and by external dispatchers that pair
  /// account_launch with their own execution (core::evaluate_positions).
  void prof_note_wall(double seconds);

  // --- execution graphs (vgpu/graph/graph.h) ------------------------------
  // Capture-once/replay-many of a launch sequence, CUDA-Graph style. While
  // capturing, every account_launch/memcpy is recorded into `g` in addition
  // to its normal eager accounting. While replaying, re-issued launches are
  // matched against the instantiated node list and accounted through its
  // precomputed records (byte-identical values, none of the per-launch
  // setup); unmatched launches fall through to eager accounting.
  void begin_capture(graph::Graph& g);
  void end_capture();
  /// Also captures kernel bodies on the launch_elements fast path so the
  /// graph supports standalone replay_graph(). The caller guarantees that
  /// everything those bodies reference outlives the graph.
  void set_capture_bodies(bool capture) { capture_bodies_ = capture; }
  void begin_replay(graph::GraphExec& exec);
  /// Session-carrying variant: replay state (cursor, stream retarget,
  /// breakdown-slot cache) lives on the caller's session, so several
  /// clients can interleave replays of ONE exec — the serve layer opens a
  /// per-job session for every member of a packed cohort.
  void begin_replay(graph::GraphExec& exec,
                    graph::GraphExec::ReplaySession& session);
  /// Returns whether the replay matched cleanly (no divergence).
  bool end_replay();
  /// Pauses/resumes a replay without closing the session: detach restores
  /// the device to kOff (so another job's replay can be attached), attach
  /// re-installs an OPEN session. The packed scheduler round-robins the
  /// cohort through these between substeps.
  void detach_replay();
  void attach_replay(graph::GraphExec& exec,
                     graph::GraphExec::ReplaySession& session);
  /// Standalone replay: re-executes the whole node list in order —
  /// pre-resolved accounting per node, captured bodies/memcpys re-run.
  /// Only meaningful for graphs captured with set_capture_bodies(true) (or
  /// pure accounting graphs); requires no capture/replay to be open.
  void replay_graph(graph::GraphExec& exec);
  /// Fused standalone replay: like replay_graph, but each fused group
  /// (GraphExec::apply_fusion) is dispatched ONCE — one accounted launch of
  /// the merged cost spec, one prof event carrying the member labels, and
  /// the member element bodies run back-to-back per element. Numerics are
  /// bitwise-identical to replay_graph; launch counters and modeled time
  /// genuinely drop (the applied form of the fusion saving — never used on
  /// the eager/golden paths). Falls back to replay_graph for execs without
  /// a fusion plan.
  void replay_fused(graph::GraphExec& exec);

  /// True while a graph capture is open — call sites use this to gate the
  /// construction of fusion footprints (graph_note_uses) to capture time.
  [[nodiscard]] bool capturing() const {
    return graph_mode_ == GraphMode::kCapturing;
  }
  /// Notes the element domain of the node just captured (no-op unless
  /// capturing). launch_elements does this automatically; dispatchers that
  /// pair account_launch with their own execution call it directly.
  void graph_note_elements(std::int64_t elems);
  /// Attaches the declared buffer footprint of the node just captured
  /// (no-op unless capturing) — see graph::BufferUse.
  void graph_note_uses(std::vector<graph::BufferUse> uses);
  /// Attaches the registered static kernel of the node just captured
  /// (no-op unless capturing) — see vgpu/graph/codegen.h. Always safe to
  /// call: registration only enables compiled standalone replay when the
  /// node also captured its body.
  void graph_note_static(graph::codegen::StaticKernel kernel);
  /// True while a capture with body recording is open. Dispatchers that
  /// pair account_launch with their own execution (core::evaluate_positions)
  /// use this to decide whether to build standalone-replay bodies.
  [[nodiscard]] bool capturing_bodies() const {
    return capture_bodies_ && graph_mode_ == GraphMode::kCapturing;
  }
  /// Attaches standalone-replay bodies to the node just captured (no-op
  /// unless capturing) — the external-dispatcher counterpart of what
  /// launch_elements does automatically under set_capture_bodies(true).
  void graph_attach_bodies(std::function<void()> body,
                           std::function<void(std::int64_t)> elem_body);

  // --- cross-job batch packing (vgpu/pack.h, src/serve/packed.h) ----------
  /// Attaches/clears the deferred-execution sink. While attached and a
  /// replay is open, matched element launches on the fast path are offered
  /// to the sink instead of executing inline; everything else flushes the
  /// sink's current lane first so per-job ordering is preserved. Accounting
  /// is unaffected (see vgpu/pack.h). Returns the previous sink.
  PackSink* set_pack_sink(PackSink* sink) {
    PackSink* prev = pack_sink_;
    pack_sink_ = sink;
    return prev;
  }
  [[nodiscard]] PackSink* pack_sink() const { return pack_sink_; }

  /// Executes one packed cohort dispatch: `run` performs the deferred spans
  /// of `jobs` same-shape jobs as a single grid of `cfg` (the packing
  /// engine builds `run` from its job-index indirection table). Pure
  /// execution — every member launch was already accounted through its own
  /// job's replay, so no counters or clocks move here; under profiling one
  /// event labeled "pack[k=jobs]:<label>" records the cohort dispatch with
  /// the packed modeled pricing for trace inspection.
  template <typename Fn>
  void packed_dispatch(const char* label, const LaunchConfig& cfg, int jobs,
                       double modeled_seconds, Fn&& run) {
    if (prof::active()) [[unlikely]] {
      prof_record_packed(label, cfg, jobs, modeled_seconds);
      Stopwatch wall;
      run();
      prof_note_wall(wall.elapsed_s());
      return;
    }
    run();
  }

  // --- kernel launch ------------------------------------------------------
  /// Launches `body` once per thread of `cfg`. The body receives a
  /// ThreadCtx and is expected to grid-stride over its work.
  template <typename Body>
  void launch(const LaunchConfig& cfg, const KernelCostSpec& cost,
              Body&& body) {
    if (pack_sink_ != nullptr) [[unlikely]] {
      pack_sink_->flush_lane();  // per-thread launches never defer
    }
    account_launch(cfg, cost);
    ThreadCtx ctx;
    ctx.block_dim = cfg.block;
    ctx.grid_dim = cfg.grid;
    auto run = [&] {
      if (san::active()) [[unlikely]] {
        san::hook_launch_begin(cfg, cost);
        for (std::int64_t b = 0; b < cfg.grid; ++b) {
          ctx.block_idx = b;
          san::hook_block_begin(b);
          for (int t = 0; t < cfg.block; ++t) {
            ctx.thread_idx = t;
            san::hook_thread_begin(b, t);
            body(static_cast<const ThreadCtx&>(ctx));
          }
        }
        san::hook_launch_end();
        return;
      }
      for (std::int64_t b = 0; b < cfg.grid; ++b) {
        ctx.block_idx = b;
        for (int t = 0; t < cfg.block; ++t) {
          ctx.thread_idx = t;
          body(static_cast<const ThreadCtx&>(ctx));
        }
      }
    };
    if (prof::active()) [[unlikely]] {
      Stopwatch wall;
      run();
      prof_note_wall(wall.elapsed_s());
      return;
    }
    run();
  }

  /// Launches an element-wise kernel over `[0, n_elems)`. On the fast path
  /// (no sanitizer Session, toggle on) this runs one flat index loop —
  /// identical accounting, identical element visit-set, no ThreadCtx per
  /// virtual thread. Otherwise it falls back to the faithful per-thread
  /// grid-stride execution so sanitizer traces are unchanged. Bodies must
  /// be order-independent across elements (true of every element-wise
  /// kernel: each index owns its own outputs).
  template <typename Body>
  void launch_elements(const LaunchConfig& cfg, const KernelCostSpec& cost,
                       std::int64_t n_elems, Body&& body) {
    if (!use_fast_path()) [[unlikely]] {
      launch(cfg, cost, [&](const ThreadCtx& t) {
        for (std::int64_t i = t.global_id(); i < n_elems;
             i += t.grid_stride()) {
          body(i);
        }
      });
      if (graph_mode_ == GraphMode::kCapturing) [[unlikely]] {
        graph_note_elements(n_elems);
      }
      return;
    }
    account_launch(cfg, cost);
    if (graph_mode_ == GraphMode::kCapturing) [[unlikely]] {
      graph_note_elements(n_elems);
      if (capture_bodies_) {
        // Copies of the body for standalone replay; lifetime of everything
        // they reference is the caller's promise (set_capture_bodies).
        graph_capture_body([n_elems, body]() mutable {
          for (std::int64_t i = 0; i < n_elems; ++i) {
            body(i);
          }
        });
        graph_capture_elem_body(
            [body](std::int64_t i) mutable { body(i); });
      }
    }
    if (pack_sink_ != nullptr) [[unlikely]] {
      // A replay-matched launch was fully accounted above; hand its body to
      // the packing engine and run it inside the cohort dispatch instead.
      // Declined offers (unmatched launch, oversized body) flush the lane
      // and run inline so per-job data ordering holds.
      if constexpr (PackSpan::admissible<std::decay_t<Body>>) {
        if (last_replay_node_ >= 0) {
          PackSpan span;
          span.bind(body);
          if (pack_sink_->offer(last_replay_node_, n_elems, cost,
                                last_replay_seconds_, span)) {
            pack_defer_stream_time();
            return;
          }
        }
      }
      pack_sink_->flush_lane();
    }
    if (prof::active()) [[unlikely]] {
      Stopwatch wall;
      for (std::int64_t i = 0; i < n_elems; ++i) {
        body(i);
      }
      prof_note_wall(wall.elapsed_s());
      return;
    }
    for (std::int64_t i = 0; i < n_elems; ++i) {
      body(i);
    }
  }

  /// Launches a cooperative block kernel: `body` is called once per block
  /// with a BlockCtx that provides shared memory and barrier phases.
  /// Declared here, defined in vgpu/block.h (needs BlockCtx).
  template <typename Body>
  void launch_blocks(const LaunchConfig& cfg, const KernelCostSpec& cost,
                     Body&& body);

  /// Accounting entry point shared by all launch styles (also used by
  /// tests to drive the model directly).
  void account_launch(const LaunchConfig& cfg, const KernelCostSpec& cost);

  /// External-dispatcher deferral hook (core::evaluate_positions): offers a
  /// range closure for the launch just accounted. Returns true when the
  /// sink took it — the dispatcher must then skip its inline execution.
  template <typename Fn>
  bool pack_offer_range(std::int64_t n_elems, const KernelCostSpec& cost,
                        const Fn& fn) {
    if (pack_sink_ != nullptr) [[unlikely]] {
      if constexpr (PackSpan::admissible<Fn>) {
        if (last_replay_node_ >= 0) {
          PackSpan span;
          span.bind_range(fn);
          if (pack_sink_->offer(last_replay_node_, n_elems, cost,
                                last_replay_seconds_, span)) {
            pack_defer_stream_time();
            return true;
          }
        }
      }
      pack_sink_->flush_lane();
    }
    return false;
  }

  /// Flushes the attached sink's current lane (no-op without a sink).
  /// Called by every non-deferrable execution style and by host-side
  /// readers of device data (reductions, host fold loops).
  void pack_flush_lane() {
    if (pack_sink_ != nullptr) [[unlikely]] {
      pack_sink_->flush_lane();
    }
  }

  // --- packed-timeline hooks (serve/packed.h) -----------------------------
  // A deferred launch's per-job accounting (counters, modeled_seconds,
  // breakdown) stays exactly solo, but its stream-clock advance is
  // retracted at offer time and re-added by whichever path executes the
  // span: the merged cohort dispatch (pack_commit_dispatch, at the packed
  // price) or an inline lane flush (pack_restore_stream_seconds, at the
  // original price). Only *where on the shared timeline* the work lands
  // moves — the scheduling freedom the serve contract grants.

  /// Advances the clocks of the dispatch's member streams together: all of
  /// them wait for the packed launch, which starts when the latest member
  /// is ready and costs `seconds` once.
  void pack_commit_dispatch(const StreamId* streams, int count,
                            double seconds) {
    double start = 0;
    for (int i = 0; i < count; ++i) {
      start = std::max(start,
                       stream_clock_[static_cast<std::size_t>(streams[i])]);
    }
    const double finish = start + seconds;
    for (int i = 0; i < count; ++i) {
      stream_clock_[static_cast<std::size_t>(streams[i])] = finish;
    }
  }

  /// Re-adds a retracted launch's time to `stream` (inline flush fallback:
  /// the span ran unpacked after all, at its original solo price).
  void pack_restore_stream_seconds(StreamId stream, double seconds) {
    stream_clock_[static_cast<std::size_t>(stream)] += seconds;
  }

  /// Reusable shared-memory scratch arena for BlockCtx. Grows on demand,
  /// never shrinks, and is NOT cleared between blocks — CUDA shared memory
  /// carries no cross-block guarantees either, and every kernel in the
  /// repo writes its shared arrays before reading them (the sanitizer's
  /// race checker enforces exactly this contract).
  [[nodiscard]] std::byte* shared_scratch(std::size_t bytes);

 private:
  friend class MemoryPool;

  GpuSpec spec_;
  GpuPerfModel perf_;
  std::map<void*, std::size_t> allocations_;
  std::size_t bytes_in_use_ = 0;
  DeviceCounters counters_;
  TimeBreakdown modeled_breakdown_;
  std::string phase_ = "default";
  std::unique_ptr<MemoryPool> pool_;
  MemoryPool* pool_override_ = nullptr;
  std::vector<double> stream_clock_ = {0.0};
  StreamId current_stream_ = 0;
  std::vector<std::byte> shared_scratch_;
  /// Event timeline, allocated lazily on the first profiled operation so an
  /// idle profiler costs nothing (vgpu/prof/prof.h).
  std::unique_ptr<prof::Profile> profile_;

  /// Graph capture/replay session state. kOff is the steady state; the
  /// account_launch hot path pays exactly one predicted-not-taken compare
  /// for it.
  enum class GraphMode : std::uint8_t { kOff, kCapturing, kReplaying };
  GraphMode graph_mode_ = GraphMode::kOff;
  bool capture_bodies_ = false;
  graph::Graph* capture_graph_ = nullptr;
  graph::GraphExec* replay_exec_ = nullptr;
  /// Session the open replay accounts through (the exec's own session for
  /// the exec-level begin_replay, a caller-owned one for the packed path).
  graph::GraphExec::ReplaySession* replay_session_ = nullptr;

  /// Retracts the just-accounted launch's stream-clock advance after an
  /// accepted deferral (the account_launch replay path added exactly
  /// last_replay_seconds_ to the current stream, stream-locally, with no
  /// intervening clock operation). The sink owes this time back through
  /// pack_commit_dispatch / pack_restore_stream_seconds.
  void pack_defer_stream_time() {
    stream_clock_[static_cast<std::size_t>(current_stream_)] -=
        last_replay_seconds_;
  }

  /// Cross-job packing state (vgpu/pack.h). last_replay_node_ is the node
  /// index the most recent account_launch matched during replay (-1
  /// otherwise) — the deferral key launch_elements offers to the sink.
  PackSink* pack_sink_ = nullptr;
  int last_replay_node_ = -1;
  double last_replay_seconds_ = 0;

  /// Capture/replay half of account_launch (device.cpp). Returns true when
  /// a replay match consumed the launch (fast-path accounting done).
  bool graph_account(const LaunchConfig& cfg, const KernelCostSpec& cost);
  /// Attaches a standalone-replay body to the node just captured.
  void graph_capture_body(std::function<void()> body);
  /// Attaches a per-element body to the node just captured (replay_fused).
  void graph_capture_elem_body(std::function<void(std::int64_t)> body);
  /// Executes and accounts one standalone-replay node (replay_graph, and
  /// the unfused steps of replay_fused).
  void replay_node(const graph::GraphExec::ExecNode& en);

  /// `device_wide` costs (allocs, transfers, host work) synchronize and
  /// advance every stream; kernel costs advance only the current stream.
  void add_modeled(double seconds, bool device_wide = true);

  // Out-of-line profiler slow paths (device.cpp); reached only while
  // prof::active(). Events are recorded *before* add_modeled so t_begin is
  // the pre-advance stream clock.
  void prof_record_kernel(const LaunchConfig& cfg, const KernelCostSpec& cost,
                          double seconds);
  /// Replay-path variant: occupancies and roofline terms come pre-resolved
  /// from the graph node instead of a kernel_detail call. Label/phase follow
  /// `label`/`phase` (node values for standalone replay, live values for
  /// paired replay — identical to eager either way).
  void prof_record_kernel_replay(std::int64_t grid, int block, int stream,
                                 const std::string& phase, const char* label,
                                 const KernelCostSpec& cost, double seconds,
                                 double compute_occupancy,
                                 double memory_occupancy, bool memory_bound);
  void prof_record_op(prof::EventKind kind, double bytes, double seconds,
                      double wall_seconds);
  /// Packed cohort dispatch event ("pack[k=jobs]:<label>").
  void prof_record_packed(const char* label, const LaunchConfig& cfg,
                          int jobs, double modeled_seconds);
};

}  // namespace fastpso::vgpu
