#include "vgpu/device_spec.h"

namespace fastpso::vgpu {

GpuSpec tesla_v100() {
  GpuSpec spec;
  spec.name = "Tesla V100-PCIe-16GB (virtual)";
  return spec;  // defaults in the struct are the V100 numbers
}

GpuSpec test_gpu_small() {
  GpuSpec spec;
  spec.name = "test-gpu-small";
  spec.sm_count = 2;
  spec.cores_per_sm = 32;
  spec.clock_ghz = 1.0;
  spec.global_mem_bytes = 8u << 20;  // 8 MiB
  spec.shared_mem_per_block = 4u << 10;
  spec.max_threads_per_block = 128;
  spec.eff_dram_bw_gbps = 10.0;
  spec.bw_saturation_threads = 512.0;
  // Slow, high-latency links so collective costs are visible at tiny
  // payloads in the unit tests.
  spec.link_bw_gbps = 0.5;
  spec.link_latency_us = 10.0;
  return spec;
}

CpuSpec xeon_e5_2640v4() {
  CpuSpec spec;
  spec.name = "2x Xeon E5-2640v4 (virtual)";
  return spec;  // defaults are the paper-host numbers
}

}  // namespace fastpso::vgpu
