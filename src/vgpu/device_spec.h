// Machine descriptions for the performance models.
//
// The paper's testbed is a Tesla V100 (16 GB) in a dual Xeon E5-2640v4 host.
// This environment has neither, so timing is produced by an analytic model
// (see vgpu/perf_model.h) parameterized by these specs. All constants that
// were *calibrated* against the paper's measured numbers (rather than taken
// from vendor datasheets) are marked "calibrated" below and discussed in
// DESIGN.md §1 and §5.
#pragma once

#include <cstddef>
#include <string>

namespace fastpso::vgpu {

/// Static description of a (virtual) GPU.
struct GpuSpec {
  std::string name;

  // --- datasheet constants ---
  int sm_count = 80;               ///< streaming multiprocessors
  int cores_per_sm = 64;           ///< FP32 lanes per SM
  double clock_ghz = 1.38;         ///< boost clock
  std::size_t global_mem_bytes = 16ull << 30;  ///< device memory capacity
  std::size_t shared_mem_per_block = 48u << 10;
  int max_threads_per_block = 1024;
  int warp_size = 32;
  double pcie_bw_gbps = 12.0;      ///< effective H2D/D2H bandwidth (GB/s)
  double tensor_tflops = 112.0;    ///< FP16 tensor-core peak (TFLOP/s)

  // --- inter-device link (vgpu/comm, DESIGN.md §12) ---
  /// Effective per-direction device-to-device link bandwidth (GB/s). The
  /// paper machine carries exchanges over PCIe; an NVLink-generation part
  /// would raise this. Consumed by the modeled collectives' bandwidth term.
  double link_bw_gbps = 10.0;
  /// Per-hop link latency (microseconds): one ring step of a collective
  /// pays this once regardless of payload.
  double link_latency_us = 2.0;

  // --- calibrated effective-throughput constants ---
  /// Effective DRAM bandwidth (GB/s) achievable by streaming element-wise
  /// kernels at full occupancy. Calibrated so the modeled fastpso
  /// dram_read_throughput reproduces the paper's Table 3 (~107 GB/s read,
  /// i.e. ~160 GB/s total read+write for this kernel mix).
  double eff_dram_bw_gbps = 220.0;
  /// Threads needed to saturate DRAM bandwidth (latency hiding).
  double bw_saturation_threads = 70000.0;
  /// Exponent of the bandwidth-vs-occupancy curve; calibrated so a
  /// 5000-thread particle-per-thread kernel achieves ~38% of effective
  /// bandwidth, reproducing gpu-pso's measured 61.8 GB/s (Table 3).
  double bw_occupancy_exponent = 0.37;
  /// Fraction of FP32 peak achievable by non-tensor ALU work.
  double alu_efficiency = 0.55;
  /// Throughput cost of one transcendental (sin/cos/exp/log) relative to
  /// one FMA on the special-function units.
  double sfu_cost_flops = 8.0;

  // --- overheads ---
  double launch_overhead_us = 4.0;   ///< per kernel launch
  double barrier_overhead_us = 0.3;  ///< per __syncthreads phase per launch
  double alloc_overhead_us = 5.0;    ///< cudaMalloc-equivalent
  double free_overhead_us = 3.0;     ///< cudaFree-equivalent
  /// CUDA-Graph amortization constants (vgpu/graph): replaying an
  /// instantiated graph pays one cudaGraphLaunch-equivalent per replay plus
  /// a small residual gap per node, instead of launch_overhead_us per
  /// kernel. Used only for the *reported* graph-mode modeled time —
  /// device clocks and counters always accrue the eager overheads so every
  /// eager-mode golden stays byte-identical.
  double graph_launch_overhead_us = 10.0;  ///< per graph replay
  double graph_node_overhead_us = 0.5;     ///< residual per node in a replay

  /// Total FP32 lanes (SMs x cores).
  [[nodiscard]] double lanes() const {
    return static_cast<double>(sm_count) * cores_per_sm;
  }
  /// Peak FP32 throughput in FLOP/s (2 flops per FMA lane-cycle).
  [[nodiscard]] double peak_flops() const {
    return lanes() * clock_ghz * 1e9 * 2.0;
  }
};

/// The paper's device: Tesla V100-PCIe 16 GB.
GpuSpec tesla_v100();

/// A smaller device for tests (few SMs, tiny shared memory) so resource
/// limits are exercised without big allocations.
GpuSpec test_gpu_small();

/// Static description of a (virtual) CPU used by the CPU cost models.
struct CpuSpec {
  std::string name;
  int cores = 20;             ///< physical cores (2 sockets x 10)
  double clock_ghz = 2.4;     ///< E5-2640v4 base clock

  // --- calibrated effective-throughput constants (DESIGN.md §1) ---
  /// Effective scalar+autovectorized FLOP rate of one core (FLOP/s).
  double eff_flops_per_core = 4.0e9;
  /// Effective streaming bandwidth of one core (GB/s).
  double single_core_bw_gbps = 7.0;
  /// Effective aggregate bandwidth with all cores (GB/s); memory-bound
  /// OpenMP code only gains bw_multi/bw_single, which is what limits the
  /// paper's fastpso-omp to ~1.3x over fastpso-seq.
  double multi_core_bw_gbps = 9.5;
  /// Parallel efficiency of the OpenMP compute phase.
  double omp_efficiency = 0.8;
  /// Per-iteration OpenMP fork/join + barrier overhead (microseconds).
  double omp_barrier_us = 15.0;
};

/// The paper's host: dual Xeon E5-2640v4.
CpuSpec xeon_e5_2640v4();

}  // namespace fastpso::vgpu
