#include "vgpu/graph/codegen.h"

#include <cstdlib>
#include <map>
#include <string>
#include <utility>

namespace fastpso::vgpu::graph::codegen {

namespace {

bool initial_enabled() {
  const char* env = std::getenv("FASTPSO_CODEGEN");
  return env != nullptr && env[0] == '1' && env[1] == '\0';
}

bool g_enabled = initial_enabled();

/// Registry state behind function-local statics so registration from
/// static initializers in other translation units is order-safe.
struct TagTable {
  std::map<std::string, std::uint32_t, std::less<>> ids;
  std::vector<std::string> names = {"<invalid>"};  // names[0] reserved
};

TagTable& tags() {
  static TagTable table;
  return table;
}

std::map<std::vector<std::uint32_t>, ComposedFn>& compositions() {
  static std::map<std::vector<std::uint32_t>, ComposedFn> table;
  return table;
}

}  // namespace

bool enabled() { return g_enabled; }
void set_enabled(bool enabled) { g_enabled = enabled; }

std::uint32_t intern_tag(std::string_view name) {
  TagTable& table = tags();
  const auto it = table.ids.find(name);
  if (it != table.ids.end()) {
    return it->second;
  }
  const auto id = static_cast<std::uint32_t>(table.names.size());
  table.names.emplace_back(name);
  table.ids.emplace(std::string(name), id);
  return id;
}

std::string_view tag_name(std::uint32_t tag) {
  const TagTable& table = tags();
  if (tag >= table.names.size()) {
    return table.names.front();
  }
  return table.names[tag];
}

void register_composed(std::vector<std::uint32_t> tags, ComposedFn fn) {
  compositions()[std::move(tags)] = fn;
}

ComposedFn find_composed(const std::vector<std::uint32_t>& tags) {
  const auto& table = compositions();
  const auto it = table.find(tags);
  return it != table.end() ? it->second : nullptr;
}

}  // namespace fastpso::vgpu::graph::codegen
