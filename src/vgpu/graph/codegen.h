// Compiled SoA loops for fused standalone replay (DESIGN.md §11).
//
// Motivation: the fusion pass (vgpu/graph/fusion.h) removes launch
// *bookkeeping*, but Device::replay_fused still executes every member body
// per element through a std::function — an indirect call the compiler can
// neither inline nor vectorize, so fused replay is no faster on the host
// than the eager loop it replaced. Real GPU PSO stacks get their throughput
// from hand-fused, tightly-compiled per-particle loops (cuPSO, PAPERS.md);
// this layer reproduces that on the host side.
//
// The mechanism is a static-kernel registry:
//
//   register    A known element kernel (init fill, swarm update, eval
//               dispatch, pbest compare/gather — src/core/kernels_registry.h)
//               attaches a StaticKernel to its captured node at launch time:
//               an interned code tag, a statically-bound span function
//               `void(const void* args, int64 begin, int64 end)`, and a
//               typed, by-value argument pack. Registration is cheap and
//               always on while capturing; it never changes execution.
//   resolve     GraphExec::apply_codegen (auto-run at the end of
//               apply_fusion when codegen is enabled) resolves each fused
//               group once: when every member carries a valid StaticKernel
//               *and* a captured body, the group stores the members' span
//               pointers and raw argument pointers — and, when the exact
//               member tag sequence was registered as a composition
//               (register_composed_sequence), a single fully-inlined
//               ComposedFn that runs all members chunk-wise in one pass
//               with no indirect calls at all.
//   execute     Device::replay_fused dispatches compiled groups through the
//               composed loop (best) or chunked member spans (good), and
//               falls back to the interpreted per-element path for any
//               group with an unregistered/opaque member — automatically,
//               with no caller involvement.
//
// Why numerics stay bitwise identical: every kernel's call-site body and
// its registered span share ONE `element()` function (identity by
// construction), and fusion legality already guarantees that all in-group
// same-storage dataflow is element-aligned (BufferUse::aligned_with) — so
// any member-order-preserving schedule (per-element, chunked, or composed)
// produces exactly the eager bits. No fast-math is enabled anywhere in the
// build.
//
// Default off; enable with FASTPSO_CODEGEN=1 or codegen::set_enabled(true).
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace fastpso::vgpu::graph::codegen {

/// Process-wide codegen toggle (default off; FASTPSO_CODEGEN=1 starts it
/// on). Gates only apply_codegen's resolution — registration during
/// capture is unconditional and free.
[[nodiscard]] bool enabled();
void set_enabled(bool enabled);

/// Statically-bound loop over elements [begin, end) of one kernel.
using SpanFn = void (*)(const void* args, std::int64_t begin,
                        std::int64_t end);

/// Fully-inlined loop over elements [begin, end) of a whole fused group;
/// args[m] is member m's argument pack, in capture order.
using ComposedFn = void (*)(const void* const* args, std::int64_t begin,
                            std::int64_t end);

/// Chunk length for the member-span tier: spans run in member order over
/// ~kChunk-element windows so intermediate values stay cache-hot between
/// members without changing any element's member-visit order.
inline constexpr std::int64_t kChunk = 1024;

/// Interns a kernel code tag ("init/fill_uniform", ...). Tags identify
/// CODE, never data — two launches of the same kernel over different
/// buffers share a tag and differ only in their argument packs. Returns a
/// stable nonzero id; repeated calls with the same name return the same id.
[[nodiscard]] std::uint32_t intern_tag(std::string_view name);
/// Name for an interned tag ("<invalid>" for 0 / unknown ids).
[[nodiscard]] std::string_view tag_name(std::uint32_t tag);

/// What a call site registers against its captured node: which code the
/// launch ran (tag + span) and the by-value arguments it ran over. The
/// shared_ptr keeps the pack alive as long as the graph; the raw pointers
/// *inside* the pack follow the same caller lifetime promise as captured
/// bodies (Device::set_capture_bodies).
struct StaticKernel {
  std::uint32_t tag = 0;
  SpanFn span = nullptr;
  std::shared_ptr<const void> args;

  [[nodiscard]] bool valid() const {
    return tag != 0 && span != nullptr && args != nullptr;
  }
};

/// Registers a composed loop for an exact member tag sequence. Later
/// registrations of the same sequence win (there is no semantic ambiguity:
/// any registrant for a sequence must compose exactly those members'
/// element functions in order).
void register_composed(std::vector<std::uint32_t> tags, ComposedFn fn);
/// Composed loop for an exact tag sequence, or nullptr.
[[nodiscard]] ComposedFn find_composed(const std::vector<std::uint32_t>& tags);

namespace detail {

/// Generic span: the per-element loop over K::element. Kernels whose work
/// has a cheaper batched form (e.g. the eval dispatch) define their own
/// K::span instead of using this.
template <typename K>
void span_thunk(const void* args, std::int64_t begin, std::int64_t end) {
  const auto& a = *static_cast<const typename K::Args*>(args);
  for (std::int64_t i = begin; i < end; ++i) {
    K::element(a, i);
  }
}

template <typename K>
concept HasOwnSpan = requires(const void* p, std::int64_t i) {
  { K::span(p, i, i) };
};

/// One pass over a member sequence: chunk-wise member-major, everything
/// statically bound. Per ~kChunk window each member's element loop runs as
/// its own tight, trivially-vectorizable loop (an element-interleaved body
/// would serialize the FMA chains and defeat SIMD — measured 10x slower on
/// the micro_engine --codegen chain), while the window keeps intermediate
/// values cache-hot between members. The fold evaluates members left to
/// right (capture order == member order); element-visit order per member
/// is ascending, exactly as the chunked tier and the eager launches —
/// fusion legality makes all these schedules produce identical bits (see
/// the header comment).
template <typename... Ks>
void composed_thunk(const void* const* args, std::int64_t begin,
                    std::int64_t end) {
  for (std::int64_t c = begin; c < end; c += kChunk) {
    const std::int64_t stop = c + kChunk < end ? c + kChunk : end;
    std::size_t m = 0;
    (([&] {
       const auto& a = *static_cast<const typename Ks::Args*>(args[m]);
       ++m;
       for (std::int64_t i = c; i < stop; ++i) {
         Ks::element(a, i);
       }
     }()),
     ...);
  }
}

}  // namespace detail

/// Builds the StaticKernel for one launch of kernel struct K over `args`.
/// K's contract (src/core/kernels_registry.h): a POD-ish `Args` pack, a
/// `static std::uint32_t tag()`, and a
/// `static void element(const Args&, std::int64_t i)` that is THE code the
/// call-site body runs — plus optionally its own
/// `static void span(const void*, int64, int64)` when a batched form is
/// cheaper than the per-element loop.
template <typename K>
[[nodiscard]] StaticKernel make_static(typename K::Args args) {
  StaticKernel k;
  k.tag = K::tag();
  if constexpr (detail::HasOwnSpan<K>) {
    k.span = &K::span;
  } else {
    k.span = &detail::span_thunk<K>;
  }
  k.args = std::make_shared<const typename K::Args>(std::move(args));
  return k;
}

/// Registers composed_thunk<Ks...> for the tag sequence {Ks::tag()...}.
template <typename... Ks>
void register_composed_sequence() {
  register_composed({Ks::tag()...}, &detail::composed_thunk<Ks...>);
}

/// Resolution bookkeeping, surfaced through core::Result for benches and
/// tests. Like GraphStats/FusionStats, reported only: compiled execution
/// changes host wall time, never counters, modeled seconds or traces.
struct CodegenStats {
  bool enabled = false;  ///< codegen mode was on for this exec
  bool applied = false;  ///< apply_codegen ran
  /// Fused groups whose members ALL carry a registered static kernel (the
  /// serve layer's paired replays reach this level: recognition without
  /// body execution).
  int registered_groups = 0;
  /// Registered groups whose exact tag sequence has a composed loop.
  int composed_groups = 0;
  /// Registered groups that are executable compiled (bodies captured) —
  /// Device::replay_fused runs these through spans / the composed loop.
  int compiled_groups = 0;
  /// Fused groups with at least one unregistered/opaque member: the
  /// interpreted per-element fallback.
  int interpreted_groups = 0;
  /// Unfused kernel nodes replayable through their registered span.
  int compiled_nodes = 0;
  /// Fused-group dispatches executed compiled (chunked or composed).
  std::uint64_t compiled_dispatches = 0;
  /// The subset of compiled_dispatches that ran the composed loop.
  std::uint64_t composed_dispatches = 0;
};

}  // namespace fastpso::vgpu::graph::codegen
