#include "vgpu/graph/fusion.h"

#include <cstddef>
#include <utility>
#include <vector>

#include "common/check.h"
#include "vgpu/san/sanitizer.h"

namespace fastpso::vgpu::graph {

namespace {

/// True when any node outside [first, last] may read storage overlapping
/// `written`. The captured graph replays in a loop, so a node *before* the
/// group reads this iteration's write on the next time around — every
/// outside node counts, not just later ones. Kernel nodes without a
/// declared footprint are opaque: they may read anything.
bool outside_reader(const std::vector<GraphExec::ExecNode>& nodes,
                    std::size_t first, std::size_t last,
                    const BufferUse& written) {
  for (std::size_t k = 0; k < nodes.size(); ++k) {
    if (k >= first && k <= last) {
      continue;
    }
    const Node& n = nodes[k].node;
    if (n.kind != NodeKind::kKernel) {
      BufferUse src;
      src.base = n.src;
      src.bytes = n.bytes;
      if (written.overlaps(src)) {
        return true;
      }
      continue;
    }
    if (!n.has_uses) {
      return true;
    }
    for (const BufferUse& u : n.uses) {
      if (!u.write && u.overlaps(written)) {
        return true;
      }
    }
  }
  return false;
}

std::string member_label(const Node& node) {
  return node.label.empty() ? std::string("<unlabeled>") : node.label;
}

}  // namespace

bool FusionPass::fusible(const Node& node) {
  return node.kind == NodeKind::kKernel && node.elems > 0 && node.has_uses &&
         node.cost.barriers == 0;
}

bool FusionPass::compatible(const Node& a, const Node& b) {
  return a.elems == b.elems && a.grid == b.grid && a.block == b.block &&
         a.stream == b.stream &&
         a.cost.uses_tensor_cores == b.cost.uses_tensor_cores;
}

bool FusionPass::hazard(const Node& member, const Node& candidate) {
  for (const BufferUse& u : member.uses) {
    for (const BufferUse& v : candidate.uses) {
      if (!u.write && !v.write) {
        continue;  // shared reads never conflict
      }
      if (u.overlaps(v) && !u.aligned_with(v)) {
        return true;  // RAW / WAR / WAW across element slices
      }
    }
  }
  return false;
}

void FusionPass::run(GraphExec& exec, const GpuPerfModel& perf) {
  if (exec.fusion_stats_.applied) {
    return;
  }
  exec.fusion_perf_ = &perf;
  exec.fusion_stats_.applied = true;

  std::vector<GraphExec::ExecNode>& nodes = exec.nodes_;
  std::size_t i = 0;
  while (i < nodes.size()) {
    const Node& first = nodes[i].node;
    if (!fusible(first)) {
      ++i;
      continue;
    }
    // Grow a group greedily: a candidate joins only when it is fusible,
    // shape-compatible with the run, and hazard-free against every current
    // member. Any other node (memcpy, reduction, shape mismatch, hazard)
    // closes the group; the scan then restarts at that node so it can seed
    // the next group.
    std::vector<int> members = {static_cast<int>(i)};
    std::size_t j = i + 1;
    for (; j < nodes.size(); ++j) {
      const Node& cand = nodes[j].node;
      if (!fusible(cand) || !compatible(first, cand)) {
        break;
      }
      bool blocked = false;
      for (int m : members) {
        if (hazard(nodes[static_cast<std::size_t>(m)].node, cand)) {
          blocked = true;
          break;
        }
      }
      if (blocked) {
        break;
      }
      members.push_back(static_cast<int>(j));
    }
    if (members.size() < 2) {
      i = j;
      continue;
    }

    GraphExec::FusedGroup group;
    group.members = members;
    group.grid = first.grid;
    group.block = first.block;
    group.stream = first.stream;
    group.elems = first.elems;
    group.phase = first.phase;
    group.shape = nodes[i].shape;
    group.label = "fused:";
    const std::size_t last = static_cast<std::size_t>(members.back());
    for (std::size_t m = 0; m < members.size(); ++m) {
      const Node& node = nodes[static_cast<std::size_t>(members[m])].node;
      if (m > 0) {
        group.label += '+';
      }
      group.label += member_label(node);
      group.merged_cost += node.cost;
      group.static_member_seconds +=
          perf.kernel_seconds_resolved(group.shape, node.cost);
    }

    // Intermediate-traffic elision over aligned producer/consumer pairs.
    // The consumer's read is always elided (the value flows in registers
    // inside the fused element loop); the producer's write only when no
    // node outside the group — anywhere in the looped graph — reads that
    // storage. Fetched bytes are elided at the owning member's
    // amplification, mirroring how the member declared them.
    for (std::size_t p = 0; p < members.size(); ++p) {
      const Node& producer = nodes[static_cast<std::size_t>(members[p])].node;
      for (const BufferUse& w : producer.uses) {
        if (!w.write) {
          continue;
        }
        bool consumed = false;
        for (std::size_t c = p + 1; c < members.size(); ++c) {
          const Node& consumer =
              nodes[static_cast<std::size_t>(members[c])].node;
          for (const BufferUse& r : consumer.uses) {
            if (r.write || !w.aligned_with(r)) {
              continue;
            }
            consumed = true;
            group.elide_read_useful += r.bytes;
            group.elide_read_fetched +=
                r.bytes * consumer.cost.read_amplification;
          }
        }
        if (consumed && !outside_reader(nodes, static_cast<std::size_t>(
                                                   members.front()),
                                        last, w)) {
          group.elide_write_useful += w.bytes;
          group.elide_write_fetched +=
              w.bytes * producer.cost.write_amplification;
        }
      }
    }
    group.merged_cost.elide_traffic(
        group.elide_read_useful, group.elide_read_fetched,
        group.elide_write_useful, group.elide_write_fetched);
    group.static_fused_seconds =
        perf.kernel_seconds_resolved(group.shape, group.merged_cost);

    const int group_index = static_cast<int>(exec.fusion_groups_.size());
    for (int m : members) {
      nodes[static_cast<std::size_t>(m)].fuse_group = group_index;
    }
    exec.fusion_stats_.fused_members += static_cast<int>(members.size());
    exec.fusion_stats_.elided_read_bytes += group.elide_read_useful;
    exec.fusion_stats_.elided_write_bytes += group.elide_write_useful;
    exec.fusion_groups_.push_back(std::move(group));
    i = j;
  }
  exec.fusion_stats_.groups = static_cast<int>(exec.fusion_groups_.size());
}

void GraphExec::apply_fusion(const GpuPerfModel& perf) {
  FusionPass::run(*this, perf);
  if (codegen::enabled()) {
    apply_codegen();
  }
}

void GraphExec::apply_codegen() {
  if (codegen_stats_.applied) {
    return;
  }
  codegen_stats_.applied = true;
  codegen_stats_.enabled = codegen::enabled();

  for (FusedGroup& group : fusion_groups_) {
    bool registered = true;
    bool have_bodies = true;
    std::vector<std::uint32_t> tags;
    tags.reserve(group.members.size());
    for (int m : group.members) {
      const Node& node = nodes_[static_cast<std::size_t>(m)].node;
      if (!node.static_kernel.valid()) {
        registered = false;
        break;
      }
      if (!node.elem_body) {
        have_bodies = false;
      }
      tags.push_back(node.static_kernel.tag);
    }
    if (!registered) {
      ++codegen_stats_.interpreted_groups;
      continue;
    }
    ++codegen_stats_.registered_groups;
    const codegen::ComposedFn composed = codegen::find_composed(tags);
    if (composed != nullptr) {
      ++codegen_stats_.composed_groups;
    }
    if (!have_bodies) {
      // Recognition without execution: a body-less graph (e.g. the serve
      // layer's paired-replay captures) executes nothing on standalone
      // replay today, and the compiled path must not change that.
      continue;
    }
    ++codegen_stats_.compiled_groups;
    group.composed = composed;
    group.member_spans.reserve(group.members.size());
    group.member_args.reserve(group.members.size());
    for (int m : group.members) {
      const codegen::StaticKernel& k =
          nodes_[static_cast<std::size_t>(m)].node.static_kernel;
      group.member_spans.push_back(k.span);
      group.member_args.push_back(k.args.get());
    }
  }

  // Unfused kernel nodes: span replay accelerates the captured body.
  for (ExecNode& en : nodes_) {
    if (en.node.kind == NodeKind::kKernel && en.fuse_group < 0 &&
        en.node.elems > 0 && en.node.static_kernel.valid() && en.node.body) {
      en.compiled = true;
      ++codegen_stats_.compiled_nodes;
    }
  }
}

bool footprints_consistent(const Graph& graph, const san::Report& report,
                           std::string* diagnosis) {
  const auto fail = [&](std::string why) {
    if (diagnosis != nullptr) {
      *diagnosis = std::move(why);
    }
    return false;
  };
  std::vector<const Node*> kernels;
  for (const Node& node : graph.nodes()) {
    if (node.kind == NodeKind::kKernel) {
      kernels.push_back(&node);
    }
  }
  if (kernels.size() != report.launches.size()) {
    return fail("launch count mismatch: " +
                std::to_string(report.launches.size()) + " traced vs " +
                std::to_string(kernels.size()) + " captured kernel nodes");
  }
  for (std::size_t i = 0; i < kernels.size(); ++i) {
    const Node& node = *kernels[i];
    const san::LaunchTrace& trace = report.launches[i];
    if (node.grid != trace.grid || node.block != trace.block) {
      return fail("launch " + std::to_string(i) + " (" + trace.kernel +
                  ") shape mismatch vs captured node");
    }
    if (!node.has_uses) {
      continue;  // opaque nodes never fuse; nothing to validate
    }
    for (const san::BufferTouch& touch : trace.touched) {
      BufferUse span;
      span.base = touch.data;
      span.bytes = static_cast<double>(touch.count * touch.elem_bytes);
      const auto covered = [&](bool write) {
        for (const BufferUse& u : node.uses) {
          if (u.write == write && u.overlaps(span)) {
            return true;
          }
        }
        return false;
      };
      if (touch.unique_reads > 0 && !covered(false)) {
        return fail("launch " + std::to_string(i) + " (" + trace.kernel +
                    ") read buffer '" + touch.name +
                    "' outside its declared footprint");
      }
      if (touch.unique_writes > 0 && !covered(true)) {
        return fail("launch " + std::to_string(i) + " (" + trace.kernel +
                    ") wrote buffer '" + touch.name +
                    "' outside its declared footprint");
      }
    }
  }
  return true;
}

}  // namespace fastpso::vgpu::graph
