// Graph-level kernel fusion for the virtual GPU (DESIGN.md §9).
//
// Motivation (paper Section 1; cuPSO attributes most of its gains to kernel
// organization): after graph capture/replay amortized per-launch *setup*,
// the synchronous pipeline still runs its element-wise stages — weight
// fill, evaluation, pbest compare, pbest gather — as separate kernels, each
// paying a modeled launch overhead and a full global-memory round trip for
// its intermediates (perror, improved). A real CUDA stack fuses such runs
// into one kernel; this pass reproduces that optimization over the captured
// node list.
//
// Legality: a fused group is a maximal run of *consecutive* kernel nodes
// that are element-wise (Node::elems > 0), carry a declared buffer
// footprint (Node::uses), have no barriers, and share element domain,
// launch shape, stream and pipe (tensor vs plain). Memcpy nodes, reduction
// nodes (barriers > 0) and non-element-wise nodes terminate a run and are
// never crossed. Within a run, a candidate joins the open group only if it
// has no data hazard against ANY current member: two accesses of the same
// storage, at least one a write, that are not element-aligned
// (BufferUse::aligned_with). Aligned same-element accesses are safe — the
// fused node executes the member kernels back-to-back *per element*, so
// element i's consumer reads element i's just-produced value exactly as in
// eager order; numerics are bitwise-identical by construction. Footprints
// are declared at the call sites (per-element attribution cannot be
// recovered from execution hooks) and cross-checked against the
// sanitizer's tracked-buffer access sets by footprints_consistent().
//
// Pricing: the fused node's KernelCostSpec is the members' specs summed,
// with intermediate traffic between aligned producer/consumer pairs elided
// (the consumer's read always; the producer's write only when no node
// outside the group anywhere in the looped graph reads that storage) and
// only one launch overhead charged — so PerfModel prices the fusion the
// way a real GPU would. Under paired replay the fused pricing is
// *reported* (FusionStats.modeled_seconds_saved, on top of the graph
// credit); Device::replay_fused actually dispatches the fused schedule.
//
// Default off; enable with FASTPSO_FUSE=1 or graph::set_fusion_enabled.
#pragma once

#include <string>

#include "vgpu/graph/graph.h"
#include "vgpu/perf_model.h"

namespace fastpso::vgpu::san {
struct Report;  // vgpu/san/sanitizer.h
}

namespace fastpso::vgpu::graph {

/// The instantiate-time fusion pass. Stateless; GraphExec::apply_fusion
/// delegates to run(). The legality predicates are exposed for the
/// property tests in tests/test_fusion.cpp.
class FusionPass {
 public:
  /// Plans fusion over `exec`'s node list and installs the plan (fused
  /// groups, per-node group indices, FusionStats). Idempotent.
  static void run(GraphExec& exec, const GpuPerfModel& perf);

  /// A node that may ever join a fused group: an element-wise kernel with
  /// a declared footprint and no barriers.
  [[nodiscard]] static bool fusible(const Node& node);

  /// Same element domain, launch shape, stream and pipe.
  [[nodiscard]] static bool compatible(const Node& a, const Node& b);

  /// A data hazard between a scheduled member and a candidate that
  /// back-to-back per-element execution would violate: overlapping
  /// accesses, at least one a write, not element-aligned.
  [[nodiscard]] static bool hazard(const Node& member, const Node& candidate);
};

/// Cross-checks the footprints declared on `graph`'s kernel nodes against
/// a sanitizer report of the same launch sequence: the report's launches
/// must pair 1:1 (in order, same shape) with the kernel nodes, and every
/// tracked buffer a launch actually read/wrote must overlap a declared use
/// of that direction on its node (nodes without footprints are skipped —
/// they never fuse). Returns false with a one-line `diagnosis` on the
/// first violation.
[[nodiscard]] bool footprints_consistent(const Graph& graph,
                                         const san::Report& report,
                                         std::string* diagnosis = nullptr);

}  // namespace fastpso::vgpu::graph
