#include "vgpu/graph/graph.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string_view>
#include <utility>

#include "common/check.h"
#include "vgpu/device.h"

namespace fastpso::vgpu::graph {

namespace {
// Process-wide toggle, FASTPSO_FAST_PATH-style; the vgpu is single-threaded
// by contract. Defaults to off so every eager-mode golden stays untouched.
bool initial_graph_enabled() {
  const char* env = std::getenv("FASTPSO_GRAPH");
  return env != nullptr && std::string_view(env) == "1";
}
bool g_graph_enabled = initial_graph_enabled();
}  // namespace

bool enabled() { return g_graph_enabled; }

void set_enabled(bool enable) { g_graph_enabled = enable; }

const char* to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kKernel:
      return "kernel";
    case NodeKind::kMemcpyH2D:
      return "memcpy_h2d";
    case NodeKind::kMemcpyD2H:
      return "memcpy_d2h";
    case NodeKind::kMemcpyD2D:
      return "memcpy_d2d";
  }
  return "?";
}

// --- Graph ----------------------------------------------------------------

void Graph::record_kernel(std::int64_t grid, int block, int stream,
                          const std::string& phase, const char* label,
                          const KernelCostSpec& cost) {
  Node node;
  node.kind = NodeKind::kKernel;
  node.grid = grid;
  node.block = block;
  node.stream = stream;
  node.phase = phase;
  node.label = label != nullptr ? label : "";
  node.cost = cost;
  nodes_.push_back(std::move(node));
}

void Graph::record_memcpy(NodeKind kind, void* dst, const void* src,
                          double bytes, int stream,
                          const std::string& phase) {
  FASTPSO_CHECK(kind != NodeKind::kKernel);
  Node node;
  node.kind = kind;
  node.stream = stream;
  node.phase = phase;
  node.dst = dst;
  node.src = src;
  node.bytes = bytes;
  nodes_.push_back(std::move(node));
}

void Graph::attach_body(std::function<void()> body) {
  FASTPSO_CHECK_MSG(!nodes_.empty(), "attach_body on an empty graph");
  nodes_.back().body = std::move(body);
}

GraphExec Graph::instantiate(const GpuPerfModel& perf) const {
  GraphExec exec;
  exec.nodes_.reserve(nodes_.size());
  const GpuSpec& spec = perf.spec();
  for (const Node& node : nodes_) {
    // Structural audit — the static half of the sanitizer's cost-spec
    // invariants. The captured launches already executed eagerly (so the
    // dynamic FASTPSO_CHECKs passed); a failure here means the capture
    // machinery itself recorded garbage.
    FASTPSO_CHECK_MSG(node.stream >= 0, "graph node on a negative stream");
    if (node.kind == NodeKind::kKernel) {
      FASTPSO_CHECK_MSG(node.grid > 0, "graph node with empty grid");
      FASTPSO_CHECK_MSG(
          node.block > 0 && node.block <= spec.max_threads_per_block,
          "graph node block size exceeds device limit");
      const KernelCostSpec& c = node.cost;
      FASTPSO_CHECK_MSG(
          std::isfinite(c.flops) && c.flops >= 0 &&
              std::isfinite(c.transcendentals) && c.transcendentals >= 0 &&
              std::isfinite(c.dram_read_bytes) && c.dram_read_bytes >= 0 &&
              std::isfinite(c.dram_write_bytes) && c.dram_write_bytes >= 0,
          "graph node with non-finite or negative cost spec");
      FASTPSO_CHECK_MSG(
          c.read_amplification >= 1.0 && c.write_amplification >= 1.0,
          "graph node with amplification below 1");
      FASTPSO_CHECK_MSG(c.barriers >= 0,
                        "graph node with negative barrier count");
    } else {
      FASTPSO_CHECK_MSG(std::isfinite(node.bytes) && node.bytes >= 0,
                        "graph memcpy node with bad byte count");
    }

    GraphExec::ExecNode exec_node;
    exec_node.node = node;
    if (node.kind == NodeKind::kKernel) {
      exec_node.shape = perf.resolve_shape(
          static_cast<double>(node.grid) * node.block);
      ++exec.kernel_nodes_;
    }
    exec.nodes_.push_back(std::move(exec_node));
  }
  exec.launch_overhead_s_ = spec.launch_overhead_us * 1e-6;
  exec.node_gap_s_ = spec.graph_node_overhead_us * 1e-6;
  exec.graph_launch_s_ = spec.graph_launch_overhead_us * 1e-6;
  exec.stats_.instantiated = true;
  exec.stats_.nodes = static_cast<int>(exec.nodes_.size());
  return exec;
}

// --- GraphExec ------------------------------------------------------------

void GraphExec::resolve_slots(TimeBreakdown& breakdown) {
  // Steady state: same breakdown, no clear() since the last replay — the
  // cached slots are still valid and the map lookups are skipped.
  if (resolved_breakdown_ == &breakdown &&
      resolved_epoch_ == breakdown.epoch()) {
    return;
  }
  // Consecutive nodes usually share a phase; memoize the last lookup.
  const std::string* last_phase = nullptr;
  double* last_slot = nullptr;
  for (ExecNode& n : nodes_) {
    if (last_phase == nullptr || *last_phase != n.node.phase) {
      last_slot = breakdown.slot(n.node.phase);
      last_phase = &n.node.phase;
    }
    n.slot = last_slot;
  }
  resolved_breakdown_ = &breakdown;
  resolved_epoch_ = breakdown.epoch();
}

void GraphExec::begin_replay(TimeBreakdown& breakdown, int stream_count) {
  FASTPSO_CHECK_MSG(!replay_open_, "nested graph replay");
  for (const ExecNode& n : nodes_) {
    FASTPSO_CHECK_MSG(n.node.stream < stream_count,
                      "graph node stream does not exist on this device");
  }
  resolve_slots(breakdown);
  cursor_ = 0;
  pending_matched_ = 0;
  replay_diverged_ = false;
  replay_open_ = true;
}

const GraphExec::ExecNode* GraphExec::match_kernel(
    std::int64_t grid, int block, int stream, const std::string& phase) {
  if (replay_diverged_) {
    return nullptr;
  }
  const std::size_t limit =
      std::min(nodes_.size(), cursor_ + kMatchWindow + 1);
  for (std::size_t j = cursor_; j < limit; ++j) {
    const ExecNode& candidate = nodes_[j];
    const Node& n = candidate.node;
    if (n.kind == NodeKind::kKernel && n.grid == grid && n.block == block &&
        n.stream == stream && n.phase == phase) {
      // Everything the caller consumes from the node (occupancies,
      // breakdown slot) is a pure function of these matched keys, so even a
      // positionally mis-paired match cannot change any accounted value.
      stats_.skipped_nodes += j - cursor_;
      cursor_ = j + 1;
      ++pending_matched_;
      ++stats_.replayed_launches;
      return &candidate;
    }
  }
  replay_diverged_ = true;
  stats_.diverged = true;
  return nullptr;
}

bool GraphExec::end_replay() {
  FASTPSO_CHECK_MSG(replay_open_, "end_replay without begin_replay");
  replay_open_ = false;
  stats_.skipped_nodes += nodes_.size() - cursor_;
  if (replay_diverged_) {
    // A diverged iteration ran (partly) eagerly; in CUDA terms the graph
    // launch was abandoned, so no amortization credit.
    return false;
  }
  ++stats_.replays;
  stats_.modeled_seconds_saved +=
      static_cast<double>(pending_matched_) *
          (launch_overhead_s_ - node_gap_s_) -
      graph_launch_s_;
  return true;
}

void GraphExec::begin_standalone(TimeBreakdown& breakdown, int stream_count) {
  begin_replay(breakdown, stream_count);
}

void GraphExec::end_standalone() {
  // Standalone replay executes every node in order: all kernel nodes count
  // as matched, nothing is skipped.
  pending_matched_ = static_cast<std::uint64_t>(kernel_nodes_);
  stats_.replayed_launches += pending_matched_;
  cursor_ = nodes_.size();
  replay_open_ = false;
  ++stats_.replays;
  stats_.modeled_seconds_saved +=
      static_cast<double>(pending_matched_) *
          (launch_overhead_s_ - node_gap_s_) -
      graph_launch_s_;
}

// --- IterationRecorder ----------------------------------------------------

IterationRecorder::IterationRecorder(Device& device)
    : IterationRecorder(device, enabled()) {}

IterationRecorder::IterationRecorder(Device& device, bool enable)
    : device_(device), state_(enable ? State::kIdle : State::kDisabled) {}

IterationRecorder::~IterationRecorder() {
  // Safety net for early exits (callback break, exception): close whatever
  // session is open so the device leaves graph mode.
  if (state_ == State::kCapturing) {
    device_.end_capture();
  } else if (state_ == State::kReplaying) {
    (void)device_.end_replay();
  }
}

void IterationRecorder::begin_iteration() {
  switch (state_) {
    case State::kIdle:
      graph_.clear();
      device_.begin_capture(graph_);
      state_ = State::kCapturing;
      break;
    case State::kArmed:
      device_.begin_replay(*exec_);
      state_ = State::kReplaying;
      break;
    default:
      break;
  }
}

void IterationRecorder::end_iteration() {
  switch (state_) {
    case State::kCapturing:
      device_.end_capture();
      if (graph_.empty()) {
        state_ = State::kEager;
        break;
      }
      exec_ = std::make_unique<GraphExec>(
          graph_.instantiate(device_.perf()));
      state_ = State::kArmed;
      break;
    case State::kReplaying:
      state_ = device_.end_replay() ? State::kArmed : State::kEager;
      break;
    default:
      break;
  }
}

GraphStats IterationRecorder::stats() const {
  GraphStats s = exec_ != nullptr ? exec_->stats() : GraphStats{};
  s.enabled = state_ != State::kDisabled;
  if (exec_ == nullptr) {
    s.nodes = static_cast<int>(graph_.size());
  }
  return s;
}

}  // namespace fastpso::vgpu::graph
