#include "vgpu/graph/graph.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <string_view>
#include <utility>

#include "common/check.h"
#include "vgpu/device.h"

namespace fastpso::vgpu::graph {

namespace {
// Process-wide toggle, FASTPSO_FAST_PATH-style; the vgpu is single-threaded
// by contract. Defaults to off so every eager-mode golden stays untouched.
bool initial_graph_enabled() {
  const char* env = std::getenv("FASTPSO_GRAPH");
  return env != nullptr && std::string_view(env) == "1";
}
bool g_graph_enabled = initial_graph_enabled();

bool initial_fusion_enabled() {
  const char* env = std::getenv("FASTPSO_FUSE");
  return env != nullptr && std::string_view(env) == "1";
}
bool g_fusion_enabled = initial_fusion_enabled();
}  // namespace

bool enabled() { return g_graph_enabled; }

void set_enabled(bool enable) { g_graph_enabled = enable; }

bool fusion_enabled() { return g_fusion_enabled; }

void set_fusion_enabled(bool enable) { g_fusion_enabled = enable; }

const char* to_string(NodeKind kind) {
  switch (kind) {
    case NodeKind::kKernel:
      return "kernel";
    case NodeKind::kMemcpyH2D:
      return "memcpy_h2d";
    case NodeKind::kMemcpyD2H:
      return "memcpy_d2h";
    case NodeKind::kMemcpyD2D:
      return "memcpy_d2d";
  }
  return "?";
}

// --- Graph ----------------------------------------------------------------

void Graph::record_kernel(std::int64_t grid, int block, int stream,
                          const std::string& phase, const char* label,
                          const KernelCostSpec& cost) {
  Node node;
  node.kind = NodeKind::kKernel;
  node.grid = grid;
  node.block = block;
  node.stream = stream;
  node.phase = phase;
  node.label = label != nullptr ? label : "";
  node.cost = cost;
  nodes_.push_back(std::move(node));
}

void Graph::record_memcpy(NodeKind kind, void* dst, const void* src,
                          double bytes, int stream,
                          const std::string& phase) {
  FASTPSO_CHECK(kind != NodeKind::kKernel);
  Node node;
  node.kind = kind;
  node.stream = stream;
  node.phase = phase;
  node.dst = dst;
  node.src = src;
  node.bytes = bytes;
  nodes_.push_back(std::move(node));
}

void Graph::attach_body(std::function<void()> body) {
  FASTPSO_CHECK_MSG(!nodes_.empty(), "attach_body on an empty graph");
  nodes_.back().body = std::move(body);
}

void Graph::note_elements(std::int64_t elems) {
  FASTPSO_CHECK_MSG(!nodes_.empty(), "note_elements on an empty graph");
  FASTPSO_CHECK(elems > 0);
  nodes_.back().elems = elems;
}

void Graph::note_uses(std::vector<BufferUse> uses) {
  FASTPSO_CHECK_MSG(!nodes_.empty(), "note_uses on an empty graph");
  nodes_.back().uses = std::move(uses);
  nodes_.back().has_uses = true;
}

void Graph::attach_elem_body(std::function<void(std::int64_t)> body) {
  FASTPSO_CHECK_MSG(!nodes_.empty(), "attach_elem_body on an empty graph");
  nodes_.back().elem_body = std::move(body);
}

void Graph::note_static(codegen::StaticKernel kernel) {
  FASTPSO_CHECK_MSG(!nodes_.empty(), "note_static on an empty graph");
  nodes_.back().static_kernel = std::move(kernel);
}

GraphExec Graph::instantiate(const GpuPerfModel& perf) const {
  GraphExec exec;
  exec.nodes_.reserve(nodes_.size());
  const GpuSpec& spec = perf.spec();
  for (const Node& node : nodes_) {
    // Structural audit — the static half of the sanitizer's cost-spec
    // invariants. The captured launches already executed eagerly (so the
    // dynamic FASTPSO_CHECKs passed); a failure here means the capture
    // machinery itself recorded garbage.
    FASTPSO_CHECK_MSG(node.stream >= 0, "graph node on a negative stream");
    if (node.kind == NodeKind::kKernel) {
      FASTPSO_CHECK_MSG(node.grid > 0, "graph node with empty grid");
      FASTPSO_CHECK_MSG(
          node.block > 0 && node.block <= spec.max_threads_per_block,
          "graph node block size exceeds device limit");
      const KernelCostSpec& c = node.cost;
      FASTPSO_CHECK_MSG(
          std::isfinite(c.flops) && c.flops >= 0 &&
              std::isfinite(c.transcendentals) && c.transcendentals >= 0 &&
              std::isfinite(c.dram_read_bytes) && c.dram_read_bytes >= 0 &&
              std::isfinite(c.dram_write_bytes) && c.dram_write_bytes >= 0,
          "graph node with non-finite or negative cost spec");
      FASTPSO_CHECK_MSG(
          c.read_amplification >= 1.0 && c.write_amplification >= 1.0,
          "graph node with amplification below 1");
      FASTPSO_CHECK_MSG(c.barriers >= 0,
                        "graph node with negative barrier count");
    } else {
      FASTPSO_CHECK_MSG(std::isfinite(node.bytes) && node.bytes >= 0,
                        "graph memcpy node with bad byte count");
    }

    GraphExec::ExecNode exec_node;
    exec_node.node = node;
    if (node.kind == NodeKind::kKernel) {
      exec_node.shape = perf.resolve_shape(
          static_cast<double>(node.grid) * node.block);
      ++exec.kernel_nodes_;
    }
    exec.single_stream_ =
        exec.single_stream_ && node.stream == nodes_.front().stream;
    exec.max_node_stream_ = std::max(exec.max_node_stream_, node.stream);
    exec.nodes_.push_back(std::move(exec_node));
  }
  exec.launch_overhead_s_ = spec.launch_overhead_us * 1e-6;
  exec.node_gap_s_ = spec.graph_node_overhead_us * 1e-6;
  exec.graph_launch_s_ = spec.graph_launch_overhead_us * 1e-6;
  exec.stats_.instantiated = true;
  exec.stats_.nodes = static_cast<int>(exec.nodes_.size());
  return exec;
}

// --- GraphExec ------------------------------------------------------------

void GraphExec::resolve_slots(TimeBreakdown& breakdown) {
  // Steady state: same breakdown, no clear() since the last replay — the
  // cached slots are still valid and the map lookups are skipped.
  if (resolved_breakdown_ == &breakdown &&
      resolved_epoch_ == breakdown.epoch()) {
    return;
  }
  // Consecutive nodes usually share a phase; memoize the last lookup.
  const std::string* last_phase = nullptr;
  double* last_slot = nullptr;
  for (ExecNode& n : nodes_) {
    if (last_phase == nullptr || *last_phase != n.node.phase) {
      last_slot = breakdown.slot(n.node.phase);
      last_phase = &n.node.phase;
    }
    n.slot = last_slot;
  }
  resolved_breakdown_ = &breakdown;
  resolved_epoch_ = breakdown.epoch();
}

void GraphExec::resolve_session_slots(ReplaySession& session,
                                      TimeBreakdown& breakdown) {
  if (session.resolved_breakdown == &breakdown) {
    // Sticky sessions trust slot stability for their lifetime (std::map
    // nodes survive TimeBreakdown::swap; the owner guarantees no clear()).
    if (session.sticky_slots || session.resolved_epoch == breakdown.epoch()) {
      return;
    }
  }
  session.slots.resize(nodes_.size());
  const std::string* last_phase = nullptr;
  double* last_slot = nullptr;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& n = nodes_[i].node;
    if (last_phase == nullptr || *last_phase != n.phase) {
      last_slot = breakdown.slot(n.phase);
      last_phase = &n.phase;
    }
    session.slots[i] = last_slot;
  }
  session.resolved_breakdown = &breakdown;
  session.resolved_epoch = breakdown.epoch();
}

void GraphExec::set_replay_stream(ReplaySession& session, int stream) {
  FASTPSO_CHECK_MSG(!session.open,
                    "set_replay_stream during an open replay");
  if (stream >= 0) {
    FASTPSO_CHECK_MSG(single_stream_,
                      "replay-stream retarget requires a single-stream "
                      "graph");
  }
  session.replay_stream = stream;
}

void GraphExec::begin_replay(ReplaySession& session,
                             TimeBreakdown& breakdown, int stream_count) {
  FASTPSO_CHECK_MSG(!session.open, "nested graph replay on one session");
  const int bound =
      session.replay_stream >= 0 ? session.replay_stream : max_node_stream_;
  FASTPSO_CHECK_MSG(bound < stream_count,
                    "graph node stream does not exist on this device");
  resolve_session_slots(session, breakdown);
  session.cursor = 0;
  session.pending_matched = 0;
  session.diverged = false;
  session.open = true;
  session.groups.assign(fusion_groups_.size(), GroupAccum{});
}

int GraphExec::match_kernel(ReplaySession& session, std::int64_t grid,
                            int block, int stream,
                            const std::string& phase) {
  if (session.diverged) {
    return -1;
  }
  const std::size_t limit =
      std::min(nodes_.size(), session.cursor + kMatchWindow + 1);
  for (std::size_t j = session.cursor; j < limit; ++j) {
    const Node& n = nodes_[j].node;
    const int node_stream =
        session.replay_stream >= 0 ? session.replay_stream : n.stream;
    if (n.kind == NodeKind::kKernel && n.grid == grid && n.block == block &&
        node_stream == stream && n.phase == phase) {
      // Everything the caller consumes from the node (occupancies,
      // breakdown slot) is a pure function of these matched keys, so even a
      // positionally mis-paired match cannot change any accounted value.
      stats_.skipped_nodes += j - session.cursor;
      session.cursor = j + 1;
      ++session.pending_matched;
      ++stats_.replayed_launches;
      return static_cast<int>(j);
    }
  }
  session.diverged = true;
  stats_.diverged = true;
  return -1;
}

bool GraphExec::end_replay(ReplaySession& session) {
  FASTPSO_CHECK_MSG(session.open, "end_replay without begin_replay");
  session.open = false;
  stats_.skipped_nodes += nodes_.size() - session.cursor;
  if (session.diverged) {
    // A diverged iteration ran (partly) eagerly; in CUDA terms the graph
    // launch was abandoned, so no amortization credit.
    return false;
  }
  ++stats_.replays;
  stats_.modeled_seconds_saved +=
      static_cast<double>(session.pending_matched) *
          (launch_overhead_s_ - node_gap_s_) -
      graph_launch_s_;
  if (!fusion_groups_.empty()) {
    // Price each fully matched group as one fused launch of the live cost
    // sum with the capture-time intermediate traffic elided. The credit is
    // stated on top of the graph credit above: that credit already reduced
    // every matched launch's overhead to the node gap, so the per-launch
    // part of the fusion saving is (members - 1) node gaps, not full
    // launch overheads. Partially matched groups (a conditional member was
    // skipped this iteration) earn nothing and stay unfused.
    std::uint64_t fused_away = 0;
    for (std::size_t i = 0; i < fusion_groups_.size(); ++i) {
      const FusedGroup& g = fusion_groups_[i];
      const GroupAccum& a = session.groups[i];
      if (a.matched != static_cast<int>(g.members.size())) {
        continue;
      }
      KernelCostSpec fused = a.live_sum;
      fused.elide_traffic(g.elide_read_useful, g.elide_read_fetched,
                          g.elide_write_useful, g.elide_write_fetched);
      const double fused_seconds =
          fusion_perf_->kernel_seconds_resolved(g.shape, fused);
      const double member_overhead_already_credited =
          static_cast<double>(a.matched - 1) *
          (launch_overhead_s_ - node_gap_s_);
      fusion_stats_.modeled_seconds_saved +=
          a.member_seconds - fused_seconds -
          member_overhead_already_credited;
      fused_away += static_cast<std::uint64_t>(a.matched - 1);
    }
    ++fusion_stats_.replays;
    fusion_stats_.launches_eager += session.pending_matched;
    fusion_stats_.launches_fused += session.pending_matched - fused_away;
  }
  return true;
}

void GraphExec::note_member(ReplaySession& session, int group,
                            const KernelCostSpec& cost, double seconds) {
  GroupAccum& a = session.groups[static_cast<std::size_t>(group)];
  a.live_sum += cost;
  a.member_seconds += seconds;
  ++a.matched;
}

void GraphExec::begin_standalone(TimeBreakdown& breakdown, int stream_count) {
  begin_replay(own_session_, breakdown, stream_count);
  // Standalone replay accounts through ExecNode::slot rather than the
  // session's slot table.
  resolve_slots(breakdown);
}

void GraphExec::end_standalone() {
  // Standalone replay executes every node in order: all kernel nodes count
  // as matched, nothing is skipped.
  own_session_.pending_matched = static_cast<std::uint64_t>(kernel_nodes_);
  stats_.replayed_launches += own_session_.pending_matched;
  own_session_.cursor = nodes_.size();
  own_session_.open = false;
  ++stats_.replays;
  stats_.modeled_seconds_saved +=
      static_cast<double>(own_session_.pending_matched) *
          (launch_overhead_s_ - node_gap_s_) -
      graph_launch_s_;
}

void GraphExec::end_standalone_fused() {
  // Fused standalone replay accounted each group as ONE launch of the
  // merged cost — the saving is applied to the device clocks there, not
  // reported, so the graph credit is computed from the launches actually
  // issued and the fusion stat records the applied static delta.
  std::uint64_t fused_away = 0;
  for (const FusedGroup& g : fusion_groups_) {
    fused_away += static_cast<std::uint64_t>(g.members.size() - 1);
    fusion_stats_.modeled_seconds_saved +=
        g.static_member_seconds - g.static_fused_seconds;
  }
  own_session_.pending_matched =
      static_cast<std::uint64_t>(kernel_nodes_) - fused_away;
  stats_.replayed_launches += own_session_.pending_matched;
  own_session_.cursor = nodes_.size();
  own_session_.open = false;
  ++stats_.replays;
  stats_.modeled_seconds_saved +=
      static_cast<double>(own_session_.pending_matched) *
          (launch_overhead_s_ - node_gap_s_) -
      graph_launch_s_;
  ++fusion_stats_.replays;
  fusion_stats_.launches_eager += static_cast<std::uint64_t>(kernel_nodes_);
  fusion_stats_.launches_fused += own_session_.pending_matched;
}

// --- IterationRecorder ----------------------------------------------------

IterationRecorder::IterationRecorder(Device& device)
    : IterationRecorder(device, enabled() || fusion_enabled(),
                        fusion_enabled()) {}

IterationRecorder::IterationRecorder(Device& device, bool enable)
    : IterationRecorder(device, enable, /*fuse=*/false) {}

IterationRecorder::IterationRecorder(Device& device, bool enable, bool fuse)
    : device_(device),
      state_(enable ? State::kIdle : State::kDisabled),
      fuse_(fuse && enable) {}

IterationRecorder::~IterationRecorder() {
  // Safety net for early exits (callback break, exception): close whatever
  // session is open so the device leaves graph mode.
  if (state_ == State::kCapturing) {
    device_.end_capture();
  } else if (state_ == State::kReplaying) {
    (void)device_.end_replay();
  }
}

void IterationRecorder::begin_iteration() {
  switch (state_) {
    case State::kIdle:
      graph_.clear();
      device_.begin_capture(graph_);
      state_ = State::kCapturing;
      break;
    case State::kArmed:
      device_.begin_replay(*exec_);
      state_ = State::kReplaying;
      break;
    default:
      break;
  }
}

void IterationRecorder::end_iteration() {
  switch (state_) {
    case State::kCapturing:
      device_.end_capture();
      if (graph_.empty()) {
        state_ = State::kEager;
        break;
      }
      exec_ = std::make_unique<GraphExec>(
          graph_.instantiate(device_.perf()));
      if (fuse_) {
        exec_->apply_fusion(device_.perf());
      }
      state_ = State::kArmed;
      break;
    case State::kReplaying:
      state_ = device_.end_replay() ? State::kArmed : State::kEager;
      break;
    default:
      break;
  }
}

GraphStats IterationRecorder::stats() const {
  GraphStats s = exec_ != nullptr ? exec_->stats() : GraphStats{};
  s.enabled = state_ != State::kDisabled;
  if (exec_ == nullptr) {
    s.nodes = static_cast<int>(graph_.size());
  }
  return s;
}

FusionStats IterationRecorder::fusion_stats() const {
  FusionStats s = exec_ != nullptr ? exec_->fusion_stats() : FusionStats{};
  s.enabled = fuse_;
  return s;
}

codegen::CodegenStats IterationRecorder::codegen_stats() const {
  return exec_ != nullptr ? exec_->codegen_stats()
                          : codegen::CodegenStats{};
}

}  // namespace fastpso::vgpu::graph
