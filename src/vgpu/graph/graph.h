// CUDA-Graph-style capture & replay for the virtual GPU.
//
// Motivation (paper Section 1 / DESIGN.md §8): once the host fast path and
// profiler trimmed kernel *execution*, the dominant remaining per-iteration
// cost is repeated host-side launch setup — every iteration re-runs the same
// occupancy lookups, breakdown-map lookups and prof/san bookkeeping for an
// identical sequence of launches. Real stacks solve this with CUDA Graphs:
// record the launch sequence once, validate and pre-resolve it once
// (cudaGraphInstantiate), then replay it with a single graph-launch call.
// This layer reproduces that shape:
//
//   capture     Device::begin_capture(graph) .. end_capture(): every
//               account_launch/memcpy is recorded as a Node (launch config,
//               stream, phase, prof label, cost spec, optional body) while
//               executing and accounting *eagerly* — the capture iteration
//               is a normal iteration.
//   instantiate Graph::instantiate(perf): one-time structural audit of the
//               captured nodes plus pre-resolution of everything derivable
//               from the launch shape — occupancies and roofline
//               denominators (ResolvedLaunchShape), interned phase/label
//               strings, per-phase TimeBreakdown slots.
//   replay      Device::begin_replay(exec) .. end_replay(): the caller
//               re-issues its launches; each one is matched positionally
//               against the node list and, on a match, accounted through the
//               precomputed records with zero per-node setup. Cost values
//               ALWAYS come from the live call site, and the only node data
//               consumed (occupancies, breakdown slot) is a pure function of
//               the match keys (grid, block, stream, phase) — so counters,
//               modeled seconds, breakdowns, prof events and san traces are
//               byte-identical to eager mode even for a mis-paired match.
//               A launch that finds no matching node within a bounded
//               skip-forward window marks the replay diverged and falls
//               through to eager accounting; conditional launches that were
//               captured but not re-issued are skipped harmlessly.
//
// Amortization is *reported*, never applied to device clocks or counters
// (every eager-mode golden stays byte-identical): a clean replay credits
//   saved = matched * (launch_overhead_us - graph_node_overhead_us)
//           - graph_launch_overhead_us                       [converted to s]
// into GraphStats.modeled_seconds_saved, modeling one cudaGraphLaunch per
// replay plus a residual per-node gap instead of a full per-kernel launch.
//
// Default off; enable with FASTPSO_GRAPH=1 or graph::set_enabled(true).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "vgpu/graph/codegen.h"
#include "vgpu/perf_model.h"

namespace fastpso::vgpu {

class Device;  // vgpu/device.h

namespace graph {

/// Process-wide graph-mode toggle (default off; FASTPSO_GRAPH=1 starts it
/// on). Gates only the IterationRecorder convenience — explicit
/// capture/replay calls work regardless.
[[nodiscard]] bool enabled();
void set_enabled(bool enabled);

/// Process-wide fusion toggle (default off; FASTPSO_FUSE=1 starts it on).
/// Fusion implies graph capture: an IterationRecorder records whenever
/// either toggle is on, and applies the fusion pass when this one is.
[[nodiscard]] bool fusion_enabled();
void set_fusion_enabled(bool enabled);

enum class NodeKind : std::uint8_t {
  kKernel,
  kMemcpyH2D,
  kMemcpyD2H,
  kMemcpyD2D,
};

[[nodiscard]] const char* to_string(NodeKind kind);

/// One declared buffer access of an element-wise launch — the static
/// counterpart of the sanitizer's tracked-buffer access sets, declared at
/// the call site because per-element attribution cannot be recovered from
/// the execution hooks (grid-stride thread identity != element identity).
/// The fusion pass consumes these for hazard analysis and traffic elision;
/// san::footprints_consistent cross-checks them against what a tracked run
/// actually touched.
struct BufferUse {
  const void* base = nullptr;  ///< first byte the launch may touch
  double bytes = 0;            ///< total span touched over all elements
  /// Per-element slice: element i touches
  /// [base + i*elem_bytes, base + (i+1)*elem_bytes). 0 means the whole
  /// span per element (a broadcast read or data-dependent gather).
  std::int64_t elem_bytes = 0;
  bool write = false;
  const char* name = "";  ///< for diagnostics; static-lifetime literal

  [[nodiscard]] const char* end() const {
    return static_cast<const char*>(base) + static_cast<std::int64_t>(bytes);
  }
  /// Address-range intersection — catches interior-pointer aliasing (e.g.
  /// the gbest copy reads pbest_pos + index*d).
  [[nodiscard]] bool overlaps(const BufferUse& other) const {
    return base != nullptr && other.base != nullptr &&
           static_cast<const char*>(base) < other.end() &&
           static_cast<const char*>(other.base) < end();
  }
  /// Same per-element slicing of the same storage: element i of one access
  /// is element i of the other, so back-to-back per-element execution
  /// preserves the eager value even across a write.
  [[nodiscard]] bool aligned_with(const BufferUse& other) const {
    return base == other.base && elem_bytes == other.elem_bytes &&
           elem_bytes > 0;
  }
};

/// One captured device operation.
struct Node {
  NodeKind kind = NodeKind::kKernel;
  std::int64_t grid = 1;
  int block = 1;
  int stream = 0;
  std::string phase;
  /// Prof label at capture time ("" when no label was pushed — labels exist
  /// only while prof::active()). Interned for introspection; replay reads
  /// the live label so prof events match eager mode trivially.
  std::string label;
  KernelCostSpec cost;     ///< as declared at capture (audit/introspection)
  void* dst = nullptr;     ///< memcpy nodes only
  const void* src = nullptr;
  double bytes = 0;        ///< memcpy nodes only
  /// Optional kernel body for standalone replay (Device::replay_graph).
  /// Captured only when Device::set_capture_bodies(true) — the caller
  /// guarantees everything the body references outlives the graph.
  std::function<void()> body;
  /// Element domain of an element-wise launch (-1: not element-wise; such
  /// nodes are never fused). Noted automatically by launch_elements while
  /// capturing, or explicitly via Device::graph_note_elements.
  std::int64_t elems = -1;
  /// Declared per-node buffer footprint (graph_note_uses). Nodes without a
  /// footprint are opaque to the fusion pass: they never fuse, and they
  /// conservatively count as readers of everything for write elision.
  std::vector<BufferUse> uses;
  bool has_uses = false;
  /// Per-element body for fused standalone replay (Device::replay_fused);
  /// captured alongside `body` under set_capture_bodies(true).
  std::function<void(std::int64_t)> elem_body;
  /// Registered static form of the launch (vgpu/graph/codegen.h): tag +
  /// statically-bound span + by-value argument pack. Attached by known
  /// call sites via Device::graph_note_static; invalid for opaque kernels.
  codegen::StaticKernel static_kernel;
};

/// Replay bookkeeping, surfaced through core::Result for benches/tests.
struct GraphStats {
  bool enabled = false;       ///< graph mode was on for this run
  bool instantiated = false;  ///< a capture completed and was instantiated
  bool diverged = false;      ///< some replay fell back to eager
  int nodes = 0;              ///< captured nodes (kernels + memcpys)
  std::uint64_t replays = 0;             ///< completed clean replays
  std::uint64_t replayed_launches = 0;   ///< launches accounted via replay
  std::uint64_t skipped_nodes = 0;       ///< captured nodes not re-issued
  std::uint64_t eager_launches = 0;      ///< replay-mode launches that fell
                                         ///< through to eager accounting
  /// Modeled seconds the amortization model credits against
  /// modeled_seconds. Reported only — never applied to device clocks.
  double modeled_seconds_saved = 0;
};

/// Fusion bookkeeping, surfaced through core::Result for benches/tests.
/// Like GraphStats, every number here is *reported* — under paired replay
/// the fused pricing never touches device clocks, counters or traces.
struct FusionStats {
  bool enabled = false;  ///< fusion mode was on for this run
  bool applied = false;  ///< the pass ran over an instantiated graph
  int groups = 0;        ///< fused groups of >= 2 members
  int fused_members = 0; ///< member kernels across all groups
  std::uint64_t replays = 0;         ///< replays with fused pricing applied
  std::uint64_t launches_eager = 0;  ///< kernel launches as issued
  std::uint64_t launches_fused = 0;  ///< launches after fusion
  /// Modeled seconds the fused pricing saves vs per-member pricing
  /// (fewer launch overheads + elided intermediate traffic). Reported only.
  double modeled_seconds_saved = 0;
  /// Useful intermediate bytes elided between producer/consumer members.
  double elided_read_bytes = 0;
  double elided_write_bytes = 0;

  /// Fraction of per-iteration launches removed by fusion.
  [[nodiscard]] double launch_reduction() const {
    return launches_eager > 0
               ? 1.0 - static_cast<double>(launches_fused) /
                           static_cast<double>(launches_eager)
               : 0.0;
  }
};

class GraphExec;

/// An ordered record of captured device operations (cudaGraph analogue).
class Graph {
 public:
  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] bool empty() const { return nodes_.empty(); }
  [[nodiscard]] const std::vector<Node>& nodes() const { return nodes_; }
  void clear() { nodes_.clear(); }

  /// Recording entry points (called by Device while capturing).
  void record_kernel(std::int64_t grid, int block, int stream,
                     const std::string& phase, const char* label,
                     const KernelCostSpec& cost);
  void record_memcpy(NodeKind kind, void* dst, const void* src, double bytes,
                     int stream, const std::string& phase);
  /// Attaches a body to the most recently recorded node.
  void attach_body(std::function<void()> body);
  /// Notes the element domain of the most recently recorded node.
  void note_elements(std::int64_t elems);
  /// Attaches the declared buffer footprint of the most recent node.
  void note_uses(std::vector<BufferUse> uses);
  /// Attaches a per-element body to the most recent node (replay_fused).
  void attach_elem_body(std::function<void(std::int64_t)> body);
  /// Attaches the registered static kernel of the most recent node
  /// (vgpu/graph/codegen.h).
  void note_static(codegen::StaticKernel kernel);

  /// One-time validation + pre-resolution (cudaGraphInstantiate analogue).
  /// Audits every node structurally (shape within device limits, cost spec
  /// finite and non-negative, amplifications >= 1 — the same invariants the
  /// sanitizer's cost audits enforce dynamically) and precomputes each
  /// kernel node's ResolvedLaunchShape. Throws CheckError on audit failure.
  [[nodiscard]] GraphExec instantiate(const GpuPerfModel& perf) const;

 private:
  std::vector<Node> nodes_;
};

/// An instantiated graph: nodes plus everything pre-resolved for zero-setup
/// replay (cudaGraphExec analogue). Obtained from Graph::instantiate.
class GraphExec {
 public:
  /// A launch re-issued during replay may sit this many nodes ahead of the
  /// cursor (bounded skip-forward over conditional launches that were
  /// captured but not re-issued, e.g. the gbest copy).
  static constexpr std::size_t kMatchWindow = 8;

  /// Node plus its pre-resolved records.
  struct ExecNode {
    Node node;
    ResolvedLaunchShape shape;  ///< kernel nodes only
    /// Accumulator for node.phase in the device's modeled breakdown;
    /// resolved at begin_replay (TimeBreakdown::clear() invalidates slots).
    double* slot = nullptr;
    /// Index into fused_groups(), or -1 when the node is unfused.
    int fuse_group = -1;
    /// Unfused node replayable through its registered span instead of its
    /// captured body (set by apply_codegen; requires both to be present so
    /// the span is a pure accelerator of existing replay semantics).
    bool compiled = false;
  };

  /// One fused run of >= 2 consecutive element-wise kernel nodes
  /// (installed by the FusionPass, vgpu/graph/fusion.h).
  struct FusedGroup {
    std::vector<int> members;  ///< node indices, in capture order
    std::int64_t grid = 1;
    int block = 1;
    int stream = 0;
    std::int64_t elems = 0;
    std::string phase;  ///< first member's phase
    std::string label;  ///< "fused:" + member labels joined with '+'
    /// The members' capture-time specs merged with intermediate
    /// producer/consumer traffic elided and only one launch overhead
    /// charged (barriers are zero by legality) — what PerfModel prices and
    /// Device::replay_fused accounts.
    KernelCostSpec merged_cost;
    ResolvedLaunchShape shape;  ///< the members' shared launch shape
    /// Capture-time elision constants, subtracted from the live cost sum
    /// when pricing a paired replay (useful and fetched bytes per class).
    double elide_read_useful = 0;
    double elide_read_fetched = 0;
    double elide_write_useful = 0;
    double elide_write_fetched = 0;
    /// Capture-time pricing of the members vs the fused node (reporting).
    double static_member_seconds = 0;
    double static_fused_seconds = 0;
    /// Compiled execution plan (vgpu/graph/codegen.h), resolved once by
    /// apply_codegen when every member registered a static kernel AND
    /// carries a captured body. Empty member_spans = interpreted fallback.
    codegen::ComposedFn composed = nullptr;
    std::vector<codegen::SpanFn> member_spans;
    std::vector<const void*> member_args;
  };

  /// Per-session accumulator for one FusedGroup's live replay (the static
  /// plan stays on the group; the per-replay sums live with the session so
  /// interleaved sessions don't clobber each other).
  struct GroupAccum {
    KernelCostSpec live_sum;
    double member_seconds = 0;
    int matched = 0;
  };

  /// All mutable state of one paired replay. A GraphExec is a shared,
  /// effectively-immutable artifact during replay (only the aggregate
  /// stats_ accumulate); every cursor-like datum lives here so several
  /// clients — e.g. the serve layer packing a cohort of jobs over one
  /// cached exec — can hold interleaved open replays of the SAME exec,
  /// each on its own stream with its own breakdown-slot cache.
  struct ReplaySession {
    /// Stream every node is treated as issued on (-1 = capture-time
    /// streams). Set via GraphExec::set_replay_stream (legality-checked).
    int replay_stream = -1;
    /// Opt-in: keep resolved breakdown slots for the life of the session as
    /// long as the breakdown keeps its identity, skipping the epoch check.
    /// Legal when the breakdown is never clear()ed while the session lives
    /// (std::map nodes are stable across TimeBreakdown::swap, which bumps
    /// the epoch conservatively) — the serve layer's per-job sessions
    /// qualify, and this removes the hottest per-replay fixed cost.
    bool sticky_slots = false;
    std::size_t cursor = 0;
    std::uint64_t pending_matched = 0;
    bool diverged = false;
    bool open = false;
    /// Per-node breakdown accumulators, parallel to GraphExec::nodes().
    std::vector<double*> slots;
    const TimeBreakdown* resolved_breakdown = nullptr;
    std::uint64_t resolved_epoch = 0;
    /// Parallel to GraphExec::fused_groups() (sized at begin_replay).
    std::vector<GroupAccum> groups;
  };

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] const std::vector<ExecNode>& nodes() const { return nodes_; }
  [[nodiscard]] const GraphStats& stats() const { return stats_; }
  [[nodiscard]] int kernel_nodes() const { return kernel_nodes_; }

  // --- paired replay (driven by Device::begin_replay/end_replay) ---------
  /// Opens a replay on `session`. Rewinds the match cursor; breakdown slots
  /// are re-resolved only when the breakdown changed identity or was
  /// clear()ed since this session's last replay (epoch check — skipped
  /// entirely under sticky_slots), so steady-state replays skip the map
  /// lookups entirely.
  void begin_replay(ReplaySession& session, TimeBreakdown& breakdown,
                    int stream_count);
  /// Positional match for a re-issued kernel launch. Returns the matched
  /// node index (advancing the session cursor past it, counting skipped
  /// nodes), or -1 when the sequence diverged — the caller then accounts
  /// eagerly. The matched node's breakdown slot is session.slots[index].
  int match_kernel(ReplaySession& session, std::int64_t grid, int block,
                   int stream, const std::string& phase);
  /// Notes a launch that fell through to eager accounting during replay.
  void note_eager_launch() { ++stats_.eager_launches; }
  /// Closes the session's replay: remaining nodes count as skipped; a clean
  /// (non-diverged) replay earns the amortization credit. Returns whether
  /// the replay was clean.
  bool end_replay(ReplaySession& session);

  /// Exec-level convenience API over the built-in session (the solo-run
  /// path: IterationRecorder, tests). Identical semantics.
  void begin_replay(TimeBreakdown& breakdown, int stream_count) {
    begin_replay(own_session_, breakdown, stream_count);
  }
  bool end_replay() { return end_replay(own_session_); }
  [[nodiscard]] ReplaySession& own_session() { return own_session_; }

  /// Keyed-reuse hook for the serve layer's shape-indexed graph cache: one
  /// exec, captured by the first job of a shape on whatever stream that job
  /// happened to own, replays for every later same-shape job regardless of
  /// its stream assignment. Retargets replay matching so every node is
  /// treated as issued on `stream`; -1 restores capture-time streams. Legal
  /// only for graphs whose nodes all share a single stream (checked once at
  /// instantiate) — the retarget is then a pure relabeling: matching stays
  /// positional, and the clock a matched launch advances is the live
  /// current stream's, exactly as in eager mode. Set before each
  /// Device::begin_replay; sticky until changed.
  void set_replay_stream(ReplaySession& session, int stream);
  void set_replay_stream(int stream) {
    set_replay_stream(own_session_, stream);
  }
  [[nodiscard]] int replay_stream() const {
    return own_session_.replay_stream;
  }
  /// Whether every node sits on one capture-time stream (the
  /// set_replay_stream legality condition).
  [[nodiscard]] bool single_stream() const { return single_stream_; }

  // --- standalone replay bookkeeping (Device::replay_graph) --------------
  void begin_standalone(TimeBreakdown& breakdown, int stream_count);
  void end_standalone();

  // --- fusion (vgpu/graph/fusion.h) --------------------------------------
  /// Runs the FusionPass over this instantiated graph and installs its
  /// plan. After this, clean paired replays additionally price each fully
  /// matched group as a single fused launch (reported via fusion_stats(),
  /// composing with the graph credit without double counting), and
  /// Device::replay_fused executes the fused schedule. Idempotent.
  void apply_fusion(const GpuPerfModel& perf);
  [[nodiscard]] const std::vector<FusedGroup>& fused_groups() const {
    return fusion_groups_;
  }
  [[nodiscard]] const FusionStats& fusion_stats() const {
    return fusion_stats_;
  }
  /// Accumulates a matched member's live cost and modeled seconds into its
  /// group accumulator on `session` (called by Device::graph_account
  /// during paired replay).
  void note_member(ReplaySession& session, int group,
                   const KernelCostSpec& cost, double seconds);
  /// Standalone fused-replay bookkeeping (Device::replay_fused): like
  /// end_standalone, but with the post-fusion launch count and the applied
  /// fusion saving recorded.
  void end_standalone_fused();

  // --- compiled loops (vgpu/graph/codegen.h) ------------------------------
  /// Resolves the compiled execution plan: fused groups whose members all
  /// registered static kernels get their span/arg tables (and, on an exact
  /// tag-sequence match, a composed loop); unfused registered nodes get
  /// span replay. Execution-level resolution additionally requires captured
  /// bodies, keeping compiled replay a pure accelerator of the existing
  /// standalone-replay semantics (body-less graphs execute nothing, as
  /// today). Auto-run at the end of apply_fusion when codegen::enabled();
  /// idempotent.
  void apply_codegen();
  [[nodiscard]] const codegen::CodegenStats& codegen_stats() const {
    return codegen_stats_;
  }
  /// Records one compiled fused-group dispatch (Device::replay_fused).
  void note_compiled_dispatch(bool composed) {
    ++codegen_stats_.compiled_dispatches;
    if (composed) {
      ++codegen_stats_.composed_dispatches;
    }
  }

 private:
  friend class Graph;
  friend class FusionPass;
  GraphExec() = default;

  /// Standalone-replay slot resolution (writes ExecNode::slot; the paired
  /// path resolves into the session instead).
  void resolve_slots(TimeBreakdown& breakdown);
  void resolve_session_slots(ReplaySession& session,
                             TimeBreakdown& breakdown);

  std::vector<ExecNode> nodes_;
  int kernel_nodes_ = 0;
  double launch_overhead_s_ = 0;
  double node_gap_s_ = 0;
  double graph_launch_s_ = 0;
  /// Precomputed at instantiate: set_replay_stream legality and the
  /// stream-existence bound checked at begin_replay.
  bool single_stream_ = true;
  int max_node_stream_ = 0;

  /// Slot-resolution cache key (resolve_slots, standalone path).
  const TimeBreakdown* resolved_breakdown_ = nullptr;
  std::uint64_t resolved_epoch_ = 0;

  /// Built-in session backing the exec-level replay API.
  ReplaySession own_session_;
  /// Standalone replay reuses the paired bookkeeping fields below through
  /// own_session_.
  GraphStats stats_;

  std::vector<FusedGroup> fusion_groups_;
  FusionStats fusion_stats_;
  codegen::CodegenStats codegen_stats_;
  /// Perf model the fusion plan was priced against (outlives the exec: it
  /// belongs to the Device the graph was captured on).
  const GpuPerfModel* fusion_perf_ = nullptr;
};

/// Capture-once/replay-many driver for an iteration loop: wrap each
/// iteration in begin_iteration()/end_iteration(). Iteration 1 captures
/// while executing eagerly, end of iteration 1 instantiates, iterations
/// 2..T replay; any divergence falls back to eager permanently. Inert when
/// graph mode is disabled, so call sites need no gating.
class IterationRecorder {
 public:
  /// Records when either graph mode or fusion mode is enabled; applies the
  /// fusion pass after instantiation when fusion mode is enabled (so
  /// FASTPSO_FUSE=1 alone drives capture + fusion).
  explicit IterationRecorder(Device& device);
  IterationRecorder(Device& device, bool enable);
  IterationRecorder(Device& device, bool enable, bool fuse);
  ~IterationRecorder();

  IterationRecorder(const IterationRecorder&) = delete;
  IterationRecorder& operator=(const IterationRecorder&) = delete;

  void begin_iteration();
  void end_iteration();

  [[nodiscard]] bool active() const { return state_ != State::kDisabled; }
  /// Merged stats: capture size + replay bookkeeping.
  [[nodiscard]] GraphStats stats() const;
  /// Fusion bookkeeping (FusionStats.enabled reflects this recorder).
  [[nodiscard]] FusionStats fusion_stats() const;
  /// Compiled-loop bookkeeping (all-default before instantiation).
  [[nodiscard]] codegen::CodegenStats codegen_stats() const;

 private:
  enum class State : std::uint8_t {
    kDisabled,   ///< graph mode off: begin/end are no-ops
    kIdle,       ///< next iteration captures
    kCapturing,  ///< inside the capture iteration
    kArmed,      ///< instantiated; next iteration replays
    kReplaying,  ///< inside a replay iteration
    kEager,      ///< permanent fallback (empty capture or divergence)
  };

  Device& device_;
  Graph graph_;
  std::unique_ptr<GraphExec> exec_;
  State state_ = State::kDisabled;
  bool fuse_ = false;
};

}  // namespace graph
}  // namespace fastpso::vgpu
