#include "vgpu/half.h"

namespace fastpso::vgpu {

Half float_to_half(float value) {
  const std::uint32_t f = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (f >> 16) & 0x8000u;
  const std::int32_t exponent =
      static_cast<std::int32_t>((f >> 23) & 0xFF) - 127 + 15;
  std::uint32_t mantissa = f & 0x007FFFFFu;

  Half out;
  if (((f >> 23) & 0xFF) == 0xFF) {
    // Inf / NaN: keep NaN-ness in the top mantissa bit.
    out.bits = static_cast<std::uint16_t>(
        sign | 0x7C00u | (mantissa ? 0x0200u : 0u));
    return out;
  }
  if (exponent >= 0x1F) {
    // Overflow -> signed infinity.
    out.bits = static_cast<std::uint16_t>(sign | 0x7C00u);
    return out;
  }
  if (exponent <= 0) {
    // Subnormal or zero.
    if (exponent < -10) {
      out.bits = static_cast<std::uint16_t>(sign);
      return out;
    }
    mantissa |= 0x00800000u;  // implicit leading one
    const int shift = 14 - exponent;
    std::uint32_t half_mant = mantissa >> shift;
    // Round to nearest even.
    const std::uint32_t rest = mantissa & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (rest > halfway || (rest == halfway && (half_mant & 1u))) {
      ++half_mant;
    }
    out.bits = static_cast<std::uint16_t>(sign | half_mant);
    return out;
  }

  std::uint32_t half_mant = mantissa >> 13;
  const std::uint32_t rest = mantissa & 0x1FFFu;
  if (rest > 0x1000u || (rest == 0x1000u && (half_mant & 1u))) {
    ++half_mant;
    if (half_mant == 0x400u) {  // mantissa carry bumps the exponent
      half_mant = 0;
      if (exponent + 1 >= 0x1F) {
        out.bits = static_cast<std::uint16_t>(sign | 0x7C00u);
        return out;
      }
      out.bits = static_cast<std::uint16_t>(
          sign | (static_cast<std::uint32_t>(exponent + 1) << 10));
      return out;
    }
  }
  out.bits = static_cast<std::uint16_t>(
      sign | (static_cast<std::uint32_t>(exponent) << 10) | half_mant);
  return out;
}

float half_to_float(Half h) {
  const std::uint32_t sign = (h.bits & 0x8000u) << 16;
  const std::uint32_t exponent = (h.bits >> 10) & 0x1Fu;
  std::uint32_t mantissa = h.bits & 0x3FFu;

  std::uint32_t f;
  if (exponent == 0x1F) {
    f = sign | 0x7F800000u | (mantissa << 13);
  } else if (exponent == 0) {
    if (mantissa == 0) {
      f = sign;  // signed zero
    } else {
      // Normalize the subnormal.
      int e = -1;
      do {
        ++e;
        mantissa <<= 1;
      } while ((mantissa & 0x400u) == 0);
      mantissa &= 0x3FFu;
      f = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) |
          (mantissa << 13);
    }
  } else {
    f = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  return std::bit_cast<float>(f);
}

}  // namespace fastpso::vgpu
