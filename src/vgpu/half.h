// IEEE 754 binary16 ("half") emulation for the mixed-precision tensor-core
// path. Volta tensor cores multiply FP16 operands and accumulate in FP32;
// PsoParams::mixed_precision reproduces those semantics by rounding the
// multiplicand fragments through this type.
#pragma once

#include <bit>
#include <cstdint>

namespace fastpso::vgpu {

/// Storage-only half-precision value with float conversions.
struct Half {
  std::uint16_t bits = 0;
};

/// Rounds a float to the nearest representable binary16 value
/// (round-to-nearest-even; overflow saturates to +-inf).
Half float_to_half(float value);

/// Exact widening conversion binary16 -> binary32.
float half_to_float(Half h);

/// Convenience: the value after a round trip through half precision —
/// what a tensor core actually multiplies.
inline float round_through_half(float value) {
  return half_to_float(float_to_half(value));
}

}  // namespace fastpso::vgpu
