#include "vgpu/memory_pool.h"

#include "common/check.h"
#include "vgpu/device.h"

namespace fastpso::vgpu {

MemoryPool::MemoryPool(Device& device, bool enabled)
    : device_(device), enabled_(enabled) {}

MemoryPool::~MemoryPool() {
  // Outstanding blocks are the caller's bug, but the cache is ours.
  release_cache();
}

void* MemoryPool::alloc(std::size_t bytes) {
  FASTPSO_CHECK_MSG(bytes > 0, "zero-byte pool allocation");
  if (enabled_) {
    auto it = cache_.find(bytes);
    if (it != cache_.end() && !it->second.empty()) {
      void* p = it->second.back();
      it->second.pop_back();
      live_[p] = bytes;
      ++hits_;
      return p;
    }
  }
  ++misses_;
  void* p = device_.raw_alloc(bytes);
  live_[p] = bytes;
  return p;
}

void MemoryPool::free(void* p) {
  auto it = live_.find(p);
  FASTPSO_CHECK_MSG(it != live_.end(),
                    "pool free of unknown or already-freed pointer");
  const std::size_t bytes = it->second;
  live_.erase(it);
  if (enabled_) {
    cache_[bytes].push_back(p);
  } else {
    device_.raw_free(p);
  }
}

void MemoryPool::set_enabled(bool enabled) {
  if (enabled_ && !enabled) {
    release_cache();
  }
  enabled_ = enabled;
}

void MemoryPool::release_cache() {
  for (auto& [size, blocks] : cache_) {
    (void)size;
    for (void* p : blocks) {
      device_.raw_free(p);
    }
    blocks.clear();
  }
  cache_.clear();
}

std::size_t MemoryPool::cached_blocks() const {
  std::size_t count = 0;
  for (const auto& [size, blocks] : cache_) {
    (void)size;
    count += blocks.size();
  }
  return count;
}

}  // namespace fastpso::vgpu
