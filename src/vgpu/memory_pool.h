// Caching device-memory allocator (the paper's "GPU memory caching",
// Section 4.4 / Table 4).
//
// The first allocation of a given size goes to the device (modeled
// cudaMalloc cost); a free() keeps the block in a size-keyed cache, and the
// next allocation of that size is served from the cache at near-zero cost.
// PSO allocates the same (n x d) matrices every iteration, so after the
// first iteration every request is a cache hit — exactly the behaviour the
// paper measures as a 3.7–5% end-to-end win (Table 4).
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <vector>

namespace fastpso::vgpu {

class Device;

/// Size-bucketed caching allocator over Device::raw_alloc/raw_free.
class MemoryPool {
 public:
  /// `enabled == false` degrades to pass-through (models re-allocation).
  explicit MemoryPool(Device& device, bool enabled = true);
  ~MemoryPool();

  MemoryPool(const MemoryPool&) = delete;
  MemoryPool& operator=(const MemoryPool&) = delete;

  void* alloc(std::size_t bytes);
  void free(void* p);

  /// Turns caching on/off; releases the cache when turning off.
  void set_enabled(bool enabled);
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Returns all cached (unused) blocks to the device.
  void release_cache();

  [[nodiscard]] std::uint64_t cache_hits() const { return hits_; }
  [[nodiscard]] std::uint64_t cache_misses() const { return misses_; }
  [[nodiscard]] std::size_t cached_blocks() const;
  [[nodiscard]] std::size_t outstanding() const { return live_.size(); }

 private:
  Device& device_;
  bool enabled_;
  std::map<std::size_t, std::vector<void*>> cache_;  // size -> free blocks
  std::map<void*, std::size_t> live_;                // ptr -> size
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace fastpso::vgpu
