// Deferred-execution hooks for cross-job batch packing (serve layer).
//
// The serving scheduler multiplexes many tiny same-shape jobs onto one
// device; PR 6's Batcher priced what a packed launch *would* save, but every
// job still executed its own launches. These hooks are the execution half of
// making that real (DESIGN.md §10, the Warp-Level Parallelism scheme from
// PAPERS.md): while a PackSink is attached and a graph replay is open,
// Device::launch_elements offers each *matched* element launch's body to the
// sink as a span closure instead of running it inline. The sink (one lane
// per job) later executes a whole same-shape cohort's spans through one
// Device::packed_dispatch with grid = k x per-job blocks.
//
// Accounting is untouched by design: a deferred launch was already fully
// accounted through the per-job replay path (counters, modeled seconds,
// breakdown slot, prof event) before the offer — deferral moves only the
// body's *execution*, which is legal exactly because element-wise bodies
// are order-independent across elements and cohort jobs own disjoint
// buffers. That is what keeps packed serving bitwise-equal-to-solo.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <new>
#include <type_traits>

#include "vgpu/perf_model.h"

namespace fastpso::vgpu {

/// A stored element-range closure: invoke(begin, end) runs the deferred
/// body for elements [begin, end). Inline fixed-capacity storage — packing
/// defers one span per launch on the serving hot path, so a std::function
/// heap allocation per launch would hand back much of the win. Bodies must
/// be trivially copyable/destructible and fit the buffer (admissible<B>);
/// every fast-path launch body in the repo captures a small by-value
/// argument struct, which qualifies. Non-admissible bodies simply are not
/// offered (the launch runs inline, exactly as unpacked).
class PackSpan {
 public:
  static constexpr std::size_t kCapacity = 192;

  template <typename Body>
  static constexpr bool admissible =
      sizeof(Body) <= kCapacity && std::is_trivially_copyable_v<Body> &&
      std::is_trivially_destructible_v<Body>;

  PackSpan() = default;

  /// Binds an element body `body(i)`; the span runs it over [begin, end).
  template <typename Body>
  void bind(const Body& body) {
    static_assert(admissible<Body>, "body does not fit a PackSpan");
    ::new (static_cast<void*>(storage_)) Body(body);
    invoke_ = [](const void* storage, std::int64_t begin, std::int64_t end) {
      const Body& b = *static_cast<const Body*>(
          static_cast<const void*>(storage));
      for (std::int64_t i = begin; i < end; ++i) {
        b(i);
      }
    };
  }

  /// Binds a range closure `fn(begin, end)` that handles its own loop
  /// (external dispatchers, e.g. the batch objective evaluator).
  template <typename Fn>
  void bind_range(const Fn& fn) {
    static_assert(admissible<Fn>, "range closure does not fit a PackSpan");
    ::new (static_cast<void*>(storage_)) Fn(fn);
    invoke_ = [](const void* storage, std::int64_t begin, std::int64_t end) {
      (*static_cast<const Fn*>(static_cast<const void*>(storage)))(begin,
                                                                   end);
    };
  }

  void operator()(std::int64_t begin, std::int64_t end) const {
    invoke_(storage_, begin, end);
  }

 private:
  alignas(std::max_align_t) std::byte storage_[kCapacity];
  void (*invoke_)(const void*, std::int64_t, std::int64_t) = nullptr;
};

/// Where Device hands off deferrable launches while packing is active. One
/// sink serves one cohort round; the serve layer's CohortQueue implements
/// it with one lane per job.
class PackSink {
 public:
  virtual ~PackSink() = default;

  /// Offers a matched element launch for deferral. `node_index` is the
  /// matched node in the replay exec's node list (the packing key:
  /// same-shape jobs match the same node positionally), `cost`/`seconds`
  /// are the launch's live-accounted values (packed-credit input), and
  /// `span` executes the body over an element range. Returns false to
  /// decline — the caller must then flush the lane and run inline.
  virtual bool offer(int node_index, std::int64_t n_elems,
                     const KernelCostSpec& cost, double seconds,
                     const PackSpan& span) = 0;

  /// Executes everything deferred on the *current* lane, in offer order.
  /// Device calls this before any non-deferrable work (plain launches,
  /// block kernels, memcpys, frees) so per-job data ordering is preserved
  /// no matter what a job does between element launches.
  virtual void flush_lane() = 0;
};

}  // namespace fastpso::vgpu
