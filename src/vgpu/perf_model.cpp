#include "vgpu/perf_model.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

#include "common/check.h"

namespace fastpso::vgpu {

double stride_amplification(std::size_t stride_elems, std::size_t elem_bytes) {
  FASTPSO_CHECK(stride_elems >= 1);
  FASTPSO_CHECK(elem_bytes >= 1);
  const double span =
      static_cast<double>(stride_elems) * static_cast<double>(elem_bytes);
  const double cap = kSectorBytes / static_cast<double>(elem_bytes);
  // Consecutive threads touch addresses `span` bytes apart. Once the span
  // exceeds a sector, each access drags in a full sector for elem_bytes of
  // useful data.
  if (span <= static_cast<double>(elem_bytes)) {
    return 1.0;
  }
  return std::min(cap, span / static_cast<double>(elem_bytes));
}

KernelCostSpec& KernelCostSpec::operator+=(const KernelCostSpec& other) {
  // Amplifications must be folded into byte counts before merging.
  const double my_read = fetched_read_bytes();
  const double my_write = fetched_write_bytes();
  flops += other.flops;
  transcendentals += other.transcendentals;
  dram_read_bytes += other.dram_read_bytes;
  dram_write_bytes += other.dram_write_bytes;
  read_amplification = dram_read_bytes > 0
                           ? (my_read + other.fetched_read_bytes()) /
                                 dram_read_bytes
                           : 1.0;
  write_amplification = dram_write_bytes > 0
                            ? (my_write + other.fetched_write_bytes()) /
                                  dram_write_bytes
                            : 1.0;
  barriers += other.barriers;
  uses_tensor_cores = uses_tensor_cores || other.uses_tensor_cores;
  return *this;
}

KernelCostSpec& KernelCostSpec::elide_traffic(double read_useful,
                                              double read_fetched,
                                              double write_useful,
                                              double write_fetched) {
  const double new_read = std::max(0.0, dram_read_bytes - read_useful);
  const double new_read_fetched =
      std::max(0.0, fetched_read_bytes() - read_fetched);
  read_amplification =
      new_read > 0 ? std::max(1.0, new_read_fetched / new_read) : 1.0;
  dram_read_bytes = new_read;
  const double new_write = std::max(0.0, dram_write_bytes - write_useful);
  const double new_write_fetched =
      std::max(0.0, fetched_write_bytes() - write_fetched);
  write_amplification =
      new_write > 0 ? std::max(1.0, new_write_fetched / new_write) : 1.0;
  dram_write_bytes = new_write;
  return *this;
}

GpuPerfModel::GpuPerfModel(GpuSpec spec) : spec_(std::move(spec)) {
  // Compute saturates once every lane has a couple of warps to interleave.
  compute_saturation_ = spec_.lanes() * 2.0;
  compute_floor_ = 1.0 / compute_saturation_;
  eff_flops_plain_ = spec_.peak_flops() * spec_.alu_efficiency;
  eff_flops_tensor_ = spec_.tensor_tflops * 1e12;
  bw_base_ = spec_.eff_dram_bw_gbps * 1e9;
  launch_overhead_s_ = spec_.launch_overhead_us * 1e-6;
}

double GpuPerfModel::compute_occupancy(double threads) const {
  return std::clamp(threads / compute_saturation_, compute_floor_, 1.0);
}

double GpuPerfModel::memory_occupancy(double threads) const {
  const double ratio =
      std::clamp(threads / spec_.bw_saturation_threads, 1e-6, 1.0);
  // Saturated launches are the common case; IEEE pow(1.0, y) == 1.0 exactly.
  if (ratio == 1.0) {
    return 1.0;
  }
  const std::uint64_t bits = std::bit_cast<std::uint64_t>(ratio);
  const std::size_t slot = static_cast<std::size_t>(
      (bits * 0x9E3779B97F4A7C15ull) >> 32) % kOccCacheSize;
  OccEntry& entry = occ_cache_[slot];
  if (entry.ratio != ratio) {
    entry.ratio = ratio;
    entry.occ = std::pow(ratio, spec_.bw_occupancy_exponent);
  }
  return entry.occ;
}

double GpuPerfModel::kernel_seconds(double threads,
                                    const KernelCostSpec& cost) const {
  FASTPSO_CHECK(threads >= 1.0);

  const double eff_flops =
      cost.uses_tensor_cores ? eff_flops_tensor_ : eff_flops_plain_;
  const double flop_work =
      cost.flops + cost.transcendentals * spec_.sfu_cost_flops;
  const double t_compute =
      flop_work / (eff_flops * compute_occupancy(threads));

  const double bw = bw_base_ * memory_occupancy(threads);
  const double t_memory = cost.fetched_bytes() / bw;

  return std::max(t_compute, t_memory) + launch_overhead_s_ +
         cost.barriers * spec_.barrier_overhead_us * 1e-6;
}

ResolvedLaunchShape GpuPerfModel::resolve_shape(double threads) const {
  FASTPSO_CHECK(threads >= 1.0);
  ResolvedLaunchShape s;
  s.threads = threads;
  s.compute_occupancy = compute_occupancy(threads);
  s.memory_occupancy = memory_occupancy(threads);
  s.compute_denom_plain = eff_flops_plain_ * s.compute_occupancy;
  s.compute_denom_tensor = eff_flops_tensor_ * s.compute_occupancy;
  s.memory_bw = bw_base_ * s.memory_occupancy;
  return s;
}

double GpuPerfModel::kernel_seconds_resolved(const ResolvedLaunchShape& shape,
                                             const KernelCostSpec& cost,
                                             double* t_compute_out,
                                             double* t_memory_out) const {
  // Mirrors kernel_seconds term by term. The denominators were folded at
  // resolve_shape time with the same association (eff_flops * occ, bw * occ)
  // the per-call code uses, so every double here is bit-identical.
  const double compute_denom = cost.uses_tensor_cores
                                   ? shape.compute_denom_tensor
                                   : shape.compute_denom_plain;
  const double flop_work =
      cost.flops + cost.transcendentals * spec_.sfu_cost_flops;
  const double t_compute = flop_work / compute_denom;
  const double t_memory = cost.fetched_bytes() / shape.memory_bw;
  if (t_compute_out != nullptr) {
    *t_compute_out = t_compute;
  }
  if (t_memory_out != nullptr) {
    *t_memory_out = t_memory;
  }
  return std::max(t_compute, t_memory) + launch_overhead_s_ +
         cost.barriers * spec_.barrier_overhead_us * 1e-6;
}

KernelTimeDetail GpuPerfModel::kernel_detail(double threads,
                                             const KernelCostSpec& cost)
    const {
  FASTPSO_CHECK(threads >= 1.0);
  // Mirrors kernel_seconds term by term (same operands, same association)
  // rather than refactoring it — kernel_seconds is on every launch's
  // critical path and its result must stay bit-identical.
  KernelTimeDetail d;
  d.compute_occupancy = compute_occupancy(threads);
  d.memory_occupancy = memory_occupancy(threads);

  const double eff_flops =
      cost.uses_tensor_cores ? eff_flops_tensor_ : eff_flops_plain_;
  const double flop_work =
      cost.flops + cost.transcendentals * spec_.sfu_cost_flops;
  d.compute_seconds = flop_work / (eff_flops * d.compute_occupancy);

  const double bw = bw_base_ * d.memory_occupancy;
  d.memory_seconds = cost.fetched_bytes() / bw;

  d.overhead_seconds = launch_overhead_s_;
  d.barrier_seconds = cost.barriers * spec_.barrier_overhead_us * 1e-6;
  return d;
}

double GpuPerfModel::transfer_seconds(double bytes) const {
  // Fixed latency per transfer plus bandwidth term.
  constexpr double kTransferLatencyUs = 8.0;
  return kTransferLatencyUs * 1e-6 + bytes / (spec_.pcie_bw_gbps * 1e9);
}

double GpuPerfModel::alloc_seconds() const {
  return spec_.alloc_overhead_us * 1e-6;
}

double GpuPerfModel::free_seconds() const {
  return spec_.free_overhead_us * 1e-6;
}

double CpuPerfModel::region_seconds(int threads, double flops,
                                    double transcendentals,
                                    double bytes) const {
  FASTPSO_CHECK(threads >= 1);
  const int cores = std::min(threads, spec_.cores);
  const double eff =
      cores == 1 ? 1.0 : spec_.omp_efficiency;  // fork/join + imbalance
  // CPU transcendentals run in the scalar libm at roughly 20 FLOP-equivalents.
  constexpr double kCpuSfuCost = 12.0;
  const double flop_work = flops + transcendentals * kCpuSfuCost;
  const double t_compute =
      flop_work / (spec_.eff_flops_per_core * cores * eff);
  const double bw_gbps =
      cores == 1 ? spec_.single_core_bw_gbps : spec_.multi_core_bw_gbps;
  const double t_memory = bytes / (bw_gbps * 1e9);
  return std::max(t_compute, t_memory) + region_overhead_seconds(cores);
}

double CpuPerfModel::region_overhead_seconds(int threads) const {
  return threads > 1 ? spec_.omp_barrier_us * 1e-6 : 0.0;
}

}  // namespace fastpso::vgpu
