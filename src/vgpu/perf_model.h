// Roofline-with-occupancy performance model for the virtual GPU.
//
// Every kernel launched through vgpu::Device declares a KernelCostSpec —
// its floating-point work, its useful DRAM traffic and the *access pattern*
// (coalesced vs strided) of that traffic. The model converts the spec plus
// the launch shape into modeled seconds:
//
//   t = max(t_compute, t_memory) + launch_overhead + barriers * sync_cost
//
//   t_compute = (flops + sfu_cost * transcendentals)
//               / (peak_flops * alu_eff * occ_c)
//   t_memory  = fetched_bytes / (eff_bw * occ_m)
//
// where occ_c and occ_m grow with the number of resident threads: a launch
// with few threads cannot hide memory latency or fill all SMs, which is
// precisely the mechanism the paper exploits (element-wise parallelism
// creates n*d threads and saturates the device; particle-wise parallelism
// creates only n threads and leaves it idle — Section 1 and 3.4).
//
// `fetched_bytes` is useful bytes multiplied by an amplification factor
// computed from the declared stride: a stride-d access pattern touches one
// element per cache sector, so the hardware fetches sector_bytes/elem_bytes
// times more than it uses. This is how the gpu-pso baseline's layout cost
// emerges from first principles rather than a fudge factor.
#pragma once

#include <array>
#include <cstddef>

#include "vgpu/device_spec.h"

namespace fastpso::vgpu {

/// DRAM transaction sector size used for coalescing analysis (bytes).
inline constexpr double kSectorBytes = 32.0;

/// Amplification factor for an access pattern with `stride_elems` elements
/// between consecutive threads' accesses of `elem_bytes` each.
/// stride 1 => coalesced => 1.0; large strides cap at sector/elem.
double stride_amplification(std::size_t stride_elems, std::size_t elem_bytes);

/// Work/traffic declaration for one kernel launch.
struct KernelCostSpec {
  double flops = 0;             ///< ordinary FP ops (FMA counts as 1)
  double transcendentals = 0;   ///< sin/cos/exp/log/pow evaluations
  double dram_read_bytes = 0;   ///< useful bytes read
  double dram_write_bytes = 0;  ///< useful bytes written
  double read_amplification = 1.0;
  double write_amplification = 1.0;
  int barriers = 0;             ///< __syncthreads phases
  bool uses_tensor_cores = false;

  /// Bytes the memory system actually moves.
  [[nodiscard]] double fetched_read_bytes() const {
    return dram_read_bytes * read_amplification;
  }
  [[nodiscard]] double fetched_write_bytes() const {
    return dram_write_bytes * write_amplification;
  }
  [[nodiscard]] double fetched_bytes() const {
    return fetched_read_bytes() + fetched_write_bytes();
  }

  /// Accumulates another launch's cost (used by multi-launch steps).
  KernelCostSpec& operator+=(const KernelCostSpec& other);

  /// Removes elided intermediate traffic from a merged spec (kernel
  /// fusion, vgpu/graph/fusion.h): subtracts the given useful and fetched
  /// bytes per class and re-derives the amplifications from what remains.
  /// Clamped at zero useful bytes (amplification then 1) and at
  /// amplification >= 1, so the result always passes the graph audit.
  KernelCostSpec& elide_traffic(double read_useful, double read_fetched,
                                double write_useful, double write_fetched);
};

/// Term-by-term decomposition of kernel_seconds, for profiler attribution
/// (vgpu::prof): which roofline term bounded the launch and at what
/// occupancy. total() reproduces kernel_seconds bit-for-bit.
struct KernelTimeDetail {
  double compute_seconds = 0;   ///< flop work / effective compute rate
  double memory_seconds = 0;    ///< fetched bytes / effective bandwidth
  double overhead_seconds = 0;  ///< fixed launch overhead
  double barrier_seconds = 0;   ///< barriers * per-barrier sync cost
  double compute_occupancy = 0;
  double memory_occupancy = 0;

  [[nodiscard]] bool memory_bound() const {
    return memory_seconds > compute_seconds;
  }
  [[nodiscard]] double total() const {
    return (compute_seconds > memory_seconds ? compute_seconds
                                             : memory_seconds) +
           overhead_seconds + barrier_seconds;
  }
};

/// Launch-shape-dependent constants of kernel_seconds, resolved once for a
/// fixed thread count (vgpu::graph pre-resolves one per captured node). Each
/// field is the *same expression* (same operands, same association) the
/// per-call code evaluates, so kernel_seconds_resolved() reproduces
/// kernel_seconds() bit-for-bit for any cost spec.
struct ResolvedLaunchShape {
  double threads = 0;
  double compute_occupancy = 0;     ///< compute_occupancy(threads)
  double memory_occupancy = 0;      ///< memory_occupancy(threads)
  double compute_denom_plain = 0;   ///< eff_flops_plain * compute_occupancy
  double compute_denom_tensor = 0;  ///< eff_flops_tensor * compute_occupancy
  double memory_bw = 0;             ///< bw_base * memory_occupancy
};

/// Converts launch shape + cost spec into modeled seconds on a GpuSpec.
class GpuPerfModel {
 public:
  explicit GpuPerfModel(GpuSpec spec);

  [[nodiscard]] const GpuSpec& spec() const { return spec_; }

  /// Modeled execution time of one kernel launch with `threads` resident
  /// threads performing `cost` worth of work.
  [[nodiscard]] double kernel_seconds(double threads,
                                      const KernelCostSpec& cost) const;

  /// Pre-resolves the shape-dependent factors of kernel_seconds for a fixed
  /// thread count.
  [[nodiscard]] ResolvedLaunchShape resolve_shape(double threads) const;

  /// kernel_seconds over a pre-resolved shape: bit-identical to
  /// kernel_seconds(shape.threads, cost) with none of the per-call occupancy
  /// work. When `t_compute_out`/`t_memory_out` are given they receive the two
  /// roofline terms (for limiter attribution) — the same doubles
  /// kernel_detail computes.
  [[nodiscard]] double kernel_seconds_resolved(
      const ResolvedLaunchShape& shape, const KernelCostSpec& cost,
      double* t_compute_out = nullptr, double* t_memory_out = nullptr) const;

  /// kernel_seconds broken into its roofline terms. Evaluates the same
  /// expressions over the same operands, so detail.total() is bit-identical
  /// to kernel_seconds(threads, cost).
  [[nodiscard]] KernelTimeDetail kernel_detail(double threads,
                                               const KernelCostSpec& cost)
      const;

  /// Occupancy factor for compute throughput in (0, 1].
  [[nodiscard]] double compute_occupancy(double threads) const;

  /// Occupancy factor for memory bandwidth in (0, 1].
  [[nodiscard]] double memory_occupancy(double threads) const;

  /// Modeled PCIe transfer time for `bytes` (one direction).
  [[nodiscard]] double transfer_seconds(double bytes) const;

  /// Modeled cudaMalloc / cudaFree cost.
  [[nodiscard]] double alloc_seconds() const;
  [[nodiscard]] double free_seconds() const;

 private:
  GpuSpec spec_;
  // Spec-derived constants of kernel_seconds, hoisted to construction. Each
  // is the *same expression* (same operands, same association) the per-call
  // code used to evaluate, so modeled seconds are bit-identical; the model is
  // on every launch's critical path and these re-derivations dominated it.
  double eff_flops_plain_ = 0;     ///< peak_flops() * alu_efficiency
  double eff_flops_tensor_ = 0;    ///< tensor_tflops * 1e12
  double compute_saturation_ = 0;  ///< lanes() * 2.0
  double compute_floor_ = 0;       ///< 1.0 / compute_saturation_
  double bw_base_ = 0;             ///< eff_dram_bw_gbps * 1e9
  double launch_overhead_s_ = 0;   ///< launch_overhead_us * 1e-6

  // Direct-mapped memo for memory_occupancy's std::pow, keyed on the clamped
  // occupancy ratio. Launch shapes repeat heavily (same kernels every
  // iteration), and pow for the same ratio bits is deterministic, so caching
  // cannot change any returned value. Mutable: the memo is invisible state.
  struct OccEntry {
    double ratio = -1.0;  ///< impossible ratio => never matches
    double occ = 0.0;
  };
  static constexpr std::size_t kOccCacheSize = 16;  // power of two
  mutable std::array<OccEntry, kOccCacheSize> occ_cache_{};
};

/// Analytic cost model for the CPU implementations (fastpso-seq/-omp).
/// Same roofline idea with CPU constants; `threads` chooses between the
/// single-core and all-core operating points.
class CpuPerfModel {
 public:
  explicit CpuPerfModel(CpuSpec spec) : spec_(std::move(spec)) {}

  [[nodiscard]] const CpuSpec& spec() const { return spec_; }

  /// Modeled seconds for a loop nest doing `flops` FP ops (+transcendentals)
  /// over `bytes` of streaming traffic on `threads` cores.
  [[nodiscard]] double region_seconds(int threads, double flops,
                                      double transcendentals,
                                      double bytes) const;

  /// Per-parallel-region overhead (fork/join); zero for threads == 1.
  [[nodiscard]] double region_overhead_seconds(int threads) const;

 private:
  CpuSpec spec_;
};

}  // namespace fastpso::vgpu
