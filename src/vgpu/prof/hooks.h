// Hot-path hooks connecting the virtual GPU to the profiler
// (vgpu/prof/prof.h). Mirrors vgpu/san/hooks.h: this header is included by
// vgpu/device.h and must stay dependency-light — the device's launch /
// memcpy / alloc paths test prof::active() (a single branch on a process
// global) and only call into the out-of-line recording code when profiling
// has been switched on via FASTPSO_PROF=1 or prof::set_enabled(true).
#pragma once

namespace fastpso::vgpu::prof {

namespace detail {

/// Process-wide profiling toggle (the vgpu is single-threaded by contract).
/// Initialized from FASTPSO_PROF=1; flipped by set_enabled().
extern bool g_enabled;

// Kernel-label stack shared by san::KernelScope and prof::KernelLabel.
// Out-of-line (prof.cpp); only reached while profiling is enabled.
void push_label(const char* name);
void pop_label();
/// Innermost label, or nullptr when the stack is empty.
const char* current_label();

}  // namespace detail

/// True while the profiler is collecting. The one branch every hot-path
/// hook pays when profiling is off.
[[nodiscard]] inline bool active() { return detail::g_enabled; }

/// Turns collection on/off for subsequently issued device operations.
void set_enabled(bool enabled);

/// True when the environment requested profiling (FASTPSO_PROF=1).
bool env_enabled();

/// Event taxonomy: what a profile record describes. kKernel covers every
/// Device::launch / launch_elements / launch_blocks / account_launch;
/// kHost covers modeled host seconds folded into the device timeline;
/// kComm covers one device's share of a modeled collective
/// (Device::account_comm, issued by comm::Communicator).
enum class EventKind {
  kKernel,
  kMemcpyH2D,
  kMemcpyD2H,
  kMemcpyD2D,
  kAlloc,
  kFree,
  kHost,
  kComm,
};

/// Which roofline term bounded a kernel's modeled time.
enum class Limiter {
  kNone,     ///< not a kernel event
  kCompute,  ///< t_compute >= t_memory
  kMemory,   ///< t_memory > t_compute
};

}  // namespace fastpso::vgpu::prof
