#include "vgpu/prof/prof.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/csv.h"
#include "common/trace_export.h"

namespace fastpso::vgpu::prof {

namespace detail {

namespace {
bool initial_enabled() {
  const char* e = std::getenv("FASTPSO_PROF");
  return e != nullptr && e[0] == '1' && e[1] == '\0';
}
std::vector<const char*>& label_stack() {
  static std::vector<const char*> stack;
  return stack;
}
}  // namespace

bool g_enabled = initial_enabled();

void push_label(const char* name) { label_stack().push_back(name); }

void pop_label() { label_stack().pop_back(); }

const char* current_label() {
  return label_stack().empty() ? nullptr : label_stack().back();
}

}  // namespace detail

void set_enabled(bool enabled) { detail::g_enabled = enabled; }

bool env_enabled() {
  static const bool enabled = [] {
    const char* e = std::getenv("FASTPSO_PROF");
    return e != nullptr && e[0] == '1' && e[1] == '\0';
  }();
  return enabled;
}

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kKernel:
      return "kernel";
    case EventKind::kMemcpyH2D:
      return "memcpy_h2d";
    case EventKind::kMemcpyD2H:
      return "memcpy_d2h";
    case EventKind::kMemcpyD2D:
      return "memcpy_d2d";
    case EventKind::kAlloc:
      return "alloc";
    case EventKind::kFree:
      return "free";
    case EventKind::kHost:
      return "host";
    case EventKind::kComm:
      return "comm";
  }
  return "unknown";
}

const char* to_string(Limiter limiter) {
  switch (limiter) {
    case Limiter::kNone:
      return "none";
    case Limiter::kCompute:
      return "compute";
    case Limiter::kMemory:
      return "memory";
  }
  return "unknown";
}

void Profile::clear() {
  events.clear();
  host_clock_ = 0;
}

void Profile::add_host(const char* label, const std::string& phase,
                       double seconds, double flops) {
  Event e;
  e.kind = EventKind::kHost;
  e.label = label;
  e.phase = phase;
  e.t_begin = host_clock_;
  e.modeled_seconds = seconds;
  e.cost.flops = flops;
  host_clock_ += seconds;
  events.push_back(std::move(e));
}

std::uint64_t Profile::kernel_count() const {
  return count(EventKind::kKernel);
}

std::uint64_t Profile::count(EventKind kind) const {
  std::uint64_t n = 0;
  for (const Event& e : events) {
    n += (e.kind == kind) ? 1 : 0;
  }
  return n;
}

double Profile::kernel_seconds() const {
  double s = 0;
  for (const Event& e : events) {
    if (e.kind == EventKind::kKernel) {
      s += e.modeled_seconds;
    }
  }
  return s;
}

double Profile::modeled_seconds() const {
  double s = 0;
  for (const Event& e : events) {
    s += e.modeled_seconds;
  }
  return s;
}

double Profile::kernel_wall_seconds() const {
  double s = 0;
  for (const Event& e : events) {
    if (e.kind == EventKind::kKernel) {
      s += e.wall_seconds;
    }
  }
  return s;
}

double Profile::flops() const {
  double s = 0;
  for (const Event& e : events) {
    if (e.kind == EventKind::kKernel || e.kind == EventKind::kHost) {
      s += e.cost.flops;
    }
  }
  return s;
}

double Profile::dram_read_fetched() const {
  // Same accumulation the device counters perform: kernels contribute their
  // fetched read bytes, d2d copies contribute their byte count, in order.
  double s = 0;
  for (const Event& e : events) {
    if (e.kind == EventKind::kKernel) {
      s += e.cost.fetched_read_bytes();
    } else if (e.kind == EventKind::kMemcpyD2D) {
      s += e.bytes;
    }
  }
  return s;
}

double Profile::dram_write_fetched() const {
  double s = 0;
  for (const Event& e : events) {
    if (e.kind == EventKind::kKernel) {
      s += e.cost.fetched_write_bytes();
    } else if (e.kind == EventKind::kMemcpyD2D) {
      s += e.bytes;
    }
  }
  return s;
}

std::map<std::string, double> Profile::seconds_by_phase() const {
  std::map<std::string, double> by_phase;
  for (const Event& e : events) {
    by_phase[e.phase] += e.modeled_seconds;
  }
  return by_phase;
}

std::vector<KernelRow> Profile::kernels_by_label() const {
  std::vector<KernelRow> rows;
  std::map<std::string, std::size_t> index;
  for (const Event& e : events) {
    if (e.kind != EventKind::kKernel) {
      continue;
    }
    auto [it, inserted] = index.emplace(e.label, rows.size());
    if (inserted) {
      KernelRow row;
      row.label = e.label;
      rows.push_back(std::move(row));
    }
    KernelRow& row = rows[it->second];
    ++row.launches;
    row.modeled_seconds += e.modeled_seconds;
    row.wall_seconds += e.wall_seconds;
    row.flops += e.cost.flops;
    row.fetched_read_bytes += e.cost.fetched_read_bytes();
    row.fetched_write_bytes += e.cost.fetched_write_bytes();
  }
  return rows;
}

std::vector<KernelRow> Profile::top_kernels(std::size_t n) const {
  std::vector<KernelRow> rows = kernels_by_label();
  std::sort(rows.begin(), rows.end(),
            [](const KernelRow& a, const KernelRow& b) {
              if (a.modeled_seconds != b.modeled_seconds) {
                return a.modeled_seconds > b.modeled_seconds;
              }
              return a.label < b.label;
            });
  if (rows.size() > n) {
    rows.resize(n);
  }
  return rows;
}

double Profile::modeled_vs_wall() const {
  const double wall = kernel_wall_seconds();
  return wall > 0 ? kernel_seconds() / wall : 0.0;
}

namespace {

/// Prints integral doubles as integers, everything else round-trippable
/// (the sanitizer trace convention, for stable golden files).
std::string fmt_num(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::abs(v) < 9.0e15) {
    return std::to_string(static_cast<long long>(v));
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string fmt_fixed(double v, int digits) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string quoted(const std::string& s) {
  std::string out = "\"";
  out += json_escape(s);
  out += '"';
  return out;
}

}  // namespace

std::vector<TraceEvent> Profile::trace_events(int pid) const {
  std::vector<TraceEvent> trace;
  trace.reserve(events.size());
  for (const Event& e : events) {
    TraceEvent t;
    t.name = e.label;
    t.cat = to_string(e.kind);
    t.ts_us = e.t_begin * 1e6;
    t.dur_us = e.modeled_seconds * 1e6;
    t.pid = pid;
    t.tid = e.stream;
    t.args.emplace_back("phase", quoted(e.phase));
    if (e.kind == EventKind::kKernel) {
      t.args.emplace_back("grid", std::to_string(e.grid));
      t.args.emplace_back("block", std::to_string(e.block));
      t.args.emplace_back("flops", fmt_num(e.cost.flops));
      t.args.emplace_back("transcendentals",
                          fmt_num(e.cost.transcendentals));
      t.args.emplace_back("read_bytes", fmt_num(e.cost.dram_read_bytes));
      t.args.emplace_back("write_bytes", fmt_num(e.cost.dram_write_bytes));
      t.args.emplace_back("fetched_read_bytes",
                          fmt_num(e.cost.fetched_read_bytes()));
      t.args.emplace_back("fetched_write_bytes",
                          fmt_num(e.cost.fetched_write_bytes()));
      t.args.emplace_back("barriers", std::to_string(e.cost.barriers));
      t.args.emplace_back("compute_occupancy",
                          fmt_fixed(e.compute_occupancy, 6));
      t.args.emplace_back("memory_occupancy",
                          fmt_fixed(e.memory_occupancy, 6));
      t.args.emplace_back("limiter",
                          quoted(prof::to_string(e.limiter)));
    } else if (e.kind != EventKind::kHost) {
      t.args.emplace_back("bytes", fmt_num(e.bytes));
    }
    trace.push_back(std::move(t));
  }
  return trace;
}

std::string Profile::chrome_trace_json() const {
  return fastpso::chrome_trace_json(trace_events(/*pid=*/0));
}

bool Profile::write_chrome_trace(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file.good()) {
    return false;
  }
  file << chrome_trace_json();
  return file.good();
}

std::vector<std::string> Profile::csv_header() {
  return {"index",        "kind",       "label",       "phase",
          "stream",       "grid",       "block",       "modeled_s",
          "wall_s",       "flops",      "transcendentals",
          "read_bytes",   "write_bytes", "fetched_read_bytes",
          "fetched_write_bytes", "bytes", "compute_occupancy",
          "memory_occupancy", "limiter"};
}

void Profile::to_csv(CsvWriter& csv) const {
  for (std::size_t i = 0; i < events.size(); ++i) {
    const Event& e = events[i];
    csv.add_row({std::to_string(i), to_string(e.kind), e.label, e.phase,
                 std::to_string(e.stream), std::to_string(e.grid),
                 std::to_string(e.block), fmt_num(e.modeled_seconds),
                 fmt_num(e.wall_seconds), fmt_num(e.cost.flops),
                 fmt_num(e.cost.transcendentals),
                 fmt_num(e.cost.dram_read_bytes),
                 fmt_num(e.cost.dram_write_bytes),
                 fmt_num(e.cost.fetched_read_bytes()),
                 fmt_num(e.cost.fetched_write_bytes()), fmt_num(e.bytes),
                 fmt_fixed(e.compute_occupancy, 6),
                 fmt_fixed(e.memory_occupancy, 6),
                 prof::to_string(e.limiter)});
  }
}

bool Profile::write_csv(const std::string& path) const {
  CsvWriter csv(csv_header());
  to_csv(csv);
  return csv.write(path);
}

}  // namespace fastpso::vgpu::prof
