// vgpu::prof — an nvprof-equivalent profiling layer for the virtual GPU.
//
// Every headline number in the paper is an nvprof measurement (per-kernel
// times, memory traffic, occupancy); this layer makes the same attribution a
// first-class output of the engine instead of bench-local bookkeeping. While
// profiling is enabled (FASTPSO_PROF=1 or prof::set_enabled(true)) every
// Device::launch / launch_elements / launch_blocks / account_launch, every
// memcpy, every allocation and every modeled host region appends one Event
// to the owning Device's timeline:
//
//   kind, kernel label, phase, stream, launch shape, KernelCostSpec,
//   modeled start/duration, host wall seconds, occupancies, roofline limiter
//
// The modeled fields are the *same doubles* the PerfModel handed to the
// device counters, recorded in the same order — so in-order aggregation over
// a Profile reproduces DeviceCounters::kernel_seconds, modeled_seconds and
// the per-phase TimeBreakdown bit-for-bit. That identity is the event-trace
// contract pinned by tests/test_prof.cpp and the golden Chrome trace in
// tests/golden/prof_trace_sphere.json: engine PRs cannot silently drop,
// double-count or relabel events without a test failing.
//
// Exports (DESIGN.md §7):
//   * Chrome-trace JSON (chrome://tracing / Perfetto), modeled timeline,
//     fully deterministic for a fixed seed — wall seconds are deliberately
//     excluded so traces are byte-identical across runs.
//   * CSV (one row per event, includes wall seconds; wall columns are
//     machine-dependent by nature).
//
// Zero overhead when off: the device hot paths pay one branch on
// prof::active() and nothing else (gated by micro_engine --prof-overhead).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/trace_export.h"
#include "vgpu/device.h"
#include "vgpu/prof/hooks.h"

namespace fastpso {
class CsvWriter;  // common/csv.h
}

namespace fastpso::vgpu::prof {

const char* to_string(EventKind kind);
const char* to_string(Limiter limiter);

/// One profiled device operation.
struct Event {
  EventKind kind = EventKind::kKernel;
  std::string label;  ///< kernel label (KernelScope/KernelLabel) or op name
  std::string phase;  ///< Device phase at emit time ("init"/"eval"/...)
  int stream = 0;
  std::int64_t grid = 0;   ///< kernels only
  int block = 0;           ///< kernels only
  KernelCostSpec cost;     ///< kernels only (declared cost)
  double bytes = 0;        ///< transfers/allocations: bytes moved/reserved
  double t_begin = 0;      ///< modeled stream-clock at op start (seconds)
  double modeled_seconds = 0;
  double wall_seconds = 0;  ///< host wall time of the body (kernels,
                            ///< transfers); non-deterministic, excluded
                            ///< from the Chrome trace
  double compute_occupancy = 0;  ///< kernels only
  double memory_occupancy = 0;   ///< kernels only
  Limiter limiter = Limiter::kNone;
};

/// Per-kernel-label aggregate, nvprof "GPU activities" style.
struct KernelRow {
  std::string label;
  std::uint64_t launches = 0;
  double modeled_seconds = 0;
  double wall_seconds = 0;
  double flops = 0;
  double fetched_read_bytes = 0;
  double fetched_write_bytes = 0;
};

/// A collected event timeline plus the aggregation API the benches consume.
/// Harvested from a Device with take_profile(); CPU baselines build one
/// directly via add_host().
struct Profile {
  std::vector<Event> events;

  [[nodiscard]] bool empty() const { return events.empty(); }
  void clear();

  /// Appends a modeled host region (CPU baselines, no Device involved);
  /// t_begin advances a private serial clock. `flops` lets heterogeneous
  /// baselines attribute host-side FP work (counted by flops()).
  void add_host(const char* label, const std::string& phase, double seconds,
                double flops = 0);

  // --- aggregation (all sums run in event order, so they reproduce the
  // --- device counters' accumulation bit-for-bit) ------------------------
  [[nodiscard]] std::uint64_t kernel_count() const;
  [[nodiscard]] std::uint64_t count(EventKind kind) const;
  /// Sum of kernel events' modeled seconds == DeviceCounters::kernel_seconds.
  [[nodiscard]] double kernel_seconds() const;
  /// Sum over all events == DeviceCounters::modeled_seconds (work seconds;
  /// stream overlap not deducted).
  [[nodiscard]] double modeled_seconds() const;
  /// Sum of kernel events' host wall seconds.
  [[nodiscard]] double kernel_wall_seconds() const;
  /// Kernel flops plus host-declared flops == DeviceCounters::flops (the
  /// heterogeneous baseline folds its CPU flops into the counters too).
  [[nodiscard]] double flops() const;
  /// Fetched DRAM reads/writes: kernel fetched bytes plus d2d copies ==
  /// DeviceCounters::dram_read_fetched / dram_write_fetched.
  [[nodiscard]] double dram_read_fetched() const;
  [[nodiscard]] double dram_write_fetched() const;
  /// Modeled seconds per Device phase tag == Device::modeled_breakdown().
  [[nodiscard]] std::map<std::string, double> seconds_by_phase() const;
  /// Per-label kernel totals in order of first appearance (deterministic).
  [[nodiscard]] std::vector<KernelRow> kernels_by_label() const;
  /// Top `n` labels by modeled seconds (ties broken by label).
  [[nodiscard]] std::vector<KernelRow> top_kernels(std::size_t n) const;
  /// Modeled-vs-wall ratio over kernels (how much faster the simulation
  /// host runs than the modeled device); 0 when no wall time was recorded.
  [[nodiscard]] double modeled_vs_wall() const;

  // --- exporters ---------------------------------------------------------
  /// The profile as Chrome-trace events (tid = stream) under an explicit
  /// process id. Multi-device runs concatenate trace_events(k) over the
  /// group's devices to render one merged timeline with a lane per device.
  [[nodiscard]] std::vector<TraceEvent> trace_events(int pid = 0) const;
  /// Deterministic chrome://tracing / Perfetto JSON (modeled timeline;
  /// tid = stream, pid = 0). Byte-identical for identical modeled runs.
  [[nodiscard]] std::string chrome_trace_json() const;
  bool write_chrome_trace(const std::string& path) const;
  /// One CSV row per event (includes wall seconds — machine-dependent).
  void to_csv(CsvWriter& csv) const;
  [[nodiscard]] static std::vector<std::string> csv_header();
  bool write_csv(const std::string& path) const;

 private:
  double host_clock_ = 0;  ///< serial modeled clock for add_host timelines
};

/// RAII phase annotation: sets the device phase for the scope's duration
/// and restores the previous phase on exit, so profiled/modeled time inside
/// is attributed to `phase` (the optimizer's per-step annotation).
class Scope {
 public:
  Scope(Device& device, const char* phase)
      : device_(device), previous_(device.phase()) {
    device_.set_phase(phase);
  }
  ~Scope() { device_.set_phase(std::move(previous_)); }

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

 private:
  Device& device_;
  std::string previous_;
};

/// RAII kernel label for profiler attribution only — unlike
/// san::KernelScope it never opts the launch into sanitizer cost audits and
/// never appears in sanitizer traces. Use where a san label would change
/// audited behavior (e.g. data-dependent kernels) but the profile should
/// still name the kernel. `name` must outlive the scope (string literal).
class KernelLabel {
 public:
  explicit KernelLabel(const char* name) {
    if (active()) {
      detail::push_label(name);
      pushed_ = true;
    }
  }
  ~KernelLabel() {
    if (pushed_) {
      detail::pop_label();
    }
  }

  KernelLabel(const KernelLabel&) = delete;
  KernelLabel& operator=(const KernelLabel&) = delete;

 private:
  bool pushed_ = false;
};

}  // namespace fastpso::vgpu::prof
