#include "vgpu/reduce.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "vgpu/block.h"
#include "vgpu/buffer.h"

namespace fastpso::vgpu {
namespace {

constexpr int kReduceBlock = 256;

/// Launch shape for a reduction over n elements: one block per
/// kReduceBlock-element chunk, capped so the partial array stays small.
LaunchConfig reduce_config(const GpuSpec& spec, std::int64_t n) {
  auto cfg = LaunchConfig::for_elements(spec, n, kReduceBlock,
                                        /*max_blocks=*/1024);
  return cfg;
}

/// Cost of one reduction pass over n elements of `elem_bytes` each.
KernelCostSpec reduce_cost(std::int64_t n, std::size_t elem_bytes,
                           int barriers) {
  KernelCostSpec cost;
  cost.flops = static_cast<double>(n);  // one compare/accumulate per element
  cost.dram_read_bytes = static_cast<double>(n) * elem_bytes;
  cost.barriers = barriers;
  return cost;
}

int log2_ceil(int x) {
  int levels = 0;
  while ((1 << levels) < x) {
    ++levels;
  }
  return levels;
}

}  // namespace

ArgMin reduce_argmin(Device& device, const float* data, std::int64_t n) {
  FASTPSO_CHECK(n > 0);
  const auto cfg = reduce_config(device.spec(), n);
  const auto blocks = cfg.grid;

  std::vector<float> partial_val(blocks);
  std::vector<std::int64_t> partial_idx(blocks);

  device.launch_blocks(
      cfg, reduce_cost(n, sizeof(float), log2_ceil(kReduceBlock)),
      [&](BlockCtx& blk) {
        auto sh_val = blk.shared_array<float>(kReduceBlock);
        auto sh_idx = blk.shared_array<std::int64_t>(kReduceBlock);
        // Phase 1: each thread folds its grid-stride slice.
        blk.for_each_thread([&](const ThreadCtx& t) {
          float best = std::numeric_limits<float>::infinity();
          std::int64_t best_i = -1;
          for (std::int64_t i = t.global_id(); i < n; i += t.grid_stride()) {
            if (data[i] < best || (data[i] == best && i < best_i)) {
              best = data[i];
              best_i = i;
            }
          }
          sh_val[t.thread_idx] = best;
          sh_idx[t.thread_idx] = best_i;
        });
        // Phase 2..log2(block): shared-memory tree reduction.
        for (int stride = kReduceBlock / 2; stride > 0; stride /= 2) {
          blk.sync();
          blk.for_each_thread([&](const ThreadCtx& t) {
            if (t.thread_idx < stride) {
              const int other = t.thread_idx + stride;
              const bool take =
                  sh_val[other] < sh_val[t.thread_idx] ||
                  (sh_val[other] == sh_val[t.thread_idx] &&
                   sh_idx[other] >= 0 &&
                   (sh_idx[t.thread_idx] < 0 ||
                    sh_idx[other] < sh_idx[t.thread_idx]));
              if (take) {
                sh_val[t.thread_idx] = sh_val[other];
                sh_idx[t.thread_idx] = sh_idx[other];
              }
            }
          });
        }
        partial_val[blk.block_idx()] = sh_val[0];
        partial_idx[blk.block_idx()] = sh_idx[0];
      });

  // Final single-block pass over the partials.
  ArgMin result;
  result.value = std::numeric_limits<float>::infinity();
  result.index = -1;
  LaunchConfig final_cfg;
  final_cfg.grid = 1;
  final_cfg.block = 1;
  device.launch(final_cfg, reduce_cost(blocks, sizeof(float) + sizeof(std::int64_t), 0),
                [&](const ThreadCtx&) {
                  for (std::int64_t b = 0; b < blocks; ++b) {
                    if (partial_val[b] < result.value ||
                        (partial_val[b] == result.value &&
                         partial_idx[b] >= 0 &&
                         (result.index < 0 || partial_idx[b] < result.index))) {
                      result.value = partial_val[b];
                      result.index = partial_idx[b];
                    }
                  }
                });
  return result;
}

float reduce_min(Device& device, const float* data, std::int64_t n) {
  return reduce_argmin(device, data, n).value;
}

double reduce_sum(Device& device, const float* data, std::int64_t n) {
  FASTPSO_CHECK(n > 0);
  const auto cfg = reduce_config(device.spec(), n);
  const auto blocks = cfg.grid;
  std::vector<double> partial(blocks, 0.0);

  device.launch_blocks(
      cfg, reduce_cost(n, sizeof(float), log2_ceil(kReduceBlock)),
      [&](BlockCtx& blk) {
        auto sh = blk.shared_array<double>(kReduceBlock);
        blk.for_each_thread([&](const ThreadCtx& t) {
          double acc = 0.0;
          for (std::int64_t i = t.global_id(); i < n; i += t.grid_stride()) {
            acc += static_cast<double>(data[i]);
          }
          sh[t.thread_idx] = acc;
        });
        for (int stride = kReduceBlock / 2; stride > 0; stride /= 2) {
          blk.sync();
          blk.for_each_thread([&](const ThreadCtx& t) {
            if (t.thread_idx < stride) {
              sh[t.thread_idx] += sh[t.thread_idx + stride];
            }
          });
        }
        partial[blk.block_idx()] = sh[0];
      });

  double total = 0.0;
  LaunchConfig final_cfg;
  final_cfg.grid = 1;
  final_cfg.block = 1;
  device.launch(final_cfg, reduce_cost(blocks, sizeof(double), 0),
                [&](const ThreadCtx&) {
                  for (std::int64_t b = 0; b < blocks; ++b) {
                    total += partial[b];
                  }
                });
  return total;
}

}  // namespace fastpso::vgpu
