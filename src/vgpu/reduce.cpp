#include "vgpu/reduce.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "vgpu/block.h"
#include "vgpu/buffer.h"
#include "vgpu/prof/prof.h"
#include "vgpu/san/tracked.h"
#include "vgpu/tuned.h"

namespace fastpso::vgpu {
namespace {

constexpr int kReduceBlock = 256;
constexpr int kReduceMaxBlocks = 1024;

/// The shared-memory tree needs a power-of-two width; tuned entries are
/// emitted from a power-of-two axis, but the store is user-writable so
/// sanitize anyway: round down to a power of two within [32, device max].
int sanitize_block(int block, const GpuSpec& spec) {
  block = std::clamp(block, 32, spec.max_threads_per_block);
  int pow2 = 32;
  while (pow2 * 2 <= block) {
    pow2 *= 2;
  }
  return pow2;
}

/// Tuned tree width for a reduction over n elements (default kReduceBlock).
/// Geometry-only for argmin — the result is "first strict minimum in
/// ascending index order" at any width — so retuning it never moves gbest.
int reduce_block(const GpuSpec& spec, std::int64_t n) {
  const int block =
      tuned::lookup(tuned::shape_key("reduce", n) + "/block", kReduceBlock);
  return block == kReduceBlock ? kReduceBlock : sanitize_block(block, spec);
}

/// Launch shape for a reduction over n elements: one block per
/// `block`-element chunk, capped so the partial array stays small.
LaunchConfig reduce_config(const GpuSpec& spec, std::int64_t n, int block) {
  const int max_blocks = std::max(
      1, tuned::lookup(tuned::shape_key("reduce", n) + "/max_blocks",
                       kReduceMaxBlocks));
  auto cfg = LaunchConfig::for_elements(spec, n, block, max_blocks);
  return cfg;
}

/// Cost of one reduction pass over n elements of `elem_bytes` each,
/// emitting `out_bytes` of partial results. The flop count covers one
/// compare/accumulate per element plus the shared-memory tree
/// (block - 1 folds per block).
KernelCostSpec reduce_cost(std::int64_t n, std::size_t elem_bytes,
                           std::int64_t blocks, std::size_t out_bytes,
                           int barriers, int block) {
  KernelCostSpec cost;
  cost.flops = static_cast<double>(n) +
               (barriers > 0
                    ? static_cast<double>(blocks) * (block - 1)
                    : 0.0);
  cost.dram_read_bytes = static_cast<double>(n) * elem_bytes;
  cost.dram_write_bytes = static_cast<double>(blocks) * out_bytes;
  cost.barriers = barriers;
  return cost;
}

int log2_ceil(int x) {
  int levels = 0;
  while ((1 << levels) < x) {
    ++levels;
  }
  return levels;
}

}  // namespace

ArgMin reduce_argmin(Device& device, const float* data, std::int64_t n) {
  FASTPSO_CHECK(n > 0);
  const int block = reduce_block(device.spec(), n);
  const auto cfg = reduce_config(device.spec(), n, block);
  const auto blocks = cfg.grid;

  if (use_fast_path()) {
    // Both passes are accounted exactly as on the block path; the result is
    // bitwise-identical because min is exact and every tie-break (legacy:
    // per-thread smallest index, tree prefers smaller index, NaN and the
    // all-infinity case never selected) reduces to "first strict minimum in
    // ascending index order".
    device.pack_flush_lane();  // host fold below reads `data` directly
    {
      prof::KernelLabel klabel("reduce/argmin_partial");
      device.account_launch(
          cfg, reduce_cost(n, sizeof(float), blocks,
                           sizeof(float) + sizeof(std::int64_t),
                           log2_ceil(block), block));
      // Footprint: reductions never fuse (barriers), but declaring the
      // input read keeps the node non-opaque so the fusion pass's
      // outside-reader analysis sees exactly what it consumes (the fast
      // path materializes no partial arrays).
      if (device.capturing()) {
        device.graph_note_uses({{data,
                                 static_cast<double>(n) * sizeof(float), 0,
                                 /*write=*/false, "reduce_in"}});
      }
    }
    ArgMin result;
    result.value = std::numeric_limits<float>::infinity();
    result.index = -1;
    for (std::int64_t i = 0; i < n; ++i) {
      if (data[i] < result.value) {
        result.value = data[i];
        result.index = i;
      }
    }
    LaunchConfig final_cfg;
    final_cfg.grid = 1;
    final_cfg.block = 1;
    {
      prof::KernelLabel klabel("reduce/argmin_final");
      device.account_launch(
          final_cfg,
          reduce_cost(blocks, sizeof(float) + sizeof(std::int64_t), blocks,
                      0, 0, block));
      // The fast path folds in place — the final pass touches no device
      // buffer, declared as an empty (non-opaque) footprint.
      if (device.capturing()) {
        device.graph_note_uses({});
      }
    }
    return result;
  }

  std::vector<float> partial_val(blocks);
  std::vector<std::int64_t> partial_idx(blocks);

  const auto in = san::track(data, static_cast<std::size_t>(n), "reduce_in");
  const auto p_val = san::track(partial_val.data(),
                                static_cast<std::size_t>(blocks),
                                "partial_val");
  const auto p_idx = san::track(partial_idx.data(),
                                static_cast<std::size_t>(blocks),
                                "partial_idx");
  san::expect_writes_exactly_once(p_val);
  san::expect_writes_exactly_once(p_idx);
  {
    san::KernelScope scope("reduce/argmin_partial");
    device.launch_blocks(
        cfg,
        reduce_cost(n, sizeof(float), blocks,
                    sizeof(float) + sizeof(std::int64_t),
                    log2_ceil(block), block),
        [&](BlockCtx& blk) {
          auto sh_val = san::track_shared(
              blk.shared_array<float>(block), "sh_val");
          auto sh_idx = san::track_shared(
              blk.shared_array<std::int64_t>(block), "sh_idx");
          // Phase 1: each thread folds its grid-stride slice.
          blk.for_each_thread([&](const ThreadCtx& t) {
            float best = std::numeric_limits<float>::infinity();
            std::int64_t best_i = -1;
            for (std::int64_t i = t.global_id(); i < n;
                 i += t.grid_stride()) {
              san::count_flops(1.0);
              const float value = in[i];
              if (value < best || (value == best && i < best_i)) {
                best = value;
                best_i = i;
              }
            }
            sh_val[t.thread_idx] = best;
            sh_idx[t.thread_idx] = best_i;
          });
          // Phase 2..log2(block): shared-memory tree reduction.
          for (int stride = block / 2; stride > 0; stride /= 2) {
            blk.sync();
            blk.for_each_thread([&](const ThreadCtx& t) {
              if (t.thread_idx < stride) {
                san::count_flops(1.0);
                const int other = t.thread_idx + stride;
                const float other_val = sh_val[other];
                const float mine_val = sh_val[t.thread_idx];
                const std::int64_t other_idx = sh_idx[other];
                const std::int64_t mine_idx = sh_idx[t.thread_idx];
                const bool take =
                    other_val < mine_val ||
                    (other_val == mine_val && other_idx >= 0 &&
                     (mine_idx < 0 || other_idx < mine_idx));
                if (take) {
                  sh_val[t.thread_idx] = other_val;
                  sh_idx[t.thread_idx] = other_idx;
                }
              }
            });
          }
          p_val[blk.block_idx()] = sh_val[0];
          p_idx[blk.block_idx()] = sh_idx[0];
        });
    if (device.capturing()) {
      device.graph_note_uses(
          {{data, static_cast<double>(n) * sizeof(float), 0,
            /*write=*/false, "reduce_in"},
           {partial_val.data(), static_cast<double>(blocks) * sizeof(float),
            0, /*write=*/true, "partial_val"},
           {partial_idx.data(),
            static_cast<double>(blocks) * sizeof(std::int64_t), 0,
            /*write=*/true, "partial_idx"}});
    }
  }

  // Final single-block pass over the partials.
  ArgMin result;
  result.value = std::numeric_limits<float>::infinity();
  result.index = -1;
  LaunchConfig final_cfg;
  final_cfg.grid = 1;
  final_cfg.block = 1;
  san::KernelScope scope("reduce/argmin_final");
  device.launch(final_cfg,
                reduce_cost(blocks, sizeof(float) + sizeof(std::int64_t),
                            blocks, 0, 0, block),
                [&](const ThreadCtx&) {
                  for (std::int64_t b = 0; b < blocks; ++b) {
                    san::count_flops(1.0);
                    const float value = p_val[b];
                    const std::int64_t index = p_idx[b];
                    if (value < result.value ||
                        (value == result.value && index >= 0 &&
                         (result.index < 0 || index < result.index))) {
                      result.value = value;
                      result.index = index;
                    }
                  }
                });
  if (device.capturing()) {
    device.graph_note_uses(
        {{partial_val.data(), static_cast<double>(blocks) * sizeof(float), 0,
          /*write=*/false, "partial_val"},
         {partial_idx.data(),
          static_cast<double>(blocks) * sizeof(std::int64_t), 0,
          /*write=*/false, "partial_idx"}});
  }
  return result;
}

float reduce_min(Device& device, const float* data, std::int64_t n) {
  return reduce_argmin(device, data, n).value;
}

double reduce_sum(Device& device, const float* data, std::int64_t n) {
  FASTPSO_CHECK(n > 0);
  const int block = reduce_block(device.spec(), n);
  const auto cfg = reduce_config(device.spec(), n, block);
  const auto blocks = cfg.grid;

  if (use_fast_path()) {
    // Double addition is not associative, so this path replays the exact
    // legacy fold order (per-thread grid-stride accumulation, then the
    // shared-memory tree, then a serial pass over the block partials) —
    // just without tracked views, hooks or ThreadCtx per virtual thread.
    device.pack_flush_lane();  // host fold below reads `data` directly
    {
      prof::KernelLabel klabel("reduce/sum_partial");
      device.account_launch(cfg,
                            reduce_cost(n, sizeof(float), blocks,
                                        sizeof(double),
                                        log2_ceil(block), block));
    }
    const std::int64_t stride_all =
        blocks * static_cast<std::int64_t>(block);
    std::vector<double> sh(static_cast<std::size_t>(block));
    std::vector<double> partial(blocks, 0.0);
    for (std::int64_t b = 0; b < blocks; ++b) {
      for (int t = 0; t < block; ++t) {
        double acc = 0.0;
        for (std::int64_t i = b * block + t; i < n; i += stride_all) {
          acc += static_cast<double>(data[i]);
        }
        sh[t] = acc;
      }
      for (int stride = block / 2; stride > 0; stride /= 2) {
        for (int t = 0; t < stride; ++t) {
          sh[t] += sh[t + stride];
        }
      }
      partial[b] = sh[0];
    }
    LaunchConfig final_cfg;
    final_cfg.grid = 1;
    final_cfg.block = 1;
    {
      prof::KernelLabel klabel("reduce/sum_final");
      device.account_launch(
          final_cfg,
          reduce_cost(blocks, sizeof(double), blocks, 0, 0, block));
    }
    double total = 0.0;
    for (std::int64_t b = 0; b < blocks; ++b) {
      total += partial[b];
    }
    return total;
  }

  std::vector<double> partial(blocks, 0.0);

  const auto in = san::track(data, static_cast<std::size_t>(n), "reduce_in");
  const auto p_sum = san::track(partial.data(),
                                static_cast<std::size_t>(blocks),
                                "partial_sum");
  san::expect_writes_exactly_once(p_sum);
  {
    san::KernelScope scope("reduce/sum_partial");
    device.launch_blocks(
        cfg,
        reduce_cost(n, sizeof(float), blocks, sizeof(double),
                    log2_ceil(block), block),
        [&](BlockCtx& blk) {
          auto sh = san::track_shared(
              blk.shared_array<double>(block), "sh_sum");
          blk.for_each_thread([&](const ThreadCtx& t) {
            double acc = 0.0;
            for (std::int64_t i = t.global_id(); i < n;
                 i += t.grid_stride()) {
              san::count_flops(1.0);
              acc += static_cast<double>(in[i]);
            }
            sh[t.thread_idx] = acc;
          });
          for (int stride = block / 2; stride > 0; stride /= 2) {
            blk.sync();
            blk.for_each_thread([&](const ThreadCtx& t) {
              if (t.thread_idx < stride) {
                san::count_flops(1.0);
                sh[t.thread_idx] += sh[t.thread_idx + stride];
              }
            });
          }
          p_sum[blk.block_idx()] = sh[0];
        });
  }

  double total = 0.0;
  LaunchConfig final_cfg;
  final_cfg.grid = 1;
  final_cfg.block = 1;
  san::KernelScope scope("reduce/sum_final");
  device.launch(final_cfg,
                reduce_cost(blocks, sizeof(double), blocks, 0, 0, block),
                [&](const ThreadCtx&) {
                  for (std::int64_t b = 0; b < blocks; ++b) {
                    san::count_flops(1.0);
                    total += p_sum[b];
                  }
                });
  return total;
}

}  // namespace fastpso::vgpu
