// GPU-style parallel reductions on the virtual device.
//
// The paper's gbest update is "a process of finding the minimum and its
// corresponding index in all the pbest of the particles ... implemented
// using a GPU-based parallel reduction" (Section 3.3). These reductions use
// the classic two-pass shared-memory tree: each block reduces a grid-stride
// slice into shared memory, then a single-block pass folds the per-block
// partials.
#pragma once

#include <cstdint>

#include "vgpu/device.h"

namespace fastpso::vgpu {

/// Result of an argmin reduction: the minimum value and its (first) index.
struct ArgMin {
  float value = 0.0f;
  std::int64_t index = -1;
};

/// Minimum + index over `data[0, n)` in device memory. Ties resolve to the
/// smallest index (deterministic).
ArgMin reduce_argmin(Device& device, const float* data, std::int64_t n);

/// Minimum value over `data[0, n)`.
float reduce_min(Device& device, const float* data, std::int64_t n);

/// Sum over `data[0, n)` (accumulated in double for stability).
double reduce_sum(Device& device, const float* data, std::int64_t n);

}  // namespace fastpso::vgpu
