// Execution hooks connecting the virtual GPU's launch machinery to the
// sanitizer (vgpu/san/sanitizer.h). Device::launch / launch_blocks and
// BlockCtx notify the active recording Session — if any — about launch
// boundaries, the (block, thread) identity whose code is currently running,
// and __syncthreads barriers, so Tracked<T> accesses can be attributed and
// ordered. When no Session is recording every hook is a single pointer
// compare, so production/bench runs pay essentially nothing.
//
// This header is included by vgpu/device.h and must stay dependency-light:
// it only forward-declares the launch types.
#pragma once

#include <cstdint>

namespace fastpso::vgpu {
struct LaunchConfig;
struct KernelCostSpec;
}  // namespace fastpso::vgpu

namespace fastpso::vgpu::san {

class Session;

namespace detail {

/// The Session currently recording, or nullptr. At most one Session records
/// at a time (the vgpu is single-threaded by contract).
extern Session* g_session;

// Out-of-line slow paths, defined in sanitizer.cpp.
void launch_begin(const LaunchConfig& cfg, const KernelCostSpec& cost);
void launch_end();
void block_begin(std::int64_t block_idx);
void thread_begin(std::int64_t block_idx, int thread_idx);
void barrier();

}  // namespace detail

/// True while a Session is recording.
[[nodiscard]] inline bool active() { return detail::g_session != nullptr; }

inline void hook_launch_begin(const LaunchConfig& cfg,
                              const KernelCostSpec& cost) {
  if (active()) {
    detail::launch_begin(cfg, cost);
  }
}

inline void hook_launch_end() {
  if (active()) {
    detail::launch_end();
  }
}

/// Entering block `block_idx`; block-scope code (the parts of a
/// launch_blocks body outside for_each_thread) is attributed to thread 0 of
/// the block, matching the CUDA "if (tid == 0)" tail idiom it models.
inline void hook_block_begin(std::int64_t block_idx) {
  if (active()) {
    detail::block_begin(block_idx);
  }
}

inline void hook_thread_begin(std::int64_t block_idx, int thread_idx) {
  if (active()) {
    detail::thread_begin(block_idx, thread_idx);
  }
}

/// A __syncthreads boundary in the current block.
inline void hook_barrier() {
  if (active()) {
    detail::barrier();
  }
}

}  // namespace fastpso::vgpu::san
